package main

import (
	"bytes"
	"strings"
	"testing"
)

// Exit-code goldens for -inject: the analyses build their controllers
// internally, so the fault plan travels via the context — these tests
// pin that the flag actually reaches the procedures and that injected
// failures keep their types all the way to the exit code.

func TestInjectTransientUndecided(t *testing.T) {
	var out, errBuf bytes.Buffer
	// membership runs candidate transducer runs under the analysis
	// context; query #1 belongs to the very first candidate, so the
	// injected transient fault aborts the search → UNDECIDED, exit 4.
	code := run([]string{"membership", "-spec", spec(t, "tau1.pt"), "-tree", "db",
		"-inject", "query:1:transient"}, &out, &errBuf)
	if code != 4 {
		t.Fatalf("transient inject: exit %d, want 4 (stdout: %s, stderr: %s)", code, out.String(), errBuf.String())
	}
	if !strings.Contains(out.String(), "UNDECIDED") {
		t.Errorf("expected UNDECIDED verdict: %s", out.String())
	}
}

func TestInjectTransientRetried(t *testing.T) {
	var out, errBuf bytes.Buffer
	// The Nth-op fault fires exactly once, so one retry decides the
	// analysis; the retry notice must be narrated.
	code := run([]string{"membership", "-spec", spec(t, "tau1.pt"), "-tree", "db",
		"-inject", "query:1:transient", "-retries", "2"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("retried inject: exit %d, want 0 (stdout: %s, stderr: %s)", code, out.String(), errBuf.String())
	}
	if !strings.Contains(out.String(), "MEMBER") {
		t.Errorf("expected MEMBER verdict after retry: %s", out.String())
	}
	if !strings.Contains(errBuf.String(), "retrying") {
		t.Errorf("expected a retry notice on stderr: %s", errBuf.String())
	}
}

func TestInjectPermanentError(t *testing.T) {
	var out, errBuf bytes.Buffer
	// A permanent fault is not retryable: even with retries the
	// analysis fails plainly (exit 1), never UNDECIDED.
	code := run([]string{"membership", "-spec", spec(t, "tau1.pt"), "-tree", "db",
		"-inject", "query:1:permanent", "-retries", "2"}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("permanent inject: exit %d, want 1 (stdout: %s, stderr: %s)", code, out.String(), errBuf.String())
	}
	if strings.Contains(out.String(), "UNDECIDED") {
		t.Errorf("permanent fault must not read as UNDECIDED: %s", out.String())
	}
}

func TestInjectMalformedUsage(t *testing.T) {
	for _, bad := range []string{"query", "query:0:transient", "query:1:warp", "teleport:1:transient"} {
		var out, errBuf bytes.Buffer
		if code := run([]string{"membership", "-spec", spec(t, "tau1.pt"), "-tree", "db",
			"-inject", bad}, &out, &errBuf); code != 2 {
			t.Errorf("-inject %q: exit %d, want 2", bad, code)
		}
	}
}
