// Command ptstatic runs the static analyses of Section 5 on transducer
// specs:
//
//	ptstatic classify    -spec view.pt
//	ptstatic emptiness   -spec view.pt
//	ptstatic membership  -spec view.pt -tree 'r(a,b)'
//	ptstatic equivalence -spec view.pt -spec2 other.pt
//	ptstatic ucq         -spec view.pt -label a
//	ptstatic typecheck   -spec view.pt -dtd schema.dtd
//
// Decidable analyses (Theorems 1 and 2) run the real procedures;
// analyses that are undecidable for the spec's class report that fact
// with the class, mirroring Table II. Typechecking uses the sound
// (incomplete) checker of internal/typecheck.
//
// -retries re-runs an analysis that stopped for a transient reason
// (deadline, candidate budget) with capped backoff; unlike the runner
// CLIs the analyses are restarted from scratch, since decision
// procedures carry no resumable frontier.
//
// Exit codes: 0 decided, 1 error, 2 usage, 3 undecidable for the
// class, 4 undecided (budget or deadline).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ptx/internal/decide"
	"ptx/internal/parser"
	"ptx/internal/pt"
	"ptx/internal/runctl"
	"ptx/internal/supervise"
	"ptx/internal/typecheck"
	"ptx/internal/xmltree"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// exitCode carries the process exit status through panics raised by the
// helpers below; run recovers it at its boundary so the command stays
// testable in-process.
type exitCode int

// app bundles the output streams and retry policy so the subcommand
// handlers stay as straight-line code.
type app struct {
	stdout, stderr io.Writer
	ctx            context.Context
	retries        int
	backoff        supervise.Backoff
}

func run(args []string, stdout, stderr io.Writer) (code int) {
	defer func() {
		if p := recover(); p != nil {
			c, ok := p.(exitCode)
			if !ok {
				panic(p)
			}
			code = int(c)
		}
	}()
	a := &app{stdout: stdout, stderr: stderr, ctx: context.Background()}
	if len(args) < 1 {
		a.usage()
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	specPath := fs.String("spec", "", "transducer spec file")
	spec2Path := fs.String("spec2", "", "second transducer spec (equivalence)")
	treeSrc := fs.String("tree", "", "target tree in canonical form (membership)")
	label := fs.String("label", "", "output label (ucq)")
	dtdPath := fs.String("dtd", "", "DTD file (typecheck)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the analysis (0 = unlimited); exceeding it reports UNDECIDED")
	maxCandidates := fs.Int("max-candidates", 0, "membership: cap the instance-candidate search (0 = default); exceeding it reports UNDECIDED")
	retries := fs.Int("retries", 0, "re-run an analysis that ended UNDECIDED up to N times")
	backoff := fs.Duration("backoff", 10*time.Millisecond, "base delay between retries (doubles per retry, capped at 2s)")
	inject := fs.String("inject", "", "test aid: fail the Nth operation; format op:N:kind as in ptxml")
	if err := fs.Parse(args[1:]); err != nil {
		panic(exitCode(2))
	}
	a.retries = *retries
	a.backoff = supervise.Backoff{Base: *backoff}
	faults, err := runctl.ParseInject(*inject)
	if err != nil {
		fmt.Fprintln(stderr, "ptstatic:", err)
		panic(exitCode(2))
	}
	if faults != nil {
		// Decision procedures build their controllers internally, so the
		// plan travels via the context rather than an options struct.
		a.ctx = runctl.WithPlan(a.ctx, faults)
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		a.ctx, cancel = context.WithTimeout(a.ctx, *timeout)
		defer cancel()
	}

	tr := a.load(*specPath)
	switch cmd {
	case "classify":
		cl := tr.Classify()
		fmt.Fprintf(a.stdout, "%s: %s\n", tr.Name, cl)
		fmt.Fprintf(a.stdout, "  recursive: %v\n", cl.Recursive)
		fmt.Fprintf(a.stdout, "  dependency graph: %d nodes\n", len(tr.DependencyGraph().Nodes()))
	case "emptiness":
		var nonempty bool
		a.retry("emptiness", func() (err error) {
			nonempty, err = decide.EmptinessContext(a.ctx, tr)
			return err
		})
		if nonempty {
			fmt.Fprintln(a.stdout, "NONEMPTY: some instance yields a nontrivial tree")
		} else {
			fmt.Fprintln(a.stdout, "EMPTY: every instance yields the bare root")
		}
	case "membership":
		if *treeSrc == "" {
			a.usage()
		}
		target, err := xmltree.Parse(*treeSrc)
		a.report(err)
		mopts := decide.DefaultMembershipOptions(tr, target)
		if *maxCandidates > 0 {
			mopts.MaxCandidates = *maxCandidates
		}
		var ok bool
		a.retry("membership", func() (err error) {
			ok, err = decide.MembershipContext(a.ctx, tr, target, mopts)
			return err
		})
		if ok {
			fmt.Fprintln(a.stdout, "MEMBER: some instance produces the tree")
		} else {
			fmt.Fprintln(a.stdout, "NOT A MEMBER: no instance produces the tree")
		}
	case "equivalence":
		if *spec2Path == "" {
			a.usage()
		}
		tr2 := a.load(*spec2Path)
		var eq bool
		a.retry("equivalence", func() (err error) {
			eq, err = decide.EquivalenceContext(a.ctx, tr, tr2)
			return err
		})
		if eq {
			fmt.Fprintln(a.stdout, "EQUIVALENT: the transducers agree on every instance")
		} else {
			fmt.Fprintln(a.stdout, "NOT EQUIVALENT: some instance separates them")
		}
	case "ucq":
		if *label == "" {
			a.usage()
		}
		u, err := decide.OutputUCQ(tr, *label)
		a.report(err)
		fmt.Fprintf(a.stdout, "output relation on %q as a union of %d conjunctive queries:\n", *label, len(u))
		for _, q := range u {
			fmt.Fprintf(a.stdout, "  %s\n", q)
		}
	case "typecheck":
		if *dtdPath == "" {
			a.usage()
		}
		src, err := os.ReadFile(*dtdPath)
		a.report(err)
		d, err := parser.ParseDTD(string(src))
		a.report(err)
		v, err := typecheck.Check(tr, d)
		a.report(err)
		if v == nil {
			fmt.Fprintln(a.stdout, "WELL-TYPED: every output tree conforms to the DTD (sound check)")
		} else {
			fmt.Fprintf(a.stdout, "POSSIBLE VIOLATION: %v\n", v)
		}
	default:
		a.usage()
	}
	return 0
}

// retry runs one analysis under the supervision retry policy
// (UNDECIDED outcomes are transient: a retry gets a fresh deadline and
// may pick a different search order) and reports the final error.
func (a *app) retry(name string, f func() error) {
	attempts, err := supervise.Retry(a.ctx, a.retries, a.backoff, nil, func(attempt int) error {
		err := f()
		if err != nil && attempt <= a.retries && supervise.Retryable(err) {
			fmt.Fprintf(a.stderr, "ptstatic: %s attempt %d failed (%v); retrying\n", name, attempt, err)
		}
		return err
	})
	if err != nil && attempts > 1 {
		fmt.Fprintf(a.stderr, "ptstatic: %s failed after %d attempts\n", name, attempts)
	}
	a.report(err)
}

func (a *app) load(path string) *pt.Transducer {
	if path == "" {
		a.usage()
	}
	src, err := os.ReadFile(path)
	a.report(err)
	tr, err := parser.ParseTransducer(string(src))
	a.report(err)
	return tr
}

func (a *app) report(err error) {
	if err == nil {
		return
	}
	if ue, ok := err.(*decide.ErrUndecidable); ok {
		fmt.Fprintf(a.stdout, "UNDECIDABLE: %s has no algorithm for %s (Table II)\n", ue.Problem, ue.Class)
		panic(exitCode(3))
	}
	var ce *runctl.ErrCanceled
	if errors.As(err, &ce) {
		fmt.Fprintf(a.stdout, "UNDECIDED: analysis stopped before completion (%v); raise -timeout or add -retries\n", ce.Cause)
		panic(exitCode(4))
	}
	var be *runctl.ErrBudget
	if errors.As(err, &be) {
		fmt.Fprintf(a.stdout, "UNDECIDED: %s budget exhausted (observed %d, limit %d); raise the budget or add -retries\n", be.Kind, be.Observed, be.Limit)
		panic(exitCode(4))
	}
	if runctl.IsTransient(err) {
		fmt.Fprintf(a.stdout, "UNDECIDED: analysis stopped on a transient fault (%v); add -retries\n", err)
		panic(exitCode(4))
	}
	fmt.Fprintln(a.stderr, "ptstatic:", err)
	panic(exitCode(1))
}

func (a *app) usage() {
	fmt.Fprintln(a.stderr, `usage:
  ptstatic classify    -spec view.pt
  ptstatic emptiness   -spec view.pt [-timeout D] [-retries N]
  ptstatic membership  -spec view.pt -tree 'r(a,b)' [-timeout D] [-max-candidates N] [-retries N]
  ptstatic equivalence -spec view.pt -spec2 other.pt [-timeout D] [-retries N]
  ptstatic ucq         -spec view.pt -label a
  ptstatic typecheck   -spec view.pt -dtd schema.dtd

exceeding -timeout or -max-candidates reports UNDECIDED (exit 4) instead of hanging`)
	panic(exitCode(2))
}
