// Command ptstatic runs the static analyses of Section 5 on transducer
// specs:
//
//	ptstatic classify    -spec view.pt
//	ptstatic emptiness   -spec view.pt
//	ptstatic membership  -spec view.pt -tree 'r(a,b)'
//	ptstatic equivalence -spec view.pt -spec2 other.pt
//	ptstatic ucq         -spec view.pt -label a
//	ptstatic typecheck   -spec view.pt -dtd schema.dtd
//
// Decidable analyses (Theorems 1 and 2) run the real procedures;
// analyses that are undecidable for the spec's class report that fact
// with the class, mirroring Table II. Typechecking uses the sound
// (incomplete) checker of internal/typecheck.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"ptx/internal/decide"
	"ptx/internal/parser"
	"ptx/internal/pt"
	"ptx/internal/runctl"
	"ptx/internal/typecheck"
	"ptx/internal/xmltree"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	specPath := fs.String("spec", "", "transducer spec file")
	spec2Path := fs.String("spec2", "", "second transducer spec (equivalence)")
	treeSrc := fs.String("tree", "", "target tree in canonical form (membership)")
	label := fs.String("label", "", "output label (ucq)")
	dtdPath := fs.String("dtd", "", "DTD file (typecheck)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the analysis (0 = unlimited); exceeding it reports UNDECIDED")
	fs.Parse(os.Args[2:])

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	tr := load(*specPath)
	switch cmd {
	case "classify":
		cl := tr.Classify()
		fmt.Printf("%s: %s\n", tr.Name, cl)
		fmt.Printf("  recursive: %v\n", cl.Recursive)
		fmt.Printf("  dependency graph: %d nodes\n", len(tr.DependencyGraph().Nodes()))
	case "emptiness":
		nonempty, err := decide.EmptinessContext(ctx, tr)
		report(err)
		if nonempty {
			fmt.Println("NONEMPTY: some instance yields a nontrivial tree")
		} else {
			fmt.Println("EMPTY: every instance yields the bare root")
		}
	case "membership":
		if *treeSrc == "" {
			usage()
		}
		target, err := xmltree.Parse(*treeSrc)
		report(err)
		ok, err := decide.MembershipContext(ctx, tr, target, decide.DefaultMembershipOptions(tr, target))
		report(err)
		if ok {
			fmt.Println("MEMBER: some instance produces the tree")
		} else {
			fmt.Println("NOT A MEMBER: no instance produces the tree")
		}
	case "equivalence":
		if *spec2Path == "" {
			usage()
		}
		tr2 := load(*spec2Path)
		eq, err := decide.EquivalenceContext(ctx, tr, tr2)
		report(err)
		if eq {
			fmt.Println("EQUIVALENT: the transducers agree on every instance")
		} else {
			fmt.Println("NOT EQUIVALENT: some instance separates them")
		}
	case "ucq":
		if *label == "" {
			usage()
		}
		u, err := decide.OutputUCQ(tr, *label)
		report(err)
		fmt.Printf("output relation on %q as a union of %d conjunctive queries:\n", *label, len(u))
		for _, q := range u {
			fmt.Printf("  %s\n", q)
		}
	case "typecheck":
		if *dtdPath == "" {
			usage()
		}
		src, err := os.ReadFile(*dtdPath)
		report(err)
		d, err := parser.ParseDTD(string(src))
		report(err)
		v, err := typecheck.Check(tr, d)
		report(err)
		if v == nil {
			fmt.Println("WELL-TYPED: every output tree conforms to the DTD (sound check)")
		} else {
			fmt.Printf("POSSIBLE VIOLATION: %v\n", v)
		}
	default:
		usage()
	}
}

func load(path string) *pt.Transducer {
	if path == "" {
		usage()
	}
	src, err := os.ReadFile(path)
	report(err)
	tr, err := parser.ParseTransducer(string(src))
	report(err)
	return tr
}

func report(err error) {
	if err == nil {
		return
	}
	if ue, ok := err.(*decide.ErrUndecidable); ok {
		fmt.Printf("UNDECIDABLE: %s has no algorithm for %s (Table II)\n", ue.Problem, ue.Class)
		os.Exit(3)
	}
	var ce *runctl.ErrCanceled
	if errors.As(err, &ce) {
		fmt.Printf("UNDECIDED: analysis stopped before completion (%v); raise -timeout\n", ce.Cause)
		os.Exit(4)
	}
	var be *runctl.ErrBudget
	if errors.As(err, &be) {
		fmt.Printf("UNDECIDED: %s budget exhausted (limit %d)\n", be.Kind, be.Limit)
		os.Exit(4)
	}
	fmt.Fprintln(os.Stderr, "ptstatic:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ptstatic classify    -spec view.pt
  ptstatic emptiness   -spec view.pt [-timeout D]
  ptstatic membership  -spec view.pt -tree 'r(a,b)' [-timeout D]
  ptstatic equivalence -spec view.pt -spec2 other.pt [-timeout D]
  ptstatic ucq         -spec view.pt -label a
  ptstatic typecheck   -spec view.pt -dtd schema.dtd

exceeding -timeout reports UNDECIDED (exit 4) instead of hanging`)
	os.Exit(2)
}
