package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Exit-code golden tests for the analysis CLI: 0 decided, 2 usage,
// 3 undecidable for the class, 4 undecided (budget or deadline).

func spec(t *testing.T, name string) string {
	t.Helper()
	p := filepath.Join("..", "..", "examples", "specs", name)
	if _, err := os.Stat(p); err != nil {
		t.Skipf("%s not present", name)
	}
	return p
}

// validCourse is a tree τ1 can actually produce, in the canonical
// grammar (text nodes spell out as tag=quoted).
const validCourse = `db(course(cno(text="X"),title(text="Y"),prereq))`

func TestUsageExit(t *testing.T) {
	tau1 := spec(t, "tau1.pt")
	for _, args := range [][]string{
		nil,
		{"classify"},                   // no -spec
		{"membership", "-spec", tau1},  // no -tree
		{"equivalence", "-spec", tau1}, // no -spec2
		{"frobnicate", "-spec", tau1},  // unknown subcommand
	} {
		var out, errBuf bytes.Buffer
		if code := run(args, &out, &errBuf); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestClassifyExit(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"classify", "-spec", spec(t, "tau1.pt")}, &out, &errBuf); code != 0 {
		t.Fatalf("classify: exit %d (stderr: %s)", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "PT") {
		t.Errorf("classify should print the class: %s", out.String())
	}
}

func TestMembershipDecidedExit(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"membership", "-spec", spec(t, "tau1.pt"), "-tree", "db"}, &out, &errBuf); code != 0 {
		t.Fatalf("membership: exit %d (stderr: %s)", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "MEMBER") {
		t.Errorf("expected MEMBER verdict: %s", out.String())
	}
}

// TestMembershipBudgetExit pins the budget path: the candidate cap
// reports UNDECIDED with the observed count, exit 4.
func TestMembershipBudgetExit(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"membership", "-spec", spec(t, "tau1.pt"), "-tree", validCourse, "-max-candidates", "1"}, &out, &errBuf)
	if code != 4 {
		t.Fatalf("budget: exit %d, want 4 (out: %s, stderr: %s)", code, out.String(), errBuf.String())
	}
	if !strings.Contains(out.String(), "UNDECIDED") || !strings.Contains(out.String(), "observed 1, limit 1") {
		t.Errorf("budget verdict should include the observed count: %s", out.String())
	}
}

// TestMembershipRetriesExit: retries re-run the search (fresh budget,
// same cap) and the failure is reported with the attempt count.
func TestMembershipRetriesExit(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"membership", "-spec", spec(t, "tau1.pt"), "-tree", validCourse, "-max-candidates", "1", "-retries", "2", "-backoff", "1ms"}, &out, &errBuf)
	if code != 4 {
		t.Fatalf("budget with retries: exit %d, want 4 (stderr: %s)", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "attempt 1 failed") || !strings.Contains(errBuf.String(), "after 3 attempts") {
		t.Errorf("retry trace missing from stderr: %s", errBuf.String())
	}
}

func TestMembershipTimeoutExit(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"membership", "-spec", spec(t, "tau1.pt"), "-tree", validCourse, "-timeout", "1ms"}, &out, &errBuf)
	if code != 4 {
		t.Fatalf("timeout: exit %d, want 4 (out: %s, stderr: %s)", code, out.String(), errBuf.String())
	}
	if !strings.Contains(out.String(), "UNDECIDED") {
		t.Errorf("timeout verdict should be UNDECIDED: %s", out.String())
	}
}

func TestEquivalenceUndecidableExit(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"equivalence", "-spec", spec(t, "tau1.pt"), "-spec2", spec(t, "tau3.pt")}, &out, &errBuf)
	if code != 3 {
		t.Fatalf("equivalence: exit %d, want 3 (out: %s, stderr: %s)", code, out.String(), errBuf.String())
	}
	if !strings.Contains(out.String(), "UNDECIDABLE") {
		t.Errorf("expected Table II verdict: %s", out.String())
	}
}

func TestBadSpecExit(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"classify", "-spec", filepath.Join(t.TempDir(), "missing.pt")}, &out, &errBuf); code != 1 {
		t.Fatalf("missing spec: exit %d, want 1", code)
	}
}
