// The -delta replay path: a script of +fact/-fact/commit batches runs
// through the incremental engine and must print exactly what a fresh
// run over the mutated database prints — the CLI-level face of the
// engine's incremental-equals-rebuild guarantee.
package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const deltaScript = `
# seed a new CS course, then revise the catalog in a second batch
+course(CS999, StormCourse, CS)
commit
+course(CS888, 'Systems II', CS)
+prereq(CS888, CS301)
-course(CS999, StormCourse, CS)
`

// mutatedDB is registrar.db after deltaScript's net effect.
func mutatedDB(t *testing.T) string {
	t.Helper()
	base, err := os.ReadFile(filepath.Join("..", "..", "examples", "specs", "registrar.db"))
	if err != nil {
		t.Fatal(err)
	}
	mutated := string(base) + "\ncourse(CS888, 'Systems II', CS)\nprereq(CS888, CS301)\n"
	path := filepath.Join(t.TempDir(), "mutated.db")
	if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeScript(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "deltas.txt")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDeltaReplayEqualsRebuild: for every example spec, replaying the
// script incrementally prints the same bytes as running fresh over the
// pre-mutated database — in XML and canonical form.
func TestDeltaReplayEqualsRebuild(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "specs")
	specs, err := filepath.Glob(filepath.Join(dir, "*.pt"))
	if err != nil || len(specs) == 0 {
		t.Skipf("no example specs found in %s", dir)
	}
	data := filepath.Join(dir, "registrar.db")
	script := writeScript(t, deltaScript)
	final := mutatedDB(t)

	for _, spec := range specs {
		spec := spec
		t.Run(filepath.Base(spec), func(t *testing.T) {
			for _, form := range []string{"xml", "canonical"} {
				extra := []string{}
				if form == "canonical" {
					extra = append(extra, "-canonical")
				}
				var replay, rebuild, errBuf bytes.Buffer
				args := append([]string{"-spec", spec, "-data", data, "-delta", script}, extra...)
				if code := run(args, &replay, &errBuf); code != 0 {
					t.Fatalf("ptxml %v: exit %d, stderr: %s", args, code, errBuf.String())
				}
				errBuf.Reset()
				args = append([]string{"-spec", spec, "-data", final}, extra...)
				if code := run(args, &rebuild, &errBuf); code != 0 {
					t.Fatalf("ptxml %v: exit %d, stderr: %s", args, code, errBuf.String())
				}
				if !bytes.Equal(replay.Bytes(), rebuild.Bytes()) {
					t.Errorf("%s: -delta replay diverged from full rebuild\n replay:\n%s\n rebuild:\n%s",
						form, replay.Bytes(), rebuild.Bytes())
				}
			}
		})
	}
}

// TestDeltaReplayGolden pins the replayed tau1 document byte-for-byte
// (refresh with go test ./cmd/ptxml -update).
func TestDeltaReplayGolden(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "specs")
	spec := filepath.Join(dir, "tau1.pt")
	if _, err := os.Stat(spec); err != nil {
		t.Skip("tau1.pt not found")
	}
	script := writeScript(t, deltaScript)

	var out, errBuf bytes.Buffer
	args := []string{"-spec", spec, "-data", filepath.Join(dir, "registrar.db"), "-delta", script, "-stats"}
	if code := run(args, &out, &errBuf); code != 0 {
		t.Fatalf("ptxml %v: exit %d, stderr: %s", args, code, errBuf.String())
	}
	for _, want := range []string{"delta 1:", "delta 2:", "deltas=2"} {
		if !strings.Contains(errBuf.String(), want) {
			t.Errorf("-stats output missing %q:\n%s", want, errBuf.String())
		}
	}

	golden := filepath.Join("testdata", "tau1.pt.delta.golden.xml")
	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("replayed document drifted from %s\n got:\n%s\n want:\n%s", golden, out.Bytes(), want)
	}
}

// TestDeltaReplayErrors: malformed scripts and flag conflicts exit with
// the documented codes and a diagnosis, never a stack trace.
func TestDeltaReplayErrors(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "specs")
	spec := filepath.Join(dir, "tau1.pt")
	data := filepath.Join(dir, "registrar.db")
	if _, err := os.Stat(spec); err != nil {
		t.Skip("tau1.pt not found")
	}

	cases := []struct {
		name, script, extraFlag, wantSub string
		wantCode                         int
	}{
		{"unsigned fact", "course(CS1, X, CS)\n", "", "expected +fact", 1},
		{"unknown relation", "+nosuch(a)\n", "", "not in schema", 1},
		{"arity mismatch", "+course(a, b)\n", "", "arity", 1},
		{"retries conflict", "+prereq(DB100, CS201)\n", "-retries", "cannot be combined", 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			script := writeScript(t, tc.script)
			args := []string{"-spec", spec, "-data", data, "-delta", script}
			if tc.extraFlag != "" {
				args = append(args, tc.extraFlag, "2")
			}
			var out, errBuf bytes.Buffer
			code := run(args, &out, &errBuf)
			if code != tc.wantCode {
				t.Fatalf("exit %d, want %d; stderr: %s", code, tc.wantCode, errBuf.String())
			}
			if !strings.Contains(errBuf.String(), tc.wantSub) {
				t.Errorf("stderr %q does not mention %q", errBuf.String(), tc.wantSub)
			}
			if out.Len() != 0 {
				t.Errorf("a failed replay still printed %d bytes of document", out.Len())
			}
		})
	}

	t.Run("missing script file", func(t *testing.T) {
		var out, errBuf bytes.Buffer
		code := run([]string{"-spec", spec, "-data", data, "-delta", filepath.Join(t.TempDir(), "nope.txt")}, &out, &errBuf)
		if code != 1 {
			t.Fatalf("exit %d, want 1", code)
		}
	})
}
