package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeChainSpec generates a spec whose output on {R1(v)} is a chain of
// n "a" nodes under the root: the deep regime of Proposition 1(4) as a
// real CLI input. Returns the spec and data file paths.
func writeChainSpec(t *testing.T, dir string, n int) (spec, data string) {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("schema R1/1\ntransducer chain root r start q0\ntag a/1\n\n")
	sb.WriteString("rule q0 r -> (q1, a, [x;] R1(x))\n")
	for i := 1; i < n; i++ {
		fmt.Fprintf(&sb, "rule q%d a -> (q%d, a, [x;] Reg(x))\n", i, i+1)
	}
	spec = filepath.Join(dir, "chain.pt")
	data = filepath.Join(dir, "chain.db")
	if err := os.WriteFile(spec, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(data, []byte("R1(v)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return spec, data
}

// TestDeepChainCLI: a depth-10^6 document must flow through the whole
// CLI — parse, validate, expand, serialize — without stack overflow.
// The old recursive writer died here long before the expansion did.
func TestDeepChainCLI(t *testing.T) {
	n := 1_000_000
	if raceEnabled {
		n = 100_000 // the detector is ~10× slower; full depth adds nothing here
	}
	spec, data := writeChainSpec(t, t.TempDir(), n)

	var out, errBuf bytes.Buffer
	args := []string{"-spec", spec, "-data", data, "-canonical", "-max-nodes", "0", "-max-depth", "0"}
	if code := run(args, &out, &errBuf); code != 0 {
		t.Fatalf("ptxml %v: exit %d, stderr: %s", args, code, errBuf.String())
	}
	// r + n a-tags, n paren pairs, trailing newline.
	if got, want := out.Len(), 3*n+2; got != want {
		t.Fatalf("canonical output length %d, want %d", got, want)
	}
	s := out.String()
	if !strings.HasPrefix(s, "r(a(a(") || !strings.HasSuffix(s, ")))\n") {
		t.Fatalf("canonical shape wrong: %.12s…%s", s, s[len(s)-5:])
	}
}

// TestDeepChainCLICacheModes: the same chain at a depth the old writer
// could still survive, byte-identical across all cache modes and both
// output formats.
func TestDeepChainCLICacheModes(t *testing.T) {
	dir := t.TempDir()
	// Indented XML of a depth-n chain is Θ(n²) bytes, so the XML format
	// gets a shallower chain than canonical.
	canonSpec, canonData := writeChainSpec(t, dir, 20_000)
	xmlDir := filepath.Join(dir, "xml")
	if err := os.Mkdir(xmlDir, 0o755); err != nil {
		t.Fatal(err)
	}
	xmlSpec, xmlData := writeChainSpec(t, xmlDir, 2_000)

	for _, tc := range []struct {
		format     []string
		spec, data string
	}{
		{[]string{"-canonical"}, canonSpec, canonData},
		{nil, xmlSpec, xmlData},
	} {
		var base []byte
		for _, cache := range []string{"off", "query", "subtree"} {
			var out, errBuf bytes.Buffer
			args := append([]string{"-spec", tc.spec, "-data", tc.data,
				"-cache", cache, "-max-nodes", "0", "-max-depth", "0"}, tc.format...)
			if code := run(args, &out, &errBuf); code != 0 {
				t.Fatalf("ptxml %v: exit %d, stderr: %s", args, code, errBuf.String())
			}
			if base == nil {
				base = append([]byte(nil), out.Bytes()...)
				continue
			}
			if !bytes.Equal(out.Bytes(), base) {
				t.Errorf("format %v cache=%s: output differs from cache-off bytes", tc.format, cache)
			}
		}
	}
}
