package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// counterSpec is the doubly-exponential counter transducer of
// Proposition 1(4) in surface syntax: each a-node carries the full
// n-digit counter in a relation register, increments it via the adder
// table, and spawns two copies. It cannot finish for any realistic n.
const counterSpec = `# Proposition 1(4) counter: 2^(2^n) nodes. Diverges on purpose.
schema counter/3, add/5, next/2
transducer counterdiv root r start q0
tag a/3, a2/3

rule q0 r ->
  (q,  a,  [;k,d,c] counter(k,d,c)),
  (q2, a2, [;k,d,c] counter(k,d,c))
rule q a ->
  (q,  a,  [;k,d,c] exists d1,c1,kp,d2,c2,d3,c3 .
    Reg(k,d1,c1) & Reg(kp,d2,c2) & next(kp,k) & counter(k,d3,c3) & add(d1,c2,c3,d,c)),
  (q2, a2, [;k,d,c] exists d1,c1,kp,d2,c2,d3,c3 .
    Reg(k,d1,c1) & Reg(kp,d2,c2) & next(kp,k) & counter(k,d3,c3) & add(d1,c2,c3,d,c))
rule q2 a2 ->
  (q,  a,  [;k,d,c] exists d1,c1,kp,d2,c2,d3,c3 .
    Reg(k,d1,c1) & Reg(kp,d2,c2) & next(kp,k) & counter(k,d3,c3) & add(d1,c2,c3,d,c)),
  (q2, a2, [;k,d,c] exists d1,c1,kp,d2,c2,d3,c3 .
    Reg(k,d1,c1) & Reg(kp,d2,c2) & next(kp,k) & counter(k,d3,c3) & add(d1,c2,c3,d,c))
`

// counterData builds the n-digit counter instance Jₙ.
func counterData(n int) string {
	var b strings.Builder
	for k := 0; k < n; k++ {
		carry := "0"
		if k == 0 {
			carry = "1"
		}
		fmt.Fprintf(&b, "counter(%d, 0, %s)\n", k, carry)
		fmt.Fprintf(&b, "next(%d, %d)\n", k, (k+1)%n)
	}
	for _, row := range [][5]string{
		{"0", "0", "0", "0", "0"}, {"0", "0", "1", "1", "0"},
		{"0", "1", "0", "1", "0"}, {"0", "1", "1", "0", "1"},
		{"1", "0", "0", "1", "0"}, {"1", "0", "1", "0", "1"},
		{"1", "1", "0", "0", "1"}, {"1", "1", "1", "1", "1"},
	} {
		fmt.Fprintf(&b, "add(%s, %s, %s, %s, %s)\n", row[0], row[1], row[2], row[3], row[4])
	}
	return b.String()
}

func writeCounterFiles(t *testing.T) (spec, data string) {
	t.Helper()
	dir := t.TempDir()
	spec = filepath.Join(dir, "counter.pt")
	data = filepath.Join(dir, "counter.db")
	if err := os.WriteFile(spec, []byte(counterSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(data, []byte(counterData(8)), 0o644); err != nil {
		t.Fatal(err)
	}
	return spec, data
}

// TestCLITimeoutOnDivergentSpec is the CLI half of the acceptance
// criterion: a divergent relation-store spec under -timeout 100ms must
// exit with the deadline code within ~2× the deadline.
func TestCLITimeoutOnDivergentSpec(t *testing.T) {
	spec, data := writeCounterFiles(t)
	var stdout, stderr bytes.Buffer
	start := time.Now()
	code := run([]string{
		"-spec", spec, "-data", data,
		"-timeout", "100ms", "-workers", "4", "-max-nodes", "0",
	}, &stdout, &stderr)
	elapsed := time.Since(start)
	if code != 5 {
		t.Fatalf("exit code = %d, want 5 (deadline); stderr: %s", code, stderr.String())
	}
	if elapsed > 400*time.Millisecond {
		t.Errorf("CLI returned after %v with a 100ms -timeout", elapsed)
	}
	if !strings.Contains(stderr.String(), "raise -timeout") {
		t.Errorf("stderr should point at -timeout: %q", stderr.String())
	}
}

// TestCLINodeBudgetOnDivergentSpec: the same spec with only a node
// budget exits with the budget code and cites the budget kind.
func TestCLINodeBudgetOnDivergentSpec(t *testing.T) {
	spec, data := writeCounterFiles(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-spec", spec, "-data", data, "-max-nodes", "500"}, &stdout, &stderr)
	if code != 4 {
		t.Fatalf("exit code = %d, want 4 (budget); stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "nodes") {
		t.Errorf("stderr should name the exhausted budget: %q", stderr.String())
	}
}

// TestCLISuccess keeps the happy path honest: the shipped example spec
// must still render and exit 0.
func TestCLISuccess(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-spec", filepath.Join("..", "..", "examples", "specs", "tau1.pt"),
		"-data", filepath.Join("..", "..", "examples", "specs", "registrar.db"),
		"-canonical",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "db(") {
		t.Errorf("unexpected canonical output: %q", stdout.String())
	}
}

func TestCLIUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"-nonsense"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}
