//go:build !race

package main

// raceEnabled mirrors the -race build tag so the deep-regime tests can
// scale themselves down: the detector multiplies their runtime roughly
// tenfold without adding coverage at full depth.
const raceEnabled = false
