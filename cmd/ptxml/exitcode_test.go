package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Exit-code golden tests: the typed failure paths — budget, deadline,
// internal error — and the retry/checkpoint/resume flags each map to a
// pinned exit status, so scripts and CI can dispatch on $? without
// parsing stderr.

func specArgs(t *testing.T, spec string) (string, string) {
	t.Helper()
	dir := filepath.Join("..", "..", "examples", "specs")
	p := filepath.Join(dir, spec)
	if _, err := os.Stat(p); err != nil {
		t.Skipf("%s not present", spec)
	}
	return p, filepath.Join(dir, "registrar.db")
}

func goldenBytes(t *testing.T, spec string) []byte {
	t.Helper()
	want, err := os.ReadFile(filepath.Join("testdata", spec+".golden.xml"))
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	return want
}

func TestExitBudget(t *testing.T) {
	spec, data := specArgs(t, "tau1.pt")
	var out, errBuf bytes.Buffer
	code := run([]string{"-spec", spec, "-data", data, "-max-nodes", "2"}, &out, &errBuf)
	if code != 4 {
		t.Fatalf("node budget: exit %d, want 4 (stderr: %s)", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "observed") || !strings.Contains(errBuf.String(), "limit 2") {
		t.Errorf("budget message should report observed and limit: %s", errBuf.String())
	}
}

func TestExitTimeout(t *testing.T) {
	spec, data := specArgs(t, "tau1.pt")
	var out, errBuf bytes.Buffer
	if code := run([]string{"-spec", spec, "-data", data, "-timeout", "1ns"}, &out, &errBuf); code != 5 {
		t.Fatalf("deadline: exit %d, want 5 (stderr: %s)", code, errBuf.String())
	}
	// Retries get a fresh 1ns deadline each attempt, so the run still
	// fails with 5 — but only after visibly retrying.
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-spec", spec, "-data", data, "-timeout", "1ns", "-retries", "2"}, &out, &errBuf); code != 5 {
		t.Fatalf("deadline with retries: exit %d, want 5 (stderr: %s)", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "retrying") {
		t.Errorf("retried deadline failure should say so on stderr: %s", errBuf.String())
	}
}

func TestExitInternal(t *testing.T) {
	spec, data := specArgs(t, "tau1.pt")
	var out, errBuf bytes.Buffer
	if code := run([]string{"-spec", spec, "-data", data, "-inject", "query:1:internal"}, &out, &errBuf); code != 1 {
		t.Fatalf("internal error: exit %d, want 1 (stderr: %s)", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "internal error") {
		t.Errorf("stderr should diagnose the internal error: %s", errBuf.String())
	}
}

func TestExitInjectValidation(t *testing.T) {
	spec, data := specArgs(t, "tau1.pt")
	for _, bad := range []string{"query", "query:0:transient", "query:2:bogus", "nope:1:transient"} {
		var out, errBuf bytes.Buffer
		if code := run([]string{"-spec", spec, "-data", data, "-inject", bad}, &out, &errBuf); code != 2 {
			t.Errorf("-inject %q: exit %d, want 2", bad, code)
		}
	}
}

// TestRetryTransientSucceeds: a transient fault plus -retries recovers
// to exit 0 with output byte-identical to the fault-free golden file.
func TestRetryTransientSucceeds(t *testing.T) {
	spec, data := specArgs(t, "tau1.pt")
	var out, errBuf bytes.Buffer
	code := run([]string{"-spec", spec, "-data", data, "-inject", "query:3:transient", "-retries", "2", "-backoff", "1ms"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("transient with retries: exit %d, want 0 (stderr: %s)", code, errBuf.String())
	}
	if !bytes.Equal(out.Bytes(), goldenBytes(t, "tau1.pt")) {
		t.Error("retried run's output differs from the golden bytes")
	}
	if !strings.Contains(errBuf.String(), "retrying") {
		t.Errorf("retry should be visible on stderr: %s", errBuf.String())
	}
}

// TestPermanentNotRetried: an unmarked error fails with exit 1 on the
// first attempt even when retries are available.
func TestPermanentNotRetried(t *testing.T) {
	spec, data := specArgs(t, "tau1.pt")
	var out, errBuf bytes.Buffer
	if code := run([]string{"-spec", spec, "-data", data, "-inject", "query:1:permanent", "-retries", "3"}, &out, &errBuf); code != 1 {
		t.Fatalf("permanent: exit %d, want 1 (stderr: %s)", code, errBuf.String())
	}
	if strings.Contains(errBuf.String(), "retrying") {
		t.Errorf("permanent error must not be retried: %s", errBuf.String())
	}
}

// TestSelfHealingRetries: a node budget too small for any single
// attempt still completes under -retries because progress accumulates
// across attempts — and the bytes match the golden file exactly.
func TestSelfHealingRetries(t *testing.T) {
	spec, data := specArgs(t, "tau1.pt")
	var out, errBuf bytes.Buffer
	code := run([]string{"-spec", spec, "-data", data, "-max-nodes", "6", "-retries", "100", "-backoff", "1ms"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("self-healing: exit %d, want 0 (stderr: %s)", code, errBuf.String())
	}
	if !bytes.Equal(out.Bytes(), goldenBytes(t, "tau1.pt")) {
		t.Error("self-healed output differs from the golden bytes")
	}
}

// TestCheckpointResume: a budget failure writes a checkpoint file;
// repeatedly resuming it (fresh budget per invocation) converges to
// exit 0 with the golden bytes — the cross-process recovery story.
func TestCheckpointResume(t *testing.T) {
	spec, data := specArgs(t, "tau1.pt")
	ck := filepath.Join(t.TempDir(), "run.checkpoint")

	var out, errBuf bytes.Buffer
	code := run([]string{"-spec", spec, "-data", data, "-max-nodes", "6", "-checkpoint", ck}, &out, &errBuf)
	if code != 4 {
		t.Fatalf("first run: exit %d, want 4 (stderr: %s)", code, errBuf.String())
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}
	if !strings.Contains(errBuf.String(), "checkpoint written") {
		t.Errorf("stderr should point at the checkpoint: %s", errBuf.String())
	}

	for hop := 0; hop < 100; hop++ {
		out.Reset()
		errBuf.Reset()
		code = run([]string{"-spec", spec, "-data", data, "-max-nodes", "6", "-checkpoint", ck, "-resume", ck}, &out, &errBuf)
		if code == 0 {
			break
		}
		if code != 4 {
			t.Fatalf("hop %d: exit %d, want 0 or 4 (stderr: %s)", hop, code, errBuf.String())
		}
	}
	if code != 0 {
		t.Fatal("resume hops never completed")
	}
	if !bytes.Equal(out.Bytes(), goldenBytes(t, "tau1.pt")) {
		t.Error("resumed output differs from the golden bytes")
	}
}

// TestResumeWrongSpec: a checkpoint must not resume against a
// different transducer.
func TestResumeWrongSpec(t *testing.T) {
	spec, data := specArgs(t, "tau1.pt")
	spec3, _ := specArgs(t, "tau3.pt")
	ck := filepath.Join(t.TempDir(), "run.checkpoint")
	var out, errBuf bytes.Buffer
	if code := run([]string{"-spec", spec, "-data", data, "-max-nodes", "6", "-checkpoint", ck}, &out, &errBuf); code != 4 {
		t.Fatalf("checkpoint run: exit %d (stderr: %s)", code, errBuf.String())
	}
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-spec", spec3, "-data", data, "-resume", ck}, &out, &errBuf); code != 1 {
		t.Fatalf("wrong-spec resume: exit %d, want 1 (stderr: %s)", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "fingerprint") && !strings.Contains(errBuf.String(), "snapshot") {
		t.Errorf("stderr should explain the fingerprint mismatch: %s", errBuf.String())
	}
}
