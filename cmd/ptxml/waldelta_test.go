// The -delta WAL replay path: pointing -delta at a server's write-ahead
// log (directory or single segment) replays the committed records
// offline and prints the same document a recovered server would serve.
// Corruption is a typed diagnosis and exit 1 — the offline reader fails
// loudly where the live recovery path heals by truncation.
package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ptx/internal/relation"
	"ptx/internal/wal"
)

// writeWAL builds a log holding registrar mutations plus one record for
// a different database, and returns the directory and the segment path.
func writeWAL(t *testing.T) (dir, segment string) {
	t.Helper()
	dir = filepath.Join(t.TempDir(), "wal")
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	recs := []wal.Record{
		{DB: "registrar", Seq: 1, Delta: (&relation.Delta{}).Insert("course", "CS888", "SystemsII", "CS")},
		{DB: "registrar", Seq: 2, Delta: (&relation.Delta{}).Insert("prereq", "CS888", "CS301")},
		{DB: "other", Seq: 1, Delta: (&relation.Delta{}).Insert("course", "CS777", "Ghost", "CS")},
	}
	for _, rec := range recs {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly one segment, got %v (%v)", segs, err)
	}
	return dir, segs[0]
}

// TestWALDeltaReplayGolden: replaying the WAL (directory and single
// segment, with -db narrowing to registrar) prints exactly what a fresh
// run over the mutated database prints.
func TestWALDeltaReplayGolden(t *testing.T) {
	specDir := filepath.Join("..", "..", "examples", "specs")
	spec := filepath.Join(specDir, "tau1.pt")
	data := filepath.Join(specDir, "registrar.db")
	dir, segment := writeWAL(t)

	base, err := os.ReadFile(data)
	if err != nil {
		t.Fatal(err)
	}
	mutated := filepath.Join(t.TempDir(), "mutated.db")
	if err := os.WriteFile(mutated, append(base,
		[]byte("\ncourse(CS888, SystemsII, CS)\nprereq(CS888, CS301)\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	var rebuild, errBuf bytes.Buffer
	if code := run([]string{"-spec", spec, "-data", mutated}, &rebuild, &errBuf); code != 0 {
		t.Fatalf("rebuild: exit %d, stderr: %s", code, errBuf.String())
	}

	for _, target := range []string{dir, segment} {
		var replay bytes.Buffer
		errBuf.Reset()
		args := []string{"-spec", spec, "-data", data, "-delta", target, "-db", "registrar"}
		if code := run(args, &replay, &errBuf); code != 0 {
			t.Fatalf("ptxml %v: exit %d, stderr: %s", args, code, errBuf.String())
		}
		if !bytes.Equal(replay.Bytes(), rebuild.Bytes()) {
			t.Errorf("WAL replay of %s diverged from rebuild\n replay:\n%s\n rebuild:\n%s",
				target, replay.String(), rebuild.String())
		}
		if bytes.Contains(replay.Bytes(), []byte("CS777")) {
			t.Errorf("-db registrar leaked the other database's record")
		}
	}

	// Without -db every schema-compatible record replays, including the
	// other database's — the documented whole-log behavior.
	var all bytes.Buffer
	errBuf.Reset()
	if code := run([]string{"-spec", spec, "-data", data, "-delta", dir}, &all, &errBuf); code != 0 {
		t.Fatalf("whole-log replay: exit %d, stderr: %s", code, errBuf.String())
	}
	if !bytes.Contains(all.Bytes(), []byte("CS777")) {
		t.Errorf("whole-log replay dropped the other database's record:\n%s", all.String())
	}
}

// TestWALDeltaCorruptExit: a bit-flipped segment is a typed corruption
// diagnosis and exit 1, both as a bare segment and inside a directory.
func TestWALDeltaCorruptExit(t *testing.T) {
	specDir := filepath.Join("..", "..", "examples", "specs")
	spec := filepath.Join(specDir, "tau1.pt")
	data := filepath.Join(specDir, "registrar.db")
	_, segment := writeWAL(t)

	raw, err := os.ReadFile(segment)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte past the magic and the first record header so
	// the frame still parses but its checksum does not match.
	flipped := bytes.Replace(raw, []byte("CS888"), []byte("CSXXX"), 1)
	if bytes.Equal(flipped, raw) {
		t.Fatal("corruption target not found in segment")
	}
	if err := os.WriteFile(segment, flipped, 0o644); err != nil {
		t.Fatal(err)
	}

	for _, target := range []string{segment, filepath.Dir(segment)} {
		var out, errBuf bytes.Buffer
		code := run([]string{"-spec", spec, "-data", data, "-delta", target}, &out, &errBuf)
		if code != 1 {
			t.Fatalf("corrupt WAL %s: exit %d, want 1; stderr: %s", target, code, errBuf.String())
		}
		if !strings.Contains(errBuf.String(), "corrupt") {
			t.Fatalf("corruption not diagnosed: %s", errBuf.String())
		}
	}
}

func TestWALDeltaUsage(t *testing.T) {
	specDir := filepath.Join("..", "..", "examples", "specs")
	var out, errBuf bytes.Buffer
	code := run([]string{"-spec", filepath.Join(specDir, "tau1.pt"),
		"-data", filepath.Join(specDir, "registrar.db"), "-db", "registrar"}, &out, &errBuf)
	if code != 2 || !strings.Contains(errBuf.String(), "-db requires -delta") {
		t.Fatalf("-db without -delta: exit %d, stderr: %s", code, errBuf.String())
	}
}
