package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden XML files in testdata")

// TestGoldenSpecs runs every example spec through the CLI and compares
// the XML byte-for-byte against the checked-in golden files
// (testdata/<spec>.golden.xml; refresh with go test ./cmd/ptxml -update).
// Every cache mode must reproduce the golden bytes exactly.
func TestGoldenSpecs(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "specs")
	specs, err := filepath.Glob(filepath.Join(dir, "*.pt"))
	if err != nil || len(specs) == 0 {
		t.Skipf("no example specs found in %s", dir)
	}
	data := filepath.Join(dir, "registrar.db")

	for _, spec := range specs {
		spec := spec
		name := filepath.Base(spec)
		t.Run(name, func(t *testing.T) {
			runCLI := func(extra ...string) []byte {
				t.Helper()
				var out, errBuf bytes.Buffer
				args := append([]string{"-spec", spec, "-data", data}, extra...)
				if code := run(args, &out, &errBuf); code != 0 {
					t.Fatalf("ptxml %v: exit %d, stderr: %s", args, code, errBuf.String())
				}
				return out.Bytes()
			}

			got := runCLI()
			golden := filepath.Join("testdata", name+".golden.xml")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("output drifted from %s\n got:\n%s\n want:\n%s", golden, got, want)
			}

			// Every cache mode must reproduce the golden bytes. -cache
			// subtree gets the budgets lifted so real sharing happens
			// (under the default -max-nodes it silently degrades).
			for _, args := range [][]string{
				{"-cache", "query"},
				{"-cache", "subtree"},
				{"-cache", "subtree", "-max-nodes", "0"},
				{"-cache", "subtree", "-max-nodes", "0", "-workers", "4"},
			} {
				if cached := runCLI(args...); !bytes.Equal(cached, want) {
					t.Errorf("ptxml %v: output differs from golden bytes", args)
				}
			}
		})
	}
}

// TestGoldenStatsLine pins the machine-readable -stats contract,
// including the cache counters added with the memoization layer.
func TestGoldenStatsLine(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "specs")
	if _, err := os.Stat(filepath.Join(dir, "tau1.pt")); err != nil {
		t.Skip("tau1.pt not present")
	}
	var out, errBuf bytes.Buffer
	code := run([]string{
		"-spec", filepath.Join(dir, "tau1.pt"),
		"-data", filepath.Join(dir, "registrar.db"),
		"-stats", "-cache", "subtree", "-max-nodes", "0",
	}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	for _, field := range []string{"class=", "nodes=", "depth=", "queries=", "stops=",
		"cache=subtree", "hits=", "misses=", "evictions=", "shared=", "shared-nodes=", "elapsed="} {
		if !bytes.Contains(errBuf.Bytes(), []byte(field)) {
			t.Errorf("stats line missing %q: %s", field, errBuf.String())
		}
	}
}

// TestCacheFlagValidation: a bogus -cache value is a usage error.
func TestCacheFlagValidation(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-spec", "x", "-data", "y", "-cache", "bogus"}, &out, &errBuf); code != 2 {
		t.Fatalf("bogus -cache: exit %d, want 2 (stderr: %s)", code, errBuf.String())
	}
}
