// Command ptxml runs a publishing transducer over a relational instance
// and prints the resulting XML document.
//
// Usage:
//
//	ptxml -spec view.pt -data facts.db [-canonical] [-stats] [-workers N] [-max N]
//
// The spec syntax is documented in internal/parser; the data file holds
// one fact per line, e.g. course(CS401, Compilers, CS).
package main

import (
	"flag"
	"fmt"
	"os"

	"ptx/internal/parser"
	"ptx/internal/pt"
)

func main() {
	specPath := flag.String("spec", "", "transducer spec file")
	dataPath := flag.String("data", "", "relational data file")
	canonical := flag.Bool("canonical", false, "print the canonical one-line form instead of XML")
	stats := flag.Bool("stats", false, "print run statistics to stderr")
	workers := flag.Int("workers", 1, "parallel subtree expansion workers")
	maxNodes := flag.Int("max", 1_000_000, "node budget (0 = unlimited)")
	flag.Parse()

	if *specPath == "" || *dataPath == "" {
		fmt.Fprintln(os.Stderr, "usage: ptxml -spec view.pt -data facts.db")
		os.Exit(2)
	}
	spec, err := os.ReadFile(*specPath)
	fatal(err)
	tr, err := parser.ParseTransducer(string(spec))
	fatal(err)
	data, err := os.ReadFile(*dataPath)
	fatal(err)
	inst, err := parser.ParseInstance(string(data), tr.Schema)
	fatal(err)

	opts := pt.Options{MaxNodes: *maxNodes, Workers: *workers}
	res, err := tr.Run(inst, opts)
	fatal(err)
	out := res.Xi.Clone().Strip()
	out.SpliceVirtual(tr.Virtual)

	if *canonical {
		fmt.Println(out.Canonical())
	} else {
		fmt.Print(out.XML())
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "class=%s nodes=%d depth=%d queries=%d stops=%d\n",
			tr.Classify(), res.Stats.Nodes, res.Stats.MaxDepth,
			res.Stats.QueriesRun, res.Stats.StopsApplied)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptxml:", err)
		os.Exit(1)
	}
}
