// Command ptxml runs a publishing transducer over a relational instance
// and prints the resulting XML document.
//
// Usage:
//
//	ptxml -spec view.pt -data facts.db [-canonical] [-stats] [-workers N]
//	      [-max-nodes N] [-max-depth N] [-timeout D]
//	      [-cache off|query|subtree] [-cache-size N]
//	      [-retries N] [-backoff D] [-checkpoint FILE] [-resume FILE]
//	      [-delta deltas.txt]
//
// The spec syntax is documented in internal/parser; the data file holds
// one fact per line, e.g. course(CS401, Compilers, CS).
//
// With -delta the run goes through the incremental engine
// (internal/incr): the document is built once, then each
// commit-separated batch of +fact(…)/-fact(…) lines is applied as a
// live-view repair, and the FINAL document is printed — byte-identical
// to a fresh run over the mutated database (the engine's differential
// suite proves that equality). -stats adds a per-delta repair line.
//
// -delta also reads a server's write-ahead log directly: point it at a
// WAL directory (ptserve -store-dir's wal/ subdirectory) or a single
// segment file (sniffed by the "ptx-wal v1" magic) and the committed
// records replay offline, one repair per record, in log order — the
// same view of history a recovering server serves. -db filters the
// replay to one database's records; deltas outside the spec's schema
// are skipped either way, mirroring the server's replay. A corrupt
// segment (bit-flip, torn tail) is a typed diagnosis and exit 1:
// offline inspection fails loudly where the live recovery path heals.
//
// With -retries, -checkpoint or -resume the run goes through the
// supervision layer (internal/supervise): transient failures — budget
// exhaustion, deadline expiry, contained panics — are retried with
// capped exponential backoff, progress carries forward across attempts,
// and a failed run can leave a checkpoint file that a later invocation
// resumes with byte-identical output.
//
// Exit codes: 0 success, 1 error, 2 usage, 4 resource budget exhausted,
// 5 deadline exceeded / canceled. Budgets matter because relation-store
// transducers can legitimately produce doubly-exponential output
// (Proposition 1(4)): a hostile or buggy spec is indistinguishable from
// a slow one without them.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"ptx/internal/incr"
	"ptx/internal/parser"
	"ptx/internal/pt"
	"ptx/internal/relation"
	"ptx/internal/runctl"
	"ptx/internal/supervise"
	"ptx/internal/wal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ptxml", flag.ContinueOnError)
	fs.SetOutput(stderr)
	specPath := fs.String("spec", "", "transducer spec file")
	dataPath := fs.String("data", "", "relational data file")
	canonical := fs.Bool("canonical", false, "print the canonical one-line form instead of XML")
	stats := fs.Bool("stats", false, "print run statistics to stderr")
	workers := fs.Int("workers", 1, "parallel subtree expansion workers")
	maxNodes := fs.Int("max-nodes", 1_000_000, "node budget (0 = unlimited)")
	maxNodesOld := fs.Int("max", 0, "deprecated alias for -max-nodes")
	maxDepth := fs.Int("max-depth", 0, "tree-depth budget (0 = unlimited)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the run (0 = unlimited)")
	cacheFlag := fs.String("cache", "off", "memoization level: off, query or subtree (subtree needs -max-nodes 0 -max-depth 0)")
	cacheSize := fs.Int("cache-size", 0, "cache capacity in entries (0 = default)")
	retries := fs.Int("retries", 0, "retry transient failures up to N times; budgets are fresh per attempt and progress accumulates")
	backoff := fs.Duration("backoff", 10*time.Millisecond, "base delay between retries (doubles per retry, capped at 2s)")
	checkpointPath := fs.String("checkpoint", "", "write a resumable checkpoint to FILE when the run fails")
	resumePath := fs.String("resume", "", "resume from a checkpoint FILE instead of starting fresh")
	inject := fs.String("inject", "", "test aid: fail the Nth operation; format op:N:transient|permanent|internal (ops: query, node, eval)")
	deltaPath := fs.String("delta", "", "replay a delta script (+fact/-fact/commit lines) or a WAL directory/segment through the incremental engine and print the final document")
	deltaDB := fs.String("db", "", "with -delta on a WAL: replay only this database's records")
	planFlag := fs.String("plan", "on", "compiled query plans: on or off (off = optimized interpreter, escape hatch)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *planFlag != "on" && *planFlag != "off" {
		fmt.Fprintf(stderr, "ptxml: bad -plan %q: want on or off\n", *planFlag)
		return 2
	}
	cacheMode, err := pt.ParseCacheMode(*cacheFlag)
	if err != nil {
		fmt.Fprintln(stderr, "ptxml:", err)
		return 2
	}
	if *specPath == "" || *dataPath == "" {
		fmt.Fprintln(stderr, "usage: ptxml -spec view.pt -data facts.db [-timeout 1s] [-max-nodes N] [-max-depth N] [-retries N] [-checkpoint ck] [-resume ck]")
		return 2
	}
	if *maxNodesOld > 0 {
		*maxNodes = *maxNodesOld
	}
	faults, err := runctl.ParseInject(*inject)
	if err != nil {
		fmt.Fprintln(stderr, "ptxml:", err)
		return 2
	}

	spec, err := os.ReadFile(*specPath)
	if err != nil {
		return fail(stderr, err)
	}
	tr, err := parser.ParseTransducer(string(spec))
	if err != nil {
		return fail(stderr, err)
	}
	data, err := os.ReadFile(*dataPath)
	if err != nil {
		return fail(stderr, err)
	}
	inst, err := parser.ParseInstance(string(data), tr.Schema)
	if err != nil {
		return fail(stderr, err)
	}

	opts := pt.Options{
		MaxNodes:  *maxNodes,
		MaxDepth:  *maxDepth,
		Workers:   *workers,
		Limits:    &runctl.Limits{Timeout: *timeout},
		Cache:     cacheMode,
		CacheSize: *cacheSize,
		Faults:    faults,
		NoPlan:    *planFlag == "off",
	}

	if *deltaPath != "" {
		if *retries > 0 || *checkpointPath != "" || *resumePath != "" {
			fmt.Fprintln(stderr, "ptxml: -delta cannot be combined with -retries, -checkpoint or -resume")
			return 2
		}
		return runDelta(tr, inst, opts, *deltaPath, *deltaDB, *canonical, *stats, stdout, stderr)
	}
	if *deltaDB != "" {
		fmt.Fprintln(stderr, "ptxml: -db requires -delta")
		return 2
	}

	var res *pt.Result
	attempts := 1
	start := time.Now()
	if supervised := *retries > 0 || *checkpointPath != "" || *resumePath != ""; supervised {
		res, attempts, err = runSupervised(tr, inst, opts, *retries, *backoff, *checkpointPath, *resumePath, stderr)
	} else {
		res, err = tr.RunContext(context.Background(), inst, opts)
	}
	if err != nil {
		return fail(stderr, err)
	}
	if cacheMode == pt.CacheSubtrees && res.Stats.CacheMode != pt.CacheSubtrees {
		fmt.Fprintf(stderr, "ptxml: note: -cache subtree downgraded to %q (node/depth budgets and supervised runs disable subtree sharing; pass -max-nodes 0 -max-depth 0 without -retries/-checkpoint/-resume to enable it)\n",
			res.Stats.CacheMode)
	}

	// Stream straight from ξ: the writers skip registers/states and
	// splice virtual tags at emission, so no stripped/spliced copy of
	// the tree is ever materialized — and when ξ is a subtree-shared
	// DAG its unfolding goes to stdout without being built in memory.
	if *canonical {
		if err := res.Xi.WriteCanonicalVirtual(stdout, tr.Virtual); err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintln(stdout)
	} else {
		if err := res.Xi.WriteXMLVirtual(stdout, tr.Virtual); err != nil {
			return fail(stderr, err)
		}
	}
	if *stats {
		s := res.Stats
		fmt.Fprintf(stderr, "class=%s nodes=%d depth=%d queries=%d stops=%d cache=%s hits=%d misses=%d evictions=%d shared=%d shared-nodes=%d attempts=%d elapsed=%v\n",
			tr.Classify(), s.Nodes, s.MaxDepth, s.QueriesRun, s.StopsApplied,
			s.CacheMode, s.CacheHits, s.CacheMisses, s.CacheEvictions,
			s.SubtreesShared, s.NodesShared, attempts, time.Since(start).Round(time.Millisecond))
	}
	return 0
}

// runDelta builds the document as a live view and replays deltas
// against it — from a +fact/-fact/commit script (one repair per
// commit-separated batch) or straight from a server's WAL (one repair
// per committed record). The printed document is the view's final
// state, which the incremental engine keeps byte-identical to a full
// rebuild of the mutated database.
func runDelta(tr *pt.Transducer, inst *relation.Instance, opts pt.Options, path, dbFilter string, canonical, stats bool, stdout, stderr io.Writer) int {
	deltas, code := loadDeltas(tr, path, dbFilter, stderr)
	if code != 0 {
		return code
	}
	start := time.Now()
	v, err := incr.NewView(context.Background(), tr, inst, incr.Options{Run: opts})
	if err != nil {
		return fail(stderr, err)
	}
	for i, d := range deltas {
		rep, err := v.Apply(context.Background(), d)
		if err != nil {
			return fail(stderr, err)
		}
		if stats {
			fmt.Fprintf(stderr, "delta %d: ops=%d effective=%d full-rebuild=%v dirty=%d fresh=%d dropped=%d queries=%d nodes=%d\n",
				i+1, d.Len(), rep.Effective, rep.FullRebuild, rep.Dirty, rep.Fresh, rep.Dropped, rep.QueriesRun, rep.Nodes)
		}
	}
	out, version, err := v.Snapshot(canonical)
	if err != nil {
		return fail(stderr, err)
	}
	if _, err := stdout.Write(out); err != nil {
		return fail(stderr, err)
	}
	if canonical {
		fmt.Fprintln(stdout)
	}
	if stats {
		s := v.Stats()
		fmt.Fprintf(stderr, "deltas=%d version=%d nodes=%d queries-total=%d elapsed=%v\n",
			len(deltas), version, s.Nodes, s.QueriesTotal, time.Since(start).Round(time.Millisecond))
	}
	return 0
}

// loadDeltas resolves the -delta argument: a WAL directory, a single
// WAL segment (sniffed by magic), or a delta script. WAL records are
// replayed in log order; schema-rejected deltas are skipped exactly
// like the server's own recovery replay (they belong to relations this
// spec does not publish), and -db narrows the replay to one database.
// The nonzero return is the exit code on failure.
func loadDeltas(tr *pt.Transducer, path, dbFilter string, stderr io.Writer) ([]*relation.Delta, int) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fail(stderr, err)
	}
	var recs []wal.Record
	if fi.IsDir() {
		var rep wal.RecoveryReport
		recs, rep, err = wal.ReadDir(path)
		if err != nil {
			return nil, fail(stderr, err)
		}
		if len(rep.Corruptions) > 0 {
			for _, c := range rep.Corruptions {
				fmt.Fprintln(stderr, "ptxml: corrupt WAL:", c)
			}
			return nil, 1
		}
	} else {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fail(stderr, err)
		}
		if !bytes.HasPrefix(data, []byte(wal.Magic)) {
			// Not a WAL segment: the original delta-script path.
			deltas, err := parser.ParseDeltaScript(string(data), tr.Schema)
			if err != nil {
				return nil, fail(stderr, err)
			}
			return deltas, 0
		}
		var cerr *wal.CorruptError
		recs, _, cerr = wal.DecodeSegment(filepath.Base(path), data)
		if cerr != nil {
			fmt.Fprintln(stderr, "ptxml: corrupt WAL:", cerr)
			return nil, 1
		}
	}
	deltas := make([]*relation.Delta, 0, len(recs))
	for _, rec := range recs {
		if dbFilter != "" && rec.DB != dbFilter {
			continue
		}
		if rec.Delta.Validate(tr.Schema) != nil {
			continue
		}
		deltas = append(deltas, rec.Delta)
	}
	return deltas, 0
}

// runSupervised routes the run through the supervision layer, loading
// and saving checkpoint files as requested.
func runSupervised(tr *pt.Transducer, inst *relation.Instance, opts pt.Options, retries int, backoff time.Duration, checkpointPath, resumePath string, stderr io.Writer) (*pt.Result, int, error) {
	sopts := supervise.Options{
		Run:        opts,
		Retries:    retries,
		Backoff:    supervise.Backoff{Base: backoff},
		Checkpoint: checkpointPath != "",
		OnRetry: func(attempt int, err error, next pt.Options) {
			fmt.Fprintf(stderr, "ptxml: attempt %d failed (%v); retrying\n", attempt, err)
		},
	}
	var res *pt.Result
	var rep *supervise.Report
	var err error
	if resumePath != "" {
		f, openErr := os.Open(resumePath)
		if openErr != nil {
			return nil, 1, openErr
		}
		snap, decErr := supervise.DecodeSnapshot(f)
		f.Close()
		if decErr != nil {
			return nil, 1, decErr
		}
		res, rep, err = supervise.Resume(context.Background(), tr, inst, snap, sopts)
	} else {
		res, rep, err = supervise.Run(context.Background(), tr, inst, sopts)
	}
	attempts := 1
	if rep != nil {
		attempts = rep.Attempts
	}
	if err != nil && checkpointPath != "" && rep != nil && rep.Snapshot != nil {
		if saveErr := saveCheckpoint(checkpointPath, rep.Snapshot); saveErr != nil {
			fmt.Fprintf(stderr, "ptxml: writing checkpoint: %v\n", saveErr)
		} else {
			fmt.Fprintf(stderr, "ptxml: checkpoint written to %s; resume with -resume %s\n", checkpointPath, checkpointPath)
		}
	}
	return res, attempts, err
}

func saveCheckpoint(path string, snap *supervise.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// fail prints a typed, human-readable diagnosis and picks the exit
// code by error class.
func fail(stderr io.Writer, err error) int {
	var be *runctl.ErrBudget
	var ce *runctl.ErrCanceled
	var ie *runctl.ErrInternal
	switch {
	case errors.As(err, &be):
		fmt.Fprintf(stderr, "ptxml: aborted: %s budget exhausted (observed %d, limit %d); raise -max-nodes/-max-depth, add -retries (budgets are fresh per attempt), or fix the spec (relation-store transducers can produce doubly-exponential trees, Proposition 1)\n",
			be.Kind, be.Observed, be.Limit)
		return 4
	case errors.As(err, &ce):
		fmt.Fprintf(stderr, "ptxml: aborted: %v; raise -timeout, add -retries, or fix the spec\n", ce.Cause)
		return 5
	case errors.As(err, &ie):
		fmt.Fprintf(stderr, "ptxml: internal error in %s: %v\n", ie.Op, ie.Panic)
		return 1
	default:
		fmt.Fprintln(stderr, "ptxml:", err)
		return 1
	}
}
