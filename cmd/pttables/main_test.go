package main

import (
	"bytes"
	"strings"
	"testing"
)

// Exit-code tests for the regeneration harness: 0 success, 2 usage,
// 4 budget/deadline. Blocks share package-level streams, so these tests
// must not run in parallel.

func TestUsageExitCode(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(nil, &out, &errBuf); code != 2 {
		t.Fatalf("no flags: exit %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "fig1") {
		t.Errorf("usage should list the blocks: %s", errBuf.String())
	}
}

func TestFig1ExitCode(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-fig1"}, &out, &errBuf); code != 0 {
		t.Fatalf("-fig1: exit %d (stderr: %s)", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "Figure 1") {
		t.Errorf("expected the Figure 1 header: %s", out.String())
	}
}

// TestTimeoutExitCode pins the deadline path: an expired context aborts
// the block with the typed cancellation error and exit 4.
func TestTimeoutExitCode(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-fig1", "-timeout", "1ns"}, &out, &errBuf); code != 4 {
		t.Fatalf("-timeout 1ns: exit %d, want 4 (stderr: %s)", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "aborted") {
		t.Errorf("stderr should diagnose the abort: %s", errBuf.String())
	}
}

// TestTimeoutNotRetried: an expired parent context is not worth
// retrying — the supervision loop must stop immediately rather than
// burning the retry budget on a dead deadline.
func TestTimeoutNotRetried(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-fig1", "-timeout", "1ns", "-retries", "3", "-backoff", "1ms"}, &out, &errBuf); code != 4 {
		t.Fatalf("exit %d, want 4 (stderr: %s)", code, errBuf.String())
	}
	if strings.Contains(errBuf.String(), "attempt 2") {
		t.Errorf("dead deadline should not be retried repeatedly: %s", errBuf.String())
	}
}
