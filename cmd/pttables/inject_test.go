package main

import (
	"bytes"
	"strings"
	"testing"
)

// Exit-code goldens for -inject: every block builds its controllers
// from tablesCtx, so the context-carried fault plan reaches them
// without block-specific plumbing.

func TestInjectTransientAborts(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-fig1", "-inject", "query:1:transient"}, &out, &errBuf); code != 4 {
		t.Fatalf("transient inject: exit %d, want 4 (stderr: %s)", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "aborted") {
		t.Errorf("stderr should diagnose the abort: %s", errBuf.String())
	}
}

func TestInjectTransientRetried(t *testing.T) {
	var out, errBuf bytes.Buffer
	// The Nth-op fault fires once; the block restarts from its top and
	// the second attempt regenerates Figure 1 completely.
	code := run([]string{"-fig1", "-inject", "query:1:transient", "-retries", "2", "-backoff", "1ms"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("retried inject: exit %d, want 0 (stderr: %s)", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "retrying from the top of the block") {
		t.Errorf("expected the block-restart notice: %s", errBuf.String())
	}
	if !strings.Contains(out.String(), "Figure 1") {
		t.Errorf("expected the Figure 1 output after retry: %s", out.String())
	}
}

func TestInjectPermanentFails(t *testing.T) {
	var out, errBuf bytes.Buffer
	// Permanent faults are not retryable: the retry budget is not
	// burned and the block fails plainly.
	code := run([]string{"-fig1", "-inject", "query:1:permanent", "-retries", "3", "-backoff", "1ms"}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("permanent inject: exit %d, want 1 (stderr: %s)", code, errBuf.String())
	}
	if strings.Contains(errBuf.String(), "retrying") {
		t.Errorf("permanent fault must not be retried: %s", errBuf.String())
	}
}

func TestInjectMalformedUsage(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-fig1", "-inject", "bogus"}, &out, &errBuf); code != 2 {
		t.Fatalf("malformed -inject: exit %d, want 2", code)
	}
}
