// Command pttables regenerates every table and figure of the paper's
// evaluation from the implementations in this repository:
//
//	pttables -fig1    Figure 1: the three registrar views
//	pttables -table1  Table I: language → smallest transducer class
//	pttables -table2  Table II: decision problems (decidable cells run,
//	                  undecidable cells validated via their reductions)
//	pttables -table3  Table III: relational expressiveness round trips
//	pttables -prop1   Proposition 1: output-size blowups
//	pttables -prop3   Proposition 3: PTIME data complexity sweep
//	pttables -all     everything
//
// -retries N re-runs a block that failed for a transient reason
// (deadline, budget, contained panic) with capped backoff; a block
// restarts from its beginning, so partial output may repeat on stderr
// notice. Exit codes: 0 success, 1 error, 2 usage, 4 budget/deadline.
//
// EXPERIMENTS.md records the paper-vs-measured outcome for each block.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"ptx/internal/datalog"
	"ptx/internal/decide"
	"ptx/internal/families"
	"ptx/internal/langs"
	"ptx/internal/logic"
	"ptx/internal/machines"
	"ptx/internal/pt"
	"ptx/internal/reduction"
	"ptx/internal/registrar"
	"ptx/internal/relation"
	"ptx/internal/runctl"
	"ptx/internal/supervise"
	"ptx/internal/value"
	"ptx/internal/xmltree"
)

// tablesCtx carries the -timeout deadline into every transformation and
// decision call; exceeding it aborts the current block with a typed
// error instead of hanging the whole regeneration.
var tablesCtx = context.Background()

// stdout and stderrW are the command's streams, replaced by the
// in-process exit-code tests.
var (
	stdout  io.Writer = os.Stdout
	stderrW io.Writer = os.Stderr
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	stdout, stderrW = out, errw
	fs := flag.NewFlagSet("pttables", flag.ContinueOnError)
	fs.SetOutput(errw)
	fig1 := fs.Bool("fig1", false, "Figure 1 views")
	table1 := fs.Bool("table1", false, "Table I")
	table2 := fs.Bool("table2", false, "Table II")
	table3 := fs.Bool("table3", false, "Table III")
	prop1 := fs.Bool("prop1", false, "Proposition 1 blowups")
	prop3 := fs.Bool("prop3", false, "Proposition 3 sweep")
	all := fs.Bool("all", false, "run everything")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the whole regeneration (0 = unlimited)")
	retries := fs.Int("retries", 0, "re-run a transiently failed block up to N times")
	backoff := fs.Duration("backoff", 10*time.Millisecond, "base delay between block retries (doubles per retry, capped at 2s)")
	inject := fs.String("inject", "", "test aid: fail the Nth operation; format op:N:kind as in ptxml")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	faults, err := runctl.ParseInject(*inject)
	if err != nil {
		fmt.Fprintln(errw, "pttables:", err)
		return 2
	}

	tablesCtx = context.Background()
	if faults != nil {
		// Every block builds its controllers from tablesCtx, so a
		// context-carried plan reaches all of them without new knobs.
		tablesCtx = runctl.WithPlan(tablesCtx, faults)
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		tablesCtx, cancel = context.WithTimeout(tablesCtx, *timeout)
		defer cancel()
	}

	ran, code := false, 0
	runB := func(want bool, name string, f func()) {
		if !(want || *all) || code != 0 {
			if want || *all {
				ran = true
			}
			return
		}
		ran = true
		if err := runBlock(name, *retries, supervise.Backoff{Base: *backoff}, f); err != nil {
			code = exitFor(err)
		}
	}
	runB(*fig1, "fig1", runFig1)
	runB(*table1, "table1", runTable1)
	runB(*table2, "table2", runTable2)
	runB(*table3, "table3", runTable3)
	runB(*prop1, "prop1", runProp1)
	runB(*prop3, "prop3", runProp3)
	if !ran {
		fs.Usage()
		return 2
	}
	return code
}

// blockFailure carries an error out of a block through must/must2;
// runBlock recovers it at the block boundary so transient failures can
// be retried without unwinding the whole process.
type blockFailure struct{ err error }

// runBlock executes one regeneration block under the supervision retry
// policy: a block that fails transiently (deadline, budget, contained
// panic) restarts from its beginning.
func runBlock(name string, retries int, b supervise.Backoff, f func()) error {
	attempt := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				bf, ok := p.(blockFailure)
				if !ok {
					panic(p)
				}
				err = bf.err
			}
		}()
		f()
		return nil
	}
	_, err := supervise.Retry(tablesCtx, retries, b, nil, func(n int) error {
		err := attempt()
		if err != nil && n <= retries && supervise.Retryable(err) {
			fmt.Fprintf(stderrW, "pttables: block %s attempt %d failed (%v); retrying from the top of the block\n", name, n, err)
		}
		return err
	})
	return err
}

// exitFor maps a block's terminal error to the process exit code.
func exitFor(err error) int {
	var ce *runctl.ErrCanceled
	var be *runctl.ErrBudget
	if errors.As(err, &ce) || errors.As(err, &be) || runctl.IsTransient(err) {
		fmt.Fprintf(stderrW, "pttables: aborted: %v (raise -timeout or the budget, or add -retries)\n", err)
		return 4
	}
	fmt.Fprintln(stderrW, "pttables:", err)
	return 1
}

func header(s string) {
	fmt.Fprintf(stdout, "\n=== %s ===\n\n", s)
}

func must[T any](v T, err error) T {
	if err != nil {
		panic(blockFailure{err})
	}
	return v
}

// --- Figure 1 -----------------------------------------------------------

func runFig1() {
	header("Figure 1: the registrar views τ1, τ2, τ3")
	inst := registrar.SampleInstance()
	for _, tr := range []*pt.Transducer{registrar.Tau1(), registrar.Tau2(), registrar.Tau3()} {
		out := must(tr.OutputContext(tablesCtx, inst, pt.Options{MaxNodes: 100000}))
		fmt.Fprintf(stdout, "%s  —  %s\n", tr.Name, tr.Classify())
		fmt.Fprint(stdout, "  canonical: ")
		if err := out.WriteCanonical(stdout); err != nil {
			panic(blockFailure{err})
		}
		fmt.Fprintln(stdout)
		fmt.Fprintf(stdout, "  size=%d depth=%d\n\n", out.Size(), out.Depth())
	}
}

// --- Table I ------------------------------------------------------------

func runTable1() {
	header("Table I: characterization of existing XML publishing languages")
	fmt.Fprintf(stdout, "%-28s %-20s %-28s %-28s\n", "product", "method", "Table I class", "representative's class")
	for _, row := range langs.TableI() {
		got, err := row.CheckRow()
		status := got.String()
		if err != nil {
			status = "ERROR: " + err.Error()
		}
		fmt.Fprintf(stdout, "%-28s %-20s %-28s %-28s\n", row.Product, row.Method, row.PaperClass, status)
	}
}

// --- Table II -----------------------------------------------------------

func runTable2() {
	header("Table II: decision problems")

	// Emptiness, PT(CQ, S, normal): PTIME — scale the transducer size.
	fmt.Fprintln(stdout, "emptiness, PT(CQ, S, normal) — PTIME (Thm 1(1)); scaling the spec:")
	for _, n := range []int{4, 8, 16, 32} {
		tr := chainTransducer(n)
		start := time.Now()
		nonempty := must(decide.EmptinessContext(tablesCtx, tr))
		fmt.Fprintf(stdout, "  %3d rules: nonempty=%v in %v\n", n, nonempty, time.Since(start).Round(time.Microsecond))
	}

	// Emptiness, PT(CQ, S, virtual): NP-complete — 3SAT agreement.
	fmt.Fprintln(stdout, "\nemptiness, PT(CQ, S, virtual) — NP-complete (Thm 1(1)); 3SAT reduction agreement:")
	rng := rand.New(rand.NewSource(7))
	agree, total := 0, 0
	for i := 0; i < 15; i++ {
		f := randomCNF(rng, 3, 3)
		tr := must(reduction.EmptinessFrom3SAT(f))
		nonempty := must(decide.EmptinessContext(tablesCtx, tr))
		total++
		if nonempty == f.Satisfiable() {
			agree++
		}
	}
	fmt.Fprintf(stdout, "  decision == brute-force SAT on %d/%d random formulas\n", agree, total)

	// Membership, PT(CQ, tuple, normal): Σp2 — small-model search.
	fmt.Fprintln(stdout, "\nmembership, PT(CQ, tuple, normal) — Σp2-complete (Thm 1(2)); small-model search:")
	tr := chainTransducer(2)
	for _, tree := range []string{"r(a0(a1))", "r(a0(a1),a0(a1))", "r(a0)", "r(b)"} {
		target := must(xmltree.Parse(tree))
		start := time.Now()
		ok, err := decide.MembershipContext(tablesCtx, tr, target, decide.MembershipOptions{
			FreshValues: 3, MaxTuplesPerRel: 3, MaxCandidates: 500000})
		if err != nil {
			fmt.Fprintf(stdout, "  %-10s error: %v\n", tree, err)
			continue
		}
		fmt.Fprintf(stdout, "  %-10s member=%v in %v\n", tree, ok, time.Since(start).Round(time.Microsecond))
	}

	// Equivalence, PTnr(CQ, tuple, O): Πp3-complete — Claim 4 checker.
	fmt.Fprintln(stdout, "\nequivalence, PTnr(CQ, tuple, O) — Πp3-complete (Thm 2(4)); Claim 4 checker:")
	eqYes := must(decide.EquivalenceContext(tablesCtx, chainTransducer(3), chainTransducer(3)))
	eqNo := must(decide.EquivalenceContext(tablesCtx, chainTransducer(3), chainTransducer(4)))
	fmt.Fprintf(stdout, "  identical specs equivalent: %v; different depths equivalent: %v\n", eqYes, eqNo)

	// Undecidable cells, validated through their reductions.
	fmt.Fprintln(stdout, "\nundecidable cells (validated via the reduction constructions):")
	halting := &machines.TwoRegisterMachine{
		Instrs: []machines.Instr{
			machines.AddInstr(machines.R1, 1),
			machines.SubInstr(machines.R1, 2, 1),
		},
		Halt: 2,
	}
	t1, t2 := must2(reduction.EquivalenceFrom2RM(halting))
	inst := reduction.EncodeRun(halting, 100)
	o1 := must(t1.OutputContext(tablesCtx, inst, pt.Options{MaxNodes: 100000}))
	o2 := must(t2.OutputContext(tablesCtx, inst, pt.Options{MaxNodes: 100000}))
	fmt.Fprintf(stdout, "  equivalence ← 2RM halting (Thm 1(3)): halting run separates τ1/τ2: %v\n", !o1.Equal(o2))

	dfa := &machines.TwoHeadDFA{States: 2, Start: 0, Accept: 1,
		Delta: map[machines.DFAKey]machines.DFAMove{
			{State: 0, In1: '1', In2: '1'}: {State: 1, Move1: machines.Right, Move2: machines.Right},
		}}
	trA, target := must2(reduction.MembershipFrom2HeadDFA(dfa))
	out := must(trA.OutputContext(tablesCtx, reduction.EncodeWord("1"), pt.Options{MaxNodes: 100000}))
	fmt.Fprintf(stdout, "  membership ← 2-head DFA emptiness (Thm 1(2)): accepted word hits target tree: %v\n",
		out.Equal(target))

	fmt.Fprintln(stdout, "  emptiness/membership/equivalence for FO/IFP ← FO query equivalence (Prop. 2): see ptstatic (UNDECIDABLE verdicts)")
}

func must2[A, B any](a A, b B, err error) (A, B) {
	if err != nil {
		panic(blockFailure{err})
	}
	return a, b
}

// --- Table III ----------------------------------------------------------

func runTable3() {
	header("Table III: relational expressiveness")

	// PT(CQ, tuple, O) = LinDatalog (Thm 3(2)): both translation
	// directions agree on random instances.
	fmt.Fprintln(stdout, "PT(CQ, tuple, O) = LinDatalog (Thm 3(2)):")
	tr := registrar.Tau1()
	prog := must(datalog.FromTransducer(tr, "course"))
	okA := 0
	for n := 1; n <= 5; n++ {
		inst := registrar.ChainInstance(n)
		a := must(tr.OutputRelationContext(tablesCtx, inst, "course", pt.Options{}))
		b := must(prog.Eval(inst))
		if a.Equal(b) {
			okA++
		}
	}
	fmt.Fprintf(stdout, "  τ1 → LinDatalog: output relations agree on %d/5 chain instances\n", okA)

	tc := tcProgram()
	tr2 := must(datalog.ToTransducer(tc))
	okB, rng := 0, rand.New(rand.NewSource(5))
	for i := 0; i < 8; i++ {
		inst := randomGraph(rng, 5, 7)
		a := must(tc.Eval(inst))
		b := must(tr2.OutputRelationContext(tablesCtx, inst, "ans", pt.Options{MaxNodes: 500000}))
		if a.Equal(b) {
			okB++
		}
	}
	fmt.Fprintf(stdout, "  LinDatalog(TC) → transducer: answers agree on %d/8 random graphs\n", okB)

	// PTnr(CQ, tuple, O) = UCQ (Prop. 6(1)).
	fmt.Fprintln(stdout, "\nPTnr(CQ, tuple, O) = UCQ (Prop. 6(1)):")
	fmt.Fprintln(stdout, "  path-query extraction validated in decide tests (OutputUCQ == execution)")

	// PT(CQ, relation, O) ⊄ PT(FO, tuple, O) (Prop. 4(5,7)): the
	// equal-length two-leg walk query.
	fmt.Fprintln(stdout, "\nPT(CQ, relation, O) witness (Prop. 4(5), corrected construction):")
	via := families.ViaTransducer()
	inst := relation.NewInstance(families.ViaSchema())
	for _, e := range [][2]string{{"c1", "x"}, {"x", "c2"}, {"c2", "y"}, {"y", "c3"}} {
		inst.Add("E", e[0], e[1])
	}
	rel := must(via.OutputRelationContext(tablesCtx, inst, "ao", pt.Options{MaxNodes: 100000}))
	fmt.Fprintf(stdout, "  equal-length c1→c2→c3 legs fire the relation-register query: %v (%s)\n", !rel.Empty(), rel)

	// Monotonicity of CQ transducers (used by Prop. 4(6) and Thm 5).
	fmt.Fprintln(stdout, "\nCQ transducers are monotone (Prop. 4(6) proof idea):")
	mono := true
	rngM := rand.New(rand.NewSource(11))
	for i := 0; i < 10; i++ {
		small := randomGraph(rngM, 4, 5)
		big := small.Clone()
		big.Add("E", string(value.Of(rngM.Intn(4))), string(value.Of(rngM.Intn(4))))
		u := families.UnfoldTransducer()
		// UnfoldTransducer uses relation R; rename instance.
		si := relation.NewInstance(families.GraphSchema())
		bi := relation.NewInstance(families.GraphSchema())
		small.Rel("E").Each(func(t value.Tuple) bool { si.Add("R", string(t[0]), string(t[1])); return true })
		big.Rel("E").Each(func(t value.Tuple) bool { bi.Add("R", string(t[0]), string(t[1])); return true })
		a := must(u.OutputRelationContext(tablesCtx, si, "a", pt.Options{MaxNodes: 500000}))
		b := must(u.OutputRelationContext(tablesCtx, bi, "a", pt.Options{MaxNodes: 500000}))
		if !a.SubsetOf(b) {
			mono = false
		}
	}
	fmt.Fprintf(stdout, "  Rτ(I0) ⊆ Rτ(I1) for I0 ⊆ I1 on 10/10 random pairs: %v\n", mono)

	// PT(IFP, tuple, O) = IFP (Thm 3(5)): IFP closure via SQL/XML view.
	fmt.Fprintln(stdout, "\nPT(IFP, tuple, O) = IFP (Thm 3(5)): IFP-query views compile and run (see langs tests)")
}

// --- Proposition 1 ------------------------------------------------------

func runProp1() {
	header("Proposition 1: output-size blowups")
	fmt.Fprintln(stdout, "(3) PT(CQ, tuple, normal) — diamond chains, |τ1(Iₙ)| ≥ 2ⁿ:")
	unfold := families.UnfoldTransducer()
	for n := 2; n <= 10; n += 2 {
		inst := families.DiamondChain(n)
		start := time.Now()
		out := must(unfold.OutputContext(tablesCtx, inst, pt.Options{}))
		fmt.Fprintf(stdout, "  n=%2d |I|=%3d |τ(I)|=%8d (2^n=%7d) %v\n",
			n, inst.Size(), out.Size(), 1<<n, time.Since(start).Round(time.Millisecond))
	}
	fmt.Fprintln(stdout, "\n(4) PT(CQ, relation, normal) — binary counter, |τ2(Jₙ)| ≥ 2^(2ⁿ):")
	counter := families.CounterTransducer()
	for n := 1; n <= 3; n++ {
		inst := families.CounterInstance(n)
		start := time.Now()
		out := must(counter.OutputContext(tablesCtx, inst, pt.Options{MaxNodes: 5_000_000}))
		fmt.Fprintf(stdout, "  n=%d |J|=%2d |τ(J)|=%8d (2^2^n=%5d) %v\n",
			n, inst.Size(), out.Size(), 1<<(1<<n), time.Since(start).Round(time.Millisecond))
	}
}

// --- Proposition 3 ------------------------------------------------------

func runProp3() {
	header("Proposition 3: PTnr(IFP, tuple, O) evaluates in PTIME")
	tr := must(langs.ForXMLView())
	for _, n := range []int{20, 40, 80, 160} {
		inst := registrar.ChainInstance(n)
		start := time.Now()
		out := must(tr.OutputContext(tablesCtx, inst, pt.Options{}))
		fmt.Fprintf(stdout, "  |I|=%4d nodes=%5d elapsed=%v\n", inst.Size(), out.Size(),
			time.Since(start).Round(time.Millisecond))
	}
}

// --- helpers ------------------------------------------------------------

// chainTransducer builds a nonrecursive CQ chain of n levels a0→a1→…:
// level i copies the register, so the spec's size scales with n.
func chainTransducer(n int) *pt.Transducer {
	s := relation.NewSchema().MustDeclare("R1", 1)
	x := logic.Var("x")
	t := pt.New(fmt.Sprintf("chain%d", n), s, "q0", "r")
	for i := 0; i < n; i++ {
		t.DeclareTag(fmt.Sprintf("a%d", i), 1)
	}
	t.AddRule("q0", "r", pt.Item("q1", "a0",
		logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))))
	for i := 1; i < n; i++ {
		t.AddRule(fmt.Sprintf("q%d", i), fmt.Sprintf("a%d", i-1),
			pt.Item(fmt.Sprintf("q%d", i+1), fmt.Sprintf("a%d", i),
				logic.MustQuery([]logic.Var{x}, nil, logic.R(pt.RegRel, x))))
	}
	return t
}

func tcProgram() *datalog.Program {
	x, y, z := logic.Var("x"), logic.Var("y"), logic.Var("z")
	return &datalog.Program{
		EDB:    relation.NewSchema().MustDeclare("E", 2),
		Output: "tc",
		Rules: []*datalog.Rule{
			{Head: logic.R("tc", x, y), Body: []*logic.Atom{logic.R("E", x, y)}},
			{Head: logic.R("tc", x, z), Body: []*logic.Atom{logic.R("tc", x, y), logic.R("E", y, z)}},
		},
	}
}

func randomGraph(rng *rand.Rand, n, m int) *relation.Instance {
	inst := relation.NewInstance(relation.NewSchema().MustDeclare("E", 2))
	for k := 0; k < m; k++ {
		inst.Add("E", string(value.Of(rng.Intn(n))), string(value.Of(rng.Intn(n))))
	}
	return inst
}

func randomCNF(rng *rand.Rand, vars, clauses int) *reduction.CNF {
	f := &reduction.CNF{NumVars: vars}
	for i := 0; i < clauses; i++ {
		var c reduction.Clause
		for j := 0; j < 3; j++ {
			c[j] = reduction.Literal{Var: 1 + rng.Intn(vars), Neg: rng.Intn(2) == 1}
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}
