package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"ptx/internal/serve"
	"ptx/internal/supervise"
	"ptx/internal/testutil"
)

// syncBuffer lets the test poll stdout while run is still writing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on ([^ \n]+)`)

// startCoord launches run on a :0 listener and returns the base URL,
// the signal channel that stops it, and the exit-code channel.
func startCoord(t *testing.T, extraArgs ...string) (string, chan os.Signal, chan int, *syncBuffer) {
	t.Helper()
	var stdout syncBuffer
	var stderr syncBuffer
	sigs := make(chan os.Signal, 1)
	exit := make(chan int, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	go func() { exit <- run(args, &stdout, &stderr, sigs) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(stdout.String()); m != nil {
			return "http://" + m[1], sigs, exit, &stdout
		}
		select {
		case code := <-exit:
			t.Fatalf("ptcoord exited %d before listening\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("ptcoord never announced its address\nstdout: %s\nstderr: %s", stdout.String(), stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// worker is an in-process ptserve-equivalent node the test registers
// with the coordinator over the /join wire, exactly as `ptserve -join`
// would.
type worker struct {
	id  string
	srv *serve.Server
	ts  *httptest.Server
}

func startWorker(t *testing.T, id string, store supervise.CheckpointStore) *worker {
	t.Helper()
	reg := serve.NewRegistry()
	if err := reg.LoadDir("../../examples/specs"); err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Registry: reg, NodeID: id, Store: store, Workers: 4, Queue: 8})
	if err != nil {
		t.Fatal(err)
	}
	w := &worker{id: id, srv: srv, ts: httptest.NewServer(srv.Handler())}
	t.Cleanup(func() {
		w.ts.Close()
		srv.Close()
	})
	return w
}

func joinWire(t *testing.T, coordURL string, w *worker) {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"id": w.id, "url": w.ts.URL})
	resp, err := http.Post(coordURL+"/join", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("join %s: status %d: %s", w.id, resp.StatusCode, msg)
	}
}

// TestCoordLifecycle is the binary-level cluster walkthrough: the
// coordinator comes up empty (alive, not ready), two workers register
// over the /join wire, a publish routes to a worker, hard-killing that
// worker fails the next publish over to the survivor, and SIGTERM
// drains the coordinator clean.
func TestCoordLifecycle(t *testing.T) {
	base := runtime.NumGoroutine()
	url, sigs, exit, stdout := startCoord(t, "-probe-interval", "50ms")

	resp, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty-cluster readyz = %d, want 503", resp.StatusCode)
	}

	store, err := supervise.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	workers := map[string]*worker{}
	for _, id := range []string{"w1", "w2"} {
		w := startWorker(t, id, store)
		joinWire(t, url, w)
		workers[id] = w
	}

	resp, err = http.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz with two workers = %d, want 200", resp.StatusCode)
	}

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(url+"/publish", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp, b
	}

	resp, body := post(`{"spec":"tau1","db":"registrar"}`)
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("<course>")) {
		t.Fatalf("routed publish = %d: %.120s", resp.StatusCode, body)
	}
	served := resp.Header.Get("X-Ptserve-Node")
	if _, ok := workers[served]; !ok {
		t.Fatalf("X-Ptserve-Node %q is not a known worker", served)
	}

	// Typed errors survive the coordinator hop with their pinned status.
	resp, body = post(`{"spec":"nope","db":"registrar"}`)
	var eb struct {
		Error struct{ Kind string }
	}
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("error body: %v\n%s", err, body)
	}
	if resp.StatusCode != http.StatusBadRequest || eb.Error.Kind != "validation" {
		t.Fatalf("unknown spec through coordinator: status %d kind %q", resp.StatusCode, eb.Error.Kind)
	}

	// Hard-kill the worker that served the request; the next publish
	// (a distinct body, so dedup cannot answer from the shared flight)
	// must fail over to the survivor.
	workers[served].ts.Close()
	var survivor string
	for id := range workers {
		if id != served {
			survivor = id
		}
	}
	resp, body = post(`{"spec":"tau1","db":"registrar","limits":{"timeout_ms":5001}}`)
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("<course>")) {
		t.Fatalf("failover publish = %d: %.120s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Ptserve-Node"); got != survivor {
		t.Fatalf("failover went to %q, want survivor %q", got, survivor)
	}
	if resp.Header.Get("X-Ptcoord-Failover") != "true" {
		t.Fatal("failover response not marked X-Ptcoord-Failover")
	}

	// SIGTERM → graceful drain → exit 0, with the protocol narrated.
	sigs <- syscall.SIGTERM
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d after SIGTERM, want 0\n%s", code, stdout.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ptcoord did not exit after SIGTERM")
	}
	out := stdout.String()
	if !strings.Contains(out, "draining") || !strings.Contains(out, "drained, bye") {
		t.Fatalf("drain protocol not narrated:\n%s", out)
	}
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	testutil.SettledGoroutines(t, base)
}

// TestCoordStaticNodes covers the repeated -node flag: a live static
// worker is in rotation at startup; a dead one joins down without
// failing the boot.
func TestCoordStaticNodes(t *testing.T) {
	store, err := supervise.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w := startWorker(t, "static-1", store)
	url, sigs, exit, stdout := startCoord(t,
		"-node", "static-1="+w.ts.URL,
		"-node", "ghost=http://127.0.0.1:1", // nothing listens there
		"-probe-interval", "-1ms")
	if !strings.Contains(stdout.String(), "1/2 workers up") {
		t.Fatalf("startup did not report 1/2 workers up:\n%s", stdout.String())
	}

	resp, err := http.Post(url+"/publish", "application/json",
		strings.NewReader(`{"spec":"tau1","db":"registrar"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("<course>")) {
		t.Fatalf("static-node publish = %d: %.120s", resp.StatusCode, body)
	}

	sigs <- syscall.SIGTERM
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ptcoord did not exit")
	}
}

func TestCoordUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	sigs := make(chan os.Signal)
	if code := run([]string{"-bogus"}, &out, &errOut, sigs); code != 2 {
		t.Fatalf("unknown flag: exit %d, want 2", code)
	}
	if code := run([]string{"-node", "malformed"}, &out, &errOut, sigs); code != 2 {
		t.Fatalf("malformed -node: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "id=url") {
		t.Fatalf("-node format error not surfaced: %s", errOut.String())
	}
}
