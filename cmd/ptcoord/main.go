// Command ptcoord is the cluster coordinator: it consistent-hash
// routes publish requests across a fleet of ptserve workers, probes
// their health, and fails requests over to ring successors — carrying
// checkpoint-handoff coordinates so a dead worker's supervised runs
// resume on their new owner.
//
// Usage:
//
//	ptcoord [-addr :8070] [-node id=url ...] [-vnodes N] [-replicas N]
//	        [-probe-interval D] [-fail-threshold N] [-drain D]
//	        [-allow-inject] [-chaos SPEC]
//
// Endpoints:
//
//	POST /publish  routed to the owning worker, failover on death
//	POST /join     {"id":"n1","url":"http://..."} dynamic registration
//	GET  /healthz  liveness + routing counters
//	GET  /readyz   readiness (503 while no worker is up, or draining)
//
// Workers can be listed statically with repeated -node flags, register
// themselves with ptserve's -join flag, or both. SIGTERM/SIGINT drains:
// readiness flips, the prober stops, in-flight forwards are canceled.
//
// -chaos injects deterministic faults into the coordinator's OUTBOUND
// client — every forward, probe, and catch-up sync crosses the chaotic
// link (spec syntax as in ptserve; the local peer is named "coord").
// Chaos testing only: it requires the explicit -allow-inject
// acknowledgement. Watch the circuit breakers react on /healthz.
//
// Exit codes: 0 clean shutdown, 1 error, 2 usage.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ptx/internal/cluster"
	"ptx/internal/netchaos"
)

// nodeFlags collects repeated -node id=url arguments.
type nodeFlags [][2]string

func (n *nodeFlags) String() string { return fmt.Sprint([][2]string(*n)) }

func (n *nodeFlags) Set(v string) error {
	id, url, ok := strings.Cut(v, "=")
	if !ok || id == "" || url == "" {
		return fmt.Errorf("want id=url, got %q", v)
	}
	*n = append(*n, [2]string{id, url})
	return nil
}

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sigs))
}

// run is main minus the process plumbing: tests drive it with an
// in-memory signal channel and read the listen address (so -addr :0
// works) from the "listening on" line.
func run(args []string, stdout, stderr io.Writer, sigs <-chan os.Signal) int {
	fs := flag.NewFlagSet("ptcoord", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8070", "listen address")
	var nodes nodeFlags
	fs.Var(&nodes, "node", "worker as id=url (repeatable; workers may also self-register via /join)")
	vnodes := fs.Int("vnodes", 0, "virtual nodes per worker on the hash ring (0 = default)")
	replicas := fs.Int("replicas", 0, "max failover attempts per request (0 = every up worker)")
	probeInterval := fs.Duration("probe-interval", 500*time.Millisecond, "health-probe cadence (negative disables probing)")
	failThreshold := fs.Int("fail-threshold", 0, "consecutive probe failures before a worker is marked down (0 = default)")
	drain := fs.Duration("drain", 10*time.Second, "how long a SIGTERM drain waits for in-flight forwards")
	allowInject := fs.Bool("allow-inject", false, "allow the -chaos fault-injection flag (chaos testing only)")
	chaos := fs.String("chaos", "", "network fault spec for the outbound client, e.g. seed=7,partition=coord->n1 (requires -allow-inject)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := cluster.Config{
		VNodes:        *vnodes,
		Replicas:      *replicas,
		ProbeInterval: *probeInterval,
		FailThreshold: *failThreshold,
	}
	if *chaos != "" {
		if !*allowInject {
			fmt.Fprintln(stderr, "ptcoord: -chaos requires -allow-inject (fault injection is for chaos testing only)")
			return 2
		}
		mesh, err := netchaos.Parse(*chaos)
		if err != nil {
			fmt.Fprintln(stderr, "ptcoord:", err)
			return 2
		}
		// All coordinator egress — forwards, probes, syncs — rides this
		// client, so the whole control plane feels the injected faults
		// and the breakers/hedging have something real to absorb.
		cfg.Client = &http.Client{Transport: mesh.Transport("coord", nil)}
		fmt.Fprintf(stdout, "ptcoord: chaos mesh active (%s)\n", *chaos)
	}
	coord := cluster.New(cfg)
	// A dead static node joins down, not fatally: the prober brings it
	// into rotation when it comes up. Join only errors on bad flags.
	for _, n := range nodes {
		if err := coord.Join(n[0], n[1]); err != nil {
			fmt.Fprintf(stderr, "ptcoord: node %q: %v\n", n[0], err)
			coord.Close()
			return 2
		}
	}
	up := 0
	for _, m := range coord.Metrics().Members {
		if m.Up {
			up++
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "ptcoord:", err)
		coord.Close()
		return 1
	}
	fmt.Fprintf(stdout, "ptcoord: listening on %s (%d/%d workers up)\n", ln.Addr(), up, len(nodes))

	hs := &http.Server{Handler: coord.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "ptcoord:", err)
		coord.Close()
		return 1
	case sig := <-sigs:
		fmt.Fprintf(stdout, "ptcoord: %v received, draining (deadline %v)\n", sig, *drain)
	}

	code := 0
	dctx, dcancel := context.WithTimeout(context.Background(), *drain)
	defer dcancel()
	if err := coord.Drain(dctx); err != nil {
		fmt.Fprintln(stderr, "ptcoord: drain:", err)
		code = 1
	}
	sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintln(stderr, "ptcoord: shutdown:", err)
		code = 1
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "ptcoord:", err)
		code = 1
	}
	fmt.Fprintln(stdout, "ptcoord: drained, bye")
	return code
}
