package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"ptx/internal/supervise"
)

// TestCoordChaosGating pins the double opt-in on the coordinator side.
func TestCoordChaosGating(t *testing.T) {
	var out, errOut bytes.Buffer
	sigs := make(chan os.Signal)
	if code := run([]string{"-chaos", "refuse=1"}, &out, &errOut, sigs); code != 2 {
		t.Fatalf("-chaos without -allow-inject: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-allow-inject") {
		t.Fatalf("gating error not surfaced: %s", errOut.String())
	}
	errOut.Reset()
	if code := run([]string{"-allow-inject", "-chaos", "partition=oneway"}, &out, &errOut, sigs); code != 2 {
		t.Fatalf("malformed -chaos spec: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "partition") {
		t.Fatalf("spec error not surfaced: %s", errOut.String())
	}
}

// TestCoordChaosRefusesEgress proves the -chaos mesh really sits on
// the coordinator's outbound client: with refuse=1 a perfectly healthy
// worker is unreachable — its join probe fails, it registers down, and
// a routed publish gets the typed no-ready error instead of bytes.
func TestCoordChaosRefusesEgress(t *testing.T) {
	store, err := supervise.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w := startWorker(t, "refused-1", store)
	url, sigs, exit, stdout := startCoord(t,
		"-probe-interval", "-1ms",
		"-allow-inject", "-chaos", "seed=3,refuse=1")
	if !strings.Contains(stdout.String(), "chaos mesh active") {
		t.Fatalf("chaos mesh not narrated:\n%s", stdout.String())
	}
	joinWire(t, url, w)

	resp, err := http.Post(url+"/publish", "application/json",
		strings.NewReader(`{"spec":"tau1","db":"registrar"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("publish succeeded through a refuse-all mesh: %.120s", body)
	}
	if !bytes.Contains(body, []byte(`"error"`)) {
		t.Fatalf("failure is not a typed error body: %d %.200s", resp.StatusCode, body)
	}

	sigs <- syscall.SIGTERM
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d after SIGTERM, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ptcoord did not exit")
	}
}
