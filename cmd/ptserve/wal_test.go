// The durability lifecycle through the full binary: with -store-dir a
// mutation is WAL-logged before its ack, so killing the process and
// restarting it on the same directory serves post-delta bytes — the
// CLI-level face of the "no acknowledged delta is ever lost" contract.
package main

import (
	"bytes"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

var walRecoveredRE = regexp.MustCompile(`wal: (\d+) records recovered`)

func TestServeWALRestartServesPostDelta(t *testing.T) {
	dir := t.TempDir()

	url, sigs, exit, stdout := startServer(t, "-node-id", "w1", "-store-dir", dir)
	if m := walRecoveredRE.FindStringSubmatch(stdout.String()); m == nil || m[1] != "0" {
		t.Fatalf("fresh boot should recover 0 records:\n%s", stdout.String())
	}

	resp, err := http.Post(url+"/mutate", "application/json", strings.NewReader(
		`{"spec":"tau1","db":"registrar","ops":[{"op":"insert","rel":"course","tuple":["CS999","StormCourse","CS"]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate = %d: %s", resp.StatusCode, body)
	}

	publish := func(url string) []byte {
		t.Helper()
		resp, err := http.Post(url+"/publish", "application/json",
			strings.NewReader(`{"spec":"tau1","db":"registrar"}`))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("publish = %d: %s", resp.StatusCode, body)
		}
		return body
	}
	if !bytes.Contains(publish(url), []byte("StormCourse")) {
		t.Fatal("mutation not visible before restart")
	}

	sigs <- syscall.SIGTERM
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d after SIGTERM, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}

	// Same -store-dir: the restart must replay the acknowledged delta
	// from the WAL and narrate the recovery.
	url2, sigs2, exit2, stdout2 := startServer(t, "-node-id", "w1", "-store-dir", dir)
	m := walRecoveredRE.FindStringSubmatch(stdout2.String())
	if m == nil {
		t.Fatalf("recovery not narrated:\n%s", stdout2.String())
	}
	if n, _ := strconv.Atoi(m[1]); n < 1 {
		t.Fatalf("restart recovered %d records, want >= 1:\n%s", n, stdout2.String())
	}
	if !bytes.Contains(publish(url2), []byte("StormCourse")) {
		t.Fatal("acknowledged delta lost across restart")
	}

	sigs2 <- syscall.SIGTERM
	select {
	case code := <-exit2:
		if code != 0 {
			t.Fatalf("exit code %d after SIGTERM, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after restart SIGTERM")
	}
}
