// The live-view endpoints through the real binary loop: /mutate
// repairs, /watch observes, /publish flips to post-delta bytes, and a
// signal-driven drain still exits clean with a mutated registry.
package main

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"ptx/internal/testutil"
)

func TestServeMutateAndWatchEndpoints(t *testing.T) {
	base := runtime.NumGoroutine()
	url, sigs, exit, _ := startServer(t, "-max-timeout", "2s")

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}
	post := func(path, body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	// Pre-delta publish: no CS999 anywhere.
	code, pre := post("/publish", `{"spec":"tau1","db":"registrar"}`)
	if code != http.StatusOK {
		t.Fatalf("publish: %d: %s", code, pre)
	}
	if strings.Contains(string(pre), "CS999") {
		t.Fatal("pre-delta document already contains the storm tuple")
	}

	// Prime the live view, then mutate through the endpoint.
	if code, body := get("/watch?spec=tau1&db=registrar"); code != http.StatusOK {
		t.Fatalf("prime watch: %d: %s", code, body)
	}
	code, body := post("/mutate",
		`{"spec":"tau1","db":"registrar","ops":[{"op":"insert","rel":"course","tuple":["CS999","StormCourse","CS"]}]}`)
	if code != http.StatusOK {
		t.Fatalf("mutate: %d: %s", code, body)
	}
	var mr struct {
		Views []struct {
			Spec  string `json:"spec"`
			Error string `json:"error"`
		} `json:"views"`
	}
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatalf("mutate response: %v\n%s", err, body)
	}
	for _, v := range mr.Views {
		if v.Error != "" {
			t.Fatalf("view %s repair failed: %s", v.Spec, v.Error)
		}
	}

	// The change feed has the repair; the document has the course.
	code, body = get("/watch?spec=tau1&db=registrar&after=1&wait_ms=1000")
	if code != http.StatusOK {
		t.Fatalf("watch: %d: %s", code, body)
	}
	var wr struct {
		Version uint64 `json:"version"`
		Changes []struct {
			Version uint64 `json:"version"`
		} `json:"changes"`
	}
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatalf("watch response: %v\n%s", err, body)
	}
	if len(wr.Changes) != 1 || wr.Changes[0].Version != 2 {
		t.Fatalf("watch changes %+v, want exactly version 2", wr.Changes)
	}
	if code, post := post("/publish", `{"spec":"tau1","db":"registrar"}`); code != http.StatusOK || !strings.Contains(string(post), "CS999") {
		t.Fatalf("post-delta publish (%d) does not contain the inserted course:\n%s", code, post)
	}

	sigs <- syscall.SIGTERM
	select {
	case c := <-exit:
		if c != 0 {
			t.Fatalf("exit code %d after mutation traffic, want 0", c)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
	testutil.SettledGoroutines(t, base)
}
