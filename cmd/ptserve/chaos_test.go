package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeChaosGating pins the double opt-in: -chaos without
// -allow-inject is a usage error (exit 2), and a malformed spec never
// boots a server.
func TestServeChaosGating(t *testing.T) {
	var out syncBuffer
	var errOut bytes.Buffer
	sigs := make(chan os.Signal)
	args := []string{"-addr", "127.0.0.1:0", "-specs", "../../examples/specs"}
	if code := run(append(args, "-chaos", "seed=1,latency=5ms"), &out, &errOut, sigs); code != 2 {
		t.Fatalf("-chaos without -allow-inject: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-allow-inject") {
		t.Fatalf("gating error not surfaced: %s", errOut.String())
	}
	errOut.Reset()
	if code := run(append(args, "-allow-inject", "-chaos", "latency=verymuch"), &out, &errOut, sigs); code != 2 {
		t.Fatalf("malformed -chaos spec: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "latency") {
		t.Fatalf("spec error not surfaced: %s", errOut.String())
	}
}

// TestServeChaosMeshServes boots ptserve with a mild latency mesh on
// its inbound listener and proves the binary still serves correct
// bytes through it — chaos degrades, it does not corrupt semantics.
func TestServeChaosMeshServes(t *testing.T) {
	url, sigs, exit, stdout := startServer(t,
		"-allow-inject", "-chaos", "seed=7,latency=5ms")
	if !strings.Contains(stdout.String(), "chaos mesh active") {
		t.Fatalf("chaos mesh not narrated:\n%s", stdout.String())
	}
	resp, err := http.Post(url+"/publish", "application/json",
		strings.NewReader(`{"spec":"tau1","db":"registrar"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("<course>")) {
		t.Fatalf("publish through the mesh = %d: %.120s", resp.StatusCode, body)
	}
	sigs <- syscall.SIGTERM
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d after SIGTERM, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
}
