package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"ptx/internal/cluster"
	"ptx/internal/testutil"
)

// syncBuffer lets the test poll stdout while run is still writing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on ([^ ]+)`)

// startServer launches run on a :0 listener and returns the base URL,
// the signal channel that stops it, and the exit-code channel.
func startServer(t *testing.T, extraArgs ...string) (string, chan os.Signal, chan int, *syncBuffer) {
	t.Helper()
	var stdout syncBuffer
	var stderr bytes.Buffer
	sigs := make(chan os.Signal, 1)
	exit := make(chan int, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-specs", "../../examples/specs", "-drain", "5s"}, extraArgs...)
	go func() { exit <- run(args, &stdout, &stderr, sigs) }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(stdout.String()); m != nil {
			return "http://" + m[1], sigs, exit, &stdout
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address\nstdout: %s\nstderr: %s", stdout.String(), stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServeLifecycle(t *testing.T) {
	base := runtime.NumGoroutine()
	url, sigs, exit, stdout := startServer(t)

	resp, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d", resp.StatusCode)
	}

	resp, err = http.Post(url+"/publish", "application/json",
		strings.NewReader(`{"spec":"tau1","db":"registrar"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("publish = %d: %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("<course>")) {
		t.Fatalf("publish output does not look like the course view: %.120s", body)
	}

	// Unknown spec stays a typed 400 through the full binary.
	resp, err = http.Post(url+"/publish", "application/json",
		strings.NewReader(`{"spec":"nope","db":"registrar"}`))
	if err != nil {
		t.Fatal(err)
	}
	var eb struct {
		Error struct{ Kind string }
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("error body: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || eb.Error.Kind != "validation" {
		t.Fatalf("unknown spec: status %d kind %q", resp.StatusCode, eb.Error.Kind)
	}

	// SIGTERM → graceful drain → exit 0, with the protocol narrated.
	sigs <- syscall.SIGTERM
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d after SIGTERM, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
	out := stdout.String()
	if !strings.Contains(out, "draining") || !strings.Contains(out, "drained, bye") {
		t.Fatalf("drain protocol not narrated:\n%s", out)
	}
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	testutil.SettledGoroutines(t, base)
}

func TestServeUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	sigs := make(chan os.Signal)
	if code := run([]string{"-specs", ""}, &out, &errOut, sigs); code != 2 {
		t.Fatalf("missing -specs: exit %d, want 2", code)
	}
	if code := run([]string{"-bogus"}, &out, &errOut, sigs); code != 2 {
		t.Fatalf("unknown flag: exit %d, want 2", code)
	}
	if code := run([]string{"-specs", t.TempDir()}, &out, &errOut, sigs); code != 1 {
		t.Fatalf("empty spec dir: exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "no .pt specs") {
		t.Fatalf("empty-dir error not surfaced: %s", errOut.String())
	}
}

// TestServeJoinsCoordinator covers cluster mode end to end from the
// worker's side: ptserve boots with -node-id/-store-dir/-join, self-
// registers with a live coordinator, and a publish routed THROUGH the
// coordinator lands on this worker (named in X-Ptserve-Node).
func TestServeJoinsCoordinator(t *testing.T) {
	coord := cluster.New(cluster.Config{ProbeInterval: -1})
	defer coord.Close()
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()

	url, sigs, exit, stdout := startServer(t,
		"-node-id", "w1", "-store-dir", t.TempDir(), "-join", cts.URL)
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(stdout.String(), "joined") {
		if time.Now().After(deadline) {
			t.Fatalf("join never narrated:\n%s", stdout.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	var found bool
	for _, m := range coord.Metrics().Members {
		if m.ID == "w1" && m.Up && m.URL == url {
			found = true
		}
	}
	if !found {
		t.Fatalf("coordinator does not list w1 up at %s: %+v", url, coord.Metrics().Members)
	}

	resp, err := http.Post(cts.URL+"/publish", "application/json",
		strings.NewReader(`{"spec":"tau1","db":"registrar"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("<course>")) {
		t.Fatalf("routed publish = %d: %.120s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Ptserve-Node"); got != "w1" {
		t.Fatalf("X-Ptserve-Node = %q, want w1", got)
	}

	sigs <- syscall.SIGTERM
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d after SIGTERM, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
}

// TestServeJoinErrors pins the cluster-flag failure modes: -join
// without -node-id is a usage error; an unreachable coordinator fails
// the boot with exit 1 (a worker that cannot register must not serve
// silently unrouted).
func TestServeJoinErrors(t *testing.T) {
	var out syncBuffer
	var errOut bytes.Buffer
	sigs := make(chan os.Signal)
	args := []string{"-addr", "127.0.0.1:0", "-specs", "../../examples/specs"}
	if code := run(append(args, "-join", "http://127.0.0.1:1"), &out, &errOut, sigs); code != 2 {
		t.Fatalf("-join without -node-id: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-node-id") {
		t.Fatalf("usage error not surfaced: %s", errOut.String())
	}
	errOut.Reset()
	if code := run(append(args, "-node-id", "w1", "-join", "http://127.0.0.1:1"), &out, &errOut, sigs); code != 1 {
		t.Fatalf("unreachable coordinator: exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "join") {
		t.Fatalf("join failure not surfaced: %s", errOut.String())
	}
}
