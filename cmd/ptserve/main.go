// Command ptserve is the hardened publishing server: it loads a
// directory of transducer specs (*.pt) and database sources (*.db) into
// a registry and serves publish requests over HTTP as streamed XML.
//
// Usage:
//
//	ptserve -specs DIR [-addr :8080] [-workers N] [-queue N]
//	        [-max-body BYTES] [-timeout D] [-max-timeout D]
//	        [-drain D] [-checkpoint-dir DIR] [-allow-inject]
//	        [-node-id ID] [-store-dir DIR] [-join URL] [-advertise URL]
//	        [-chaos SPEC]
//
// Endpoints:
//
//	POST /publish  {"spec":"tau1","db":"registrar", ...} → XML stream
//	POST /mutate   {"spec":…,"db":…,"ops":[{"op":"insert","rel":"course",
//	               "tuple":["CS999","StormCourse","CS"]}, …]} — applies the
//	               delta to the registered database and incrementally
//	               repairs every live view over it; later publishes of
//	               that db (any spec) see post-delta bytes, never torn ones
//	GET  /watch    ?spec=…&db=…[&after=N][&wait_ms=D] — long-polls the
//	               live view's change feed from cursor N (wait capped by
//	               -max-timeout); with Accept: text/event-stream the
//	               response is an SSE stream of change/resync events
//	GET  /healthz  liveness + counters (always 200 while the process runs)
//	GET  /readyz   readiness (503 once draining starts)
//
// The service sheds load instead of queuing it to death: a bounded
// worker pool admits at most -workers concurrent runs and -queue
// waiters; everything beyond that is rejected immediately with HTTP 429
// and a typed JSON error body. SIGTERM/SIGINT triggers a graceful
// drain: admissions stop, in-flight runs get -drain to finish, then
// stragglers are canceled and terminate with typed errors (leaving
// resumable checkpoints under -checkpoint-dir for supervised runs).
//
// Cluster mode (see cmd/ptcoord): -node-id names this worker, -store-dir
// points every worker at one shared checkpoint-handoff store, and -join
// self-registers with a coordinator at startup (-advertise overrides the
// URL the coordinator should dial back, defaulting to the listen
// address — set it when the node sits behind NAT or a hostname).
//
// -chaos injects deterministic network faults (chaos testing only;
// requires -allow-inject): the spec is a comma-separated key=value list
// — seed=N, latency=D, drop=P, refuse=P, reset=P, corrupt=P,
// truncate=P, slowloris=P, pace=D, partition=a->b — applied to this
// node's inbound listener and its outbound replication client. See
// internal/netchaos for the full fault model.
//
// -store-dir also makes mutations DURABLE (cluster or standalone): a
// write-ahead log under DIR/wal records every accepted delta,
// appended and fsynced before the /mutate ack, and a restart replays
// it — acknowledged deltas survive the process. Startup prints the
// recovery report; inspect a log offline with ptxml -delta DIR/wal.
//
// Exit codes: 0 clean shutdown, 1 error, 2 usage.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"ptx/internal/netchaos"
	"ptx/internal/serve"
	"ptx/internal/supervise"
	"ptx/internal/wal"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sigs))
}

// run is main minus the process plumbing: tests drive it with an
// in-memory signal channel and a captured stdout, and read the actual
// listen address (so -addr :0 works) from the "listening on" line.
func run(args []string, stdout, stderr io.Writer, sigs <-chan os.Signal) int {
	fs := flag.NewFlagSet("ptserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	specDir := fs.String("specs", "", "directory of *.pt specs and *.db databases (required)")
	workers := fs.Int("workers", 4, "max concurrently executing publish runs")
	queue := fs.Int("queue", 16, "max requests waiting for a worker; beyond this requests are shed with 429")
	maxBody := fs.Int64("max-body", 1<<20, "request body cap in bytes")
	timeout := fs.Duration("timeout", 10*time.Second, "default per-request deadline (covers queue time)")
	maxTimeout := fs.Duration("max-timeout", time.Minute, "cap on the per-request deadline a client may ask for (also caps /watch long-poll waits)")
	drain := fs.Duration("drain", 10*time.Second, "how long a SIGTERM drain lets in-flight runs finish before canceling them")
	checkpointDir := fs.String("checkpoint-dir", "", "persist failed supervised runs' checkpoints here (empty = off)")
	allowInject := fs.Bool("allow-inject", false, "honor the \"inject\" request field (fault injection; chaos testing only)")
	nodeID := fs.String("node-id", "", "stable cluster identity for this worker (required with -join)")
	storeDir := fs.String("store-dir", "", "shared checkpoint-handoff store directory (cluster mode; all workers point at the same one)")
	join := fs.String("join", "", "coordinator base URL to self-register with at startup")
	advertise := fs.String("advertise", "", "base URL the coordinator dials this node at (default: the listen address)")
	chaos := fs.String("chaos", "", "network fault spec, e.g. seed=7,latency=50ms,reset=0.1 (requires -allow-inject; see internal/netchaos)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *specDir == "" {
		fmt.Fprintln(stderr, "usage: ptserve -specs DIR [-addr :8080] [-workers N] [-queue N] [-drain 10s]")
		return 2
	}
	if *join != "" && *nodeID == "" {
		fmt.Fprintln(stderr, "ptserve: -join requires -node-id (the coordinator fences checkpoints by node identity)")
		return 2
	}
	var mesh *netchaos.Mesh
	if *chaos != "" {
		// Fault injection is opt-in twice over: the spec AND the explicit
		// -allow-inject acknowledgement, so a copy-pasted chaos command
		// can never degrade a production node by accident.
		if !*allowInject {
			fmt.Fprintln(stderr, "ptserve: -chaos requires -allow-inject (fault injection is for chaos testing only)")
			return 2
		}
		m, err := netchaos.Parse(*chaos)
		if err != nil {
			fmt.Fprintln(stderr, "ptserve:", err)
			return 2
		}
		mesh = m
	}

	reg := serve.NewRegistry()
	if err := reg.LoadDir(*specDir); err != nil {
		fmt.Fprintln(stderr, "ptserve:", err)
		return 1
	}
	var store supervise.CheckpointStore
	if *storeDir != "" {
		ds, err := supervise.NewDirStore(*storeDir)
		if err != nil {
			fmt.Fprintln(stderr, "ptserve:", err)
			return 1
		}
		store = ds
		// The durable mutation log lives beside the checkpoint store:
		// every accepted delta is appended+fsynced before its ack, and a
		// restart replays the log here so the first publish already
		// serves post-delta bytes. Recovery is loud about damage — torn
		// tails and bit-flips are healed by truncation but reported.
		wlog, err := wal.Open(filepath.Join(*storeDir, "wal"), wal.Options{})
		if err != nil {
			fmt.Fprintln(stderr, "ptserve:", err)
			return 1
		}
		defer wlog.Close()
		replayed := reg.AttachWAL(wlog)
		rep := wlog.Report()
		fmt.Fprintf(stdout, "ptserve: wal: %d records recovered (%d segments), %d replayed\n",
			rep.Records, rep.Segments, replayed)
		for _, c := range rep.Corruptions {
			fmt.Fprintf(stderr, "ptserve: wal: recovered past corruption: %v\n", c)
		}
	}
	cfg := serve.Config{
		Registry:       reg,
		NodeID:         *nodeID,
		Store:          store,
		Workers:        *workers,
		Queue:          *queue,
		MaxBodyBytes:   *maxBody,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		CheckpointDir:  *checkpointDir,
		AllowInject:    *allowInject,
	}
	meshName := *nodeID
	if meshName == "" {
		meshName = "node"
	}
	if mesh != nil {
		// Outbound replication pushes cross the chaotic link too — a
		// partition must be able to withhold mutation acks, not just
		// garble publishes.
		cfg.ReplicateClient = &http.Client{
			Transport: mesh.Transport(meshName, nil),
			Timeout:   5 * time.Second,
		}
	}
	s, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "ptserve:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "ptserve:", err)
		return 1
	}
	if mesh != nil {
		ln = mesh.Listener(meshName, ln)
		fmt.Fprintf(stdout, "ptserve: chaos mesh active (%s)\n", *chaos)
	}
	fmt.Fprintf(stdout, "ptserve: listening on %s (specs: %v, dbs: %v)\n",
		ln.Addr(), reg.SpecNames(), reg.DBNames())

	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	if *join != "" {
		self := *advertise
		if self == "" {
			self = "http://" + ln.Addr().String()
		}
		if err := registerWithCoordinator(*join, *nodeID, self); err != nil {
			fmt.Fprintln(stderr, "ptserve: join:", err)
			_ = ln.Close()
			<-serveErr
			return 1
		}
		fmt.Fprintf(stdout, "ptserve: joined %s as %s (%s)\n", *join, *nodeID, self)
	}

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "ptserve:", err)
		return 1
	case sig := <-sigs:
		fmt.Fprintf(stdout, "ptserve: %v received, draining (deadline %v)\n", sig, *drain)
	}

	// Drain protocol: flip readiness and stop admitting (inside Drain),
	// let in-flight runs finish within the deadline, cancel stragglers,
	// then close the listener and idle connections.
	code := 0
	dctx, dcancel := context.WithTimeout(context.Background(), *drain)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		fmt.Fprintln(stderr, "ptserve: drain:", err)
		code = 1
	}
	sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintln(stderr, "ptserve: shutdown:", err)
		code = 1
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "ptserve:", err)
		code = 1
	}
	fmt.Fprintln(stdout, "ptserve: drained, bye")
	return code
}

// registerWithCoordinator self-registers this node with a ptcoord
// instance. The coordinator probes the advertised URL synchronously, so
// a successful join means the coordinator can actually reach us.
func registerWithCoordinator(coord, id, self string) error {
	body, _ := json.Marshal(struct {
		ID  string `json:"id"`
		URL string `json:"url"`
	}{id, self})
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Post(coord+"/join", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return fmt.Errorf("coordinator answered %d: %s", resp.StatusCode, msg)
	}
	return nil
}
