// Command ptserve is the hardened publishing server: it loads a
// directory of transducer specs (*.pt) and database sources (*.db) into
// a registry and serves publish requests over HTTP as streamed XML.
//
// Usage:
//
//	ptserve -specs DIR [-addr :8080] [-workers N] [-queue N]
//	        [-max-body BYTES] [-timeout D] [-max-timeout D]
//	        [-drain D] [-checkpoint-dir DIR] [-allow-inject]
//
// Endpoints:
//
//	POST /publish  {"spec":"tau1","db":"registrar", ...} → XML stream
//	GET  /healthz  liveness + counters (always 200 while the process runs)
//	GET  /readyz   readiness (503 once draining starts)
//
// The service sheds load instead of queuing it to death: a bounded
// worker pool admits at most -workers concurrent runs and -queue
// waiters; everything beyond that is rejected immediately with HTTP 429
// and a typed JSON error body. SIGTERM/SIGINT triggers a graceful
// drain: admissions stop, in-flight runs get -drain to finish, then
// stragglers are canceled and terminate with typed errors (leaving
// resumable checkpoints under -checkpoint-dir for supervised runs).
//
// Exit codes: 0 clean shutdown, 1 error, 2 usage.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ptx/internal/serve"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sigs))
}

// run is main minus the process plumbing: tests drive it with an
// in-memory signal channel and a captured stdout, and read the actual
// listen address (so -addr :0 works) from the "listening on" line.
func run(args []string, stdout, stderr io.Writer, sigs <-chan os.Signal) int {
	fs := flag.NewFlagSet("ptserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	specDir := fs.String("specs", "", "directory of *.pt specs and *.db databases (required)")
	workers := fs.Int("workers", 4, "max concurrently executing publish runs")
	queue := fs.Int("queue", 16, "max requests waiting for a worker; beyond this requests are shed with 429")
	maxBody := fs.Int64("max-body", 1<<20, "request body cap in bytes")
	timeout := fs.Duration("timeout", 10*time.Second, "default per-request deadline (covers queue time)")
	maxTimeout := fs.Duration("max-timeout", time.Minute, "cap on the per-request deadline a client may ask for")
	drain := fs.Duration("drain", 10*time.Second, "how long a SIGTERM drain lets in-flight runs finish before canceling them")
	checkpointDir := fs.String("checkpoint-dir", "", "persist failed supervised runs' checkpoints here (empty = off)")
	allowInject := fs.Bool("allow-inject", false, "honor the \"inject\" request field (fault injection; chaos testing only)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *specDir == "" {
		fmt.Fprintln(stderr, "usage: ptserve -specs DIR [-addr :8080] [-workers N] [-queue N] [-drain 10s]")
		return 2
	}

	reg := serve.NewRegistry()
	if err := reg.LoadDir(*specDir); err != nil {
		fmt.Fprintln(stderr, "ptserve:", err)
		return 1
	}
	s, err := serve.New(serve.Config{
		Registry:       reg,
		Workers:        *workers,
		Queue:          *queue,
		MaxBodyBytes:   *maxBody,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		CheckpointDir:  *checkpointDir,
		AllowInject:    *allowInject,
	})
	if err != nil {
		fmt.Fprintln(stderr, "ptserve:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "ptserve:", err)
		return 1
	}
	fmt.Fprintf(stdout, "ptserve: listening on %s (specs: %v, dbs: %v)\n",
		ln.Addr(), reg.SpecNames(), reg.DBNames())

	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "ptserve:", err)
		return 1
	case sig := <-sigs:
		fmt.Fprintf(stdout, "ptserve: %v received, draining (deadline %v)\n", sig, *drain)
	}

	// Drain protocol: flip readiness and stop admitting (inside Drain),
	// let in-flight runs finish within the deadline, cancel stragglers,
	// then close the listener and idle connections.
	code := 0
	dctx, dcancel := context.WithTimeout(context.Background(), *drain)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		fmt.Fprintln(stderr, "ptserve: drain:", err)
		code = 1
	}
	sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintln(stderr, "ptserve: shutdown:", err)
		code = 1
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "ptserve:", err)
		code = 1
	}
	fmt.Fprintln(stdout, "ptserve: drained, bye")
	return code
}
