// Package ptx is a from-scratch Go implementation of the publishing
// transducers of Fan, Geerts and Neven, "Expressiveness and Complexity
// of XML Publishing Transducers" (PODS 2007 / TODS 2008), together with
// the paper's decision procedures, language characterizations,
// expressiveness translations and proof constructions.
//
// See README.md for the layout, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-vs-measured record. The benchmarks in
// bench_test.go regenerate every table and figure; cmd/pttables prints
// them.
package ptx
