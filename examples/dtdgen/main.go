// DTDGen: the Theorem 5 construction — compile a DTD into a publishing
// transducer whose language is exactly L(d). Encoded conforming trees
// are rebuilt faithfully; everything else falls back to a minimal tree
// of the language.
//
//	go run ./examples/dtdgen
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ptx/internal/dtd"
	"ptx/internal/pt"
	"ptx/internal/xmltree"
)

func main() {
	// A DTD for bibliographies: bib → article*,
	// article → title, (author+ | editor), year?.
	d := dtd.New("bib", map[string]dtd.Regex{
		"bib":     dtd.Rep(dtd.S("article")),
		"article": dtd.Cat(dtd.S("title"), dtd.Or(dtd.OneOrMore(dtd.S("author")), dtd.S("editor")), dtd.Maybe(dtd.S("year"))),
	})
	fmt.Println("DTD:")
	fmt.Print(d)

	n, err := dtd.Normalize(d)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := dtd.Transducer(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTheorem 5 transducer class: %s\n", tr.Classify())

	// Round-trip a sampled tree through its relational encoding.
	rng := rand.New(rand.NewSource(42))
	var sample *xmltree.Tree
	for sample == nil {
		sample = n.DTD.RandomTree(rng, 8, 2)
	}
	spliced := n.SpliceAux(sample.Clone())
	fmt.Printf("\nsampled tree:    %s\n", spliced.Canonical())

	out, err := tr.Output(dtd.EncodeTree(sample), pt.Options{MaxNodes: 100000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rebuilt tree:    %s\n", out.Canonical())
	fmt.Printf("conforms to d:   %v\n", d.Validate(out))

	// A junk instance falls back to the minimal tree of L(d).
	junk := dtd.EncodeTree(xmltree.MustParse("bib(nonsense(article))"))
	out, err = tr.Output(junk, pt.Options{MaxNodes: 100000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njunk instance →  %s (conforms: %v)\n", out.Canonical(), d.Validate(out))
}
