// Graphs: the proof-construction transducers of Propositions 1, 4 and 5
// on graph data — exponential unfolding of a chain of diamonds, walk
// counting with virtual collection, and the relation-register
// equal-length walk query.
//
//	go run ./examples/graphs
package main

import (
	"fmt"
	"log"

	"ptx/internal/families"
	"ptx/internal/pt"
	"ptx/internal/relation"
)

func main() {
	// Proposition 1(3): an O(n)-size graph whose tree unfolding has 2ⁿ
	// leaves.
	fmt.Println("diamond-chain unfolding (Prop. 1(3)):")
	unfold := families.UnfoldTransducer()
	for n := 1; n <= 8; n++ {
		inst := families.DiamondChain(n)
		out, err := unfold.Output(inst, pt.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  n=%d: %d edges -> %d tree nodes\n", n, inst.Size(), out.Size())
	}

	// Proposition 5(10): virtual nodes collect one visible leaf per walk
	// from s to t.
	fmt.Println("\nwalk counting with virtual collection (Prop. 5(10)):")
	pc := families.PathCountTransducer()
	inst := relation.NewInstance(families.PathCountSchema())
	inst.Add("S", "s")
	inst.Add("T", "t")
	for _, e := range [][2]string{{"s", "a"}, {"s", "b"}, {"a", "t"}, {"b", "t"}, {"a", "b"}} {
		inst.Add("R", e[0], e[1])
	}
	out, err := pc.Output(inst, pt.Options{MaxNodes: 100000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  walks from s to t: %d  (tree: %s)\n", out.CountTag("a"), out.Canonical())

	// Proposition 4(5): the relation-register query firing on
	// equal-length walk legs c1→c2 and c2→c3.
	fmt.Println("\nequal-length two-leg reachability (Prop. 4(5), relation registers):")
	via := families.ViaTransducer()
	g := relation.NewInstance(families.ViaSchema())
	for _, e := range [][2]string{{"c1", "m"}, {"m", "c2"}, {"c2", "n"}, {"n", "c3"}} {
		g.Add("E", e[0], e[1])
	}
	rel, err := via.OutputRelation(g, "ao", pt.Options{MaxNodes: 100000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  output relation: %s\n", rel)
}
