// Quickstart: define a publishing transducer with the Go API, run it on
// a small relational instance, and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/relation"
)

func main() {
	// A relational schema with one binary relation: employee(name, dept).
	schema := relation.NewSchema().MustDeclare("employee", 2)

	// The view: a staff document with one person element per employee in
	// Engineering, carrying the employee's name as text.
	name, dept := logic.Var("name"), logic.Var("dept")
	t := pt.New("staff", schema, "q0", "staff")
	t.DeclareTag("person", 1)
	t.DeclareTag("text", 1)

	engineers := logic.MustQuery([]logic.Var{name}, nil,
		logic.Ex([]logic.Var{dept}, logic.Conj(
			logic.R("employee", name, dept),
			logic.EqT(dept, logic.Const("Engineering")),
		)))
	t.AddRule("q0", "staff", pt.Item("q", "person", engineers))

	copyReg := logic.MustQuery([]logic.Var{name}, nil, logic.R(pt.RegRel, name))
	t.AddRule("q", "person", pt.Item("qt", "text", copyReg))
	t.AddRule("qt", "text")

	// Data.
	inst := relation.NewInstance(schema)
	inst.Add("employee", "ada", "Engineering")
	inst.Add("employee", "grace", "Engineering")
	inst.Add("employee", "mark", "Sales")

	// Run.
	out, err := t.Output(inst, pt.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("class: %s\n\n", t.Classify())
	fmt.Print(out.XML())
}
