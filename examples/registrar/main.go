// Registrar: the paper's running example (Section 1, Figure 1). Runs
// the three views τ1, τ2, τ3 over the sample registrar database, prints
// their XML and classes, and shows the stop condition taming cyclic
// prerequisites.
//
//	go run ./examples/registrar
package main

import (
	"fmt"
	"log"

	"ptx/internal/pt"
	"ptx/internal/registrar"
)

func main() {
	inst := registrar.SampleInstance()

	for _, tr := range []*pt.Transducer{registrar.Tau1(), registrar.Tau2(), registrar.Tau3()} {
		fmt.Printf("--- %s (%s) ---\n", tr.Name, tr.Classify())
		out, err := tr.Output(inst, pt.Options{MaxNodes: 100000})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out.XML())
		fmt.Println()
	}

	// τ1 on a cyclic prerequisite graph: the stop condition terminates
	// the unfolding (Example 3.1).
	fmt.Println("--- tau1 on a 3-cycle of prerequisites ---")
	res, err := registrar.Tau1().Run(registrar.CycleInstance(3), pt.Options{MaxNodes: 100000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("terminated: %d nodes, stop condition fired %d times\n",
		res.Stats.Nodes, res.Stats.StopsApplied)
}
