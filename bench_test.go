// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations for the design choices called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
package ptx

import (
	"fmt"
	"math/rand"
	"testing"

	"ptx/internal/datalog"
	"ptx/internal/decide"
	"ptx/internal/dtd"
	"ptx/internal/eval"
	"ptx/internal/families"
	"ptx/internal/langs"
	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/reduction"
	"ptx/internal/registrar"
	"ptx/internal/relation"
	"ptx/internal/typecheck"
	"ptx/internal/value"
	"ptx/internal/xmltree"
)

// --- Figure 1: the registrar views -------------------------------------

func benchView(b *testing.B, tr *pt.Transducer, inst *relation.Instance) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Output(inst, pt.Options{MaxNodes: 1_000_000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1Tau1(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("chain%d", n), func(b *testing.B) {
			benchView(b, registrar.Tau1(), registrar.ChainInstance(n))
		})
	}
}

func BenchmarkFig1Tau2(b *testing.B) {
	for _, n := range []int{4, 8} {
		b.Run(fmt.Sprintf("chain%d", n), func(b *testing.B) {
			benchView(b, registrar.Tau2(), registrar.ChainInstance(n))
		})
	}
}

func BenchmarkFig1Tau3(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("chain%d", n), func(b *testing.B) {
			benchView(b, registrar.Tau3(), registrar.ChainInstance(n))
		})
	}
}

// --- Table I: language representatives ----------------------------------

func BenchmarkTable1Languages(b *testing.B) {
	inst := registrar.SampleInstance()
	for _, row := range langs.TableI() {
		tr, err := row.View()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(row.Method, func(b *testing.B) {
			benchView(b, tr, inst)
		})
	}
}

// --- Table II: decision problems ----------------------------------------

// chainTransducer scales the PTIME emptiness input.
func chainTransducer(n int) *pt.Transducer {
	s := relation.NewSchema().MustDeclare("R1", 1)
	x := logic.Var("x")
	t := pt.New(fmt.Sprintf("chain%d", n), s, "q0", "r")
	for i := 0; i < n; i++ {
		t.DeclareTag(fmt.Sprintf("a%d", i), 1)
	}
	t.AddRule("q0", "r", pt.Item("q1", "a0",
		logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))))
	for i := 1; i < n; i++ {
		t.AddRule(fmt.Sprintf("q%d", i), fmt.Sprintf("a%d", i-1),
			pt.Item(fmt.Sprintf("q%d", i+1), fmt.Sprintf("a%d", i),
				logic.MustQuery([]logic.Var{x}, nil, logic.R(pt.RegRel, x))))
	}
	return t
}

func BenchmarkTable2EmptinessPTIME(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		tr := chainTransducer(n)
		b.Run(fmt.Sprintf("rules%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := decide.Emptiness(tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable2EmptinessNP(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	for _, clauses := range []int{2, 3, 4} {
		f := randomCNF(rng, 3, clauses)
		tr, err := reduction.EmptinessFrom3SAT(f)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("clauses%d", clauses), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := decide.Emptiness(tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable2MembershipSigma2p(b *testing.B) {
	tr := chainTransducer(2)
	for _, tree := range []string{"r(a0(a1))", "r(a0(a1),a0(a1))"} {
		target := xmltree.MustParse(tree)
		b.Run(tree, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := decide.Membership(tr, target, decide.MembershipOptions{
					FreshValues: 3, MaxTuplesPerRel: 3, MaxCandidates: 500000})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable2EquivalencePi3p(b *testing.B) {
	t1, t2 := chainTransducer(3), chainTransducer(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := decide.Equivalence(t1, t2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table III: expressiveness translations ------------------------------

func BenchmarkTable3TransducerToLinDatalog(b *testing.B) {
	tr := registrar.Tau1()
	prog, err := datalog.FromTransducer(tr, "course")
	if err != nil {
		b.Fatal(err)
	}
	inst := registrar.ChainInstance(6)
	b.Run("transducer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tr.OutputRelation(inst, "course", pt.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lindatalog", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := prog.Eval(inst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkTable3LinDatalogToTransducer(b *testing.B) {
	prog := tcProgram()
	tr, err := datalog.ToTransducer(prog)
	if err != nil {
		b.Fatal(err)
	}
	inst := randomGraph(rand.New(rand.NewSource(3)), 5, 8)
	b.Run("lindatalog", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := prog.Eval(inst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("transducer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tr.OutputRelation(inst, "ans", pt.Options{MaxNodes: 500000}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Proposition 1: blowup families --------------------------------------

func BenchmarkProp1Exp(b *testing.B) {
	tr := families.UnfoldTransducer()
	for _, n := range []int{4, 6, 8} {
		inst := families.DiamondChain(n)
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tr.Output(inst, pt.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkProp1DoubleExp(b *testing.B) {
	tr := families.CounterTransducer()
	for _, n := range []int{1, 2, 3} {
		inst := families.CounterInstance(n)
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tr.Output(inst, pt.Options{MaxNodes: 5_000_000}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Proposition 3: PTIME data complexity --------------------------------

func BenchmarkProp3Ptime(b *testing.B) {
	tr, err := langs.ForXMLView()
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{20, 40, 80} {
		inst := registrar.ChainInstance(n)
		b.Run(fmt.Sprintf("courses%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tr.Output(inst, pt.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Theorem 5: DTD generation -------------------------------------------

func BenchmarkThm5DTDGen(b *testing.B) {
	// Compile a recursive course DTD per Theorem 5 and regenerate an
	// encoded conforming tree through the transducer (φd check included).
	d := dtd.New("db", map[string]dtd.Regex{
		"db":     dtd.Rep(dtd.S("course")),
		"course": dtd.Cat(dtd.S("cno"), dtd.S("title"), dtd.Maybe(dtd.S("prereq"))),
		"prereq": dtd.Rep(dtd.S("course")),
	})
	n, err := dtd.Normalize(d)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := dtd.Transducer(n)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var sample *xmltree.Tree
	for sample == nil || sample.Size() > 40 || sample.Size() < 8 {
		sample = n.DTD.RandomTree(rng, 8, 2)
	}
	inst := dtd.EncodeTree(sample)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Output(inst, pt.Options{MaxNodes: 100000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTypecheck measures the sound DTD typechecker on τ1.
func BenchmarkTypecheck(b *testing.B) {
	d := dtd.New("db", map[string]dtd.Regex{
		"db":     dtd.Rep(dtd.S("course")),
		"course": dtd.Cat(dtd.S("cno"), dtd.S("title"), dtd.S("prereq")),
		"prereq": dtd.Rep(dtd.S("course")),
	})
	tr := registrar.Tau1()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v, err := typecheck.Check(tr, d)
		if err != nil || v != nil {
			b.Fatalf("unexpected: %v %v", v, err)
		}
	}
}

// --- Ablations ------------------------------------------------------------

// BenchmarkAblationEval compares the optimized evaluator (negation
// pushdown + filter joins) against the naive one on an FO formula with
// an 8-variable universal quantifier — the shape of the Theorem 5
// well-formedness sentence.
func BenchmarkAblationEval(b *testing.B) {
	s := relation.NewSchema().MustDeclare("R", 4)
	inst := relation.NewInstance(s)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 12; i++ {
		inst.Add("R", string(value.Of(rng.Intn(6))), string(value.Of(rng.Intn(6))),
			string(value.Of(rng.Intn(6))), string(value.Of(rng.Intn(6))))
	}
	vs := make([]logic.Var, 8)
	ts := make([]logic.Term, 8)
	for i := range vs {
		vs[i] = logic.Var(fmt.Sprintf("v%d", i))
		ts[i] = vs[i]
	}
	// ∀v̄ (R(v0..v3) ∧ R(v4..v7) ∧ v0=v4 → v1=v5)
	f := logic.All(vs, logic.Disj(
		&logic.Not{F: logic.Conj(
			logic.R("R", ts[0], ts[1], ts[2], ts[3]),
			logic.R("R", ts[4], ts[5], ts[6], ts[7]),
			logic.EqT(vs[0], vs[4]),
		)},
		logic.EqT(vs[1], vs[5]),
	))
	env := eval.NewEnv(inst)
	b.Run("optimized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eval.Eval(f, env); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The naive evaluator complements over adom^8; keep the domain tiny
	// so the baseline finishes.
	small := relation.NewInstance(s)
	small.Add("R", "0", "1", "0", "1")
	small.Add("R", "1", "0", "1", "0")
	envSmall := eval.NewEnv(small)
	b.Run("naive-tiny-domain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eval.EvalNaive(f, envSmall); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSeminaive compares semi-naive and naive datalog
// evaluation on transitive closure over a long chain.
func BenchmarkAblationSeminaive(b *testing.B) {
	prog := tcProgram()
	inst := relation.NewInstance(relation.NewSchema().MustDeclare("E", 2))
	for i := 0; i < 24; i++ {
		inst.Add("E", fmt.Sprintf("n%02d", i), fmt.Sprintf("n%02d", i+1))
	}
	b.Run("seminaive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := prog.Eval(inst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := prog.EvalNaive(inst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationParallel compares sequential and parallel subtree
// expansion on the exponential diamond unfolding.
func BenchmarkAblationParallel(b *testing.B) {
	tr := families.UnfoldTransducer()
	inst := families.DiamondChain(8)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tr.Output(inst, pt.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- helpers --------------------------------------------------------------

func tcProgram() *datalog.Program {
	x, y, z := logic.Var("x"), logic.Var("y"), logic.Var("z")
	return &datalog.Program{
		EDB:    relation.NewSchema().MustDeclare("E", 2),
		Output: "tc",
		Rules: []*datalog.Rule{
			{Head: logic.R("tc", x, y), Body: []*logic.Atom{logic.R("E", x, y)}},
			{Head: logic.R("tc", x, z), Body: []*logic.Atom{logic.R("tc", x, y), logic.R("E", y, z)}},
		},
	}
}

func randomGraph(rng *rand.Rand, n, m int) *relation.Instance {
	inst := relation.NewInstance(relation.NewSchema().MustDeclare("E", 2))
	for k := 0; k < m; k++ {
		inst.Add("E", string(value.Of(rng.Intn(n))), string(value.Of(rng.Intn(n))))
	}
	return inst
}

func randomCNF(rng *rand.Rand, vars, clauses int) *reduction.CNF {
	f := &reduction.CNF{NumVars: vars}
	for i := 0; i < clauses; i++ {
		var c reduction.Clause
		for j := 0; j < 3; j++ {
			c[j] = reduction.Literal{Var: 1 + rng.Intn(vars), Neg: rng.Intn(2) == 1}
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}
