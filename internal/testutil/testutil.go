// Package testutil holds helpers shared by the robustness test suites.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// SettledGoroutines polls until the goroutine count drops back to at
// most base+slack (slack 2, tolerating runtime/test-harness
// stragglers), failing the test with a full stack dump if it does not
// settle within two seconds. Call it after every canceled or faulted
// run to assert the run leaked no goroutines.
func SettledGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d now vs %d before\n%s", n, base, buf)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
