package reduction

import (
	"fmt"

	"ptx/internal/logic"
	"ptx/internal/machines"
	"ptx/internal/pt"
	"ptx/internal/relation"
)

// RMSchema is the 6-ary run-encoding relation of Theorem 1(3):
// R(prev, next, cs, reg1, reg2, ns). prev/next chain the tuples into a
// sequence and double as the number line for the register counters;
// cs/ns are the current and announced next state.
func RMSchema() *relation.Schema {
	return relation.NewSchema().MustDeclare("R", 6)
}

func stateConst(s int) logic.Const { return logic.Const(fmt.Sprintf("s%d", s)) }

// EquivalenceFrom2RM implements the Theorem 1(3) reduction: two
// transducers τ1, τ2 in PT(CQ, tuple, normal) over RMSchema such that
// τ1 ≡ τ2 iff the machine does not halt. Both walk the encoded run
// identically; when a halting configuration is reached, τ1 emits one h
// plus another iff both chain keys are violated, while τ2 emits one h
// per violated key — so the counts differ exactly on well-formed
// (both-keys) encodings, which exist iff M halts.
func EquivalenceFrom2RM(m *machines.TwoRegisterMachine) (*pt.Transducer, *pt.Transducer, error) {
	t1, err := rmTransducer(m, "rm-tau1", true)
	if err != nil {
		return nil, nil, err
	}
	t2, err := rmTransducer(m, "rm-tau2", false)
	if err != nil {
		return nil, nil, err
	}
	return t1, t2, nil
}

// rmTransducer builds one side of the reduction.
func rmTransducer(m *machines.TwoRegisterMachine, name string, tau1 bool) (*pt.Transducer, error) {
	t := pt.New(name, RMSchema(), "q0", "r")
	t.DeclareTag("a", 6)
	t.DeclareTag("h", 1)

	// Head variables of every chain query: the new run tuple.
	na1, na2 := logic.Var("na1"), logic.Var("na2")
	ncs, nm, nn, nns := logic.Var("ncs"), logic.Var("nm"), logic.Var("nn"), logic.Var("nns")
	head := []logic.Var{na1, na2, ncs, nm, nn, nns}
	headTerms := logic.TermVars(head)

	// φ0: the initial tuple (prev 0, state s0, both counters 0).
	phi0 := logic.MustQuery(head, nil, logic.Conj(
		logic.R("R", headTerms...),
		logic.EqT(na1, logic.Const("0")),
		logic.EqT(ncs, stateConst(0)),
		logic.EqT(nm, logic.Const("0")),
		logic.EqT(nn, logic.Const("0")),
	))
	t.AddRule("q0", "r", pt.Item("q1", "a", phi0))

	// Register (old tuple) variables shared by the transition bodies.
	b1, b2 := logic.Var("b1"), logic.Var("b2")
	ocs, om, on, ons := logic.Var("ocs"), logic.Var("om"), logic.Var("on"), logic.Var("ons")
	oldVars := []logic.Var{b1, b2, ocs, om, on, ons}

	// succWitness asserts that hi is the chain successor of lo: some
	// tuple has prev=lo, next=hi.
	succWitness := func(lo, hi logic.Var) logic.Formula {
		c := make([]logic.Var, 6)
		for i := range c {
			c[i] = logic.Var(fmt.Sprintf("w%d", i))
		}
		return logic.Ex(c, logic.Conj(
			logic.R("R", logic.TermVars(c)...),
			logic.EqT(c[0], lo),
			logic.EqT(c[1], hi),
		))
	}

	// Every transition shares a frame: the register holds the old tuple,
	// the new tuple chains on (na1 = b2), and its state matches the old
	// tuple's announced next state (ncs = ons).
	var chainItems []pt.RHS
	addChain := func(parts ...logic.Formula) {
		all := []logic.Formula{
			logic.R(pt.RegRel, logic.TermVars(oldVars)...),
			logic.R("R", headTerms...),
			logic.EqT(na1, b2),
			logic.EqT(ncs, ons),
		}
		all = append(all, parts...)
		q := logic.MustQuery(head, nil, logic.Ex(oldVars, logic.Conj(all...)))
		chainItems = append(chainItems, pt.Item("q1", "a", q))
	}

	for i, in := range m.Instrs {
		var regOld, regNew logic.Var // the register being operated on
		var othOld, othNew logic.Var // the untouched register
		if in.Reg == machines.R1 {
			regOld, regNew, othOld, othNew = om, nm, on, nn
		} else {
			regOld, regNew, othOld, othNew = on, nn, om, nm
		}
		if in.Add {
			addChain(
				logic.EqT(ocs, stateConst(i)),
				logic.EqT(ncs, stateConst(in.Zero)),
				logic.EqT(othNew, othOld),
				succWitness(regOld, regNew),
			)
			continue
		}
		// Subtraction, zero branch.
		addChain(
			logic.EqT(ocs, stateConst(i)),
			logic.EqT(ncs, stateConst(in.Zero)),
			logic.EqT(regOld, logic.Const("0")),
			logic.EqT(regNew, logic.Const("0")),
			logic.EqT(othNew, othOld),
		)
		// Subtraction, nonzero branch: regNew is the chain predecessor.
		addChain(
			logic.EqT(ocs, stateConst(i)),
			logic.EqT(ncs, stateConst(in.Next)),
			logic.NeqT(regOld, logic.Const("0")),
			logic.EqT(othNew, othOld),
			succWitness(regNew, regOld),
		)
	}

	// Halting detection and key checks.
	hx := logic.Var("hx")
	haltCond := func() logic.Formula {
		return logic.Ex(oldVars, logic.Conj(
			logic.R(pt.RegRel, logic.TermVars(oldVars)...),
			logic.EqT(ocs, stateConst(m.Halt)),
			logic.EqT(om, logic.Const("0")),
			logic.EqT(on, logic.Const("0")),
		))
	}
	keyViolation := func(byPrev bool) logic.Formula {
		u := make([]logic.Var, 6)
		v := make([]logic.Var, 6)
		for i := range u {
			u[i] = logic.Var(fmt.Sprintf("u%d", i))
			v[i] = logic.Var(fmt.Sprintf("v%d", i))
		}
		var eqIdx, neqIdx int
		if byPrev {
			eqIdx, neqIdx = 0, 1 // same prev, different next
		} else {
			eqIdx, neqIdx = 1, 0 // same next, different prev
		}
		return logic.Ex(append(append([]logic.Var{}, u...), v...), logic.Conj(
			logic.R("R", logic.TermVars(u)...),
			logic.R("R", logic.TermVars(v)...),
			logic.EqT(u[eqIdx], v[eqIdx]),
			logic.NeqT(u[neqIdx], v[neqIdx]),
		))
	}
	mkH := func(parts ...logic.Formula) pt.RHS {
		all := append([]logic.Formula{}, parts...)
		all = append(all, logic.EqT(hx, logic.Const("1")))
		return pt.Item("qh", "h", logic.MustQuery([]logic.Var{hx}, nil, logic.Conj(all...)))
	}

	var hItems []pt.RHS
	if tau1 {
		hItems = []pt.RHS{
			mkH(haltCond()),
			mkH(haltCond(), keyViolation(true), keyViolation(false)),
		}
	} else {
		hItems = []pt.RHS{
			mkH(haltCond(), keyViolation(true)),
			mkH(haltCond(), keyViolation(false)),
		}
	}

	t.AddRule("q1", "a", append(chainItems, hItems...)...)
	t.AddRule("qh", "h")
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// EncodeRun encodes the machine's run (capped at maxSteps) as a
// well-formed instance of RMSchema: one tuple per executed transition,
// positions 0,1,2,… chaining the sequence and doubling as counter
// values, plus a final halting tuple when the machine halts.
func EncodeRun(m *machines.TwoRegisterMachine, maxSteps int) *relation.Instance {
	inst := relation.NewInstance(RMSchema())
	trace, halted := m.Run(maxSteps)
	pos := func(k int) string { return fmt.Sprint(k) }
	st := func(s int) string { return fmt.Sprintf("s%d", s) }
	for k := 0; k+1 < len(trace); k++ {
		cur, next := trace[k], trace[k+1]
		inst.Add("R", pos(k), pos(k+1), st(cur.State), pos(cur.Reg1), pos(cur.Reg2), st(next.State))
	}
	if halted {
		last := len(trace) - 1
		inst.Add("R", pos(last), pos(last+1), st(m.Halt), "0", "0", st(m.Halt))
	}
	return inst
}
