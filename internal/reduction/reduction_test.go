package reduction

import (
	"math/rand"
	"testing"

	"ptx/internal/decide"
	"ptx/internal/logic"
	"ptx/internal/machines"
	"ptx/internal/pt"
	"ptx/internal/relation"
	"ptx/internal/xmltree"
)

// randomCNF generates a small random 3SAT instance.
func randomCNF(rng *rand.Rand, vars, clauses int) *CNF {
	f := &CNF{NumVars: vars}
	for i := 0; i < clauses; i++ {
		var c Clause
		for j := 0; j < 3; j++ {
			c[j] = Literal{Var: 1 + rng.Intn(vars), Neg: rng.Intn(2) == 1}
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

func TestEmptiness3SATMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	lit := func(v int, neg bool) Literal { return Literal{Var: v, Neg: neg} }
	// Crafted unsatisfiable instances (x ∧ ¬x patterns) plus random ones.
	crafted := []*CNF{
		{NumVars: 1, Clauses: []Clause{
			{lit(1, false), lit(1, false), lit(1, false)},
			{lit(1, true), lit(1, true), lit(1, true)},
		}},
		{NumVars: 2, Clauses: []Clause{
			{lit(1, false), lit(2, false), lit(2, false)},
			{lit(1, false), lit(2, true), lit(2, true)},
			{lit(1, true), lit(2, false), lit(2, false)},
			{lit(1, true), lit(2, true), lit(2, true)},
		}},
	}
	var formulas []*CNF
	formulas = append(formulas, crafted...)
	for trial := 0; trial < 20; trial++ {
		formulas = append(formulas, randomCNF(rng, 3, 3))
	}
	sat, unsat := 0, 0
	for trial, f := range formulas {
		_ = trial
		tr, err := EmptinessFrom3SAT(f)
		if err != nil {
			t.Fatal(err)
		}
		if cl := tr.Classify(); cl.Store != pt.TupleStore || cl.Output != pt.VirtualOutput {
			t.Fatalf("reduction class %s, want tuple/virtual", cl)
		}
		nonempty, err := decide.Emptiness(tr)
		if err != nil {
			t.Fatal(err)
		}
		want := f.Satisfiable()
		if nonempty != want {
			t.Fatalf("trial %d: emptiness decision %v, brute-force SAT %v\n%s", trial, nonempty, want, tr)
		}
		if want {
			sat++
		} else {
			unsat++
		}
	}
	if sat == 0 || unsat == 0 {
		t.Fatalf("unbalanced trials: %d sat, %d unsat", sat, unsat)
	}
}

func TestEmptiness3SATExecution(t *testing.T) {
	// On a satisfying-assignment instance the transducer emits an a; on a
	// falsifying one it does not.
	f := &CNF{NumVars: 2, Clauses: []Clause{
		{{Var: 1, Neg: false}, {Var: 2, Neg: false}, {Var: 1, Neg: false}}, // x1 ∨ x2
		{{Var: 1, Neg: true}, {Var: 2, Neg: false}, {Var: 1, Neg: true}},   // ¬x1 ∨ x2
	}}
	tr, err := EmptinessFrom3SAT(f)
	if err != nil {
		t.Fatal(err)
	}
	good := AssignmentInstance(f, []bool{false, true}) // satisfies both
	out, err := tr.Output(good, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.CountTag("a") != 1 {
		t.Fatalf("satisfying assignment should yield one a: %s", out.Canonical())
	}
	bad := AssignmentInstance(f, []bool{true, false}) // violates clause 2
	out, err = tr.Output(bad, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.CountTag("a") != 0 {
		t.Fatalf("falsifying assignment should yield no a: %s", out.Canonical())
	}
}

func TestQBF2Eval(t *testing.T) {
	// ∃y ∀z (y ∨ z) — true with y=1.
	q := &QBF2{NumY: 1, NumZ: 1, Clauses: []Clause{
		{{Var: 1}, {Var: 2}, {Var: 1}},
	}}
	if !q.Eval() {
		t.Error("∃y∀z (y∨z) is true")
	}
	// ∃y ∀z (y ∧ z effect): ∃y ∀z (z) — false.
	q2 := &QBF2{NumY: 1, NumZ: 1, Clauses: []Clause{
		{{Var: 2}, {Var: 2}, {Var: 2}},
	}}
	if q2.Eval() {
		t.Error("∃y∀z z is false")
	}
}

func TestMembershipQBF2Canonical(t *testing.T) {
	cases := []struct {
		name string
		q    *QBF2
		want bool
	}{
		{"true ∃y∀z (y∨z)", &QBF2{NumY: 1, NumZ: 1,
			Clauses: []Clause{{{Var: 1}, {Var: 2}, {Var: 1}}}}, true},
		{"false ∃y∀z z", &QBF2{NumY: 1, NumZ: 1,
			Clauses: []Clause{{{Var: 2}, {Var: 2}, {Var: 2}}}}, false},
		{"true ∃y (y∧¬?)", &QBF2{NumY: 2, NumZ: 0,
			Clauses: []Clause{
				{{Var: 1}, {Var: 1}, {Var: 1}},
				{{Var: 2, Neg: true}, {Var: 2, Neg: true}, {Var: 2, Neg: true}},
			}}, true},
		{"false ∃y (y∧¬y)", &QBF2{NumY: 1, NumZ: 0,
			Clauses: []Clause{
				{{Var: 1}, {Var: 1}, {Var: 1}},
				{{Var: 1, Neg: true}, {Var: 1, Neg: true}, {Var: 1, Neg: true}},
			}}, false},
	}
	for _, c := range cases {
		if c.q.Eval() != c.want {
			t.Fatalf("%s: brute force disagrees with expectation", c.name)
		}
		tr, target, err := MembershipFromQBF2(c.q)
		if err != nil {
			t.Fatal(err)
		}
		out, err := tr.Output(CanonicalGadgetInstance(false, 0, nil), pt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got := out.Equal(target); got != c.want {
			t.Errorf("%s: canonical run gives %s, want match=%v", c.name, out.Canonical(), c.want)
		}
	}
}

func TestMembershipQBF2Decision(t *testing.T) {
	if testing.Short() {
		t.Skip("bounded membership search")
	}
	opts := decide.MembershipOptions{FreshValues: 0, MaxTuplesPerRel: 4, MaxCandidates: 500000}
	qTrue := &QBF2{NumY: 1, NumZ: 1, Clauses: []Clause{{{Var: 1}, {Var: 2}, {Var: 1}}}}
	tr, target, err := MembershipFromQBF2(qTrue)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := decide.Membership(tr, target, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("true QBF: target tree should be producible")
	}
	qFalse := &QBF2{NumY: 1, NumZ: 1, Clauses: []Clause{{{Var: 2}, {Var: 2}, {Var: 2}}}}
	tr, target, err = MembershipFromQBF2(qFalse)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = decide.Membership(tr, target, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("false QBF: target tree should not be producible over the boolean domain")
	}
}

func TestQBF3Eval(t *testing.T) {
	// ∀x ∃y (x∨y)(¬x∨¬y): y := ¬x works — true.
	q := &QBF3{NumX: 1, NumY: 1, Clauses: []Clause{
		{{Var: 1}, {Var: 2}, {Var: 1}},
		{{Var: 1, Neg: true}, {Var: 2, Neg: true}, {Var: 1, Neg: true}},
	}}
	if !q.Eval() {
		t.Error("∀x∃y (x∨y)(¬x∨¬y) is true")
	}
	// ∀x ∃y (x): false (x=0 kills it).
	q2 := &QBF3{NumX: 1, NumY: 1, Clauses: []Clause{
		{{Var: 1}, {Var: 1}, {Var: 1}},
	}}
	if q2.Eval() {
		t.Error("∀x x is false")
	}
}

func TestEquivalenceQBF3Execution(t *testing.T) {
	cases := []struct {
		name string
		q    *QBF3
	}{
		{"true", &QBF3{NumX: 1, NumY: 1, Clauses: []Clause{
			{{Var: 1}, {Var: 2}, {Var: 1}},
			{{Var: 1, Neg: true}, {Var: 2, Neg: true}, {Var: 1, Neg: true}},
		}}},
		{"false", &QBF3{NumX: 1, NumY: 1, Clauses: []Clause{
			{{Var: 1}, {Var: 1}, {Var: 1}},
		}}},
		{"true with universal", &QBF3{NumX: 1, NumY: 1, NumZ: 1, Clauses: []Clause{
			{{Var: 2}, {Var: 3}, {Var: 2}}, // y ∨ z: y=1 works
		}}},
		{"false with universal", &QBF3{NumX: 1, NumY: 1, NumZ: 1, Clauses: []Clause{
			{{Var: 3}, {Var: 3}, {Var: 3}}, // z alone: false
		}}},
	}
	for _, c := range cases {
		t1, t2, err := EquivalenceFromQBF3(c.q)
		if err != nil {
			t.Fatal(err)
		}
		want := c.q.Eval()
		// Execute on the canonical instances for every X assignment; the
		// transducers agree on all of them iff the QBF holds.
		agree := true
		for bits := 0; bits < 1<<c.q.NumX; bits++ {
			row := make([]string, c.q.NumX)
			for i := range row {
				if bits&(1<<i) != 0 {
					row[i] = "1"
				} else {
					row[i] = "0"
				}
			}
			inst := CanonicalGadgetInstance(true, c.q.NumX, [][]string{row})
			o1, err := t1.Output(inst, pt.Options{})
			if err != nil {
				t.Fatal(err)
			}
			o2, err := t2.Output(inst, pt.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !o1.Equal(o2) {
				agree = false
			}
		}
		if agree != want {
			t.Errorf("%s: canonical executions agree=%v, QBF=%v", c.name, agree, want)
		}
	}
}

func TestEquivalenceQBF3NonBooleanRowsFiltered(t *testing.T) {
	// Rows of RX that are not boolean never reach the final level on
	// either side.
	q := &QBF3{NumX: 1, NumY: 1, Clauses: []Clause{{{Var: 1}, {Var: 2}, {Var: 1}}}}
	t1, _, err := EquivalenceFromQBF3(q)
	if err != nil {
		t.Fatal(err)
	}
	inst := CanonicalGadgetInstance(true, 1, [][]string{{"junk"}})
	out, err := t1.Output(inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.CountTag("c") != 0 {
		t.Fatalf("non-boolean row leaked to the final level: %s", out.Canonical())
	}
}

// --- 2RM (Theorem 1(3)) -------------------------------------------------

// haltingMachine: add r1; then subtract until zero; halt at state 2.
func haltingMachine() *machines.TwoRegisterMachine {
	return &machines.TwoRegisterMachine{
		Instrs: []machines.Instr{
			machines.AddInstr(machines.R1, 1),
			machines.SubInstr(machines.R1, 2, 1),
		},
		Halt: 2,
	}
}

// loopingMachine increments register 1 forever.
func loopingMachine() *machines.TwoRegisterMachine {
	return &machines.TwoRegisterMachine{
		Instrs: []machines.Instr{machines.AddInstr(machines.R1, 0)},
		Halt:   1,
	}
}

func TestMachineSimulators(t *testing.T) {
	if !haltingMachine().HaltsWithin(100) {
		t.Error("halting machine should halt")
	}
	if loopingMachine().HaltsWithin(1000) {
		t.Error("looping machine should not halt")
	}
}

func Test2RMReductionHalting(t *testing.T) {
	m := haltingMachine()
	t1, t2, err := EquivalenceFrom2RM(m)
	if err != nil {
		t.Fatal(err)
	}
	inst := EncodeRun(m, 100)
	o1, err := t1.Output(inst, pt.Options{MaxNodes: 100000})
	if err != nil {
		t.Fatal(err)
	}
	o2, err := t2.Output(inst, pt.Options{MaxNodes: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if o1.Equal(o2) {
		t.Fatalf("halting run encoding should separate τ1 and τ2:\nτ1: %s\nτ2: %s",
			o1.Canonical(), o2.Canonical())
	}
	// τ1 has exactly one more h than τ2 on the well-formed encoding.
	if o1.CountTag("h") != o2.CountTag("h")+1 {
		t.Fatalf("h counts: τ1=%d τ2=%d", o1.CountTag("h"), o2.CountTag("h"))
	}
}

func Test2RMReductionLooping(t *testing.T) {
	m := loopingMachine()
	t1, t2, err := EquivalenceFrom2RM(m)
	if err != nil {
		t.Fatal(err)
	}
	// Partial run encodings never separate the transducers.
	for _, steps := range []int{1, 3, 7} {
		inst := EncodeRun(m, steps)
		o1, err := t1.Output(inst, pt.Options{MaxNodes: 100000})
		if err != nil {
			t.Fatal(err)
		}
		o2, err := t2.Output(inst, pt.Options{MaxNodes: 100000})
		if err != nil {
			t.Fatal(err)
		}
		if !o1.Equal(o2) {
			t.Fatalf("steps=%d: non-halting machine should keep τ1 ≡ τ2", steps)
		}
	}
}

func Test2RMKeyViolationCompensation(t *testing.T) {
	// Inject key violations into a halting encoding: with exactly one key
	// broken τ1 and τ2 both add one h; with both broken both add one more.
	m := haltingMachine()
	t1, t2, err := EquivalenceFrom2RM(m)
	if err != nil {
		t.Fatal(err)
	}
	base := EncodeRun(m, 100)

	oneBroken := base.Clone()
	oneBroken.Add("R", "0", "99", "sX", "0", "0", "sX") // same prev 0, different next
	o1, err := t1.Output(oneBroken, pt.Options{MaxNodes: 200000})
	if err != nil {
		t.Fatal(err)
	}
	o2, err := t2.Output(oneBroken, pt.Options{MaxNodes: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if !o1.Equal(o2) {
		t.Fatalf("one broken key: compensation should equalize:\nτ1: %s\nτ2: %s",
			o1.Canonical(), o2.Canonical())
	}

	bothBroken := oneBroken.Clone()
	bothBroken.Add("R", "98", "1", "sY", "0", "0", "sY") // same next 1 as tuple (0,1,...)
	o1, err = t1.Output(bothBroken, pt.Options{MaxNodes: 200000})
	if err != nil {
		t.Fatal(err)
	}
	o2, err = t2.Output(bothBroken, pt.Options{MaxNodes: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if !o1.Equal(o2) {
		t.Fatalf("both broken keys: compensation should equalize:\nτ1: %s\nτ2: %s",
			o1.Canonical(), o2.Canonical())
	}
}

// --- 2-head DFA (Theorem 1(2)) -----------------------------------------

// onesDFA accepts words beginning with 1 (both heads read the first
// symbol, then accept).
func onesDFA() *machines.TwoHeadDFA {
	return &machines.TwoHeadDFA{
		States: 2, Start: 0, Accept: 1,
		Delta: map[machines.DFAKey]machines.DFAMove{
			{State: 0, In1: '1', In2: '1'}: {State: 1, Move1: machines.Right, Move2: machines.Right},
		},
	}
}

func TestDFASimulator(t *testing.T) {
	a := onesDFA()
	if !a.Accepts("1") || !a.Accepts("10") {
		t.Error("words starting with 1 should be accepted")
	}
	if a.Accepts("0") || a.Accepts("") {
		t.Error("other words should be rejected")
	}
	if a.EmptyUpTo(3) {
		t.Error("language is nonempty")
	}
	empty := &machines.TwoHeadDFA{States: 1, Start: 0, Accept: 99,
		Delta: map[machines.DFAKey]machines.DFAMove{}}
	if !empty.EmptyUpTo(4) {
		t.Error("no-transition automaton has empty language")
	}
}

func TestDFAMembershipReduction(t *testing.T) {
	a := onesDFA()
	tr, target, err := MembershipFrom2HeadDFA(a)
	if err != nil {
		t.Fatal(err)
	}
	if cl := tr.Classify(); cl.Output != pt.VirtualOutput || cl.Store != pt.TupleStore {
		t.Fatalf("reduction class %s", cl)
	}
	// Accepted word: the encoding produces exactly the target tree.
	out, err := tr.Output(EncodeWord("1"), pt.Options{MaxNodes: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(target) {
		t.Fatalf("accepted word: got %s, want %s", out.Canonical(), target.Canonical())
	}
	// Rejected word: no s child.
	out, err = tr.Output(EncodeWord("0"), pt.Options{MaxNodes: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if out.Equal(target) {
		t.Fatal("rejected word must not produce the target tree")
	}
	if out.CountTag("s") != 0 {
		t.Fatalf("rejected word produced an s node: %s", out.Canonical())
	}
}

func TestDFAMembershipEmptyLanguage(t *testing.T) {
	empty := &machines.TwoHeadDFA{States: 1, Start: 0, Accept: 99,
		Delta: map[machines.DFAKey]machines.DFAMove{}}
	tr, target, err := MembershipFrom2HeadDFA(empty)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"", "0", "1", "01", "10"} {
		out, err := tr.Output(EncodeWord(w), pt.Options{MaxNodes: 100000})
		if err != nil {
			t.Fatal(err)
		}
		if out.Equal(target) {
			t.Fatalf("empty language: word %q must not produce the target", w)
		}
	}
}

// --- Proposition 2: FO query equivalence -------------------------------

func foPair() (*relation.Schema, *FOQuery, *FOQuery) {
	s := relation.NewSchema().MustDeclare("A", 1).MustDeclare("B", 1)
	x := logic.Var("x")
	q1 := &FOQuery{Head: []logic.Var{x}, F: logic.R("A", x)}
	q2 := &FOQuery{Head: []logic.Var{x},
		F: logic.Conj(logic.R("A", x), &logic.Not{F: logic.R("B", x)})}
	return s, q1, q2
}

func TestFOEquivalenceReductions(t *testing.T) {
	s, q1, q2 := foPair()

	// Witness instance where Q1 ≠ Q2: a value in both A and B.
	witness := relation.NewInstance(s)
	witness.Add("A", "w")
	witness.Add("B", "w")
	// Instance where they agree: A and B disjoint.
	agree := relation.NewInstance(s)
	agree.Add("A", "a")
	agree.Add("B", "b")

	// Membership reduction: r(a) produced exactly on disagreement.
	tm, err := MembershipFromFOEquivalence(s, q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	target := xmltree.MustParse("r(a)")
	out, err := tm.Output(witness, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(target) {
		t.Fatalf("membership reduction on witness: %s", out.Canonical())
	}
	out, err = tm.Output(agree, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Equal(target) {
		t.Fatal("membership reduction fired on agreeing instance")
	}

	// Emptiness reduction: nontrivial tree exactly on disagreement.
	te, err := EmptinessFromFOEquivalence(s, q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	out, err = te.Output(witness, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() == 1 {
		t.Fatal("emptiness reduction should be nontrivial on witness")
	}

	// Equivalence reduction: trees differ exactly on disagreement.
	t1, t2, err := EquivalenceFromFOEquivalence(s, q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	o1, _ := t1.Output(witness, pt.Options{})
	o2, _ := t2.Output(witness, pt.Options{})
	if o1.Equal(o2) {
		t.Fatal("equivalence reduction should differ on witness")
	}
	o1, _ = t1.Output(agree, pt.Options{})
	o2, _ = t2.Output(agree, pt.Options{})
	if !o1.Equal(o2) {
		t.Fatal("equivalence reduction should agree on disjoint A/B")
	}
}

func TestFOEquivalenceIdenticalQueries(t *testing.T) {
	s, q1, _ := foPair()
	t1, t2, err := EquivalenceFromFOEquivalence(s, q1, q1)
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range [][][2]string{
		{{"A", "a"}},
		{{"A", "a"}, {"B", "a"}},
		{{"B", "b"}},
	} {
		inst := relation.NewInstance(s)
		for _, r := range rows {
			inst.Add(r[0], r[1])
		}
		o1, _ := t1.Output(inst, pt.Options{})
		o2, _ := t2.Output(inst, pt.Options{})
		if !o1.Equal(o2) {
			t.Fatalf("identical queries must agree on %v", rows)
		}
	}
}
