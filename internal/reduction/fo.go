package reduction

import (
	"fmt"

	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/relation"
)

// FOQuery is a first-order query: a formula with an ordered list of
// free (answer) variables.
type FOQuery struct {
	Head []logic.Var
	F    logic.Formula
}

// symmetricDifference builds ∆Q(x̄) = (Q1 ∧ ¬Q2) ∨ (Q2 ∧ ¬Q1); both
// queries must share the same head.
func symmetricDifference(q1, q2 *FOQuery) (logic.Formula, []logic.Var, error) {
	if len(q1.Head) != len(q2.Head) {
		return nil, nil, fmt.Errorf("reduction: FO queries with different arities")
	}
	// Align q2's head onto q1's.
	sub := make(map[logic.Var]logic.Term, len(q2.Head))
	for i, v := range q2.Head {
		sub[v] = q1.Head[i]
	}
	f2 := logic.Substitute(q2.F, sub)
	delta := logic.Disj(
		logic.Conj(q1.F, &logic.Not{F: f2}),
		logic.Conj(f2, &logic.Not{F: q1.F}),
	)
	return delta, q1.Head, nil
}

// MembershipFromFOEquivalence implements the Proposition 2 reduction
// for the membership problem: a transducer τ0 in PTnr(FO, tuple,
// normal) and target tree r(a) such that r(a) ∈ τ0(R) iff Q1 ≢ Q2.
func MembershipFromFOEquivalence(schema *relation.Schema, q1, q2 *FOQuery) (*pt.Transducer, error) {
	delta, head, err := symmetricDifference(q1, q2)
	if err != nil {
		return nil, err
	}
	x := logic.Var("xflag")
	t := pt.New("fo-membership", schema, "q0", "r")
	t.DeclareTag("a", 1)
	phi := logic.Conj(logic.Ex(head, delta), logic.EqT(x, logic.Const("c")))
	t.AddRule("q0", "r", pt.Item("q", "a", logic.MustQuery([]logic.Var{x}, nil, phi)))
	t.AddRule("q", "a")
	return t, t.Validate()
}

// EmptinessFromFOEquivalence implements the Proposition 2 reduction for
// the emptiness problem: τ1 produces only the trivial tree iff Q1 ≡ Q2.
func EmptinessFromFOEquivalence(schema *relation.Schema, q1, q2 *FOQuery) (*pt.Transducer, error) {
	delta, head, err := symmetricDifference(q1, q2)
	if err != nil {
		return nil, err
	}
	t := pt.New("fo-emptiness", schema, "q0", "r")
	t.DeclareTag("a", len(head))
	t.AddRule("q0", "r", pt.Item("q", "a", logic.MustQuery(head, nil, delta)))
	t.AddRule("q", "a")
	return t, t.Validate()
}

// EquivalenceFromFOEquivalence implements the Proposition 2 reduction
// for the equivalence problem: transducers τ¹, τ² that print Q1's and
// Q2's answers as text leaves, so τ¹ ≡ τ² iff Q1 ≡ Q2.
func EquivalenceFromFOEquivalence(schema *relation.Schema, q1, q2 *FOQuery) (*pt.Transducer, *pt.Transducer, error) {
	mk := func(name string, q *FOQuery) (*pt.Transducer, error) {
		t := pt.New(name, schema, "q0", "r")
		t.DeclareTag("a", len(q.Head))
		t.DeclareTag("text", len(q.Head))
		t.AddRule("q0", "r", pt.Item("q", "a", logic.MustQuery(q.Head, nil, q.F)))
		copyTerms := logic.TermVars(q.Head)
		t.AddRule("q", "a", pt.Item("qt", "text",
			logic.MustQuery(q.Head, nil, &logic.Atom{Rel: pt.RegRel, Args: copyTerms})))
		t.AddRule("qt", "text")
		return t, t.Validate()
	}
	t1, err := mk("fo-eq-tau1", q1)
	if err != nil {
		return nil, nil, err
	}
	t2, err := mk("fo-eq-tau2", q2)
	if err != nil {
		return nil, nil, err
	}
	return t1, t2, nil
}
