package reduction

import (
	"fmt"

	"ptx/internal/logic"
	"ptx/internal/machines"
	"ptx/internal/pt"
	"ptx/internal/relation"
	"ptx/internal/xmltree"
)

// DFASchema encodes a binary string for the Theorem 1(2) undecidability
// reduction: P holds the 1-positions, Pbar the 0-positions, and F the
// successor function over positions (with a self-loop marking the final
// position).
func DFASchema() *relation.Schema {
	s := relation.NewSchema()
	s.MustDeclare("P", 1)
	s.MustDeclare("Pbar", 1)
	s.MustDeclare("F", 2)
	return s
}

func dfaState(s int) logic.Const { return logic.Const(fmt.Sprintf("d%d", s)) }

// MembershipFrom2HeadDFA implements the Theorem 1(2) undecidability
// reduction: a transducer τA in PT(CQ, tuple, virtual) and a tree tA
// such that tA ∈ τA(R) iff L(A) ≠ ∅. The virtual v-chain runs the
// transitive closure of A's configuration graph; well-formedness of the
// string encoding is enforced by the presence/absence of the a1..a4
// children in tA, and an s child appears iff the accepting state is
// reached.
func MembershipFrom2HeadDFA(a *machines.TwoHeadDFA) (*pt.Transducer, *xmltree.Tree, error) {
	t := pt.New("dfa-membership", DFASchema(), "q0", "r")
	for _, tag := range []string{"a1", "a2", "a4", "s"} {
		t.DeclareTag(tag, 1)
	}
	t.DeclareTag("a3", 2)
	t.DeclareTag("v", 3)
	t.MarkVirtual("v")

	x, y, z := logic.Var("x"), logic.Var("y"), logic.Var("z")
	flag := logic.Var("flag")
	flagged := func(f logic.Formula) *logic.Query {
		return logic.MustQuery([]logic.Var{flag}, nil,
			logic.Conj(f, logic.EqT(flag, logic.Const("1"))))
	}

	// a1: P and Pbar intersect (absent from tA).
	phi1 := logic.Ex([]logic.Var{x}, logic.Conj(logic.R("P", x), logic.R("Pbar", x)))
	// a2: position 0 has a successor (present in tA).
	phi2 := logic.Ex([]logic.Var{y}, logic.R("F", logic.Const("0"), y))
	// a3: the self-loops of F; exactly one expected in tA.
	phi3 := logic.MustQuery([]logic.Var{x, y}, nil, logic.Conj(logic.R("F", x, y), logic.EqT(x, y)))
	// a4: F is not a function (absent from tA).
	phi4 := logic.Ex([]logic.Var{x, y, z}, logic.Conj(logic.R("F", x, y), logic.R("F", x, z), logic.NeqT(y, z)))

	// κ0: the initial configuration (start state, both heads at 0).
	qv, xv, yv := logic.Var("q"), logic.Var("xp"), logic.Var("yp")
	kappa0 := logic.MustQuery([]logic.Var{qv, xv, yv}, nil, logic.Conj(
		logic.EqT(qv, dfaState(a.Start)),
		logic.EqT(xv, logic.Const("0")),
		logic.EqT(yv, logic.Const("0")),
	))

	t.AddRule("q0", "r",
		pt.Item("q1", "a1", flagged(phi1)),
		pt.Item("q1", "a2", flagged(phi2)),
		pt.Item("q1", "a3", phi3),
		pt.Item("q1", "a4", flagged(phi4)),
		pt.Item("qv", "v", kappa0),
	)
	for _, tag := range []string{"a1", "a2", "a3", "a4"} {
		t.AddRule("q1", tag)
	}

	// α(in): what a head reads at position p.
	alpha := func(p logic.Var, in machines.HeadInput, fresh logic.Var) logic.Formula {
		switch in {
		case '1':
			return logic.Conj(
				logic.Ex([]logic.Var{fresh}, logic.Conj(logic.R("F", p, fresh), logic.NeqT(p, fresh))),
				logic.R("P", p))
		case '0':
			return logic.Conj(
				logic.Ex([]logic.Var{fresh}, logic.Conj(logic.R("F", p, fresh), logic.NeqT(p, fresh))),
				logic.R("Pbar", p))
		default: // ε: the final (self-loop) position
			return logic.R("F", p, p)
		}
	}
	// β(move): relation between old and new head position.
	beta := func(old, new logic.Var, move int) logic.Formula {
		if move == machines.Right {
			return logic.R("F", old, new)
		}
		return logic.EqT(new, old)
	}

	// One κ item per transition; all spawn the same virtual tag v.
	oq, ox, oy := logic.Var("oq"), logic.Var("ox"), logic.Var("oy")
	var items []pt.RHS
	for _, key := range sortedDFAKeys(a) {
		mv := a.Delta[key]
		w1, w2 := logic.Var("w1"), logic.Var("w2")
		body := logic.Ex([]logic.Var{oq, ox, oy}, logic.Conj(
			logic.R(pt.RegRel, oq, ox, oy),
			logic.EqT(oq, dfaState(key.State)),
			logic.EqT(qv, dfaState(mv.State)),
			alpha(ox, key.In1, w1),
			alpha(oy, key.In2, w2),
			beta(ox, xv, mv.Move1),
			beta(oy, yv, mv.Move2),
		))
		items = append(items, pt.Item("qv", "v", logic.MustQuery([]logic.Var{qv, xv, yv}, nil, body)))
	}
	// Accepting detection: an s child when the register holds the accept
	// state.
	phif := logic.Ex([]logic.Var{ox, oy}, logic.R(pt.RegRel, dfaState(a.Accept), ox, oy))
	items = append(items, pt.Item("qs", "s", flagged(phif)))
	t.AddRule("qv", "v", items...)
	t.AddRule("qs", "s")

	if err := t.Validate(); err != nil {
		return nil, nil, err
	}
	return t, xmltree.MustParse("r(a2,a3,s)"), nil
}

// sortedDFAKeys returns the transition keys deterministically.
func sortedDFAKeys(a *machines.TwoHeadDFA) []machines.DFAKey {
	var keys []machines.DFAKey
	for k := range a.Delta {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && dfaKeyLess(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func dfaKeyLess(a, b machines.DFAKey) bool {
	if a.State != b.State {
		return a.State < b.State
	}
	if a.In1 != b.In1 {
		return a.In1 < b.In1
	}
	return a.In2 < b.In2
}

// EncodeWord builds the well-formed instance encoding a binary string:
// positions 0..len(w) chained by F, a final self-loop at len(w), and
// P/Pbar marking the 1- and 0-positions.
func EncodeWord(w string) *relation.Instance {
	inst := relation.NewInstance(DFASchema())
	pos := func(i int) string { return fmt.Sprint(i) }
	for i := 0; i < len(w); i++ {
		inst.Add("F", pos(i), pos(i+1))
		if w[i] == '1' {
			inst.Add("P", pos(i))
		} else {
			inst.Add("Pbar", pos(i))
		}
	}
	inst.Add("F", pos(len(w)), pos(len(w)))
	return inst
}
