// Package reduction implements the paper's hardness and undecidability
// reductions as executable constructions:
//
//   - 3SAT → emptiness of PT(CQ, tuple, virtual) (Theorem 1(1),
//     NP-hardness);
//   - ∃*∀*-3SAT → membership of PT(CQ, tuple, normal) (Theorem 1(2),
//     Σp2-hardness);
//   - ∀*∃*∀*-3SAT → equivalence of PTnr(CQ, tuple, normal)
//     (Theorem 2(4), Πp3-hardness);
//   - 2RM halting → equivalence of PT(CQ, tuple, normal)
//     (Theorem 1(3), undecidability);
//   - FO query equivalence → membership/emptiness/equivalence of
//     PTnr(FO, tuple, normal) (Proposition 2, undecidability).
//
// Each reduction comes with the brute-force reference decision procedure
// for its source problem, so tests can validate the reduction (and the
// target decision algorithms) end to end on small inputs.
package reduction

import (
	"fmt"

	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/relation"
)

// Literal is a possibly negated propositional variable (1-based index).
type Literal struct {
	Var int
	Neg bool
}

// Clause is a disjunction of exactly three literals.
type Clause [3]Literal

// CNF is a 3SAT instance over variables 1..NumVars.
type CNF struct {
	NumVars int
	Clauses []Clause
}

// Eval evaluates the formula under an assignment (asg[i] is the value
// of variable i+1).
func (f *CNF) Eval(asg []bool) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			v := asg[l.Var-1]
			if v != l.Neg {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Satisfiable brute-forces the 2^NumVars assignments.
func (f *CNF) Satisfiable() bool {
	asg := make([]bool, f.NumVars)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == f.NumVars {
			return f.Eval(asg)
		}
		asg[i] = false
		if rec(i + 1) {
			return true
		}
		asg[i] = true
		return rec(i + 1)
	}
	return rec(0)
}

// satisfyingTriples enumerates the (up to 7) truth assignments of the
// three literal variables of clause c that make c true, as {0,1}
// strings per literal position.
func satisfyingTriples(c Clause) [][3]string {
	var out [][3]string
	for bits := 0; bits < 8; bits++ {
		vals := [3]bool{bits&1 != 0, bits&2 != 0, bits&4 != 0}
		// Consistency: if two literal positions share a variable, their
		// assigned values must agree.
		consistent := true
		sat := false
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if c[i].Var == c[j].Var && vals[i] != vals[j] {
					consistent = false
				}
			}
			if vals[i] != c[i].Neg {
				sat = true
			}
		}
		if !consistent || !sat {
			continue
		}
		var t [3]string
		for i := 0; i < 3; i++ {
			if vals[i] {
				t[i] = "1"
			} else {
				t[i] = "0"
			}
		}
		out = append(out, t)
	}
	return out
}

// EmptinessFrom3SAT builds the Theorem 1(1) NP-hardness transducer τφ in
// PT(CQ, tuple, virtual) over the schema {RX(m)}: τφ produces a
// nontrivial tree on some instance iff φ is satisfiable. The virtual
// chain checks one clause per level (one virtual tag per satisfying
// triple) and ends in the normal tag a.
func EmptinessFrom3SAT(f *CNF) (*pt.Transducer, error) {
	if f.NumVars == 0 || len(f.Clauses) == 0 {
		return nil, fmt.Errorf("reduction: degenerate formula")
	}
	schema := relation.NewSchema().MustDeclare("RX", f.NumVars)
	t := pt.New("sat-emptiness", schema, "q0", "r")

	xs := make([]logic.Var, f.NumVars)
	terms := make([]logic.Term, f.NumVars)
	for i := range xs {
		xs[i] = logic.Var(fmt.Sprintf("x%d", i+1))
		terms[i] = xs[i]
	}

	vtag := func(level, choice int) string { return fmt.Sprintf("v%d_%d", level, choice) }
	state := func(level int) string { return fmt.Sprintf("q%d", level) }

	// Items entering level: for each satisfying triple of clause level-1.
	levelItems := func(level int, regAtom logic.Formula) []pt.RHS {
		c := f.Clauses[level-1]
		var items []pt.RHS
		for choice, trip := range satisfyingTriples(c) {
			parts := []logic.Formula{regAtom}
			for i := 0; i < 3; i++ {
				parts = append(parts, logic.EqT(xs[c[i].Var-1], logic.Const(trip[i])))
			}
			q := logic.MustQuery(xs, nil, logic.Conj(parts...))
			tag := vtag(level, choice)
			t.DeclareTag(tag, f.NumVars)
			t.MarkVirtual(tag)
			items = append(items, pt.Item(state(level), tag, q))
		}
		return items
	}

	// Start: copy each RX assignment into a level-1 virtual node.
	t.AddRule("q0", "r", levelItems(1, logic.R("RX", terms...))...)

	// Middle levels: from every level-i choice tag to level i+1.
	for level := 1; level < len(f.Clauses); level++ {
		items := levelItems(level+1, logic.R(pt.RegRel, terms...))
		for choice := range satisfyingTriples(f.Clauses[level-1]) {
			t.AddRule(state(level), vtag(level, choice), items...)
		}
	}

	// Final level: emit the normal tag a.
	t.DeclareTag("a", f.NumVars)
	last := len(f.Clauses)
	finalItem := pt.Item("qt", "a", logic.MustQuery(xs, nil, logic.R(pt.RegRel, terms...)))
	for choice := range satisfyingTriples(f.Clauses[last-1]) {
		t.AddRule(state(last), vtag(last, choice), finalItem)
	}
	t.AddRule("qt", "a")
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// AssignmentInstance encodes a truth assignment as an RX singleton, for
// running the reduction transducer on concrete inputs.
func AssignmentInstance(f *CNF, asg []bool) *relation.Instance {
	schema := relation.NewSchema().MustDeclare("RX", f.NumVars)
	inst := relation.NewInstance(schema)
	row := make([]string, f.NumVars)
	for i, b := range asg {
		if b {
			row[i] = "1"
		} else {
			row[i] = "0"
		}
	}
	inst.Add("RX", row...)
	return inst
}
