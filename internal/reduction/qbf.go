package reduction

import (
	"fmt"

	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/relation"
	"ptx/internal/xmltree"
)

// QBF2 is a ∃*∀*-3SAT instance ∃Y∀Z C1∧…∧Cr: variables 1..NumY are
// existential, NumY+1..NumY+NumZ universal.
type QBF2 struct {
	NumY, NumZ int
	Clauses    []Clause
}

// Eval brute-forces the quantifier prefix.
func (q *QBF2) Eval() bool {
	total := q.NumY + q.NumZ
	asg := make([]bool, total)
	cnf := &CNF{NumVars: total, Clauses: q.Clauses}
	var forallZ func(i int) bool
	forallZ = func(i int) bool {
		if i == total {
			return cnf.Eval(asg)
		}
		asg[i] = false
		if !forallZ(i + 1) {
			return false
		}
		asg[i] = true
		return forallZ(i + 1)
	}
	var existsY func(i int) bool
	existsY = func(i int) bool {
		if i == q.NumY {
			return forallZ(q.NumY)
		}
		asg[i] = false
		if existsY(i + 1) {
			return true
		}
		asg[i] = true
		return existsY(i + 1)
	}
	return existsY(0)
}

// QBF3 is a ∀*∃*∀*-3SAT instance ∀X∃Y∀Z C1∧…∧Cr: variables 1..NumX are
// the outer universals, then NumY existentials, then NumZ universals.
type QBF3 struct {
	NumX, NumY, NumZ int
	Clauses          []Clause
}

// Eval brute-forces the quantifier prefix.
func (q *QBF3) Eval() bool {
	asg := make([]bool, q.NumX)
	var forallX func(i int) bool
	forallX = func(i int) bool {
		if i == q.NumX {
			return q.inner(asg)
		}
		asg[i] = false
		if !forallX(i + 1) {
			return false
		}
		asg[i] = true
		return forallX(i + 1)
	}
	return forallX(0)
}

// inner evaluates ∃Y∀Z clauses for a fixed X assignment.
func (q *QBF3) inner(xasg []bool) bool {
	shift := make([]Clause, len(q.Clauses))
	copy(shift, q.Clauses)
	q2 := &QBF2{NumY: q.NumY, NumZ: q.NumZ}
	// Substitute X literals by constants: drop satisfied clauses; drop
	// false literals (representing them by a doubled remaining literal).
	for _, c := range q.Clauses {
		var kept []Literal
		sat := false
		for _, l := range c {
			if l.Var <= q.NumX {
				if xasg[l.Var-1] != l.Neg {
					sat = true
				}
				continue
			}
			kept = append(kept, Literal{Var: l.Var - q.NumX, Neg: l.Neg})
		}
		if sat {
			continue
		}
		if len(kept) == 0 {
			return false
		}
		for len(kept) < 3 {
			kept = append(kept, kept[0])
		}
		q2.Clauses = append(q2.Clauses, Clause{kept[0], kept[1], kept[2]})
	}
	if len(q2.Clauses) == 0 {
		return true
	}
	return q2.Eval()
}

// booleanGadgetSchema is the schema shared by the QBF reductions:
// RC holds the booleans, ROR the OR gadget (d1 ∨ d2 = d3 as
// ROR(d1,d2,d3) triples), and — for the Πp3 reduction — RX holds outer
// universal assignments.
func booleanGadgetSchema(withRX bool, m int) *relation.Schema {
	s := relation.NewSchema()
	s.MustDeclare("RC", 1)
	s.MustDeclare("ROR", 3)
	if withRX {
		s.MustDeclare("RX", m)
	}
	return s
}

// orTriples is IOR = the graph of boolean disjunction.
var orTriples = [][3]string{{"0", "0", "0"}, {"1", "0", "1"}, {"0", "1", "1"}, {"1", "1", "1"}}

// badORTriples are the boolean triples that contradict disjunction; the
// membership reduction excludes them via detector children absent from
// the target tree.
var badORTriples = [][3]string{{"0", "0", "1"}, {"1", "0", "0"}, {"0", "1", "0"}, {"1", "1", "0"}}

// wellFormedORFormula is φ1: both booleans present in RC and IOR ⊆ ROR.
func wellFormedORFormula() logic.Formula {
	parts := []logic.Formula{
		logic.R("RC", logic.Const("0")),
		logic.R("RC", logic.Const("1")),
	}
	for _, tr := range orTriples {
		parts = append(parts, logic.R("ROR", logic.Const(tr[0]), logic.Const(tr[1]), logic.Const(tr[2])))
	}
	return logic.Conj(parts...)
}

// litTheta builds θ for one literal position of the OR gadget: gate
// input xi must equal the literal's value. Boolean-ness of xi is
// guaranteed by an RC guard added by the caller.
//
//   - existential/outer variable yp: xi = yp (positive) or xi ≠ yp;
//   - universal variable fixed to bit b by the enumeration: xi = value.
func litTheta(xi logic.Var, l Literal, numFree int, freeVar func(int) logic.Var, universalBit func(int) bool) logic.Formula {
	if l.Var <= numFree {
		v := freeVar(l.Var)
		if l.Neg {
			return logic.NeqT(xi, v)
		}
		return logic.EqT(xi, v)
	}
	bit := universalBit(l.Var - numFree)
	val := bit != l.Neg // literal value under the fixed bit
	c := logic.Const("0")
	if val {
		c = logic.Const("1")
	}
	return logic.EqT(xi, c)
}

// clauseGadget builds ψ_j^b̄: the two-level OR gadget asserting that
// clause j evaluates to true, with universal positions fixed per b̄.
// fresh generates unique variable names per conjunct.
func clauseGadget(c Clause, numFree int, freeVar func(int) logic.Var, universalBit func(int) bool, fresh func(string) logic.Var) logic.Formula {
	x1, x2, x3, s := fresh("g1"), fresh("g2"), fresh("g3"), fresh("gs")
	parts := []logic.Formula{
		logic.R("RC", x1), logic.R("RC", x2), logic.R("RC", x3), logic.R("RC", s),
		logic.R("ROR", x1, x2, s),
		logic.R("ROR", s, x3, logic.Const("1")),
		litTheta(x1, c[0], numFree, freeVar, universalBit),
		litTheta(x2, c[1], numFree, freeVar, universalBit),
		litTheta(x3, c[2], numFree, freeVar, universalBit),
	}
	return logic.Ex([]logic.Var{x1, x2, x3, s}, logic.Conj(parts...))
}

// universalPositions lists the clause positions holding universal
// variables (var index > numFree).
func universalPositions(c Clause, numFree int) []int {
	var out []int
	for i, l := range c {
		if l.Var > numFree {
			out = append(out, i)
		}
	}
	return out
}

// matrixFormula builds ψ(free vars) = ⋀_j ⋀_b̄ ψ_j^b̄ for the clause set,
// where variables 1..numFree are free (bound outside by ∃Y or the
// register) and the rest are universally enumerated bitwise.
func matrixFormula(clauses []Clause, numFree int, freeVar func(int) logic.Var, fresh func(string) logic.Var) logic.Formula {
	var conj []logic.Formula
	for _, c := range clauses {
		upos := universalPositions(c, numFree)
		// Universal variables among this clause's positions (dedup by var).
		uvars := map[int]bool{}
		for _, i := range upos {
			uvars[c[i].Var] = true
		}
		var uvarList []int
		for v := range uvars {
			uvarList = append(uvarList, v)
		}
		sortInts(uvarList)
		n := len(uvarList)
		for bits := 0; bits < 1<<n; bits++ {
			bitOf := map[int]bool{}
			for i, v := range uvarList {
				bitOf[v] = bits&(1<<i) != 0
			}
			conj = append(conj, clauseGadget(c, numFree, freeVar,
				func(uv int) bool { return bitOf[uv+numFree] }, fresh))
		}
	}
	return logic.Conj(conj...)
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// freshener hands out numbered variables.
type varGen struct{ n int }

func (g *varGen) fresh(base string) logic.Var {
	g.n++
	return logic.Var(fmt.Sprintf("%s_%d", base, g.n))
}

// MembershipFromQBF2 implements the Σp2-hardness reduction of
// Theorem 1(2): it returns a transducer τϕ in PT(CQ, tuple, normal) and
// a target tree tϕ such that tϕ ∈ τϕ(R) iff the ∃∀-QBF is true.
//
// Two hardenings over the paper's sketch (recorded in EXPERIMENTS.md):
// the OR-gadget inputs carry RC guards, and four detector children
// e1..e4 — absent from tϕ — pin the boolean fragment of ROR to exactly
// IOR; without them junk ROR tuples make the gadget fire spuriously.
func MembershipFromQBF2(q *QBF2) (*pt.Transducer, *xmltree.Tree, error) {
	schema := booleanGadgetSchema(false, 0)
	t := pt.New("qbf2-membership", schema, "q0", "r")
	t.DeclareTag("b", 1).DeclareTag("c", 1).DeclareTag("d", 1)

	x := logic.Var("x")
	items := []pt.RHS{}

	// φ1: well-formedness witness child b.
	phi1 := logic.Conj(wellFormedORFormula(), logic.EqT(x, logic.Const("1")))
	items = append(items, pt.Item("q1", "b", logic.MustQuery([]logic.Var{x}, nil, phi1)))

	// φ2: a c child per non-boolean RC value (tϕ has none).
	phi2 := logic.Conj(logic.R("RC", x),
		logic.NeqT(x, logic.Const("0")), logic.NeqT(x, logic.Const("1")))
	items = append(items, pt.Item("q1", "c", logic.MustQuery([]logic.Var{x}, nil, phi2)))

	// Detector children e1..e4 for bad boolean OR triples (tϕ has none).
	for i, tr := range badORTriples {
		tag := fmt.Sprintf("e%d", i+1)
		t.DeclareTag(tag, 1)
		bad := logic.Conj(
			logic.R("ROR", logic.Const(tr[0]), logic.Const(tr[1]), logic.Const(tr[2])),
			logic.EqT(x, logic.Const("1")))
		items = append(items, pt.Item("q1", tag, logic.MustQuery([]logic.Var{x}, nil, bad)))
		t.AddRule("q1", tag)
	}

	// φ3: the ∃Y∀Z matrix.
	gen := &varGen{}
	ys := make([]logic.Var, q.NumY)
	for i := range ys {
		ys[i] = logic.Var(fmt.Sprintf("y%d", i+1))
	}
	var phi3Parts []logic.Formula
	for _, y := range ys {
		phi3Parts = append(phi3Parts, logic.R("RC", y))
	}
	phi3Parts = append(phi3Parts,
		matrixFormula(q.Clauses, q.NumY, func(i int) logic.Var { return ys[i-1] }, gen.fresh),
		logic.EqT(x, logic.Const("1")))
	phi3 := logic.Ex(ys, logic.Conj(phi3Parts...))
	items = append(items, pt.Item("q1", "d", logic.MustQuery([]logic.Var{x}, nil, phi3)))

	t.AddRule("q0", "r", items...)
	t.AddRule("q1", "b")
	t.AddRule("q1", "c")
	t.AddRule("q1", "d")
	if err := t.Validate(); err != nil {
		return nil, nil, err
	}
	return t, xmltree.MustParse("r(b,d)"), nil
}

// CanonicalGadgetInstance is the intended witness instance for the QBF
// reductions: RC = {0,1} and ROR = IOR (plus RX rows when provided).
func CanonicalGadgetInstance(withRX bool, m int, xRows [][]string) *relation.Instance {
	inst := relation.NewInstance(booleanGadgetSchema(withRX, m))
	inst.Add("RC", "0")
	inst.Add("RC", "1")
	for _, tr := range orTriples {
		inst.Add("ROR", tr[0], tr[1], tr[2])
	}
	for _, row := range xRows {
		inst.Add("RX", row...)
	}
	return inst
}

// EquivalenceFromQBF3 implements the Πp3-hardness reduction of
// Theorem 2(4): two nonrecursive PT(CQ, tuple, normal) transducers that
// are equivalent iff the ∀∃∀-QBF is true. τ1's final child fires when
// the inner ∃Y∀Z matrix holds for the X assignment threaded down the
// bit-validation chain; τ2's fires unconditionally (both additionally
// require the OR-gadget well-formedness φ1, a correction to the paper's
// sketch recorded in EXPERIMENTS.md — without it the two sides differ
// on gadget-free instances regardless of the QBF).
func EquivalenceFromQBF3(q *QBF3) (*pt.Transducer, *pt.Transducer, error) {
	mk := func(name string, conditioned bool) (*pt.Transducer, error) {
		schema := booleanGadgetSchema(true, q.NumX)
		t := pt.New(name, schema, "q0", "r")

		xs := make([]logic.Var, q.NumX)
		terms := make([]logic.Term, q.NumX)
		for i := range xs {
			xs[i] = logic.Var(fmt.Sprintf("x%d", i+1))
			terms[i] = xs[i]
		}
		// Level 0: every RX row.
		t.DeclareTag("a0", q.NumX)
		t.AddRule("q0", "r", pt.Item("q1", "a0",
			logic.MustQuery(xs, nil, logic.R("RX", terms...))))

		// Bit-validation chain: level i splits on x_i ∈ {0,1} with two
		// distinct tags, so only boolean rows reach the end.
		prevTags := []string{"a0"}
		for i := 1; i <= q.NumX; i++ {
			t0 := fmt.Sprintf("a%d_0", i)
			t1 := fmt.Sprintf("a%d_1", i)
			t.DeclareTag(t0, q.NumX)
			t.DeclareTag(t1, q.NumX)
			st := fmt.Sprintf("q%d", i+1)
			q0 := logic.MustQuery(xs, nil, logic.Conj(
				logic.R(pt.RegRel, terms...), logic.EqT(xs[i-1], logic.Const("0"))))
			q1 := logic.MustQuery(xs, nil, logic.Conj(
				logic.R(pt.RegRel, terms...), logic.EqT(xs[i-1], logic.Const("1"))))
			for _, ptag := range prevTags {
				t.AddRule(fmt.Sprintf("q%d", i), ptag,
					pt.Item(st, t0, q0), pt.Item(st, t1, q1))
			}
			prevTags = []string{t0, t1}
		}

		// Final level: the c child.
		t.DeclareTag("c", q.NumX)
		var final logic.Formula
		if conditioned {
			gen := &varGen{}
			ys := make([]logic.Var, q.NumY)
			for i := range ys {
				ys[i] = logic.Var(fmt.Sprintf("y%d", i+1))
			}
			var parts []logic.Formula
			for _, y := range ys {
				parts = append(parts, logic.R("RC", y))
			}
			freeVar := func(i int) logic.Var {
				if i <= q.NumX {
					return xs[i-1]
				}
				return ys[i-q.NumX-1]
			}
			parts = append(parts,
				matrixFormula(q.Clauses, q.NumX+q.NumY, freeVar, gen.fresh))
			final = logic.Conj(
				logic.R(pt.RegRel, terms...),
				wellFormedORFormula(),
				logic.Ex(ys, logic.Conj(parts...)))
		} else {
			final = logic.Conj(logic.R(pt.RegRel, terms...), wellFormedORFormula())
		}
		lastState := fmt.Sprintf("q%d", q.NumX+1)
		for _, ptag := range prevTags {
			t.AddRule(lastState, ptag,
				pt.Item("qc", "c", logic.MustQuery(xs, nil, final)))
		}
		t.AddRule("qc", "c")
		if err := t.Validate(); err != nil {
			return nil, err
		}
		return t, nil
	}
	t1, err := mk("qbf3-tau1", true)
	if err != nil {
		return nil, nil, err
	}
	t2, err := mk("qbf3-tau2", false)
	if err != nil {
		return nil, nil, err
	}
	return t1, t2, nil
}
