package template

import (
	"testing"

	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/relation"
)

var x = logic.Var("x")

func schemaR() *relation.Schema { return relation.NewSchema().MustDeclare("R1", 1) }

func simpleNode(tag string, f logic.Formula) *Node {
	return &Node{Tag: tag, Query: logic.MustQuery([]logic.Var{x}, nil, f)}
}

func TestCompileAndRun(t *testing.T) {
	v := &View{
		Name:    "v",
		Schema:  schemaR(),
		RootTag: "r",
		Top: []*Node{{
			Tag:      "a",
			Query:    logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x)),
			EmitText: true,
			Children: []*Node{
				simpleNode("b", logic.R(pt.RegRel, x)),
			},
		}},
	}
	tr, err := v.Compile(Restrictions{MaxLogic: logic.CQ, RequireTuple: true})
	if err != nil {
		t.Fatal(err)
	}
	inst := relation.NewInstance(schemaR())
	inst.Add("R1", "k")
	out, err := tr.Output(inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The a-node holds its b child and then the text rendering.
	if out.Canonical() != `r(a(b,text="k"))` {
		t.Fatalf("output = %s", out.Canonical())
	}
	if tr.IsRecursive() {
		t.Error("templates are never recursive")
	}
}

func TestRestrictionsEnforced(t *testing.T) {
	fo := &Node{Tag: "a", Query: logic.MustQuery([]logic.Var{x}, nil,
		&logic.Not{F: logic.R("R1", x)})}
	v := &View{Name: "v", Schema: schemaR(), RootTag: "r", Top: []*Node{fo}}
	if _, err := v.Compile(Restrictions{MaxLogic: logic.CQ, RequireTuple: true}); err == nil {
		t.Error("FO under a CQ-only dialect should fail")
	}
	if _, err := v.Compile(Restrictions{MaxLogic: logic.FO, RequireTuple: true}); err != nil {
		t.Errorf("FO under an FO dialect should compile: %v", err)
	}

	virt := &Node{Tag: "a", Virtual: true,
		Query: logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))}
	v2 := &View{Name: "v", Schema: schemaR(), RootTag: "r", Top: []*Node{virt}}
	if _, err := v2.Compile(Restrictions{MaxLogic: logic.CQ, RequireTuple: true}); err == nil {
		t.Error("virtual node under a no-virtual dialect should fail")
	}
	if _, err := v2.Compile(Restrictions{MaxLogic: logic.CQ, AllowVirtual: true, RequireTuple: true}); err != nil {
		t.Errorf("virtual node should compile when allowed: %v", err)
	}

	y := logic.Var("y")
	relStore := &Node{Tag: "a", Query: logic.MustQuery(nil, []logic.Var{x, y},
		logic.Conj(logic.R("R1", x), logic.R("R1", y)))}
	v3 := &View{Name: "v", Schema: schemaR(), RootTag: "r", Top: []*Node{relStore}}
	if _, err := v3.Compile(Restrictions{MaxLogic: logic.CQ, RequireTuple: true}); err == nil {
		t.Error("relation store under a tuple dialect should fail")
	}
}

func TestTagArityConflict(t *testing.T) {
	y := logic.Var("y")
	v := &View{
		Name: "v", Schema: relation.NewSchema().MustDeclare("E", 2), RootTag: "r",
		Top: []*Node{
			{Tag: "a", Query: logic.MustQuery([]logic.Var{x}, nil,
				logic.Ex([]logic.Var{y}, logic.R("E", x, y)))},
			{Tag: "a", Query: logic.MustQuery([]logic.Var{x, y}, nil, logic.R("E", x, y))},
		},
	}
	if _, err := v.Compile(Restrictions{MaxLogic: logic.CQ, RequireTuple: true}); err == nil {
		t.Error("same tag at two arities should fail")
	}
}

func TestRootTagReuseRejected(t *testing.T) {
	v := &View{Name: "v", Schema: schemaR(), RootTag: "r",
		Top: []*Node{simpleNode("r", logic.R("R1", x))}}
	if _, err := v.Compile(Restrictions{MaxLogic: logic.CQ, RequireTuple: true}); err == nil {
		t.Error("reusing the root tag should fail")
	}
}

func TestMissingQueryRejected(t *testing.T) {
	v := &View{Name: "v", Schema: schemaR(), RootTag: "r", Top: []*Node{{Tag: "a"}}}
	if _, err := v.Compile(Restrictions{MaxLogic: logic.CQ, RequireTuple: true}); err == nil {
		t.Error("node without a query should fail")
	}
}
