// Package template implements the common core of the nonrecursive XML
// publishing languages of Table I: a fixed tree template whose nodes
// are annotated with queries. Microsoft FOR XML, IBM SQL/XML, TreeQL
// and the DAD mappings all compile through this package with different
// logic/store/virtual restrictions, which is exactly how the paper
// classifies them.
package template

import (
	"fmt"

	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/relation"
	"ptx/internal/xmltree"
)

// Node is a template node: an element tag, the query that populates it
// (evaluated against the source and the parent's register), whether the
// node is virtual, whether its register should be rendered as a text
// child, and its sub-template.
type Node struct {
	Tag      string
	Query    *logic.Query
	Virtual  bool
	EmitText bool
	Children []*Node
}

// View is a tree template over a relational schema.
type View struct {
	Name    string
	Schema  *relation.Schema
	RootTag string
	Top     []*Node
}

// Restrictions captures what a concrete publishing language allows; the
// compiler rejects templates outside them, mirroring the "smallest
// class" analysis of Section 4.
type Restrictions struct {
	MaxLogic     logic.Logic
	AllowVirtual bool
	RequireTuple bool
}

// Compile translates the template into a publishing transducer. Every
// template node gets its own state, so the dependency graph is the
// template tree plus text edges — always nonrecursive.
func (v *View) Compile(r Restrictions) (*pt.Transducer, error) {
	if v.Schema == nil || v.RootTag == "" {
		return nil, fmt.Errorf("template %s: schema and root tag are required", v.Name)
	}
	t := pt.New(v.Name, v.Schema, "q0", v.RootTag)
	counter := 0
	needText := false

	var compile func(n *Node) (pt.RHS, error)
	compile = func(n *Node) (pt.RHS, error) {
		if n.Query == nil {
			return pt.RHS{}, fmt.Errorf("template %s: node %s has no query", v.Name, n.Tag)
		}
		if l := n.Query.Logic(); !r.MaxLogic.Includes(l) {
			return pt.RHS{}, fmt.Errorf("template %s: node %s uses %s, language allows at most %s",
				v.Name, n.Tag, l, r.MaxLogic)
		}
		if r.RequireTuple && !n.Query.TupleStore() {
			return pt.RHS{}, fmt.Errorf("template %s: node %s uses a relation store (|ȳ|>0)", v.Name, n.Tag)
		}
		if n.Virtual && !r.AllowVirtual {
			return pt.RHS{}, fmt.Errorf("template %s: node %s is virtual; language has no virtual nodes",
				v.Name, n.Tag)
		}
		if n.Tag == v.RootTag {
			return pt.RHS{}, fmt.Errorf("template %s: root tag reused at node %s", v.Name, n.Tag)
		}
		counter++
		state := fmt.Sprintf("s%d", counter)
		if a, ok := t.Arities[n.Tag]; ok && a != n.Query.Arity() {
			return pt.RHS{}, fmt.Errorf("template %s: tag %s used with register arities %d and %d",
				v.Name, n.Tag, a, n.Query.Arity())
		}
		t.DeclareTag(n.Tag, n.Query.Arity())
		if n.Virtual {
			t.MarkVirtual(n.Tag)
		}
		var items []pt.RHS
		for _, c := range n.Children {
			item, err := compile(c)
			if err != nil {
				return pt.RHS{}, err
			}
			items = append(items, item)
		}
		if n.EmitText {
			needText = true
			if a, ok := t.Arities[xmltree.TextTag]; ok && a != n.Query.Arity() {
				return pt.RHS{}, fmt.Errorf("template %s: text used at arities %d and %d",
					v.Name, a, n.Query.Arity())
			}
			t.DeclareTag(xmltree.TextTag, n.Query.Arity())
			vars := make([]logic.Var, n.Query.Arity())
			terms := make([]logic.Term, n.Query.Arity())
			for i := range vars {
				vars[i] = logic.Var(fmt.Sprintf("tc%d", i))
				terms[i] = vars[i]
			}
			items = append(items, pt.Item("qtext", xmltree.TextTag,
				logic.MustQuery(vars, nil, &logic.Atom{Rel: pt.RegRel, Args: terms})))
		}
		t.AddRule(state, n.Tag, items...)
		return pt.Item(state, n.Tag, n.Query), nil
	}

	var topItems []pt.RHS
	for _, n := range v.Top {
		item, err := compile(n)
		if err != nil {
			return nil, err
		}
		topItems = append(topItems, item)
	}
	t.AddRule("q0", v.RootTag, topItems...)
	if needText {
		t.AddRule("qtext", xmltree.TextTag)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if t.IsRecursive() {
		return nil, fmt.Errorf("template %s: compiled transducer is recursive (template bug)", v.Name)
	}
	return t, nil
}
