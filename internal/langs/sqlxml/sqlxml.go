// Package sqlxml abstracts the SQL/XML publishing constructs
// (XMLELEMENT, XMLFOREST, XMLAGG, …) of IBM DB2 and Oracle (Section 4,
// Fig. 3): nested queries build a fixed-depth tree, correlation passes
// tuples downward, and recursive SQL (common table expressions) lets a
// node's population query be an IFP query even though the tree shape
// stays nonrecursive. Per Table I the language is definable in
// PTnr(IFP, tuple, normal).
package sqlxml

import (
	"ptx/internal/langs/template"
	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/relation"
)

// Element is one XMLELEMENT constructor with its population query.
type Element struct {
	Tag      string
	Query    *logic.Query
	EmitText bool
	Children []*Element
}

// View is a SQL/XML view.
type View struct {
	Name    string
	Schema  *relation.Schema
	RootTag string
	Top     []*Element
}

// Compile translates the view into a publishing transducer in
// PTnr(IFP, tuple, normal).
func (v *View) Compile() (*pt.Transducer, error) {
	tpl := &template.View{Name: v.Name, Schema: v.Schema, RootTag: v.RootTag, Top: convert(v.Top)}
	return tpl.Compile(template.Restrictions{
		MaxLogic:     logic.IFP,
		AllowVirtual: false,
		RequireTuple: true,
	})
}

func convert(es []*Element) []*template.Node {
	out := make([]*template.Node, len(es))
	for i, e := range es {
		out[i] = &template.Node{Tag: e.Tag, Query: e.Query, EmitText: e.EmitText, Children: convert(e.Children)}
	}
	return out
}
