// Package langs characterizes the existing XML publishing languages of
// Section 4 / Table I. Each sub-package implements an abstraction of
// one dialect that compiles to a publishing transducer; this package
// assembles one representative view per dialect (the paper's Figs. 2–6)
// over the registrar database and reports, per Table I, the smallest
// transducer class containing the language.
package langs

import (
	"fmt"

	"ptx/internal/langs/atg"
	"ptx/internal/langs/axsd"
	"ptx/internal/langs/dad"
	"ptx/internal/langs/forxml"
	"ptx/internal/langs/sqlxml"
	"ptx/internal/langs/treeql"
	"ptx/internal/langs/xmlgen"
	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/registrar"
)

// Row is one line of Table I.
type Row struct {
	Product    string
	Method     string
	PaperClass pt.Class // the class Table I assigns to the language
	View       func() (*pt.Transducer, error)
}

// classOf builds a pt.Class literal.
func classOf(l logic.Logic, s pt.Store, o pt.Output, recursive bool) pt.Class {
	return pt.Class{Logic: l, Store: s, Output: o, Recursive: recursive}
}

var (
	vCno   = logic.Var("cno")
	vTitle = logic.Var("title")
	vDept  = logic.Var("dept")
	vC2    = logic.Var("c2")
	vT2    = logic.Var("t2")
	vD2    = logic.Var("d2")
)

// noDBPrereqFormula is the WHERE NOT EXISTS of Figs. 2–4: courses that
// do not have a course titled DB as an immediate prerequisite.
func noDBPrereqFormula() logic.Formula {
	return logic.Conj(
		logic.Ex([]logic.Var{vDept}, logic.R("course", vCno, vTitle, vDept)),
		&logic.Not{F: logic.Ex([]logic.Var{vC2, vT2, vD2}, logic.Conj(
			logic.R("prereq", vCno, vC2),
			logic.R("course", vC2, vT2, vD2),
			logic.EqT(vT2, logic.Const("DB")),
		))},
	)
}

func regProj(keep logic.Var, drop logic.Var, keepFirst bool) *logic.Query {
	args := []logic.Term{keep, drop}
	if !keepFirst {
		args = []logic.Term{drop, keep}
	}
	return logic.MustQuery([]logic.Var{keep}, nil,
		logic.Ex([]logic.Var{drop}, &logic.Atom{Rel: pt.RegRel, Args: args}))
}

// ForXMLView is the FOR XML view of Fig. 2.
func ForXMLView() (*pt.Transducer, error) {
	v := &forxml.View{
		Name:    "forxml-fig2",
		Schema:  registrar.Schema(),
		RootTag: "db",
		Top: []*forxml.Element{{
			Tag:   "course",
			Query: logic.MustQuery([]logic.Var{vCno, vTitle}, nil, noDBPrereqFormula()),
			Children: []*forxml.Element{
				{Tag: "cno", Query: regProj(vCno, vTitle, true), EmitText: true},
				{Tag: "title", Query: regProj(vTitle, vCno, false), EmitText: true},
			},
		}},
	}
	return v.Compile()
}

// AnnotatedXSDView lists CS courses with their immediate prerequisites
// via a key-based relationship annotation.
func AnnotatedXSDView() (*pt.Transducer, error) {
	s := &axsd.Schema{
		Name:    "axsd-courses",
		Source:  registrar.Schema(),
		RootTag: "db",
		Top: []*axsd.Element{{
			Tag:     "course",
			Table:   "course",
			Cols:    []int{0, 1},
			Filters: []axsd.Filter{{Col: 2, Val: "CS"}},
			Children: []*axsd.Element{{
				Tag:       "prereq",
				Table:     "prereq",
				Cols:      []int{1},
				HasJoin:   true,
				ParentCol: 0, // parent's cno
				ChildCol:  0, // prereq.cno1
				EmitText:  true,
			}},
		}},
	}
	return s.Compile()
}

// SQLXMLView is the SQL/XML view of Fig. 3 with a recursive-SQL twist:
// courses in the transitive prerequisite closure of some CS course,
// expressed with an IFP subquery (a common table expression).
func SQLXMLView() (*pt.Transducer, error) {
	u, v, w := logic.Var("u"), logic.Var("v"), logic.Var("w")
	closure := &logic.Fixpoint{
		Rel:  "S",
		Vars: []logic.Var{u, v},
		Body: logic.Disj(
			logic.R("prereq", u, v),
			logic.Ex([]logic.Var{w}, logic.Conj(logic.R("S", u, w), logic.R("prereq", w, v))),
		),
		Args: []logic.Term{vC2, vCno},
	}
	inClosure := logic.Ex([]logic.Var{vDept, vC2, vT2, vD2}, logic.Conj(
		logic.R("course", vCno, vTitle, vDept),
		logic.R("course", vC2, vT2, vD2),
		logic.EqT(vD2, logic.Const("CS")),
		closure,
	))
	view := &sqlxml.View{
		Name:    "sqlxml-fig3",
		Schema:  registrar.Schema(),
		RootTag: "db",
		Top: []*sqlxml.Element{{
			Tag:   "course",
			Query: logic.MustQuery([]logic.Var{vCno, vTitle}, nil, inClosure),
			Children: []*sqlxml.Element{
				{Tag: "cno", Query: regProj(vCno, vTitle, true), EmitText: true},
				{Tag: "title", Query: regProj(vTitle, vCno, false), EmitText: true},
			},
		}},
	}
	return view.Compile()
}

// DADSQLMappingView is the sql_stmt mapping of Fig. 4: courses grouped
// by department, then by course number.
func DADSQLMappingView() (*pt.Transducer, error) {
	q := logic.MustQuery([]logic.Var{vDept, vCno}, nil,
		logic.Ex([]logic.Var{vTitle}, logic.R("course", vCno, vTitle, vDept)))
	m := &dad.SQLMapping{
		Name:      "dad-sql-fig4",
		Schema:    registrar.Schema(),
		RootTag:   "db",
		Query:     q,
		LevelTags: []string{"dept", "course"},
	}
	return m.Compile()
}

// DADRDBMappingView is the rdb_node mapping: a CQ tree template.
func DADRDBMappingView() (*pt.Transducer, error) {
	m := &dad.RDBMapping{
		Name:    "dad-rdb",
		Schema:  registrar.Schema(),
		RootTag: "db",
		Top: []*dad.RDBNode{{
			Tag: "course",
			Query: logic.MustQuery([]logic.Var{vCno, vTitle}, nil,
				logic.Ex([]logic.Var{vDept}, logic.Conj(
					logic.R("course", vCno, vTitle, vDept),
					logic.EqT(vDept, logic.Const("CS"))))),
			Children: []*dad.RDBNode{
				{Tag: "cno", Query: regProj(vCno, vTitle, true), EmitText: true},
			},
		}},
	}
	return m.Compile()
}

// DBMSXMLGenView is the CONNECT BY view of Fig. 5: all courses, each
// with the hierarchy of its prerequisites below it.
func DBMSXMLGenView() (*pt.Transducer, error) {
	pc := logic.Var("pc")
	rows := logic.MustQuery([]logic.Var{pc, vCno, vTitle}, nil,
		logic.Ex([]logic.Var{vDept}, logic.Conj(
			logic.R("course", vCno, vTitle, vDept),
			logic.Disj(
				logic.R("prereq", pc, vCno),
				logic.EqT(pc, logic.Const("-")),
			),
		)))
	v := &xmlgen.View{
		Name:     "xmlgen-fig5",
		Schema:   registrar.Schema(),
		RootTag:  "db",
		RowTag:   "course",
		Rows:     rows,
		StartCol: 0, StartVal: "-", // root rows carry the marker parent
		PriorCol: 1, ChildCol: 0, // child rows reference the prior cno
		EmitText: true,
	}
	return v.Compile()
}

// TreeQLView lists CS courses with a virtual wrapper around the
// immediate-prerequisite numbers (SilkRoute style).
func TreeQLView() (*pt.Transducer, error) {
	v := &treeql.View{
		Name:    "treeql-courses",
		Schema:  registrar.Schema(),
		RootTag: "db",
		Top: []*treeql.Node{{
			Tag: "course",
			Query: logic.MustQuery([]logic.Var{vCno, vTitle}, nil,
				logic.Ex([]logic.Var{vDept}, logic.Conj(
					logic.R("course", vCno, vTitle, vDept),
					logic.EqT(vDept, logic.Const("CS"))))),
			Children: []*treeql.Node{{
				Tag:     "wrap",
				Virtual: true,
				Query: logic.MustQuery([]logic.Var{vCno}, nil,
					logic.Ex([]logic.Var{vTitle}, &logic.Atom{Rel: pt.RegRel,
						Args: []logic.Term{vCno, vTitle}})),
				Children: []*treeql.Node{{
					Tag: "pre",
					Query: logic.MustQuery([]logic.Var{vC2}, nil,
						logic.Ex([]logic.Var{vCno}, logic.Conj(
							logic.R(pt.RegRel, vCno),
							logic.R("prereq", vCno, vC2)))),
					EmitText: true,
				}},
			}},
		}},
	}
	return v.Compile()
}

// ATGView is the PRATA grammar of Fig. 6: the recursive DTD-directed
// course hierarchy, with a relation register collecting each course's
// prerequisite set and a virtual entity node.
func ATGView() (*pt.Transducer, error) {
	g := &atg.Grammar{
		Name:    "atg-fig6",
		Schema:  registrar.Schema(),
		RootTag: "db",
		Productions: map[string][]atg.ChildSpec{
			"db": {{
				Tag: "course",
				Query: logic.MustQuery([]logic.Var{vCno, vTitle}, nil,
					logic.Ex([]logic.Var{vDept}, logic.Conj(
						logic.R("course", vCno, vTitle, vDept),
						logic.EqT(vDept, logic.Const("CS"))))),
			}},
			"course": {
				{Tag: "cno", Query: regProj(vCno, vTitle, true)},
				{Tag: "title", Query: regProj(vTitle, vCno, false)},
				{Tag: "prereq", Query: logic.MustQuery(nil, []logic.Var{vC2},
					logic.Ex([]logic.Var{vCno, vTitle}, logic.Conj(
						&logic.Atom{Rel: pt.RegRel, Args: []logic.Term{vCno, vTitle}},
						logic.R("prereq", vCno, vC2))))},
			},
			// prereq holds the SET of immediate prerequisite numbers in a
			// relation register; its course children join back to course.
			"prereq": {{
				Tag: "course",
				Query: logic.MustQuery([]logic.Var{vCno, vTitle}, nil,
					logic.Ex([]logic.Var{vC2, vDept}, logic.Conj(
						logic.R(pt.RegRel, vC2),
						logic.EqT(vC2, vCno),
						logic.R("course", vCno, vTitle, vDept)))),
			}},
		},
		TextOf: []string{"cno", "title"},
	}
	return g.Compile()
}

// TableI returns one row per language, in the paper's order.
func TableI() []Row {
	return []Row{
		{"Microsoft SQL Server 2005", "FOR XML",
			classOf(logic.FO, pt.TupleStore, pt.NormalOutput, false), ForXMLView},
		{"Microsoft SQL Server 2005", "annotated XSD",
			classOf(logic.CQ, pt.TupleStore, pt.NormalOutput, false), AnnotatedXSDView},
		{"IBM DB2 XML Extender", "SQL/XML",
			classOf(logic.IFP, pt.TupleStore, pt.NormalOutput, false), SQLXMLView},
		{"IBM DB2 XML Extender", "DAD (SQL mapping)",
			classOf(logic.IFP, pt.TupleStore, pt.NormalOutput, false), DADSQLMappingView},
		{"IBM DB2 XML Extender", "DAD (RDB mapping)",
			classOf(logic.CQ, pt.TupleStore, pt.NormalOutput, false), DADRDBMappingView},
		{"Oracle 10g XML DB", "SQL/XML",
			classOf(logic.FO, pt.TupleStore, pt.NormalOutput, false), ForXMLView},
		{"Oracle 10g XML DB", "DBMS_XMLGEN",
			classOf(logic.IFP, pt.TupleStore, pt.NormalOutput, true), DBMSXMLGenView},
		{"XPERANTO", "query+default views",
			classOf(logic.FO, pt.TupleStore, pt.NormalOutput, false), ForXMLView},
		{"SilkRoute", "TreeQL",
			classOf(logic.CQ, pt.TupleStore, pt.VirtualOutput, false), TreeQLView},
		{"PRATA", "ATG",
			classOf(logic.FO, pt.RelationStore, pt.VirtualOutput, true), ATGView},
	}
}

// CheckRow compiles the row's representative view and verifies it lies
// within the class Table I assigns to its language, returning the
// compiled transducer's own (smallest) class.
func (r Row) CheckRow() (pt.Class, error) {
	tr, err := r.View()
	if err != nil {
		return pt.Class{}, err
	}
	got := tr.Classify()
	if !got.Within(r.PaperClass) {
		return got, fmt.Errorf("langs: %s %s compiled to %s, outside Table I class %s",
			r.Product, r.Method, got, r.PaperClass)
	}
	return got, nil
}
