// Package axsd abstracts the annotated XSD schemas of Microsoft SQL
// Server 2005 (Section 4): a nonrecursive XSD tree whose elements are
// mapped to tables, attributes to columns, with parent-child key-based
// joins (the relationship annotation) and simple equality condition
// tests. Per Table I the language is definable in PTnr(CQ, tuple,
// normal).
package axsd

import (
	"fmt"

	"ptx/internal/langs/template"
	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/relation"
)

// Filter is a simple condition test column = value.
type Filter struct {
	Col int
	Val string
}

// Element maps an XSD element to a table. Cols lists the column indices
// exposed by the element (its register and text rendering); Join links
// the element to its parent via key columns: parent's exposed column
// ParentCol equals this table's column ChildCol. Top-level elements
// have no join.
type Element struct {
	Tag       string
	Table     string
	Cols      []int
	Filters   []Filter
	HasJoin   bool
	ParentCol int // index into the parent's exposed columns
	ChildCol  int // column index in this element's table
	EmitText  bool
	Children  []*Element
}

// Schema is an annotated XSD: a root element name and the element tree.
type Schema struct {
	Name    string
	Source  *relation.Schema
	RootTag string
	Top     []*Element
}

// Compile translates the annotated XSD into a publishing transducer in
// PTnr(CQ, tuple, normal).
func (s *Schema) Compile() (*pt.Transducer, error) {
	top, err := convert(s.Source, s.Top, nil)
	if err != nil {
		return nil, err
	}
	tpl := &template.View{Name: s.Name, Schema: s.Source, RootTag: s.RootTag, Top: top}
	return tpl.Compile(template.Restrictions{
		MaxLogic:     logic.CQ,
		AllowVirtual: false,
		RequireTuple: true,
	})
}

// convert builds the CQ query of each element: scan the table, apply
// filters, join with the parent register on the key columns, and expose
// the selected columns as the head.
func convert(src *relation.Schema, es []*Element, parent *Element) ([]*template.Node, error) {
	var out []*template.Node
	for _, e := range es {
		arity, ok := src.Arity(e.Table)
		if !ok {
			return nil, fmt.Errorf("axsd: element %s maps to unknown table %s", e.Tag, e.Table)
		}
		cols := make([]logic.Var, arity)
		terms := make([]logic.Term, arity)
		for i := range cols {
			cols[i] = logic.Var(fmt.Sprintf("c%d", i))
			terms[i] = cols[i]
		}
		parts := []logic.Formula{logic.R(e.Table, terms...)}
		for _, f := range e.Filters {
			if f.Col < 0 || f.Col >= arity {
				return nil, fmt.Errorf("axsd: element %s filter column %d out of range", e.Tag, f.Col)
			}
			parts = append(parts, logic.EqT(cols[f.Col], logic.Const(f.Val)))
		}
		if e.HasJoin {
			if parent == nil {
				return nil, fmt.Errorf("axsd: top-level element %s has a relationship annotation", e.Tag)
			}
			if e.ParentCol < 0 || e.ParentCol >= len(parent.Cols) {
				return nil, fmt.Errorf("axsd: element %s joins on parent column %d of %d",
					e.Tag, e.ParentCol, len(parent.Cols))
			}
			if e.ChildCol < 0 || e.ChildCol >= arity {
				return nil, fmt.Errorf("axsd: element %s joins on child column %d of arity %d",
					e.Tag, e.ChildCol, arity)
			}
			// Reg holds the parent's exposed columns; join key equality.
			pvars := make([]logic.Var, len(parent.Cols))
			pterms := make([]logic.Term, len(parent.Cols))
			for i := range pvars {
				pvars[i] = logic.Var(fmt.Sprintf("p%d", i))
				pterms[i] = pvars[i]
			}
			parts = append(parts,
				logic.Ex(pvars, logic.Conj(
					&logic.Atom{Rel: pt.RegRel, Args: pterms},
					logic.EqT(pvars[e.ParentCol], cols[e.ChildCol]),
				)))
		} else if parent != nil {
			return nil, fmt.Errorf("axsd: nested element %s lacks a relationship annotation", e.Tag)
		}
		// Head: the exposed columns.
		head := make([]logic.Var, len(e.Cols))
		for i, c := range e.Cols {
			if c < 0 || c >= arity {
				return nil, fmt.Errorf("axsd: element %s exposes column %d of arity %d", e.Tag, c, arity)
			}
			head[i] = cols[c]
		}
		// Existentially close the unexposed columns.
		headSet := map[logic.Var]bool{}
		for _, h := range head {
			headSet[h] = true
		}
		var bound []logic.Var
		for _, c := range cols {
			if !headSet[c] {
				bound = append(bound, c)
			}
		}
		q, err := logic.NewQuery(head, nil, logic.Ex(bound, logic.Conj(parts...)))
		if err != nil {
			return nil, fmt.Errorf("axsd: element %s: %v", e.Tag, err)
		}
		children, err := convert(src, e.Children, e)
		if err != nil {
			return nil, err
		}
		out = append(out, &template.Node{
			Tag: e.Tag, Query: q, EmitText: e.EmitText, Children: children,
		})
	}
	return out, nil
}
