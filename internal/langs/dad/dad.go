// Package dad abstracts the Document Access Definition of IBM DB2 XML
// Extender (Section 4, Fig. 4), in both flavors:
//
//   - SQL mapping: one SQL query (recursive SQL allowed, hence IFP)
//     whose result is organized into a hierarchy by a sequence of
//     group-by columns — definable in PTnr(IFP, tuple, normal);
//   - RDB mapping: a fixed tree template with embedded CQ node
//     expressions — definable in PTnr(CQ, tuple, normal).
package dad

import (
	"fmt"

	"ptx/internal/langs/template"
	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/relation"
)

// SQLMapping is the sql_stmt flavor: Query's head columns are grouped
// left-to-right, each level labeled by the corresponding tag; the last
// level renders its column as text.
type SQLMapping struct {
	Name      string
	Schema    *relation.Schema
	RootTag   string
	Query     *logic.Query // head = the full column list; IFP allowed
	LevelTags []string     // one per head column
}

// Compile builds the per-level grouping transducer.
func (m *SQLMapping) Compile() (*pt.Transducer, error) {
	cols := m.Query.Head()
	if len(m.LevelTags) != len(cols) {
		return nil, fmt.Errorf("dad: %d level tags for %d columns", len(m.LevelTags), len(cols))
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("dad: query has no columns")
	}
	if !m.Query.TupleStore() {
		return nil, fmt.Errorf("dad: the mapping query must group by the whole tuple")
	}

	// Level i exposes columns 0..i of the query; its query re-evaluates
	// the mapping query and constrains the first i-1 columns to the
	// parent register.
	var build func(level int) *template.Node
	build = func(level int) *template.Node {
		head := cols[:level+1]
		f := m.Query.F
		var parts []logic.Formula
		if level > 0 {
			prefix := make([]logic.Term, level)
			for i := 0; i < level; i++ {
				prefix[i] = cols[i]
			}
			parts = append(parts, &logic.Atom{Rel: pt.RegRel, Args: prefix})
		}
		parts = append(parts, f)
		body := logic.Ex(cols[level+1:], logic.Conj(parts...))
		n := &template.Node{
			Tag:   m.LevelTags[level],
			Query: logic.MustQuery(append([]logic.Var{}, head...), nil, body),
		}
		if level+1 < len(cols) {
			n.Children = []*template.Node{build(level + 1)}
		} else {
			n.EmitText = true
		}
		return n
	}

	tpl := &template.View{
		Name:    m.Name,
		Schema:  m.Schema,
		RootTag: m.RootTag,
		Top:     []*template.Node{build(0)},
	}
	return tpl.Compile(template.Restrictions{
		MaxLogic:     logic.IFP,
		AllowVirtual: false,
		RequireTuple: true,
	})
}

// RDBNode is a node of the rdb_node flavor: a tree template annotated
// with CQ queries.
type RDBNode struct {
	Tag      string
	Query    *logic.Query
	EmitText bool
	Children []*RDBNode
}

// RDBMapping is the rdb_node flavor of a DAD.
type RDBMapping struct {
	Name    string
	Schema  *relation.Schema
	RootTag string
	Top     []*RDBNode
}

// Compile translates the RDB mapping into a transducer in
// PTnr(CQ, tuple, normal).
func (m *RDBMapping) Compile() (*pt.Transducer, error) {
	tpl := &template.View{Name: m.Name, Schema: m.Schema, RootTag: m.RootTag, Top: convertRDB(m.Top)}
	return tpl.Compile(template.Restrictions{
		MaxLogic:     logic.CQ,
		AllowVirtual: false,
		RequireTuple: true,
	})
}

func convertRDB(ns []*RDBNode) []*template.Node {
	out := make([]*template.Node, len(ns))
	for i, n := range ns {
		out[i] = &template.Node{Tag: n.Tag, Query: n.Query, EmitText: n.EmitText, Children: convertRDB(n.Children)}
	}
	return out
}
