// Package atg abstracts Attribute Transformation Grammars, the language
// of the PRATA middleware (Section 4, Fig. 6): a DTD-directed view in
// which every element type carries an inherited register and every
// production is annotated with queries populating its sub-elements.
// ATGs support recursive DTDs, relation registers and virtual nodes;
// per Table I the language is definable in PT(FO, relation, virtual).
package atg

import (
	"fmt"

	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/relation"
	"ptx/internal/xmltree"
)

// ChildSpec annotates one sub-element of a production with the query
// that populates it (FO; relation registers allowed via |ȳ| > 0).
type ChildSpec struct {
	Tag   string
	Query *logic.Query
}

// Grammar is an ATG: productions per element type, the root element,
// the set of virtual ("entity") tags, and element types rendered as
// text.
type Grammar struct {
	Name        string
	Schema      *relation.Schema
	RootTag     string
	Productions map[string][]ChildSpec
	Virtual     []string
	TextOf      []string // element types that render their register as text
}

// Compile translates the ATG into a publishing transducer; IFP queries
// are rejected (ATGs embed first-order relational queries). The result
// lies in PT(FO, relation, virtual).
func (g *Grammar) Compile() (*pt.Transducer, error) {
	t := pt.New(g.Name, g.Schema, "q0", g.RootTag)
	textSet := map[string]bool{}
	for _, tag := range g.TextOf {
		textSet[tag] = true
	}

	// Declare all tags first (arities from the queries that produce
	// them; conflicting uses are an error).
	declare := func(tag string, arity int) error {
		if a, ok := t.Arities[tag]; ok {
			if a != arity {
				return fmt.Errorf("atg: element %s used with register arities %d and %d", tag, a, arity)
			}
			return nil
		}
		t.DeclareTag(tag, arity)
		return nil
	}
	for parent, specs := range g.Productions {
		_ = parent
		for _, cs := range specs {
			if l := cs.Query.Logic(); l > logic.FO {
				return nil, fmt.Errorf("atg: element %s populated by an %s query", cs.Tag, l)
			}
			if err := declare(cs.Tag, cs.Query.Arity()); err != nil {
				return nil, err
			}
		}
	}
	for _, v := range g.Virtual {
		if _, ok := t.Arities[v]; !ok {
			return nil, fmt.Errorf("atg: virtual tag %s never produced", v)
		}
		t.MarkVirtual(v)
	}

	needText := false
	buildItems := func(specs []ChildSpec) []pt.RHS {
		items := make([]pt.RHS, len(specs))
		for i, cs := range specs {
			items[i] = pt.Item("q", cs.Tag, cs.Query)
		}
		return items
	}
	textItem := func(arity int) pt.RHS {
		needText = true
		vars := make([]logic.Var, arity)
		terms := make([]logic.Term, arity)
		for i := range vars {
			vars[i] = logic.Var(fmt.Sprintf("t%d", i))
			terms[i] = vars[i]
		}
		return pt.Item("qt", xmltree.TextTag, logic.MustQuery(vars, nil,
			&logic.Atom{Rel: pt.RegRel, Args: terms}))
	}

	// Root production.
	rootSpecs, ok := g.Productions[g.RootTag]
	if !ok {
		return nil, fmt.Errorf("atg: no production for root element %s", g.RootTag)
	}
	t.AddRule("q0", g.RootTag, buildItems(rootSpecs)...)

	// Inner productions.
	for _, tag := range t.Tags() {
		if tag == g.RootTag || tag == xmltree.TextTag {
			continue
		}
		items := buildItems(g.Productions[tag])
		if textSet[tag] {
			if err := declare(xmltree.TextTag, t.Arity(tag)); err != nil {
				return nil, err
			}
			items = append(items, textItem(t.Arity(tag)))
		}
		t.AddRule("q", tag, items...)
	}
	if needText {
		t.AddRule("qt", xmltree.TextTag)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
