// Package treeql abstracts TreeQL, the SilkRoute middleware language as
// formalized by Alon et al. (Section 4): a fixed tree template whose
// nodes are annotated with conjunctive queries, with virtual nodes and
// tuple-based information passing by free-variable binding. Per Table I
// the language is definable in PTnr(CQ, tuple, virtual).
package treeql

import (
	"ptx/internal/langs/template"
	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/relation"
)

// Node is a template node annotated with a CQ query; virtual nodes are
// removed from the output.
type Node struct {
	Tag      string
	Query    *logic.Query
	Virtual  bool
	EmitText bool
	Children []*Node
}

// View is a TreeQL template.
type View struct {
	Name    string
	Schema  *relation.Schema
	RootTag string
	Top     []*Node
}

// Compile translates the template into a publishing transducer in
// PTnr(CQ, tuple, virtual); FO or IFP annotations are rejected.
func (v *View) Compile() (*pt.Transducer, error) {
	tpl := &template.View{Name: v.Name, Schema: v.Schema, RootTag: v.RootTag, Top: convert(v.Top)}
	return tpl.Compile(template.Restrictions{
		MaxLogic:     logic.CQ,
		AllowVirtual: true,
		RequireTuple: true,
	})
}

func convert(ns []*Node) []*template.Node {
	out := make([]*template.Node, len(ns))
	for i, n := range ns {
		out[i] = &template.Node{Tag: n.Tag, Query: n.Query, Virtual: n.Virtual,
			EmitText: n.EmitText, Children: convert(n.Children)}
	}
	return out
}
