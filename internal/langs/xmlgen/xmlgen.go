// Package xmlgen abstracts Oracle 10g's DBMS_XMLGEN PL/SQL package with
// the SQL'99 CONNECT BY construct (Section 4, Fig. 5): a row query is
// unfolded into a recursive hierarchy by joining each row's key column
// to its children's parent column, generating an XML tree of unbounded
// depth. With the stop condition imposed, per Table I the language is
// definable in PT(IFP, tuple, normal).
package xmlgen

import (
	"fmt"

	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/relation"
	"ptx/internal/xmltree"
)

// View is a DBMS_XMLGEN hierarchy: Rows selects the row set (its head
// lists the row columns; IFP allowed via recursive SQL); StartWith
// filters the roots (column = value); ConnectBy joins prior rows to
// children: prior row's PriorCol equals the child's ChildCol.
type View struct {
	Name     string
	Schema   *relation.Schema
	RootTag  string
	RowTag   string
	Rows     *logic.Query
	StartCol int
	StartVal string
	PriorCol int
	ChildCol int
	EmitText bool
}

// Compile builds the recursive transducer.
func (v *View) Compile() (*pt.Transducer, error) {
	if !v.Rows.TupleStore() {
		return nil, fmt.Errorf("xmlgen: the row query must produce tuples")
	}
	cols := v.Rows.Head()
	n := len(cols)
	if v.PriorCol < 0 || v.PriorCol >= n || v.ChildCol < 0 || v.ChildCol >= n {
		return nil, fmt.Errorf("xmlgen: connect-by columns out of range")
	}
	if v.StartCol < 0 || v.StartCol >= n {
		return nil, fmt.Errorf("xmlgen: start-with column out of range")
	}
	t := pt.New(v.Name, v.Schema, "q0", v.RootTag)
	t.DeclareTag(v.RowTag, n)

	// Roots: rows with StartCol = StartVal.
	start := logic.MustQuery(cols, nil, logic.Conj(
		v.Rows.F, logic.EqT(cols[v.StartCol], logic.Const(v.StartVal))))
	t.AddRule("q0", v.RootTag, pt.Item("q", v.RowTag, start))

	// Children: rows whose ChildCol equals the prior row's PriorCol.
	prior := make([]logic.Var, n)
	priorTerms := make([]logic.Term, n)
	for i := range prior {
		prior[i] = logic.Var(fmt.Sprintf("prior%d", i))
		priorTerms[i] = prior[i]
	}
	step := logic.MustQuery(cols, nil, logic.Ex(prior, logic.Conj(
		&logic.Atom{Rel: pt.RegRel, Args: priorTerms},
		v.Rows.F,
		logic.EqT(prior[v.PriorCol], cols[v.ChildCol]),
	)))
	items := []pt.RHS{pt.Item("q", v.RowTag, step)}
	if v.EmitText {
		t.DeclareTag(xmltree.TextTag, n)
		copyVars := make([]logic.Var, n)
		copyTerms := make([]logic.Term, n)
		for i := range copyVars {
			copyVars[i] = logic.Var(fmt.Sprintf("t%d", i))
			copyTerms[i] = copyVars[i]
		}
		items = append(items, pt.Item("qt", xmltree.TextTag,
			logic.MustQuery(copyVars, nil, &logic.Atom{Rel: pt.RegRel, Args: copyTerms})))
		t.AddRule("qt", xmltree.TextTag)
	}
	t.AddRule("q", v.RowTag, items...)
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
