// Package forxml abstracts the FOR XML publishing construct of
// Microsoft SQL Server 2005 (Section 4, Fig. 2): nested SQL queries
// organize extracted rows into elements, information flows to children
// by correlation (tuple registers), the nesting depth is fixed, and
// there are no virtual nodes. Per Table I the language is definable in
// PTnr(FO, tuple, normal).
package forxml

import (
	"ptx/internal/langs/template"
	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/relation"
)

// Element is one nested FOR XML block: the tag it emits, the SQL query
// (abstracted as an FO formula over the source and the correlated
// parent row Reg), nested blocks, and whether to render the row as
// text.
type Element struct {
	Tag      string
	Query    *logic.Query
	EmitText bool
	Children []*Element
}

// View is a FOR XML view: a root tag (the paper's root('db') directive)
// and the top-level blocks.
type View struct {
	Name    string
	Schema  *relation.Schema
	RootTag string
	Top     []*Element
}

// Compile translates the view into a publishing transducer; it rejects
// constructs outside the dialect (IFP queries, relation stores, virtual
// nodes), so every compiled view lies in PTnr(FO, tuple, normal).
func (v *View) Compile() (*pt.Transducer, error) {
	tpl := &template.View{
		Name:    v.Name,
		Schema:  v.Schema,
		RootTag: v.RootTag,
		Top:     convert(v.Top),
	}
	return tpl.Compile(template.Restrictions{
		MaxLogic:     logic.FO,
		AllowVirtual: false,
		RequireTuple: true,
	})
}

func convert(es []*Element) []*template.Node {
	out := make([]*template.Node, len(es))
	for i, e := range es {
		out[i] = &template.Node{
			Tag:      e.Tag,
			Query:    e.Query,
			EmitText: e.EmitText,
			Children: convert(e.Children),
		}
	}
	return out
}
