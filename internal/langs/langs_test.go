package langs

import (
	"strings"
	"testing"

	"ptx/internal/langs/forxml"
	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/registrar"
)

func TestTableIRowsCompileWithinClass(t *testing.T) {
	for _, row := range TableI() {
		got, err := row.CheckRow()
		if err != nil {
			t.Errorf("%s / %s: %v", row.Product, row.Method, err)
			continue
		}
		t.Logf("%-28s %-20s paper=%s got=%s", row.Product, row.Method, row.PaperClass, got)
	}
}

func TestTableIRowsRun(t *testing.T) {
	inst := registrar.SampleInstance()
	for _, row := range TableI() {
		tr, err := row.View()
		if err != nil {
			t.Fatalf("%s / %s: %v", row.Product, row.Method, err)
		}
		out, err := tr.Output(inst, pt.Options{MaxNodes: 100000})
		if err != nil {
			t.Fatalf("%s / %s: %v", row.Product, row.Method, err)
		}
		if out.Size() <= 1 {
			t.Errorf("%s / %s: produced a trivial tree", row.Product, row.Method)
		}
	}
}

func TestForXMLExcludesDBPrereq(t *testing.T) {
	tr, err := ForXMLView()
	if err != nil {
		t.Fatal(err)
	}
	out, err := tr.Output(registrar.SampleInstance(), pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// CS302 has DB100 (titled DB) as an immediate prerequisite.
	if strings.Contains(out.Canonical(), "CS302") {
		t.Fatalf("FOR XML view must exclude CS302: %s", out.Canonical())
	}
	if got := out.CountTag("course"); got != 5 {
		t.Fatalf("FOR XML view has %d courses, want 5", got)
	}
}

func TestForXMLRejectsIFP(t *testing.T) {
	// Microsoft FOR XML has no recursive SQL in the dialect abstraction.
	u := logic.Var("u")
	fp := &logic.Fixpoint{Rel: "S", Vars: []logic.Var{u},
		Body: logic.Ex([]logic.Var{logic.Var("w")}, logic.R("prereq", u, logic.Var("w"))),
		Args: []logic.Term{u}}
	bad := logic.MustQuery([]logic.Var{u}, nil, fp)
	v := &forxml.View{
		Name:    "bad",
		Schema:  registrar.Schema(),
		RootTag: "db",
		Top:     []*forxml.Element{{Tag: "a", Query: bad}},
	}
	if _, err := v.Compile(); err == nil {
		t.Fatal("IFP query must be rejected by FOR XML")
	}
}

func TestTreeQLRejectsFO(t *testing.T) {
	row := TableI()[8]
	if row.Method != "TreeQL" {
		t.Fatal("row order changed")
	}
	// Verify the compiled view really uses a virtual node.
	tr, err := row.View()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Virtual) == 0 {
		t.Error("TreeQL representative should use a virtual node")
	}
	out, err := tr.Output(registrar.SampleInstance(), pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range out.Labels() {
		if l == "wrap" {
			t.Error("virtual wrapper leaked into output")
		}
	}
}

func TestXMLGenRecursive(t *testing.T) {
	tr, err := DBMSXMLGenView()
	if err != nil {
		t.Fatal(err)
	}
	if !tr.IsRecursive() {
		t.Error("CONNECT BY view should be recursive")
	}
	// On a prerequisite chain the hierarchy nests.
	out, err := tr.Output(registrar.ChainInstance(3), pt.Options{MaxNodes: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if out.Depth() < 4 {
		t.Errorf("hierarchy should nest, depth = %d", out.Depth())
	}
}

func TestATGRecursiveWithRelationStore(t *testing.T) {
	tr, err := ATGView()
	if err != nil {
		t.Fatal(err)
	}
	cl := tr.Classify()
	if !cl.Recursive {
		t.Error("ATG view should be recursive")
	}
	if cl.Store != pt.RelationStore {
		t.Error("ATG view should use relation registers")
	}
	out, err := tr.Output(registrar.SampleInstance(), pt.Options{MaxNodes: 100000})
	if err != nil {
		t.Fatal(err)
	}
	// CS401's prereq subtree contains CS301 and CS302.
	c := out.Canonical()
	if !strings.Contains(c, "CS301") || !strings.Contains(c, "CS201") {
		t.Errorf("ATG hierarchy incomplete: %s", c)
	}
}

func TestATGTerminatesOnCycles(t *testing.T) {
	tr, err := ATGView()
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run(registrar.CycleInstance(3), pt.Options{MaxNodes: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StopsApplied == 0 {
		t.Error("stop condition should fire on cyclic prerequisites")
	}
}

func TestDADSQLMappingGroups(t *testing.T) {
	tr, err := DADSQLMappingView()
	if err != nil {
		t.Fatal(err)
	}
	out, err := tr.Output(registrar.SampleInstance(), pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Two departments (CS, Math) → two dept groups; six courses total.
	if got := out.CountTag("dept"); got != 2 {
		t.Fatalf("dept groups = %d, want 2: %s", got, out.Canonical())
	}
	if got := out.CountTag("course"); got != 6 {
		t.Fatalf("courses = %d, want 6: %s", got, out.Canonical())
	}
}

func TestAnnotatedXSDJoin(t *testing.T) {
	tr, err := AnnotatedXSDView()
	if err != nil {
		t.Fatal(err)
	}
	out, err := tr.Output(registrar.SampleInstance(), pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// CS401 has two immediate prerequisites via the key join.
	if got := out.CountTag("prereq"); got != 5 {
		t.Fatalf("prereq elements = %d, want 5 (total prereq tuples under CS courses): %s",
			got, out.Canonical())
	}
}

func TestSQLXMLClosure(t *testing.T) {
	tr, err := SQLXMLView()
	if err != nil {
		t.Fatal(err)
	}
	if cl := tr.Classify(); cl.Logic != logic.IFP {
		t.Fatalf("SQL/XML representative should use IFP, got %s", cl)
	}
	out, err := tr.Output(registrar.ChainInstance(3), pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Closure of CS001: CS002, CS003 are in some CS course's closure.
	if got := out.CountTag("course"); got != 2 {
		t.Fatalf("closure members = %d, want 2: %s", got, out.Canonical())
	}
}
