package pt_test

import (
	"testing"

	"ptx/internal/families"
	"ptx/internal/pt"
	"ptx/internal/relation"
)

// BenchmarkCacheAblation measures the cache levels against the two
// Proposition 1 blowup families:
//
//   - exp: the graph-unfolding transducer τ1 on the chain of diamonds
//     (2ⁿ leaves from O(n) edges, Proposition 1(3)) — every subtree
//     repeats, so subtree sharing collapses the run to one expansion per
//     graph vertex;
//   - 2exp: the binary-counter transducer τ2 (≥2^(2ⁿ) nodes,
//     Proposition 1(4)) — subtrees depend on their ancestor
//     configurations, exercising the dependency-validation path.
//
// Run with -benchtime=1x for a smoke reading; queries/op is the
// interesting metric (wall clock follows it).
func BenchmarkCacheAblation(b *testing.B) {
	families2 := []struct {
		name string
		tr   *pt.Transducer
		inst *relation.Instance
	}{
		{"exp/unfold-diamond-10", families.UnfoldTransducer(), families.DiamondChain(10)},
		{"2exp/counter-2", families.CounterTransducer(), families.CounterInstance(2)},
	}
	for _, f := range families2 {
		for _, mode := range []pt.CacheMode{pt.CacheOff, pt.CacheQueries, pt.CacheSubtrees} {
			b.Run(f.name+"/cache="+mode.String(), func(b *testing.B) {
				var stats pt.Stats
				for i := 0; i < b.N; i++ {
					res, err := f.tr.Run(f.inst, pt.Options{Cache: mode})
					if err != nil {
						b.Fatal(err)
					}
					stats = res.Stats
				}
				b.ReportMetric(float64(stats.QueriesRun), "queries/op")
				b.ReportMetric(float64(stats.Nodes), "logical-nodes/op")
				b.ReportMetric(float64(stats.SubtreesShared), "shared/op")
			})
		}
	}
}
