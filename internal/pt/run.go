package pt

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ptx/internal/eval"
	"ptx/internal/relation"
	"ptx/internal/runctl"
	"ptx/internal/value"
	"ptx/internal/xmltree"
)

// Options configures a transducer run.
type Options struct {
	// MaxNodes aborts the transformation once the generated tree exceeds
	// this many nodes; 0 means unlimited. The transformation always
	// terminates (Proposition 1(1)) but relation-store transducers can
	// legitimately produce doubly-exponential trees, so callers may want
	// a guard.
	MaxNodes int
	// MaxDepth aborts the transformation once the tree grows deeper than
	// this many levels (the root is level 1); 0 means unlimited.
	// Relation-store transducers can be deep as well as wide: the
	// register grows along a path, so the ancestor stop condition may
	// fire only after exponentially many levels.
	MaxDepth int
	// Workers > 1 expands independent subtrees concurrently. The output
	// is identical to the sequential run: each subtree is uniquely
	// determined by its root's (state, tag, register) and the database
	// (the paper's determinism argument), and children are ordered
	// before recursion.
	Workers int
	// Limits optionally carries the full run-control limit set (wall
	// clock, query and fixpoint-iteration budgets). The MaxNodes and
	// MaxDepth fields above override the corresponding Limits fields
	// when nonzero.
	Limits *runctl.Limits
	// Faults injects deterministic test-only failures (see
	// runctl.FaultPlan); nil in production.
	Faults *runctl.FaultPlan
	// Cache selects the memoization level (see CacheMode). The zero
	// value CacheOff preserves the historical behavior exactly. With
	// CacheQueries and above, register relations in ξ may be shared
	// between nodes and must be treated as immutable; with
	// CacheSubtrees, ξ itself may be a DAG (shared subtrees) — Output
	// preserves the sharing (and the streaming writers serialize the
	// unfolding without materializing it), but callers walking
	// Result.Xi directly should expect shared nodes. The run's
	// Stats.CacheMode reports the EFFECTIVE mode after the automatic
	// subtree→query downgrade (node/depth budgets).
	Cache CacheMode
	// CacheSize bounds each cache level in entries; 0 selects
	// DefaultCacheSize.
	CacheSize int
	// Memo, when non-nil and Cache ≥ CacheQueries, is used as the
	// query-result memo instead of a fresh per-run table, so concurrent
	// or repeated runs over the SAME transducer and instance share warm
	// results (eval.Memo is concurrency-safe and failed evaluations are
	// never stored, so a faulted run cannot poison it). Sharing a memo
	// across different instances is unsound — its keys do not include
	// the database. Stats.Cache{Hits,Misses,Evictions} report the memo's
	// cumulative counters, which with a shared memo include other runs'
	// traffic.
	Memo *eval.Memo
	// NoPlan disables the compiled-query-plan fast path: every rule
	// query runs on the optimized interpreter instead (eval.Env
	// WithoutPlanner). Escape hatch surfaced as -plan=off in the CLIs;
	// results are identical either way.
	NoPlan bool
}

// baseEnv builds the run's root evaluation environment over inst,
// honoring the NoPlan escape hatch.
func (o Options) baseEnv(inst *relation.Instance, ctl *runctl.Controller) *eval.Env {
	env := eval.NewEnv(inst).WithControl(ctl)
	if o.NoPlan {
		env = env.WithoutPlanner()
	}
	return env
}

// limits merges the flat Options fields into the optional Limits set.
func (o Options) limits() runctl.Limits {
	var l runctl.Limits
	if o.Limits != nil {
		l = *o.Limits
	}
	if o.MaxNodes > 0 {
		l.MaxNodes = o.MaxNodes
	}
	if o.MaxDepth > 0 {
		l.MaxDepth = o.MaxDepth
	}
	return l
}

// Stats reports what a run did. Nodes, StopsApplied and MaxDepth always
// describe the LOGICAL tree (the unfolding of ξ), so they are identical
// across cache modes; QueriesRun counts evaluations actually performed,
// which is exactly what the caches reduce.
type Stats struct {
	Nodes        int // logical nodes in the final ξ (before virtual splicing)
	QueriesRun   int // rule queries evaluated
	StopsApplied int // times the ancestor stop condition fired (logical)
	MaxDepth     int // depth of ξ

	CacheMode      CacheMode // effective mode (subtree may downgrade to query)
	CacheHits      int       // query-memo hits
	CacheMisses    int       // query-memo misses
	CacheEvictions int       // evictions across both cache levels
	SubtreesShared int       // whole expanded subtrees reused by reference
	NodesShared    int       // logical nodes covered by those reuses (roots excluded)
}

// Result bundles the raw register-carrying tree ξ and run statistics.
type Result struct {
	Xi    *xmltree.Tree // final tree with registers and states intact
	Stats Stats
}

// ErrBudget is returned when a resource budget (MaxNodes, MaxDepth, or
// one of the runctl.Limits budgets) is exceeded; the Kind field names
// which. It is an alias for runctl.ErrBudget so callers can match it
// from either package with errors.As.
type ErrBudget = runctl.ErrBudget

type runner struct {
	t    *Transducer
	base *eval.Env
	opts Options
	ctl  *runctl.Controller

	// cancel tears down the run-scoped context; fail invokes it so that
	// sibling subtrees abandon work as soon as any branch errors.
	cancel   context.CancelFunc
	failOnce sync.Once
	firstErr error

	queries atomic.Int64
	stops   atomic.Int64
	sem     chan struct{}

	// mode is the effective cache mode after the subtree→query
	// downgrade; memo and subtrees are nil below the corresponding mode.
	mode        CacheMode
	memo        *eval.Memo
	subtrees    *subtreeCache
	nodesShared atomic.Int64
}

// fail records the first error of the run and cancels the run context
// so concurrent siblings stop early. It returns err for convenience.
func (r *runner) fail(err error) error {
	r.failOnce.Do(func() {
		r.firstErr = err
		r.cancel()
	})
	return err
}

// cause returns the error that actually stopped the run: the first
// recorded failure if any, else the error bubbled up by expansion.
// Derived cancellations in sibling branches never mask the root cause.
func (r *runner) cause(err error) error {
	if r.firstErr != nil {
		return r.firstErr
	}
	return err
}

// ancKey identifies a (state, tag, register) configuration, used both
// for the ancestor stop condition and as the cache key for subtree
// sharing. The register component is relation.Key: canonical and
// order-insensitive (registers are sets), so two nodes that reach the
// same set of tuples by different evaluation orders share one
// configuration. Sibling ORDER is unaffected — it is fixed by the
// domain order on group prefixes at grouping time (see groupByPrefix),
// before configurations are ever compared.
func ancKey(state, tag string, reg *relation.Relation) string {
	return state + "\x00" + tag + "\x00" + reg.Key()
}

// ConfigKey is the exported form of the configuration key: by
// determinism (Proposition 1(1)) it completely identifies the subtree a
// configuration generates over a fixed database, which is what lets
// incremental repair (internal/incr) reuse an old subtree whenever the
// key survives a delta unchanged.
func ConfigKey(state, tag string, reg *relation.Relation) string {
	return ancKey(state, tag, reg)
}

// Run executes the τ-transformation on inst and returns the final tree
// ξ with registers and states still attached, plus statistics. It is
// RunContext with a background context.
func (t *Transducer) Run(inst *relation.Instance, opts Options) (*Result, error) {
	return t.RunContext(context.Background(), inst, opts)
}

// RunContext executes the τ-transformation under ctx and the limits in
// opts. Cancellation (and the Limits.Timeout deadline) is observed
// between rule-query evaluations, inside quantifier expansion and
// inside IFP fixpoint loops; on any failure all in-flight sibling
// expansions are abandoned. Errors are runctl-typed: *runctl.ErrCanceled
// for cancellation/deadline, *runctl.ErrBudget for exhausted budgets,
// *runctl.ErrInternal for contained panics.
func (t *Transducer) RunContext(ctx context.Context, inst *relation.Instance, opts Options) (res *Result, err error) {
	defer runctl.Recover(&err, "pt.Run")
	if err := t.Validate(); err != nil {
		return nil, err
	}
	limits := opts.limits()
	ctx, cancelT := limits.WithTimeout(ctx)
	defer cancelT()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	ctl := runctl.New(runCtx, limits).WithFaults(opts.Faults)
	mode := opts.Cache
	if mode == CacheSubtrees && limits.BoundsTree() {
		// Subtree sharing skips per-node budget accounting; degrade to
		// the work-level cache so budgets stay exact. Virtual tags no
		// longer force a downgrade: the output path splices them at
		// emission (WriteXMLVirtual/Publish) instead of mutating ξ.
		mode = CacheQueries
	}
	r := &runner{
		t:      t,
		base:   opts.baseEnv(inst, ctl),
		opts:   opts,
		ctl:    ctl,
		cancel: cancel,
		mode:   mode,
	}
	if mode >= CacheQueries {
		if opts.Memo != nil {
			r.memo = opts.Memo
		} else {
			r.memo = eval.NewMemo(opts.CacheSize)
		}
	}
	if mode == CacheSubtrees {
		r.subtrees = newSubtreeCache(opts.CacheSize)
	}
	if opts.Workers > 1 {
		r.sem = make(chan struct{}, opts.Workers)
	}
	root := &xmltree.Node{Tag: t.RootTag, State: t.Start, Reg: relation.New(0)}
	ancestors := map[string]bool{}
	var rootDeps *subdeps
	if mode == CacheSubtrees {
		rootDeps = &subdeps{}
	}
	if err := r.expand(root, ancestors, true, 1, rootDeps); err != nil {
		return nil, r.cause(err)
	}
	tree := &xmltree.Tree{Root: root}
	stats := Stats{
		QueriesRun:   int(r.queries.Load()),
		StopsApplied: int(r.stops.Load()),
		CacheMode:    mode,
	}
	if mode == CacheSubtrees {
		// ξ may be a DAG whose unfolding is exponentially larger than its
		// physical size; the expansion summarized the logical tree as it
		// went, so walking it here is both wrong and unaffordable.
		stats.Nodes = rootDeps.size
		stats.MaxDepth = rootDeps.height
	} else {
		stats.Nodes = tree.Size()
		stats.MaxDepth = tree.Depth()
	}
	if r.memo != nil {
		h, m, e := r.memo.Stats()
		stats.CacheHits = int(h)
		stats.CacheMisses = int(m)
		stats.CacheEvictions = int(e)
	}
	if r.subtrees != nil {
		stats.SubtreesShared = int(r.subtrees.hits.Load())
		stats.NodesShared = int(r.nodesShared.Load())
		stats.CacheEvictions += int(r.subtrees.evictions.Load())
	}
	return &Result{Xi: tree, Stats: stats}, nil
}

// Output executes the transformation and returns the output Σ-tree τ(I):
// registers and states stripped, virtual tags spliced out.
func (t *Transducer) Output(inst *relation.Instance, opts Options) (*xmltree.Tree, error) {
	return t.OutputContext(context.Background(), inst, opts)
}

// OutputContext is Output under a context (see RunContext). The result
// preserves any subtree sharing in ξ: publishing a DAG costs its
// physical size, and the streaming writers serialize its unfolding
// without materializing it. Use Tree.WriteXMLVirtual/WriteCanonicalVirtual
// on Result.Xi directly to skip even the publish copy.
func (t *Transducer) OutputContext(ctx context.Context, inst *relation.Instance, opts Options) (*xmltree.Tree, error) {
	res, err := t.RunContext(ctx, inst, opts)
	if err != nil {
		return nil, err
	}
	return res.Xi.Publish(t.Virtual), nil
}

// OutputRelation treats τ as a relational query (Section 6.1): it runs
// the transformation and returns the union of the registers of all
// nodes labeled label in the final ξ. label must not be virtual.
func (t *Transducer) OutputRelation(inst *relation.Instance, label string, opts Options) (*relation.Relation, error) {
	return t.OutputRelationContext(context.Background(), inst, label, opts)
}

// OutputRelationContext is OutputRelation under a context (see
// RunContext).
func (t *Transducer) OutputRelationContext(ctx context.Context, inst *relation.Instance, label string, opts Options) (*relation.Relation, error) {
	if t.Virtual[label] {
		return nil, fmt.Errorf("pt: output label %q is virtual", label)
	}
	a, ok := t.Arities[label]
	if !ok {
		return nil, fmt.Errorf("pt: output label %q has no declared arity", label)
	}
	res, err := t.RunContext(ctx, inst, opts)
	if err != nil {
		return nil, err
	}
	out := relation.New(a)
	// Register union is idempotent, so each physically shared node needs
	// visiting once: WalkShared keeps this linear in the size of the ξ
	// DAG where Walk would traverse its (possibly exponential) unfolding.
	res.Xi.WalkShared(func(n *xmltree.Node) bool {
		if n.Tag == label && n.Reg != nil {
			out.UnionWith(n.Reg)
		}
		return true
	})
	return out, nil
}

// expand realizes the step relation ⇒ repeatedly below node n, whose
// (State, Tag, Reg) describe its current (q, a) labeling and register.
// ancestors maps ancKey → true for every proper ancestor configuration
// on the path from the root (the stop condition of Section 3). own
// reports whether this call is the sole referent of the ancestors map
// and may therefore extend it in place; when false the map may be
// shared with siblings (or a concurrent worker) and is copied before
// the first extension.
//
// Single-child steps — the shape of the exponentially deep chains that
// Proposition 1(4) licenses — are a LOOP, not a recursion: the node is
// finalized, its configuration is pushed on a spine of pending
// cache-insertions, and expansion descends in place. Combined with the
// in-place ancestor extension this makes a depth-d chain cost O(d)
// total (the recursive formulation paid O(d) stack frames and O(d²)
// ancestor-map copying). Branching nodes still recurse per child, so
// the Go stack depth is bounded by the number of BRANCHING ancestors,
// not by tree depth.
//
// dp, non-nil exactly in CacheSubtrees mode, is the caller's dependency
// accumulator: this call merges into it the summary (logical size,
// height, stop count, outer ancestor-set dependencies) of the subtree
// rooted at n. See subdeps for the validity argument.
//
// Every error path goes through r.fail so that concurrent siblings see
// the run context canceled and abandon their subtrees; nothing is ever
// inserted into a cache on an error path (the pending spine is dropped
// on error for the same reason).
func (r *runner) expand(n *xmltree.Node, ancestors map[string]bool, own bool, depth int, dp *subdeps) error {
	// spine records single-child ancestors of the current node whose
	// finish (subtree-cache insertion + summary promotion) is pending
	// until their chain bottoms out; unwound deepest-first so each
	// node's summary reaches its parent's accumulator.
	type pendingFinish struct {
		n   *xmltree.Node
		key string
		cd  *subdeps
		dp  *subdeps
	}
	var spine []pendingFinish
	unwind := func() error {
		for i := len(spine) - 1; i >= 0; i-- {
			p := spine[i]
			if err := r.finish(p.n, p.key, p.cd, p.dp); err != nil {
				return err
			}
		}
		return nil
	}

	for {
		if err := r.ctl.Canceled(); err != nil {
			return r.fail(err)
		}
		if err := r.ctl.Depth(depth); err != nil {
			return r.fail(err)
		}

		// Text nodes finalize immediately, carrying the string rendering
		// of their register.
		if n.Tag == xmltree.TextTag {
			n.Text = xmltree.TextOfRegister(n.Reg)
			n.State = ""
			dp.addLeaf("")
			return unwind()
		}

		// Stop condition (1): an ancestor repeats state, tag and register.
		key := ancKey(n.State, n.Tag, n.Reg)
		if ancestors[key] {
			r.stops.Add(1)
			n.State = ""
			dp.addStop(key)
			return unwind()
		}

		// Subtree sharing: if this configuration was fully expanded
		// before and its recorded stop-condition dependencies resolve
		// identically under the current ancestor set, reuse the
		// expansion by reference. Determinism (Proposition 1) guarantees
		// the unfolding is exactly the tree this call would have built.
		if r.subtrees != nil {
			if e, ok := r.subtrees.lookup(key, ancestors); ok {
				n.Children = e.children
				n.State = ""
				r.stops.Add(int64(e.stops))
				r.nodesShared.Add(int64(e.size - 1))
				dp.addEntry(e)
				return unwind()
			}
		}

		rule, ok := r.t.Rule(n.State, n.Tag)
		if !ok || len(rule.Items) == 0 {
			// Empty right-hand side: finalize.
			n.State = ""
			dp.addLeaf(key)
			return unwind()
		}

		env := r.base.WithRelation(RegRel, n.Reg)
		var regFP string
		if r.memo != nil {
			regFP = n.Reg.Key()
		}
		type childSpec struct {
			state string
			tag   string
			reg   *relation.Relation
		}
		var specs []childSpec
		for _, it := range rule.Items {
			var result *relation.Relation
			if r.memo != nil {
				if rel, ok := r.memo.Get(it.Query, regFP); ok {
					// Memo hit: the result is shared by reference and was
					// stored only after a successful evaluation, so neither
					// the query budget nor the fault plan is charged.
					result = rel
				}
			}
			if result == nil {
				if err := r.ctl.Query(); err != nil {
					return r.fail(err)
				}
				r.queries.Add(1)
				rel, err := eval.EvalQuery(it.Query, env)
				if err != nil {
					return r.fail(fmt.Errorf("pt %s: rule (%s,%s) item (%s,%s): %w",
						r.t.Name, rule.State, rule.Tag, it.State, it.Tag, err))
				}
				if r.memo != nil {
					r.memo.Put(it.Query, regFP, rel)
				}
				result = rel
			}
			groups, err := groupByPrefix(result, len(it.Query.GroupVars))
			if err != nil {
				return r.fail(fmt.Errorf("pt %s: rule (%s,%s) item (%s,%s): %w",
					r.t.Name, rule.State, rule.Tag, it.State, it.Tag, err))
			}
			for _, g := range groups {
				specs = append(specs, childSpec{state: it.State, tag: it.Tag, reg: g})
			}
		}

		if len(specs) == 0 {
			// All forests empty: finalize.
			n.State = ""
			dp.addLeaf(key)
			return unwind()
		}
		if err := r.ctl.AddNodes(len(specs)); err != nil {
			return r.fail(err)
		}

		n.Children = make([]*xmltree.Node, len(specs))
		for i, s := range specs {
			n.Children[i] = &xmltree.Node{Tag: s.tag, State: s.state, Reg: s.reg}
		}
		n.State = ""

		// cd accumulates the children's subtree summaries; promoted to
		// this node's own summary after a fully successful expansion.
		var cd *subdeps
		if dp != nil {
			cd = &subdeps{}
		}

		if len(n.Children) == 1 {
			// Tail step: extend the ancestor set (in place when owned —
			// nothing else will read this map once the chain is done)
			// and descend without growing the Go stack.
			if !own {
				m := make(map[string]bool, len(ancestors)+1)
				for k := range ancestors {
					m[k] = true
				}
				ancestors = m
				own = true
			}
			ancestors[key] = true
			spine = append(spine, pendingFinish{n: n, key: key, cd: cd, dp: dp})
			n = n.Children[0]
			dp = cd
			depth++
			continue
		}

		// Branching step: one extended copy of the ancestor set, shared
		// read-only by all children (each child copies again on its own
		// first extension — copy-on-write keeps sibling subtrees
		// independent, which the parallel path relies on).
		childAnc := make(map[string]bool, len(ancestors)+1)
		for k := range ancestors {
			childAnc[k] = true
		}
		childAnc[key] = true

		if r.sem == nil {
			for _, c := range n.Children {
				if err := r.expand(c, childAnc, false, depth+1, cd); err != nil {
					return err
				}
			}
			if err := r.finish(n, key, cd, dp); err != nil {
				return err
			}
			return unwind()
		}

		// Parallel expansion of independent subtrees. Each worker
		// contains its own panics (a panic in a bare goroutine would
		// kill the whole process) and the first failing child cancels
		// the run context, so its siblings stop at their next checkpoint
		// instead of expanding to completion. Each child records
		// dependencies into its own accumulator; they are merged after
		// the barrier.
		errs := make([]error, len(n.Children))
		var deps []*subdeps
		if cd != nil {
			deps = make([]*subdeps, len(n.Children))
			for i := range deps {
				deps[i] = &subdeps{}
			}
		}
		childDeps := func(i int) *subdeps {
			if deps == nil {
				return nil
			}
			return deps[i]
		}
		var wg sync.WaitGroup
		for i, c := range n.Children {
			select {
			case r.sem <- struct{}{}:
				wg.Add(1)
				go func(i int, c *xmltree.Node) {
					defer wg.Done()
					defer func() { <-r.sem }()
					errs[i] = r.safeExpand(c, childAnc, depth+1, childDeps(i))
				}(i, c)
			default:
				errs[i] = r.safeExpand(c, childAnc, depth+1, childDeps(i))
			}
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		for _, d := range deps {
			cd.merge(d)
		}
		if err := r.finish(n, key, cd, dp); err != nil {
			return err
		}
		return unwind()
	}
}

// finish completes a successful interior expansion of n (configuration
// key, accumulated child summaries cd): it caches the expanded subtree
// when eligible and folds n's summary into the caller's accumulator dp.
func (r *runner) finish(n *xmltree.Node, key string, cd, dp *subdeps) error {
	if dp == nil {
		return nil
	}
	mine := cd.promote(key)
	if r.subtrees != nil && !mine.overflow {
		r.subtrees.insert(key, &subtreeEntry{
			children: n.Children,
			size:     mine.size,
			height:   mine.height,
			stops:    mine.stops,
			hits:     mine.hits,
			misses:   mine.misses,
		})
	}
	dp.merge(mine)
	return nil
}

// safeExpand is expand with panic containment: a panic anywhere below
// becomes a *runctl.ErrInternal and cancels the run like any other
// failure.
func (r *runner) safeExpand(n *xmltree.Node, ancestors map[string]bool, depth int, dp *subdeps) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = r.fail(runctl.InternalFrom(
				fmt.Sprintf("pt %s: expand (%s,%s)", r.t.Name, n.State, n.Tag), p))
		}
	}()
	return r.expand(n, ancestors, false, depth, dp)
}

// groupByPrefix splits a query result (columns x̄·ȳ) into the groups
// S_1,…,S_m of the paper: one group per distinct x̄-prefix d̄, each
// holding {d̄}×{ē | φ(d̄,ē)}, ordered by d̄ in the domain order.
//
// With k = 0 (|x̄| = 0) the whole nonempty result is a single group;
// with k = arity (|ȳ| = 0) every group is a singleton tuple.
//
// k > result.Arity() — a grouping prefix wider than the tuples it would
// be sliced from — returns a *GroupArityError. Transducer.Validate
// rejects such rules statically, so hitting this at run time means the
// result relation has the wrong width (a corrupted cache entry, or an
// evaluator bug); the typed error keeps it diagnosable instead of a
// slice-bounds panic deep in a worker.
func groupByPrefix(result *relation.Relation, k int) ([]*relation.Relation, error) {
	if k > result.Arity() {
		return nil, &GroupArityError{GroupVars: k, Arity: result.Arity()}
	}
	if result.Empty() {
		return nil, nil
	}
	if k == 0 {
		return []*relation.Relation{result}, nil
	}
	type group struct {
		prefix value.Tuple
		rel    *relation.Relation
	}
	byKey := make(map[string]*group)
	var order []*group
	result.Each(func(t value.Tuple) bool {
		p := t[:k]
		gk := value.Tuple(p).Key()
		g, ok := byKey[gk]
		if !ok {
			g = &group{prefix: value.Tuple(p).Clone(), rel: relation.New(result.Arity())}
			byKey[gk] = g
			order = append(order, g)
		}
		g.rel.Add(t)
		return true
	})
	// Order groups by the domain order on prefixes. Each iterates in the
	// canonical sorted tuple order, so groups already appear in prefix
	// order, but sort defensively.
	sort.Slice(order, func(i, j int) bool {
		return value.CompareTuples(order[i].prefix, order[j].prefix) < 0
	})
	out := make([]*relation.Relation, len(order))
	for i, g := range order {
		out[i] = g.rel
	}
	return out, nil
}
