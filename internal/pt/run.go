package pt

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ptx/internal/eval"
	"ptx/internal/relation"
	"ptx/internal/value"
	"ptx/internal/xmltree"
)

// Options configures a transducer run.
type Options struct {
	// MaxNodes aborts the transformation once the generated tree exceeds
	// this many nodes; 0 means unlimited. The transformation always
	// terminates (Proposition 1(1)) but relation-store transducers can
	// legitimately produce doubly-exponential trees, so callers may want
	// a guard.
	MaxNodes int
	// Workers > 1 expands independent subtrees concurrently. The output
	// is identical to the sequential run: each subtree is uniquely
	// determined by its root's (state, tag, register) and the database
	// (the paper's determinism argument), and children are ordered
	// before recursion.
	Workers int
}

// Stats reports what a run did.
type Stats struct {
	Nodes        int // nodes in the final ξ (before virtual splicing)
	QueriesRun   int // rule queries evaluated
	StopsApplied int // times the ancestor stop condition fired
	MaxDepth     int // depth of ξ
}

// Result bundles the raw register-carrying tree ξ and run statistics.
type Result struct {
	Xi    *xmltree.Tree // final tree with registers and states intact
	Stats Stats
}

// ErrBudget is returned when MaxNodes is exceeded.
type ErrBudget struct{ Limit int }

func (e *ErrBudget) Error() string {
	return fmt.Sprintf("pt: transformation exceeded node budget %d", e.Limit)
}

type runner struct {
	t    *Transducer
	base *eval.Env
	opts Options

	nodes   atomic.Int64
	queries atomic.Int64
	stops   atomic.Int64
	sem     chan struct{}
}

// ancKey identifies an (state, tag, register) ancestor configuration for
// the stop condition.
func ancKey(state, tag string, reg *relation.Relation) string {
	return state + "\x00" + tag + "\x00" + regKey(reg)
}

func regKey(reg *relation.Relation) string {
	ts := reg.Tuples()
	var sb []byte
	for _, t := range ts {
		sb = append(sb, t.Key()...)
		sb = append(sb, ';')
	}
	return string(sb)
}

// Run executes the τ-transformation on inst and returns the final tree
// ξ with registers and states still attached, plus statistics.
func (t *Transducer) Run(inst *relation.Instance, opts Options) (*Result, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	r := &runner{t: t, base: eval.NewEnv(inst), opts: opts}
	if opts.Workers > 1 {
		r.sem = make(chan struct{}, opts.Workers)
	}
	root := &xmltree.Node{Tag: t.RootTag, State: t.Start, Reg: relation.New(0)}
	ancestors := map[string]bool{}
	if err := r.expand(root, ancestors, 1); err != nil {
		return nil, err
	}
	tree := &xmltree.Tree{Root: root}
	stats := Stats{
		Nodes:        tree.Size(),
		QueriesRun:   int(r.queries.Load()),
		StopsApplied: int(r.stops.Load()),
		MaxDepth:     tree.Depth(),
	}
	return &Result{Xi: tree, Stats: stats}, nil
}

// Output executes the transformation and returns the output Σ-tree τ(I):
// registers and states stripped, virtual tags spliced out.
func (t *Transducer) Output(inst *relation.Instance, opts Options) (*xmltree.Tree, error) {
	res, err := t.Run(inst, opts)
	if err != nil {
		return nil, err
	}
	out := res.Xi.Clone().Strip()
	out.SpliceVirtual(t.Virtual)
	return out, nil
}

// OutputRelation treats τ as a relational query (Section 6.1): it runs
// the transformation and returns the union of the registers of all
// nodes labeled label in the final ξ. label must not be virtual.
func (t *Transducer) OutputRelation(inst *relation.Instance, label string, opts Options) (*relation.Relation, error) {
	if t.Virtual[label] {
		return nil, fmt.Errorf("pt: output label %q is virtual", label)
	}
	a, ok := t.Arities[label]
	if !ok {
		return nil, fmt.Errorf("pt: output label %q has no declared arity", label)
	}
	res, err := t.Run(inst, opts)
	if err != nil {
		return nil, err
	}
	out := relation.New(a)
	res.Xi.Walk(func(n *xmltree.Node) bool {
		if n.Tag == label && n.Reg != nil {
			out.UnionWith(n.Reg)
		}
		return true
	})
	return out, nil
}

func (r *runner) checkBudget(extra int) error {
	if r.opts.MaxNodes <= 0 {
		return nil
	}
	if r.nodes.Add(int64(extra)) > int64(r.opts.MaxNodes) {
		return &ErrBudget{Limit: r.opts.MaxNodes}
	}
	return nil
}

// expand realizes the step relation ⇒ repeatedly below node n, whose
// (State, Tag, Reg) describe its current (q, a) labeling and register.
// ancestors maps ancKey → true for every proper ancestor configuration
// on the path from the root (the stop condition of Section 3).
func (r *runner) expand(n *xmltree.Node, ancestors map[string]bool, depth int) error {
	// Text nodes finalize immediately, carrying the string rendering of
	// their register.
	if n.Tag == xmltree.TextTag {
		n.Text = xmltree.TextOfRegister(n.Reg)
		n.State = ""
		return nil
	}

	// Stop condition (1): an ancestor repeats state, tag and register.
	key := ancKey(n.State, n.Tag, n.Reg)
	if ancestors[key] {
		r.stops.Add(1)
		n.State = ""
		return nil
	}

	rule, ok := r.t.Rule(n.State, n.Tag)
	if !ok || len(rule.Items) == 0 {
		// Empty right-hand side: finalize.
		n.State = ""
		return nil
	}

	env := r.base.WithRelation(RegRel, n.Reg)
	type childSpec struct {
		state string
		tag   string
		reg   *relation.Relation
	}
	var specs []childSpec
	for _, it := range rule.Items {
		r.queries.Add(1)
		result, err := eval.EvalQuery(it.Query, env)
		if err != nil {
			return fmt.Errorf("pt %s: rule (%s,%s) item (%s,%s): %v",
				r.t.Name, rule.State, rule.Tag, it.State, it.Tag, err)
		}
		for _, g := range groupByPrefix(result, len(it.Query.GroupVars)) {
			specs = append(specs, childSpec{state: it.State, tag: it.Tag, reg: g})
		}
	}

	if len(specs) == 0 {
		// All forests empty: finalize.
		n.State = ""
		return nil
	}
	if err := r.checkBudget(len(specs)); err != nil {
		return err
	}

	n.Children = make([]*xmltree.Node, len(specs))
	for i, s := range specs {
		n.Children[i] = &xmltree.Node{Tag: s.tag, State: s.state, Reg: s.reg}
	}
	n.State = ""

	childAnc := ancestors
	// Extend the ancestor set with this node's configuration. Copy-on-
	// write keeps sibling subtrees independent (needed for parallelism).
	childAnc = make(map[string]bool, len(ancestors)+1)
	for k := range ancestors {
		childAnc[k] = true
	}
	childAnc[key] = true

	if r.sem == nil || len(n.Children) < 2 {
		for _, c := range n.Children {
			if err := r.expand(c, childAnc, depth+1); err != nil {
				return err
			}
		}
		return nil
	}

	// Parallel expansion of independent subtrees.
	errs := make([]error, len(n.Children))
	var wg sync.WaitGroup
	for i, c := range n.Children {
		select {
		case r.sem <- struct{}{}:
			wg.Add(1)
			go func(i int, c *xmltree.Node) {
				defer wg.Done()
				defer func() { <-r.sem }()
				errs[i] = r.expand(c, childAnc, depth+1)
			}(i, c)
		default:
			errs[i] = r.expand(c, childAnc, depth+1)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// groupByPrefix splits a query result (columns x̄·ȳ) into the groups
// S_1,…,S_m of the paper: one group per distinct x̄-prefix d̄, each
// holding {d̄}×{ē | φ(d̄,ē)}, ordered by d̄ in the domain order.
//
// With k = 0 (|x̄| = 0) the whole nonempty result is a single group;
// with k = arity (|ȳ| = 0) every group is a singleton tuple.
func groupByPrefix(result *relation.Relation, k int) []*relation.Relation {
	if result.Empty() {
		return nil
	}
	if k == 0 {
		return []*relation.Relation{result}
	}
	type group struct {
		prefix value.Tuple
		rel    *relation.Relation
	}
	byKey := make(map[string]*group)
	var order []*group
	result.Each(func(t value.Tuple) bool {
		p := t[:k]
		gk := value.Tuple(p).Key()
		g, ok := byKey[gk]
		if !ok {
			g = &group{prefix: value.Tuple(p).Clone(), rel: relation.New(result.Arity())}
			byKey[gk] = g
			order = append(order, g)
		}
		g.rel.Add(t)
		return true
	})
	// Order groups by the domain order on prefixes. Each iterates in the
	// canonical sorted tuple order, so groups already appear in prefix
	// order, but sort defensively.
	sort.Slice(order, func(i, j int) bool {
		return value.CompareTuples(order[i].prefix, order[j].prefix) < 0
	})
	out := make([]*relation.Relation, len(order))
	for i, g := range order {
		out[i] = g.rel
	}
	return out
}
