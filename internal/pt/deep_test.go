package pt

import (
	"errors"
	"strconv"
	"strings"
	"testing"

	"ptx/internal/logic"
	"ptx/internal/relation"
	"ptx/internal/xmltree"
)

// chainTransducerN builds a transducer whose output on {R1(v)} is a
// chain of n "a" nodes under the root: n distinct states over a single
// reused tag, so the per-level work is O(1) and the only thing that
// grows is depth. This is the deep regime of Proposition 1(4) distilled:
// the recursive expansion used to need one Go stack frame and one full
// ancestor-set copy per level.
func chainTransducerN(n int) *Transducer {
	tr := New("chain"+strconv.Itoa(n), unarySchema(), "q0", "r")
	tr.DeclareTag("a", 1)
	root := logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))
	step := logic.MustQuery([]logic.Var{x}, nil, logic.R(RegRel, x))
	tr.AddRule("q0", "r", Item("q1", "a", root))
	for i := 1; i < n; i++ {
		tr.AddRule("q"+strconv.Itoa(i), "a", Item("q"+strconv.Itoa(i+1), "a", step))
	}
	// q_n has no rule for "a": the chain finalizes as a leaf.
	return tr
}

func chainInstance() *relation.Instance {
	inst := relation.NewInstance(unarySchema())
	inst.Add("R1", "v")
	return inst
}

// TestDeepChainMillion: a depth-10^6 chain must expand, serialize and
// round-trip without stack overflow or quadratic ancestor copying.
func TestDeepChainMillion(t *testing.T) {
	n := 1_000_000
	if raceEnabled {
		n = 50_000 // the detector is ~10× slower; full depth adds nothing here
	}
	tr := chainTransducerN(n)
	inst := chainInstance()

	res, err := tr.Run(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxDepth != n+1 {
		t.Fatalf("MaxDepth = %d, want %d", res.Stats.MaxDepth, n+1)
	}
	if res.Stats.Nodes != n+1 {
		t.Fatalf("Nodes = %d, want %d", res.Stats.Nodes, n+1)
	}

	out := res.Xi.Publish(tr.Virtual)
	if d := out.Depth(); d != n+1 {
		t.Fatalf("output depth = %d, want %d", d, n+1)
	}
	canon := out.Canonical()
	if !strings.HasPrefix(canon, "r(a(a(") || !strings.HasSuffix(canon, ")))") {
		t.Fatalf("canonical shape wrong: %.20s…%s", canon, canon[len(canon)-4:])
	}
}

// TestDeepChainCacheModesAgree: the deep regime must be byte-identical
// and stats-identical across all cache modes, including subtree sharing
// (whose dependency sets overflow on a long chain and must degrade
// gracefully to "don't cache", never to wrong output).
func TestDeepChainCacheModesAgree(t *testing.T) {
	n := 100_000
	if raceEnabled {
		n = 20_000
	}
	tr := chainTransducerN(n)
	inst := chainInstance()

	type outcome struct {
		canon string
		nodes int
		depth int
	}
	var base *outcome
	for _, mode := range []CacheMode{CacheOff, CacheQueries, CacheSubtrees} {
		res, err := tr.Run(inst, Options{Cache: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Stats.CacheMode != mode {
			t.Fatalf("effective mode = %v, want %v", res.Stats.CacheMode, mode)
		}
		rel, err := tr.OutputRelation(inst, "a", Options{Cache: mode})
		if err != nil {
			t.Fatalf("%v: OutputRelation: %v", mode, err)
		}
		if rel.Len() != 1 {
			t.Fatalf("%v: output relation size = %d, want 1", mode, rel.Len())
		}
		o := &outcome{
			canon: res.Xi.Publish(tr.Virtual).Canonical(),
			nodes: res.Stats.Nodes,
			depth: res.Stats.MaxDepth,
		}
		if base == nil {
			base = o
			continue
		}
		if o.canon != base.canon {
			t.Errorf("%v: canonical output differs from CacheOff", mode)
		}
		if o.nodes != base.nodes || o.depth != base.depth {
			t.Errorf("%v: stats (%d,%d) differ from CacheOff (%d,%d)",
				mode, o.nodes, o.depth, base.nodes, base.depth)
		}
	}
}

// TestGroupArityValidate: a rule item whose grouping prefix is wider
// than the declared tag arity must be rejected by Validate with the
// typed *GroupArityError — it used to survive validation and panic on
// t[:k] during grouping.
func TestGroupArityValidate(t *testing.T) {
	sch := relation.NewSchema().MustDeclare("R2", 2)
	y := logic.Var("y")
	tr := New("badgroup", sch, "q0", "r")
	tr.DeclareTag("a", 1)
	// Two group variables against Θ(a)=1.
	q := logic.MustQuery([]logic.Var{x, y}, nil, logic.R("R2", x, y))
	tr.AddRule("q0", "r", Item("q", "a", q))

	err := tr.Validate()
	if err == nil {
		t.Fatal("Validate accepted |x̄| > Θ(tag)")
	}
	var ge *GroupArityError
	if !errors.As(err, &ge) {
		t.Fatalf("error %v is not a *GroupArityError", err)
	}
	if ge.GroupVars != 2 || ge.Arity != 1 {
		t.Fatalf("GroupArityError = %+v, want {2 1}", ge)
	}

	// The run path surfaces the same validation error instead of
	// panicking mid-expansion.
	inst := relation.NewInstance(sch)
	inst.Add("R2", "u", "v")
	if _, runErr := tr.Run(inst, Options{}); !errors.As(runErr, &ge) {
		t.Fatalf("Run error %v is not a *GroupArityError", runErr)
	}
}

// TestGroupByPrefixArityGuard: the runtime defense in groupByPrefix
// itself — a mis-sized result relation (as a corrupted cache could
// produce) yields the typed error, not a slice-bounds panic.
func TestGroupByPrefixArityGuard(t *testing.T) {
	rel := relation.New(1)
	rel.Add(xmltree.RegisterOfSingle("v").Tuples()[0])
	if _, err := groupByPrefix(rel, 1); err != nil {
		t.Fatalf("k == arity must group: %v", err)
	}
	_, err := groupByPrefix(rel, 2)
	var ge *GroupArityError
	if !errors.As(err, &ge) {
		t.Fatalf("error %v is not a *GroupArityError", err)
	}
	if ge.GroupVars != 2 || ge.Arity != 1 {
		t.Fatalf("GroupArityError = %+v, want {2 1}", ge)
	}
}
