package pt

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ptx/internal/lru"
	"ptx/internal/xmltree"
)

// CacheMode selects the memoization level of a run. A publishing
// transducer is deterministic — the children emitted at a node are a
// function of only (state, tag, register) over a fixed database
// (Proposition 1) — so identical configurations always produce identical
// rule-query results, and the relation-store families of Proposition 1
// revisit the same configuration at exponentially many nodes.
type CacheMode int

const (
	// CacheOff evaluates every rule query at every node (the zero value;
	// the historical behavior).
	CacheOff CacheMode = iota
	// CacheQueries memoizes rule-query results on (query, register
	// fingerprint): each distinct configuration evaluates its queries
	// once, but the tree is still physically expanded node by node.
	CacheQueries
	// CacheSubtrees additionally shares whole expanded subtrees between
	// nodes with identical (state, tag, register) configurations whose
	// ancestor stop-condition dependencies agree; the resulting ξ is a
	// DAG whose unfolding is the tree a cache-off run would build.
	// Downgraded to CacheQueries when the run carries node/depth budgets
	// (sharing skips per-node budget accounting). Virtual tags are fine:
	// Output publishes a stripped/spliced copy and the streaming writers
	// splice at emission, so ξ is never mutated in place.
	CacheSubtrees
)

func (m CacheMode) String() string {
	switch m {
	case CacheOff:
		return "off"
	case CacheQueries:
		return "query"
	case CacheSubtrees:
		return "subtree"
	}
	return fmt.Sprintf("CacheMode(%d)", int(m))
}

// ParseCacheMode parses the CLI spelling of a cache mode.
func ParseCacheMode(s string) (CacheMode, error) {
	switch s {
	case "off":
		return CacheOff, nil
	case "query", "queries":
		return CacheQueries, nil
	case "subtree", "subtrees":
		return CacheSubtrees, nil
	}
	return CacheOff, fmt.Errorf("pt: unknown cache mode %q (want off, query or subtree)", s)
}

// DefaultCacheSize bounds each cache level (entries) when Options
// specifies none, keeping memory proportional to distinct
// configurations rather than tree size.
const DefaultCacheSize = 1 << 16

// maxSubtreeDeps caps the ancestor-dependency sets recorded per cached
// subtree. A subtree whose expansion touched more distinct
// configurations than this is too entangled with its path to be worth
// caching (validity checks would cost more than re-expansion saves), so
// it is simply not inserted.
const maxSubtreeDeps = 1 << 12

type configSet map[string]struct{}

// subdeps summarizes one or more expanded subtrees for the subtree
// cache: logical size/height/stop counts, plus the ancestor-set
// dependencies that make reuse sound.
//
// The stop condition makes a subtree a function of MORE than its root
// configuration: a descendant finalizes early iff its configuration
// occurs among its ancestors, including ancestors ABOVE the subtree
// root. So during expansion we record, for every descendant test that
// was resolved by the OUTER ancestor set (not by the path inside the
// subtree), whether it hit (stopped) or missed (kept expanding):
//
//   - hits: configurations found in the outer ancestor set;
//   - misses: configurations tested and absent from it.
//
// A cached subtree is reusable under another ancestor set A' iff
// hits ⊆ A' and misses ∩ A' = ∅ — then every stop-condition test inside
// the subtree resolves identically, and determinism (Proposition 1)
// gives an identical expansion. A nil *subdeps (cache mode below
// CacheSubtrees) makes every method a no-op.
type subdeps struct {
	size   int // logical nodes in the summarized subtrees
	height int // max height among them (a leaf has height 1)
	stops  int // stop-condition leaves among them
	hits   configSet
	misses configSet
	// overflow marks a summary whose dependency sets exceeded
	// maxSubtreeDeps; the sets are dropped and the subtree (and all its
	// ancestors) become uncacheable, but size/height/stops stay exact.
	overflow bool
}

func (d *subdeps) hit(key string) {
	if d == nil || d.overflow {
		return
	}
	if d.hits == nil {
		d.hits = make(configSet)
	}
	d.hits[key] = struct{}{}
	d.checkOverflow()
}

func (d *subdeps) miss(key string) {
	if d == nil || d.overflow {
		return
	}
	if d.misses == nil {
		d.misses = make(configSet)
	}
	d.misses[key] = struct{}{}
	d.checkOverflow()
}

func (d *subdeps) checkOverflow() {
	if len(d.hits)+len(d.misses) > maxSubtreeDeps {
		d.overflow = true
		d.hits, d.misses = nil, nil
	}
}

// addLeaf records a finalized leaf. key is the leaf's configuration key,
// or "" for text leaves (which never test the stop condition).
func (d *subdeps) addLeaf(key string) {
	if d == nil {
		return
	}
	d.size++
	if d.height < 1 {
		d.height = 1
	}
	if key != "" {
		d.miss(key)
	}
}

// addStop records a leaf finalized by the ancestor stop condition.
func (d *subdeps) addStop(key string) {
	if d == nil {
		return
	}
	d.size++
	if d.height < 1 {
		d.height = 1
	}
	d.stops++
	d.hit(key)
}

// addEntry records the reuse of a cached subtree (already validated
// against the current ancestor set).
func (d *subdeps) addEntry(e *subtreeEntry) {
	if d == nil {
		return
	}
	d.size += e.size
	if e.height > d.height {
		d.height = e.height
	}
	d.stops += e.stops
	d.mergeSets(e.hits, e.misses, false)
}

// merge folds a sibling summary into the accumulator.
func (d *subdeps) merge(o *subdeps) {
	if d == nil || o == nil {
		return
	}
	d.size += o.size
	if o.height > d.height {
		d.height = o.height
	}
	d.stops += o.stops
	d.mergeSets(o.hits, o.misses, o.overflow)
}

func (d *subdeps) mergeSets(hits, misses configSet, overflow bool) {
	if d.overflow {
		return
	}
	if overflow {
		d.overflow = true
		d.hits, d.misses = nil, nil
		return
	}
	for k := range hits {
		d.hit(k)
		if d.overflow {
			return
		}
	}
	for k := range misses {
		d.miss(k)
		if d.overflow {
			return
		}
	}
}

// promote turns the accumulated summary of a node's children into the
// summary of the node itself: the node adds one level and one logical
// node, its own configuration becomes an outer miss (the node kept
// expanding, so it was absent from its ancestors), and internal hits on
// the node's own key stop being outer dependencies.
func (d *subdeps) promote(key string) *subdeps {
	d.size++
	d.height++
	if !d.overflow {
		delete(d.hits, key)
		d.miss(key)
	}
	return d
}

// subtreeEntry is one cached fully-expanded subtree. All fields are
// immutable after insertion; children nodes are finalized and shared by
// reference into every reusing parent.
type subtreeEntry struct {
	children []*xmltree.Node
	size     int
	height   int
	stops    int
	hits     configSet
	misses   configSet
}

// valid reports whether the entry's recorded stop-condition
// dependencies resolve identically under the ancestor set anc.
func (e *subtreeEntry) valid(anc map[string]bool) bool {
	for h := range e.hits {
		if !anc[h] {
			return false
		}
	}
	for m := range e.misses {
		if anc[m] {
			return false
		}
	}
	return true
}

// subtreeCache is the concurrency-safe bounded LRU of expanded subtrees,
// keyed by configuration key (state, tag, register fingerprint). One
// entry per key; a branch whose ancestor set invalidates the stored
// entry recomputes and overwrites it.
type subtreeCache struct {
	mu  sync.Mutex
	lru *lru.Cache[*subtreeEntry]

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

func newSubtreeCache(capacity int) *subtreeCache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	c := &subtreeCache{}
	c.lru = lru.New[*subtreeEntry](capacity, func(string, *subtreeEntry) {
		c.evictions.Add(1)
	})
	return c
}

// lookup returns the cached subtree for key when present and valid under
// the given ancestor set.
func (c *subtreeCache) lookup(key string, anc map[string]bool) (*subtreeEntry, bool) {
	c.mu.Lock()
	e, ok := c.lru.Get(key)
	c.mu.Unlock()
	if ok && e.valid(anc) {
		c.hits.Add(1)
		return e, true
	}
	c.misses.Add(1)
	return nil, false
}

// insert stores a fully-expanded subtree. Callers must only insert
// subtrees whose expansion completed without error: a canceled,
// budget-exhausted or fault-injected expansion must never be cached.
func (c *subtreeCache) insert(key string, e *subtreeEntry) {
	c.mu.Lock()
	c.lru.Put(key, e)
	c.mu.Unlock()
}
