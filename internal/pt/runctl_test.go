// Run-control acceptance tests for the pt layer. These live in an
// external test package so they can drive the real divergent workloads
// from internal/families (which itself imports pt).
package pt_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"ptx/internal/families"
	"ptx/internal/pt"
	"ptx/internal/runctl"
	"ptx/internal/testutil"
)

// settledGoroutines is the shared leak assertion (internal/testutil),
// kept under its historical local name.
func settledGoroutines(t *testing.T, base int) {
	t.Helper()
	testutil.SettledGoroutines(t, base)
}

// TestParallelFaultStopsSiblings is the regression test for the
// sibling-waste bug: when one parallel worker fails, its siblings must
// abandon their subtrees instead of expanding them to completion. The
// fault plan fails the 10th query of a run whose full expansion needs
// thousands; the observed query count after the failed run tells us how
// much work the siblings still did.
func TestParallelFaultStopsSiblings(t *testing.T) {
	tr := families.UnfoldTransducer()
	inst := families.DiamondChain(10) // ≥ 2^10 leaves when fully unfolded

	full, err := tr.Run(inst, pt.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	total := int64(full.Stats.QueriesRun)
	if total < 1000 {
		t.Fatalf("workload too small to be meaningful: %d queries", total)
	}

	boom := errors.New("injected query fault")
	plan := &runctl.FaultPlan{Op: runctl.OpQuery, N: 10, Err: boom}
	_, err = tr.Run(inst, pt.Options{Workers: 4, Faults: plan})
	if !errors.Is(err, boom) {
		t.Fatalf("faulted run: got %v, want the injected fault as root cause", err)
	}
	// Workers in flight when the fault fires may each finish the query
	// they already started, but nobody should begin fresh subtrees: the
	// post-fault tally must stay a small fraction of the full run.
	if got := plan.Observed(); got > total/4 {
		t.Errorf("siblings kept working after fault: %d of %d queries ran", got, total)
	}
}

// TestParallelFaultNoGoroutineLeak hammers the parallel expander with
// injected faults at varying positions and checks every worker exits.
func TestParallelFaultNoGoroutineLeak(t *testing.T) {
	tr := families.UnfoldTransducer()
	inst := families.DiamondChain(8)
	base := runtime.NumGoroutine()
	for n := int64(1); n <= 40; n += 3 {
		boom := fmt.Errorf("fault at query %d", n)
		plan := &runctl.FaultPlan{Op: runctl.OpQuery, N: n, Err: boom}
		_, err := tr.Run(inst, pt.Options{Workers: 8, Faults: plan})
		if !errors.Is(err, boom) {
			t.Fatalf("N=%d: got %v, want injected fault", n, err)
		}
	}
	settledGoroutines(t, base)
}

func TestMaxDepthBudget(t *testing.T) {
	tr := families.UnfoldTransducer()
	inst := families.DiamondChain(12)
	base := runtime.NumGoroutine()
	_, err := tr.Run(inst, pt.Options{MaxDepth: 5})
	var be *runctl.ErrBudget
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want *runctl.ErrBudget", err)
	}
	if be.Kind != runctl.BudgetDepth || be.Limit != 5 {
		t.Fatalf("budget kind/limit = %s/%d, want %s/5", be.Kind, be.Limit, runctl.BudgetDepth)
	}
	if be.Observed <= be.Limit {
		t.Fatalf("ErrBudget.Observed = %d, want > limit %d", be.Observed, be.Limit)
	}
	settledGoroutines(t, base)
}

// TestDeadlineAcceptance is the ISSUE acceptance criterion: the
// doubly-exponential counter transducer of Proposition 1(4), run in
// parallel under a 100ms deadline, must come back with a typed
// cancellation within ~2× the deadline and leak nothing.
func TestDeadlineAcceptance(t *testing.T) {
	tr := families.CounterTransducer()
	inst := families.CounterInstance(6) // would need 2^64 nodes to finish
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := tr.RunContext(ctx, inst, pt.Options{Workers: 4})
	elapsed := time.Since(start)

	var ce *runctl.ErrCanceled
	if !errors.As(err, &ce) {
		t.Fatalf("divergent run under deadline: got %v, want *runctl.ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cause should unwrap to DeadlineExceeded, got %v", err)
	}
	// ~2× the deadline, with slack for slow CI machines.
	if elapsed > 400*time.Millisecond {
		t.Errorf("run took %v after a 100ms deadline", elapsed)
	}
	settledGoroutines(t, base)
}

// TestTimeoutViaLimits exercises the same deadline through
// Options.Limits instead of an explicit context.
func TestTimeoutViaLimits(t *testing.T) {
	tr := families.CounterTransducer()
	inst := families.CounterInstance(6)
	base := runtime.NumGoroutine()
	start := time.Now()
	_, err := tr.Run(inst, pt.Options{
		Workers: 2,
		Limits:  &runctl.Limits{Timeout: 100 * time.Millisecond},
	})
	elapsed := time.Since(start)
	var ce *runctl.ErrCanceled
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *runctl.ErrCanceled", err)
	}
	if elapsed > 400*time.Millisecond {
		t.Errorf("run took %v after a 100ms Limits.Timeout", elapsed)
	}
	settledGoroutines(t, base)
}

// TestSequentialFaultTyped checks fault injection works without the
// parallel machinery too (Workers=1 path).
func TestSequentialFaultTyped(t *testing.T) {
	tr := families.UnfoldTransducer()
	inst := families.DiamondChain(6)
	base := runtime.NumGoroutine()
	boom := errors.New("sequential fault")
	plan := &runctl.FaultPlan{Op: runctl.OpQuery, N: 5, Err: boom}
	_, err := tr.Run(inst, pt.Options{Faults: plan})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want injected fault", err)
	}
	if got := plan.ObservedOp(runctl.OpQuery); got != 5 {
		t.Errorf("ObservedOp(query) = %d, want 5 (fault fires on the 5th)", got)
	}
	settledGoroutines(t, base)
}
