// Package pt implements publishing transducers (Definition 3.1 of the
// paper): deterministic top-down machines that generate an XML tree from
// a relational database by evaluating relational queries embedded in
// transition rules.
//
// A transducer τ = (Q, Σ, Θ, q0, δ[, Σe]) is parameterized by
//
//   - the logic L of its embedded queries (CQ, FO, IFP),
//   - the store S of its registers (tuple vs relation), and
//   - the output discipline O (normal vs virtual nodes),
//
// which together place it in a class PT(L, S, O); the nonrecursive
// subclass PTnr(L, S, O) has an acyclic dependency graph. Classify
// computes the smallest class containing a transducer.
//
// Inside rule queries, the atom "Reg" refers to the register of the node
// being expanded (the paper's Reg_a for the node's tag a).
package pt

import (
	"fmt"
	"sort"
	"strings"

	"ptx/internal/logic"
	"ptx/internal/relation"
	"ptx/internal/xmltree"
)

// RegRel is the reserved relation name that resolves to the current
// node's register inside rule queries.
const RegRel = "Reg"

// RHS is one item (q_i, a_i, φ_i(x̄;ȳ)) on the right-hand side of a
// transduction rule.
type RHS struct {
	State string
	Tag   string
	Query *logic.Query
}

// Rule is the unique transduction rule for a (state, tag) pair.
type Rule struct {
	State string
	Tag   string
	Items []RHS
}

type ruleKey struct{ state, tag string }

// Transducer is a publishing transducer over a relational schema.
type Transducer struct {
	Name    string
	Schema  *relation.Schema
	Start   string          // q0
	RootTag string          // r
	Arities map[string]int  // Θ: tag → register arity (Θ(r)=0)
	Virtual map[string]bool // Σe: virtual tags (never the root)

	rules map[ruleKey]*Rule
	tags  []string
}

// New returns an empty transducer skeleton for schema, with start state
// q0 and root tag r. Θ(r) is fixed at 0.
func New(name string, schema *relation.Schema, start, rootTag string) *Transducer {
	t := &Transducer{
		Name:    name,
		Schema:  schema,
		Start:   start,
		RootTag: rootTag,
		Arities: map[string]int{rootTag: 0},
		Virtual: make(map[string]bool),
		rules:   make(map[ruleKey]*Rule),
	}
	t.tags = []string{rootTag}
	return t
}

// DeclareTag records the register arity Θ(tag). Redeclaring with a
// different arity panics (Θ is a function).
func (t *Transducer) DeclareTag(tag string, arity int) *Transducer {
	if a, ok := t.Arities[tag]; ok {
		if a != arity {
			panic(fmt.Sprintf("pt: tag %q redeclared with arity %d (was %d)", tag, arity, a))
		}
		return t
	}
	t.Arities[tag] = arity
	t.tags = append(t.tags, tag)
	sort.Strings(t.tags)
	return t
}

// MarkVirtual designates tags as virtual (members of Σe). The root tag
// may not be virtual.
func (t *Transducer) MarkVirtual(tags ...string) *Transducer {
	for _, tag := range tags {
		if tag == t.RootTag {
			panic("pt: root tag cannot be virtual")
		}
		t.Virtual[tag] = true
	}
	return t
}

// AddRule installs the unique rule for (state, tag); duplicate
// installation panics (δ is a function).
func (t *Transducer) AddRule(state, tag string, items ...RHS) *Transducer {
	k := ruleKey{state, tag}
	if _, ok := t.rules[k]; ok {
		panic(fmt.Sprintf("pt: duplicate rule for (%s,%s)", state, tag))
	}
	t.rules[k] = &Rule{State: state, Tag: tag, Items: items}
	return t
}

// Rule returns the rule for (state, tag). A missing rule is interpreted
// as a rule with an empty right-hand side (the node finalizes).
func (t *Transducer) Rule(state, tag string) (*Rule, bool) {
	r, ok := t.rules[ruleKey{state, tag}]
	return r, ok
}

// Rules returns all rules sorted by (state, tag) for deterministic
// iteration.
func (t *Transducer) Rules() []*Rule {
	keys := make([]ruleKey, 0, len(t.rules))
	for k := range t.rules {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].state != keys[j].state {
			return keys[i].state < keys[j].state
		}
		return keys[i].tag < keys[j].tag
	})
	out := make([]*Rule, len(keys))
	for i, k := range keys {
		out[i] = t.rules[k]
	}
	return out
}

// Tags returns the declared alphabet Σ, sorted.
func (t *Transducer) Tags() []string {
	out := make([]string, len(t.tags))
	copy(out, t.tags)
	return out
}

// Arity returns Θ(tag); undeclared tags have arity 0 only if they never
// appear — asking for one is a bug, so it panics.
func (t *Transducer) Arity(tag string) int {
	a, ok := t.Arities[tag]
	if !ok {
		panic(fmt.Sprintf("pt: tag %q has no declared arity", tag))
	}
	return a
}

// Item builds an RHS entry.
func Item(state, tag string, q *logic.Query) RHS {
	return RHS{State: state, Tag: tag, Query: q}
}

// GroupArityError reports a rule item whose grouping prefix x̄ is wider
// than the tuples it groups: slicing a result tuple to the first |x̄|
// columns would run past its end. Validate returns it (wrapped with the
// rule's coordinates) for such rules, so no transducer that validates
// can reach the former slice-bounds panic in grouping; groupByPrefix
// returns the same error at run time as a defense against mis-sized
// results from a corrupted cache or evaluator.
type GroupArityError struct {
	GroupVars int // |x̄|, the grouping prefix width
	Arity     int // width of the tuples being grouped
}

func (e *GroupArityError) Error() string {
	return fmt.Sprintf("grouping prefix |x̄|=%d exceeds tuple arity %d", e.GroupVars, e.Arity)
}

// Validate checks the structural requirements of Definition 3.1:
//
//   - a start rule for (q0, r) exists, and no other rule uses q0 or r;
//   - Θ(r) = 0 and every tag on a right-hand side has a declared arity
//     equal to its query's head width |x̄|+|ȳ|;
//   - text rules have empty right-hand sides, and no rule spawns
//     children under a text tag via a nonempty rule;
//   - every relation mentioned by a query is in the schema or is Reg;
//   - virtual tags exclude the root.
//
// The paper's simplifying assumption that tags within one rule are
// pairwise distinct is NOT enforced: several of the paper's own
// reduction constructions (e.g. the 2RM equivalence reduction of
// Theorem 1(3)) spawn the same tag from multiple items. Transducers
// with duplicate tags run fine; the static analyses that rely on
// distinctness (membership, equivalence) detect them via
// HasDuplicateTags and refuse.
func (t *Transducer) Validate() error {
	if _, ok := t.rules[ruleKey{t.Start, t.RootTag}]; !ok {
		return fmt.Errorf("pt %s: missing start rule (%s,%s)", t.Name, t.Start, t.RootTag)
	}
	if a := t.Arities[t.RootTag]; a != 0 {
		return fmt.Errorf("pt %s: Θ(%s) = %d, must be 0", t.Name, t.RootTag, a)
	}
	if t.Virtual[t.RootTag] {
		return fmt.Errorf("pt %s: root tag %q is virtual", t.Name, t.RootTag)
	}
	for k, r := range t.rules {
		if k.tag == t.RootTag && k.state != t.Start {
			return fmt.Errorf("pt %s: rule (%s,%s) uses root tag with non-start state", t.Name, k.state, k.tag)
		}
		if k.state == t.Start && k.tag != t.RootTag {
			return fmt.Errorf("pt %s: rule (%s,%s) reuses start state", t.Name, k.state, k.tag)
		}
		if k.tag == xmltree.TextTag && len(r.Items) != 0 {
			return fmt.Errorf("pt %s: text rule (%s,text) must have empty rhs", t.Name, k.state)
		}
		for _, it := range r.Items {
			if it.Tag == t.RootTag {
				return fmt.Errorf("pt %s: rule (%s,%s) spawns the root tag", t.Name, k.state, k.tag)
			}
			if it.State == t.Start {
				return fmt.Errorf("pt %s: rule (%s,%s) spawns the start state", t.Name, k.state, k.tag)
			}
			a, ok := t.Arities[it.Tag]
			if !ok {
				return fmt.Errorf("pt %s: rule (%s,%s) spawns undeclared tag %q", t.Name, k.state, k.tag, it.Tag)
			}
			if it.Query == nil {
				return fmt.Errorf("pt %s: rule (%s,%s) item (%s,%s) has no query", t.Name, k.state, k.tag, it.State, it.Tag)
			}
			if err := it.Query.Validate(); err != nil {
				return fmt.Errorf("pt %s: rule (%s,%s): %v", t.Name, k.state, k.tag, err)
			}
			if g := len(it.Query.GroupVars); g > a {
				return fmt.Errorf("pt %s: rule (%s,%s) item %q: %w",
					t.Name, k.state, k.tag, it.Tag, &GroupArityError{GroupVars: g, Arity: a})
			}
			if it.Query.Arity() != a {
				return fmt.Errorf("pt %s: rule (%s,%s) item %q: query arity %d ≠ Θ(%s)=%d",
					t.Name, k.state, k.tag, it.Tag, it.Query.Arity(), it.Tag, a)
			}
			for _, rel := range logic.Relations(it.Query.F) {
				if rel == RegRel {
					continue
				}
				if _, ok := t.Schema.Arity(rel); !ok {
					return fmt.Errorf("pt %s: rule (%s,%s) item %q references unknown relation %q",
						t.Name, k.state, k.tag, it.Tag, rel)
				}
			}
		}
	}
	return nil
}

// String gives a compact multi-line rendering of the transducer.
func (t *Transducer) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "transducer %s (start %s, root %s)\n", t.Name, t.Start, t.RootTag)
	for _, r := range t.Rules() {
		fmt.Fprintf(&sb, "  (%s,%s) ->", r.State, r.Tag)
		if len(r.Items) == 0 {
			sb.WriteString(" .")
		}
		for i, it := range r.Items {
			if i > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, " (%s,%s, %s)", it.State, it.Tag, it.Query)
		}
		sb.WriteByte('\n')
	}
	if len(t.Virtual) > 0 {
		tags := make([]string, 0, len(t.Virtual))
		for v := range t.Virtual {
			tags = append(tags, v)
		}
		sort.Strings(tags)
		fmt.Fprintf(&sb, "  virtual: %s\n", strings.Join(tags, ","))
	}
	return sb.String()
}

// HasDuplicateTags reports whether some rule spawns the same tag from
// two different items — allowed at runtime but outside the fragment the
// membership and equivalence analyses support.
func (t *Transducer) HasDuplicateTags() bool {
	for _, r := range t.Rules() {
		seen := make(map[string]bool, len(r.Items))
		for _, it := range r.Items {
			if seen[it.Tag] {
				return true
			}
			seen[it.Tag] = true
		}
	}
	return false
}
