// Stepwise-runner tests: the explicit-frontier StepRun must agree with
// the recursive expander byte-for-byte, and its checkpoint invariant —
// (tree, frontier) fully describes the remaining work at every step —
// must survive interruption at arbitrary cut points.
package pt_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"ptx/internal/families"
	"ptx/internal/pt"
	"ptx/internal/registrar"
	"ptx/internal/relation"
	"ptx/internal/runctl"
	"ptx/internal/xmltree"
)

// stepWorkloads covers tuple- and relation-store transducers, recursive
// and not, including the Proposition 1 blowup families.
func stepWorkloads() map[string]struct {
	tr   *pt.Transducer
	inst *relation.Instance
} {
	pc := relation.NewInstance(families.PathCountSchema())
	pc.Add("S", "s")
	pc.Add("T", "t")
	pc.Add("R", "s", "m1")
	pc.Add("R", "s", "m2")
	pc.Add("R", "m1", "t")
	pc.Add("R", "m2", "t")
	return map[string]struct {
		tr   *pt.Transducer
		inst *relation.Instance
	}{
		"tau1/sample":   {registrar.Tau1(), registrar.SampleInstance()},
		"tau3/sample":   {registrar.Tau3(), registrar.SampleInstance()},
		"unfold/d6":     {families.UnfoldTransducer(), families.DiamondChain(6)},
		"counter/n2":    {families.CounterTransducer(), families.CounterInstance(2)},
		"pathcount/d4":  {families.PathCountTransducer(), pc},
		"tau1/chain-12": {registrar.Tau1(), registrar.ChainInstance(12)},
	}
}

func canonicalOf(t *testing.T, tr *pt.Transducer, res *pt.Result) string {
	t.Helper()
	var sb strings.Builder
	if err := res.Xi.WriteCanonicalVirtual(&sb, tr.Virtual); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return sb.String()
}

func TestStepRunMatchesRun(t *testing.T) {
	for name, w := range stepWorkloads() {
		t.Run(name, func(t *testing.T) {
			golden, err := w.tr.Run(w.inst, pt.Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := canonicalOf(t, w.tr, golden)
			for _, cache := range []pt.CacheMode{pt.CacheOff, pt.CacheQueries, pt.CacheSubtrees} {
				sr, err := w.tr.NewStepRun(context.Background(), w.inst, pt.Options{Cache: cache})
				if err != nil {
					t.Fatal(err)
				}
				res, err := sr.Run()
				sr.Close()
				if err != nil {
					t.Fatalf("cache=%v: %v", cache, err)
				}
				if got := canonicalOf(t, w.tr, res); got != want {
					t.Errorf("cache=%v: stepwise output differs from Run", cache)
				}
				if res.Stats.Nodes != golden.Stats.Nodes ||
					res.Stats.MaxDepth != golden.Stats.MaxDepth ||
					res.Stats.StopsApplied != golden.Stats.StopsApplied {
					t.Errorf("cache=%v: stats diverged: step %+v vs run %+v", cache, res.Stats, golden.Stats)
				}
				// Stepwise caps at the query cache: subtree mode must
				// report the effective (downgraded) mode.
				if cache == pt.CacheSubtrees && res.Stats.CacheMode != pt.CacheQueries {
					t.Errorf("subtree mode not capped: %v", res.Stats.CacheMode)
				}
			}
		})
	}
}

// TestStepRunResumeSweep is the differential resume invariant at the pt
// layer: interrupting after k steps and restoring from the captured
// frontier yields the identical canonical bytes for EVERY cut point k.
func TestStepRunResumeSweep(t *testing.T) {
	for name, w := range stepWorkloads() {
		t.Run(name, func(t *testing.T) {
			golden, err := w.tr.Run(w.inst, pt.Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := canonicalOf(t, w.tr, golden)

			count, err := w.tr.NewStepRun(context.Background(), w.inst, pt.Options{})
			if err != nil {
				t.Fatal(err)
			}
			full, err := count.Run()
			count.Close()
			if err != nil {
				t.Fatal(err)
			}
			total := int(count.Ops())
			if got := canonicalOf(t, w.tr, full); got != want {
				t.Fatal("uninterrupted stepwise run differs from Run")
			}

			cuts := sweep(total, 24)
			for _, k := range cuts {
				sr, err := w.tr.NewStepRun(context.Background(), w.inst, pt.Options{Cache: pt.CacheQueries})
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < k; i++ {
					if _, err := sr.Step(); err != nil {
						t.Fatalf("k=%d step %d: %v", k, i, err)
					}
				}
				// Capture through a sharing-preserving deep copy, the way a
				// real checkpoint would, so the restored run cannot alias
				// the interrupted one.
				tree, remap := sr.Tree().CloneShared()
				pending := sr.Pending()
				for i := range pending {
					pending[i].Node = remap[pending[i].Node]
				}
				prior := sr.StatsSoFar()
				sr.Close()

				rr, err := w.tr.RestoreStepRun(context.Background(), w.inst, pt.Options{}, tree.Root, pending, prior)
				if err != nil {
					t.Fatalf("k=%d restore: %v", k, err)
				}
				res, err := rr.Run()
				rr.Close()
				if err != nil {
					t.Fatalf("k=%d resume: %v", k, err)
				}
				if got := canonicalOf(t, w.tr, res); got != want {
					t.Errorf("k=%d/%d: resumed output differs from uninterrupted run", k, total)
				}
				if res.Stats.Nodes != golden.Stats.Nodes || res.Stats.MaxDepth != golden.Stats.MaxDepth {
					t.Errorf("k=%d: resumed stats %+v differ from %+v", k, res.Stats, golden.Stats)
				}
			}
		})
	}
}

// sweep returns every cut point when total is small, else ~limit evenly
// spaced ones always including 0, 1 and total-1.
func sweep(total, limit int) []int {
	if total <= limit {
		out := make([]int, total)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := []int{0, 1}
	stride := total / limit
	for k := stride; k < total-1; k += stride {
		out = append(out, k)
	}
	return append(out, total-1)
}

// TestStepAtomicity: a failed step must leave the frontier and tree
// exactly as they were, so the run is resumable from the failure point.
func TestStepAtomicity(t *testing.T) {
	tr := families.UnfoldTransducer()
	inst := families.DiamondChain(6)
	golden, err := tr.Run(inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalOf(t, tr, golden)

	boom := errors.New("injected")
	for _, n := range []int64{1, 3, 7, 20} {
		plan := &runctl.FaultPlan{Op: runctl.OpQuery, N: n, Err: boom}
		sr, err := tr.NewStepRun(context.Background(), inst, pt.Options{Faults: plan})
		if err != nil {
			t.Fatal(err)
		}
		var stepErr error
		for !sr.Done() {
			before := len(sr.Pending())
			if _, stepErr = sr.Step(); stepErr != nil {
				if after := len(sr.Pending()); after != before {
					t.Fatalf("N=%d: failed step changed frontier: %d -> %d", n, before, after)
				}
				break
			}
		}
		if !errors.Is(stepErr, boom) {
			t.Fatalf("N=%d: got %v, want injected fault", n, stepErr)
		}
		// Resume from the failure point with the fault plan removed: the
		// run must complete to the golden bytes.
		rr, err := tr.RestoreStepRun(context.Background(), inst, pt.Options{}, sr.Tree().Root, sr.Pending(), sr.StatsSoFar())
		sr.Close()
		if err != nil {
			t.Fatal(err)
		}
		res, err := rr.Run()
		rr.Close()
		if err != nil {
			t.Fatalf("N=%d resume: %v", n, err)
		}
		if got := canonicalOf(t, tr, res); got != want {
			t.Errorf("N=%d: resume after fault differs from golden", n)
		}
	}
}

// TestStepRunBudgetTyped: budgets surface as *runctl.ErrBudget with the
// observed count filled in.
func TestStepRunBudgetTyped(t *testing.T) {
	tr := families.UnfoldTransducer()
	inst := families.DiamondChain(8)
	sr, err := tr.NewStepRun(context.Background(), inst, pt.Options{MaxNodes: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	_, err = sr.Run()
	var be *runctl.ErrBudget
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want *runctl.ErrBudget", err)
	}
	if be.Kind != runctl.BudgetNodes || be.Observed <= be.Limit {
		t.Fatalf("budget = %+v, want nodes kind with observed > limit", be)
	}
	if !sr.Done() == false && len(sr.Pending()) == 0 {
		t.Fatal("budget failure must leave a resumable frontier")
	}
}

// TestRestoreValidation: malformed frontiers are rejected with typed
// messages instead of corrupting a run.
func TestRestoreValidation(t *testing.T) {
	tr := registrar.Tau1()
	inst := registrar.SampleInstance()
	sr, err := tr.NewStepRun(context.Background(), inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	root := sr.Tree().Root

	if _, err := tr.RestoreStepRun(context.Background(), inst, pt.Options{}, nil, nil, pt.Stats{}); err == nil {
		t.Error("nil root accepted")
	}
	if _, err := tr.RestoreStepRun(context.Background(), inst, pt.Options{}, root, []pt.PendingConfig{{Node: nil, Depth: 1}}, pt.Stats{}); err == nil {
		t.Error("nil pending node accepted")
	}
	if _, err := tr.RestoreStepRun(context.Background(), inst, pt.Options{}, root, []pt.PendingConfig{{Node: root, Depth: 0}}, pt.Stats{}); err == nil {
		t.Error("zero depth accepted")
	}
}

// TestStepRunObserver: every live node of the finished tree gets exactly
// one committed-step event carrying the state it had, and stop events
// are flagged. The observer is the bookkeeping channel incremental
// repair relies on, so completeness matters.
func TestStepRunObserver(t *testing.T) {
	for name, w := range stepWorkloads() {
		t.Run(name, func(t *testing.T) {
			sr, err := w.tr.NewStepRun(context.Background(), w.inst, pt.Options{Cache: pt.CacheQueries})
			if err != nil {
				t.Fatal(err)
			}
			defer sr.Close()
			events := make(map[interface{}]pt.StepEvent)
			stops := 0
			sr.Observe(func(ev pt.StepEvent) {
				if ev.State == "" {
					t.Fatalf("event for %s has empty state", ev.Node.Tag)
				}
				if _, dup := events[ev.Node]; dup {
					t.Fatalf("node %s observed twice", ev.Node.Tag)
				}
				events[ev.Node] = ev
				if ev.Stopped {
					stops++
				}
			})
			res, err := sr.Run()
			if err != nil {
				t.Fatal(err)
			}
			seen := 0
			var check func(n *xmltree.Node, depth int)
			check = func(n *xmltree.Node, depth int) {
				seen++
				ev, ok := events[n]
				if !ok {
					t.Fatalf("tree node %s has no event", n.Tag)
				}
				if ev.Depth != depth {
					t.Fatalf("node %s: event depth %d, walk depth %d", n.Tag, ev.Depth, depth)
				}
				for _, c := range n.Children {
					check(c, depth+1)
				}
			}
			check(res.Xi.Root, 1)
			if seen != len(events) {
				t.Fatalf("%d events for %d tree nodes", len(events), seen)
			}
			if stops != res.Stats.StopsApplied {
				t.Fatalf("observed %d stops, stats say %d", stops, res.Stats.StopsApplied)
			}
		})
	}
}
