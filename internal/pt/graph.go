package pt

import (
	"fmt"
	"sort"
)

// GraphNode identifies a node v(q,a) of the dependency graph Gτ.
type GraphNode struct {
	State string
	Tag   string
}

func (n GraphNode) String() string { return fmt.Sprintf("v(%s,%s)", n.State, n.Tag) }

// Graph is the dependency graph Gτ of a transducer: one node per
// (state, tag) pair occurring in the rules, with an edge v(q,a)→v(q',a')
// whenever (q',a') appears on the right-hand side of the rule for (q,a).
type Graph struct {
	Root  GraphNode
	nodes []GraphNode
	// edges[from] lists targets in the order they appear in the rule;
	// edgeIdx[from][i] is the rule-item index of the i-th edge.
	edges   map[GraphNode][]GraphNode
	edgeIdx map[GraphNode][]int
}

// DependencyGraph builds Gτ.
func (t *Transducer) DependencyGraph() *Graph {
	g := &Graph{
		Root:    GraphNode{State: t.Start, Tag: t.RootTag},
		edges:   make(map[GraphNode][]GraphNode),
		edgeIdx: make(map[GraphNode][]int),
	}
	seen := make(map[GraphNode]bool)
	addNode := func(n GraphNode) {
		if !seen[n] {
			seen[n] = true
			g.nodes = append(g.nodes, n)
		}
	}
	addNode(g.Root)
	for _, r := range t.Rules() {
		from := GraphNode{State: r.State, Tag: r.Tag}
		addNode(from)
		for i, it := range r.Items {
			to := GraphNode{State: it.State, Tag: it.Tag}
			addNode(to)
			g.edges[from] = append(g.edges[from], to)
			g.edgeIdx[from] = append(g.edgeIdx[from], i)
		}
	}
	sort.Slice(g.nodes, func(i, j int) bool {
		if g.nodes[i].State != g.nodes[j].State {
			return g.nodes[i].State < g.nodes[j].State
		}
		return g.nodes[i].Tag < g.nodes[j].Tag
	})
	return g
}

// Nodes returns all graph nodes in sorted order.
func (g *Graph) Nodes() []GraphNode {
	out := make([]GraphNode, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Succ returns the successors of n in rule order.
func (g *Graph) Succ(n GraphNode) []GraphNode {
	out := make([]GraphNode, len(g.edges[n]))
	copy(out, g.edges[n])
	return out
}

// SuccWithItems returns the successors of n paired with the rule-item
// index that spawns them.
func (g *Graph) SuccWithItems(n GraphNode) ([]GraphNode, []int) {
	return g.Succ(n), append([]int{}, g.edgeIdx[n]...)
}

// HasCycle reports whether Gτ contains a cycle, i.e. whether the
// transducer is recursive.
func (g *Graph) HasCycle() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[GraphNode]int, len(g.nodes))
	var visit func(n GraphNode) bool
	visit = func(n GraphNode) bool {
		color[n] = gray
		for _, m := range g.edges[n] {
			switch color[m] {
			case gray:
				return true
			case white:
				if visit(m) {
					return true
				}
			}
		}
		color[n] = black
		return false
	}
	for _, n := range g.nodes {
		if color[n] == white && visit(n) {
			return true
		}
	}
	return false
}

// Reachable returns the set of nodes reachable from the root.
func (g *Graph) Reachable() map[GraphNode]bool {
	seen := make(map[GraphNode]bool)
	stack := []GraphNode{g.Root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, g.edges[n]...)
	}
	return seen
}

// Path is a root-anchored walk through Gτ recorded as the sequence of
// nodes and, for each step, the rule-item index taken.
type Path struct {
	Nodes []GraphNode
	Items []int // Items[i] is the rule-item index of the edge Nodes[i]→Nodes[i+1]
}

// End returns the last node of the path.
func (p *Path) End() GraphNode { return p.Nodes[len(p.Nodes)-1] }

// SimplePaths enumerates all simple paths (no repeated node) from the
// root, calling visit for each; visit returning false stops the
// enumeration early. Every prefix is visited, starting with the
// root-only path.
func (g *Graph) SimplePaths(visit func(p *Path) bool) {
	onPath := map[GraphNode]bool{g.Root: true}
	cur := &Path{Nodes: []GraphNode{g.Root}}
	stop := false
	var rec func()
	rec = func() {
		if stop {
			return
		}
		if !visit(cur) {
			stop = true
			return
		}
		n := cur.End()
		succ := g.edges[n]
		idx := g.edgeIdx[n]
		for i, m := range succ {
			if onPath[m] {
				continue
			}
			onPath[m] = true
			cur.Nodes = append(cur.Nodes, m)
			cur.Items = append(cur.Items, idx[i])
			rec()
			cur.Nodes = cur.Nodes[:len(cur.Nodes)-1]
			cur.Items = cur.Items[:len(cur.Items)-1]
			onPath[m] = false
			if stop {
				return
			}
		}
	}
	rec()
}

// LongestPathLen returns the length (edge count) of the longest simple
// path from the root — the depth bound D used by the nonrecursive
// membership algorithm (Theorem 2(3)). For recursive transducers this is
// still well-defined (simple paths) but expensive; callers should check
// HasCycle first when cheapness matters.
func (g *Graph) LongestPathLen() int {
	best := 0
	g.SimplePaths(func(p *Path) bool {
		if l := len(p.Nodes) - 1; l > best {
			best = l
		}
		return true
	})
	return best
}

// TopoSort returns the reachable nodes in topological order; it fails if
// the graph is cyclic.
func (g *Graph) TopoSort() ([]GraphNode, error) {
	if g.HasCycle() {
		return nil, fmt.Errorf("pt: dependency graph is cyclic")
	}
	reach := g.Reachable()
	indeg := make(map[GraphNode]int)
	for n := range reach {
		indeg[n] += 0
		for _, m := range g.edges[n] {
			if reach[m] {
				indeg[m]++
			}
		}
	}
	var queue []GraphNode
	for _, n := range g.nodes {
		if reach[n] && indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	var out []GraphNode
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		for _, m := range g.edges[n] {
			if !reach[m] {
				continue
			}
			indeg[m]--
			if indeg[m] == 0 {
				queue = append(queue, m)
			}
		}
	}
	return out, nil
}

// IsRecursive reports whether the transducer's dependency graph has a
// cycle (Section 3).
func (t *Transducer) IsRecursive() bool {
	return t.DependencyGraph().HasCycle()
}
