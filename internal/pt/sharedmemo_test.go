// Shared-memo tests: Options.Memo lets concurrent and sequential runs
// over one (transducer, instance) pair reuse a single query memo. The
// invariants are the cache-equivalence ones — byte-identical output and
// identical logical statistics — plus the sharing actually paying off
// (the second run is all hits) and faulted runs not poisoning the table.
package pt_test

import (
	"strings"
	"sync"
	"testing"

	"ptx/internal/eval"
	"ptx/internal/families"
	"ptx/internal/pt"
	"ptx/internal/runctl"
)

// renderXi canonically serializes a run's raw tree.
func renderXi(t *testing.T, res *pt.Result, tr *pt.Transducer) string {
	t.Helper()
	var sb strings.Builder
	if err := res.Xi.WriteCanonicalVirtual(&sb, tr.Virtual); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return sb.String()
}

func TestSharedMemoSequential(t *testing.T) {
	tr := families.UnfoldTransducer()
	inst := families.DiamondChain(6)

	baseline, err := tr.Run(inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := renderXi(t, baseline, tr)

	memo := eval.NewMemo(0)
	first, err := tr.Run(inst, pt.Options{Cache: pt.CacheQueries, Memo: memo})
	if err != nil {
		t.Fatal(err)
	}
	if got := renderXi(t, first, tr); got != want {
		t.Fatal("first shared-memo run diverged from the cache-off baseline")
	}
	second, err := tr.Run(inst, pt.Options{Cache: pt.CacheQueries, Memo: memo})
	if err != nil {
		t.Fatal(err)
	}
	if got := renderXi(t, second, tr); got != want {
		t.Fatal("second shared-memo run diverged from the cache-off baseline")
	}
	if second.Stats.QueriesRun != 0 {
		t.Errorf("warm shared memo should answer every query: %d evaluated", second.Stats.QueriesRun)
	}
	if second.Stats.Nodes != baseline.Stats.Nodes || second.Stats.MaxDepth != baseline.Stats.MaxDepth {
		t.Errorf("logical stats drifted: %+v vs %+v", second.Stats, baseline.Stats)
	}
}

// TestSharedMemoConcurrent runs many goroutines against one memo, some
// of them fault-injected, and checks that every successful run matches
// the baseline bytes — i.e. failed evaluations never poisoned the
// shared table (the Memo contract) even under concurrency.
func TestSharedMemoConcurrent(t *testing.T) {
	tr := families.UnfoldTransducer()
	inst := families.DiamondChain(5)

	baseline, err := tr.Run(inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := renderXi(t, baseline, tr)

	memo := eval.NewMemo(0)
	const runs = 12
	outs := make([]string, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := pt.Options{Cache: pt.CacheQueries, Memo: memo, Workers: 1 + i%3}
			if i%3 == 0 {
				// Every third run fails its 2nd evaluated query; memo hits
				// skip the fault checkpoint, so late runs may see no fault
				// at all — both outcomes are fine, poisoning is not.
				opts.Faults = &runctl.FaultPlan{Op: runctl.OpQuery, N: 2,
					Err: runctl.Transient(errFault)}
			}
			res, err := tr.Run(inst, opts)
			if err != nil {
				errs[i] = err
				return
			}
			var sb strings.Builder
			if err := res.Xi.WriteCanonicalVirtual(&sb, tr.Virtual); err != nil {
				errs[i] = err
				return
			}
			outs[i] = sb.String()
		}(i)
	}
	wg.Wait()

	succeeded := 0
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			if !runctl.IsTransient(errs[i]) {
				t.Errorf("run %d: unexpected error class: %v", i, errs[i])
			}
			continue
		}
		succeeded++
		if outs[i] != want {
			t.Errorf("run %d: output diverged from baseline under the shared memo", i)
		}
	}
	if succeeded == 0 {
		t.Fatal("no run succeeded; the fixture is miscalibrated")
	}
}

var errFault = errShared("shared-memo injected fault")

type errShared string

func (e errShared) Error() string { return string(e) }
