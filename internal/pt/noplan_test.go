package pt

import (
	"testing"

	"ptx/internal/logic"
	"ptx/internal/relation"
)

// TestNoPlanEquivalence: the -plan=off escape hatch (Options.NoPlan)
// must produce byte-identical documents on a transducer whose rule
// queries exercise joins, filters and recursion.
func TestNoPlanEquivalence(t *testing.T) {
	s := relation.NewSchema().MustDeclare("E", 2)
	tr := New("t", s, "q0", "r")
	tr.DeclareTag("a", 2)
	tr.DeclareTag("b", 1)
	y, z, w := logic.Var("y"), logic.Var("z"), logic.Var("w")
	tc := &logic.Fixpoint{
		Rel:  "S",
		Vars: []logic.Var{x, y},
		Body: &logic.Or{
			L: logic.R("E", x, y),
			R: &logic.Exists{Bound: []logic.Var{w}, F: logic.Conj(logic.R("S", x, w), logic.R("E", w, y))},
		},
		Args: []logic.Term{x, y},
	}
	tr.AddRule("q0", "r",
		Item("q", "a", logic.MustQuery([]logic.Var{x}, []logic.Var{y}, tc)),
		Item("q2", "b", logic.MustQuery([]logic.Var{x}, nil,
			logic.Ex([]logic.Var{y, z},
				logic.Conj(logic.R("E", x, y), logic.R("E", y, z), logic.NeqT(x, z))))))
	tr.AddRule("q", "a")
	tr.AddRule("q2", "b")

	inst := relation.NewInstance(s)
	inst.Add("E", "1", "2")
	inst.Add("E", "2", "3")
	inst.Add("E", "3", "1")
	inst.Add("E", "3", "4")

	planned, err := tr.Output(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	interp, err := tr.Output(inst, Options{NoPlan: true})
	if err != nil {
		t.Fatal(err)
	}
	if p, i := planned.Canonical(), interp.Canonical(); p != i {
		t.Fatalf("NoPlan output differs:\nplan   %s\ninterp %s", p, i)
	}
}
