package pt

import (
	"strconv"
	"testing"

	"ptx/internal/logic"
	"ptx/internal/relation"
	"ptx/internal/runctl"
)

func TestParseCacheMode(t *testing.T) {
	cases := map[string]CacheMode{
		"off": CacheOff, "query": CacheQueries, "queries": CacheQueries,
		"subtree": CacheSubtrees, "subtrees": CacheSubtrees,
	}
	for in, want := range cases {
		got, err := ParseCacheMode(in)
		if err != nil || got != want {
			t.Errorf("ParseCacheMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseCacheMode("bogus"); err == nil {
		t.Error("bogus mode should fail")
	}
	if CacheOff.String() != "off" || CacheQueries.String() != "query" || CacheSubtrees.String() != "subtree" {
		t.Error("String() spellings drifted from the CLI contract")
	}
}

// TestSubtreeModeDowngrade: tree-shaped budgets must silently degrade
// subtree sharing to the query-level cache, and the effective mode must
// be visible in Stats. Virtual tags no longer downgrade: the output
// path splices them at emission instead of mutating ξ, so a shared ξ
// DAG is fine.
func TestSubtreeModeDowngrade(t *testing.T) {
	inst := relation.NewInstance(unarySchema())
	inst.Add("R1", "v")

	run := func(tr *Transducer, opts Options) CacheMode {
		t.Helper()
		opts.Cache = CacheSubtrees
		res, err := tr.Run(inst, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.CacheMode
	}

	if m := run(simple(), Options{}); m != CacheSubtrees {
		t.Errorf("no budgets, no virtual: mode = %v, want subtree", m)
	}
	if m := run(simple(), Options{MaxNodes: 10}); m != CacheQueries {
		t.Errorf("MaxNodes: mode = %v, want query", m)
	}
	if m := run(simple(), Options{MaxDepth: 10}); m != CacheQueries {
		t.Errorf("MaxDepth: mode = %v, want query", m)
	}
	if m := run(simple(), Options{Limits: &runctl.Limits{MaxNodes: 10}}); m != CacheQueries {
		t.Errorf("Limits.MaxNodes: mode = %v, want query", m)
	}

	virt := New("virt", unarySchema(), "q0", "r")
	virt.DeclareTag("v", 1)
	virt.MarkVirtual("v")
	virt.AddRule("q0", "r", Item("q", "v", logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))))
	if m := run(virt, Options{}); m != CacheSubtrees {
		t.Errorf("virtual tags: mode = %v, want subtree (downgrade lifted)", m)
	}
}

// TestQueryMemoSharesDuplicateItems: two rule items referencing the same
// query object against the same register must evaluate once under the
// query-level cache.
func TestQueryMemoSharesDuplicateItems(t *testing.T) {
	q := logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))
	tr := New("dup", unarySchema(), "q0", "r")
	tr.DeclareTag("a", 1).DeclareTag("b", 1)
	tr.AddRule("q0", "r", Item("qa", "a", q), Item("qb", "b", q))
	inst := relation.NewInstance(unarySchema())
	inst.Add("R1", "v")

	off, err := tr.Run(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	memo, err := tr.Run(inst, Options{Cache: CacheQueries})
	if err != nil {
		t.Fatal(err)
	}
	if off.Stats.QueriesRun != 2 || memo.Stats.QueriesRun != 1 {
		t.Errorf("queries: off=%d memo=%d, want 2 and 1", off.Stats.QueriesRun, memo.Stats.QueriesRun)
	}
	if memo.Stats.CacheHits != 1 || memo.Stats.CacheMisses != 1 {
		t.Errorf("memo stats = %+v, want 1 hit / 1 miss", memo.Stats)
	}
}

// TestChildrenOrderedByRegisterAcrossModes: sibling order is fixed by
// the domain order on group prefixes at grouping time, independent of
// the order-insensitive register fingerprints the caches key on.
func TestChildrenOrderedByRegisterAcrossModes(t *testing.T) {
	tr := simple()
	inst := relation.NewInstance(unarySchema())
	for _, v := range []string{"10", "2", "1"} {
		inst.Add("R1", v)
	}
	want := []string{"1", "2", "10"} // numeric order
	for _, mode := range []CacheMode{CacheOff, CacheQueries, CacheSubtrees} {
		res, err := tr.Run(inst, Options{Cache: mode})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range res.Xi.Root.Children {
			if got := string(c.Reg.Tuples()[0][0]); got != want[i] {
				t.Fatalf("cache=%v: child %d = %s, want %s", mode, i, got, want[i])
			}
		}
	}
}

// TestSubdepsPromoteAndValidity exercises the dependency algebra the
// subtree cache's soundness rests on.
func TestSubdepsPromoteAndValidity(t *testing.T) {
	// A node K whose children stopped on outer config H and probed M.
	cd := &subdeps{}
	cd.addStop("H")
	cd.addLeaf("M")
	mine := cd.promote("K")

	if mine.size != 3 || mine.height != 2 || mine.stops != 1 {
		t.Fatalf("summary = %+v", mine)
	}
	e := &subtreeEntry{hits: mine.hits, misses: mine.misses}
	if !e.valid(map[string]bool{"H": true}) {
		t.Error("H present, M/K absent: entry should be valid")
	}
	if e.valid(map[string]bool{}) {
		t.Error("missing hit H: entry must be invalid")
	}
	if e.valid(map[string]bool{"H": true, "M": true}) {
		t.Error("miss M present: entry must be invalid")
	}
	if e.valid(map[string]bool{"H": true, "K": true}) {
		t.Error("own key K present: entry must be invalid")
	}

	// Internal hits on the node's own key are dropped by promote: they
	// are resolved inside the subtree, not by the outer ancestor set.
	cd2 := &subdeps{}
	cd2.addStop("K2")
	mine2 := cd2.promote("K2")
	if _, ok := mine2.hits["K2"]; ok {
		t.Error("promote must drop internal hits on the node's own key")
	}
	if _, ok := mine2.misses["K2"]; !ok {
		t.Error("promote must record the node's own key as an outer miss")
	}
}

func TestSubdepsOverflowDisablesCaching(t *testing.T) {
	d := &subdeps{}
	for i := 0; i <= maxSubtreeDeps; i++ {
		d.miss("k" + strconv.Itoa(i))
	}
	if !d.overflow || d.hits != nil || d.misses != nil {
		t.Fatalf("overflow not triggered: %+v", d)
	}
	// Size bookkeeping survives overflow, and overflow is contagious
	// through merge.
	d.size = 7
	acc := &subdeps{}
	acc.addLeaf("x")
	acc.merge(d)
	if !acc.overflow || acc.size != 8 {
		t.Errorf("merge of overflowed summary: %+v", acc)
	}
}
