package pt

import (
	"testing"

	"ptx/internal/logic"
	"ptx/internal/relation"
)

var x = logic.Var("x")

func unarySchema() *relation.Schema {
	return relation.NewSchema().MustDeclare("R1", 1)
}

func simple() *Transducer {
	t := New("simple", unarySchema(), "q0", "r")
	t.DeclareTag("a", 1)
	t.AddRule("q0", "r", Item("q", "a", logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))))
	t.AddRule("q", "a")
	return t
}

func TestValidateErrors(t *testing.T) {
	// Missing start rule.
	t1 := New("t1", unarySchema(), "q0", "r")
	if err := t1.Validate(); err == nil {
		t.Error("missing start rule should fail")
	}
	// Spawning an undeclared tag.
	t2 := New("t2", unarySchema(), "q0", "r")
	t2.AddRule("q0", "r", Item("q", "ghost", logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))))
	if err := t2.Validate(); err == nil {
		t.Error("undeclared tag should fail")
	}
	// Arity mismatch between query and Θ.
	t3 := New("t3", unarySchema(), "q0", "r")
	t3.DeclareTag("a", 2)
	t3.AddRule("q0", "r", Item("q", "a", logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))))
	if err := t3.Validate(); err == nil {
		t.Error("arity mismatch should fail")
	}
	// Unknown relation in a query.
	t4 := New("t4", unarySchema(), "q0", "r")
	t4.DeclareTag("a", 1)
	t4.AddRule("q0", "r", Item("q", "a", logic.MustQuery([]logic.Var{x}, nil, logic.R("Nope", x))))
	if err := t4.Validate(); err == nil {
		t.Error("unknown relation should fail")
	}
	// Text rule with a nonempty rhs.
	t5 := New("t5", unarySchema(), "q0", "r")
	t5.DeclareTag("text", 1).DeclareTag("a", 1)
	t5.AddRule("q0", "r", Item("q", "a", logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))))
	t5.AddRule("q", "text", Item("p", "a", logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))))
	if err := t5.Validate(); err == nil {
		t.Error("nonempty text rule should fail")
	}
	// Spawning the root tag.
	t6 := New("t6", unarySchema(), "q0", "r")
	t6.DeclareTag("a", 1)
	t6.AddRule("q0", "r", Item("q", "a", logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))))
	t6.AddRule("q", "a", Item("q2", "r", logic.MustQuery(nil, nil, logic.True)))
	if err := t6.Validate(); err == nil {
		t.Error("spawning the root tag should fail")
	}
	// A healthy transducer validates.
	if err := simple().Validate(); err != nil {
		t.Errorf("simple transducer should validate: %v", err)
	}
}

func TestVirtualRootPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("marking the root virtual should panic")
		}
	}()
	New("t", unarySchema(), "q0", "r").MarkVirtual("r")
}

func TestDuplicateRulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate rule should panic")
		}
	}()
	tr := New("t", unarySchema(), "q0", "r")
	tr.AddRule("q0", "r")
	tr.AddRule("q0", "r")
}

func TestHasDuplicateTags(t *testing.T) {
	tr := New("t", unarySchema(), "q0", "r")
	tr.DeclareTag("a", 1)
	q := logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))
	tr.AddRule("q0", "r", Item("q1", "a", q), Item("q2", "a", q))
	if !tr.HasDuplicateTags() {
		t.Error("duplicate tags should be detected")
	}
	if simple().HasDuplicateTags() {
		t.Error("simple has no duplicates")
	}
}

func TestDependencyGraph(t *testing.T) {
	tr := New("t", unarySchema(), "q0", "r")
	tr.DeclareTag("a", 1).DeclareTag("b", 1)
	q := logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))
	qr := logic.MustQuery([]logic.Var{x}, nil, logic.R(RegRel, x))
	tr.AddRule("q0", "r", Item("q", "a", q))
	tr.AddRule("q", "a", Item("q", "b", qr))
	tr.AddRule("q", "b", Item("q", "a", qr)) // cycle a ↔ b

	g := tr.DependencyGraph()
	if len(g.Nodes()) != 3 {
		t.Fatalf("nodes = %v", g.Nodes())
	}
	if !g.HasCycle() || !tr.IsRecursive() {
		t.Error("cycle should be detected")
	}
	if _, err := g.TopoSort(); err == nil {
		t.Error("topo sort of a cyclic graph should fail")
	}
	reach := g.Reachable()
	if len(reach) != 3 {
		t.Errorf("reachable = %v", reach)
	}

	// Simple paths: root, root→a, root→a→b (b→a blocked: a already on
	// the path).
	count := 0
	g.SimplePaths(func(p *Path) bool {
		count++
		return true
	})
	if count != 3 {
		t.Errorf("simple paths = %d, want 3", count)
	}
	if g.LongestPathLen() != 2 {
		t.Errorf("longest path = %d, want 2", g.LongestPathLen())
	}
}

func TestTopoSortAcyclic(t *testing.T) {
	tr := New("t", unarySchema(), "q0", "r")
	tr.DeclareTag("a", 1).DeclareTag("b", 1)
	q := logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))
	qr := logic.MustQuery([]logic.Var{x}, nil, logic.R(RegRel, x))
	tr.AddRule("q0", "r", Item("q", "a", q))
	tr.AddRule("q", "a", Item("q", "b", qr))
	tr.AddRule("q", "b")
	order, err := tr.DependencyGraph().TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[GraphNode]int{}
	for i, n := range order {
		pos[n] = i
	}
	if !(pos[GraphNode{"q0", "r"}] < pos[GraphNode{"q", "a"}] &&
		pos[GraphNode{"q", "a"}] < pos[GraphNode{"q", "b"}]) {
		t.Errorf("order = %v", order)
	}
}

func TestMissingRuleMeansEmptyRHS(t *testing.T) {
	// A reachable (state, tag) without a rule finalizes the node.
	tr := New("t", unarySchema(), "q0", "r")
	tr.DeclareTag("a", 1)
	tr.AddRule("q0", "r", Item("q", "a", logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))))
	inst := relation.NewInstance(unarySchema())
	inst.Add("R1", "v")
	out, err := tr.Output(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Canonical() != "r(a)" {
		t.Fatalf("output = %s", out.Canonical())
	}
}

func TestGroupingSemantics(t *testing.T) {
	// φ(x;y): group by x — one child per distinct x with the y-set in
	// its register.
	s := relation.NewSchema().MustDeclare("E", 2)
	tr := New("t", s, "q0", "r")
	tr.DeclareTag("a", 2)
	y := logic.Var("y")
	tr.AddRule("q0", "r", Item("q", "a",
		logic.MustQuery([]logic.Var{x}, []logic.Var{y}, logic.R("E", x, y))))
	inst := relation.NewInstance(s)
	inst.Add("E", "1", "a")
	inst.Add("E", "1", "b")
	inst.Add("E", "2", "c")
	res, err := tr.Run(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	kids := res.Xi.Root.Children
	if len(kids) != 2 {
		t.Fatalf("children = %d, want 2 groups", len(kids))
	}
	if kids[0].Reg.Len() != 2 || kids[1].Reg.Len() != 1 {
		t.Fatalf("group sizes: %d, %d", kids[0].Reg.Len(), kids[1].Reg.Len())
	}
}

func TestGroupingNoGroupVars(t *testing.T) {
	// |x̄| = 0: the whole result in a single child.
	s := relation.NewSchema().MustDeclare("E", 2)
	tr := New("t", s, "q0", "r")
	tr.DeclareTag("a", 2)
	y := logic.Var("y")
	tr.AddRule("q0", "r", Item("q", "a",
		logic.MustQuery(nil, []logic.Var{x, y}, logic.R("E", x, y))))
	inst := relation.NewInstance(s)
	inst.Add("E", "1", "a")
	inst.Add("E", "2", "b")
	res, err := tr.Run(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	kids := res.Xi.Root.Children
	if len(kids) != 1 || kids[0].Reg.Len() != 2 {
		t.Fatalf("expected one child with the full relation")
	}
}

func TestChildrenOrderedByRegister(t *testing.T) {
	tr := simple()
	inst := relation.NewInstance(unarySchema())
	for _, v := range []string{"10", "2", "1"} {
		inst.Add("R1", v)
	}
	res, err := tr.Run(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, c := range res.Xi.Root.Children {
		got = append(got, string(c.Reg.Tuples()[0][0]))
	}
	want := []string{"1", "2", "10"} // numeric order
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("child order = %v, want %v", got, want)
		}
	}
}

func TestOutputRelationVirtualLabelRejected(t *testing.T) {
	tr := New("t", unarySchema(), "q0", "r")
	tr.DeclareTag("v", 1)
	tr.MarkVirtual("v")
	tr.AddRule("q0", "r", Item("q", "v", logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))))
	inst := relation.NewInstance(unarySchema())
	if _, err := tr.OutputRelation(inst, "v", Options{}); err == nil {
		t.Error("virtual output label must be rejected")
	}
}

func TestClassifyStoreDetection(t *testing.T) {
	s := relation.NewSchema().MustDeclare("E", 2)
	tr := New("t", s, "q0", "r")
	tr.DeclareTag("a", 2)
	y := logic.Var("y")
	tr.AddRule("q0", "r", Item("q", "a",
		logic.MustQuery([]logic.Var{x}, []logic.Var{y}, logic.R("E", x, y))))
	if cl := tr.Classify(); cl.Store != RelationStore {
		t.Errorf("|ȳ|>0 should classify as relation store, got %s", cl)
	}
}
