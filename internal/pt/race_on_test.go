//go:build race

package pt

// See race_off_test.go.
const raceEnabled = true
