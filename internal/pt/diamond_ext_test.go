// Diamond-family regime tests: the τ1/Iₙ construction of Proposition
// 1(3) has a 2ⁿ-leaf unfolding over O(n) vertices, so it is exactly the
// case where subtree sharing must keep ξ DAG-sized while every output
// surface (Output, OutputRelation, serialization) still sees the full
// unfolding. These live in the external test package so they can use
// the real paper families from internal/families.
package pt_test

import (
	"io"
	"testing"

	"ptx/internal/families"
	"ptx/internal/pt"
	"ptx/internal/xmltree"
)

func physicalNodes(tr *xmltree.Tree) int {
	n := 0
	tr.WalkShared(func(*xmltree.Node) bool { n++; return true })
	return n
}

// TestDiamondSubtreeSharingThroughOutput: under subtree sharing the ξ
// built for diamond-n must be physically DAG-sized even though its
// logical size (and the published output) is exponential, and all three
// cache modes must agree byte-for-byte on the output document and on
// the output relation.
func TestDiamondSubtreeSharingThroughOutput(t *testing.T) {
	const n = 10
	tr := families.UnfoldTransducer()
	inst := families.DiamondChain(n)

	res, err := tr.Run(inst, pt.Options{Cache: pt.CacheSubtrees})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheMode != pt.CacheSubtrees {
		t.Fatalf("effective mode = %v, want subtree", res.Stats.CacheMode)
	}
	phys := physicalNodes(res.Xi)
	logical := res.Stats.Nodes
	// Diamond-10 unfolds to >2^10 logical leaves over ~4n+2 physical
	// configurations; anything within 10× of the vertex count proves the
	// DAG, anything near the logical size would mean sharing is broken.
	if phys*100 > logical {
		t.Fatalf("physical ξ size %d not ≪ logical size %d", phys, logical)
	}

	// Output (strip+splice publish) must preserve the sharing rather
	// than exploding the DAG into its unfolding.
	out, err := tr.Output(inst, pt.Options{Cache: pt.CacheSubtrees})
	if err != nil {
		t.Fatal(err)
	}
	if op := physicalNodes(out); op*100 > logical {
		t.Fatalf("published output physical size %d not ≪ logical size %d", op, logical)
	}
	if out.Size() != logical {
		t.Fatalf("published logical size %d, want %d", out.Size(), logical)
	}

	// All three modes agree on the serialized document (streamed, so the
	// exponential unfolding is never materialized as a tree) and on the
	// output relation.
	var baseCanon string
	var baseRel []string
	for _, mode := range []pt.CacheMode{pt.CacheOff, pt.CacheQueries, pt.CacheSubtrees} {
		o, err := tr.Output(inst, pt.Options{Cache: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		canon := o.Canonical()
		rel, err := tr.OutputRelation(inst, "a", pt.Options{Cache: mode})
		if err != nil {
			t.Fatalf("%v: OutputRelation: %v", mode, err)
		}
		var tuples []string
		for _, tp := range rel.Tuples() {
			tuples = append(tuples, string(tp[0]))
		}
		if mode == pt.CacheOff {
			baseCanon, baseRel = canon, tuples
			continue
		}
		if canon != baseCanon {
			t.Errorf("%v: canonical output differs from CacheOff", mode)
		}
		if len(tuples) != len(baseRel) {
			t.Fatalf("%v: output relation size %d, want %d", mode, len(tuples), len(baseRel))
		}
		for i := range tuples {
			if tuples[i] != baseRel[i] {
				t.Errorf("%v: output relation tuple %d = %s, want %s", mode, i, tuples[i], baseRel[i])
			}
		}
	}
}

// BenchmarkSerializeDiamond measures the end-to-end serialization cost
// of diamond-10 under subtree sharing: the streaming writer works over
// the shared ξ directly, the materializing path clones and splices the
// full document first. The allocation gap is the point of the streaming
// output path (BENCH_pr3.json).
func BenchmarkSerializeDiamond(b *testing.B) {
	tr := families.UnfoldTransducer()
	inst := families.DiamondChain(10)
	res, err := tr.Run(inst, pt.Options{Cache: pt.CacheSubtrees})
	if err != nil {
		b.Fatal(err)
	}

	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := res.Xi.WriteCanonicalVirtual(io.Discard, tr.Virtual); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("materialize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := res.Xi.Clone().Strip()
			out.SpliceVirtual(tr.Virtual)
			if _, err := io.WriteString(io.Discard, out.Canonical()); err != nil {
				b.Fatal(err)
			}
		}
	})
}
