package pt

import (
	"context"
	"fmt"
	"sort"

	"ptx/internal/eval"
	"ptx/internal/relation"
	"ptx/internal/runctl"
	"ptx/internal/xmltree"
)

// StepRun is an explicit-frontier, one-configuration-per-step execution
// of the τ-transformation, built for checkpointing and resumption: the
// paper's determinism argument (Proposition 1(1)) makes the frontier of
// pending (state, tag, register) configurations a complete, restartable
// description of everything left to do, so a snapshot of (partial tree,
// frontier) taken between steps resumes to the exact tree an
// uninterrupted run would build.
//
// The step discipline is LIFO (document-order DFS), which both keeps
// ancestor sets shareable the way the recursive expander does and makes
// the operation numbering deterministic — "interrupt at the k-th step"
// names the same cut point on every run. Expansion is serial, and the
// cache mode is capped at CacheQueries: subtree sharing skips per-node
// work in a way that has no stable per-step numbering. Full-speed
// parallel/shared runs remain RunContext's job; StepRun trades their
// throughput for a restartable frontier. The OUTPUT is identical either
// way (the determinism invariant the cache-equivalence suite pins).
type StepRun struct {
	t      *Transducer
	base   *eval.Env
	ctl    *runctl.Controller
	cancel context.CancelFunc
	mode   CacheMode
	memo   *eval.Memo

	root     *xmltree.Node
	frontier []*stepPending
	observe  func(StepEvent)

	ops      int64
	queries  int
	stops    int
	nodes    int
	maxDepth int
}

// stepPending is one frontier entry: an unexpanded node, the set of its
// proper-ancestor configuration keys, and its depth. own reports that
// this entry is the map's sole referent and may extend it in place (the
// same copy-on-write discipline as the recursive expander).
type stepPending struct {
	node  *xmltree.Node
	anc   map[string]bool
	own   bool
	depth int
}

// PendingConfig is the serializable view of one frontier entry, exposed
// for checkpointing. Node points into the partial tree returned by
// Tree(); Ancestors holds the ancestor configuration keys sorted.
type PendingConfig struct {
	Node      *xmltree.Node
	Ancestors []string
	Depth     int
}

// NewStepRun starts a stepwise run of the τ-transformation on inst.
// Budgets and fault plans in opts apply exactly as in RunContext (the
// wall-clock deadline starts now); Options.Cache above CacheQueries is
// capped at CacheQueries. Callers must Close the run to release its
// timeout resources.
func (t *Transducer) NewStepRun(ctx context.Context, inst *relation.Instance, opts Options) (*StepRun, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	root := &xmltree.Node{Tag: t.RootTag, State: t.Start, Reg: relation.New(0)}
	pending := []PendingConfig{{Node: root, Depth: 1}}
	return t.restore(ctx, inst, opts, root, pending, Stats{Nodes: 1})
}

// RestoreStepRun reconstructs a stepwise run from a checkpoint: the
// partial tree rooted at root, the frontier as captured by Pending()
// (in the same order), and the counter values captured by StatsSoFar.
// Budgets in opts are FRESH for this attempt — a resumed run gets its
// full node/query/time budget again, which is what lets a sequence of
// budget-bounded attempts complete a tree no single budget allows.
// The pending nodes must belong to root's tree; the supervise layer's
// snapshot decoder enforces that for untrusted checkpoints.
func (t *Transducer) RestoreStepRun(ctx context.Context, inst *relation.Instance, opts Options, root *xmltree.Node, pending []PendingConfig, prior Stats) (*StepRun, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if root == nil {
		return nil, fmt.Errorf("pt: restore: nil root")
	}
	for i, p := range pending {
		switch {
		case p.Node == nil:
			return nil, fmt.Errorf("pt: restore: pending[%d] has nil node", i)
		case p.Node.State == "":
			return nil, fmt.Errorf("pt: restore: pending[%d] (%s) already finalized", i, p.Node.Tag)
		case p.Node.Reg == nil:
			return nil, fmt.Errorf("pt: restore: pending[%d] (%s,%s) has no register", i, p.Node.State, p.Node.Tag)
		case p.Depth < 1:
			return nil, fmt.Errorf("pt: restore: pending[%d] depth %d < 1", i, p.Depth)
		}
	}
	return t.restore(ctx, inst, opts, root, pending, prior)
}

func (t *Transducer) restore(ctx context.Context, inst *relation.Instance, opts Options, root *xmltree.Node, pending []PendingConfig, prior Stats) (*StepRun, error) {
	limits := opts.limits()
	ctx, cancel := limits.WithTimeout(ctx)
	ctl := runctl.New(ctx, limits).WithFaults(opts.Faults)
	mode := opts.Cache
	if mode > CacheQueries {
		mode = CacheQueries
	}
	s := &StepRun{
		t:        t,
		base:     opts.baseEnv(inst, ctl),
		ctl:      ctl,
		cancel:   cancel,
		mode:     mode,
		root:     root,
		queries:  prior.QueriesRun,
		stops:    prior.StopsApplied,
		nodes:    prior.Nodes,
		maxDepth: prior.MaxDepth,
	}
	if mode >= CacheQueries {
		if opts.Memo != nil {
			s.memo = opts.Memo
		} else {
			s.memo = eval.NewMemo(opts.CacheSize)
		}
	}
	s.frontier = make([]*stepPending, len(pending))
	for i, p := range pending {
		anc := make(map[string]bool, len(p.Ancestors))
		for _, k := range p.Ancestors {
			anc[k] = true
		}
		s.frontier[i] = &stepPending{node: p.Node, anc: anc, own: true, depth: p.Depth}
	}
	return s, nil
}

// Close releases the run's timeout resources. It is safe to call more
// than once and must be called even after a completed or failed run.
func (s *StepRun) Close() {
	if s.cancel != nil {
		s.cancel()
		s.cancel = nil
	}
}

// Done reports whether the frontier is empty (the transformation is
// complete and Result may be called).
func (s *StepRun) Done() bool { return len(s.frontier) == 0 }

// Ops returns the number of successfully completed steps of this runner
// (a resumed runner starts again at zero).
func (s *StepRun) Ops() int64 { return s.ops }

// Pending returns the serializable frontier, bottom of the stack first;
// feeding it back to RestoreStepRun in this order reproduces the step
// sequence exactly.
func (s *StepRun) Pending() []PendingConfig {
	out := make([]PendingConfig, len(s.frontier))
	for i, p := range s.frontier {
		keys := make([]string, 0, len(p.anc))
		for k := range p.anc {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out[i] = PendingConfig{Node: p.node, Ancestors: keys, Depth: p.depth}
	}
	return out
}

// Tree returns the partial (or, once Done, final) register-carrying
// tree ξ. Frontier nodes still carry their State.
func (s *StepRun) Tree() *xmltree.Tree { return &xmltree.Tree{Root: s.root} }

// StatsSoFar returns the counters accumulated so far (including any
// prior counters a restore carried in). Unlike Result it is valid
// mid-run, which is what checkpoints record.
func (s *StepRun) StatsSoFar() Stats {
	stats := Stats{
		Nodes:        s.nodes,
		QueriesRun:   s.queries,
		StopsApplied: s.stops,
		MaxDepth:     s.maxDepth,
		CacheMode:    s.mode,
	}
	if s.memo != nil {
		h, m, e := s.memo.Stats()
		stats.CacheHits = int(h)
		stats.CacheMisses = int(m)
		stats.CacheEvictions = int(e)
	}
	return stats
}

// Result returns the final tree and statistics; it errors if the
// frontier is not empty.
func (s *StepRun) Result() (*Result, error) {
	if !s.Done() {
		return nil, fmt.Errorf("pt: step run incomplete: %d configurations pending", len(s.frontier))
	}
	return &Result{Xi: s.Tree(), Stats: s.StatsSoFar()}, nil
}

// Run drives the frontier to empty and returns the result; it is
// RunContext built from steps (and produces the identical tree).
func (s *StepRun) Run() (*Result, error) {
	for !s.Done() {
		if _, err := s.Step(); err != nil {
			return nil, err
		}
	}
	return s.Result()
}

// StepEvent describes one COMMITTED step: the node it finalized or
// expanded, the state it carried before finalization cleared it, its
// depth, and whether the ancestor stop condition fired. Incremental
// repair (internal/incr) records these to know each live node's
// configuration after the run erased State from the tree.
type StepEvent struct {
	Node    *xmltree.Node
	State   string
	Depth   int
	Stopped bool
}

// Observe registers f to be called after every committed step; failed
// steps emit nothing, preserving the atomic-step invariant. f runs on
// the stepping goroutine and must not mutate the tree.
func (s *StepRun) Observe(f func(StepEvent)) { s.observe = f }

// Step performs one operation: it takes the top frontier configuration
// and either finalizes it (text leaf, ancestor stop, empty or missing
// rule, all-empty forests) or evaluates its rule queries and pushes its
// children. Steps are ATOMIC with respect to the run state: a failed
// step — cancellation, budget, injected fault, query error, contained
// panic — leaves the configuration on the frontier and the tree
// untouched, so (tree, frontier) always describes exactly the remaining
// work. This is the invariant checkpoints rely on. done reports whether
// the frontier is empty after the step; errors are runctl-typed as in
// RunContext.
func (s *StepRun) Step() (done bool, err error) {
	defer runctl.Recover(&err, "pt.Step")
	if len(s.frontier) == 0 {
		return true, nil
	}
	p := s.frontier[len(s.frontier)-1]
	if err := s.ctl.Canceled(); err != nil {
		return false, err
	}
	if err := s.ctl.Depth(p.depth); err != nil {
		return false, err
	}
	n := p.node
	state := n.State

	// finalize commits a completed step that produced no children.
	finalize := func(stopped bool) bool {
		n.State = ""
		s.frontier = s.frontier[:len(s.frontier)-1]
		s.ops++
		if p.depth > s.maxDepth {
			s.maxDepth = p.depth
		}
		if s.observe != nil {
			s.observe(StepEvent{Node: n, State: state, Depth: p.depth, Stopped: stopped})
		}
		return len(s.frontier) == 0
	}

	if n.Tag == xmltree.TextTag {
		n.Text = xmltree.TextOfRegister(n.Reg)
		return finalize(false), nil
	}
	key := ancKey(n.State, n.Tag, n.Reg)
	if p.anc[key] {
		s.stops++
		return finalize(true), nil
	}
	rule, ok := s.t.Rule(n.State, n.Tag)
	if !ok || len(rule.Items) == 0 {
		return finalize(false), nil
	}

	env := s.base.WithRelation(RegRel, n.Reg)
	var regFP string
	if s.memo != nil {
		regFP = n.Reg.Key()
	}
	type childSpec struct {
		state string
		tag   string
		reg   *relation.Relation
	}
	var specs []childSpec
	queriesRun := 0
	for _, it := range rule.Items {
		var result *relation.Relation
		if s.memo != nil {
			if rel, ok := s.memo.Get(it.Query, regFP); ok {
				result = rel
			}
		}
		if result == nil {
			if err := s.ctl.Query(); err != nil {
				return false, err
			}
			queriesRun++
			rel, err := eval.EvalQuery(it.Query, env)
			if err != nil {
				return false, fmt.Errorf("pt %s: rule (%s,%s) item (%s,%s): %w",
					s.t.Name, rule.State, rule.Tag, it.State, it.Tag, err)
			}
			// Memoizing before the step commits is sound: entries are
			// stored only after a successful evaluation, and determinism
			// makes them valid whether or not this step completes.
			if s.memo != nil {
				s.memo.Put(it.Query, regFP, rel)
			}
			result = rel
		}
		groups, err := groupByPrefix(result, len(it.Query.GroupVars))
		if err != nil {
			return false, fmt.Errorf("pt %s: rule (%s,%s) item (%s,%s): %w",
				s.t.Name, rule.State, rule.Tag, it.State, it.Tag, err)
		}
		for _, g := range groups {
			specs = append(specs, childSpec{state: it.State, tag: it.Tag, reg: g})
		}
	}
	if len(specs) == 0 {
		s.queries += queriesRun
		return finalize(false), nil
	}
	if err := s.ctl.AddNodes(len(specs)); err != nil {
		return false, err
	}

	// The step commits: materialize the children and replace this
	// configuration with theirs.
	children := make([]*xmltree.Node, len(specs))
	for i, sp := range specs {
		children[i] = &xmltree.Node{Tag: sp.tag, State: sp.state, Reg: sp.reg}
	}
	n.Children = children
	n.State = ""
	s.nodes += len(children)
	s.queries += queriesRun
	s.frontier = s.frontier[:len(s.frontier)-1]
	s.ops++
	if p.depth > s.maxDepth {
		s.maxDepth = p.depth
	}
	if s.observe != nil {
		s.observe(StepEvent{Node: n, State: state, Depth: p.depth})
	}

	if len(children) == 1 {
		// Single-child chain: extend the ancestor set in place when owned
		// (the depth-d chains of Proposition 1(4) then cost O(d) total
		// instead of O(d²) map copying).
		anc := p.anc
		if !p.own {
			anc = make(map[string]bool, len(p.anc)+1)
			for k := range p.anc {
				anc[k] = true
			}
		}
		anc[key] = true
		s.frontier = append(s.frontier, &stepPending{node: children[0], anc: anc, own: true, depth: p.depth + 1})
		return false, nil
	}
	childAnc := make(map[string]bool, len(p.anc)+1)
	for k := range p.anc {
		childAnc[k] = true
	}
	childAnc[key] = true
	for i := len(children) - 1; i >= 0; i-- {
		s.frontier = append(s.frontier, &stepPending{node: children[i], anc: childAnc, own: false, depth: p.depth + 1})
	}
	return false, nil
}
