// Cache-equivalence acceptance tests: every cache mode must produce
// byte-identical output and identical logical-tree statistics on every
// family, sequentially and in parallel, with and without injected
// faults. These live in the external test package so they can drive the
// real paper families from internal/families.
package pt_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ptx/internal/families"
	"ptx/internal/parser"
	"ptx/internal/pt"
	"ptx/internal/relation"
	"ptx/internal/runctl"
)

var allModes = []pt.CacheMode{pt.CacheOff, pt.CacheQueries, pt.CacheSubtrees}

// fixture is one (transducer, instance) workload for the equivalence
// suite.
type fixture struct {
	name string
	tr   *pt.Transducer
	inst *relation.Instance
}

func familyFixtures() []fixture {
	via := relation.NewInstance(families.ViaSchema())
	via.Add("E", "c1", "x")
	via.Add("E", "x", "c2")
	via.Add("E", "c2", "y")
	via.Add("E", "y", "c3")

	pc := relation.NewInstance(families.PathCountSchema())
	pc.Add("S", "s")
	pc.Add("T", "t")
	pc.Add("R", "s", "m1")
	pc.Add("R", "s", "m2")
	pc.Add("R", "m1", "t")
	pc.Add("R", "m2", "t")

	return []fixture{
		{"unfold-diamond-6", families.UnfoldTransducer(), families.DiamondChain(6)},
		{"counter-2", families.CounterTransducer(), families.CounterInstance(2)},
		{"via-chain", families.ViaTransducer(), via},
		{"pathcount-virtual", families.PathCountTransducer(), pc},
	}
}

// output runs the transducer and returns the rendered XML plus stats.
func output(t *testing.T, f fixture, opts pt.Options) (string, pt.Stats) {
	t.Helper()
	if opts.Limits == nil {
		opts.Limits = &runctl.Limits{Timeout: 2 * time.Minute}
	}
	res, err := f.tr.Run(f.inst, opts)
	if err != nil {
		t.Fatalf("%s %v: %v", f.name, opts.Cache, err)
	}
	out := res.Xi.Clone().Strip()
	out.SpliceVirtual(f.tr.Virtual)
	return out.XML(), res.Stats
}

// TestCacheEquivalenceFamilies is the core soundness suite: for every
// family, every cache mode and both sequential and parallel expansion
// produce byte-identical XML and identical logical-tree statistics.
func TestCacheEquivalenceFamilies(t *testing.T) {
	for _, f := range familyFixtures() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			t.Parallel()
			base, baseStats := output(t, f, pt.Options{})
			for _, mode := range allModes {
				for _, workers := range []int{1, 4} {
					got, stats := output(t, f, pt.Options{Cache: mode, Workers: workers})
					if got != base {
						t.Errorf("cache=%v workers=%d: output differs from cache-off baseline", mode, workers)
					}
					if stats.Nodes != baseStats.Nodes || stats.MaxDepth != baseStats.MaxDepth ||
						stats.StopsApplied != baseStats.StopsApplied {
						t.Errorf("cache=%v workers=%d: logical stats differ: got %+v want %+v",
							mode, workers, stats, baseStats)
					}
					if mode != pt.CacheOff && stats.QueriesRun > baseStats.QueriesRun {
						t.Errorf("cache=%v workers=%d: ran MORE queries (%d) than cache-off (%d)",
							mode, workers, stats.QueriesRun, baseStats.QueriesRun)
					}
				}
			}
		})
	}
}

// TestCacheEquivalenceSpecs runs every checked-in example spec through
// all cache modes and demands byte-identical XML.
func TestCacheEquivalenceSpecs(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "specs")
	specs, err := filepath.Glob(filepath.Join(dir, "*.pt"))
	if err != nil || len(specs) == 0 {
		t.Skipf("no example specs found in %s", dir)
	}
	data, err := os.ReadFile(filepath.Join(dir, "registrar.db"))
	if err != nil {
		t.Skipf("no registrar.db: %v", err)
	}
	for _, path := range specs {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := parser.ParseTransducer(string(src))
			if err != nil {
				t.Fatal(err)
			}
			inst, err := parser.ParseInstance(string(data), tr.Schema)
			if err != nil {
				t.Fatal(err)
			}
			f := fixture{name: filepath.Base(path), tr: tr, inst: inst}
			base, _ := output(t, f, pt.Options{})
			for _, mode := range allModes[1:] {
				for _, workers := range []int{1, 4} {
					if got, _ := output(t, f, pt.Options{Cache: mode, Workers: workers}); got != base {
						t.Errorf("cache=%v workers=%d: output differs from baseline", mode, workers)
					}
				}
			}
		})
	}
}

// TestSubtreeSharingReducesQueries is the Proposition 1(3) acceptance
// bound of this PR: on the exponential unfold family the subtree cache
// must cut rule-query evaluations by at least 5× (it actually collapses
// the 2ⁿ-leaf tree to one expansion per graph vertex).
func TestSubtreeSharingReducesQueries(t *testing.T) {
	tr := families.UnfoldTransducer()
	inst := families.DiamondChain(10)
	f := fixture{name: "unfold-diamond-10", tr: tr, inst: inst}

	base, off := output(t, f, pt.Options{})
	shared, sub := output(t, f, pt.Options{Cache: pt.CacheSubtrees})
	if sub.CacheMode != pt.CacheSubtrees {
		t.Fatalf("effective mode = %v, want subtree (no budgets, no virtual tags)", sub.CacheMode)
	}
	if shared != base {
		t.Fatal("subtree-shared output differs from baseline")
	}
	if off.QueriesRun < 5*sub.QueriesRun {
		t.Errorf("subtree sharing saved too little: %d queries off vs %d shared (want ≥5×)",
			off.QueriesRun, sub.QueriesRun)
	}
	if sub.SubtreesShared == 0 || sub.NodesShared == 0 {
		t.Errorf("no sharing recorded: %+v", sub)
	}
	if sub.Nodes != off.Nodes || sub.MaxDepth != off.MaxDepth {
		t.Errorf("logical stats drifted: off %+v sub %+v", off, sub)
	}
}

// TestCacheFaultDoesNotPoison injects deterministic query faults into
// cached runs: the faulted run must fail with the injected error as root
// cause, and a fresh cached run afterwards must still produce the
// baseline output — a partial failure never leaves poisoned state
// behind (caches are per-run, and failed evaluations are never stored).
func TestCacheFaultDoesNotPoison(t *testing.T) {
	tr := families.UnfoldTransducer()
	inst := families.DiamondChain(6)
	f := fixture{name: "unfold-diamond-6", tr: tr, inst: inst}
	base, _ := output(t, f, pt.Options{})

	for _, mode := range allModes[1:] {
		// Cached runs of diamond(6) evaluate ~19 distinct queries, so
		// fault positions up to 12 are guaranteed to fire in every mode.
		for _, n := range []int64{1, 5, 12} {
			boom := errors.New("injected query fault")
			plan := &runctl.FaultPlan{Op: runctl.OpQuery, N: n, Err: boom}
			_, err := tr.Run(inst, pt.Options{Cache: mode, Workers: 4, Faults: plan})
			if !errors.Is(err, boom) {
				t.Fatalf("cache=%v fault@%d: got %v, want injected fault", mode, n, err)
			}
			if got, _ := output(t, f, pt.Options{Cache: mode, Workers: 4}); got != base {
				t.Errorf("cache=%v: clean rerun after fault@%d differs from baseline", mode, n)
			}
		}
	}
}

// TestCacheBudgetEquivalence: a node budget must abort the run with the
// same typed error in every cache mode (CacheSubtrees silently degrades
// to the query-level cache under tree-shaped budgets, so per-node
// accounting is identical).
func TestCacheBudgetEquivalence(t *testing.T) {
	tr := families.CounterTransducer()
	inst := families.CounterInstance(2)
	for _, mode := range allModes {
		res, err := tr.Run(inst, pt.Options{Cache: mode, MaxNodes: 100})
		var be *pt.ErrBudget
		if !errors.As(err, &be) || be.Kind != runctl.BudgetNodes {
			t.Fatalf("cache=%v: got (%v, %v), want nodes-budget error", mode, res, err)
		}
	}
	// And the subtree mode must report its downgrade in Stats.
	res, err := tr.Run(inst, pt.Options{Cache: pt.CacheSubtrees, MaxNodes: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheMode != pt.CacheQueries {
		t.Errorf("subtree under MaxNodes should downgrade to query, got %v", res.Stats.CacheMode)
	}
}

// TestCacheTinyCapacityStillCorrect forces heavy eviction (capacity 2 on
// both levels) and checks the output is still byte-identical: the caches
// are a pure optimization, never load-bearing.
func TestCacheTinyCapacityStillCorrect(t *testing.T) {
	tr := families.UnfoldTransducer()
	inst := families.DiamondChain(8)
	f := fixture{name: "unfold-diamond-8", tr: tr, inst: inst}
	base, _ := output(t, f, pt.Options{})
	for _, mode := range allModes[1:] {
		got, stats := output(t, f, pt.Options{Cache: mode, CacheSize: 2})
		if got != base {
			t.Errorf("cache=%v size=2: output differs from baseline", mode)
		}
		if stats.CacheEvictions == 0 {
			t.Errorf("cache=%v size=2: expected evictions, got stats %+v", mode, stats)
		}
	}
}
