package pt

import (
	"fmt"

	"ptx/internal/logic"
)

// Store is the register-store parameter S of PT(L, S, O).
type Store int

// Tuple registers hold a single tuple (every query has |ȳ| = 0);
// relation registers hold a finite relation.
const (
	TupleStore Store = iota
	RelationStore
)

func (s Store) String() string {
	if s == TupleStore {
		return "tuple"
	}
	return "relation"
}

// Output is the output parameter O of PT(L, S, O).
type Output int

// NormalOutput means every node stays in the output tree;
// VirtualOutput means some tags are spliced out.
const (
	NormalOutput Output = iota
	VirtualOutput
)

func (o Output) String() string {
	if o == NormalOutput {
		return "normal"
	}
	return "virtual"
}

// Class identifies a transducer class PT(L, S, O) or PTnr(L, S, O).
type Class struct {
	Logic     logic.Logic
	Store     Store
	Output    Output
	Recursive bool
}

// String renders the class in the paper's notation, e.g.
// "PT(CQ, tuple, normal)" or "PTnr(FO, relation, virtual)".
func (c Class) String() string {
	name := "PT"
	if !c.Recursive {
		name = "PTnr"
	}
	return fmt.Sprintf("%s(%s, %s, %s)", name, c.Logic, c.Store, c.Output)
}

// Within reports whether every transducer of class c also belongs to
// class d (the syntactic inclusion order of the paper: CQ ⊆ FO ⊆ IFP,
// tuple ⊆ relation, normal ⊆ virtual, PTnr ⊆ PT).
func (c Class) Within(d Class) bool {
	if c.Recursive && !d.Recursive {
		return false
	}
	return d.Logic.Includes(c.Logic) && d.Store >= c.Store && d.Output >= c.Output
}

// Classify computes the smallest class PT(L, S, O) (or PTnr) containing
// the transducer: L is the largest logic used by any rule query, S is
// tuple iff every query groups by its entire output (|ȳ| = 0), O is
// virtual iff Σe is nonempty, and recursiveness is cycle existence in Gτ.
func (t *Transducer) Classify() Class {
	c := Class{Logic: logic.CQ, Store: TupleStore, Output: NormalOutput}
	for _, r := range t.Rules() {
		for _, it := range r.Items {
			if l := it.Query.Logic(); l > c.Logic {
				c.Logic = l
			}
			if !it.Query.TupleStore() {
				c.Store = RelationStore
			}
		}
	}
	if len(t.Virtual) > 0 {
		c.Output = VirtualOutput
	}
	c.Recursive = t.IsRecursive()
	return c
}
