package pt

import (
	"fmt"

	"ptx/internal/eval"
	"ptx/internal/relation"
)

// ChildSpec is one ordered child a configuration generates: the exact
// (state, tag, register) triple Step materializes as a tree node.
type ChildSpec struct {
	State string
	Tag   string
	Reg   *relation.Relation
}

// ExpandConfig evaluates the rule for (state, tag) with register reg
// against base (an Env over the database instance) and returns the
// ordered child specs, plus the number of queries actually evaluated
// (memo hits are free). A missing or empty rule yields nil specs. The
// ancestor stop condition is the CALLER's job — ExpandConfig only runs
// the rule, which is what incremental repair needs when it re-derives
// the children of a node whose rule queries read a mutated relation.
func (t *Transducer) ExpandConfig(state, tag string, reg *relation.Relation, base *eval.Env, memo *eval.Memo) ([]ChildSpec, int, error) {
	rule, ok := t.Rule(state, tag)
	if !ok || len(rule.Items) == 0 {
		return nil, 0, nil
	}
	env := base.WithRelation(RegRel, reg)
	var regFP string
	if memo != nil {
		regFP = reg.Key()
	}
	var specs []ChildSpec
	queries := 0
	for _, it := range rule.Items {
		var result *relation.Relation
		if memo != nil {
			if rel, ok := memo.Get(it.Query, regFP); ok {
				result = rel
			}
		}
		if result == nil {
			queries++
			rel, err := eval.EvalQuery(it.Query, env)
			if err != nil {
				return nil, queries, fmt.Errorf("pt %s: rule (%s,%s) item (%s,%s): %w",
					t.Name, rule.State, rule.Tag, it.State, it.Tag, err)
			}
			if memo != nil {
				memo.Put(it.Query, regFP, rel)
			}
			result = rel
		}
		groups, err := groupByPrefix(result, len(it.Query.GroupVars))
		if err != nil {
			return nil, queries, fmt.Errorf("pt %s: rule (%s,%s) item (%s,%s): %w",
				t.Name, rule.State, rule.Tag, it.State, it.Tag, err)
		}
		for _, g := range groups {
			specs = append(specs, ChildSpec{State: it.State, Tag: it.Tag, Reg: g})
		}
	}
	return specs, queries, nil
}
