// Package families implements the explicit transducer and instance
// families used by the paper's proofs as executable constructions:
//
//   - the graph-unfolding transducer τ1 and the chain-of-diamonds
//     instances Iₙ of Proposition 1(3) (|τ1(Iₙ)| ≥ 2ⁿ from |Iₙ| = O(n));
//   - the binary-counter transducer τ2 and instances Jₙ of
//     Proposition 1(4) (|τ2(Jₙ)| ≥ 2^(2ⁿ) with relation stores);
//   - the three-constant path query of Proposition 4(5) separating
//     PT(CQ, relation, O) from PT(FO, tuple, O);
//   - the simple-path-counting transducer of Proposition 5(10,11)
//     (virtual unfolding emitting one a per simple s→t path);
//   - the boolean-flag transducer used by several separation proofs
//     (emit r(a) iff a sentence holds).
package families

import (
	"fmt"

	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/relation"
)

// GraphSchema is the binary edge relation used by the graph families.
func GraphSchema() *relation.Schema {
	return relation.NewSchema().MustDeclare("R", 2)
}

// UnfoldTransducer is the τ1 of Proposition 1(3): it unfolds the graph
// R into a tree of a-nodes, one child per outgoing edge, relying on the
// stop condition to terminate on cycles. Class: PT(CQ, tuple, normal).
func UnfoldTransducer() *pt.Transducer {
	x, y := logic.Var("x"), logic.Var("y")
	t := pt.New("unfold", GraphSchema(), "q0", "r")
	t.DeclareTag("a", 1)
	// Roots: vertices with outgoing edges.
	t.AddRule("q0", "r", pt.Item("q", "a",
		logic.MustQuery([]logic.Var{x}, nil, logic.Ex([]logic.Var{y}, logic.R("R", x, y)))))
	// Expansion: successors of the register vertex.
	t.AddRule("q", "a", pt.Item("q", "a",
		logic.MustQuery([]logic.Var{x}, nil,
			logic.Ex([]logic.Var{y}, logic.Conj(logic.R(pt.RegRel, y), logic.R("R", y, x))))))
	return t
}

// DiamondChain builds the instance Iₙ of Proposition 1(3): a chain of n
// diamonds a₀ → {b₀₁,b₀₂} → a₁ → … with 4n edges whose tree unfolding
// has ≥ 2ⁿ leaves.
func DiamondChain(n int) *relation.Instance {
	inst := relation.NewInstance(GraphSchema())
	a := func(k int) string { return fmt.Sprintf("a%03d", k) }
	b := func(k, j int) string { return fmt.Sprintf("b%03d_%d", k, j) }
	for k := 0; k < n; k++ {
		for j := 1; j <= 2; j++ {
			inst.Add("R", a(k), b(k, j))
			inst.Add("R", b(k, j), a(k+1))
		}
	}
	return inst
}

// CounterSchema holds the three relations of Proposition 1(4):
// counter(k,d,c), add(d1,d2,d3,d,c) (a full adder), next(k,k').
func CounterSchema() *relation.Schema {
	s := relation.NewSchema()
	s.MustDeclare("counter", 3)
	s.MustDeclare("add", 5)
	s.MustDeclare("next", 2)
	return s
}

// CounterInstance builds Jₙ of Proposition 1(4): an n-digit binary
// counter at zero (with the carry seed on digit 0), the full-adder
// table, and the digit successor relation (mod n).
func CounterInstance(n int) *relation.Instance {
	inst := relation.NewInstance(CounterSchema())
	for k := 0; k < n; k++ {
		carry := "0"
		if k == 0 {
			carry = "1"
		}
		inst.Add("counter", fmt.Sprint(k), "0", carry)
		inst.Add("next", fmt.Sprint(k), fmt.Sprint((k+1)%n))
	}
	adder := [][5]string{
		{"0", "0", "0", "0", "0"}, {"0", "0", "1", "1", "0"},
		{"0", "1", "0", "1", "0"}, {"0", "1", "1", "0", "1"},
		{"1", "0", "0", "1", "0"}, {"1", "0", "1", "0", "1"},
		{"1", "1", "0", "0", "1"}, {"1", "1", "1", "1", "1"},
	}
	for _, row := range adder {
		inst.Add("add", row[0], row[1], row[2], row[3], row[4])
	}
	return inst
}

// CounterTransducer is the τ2 of Proposition 1(4): every a-node carries
// the full n-digit counter in a relation register; each step increments
// the counter by 1 and spawns two copies, so the tree has ≥ 2^(2ⁿ)
// nodes before the stop condition fires. Class: PT(CQ, relation, normal).
func CounterTransducer() *pt.Transducer {
	k, d, c := logic.Var("k"), logic.Var("d"), logic.Var("c")
	t := pt.New("counter", CounterSchema(), "q0", "r")
	t.DeclareTag("a", 3)

	init := logic.MustQuery(nil, []logic.Var{k, d, c}, logic.R("counter", k, d, c))
	t.AddRule("q0", "r", pt.Item("q", "a", init), pt.Item("q2", "a2", init))
	// A second tag for the duplicate copy (tags must be distinct within
	// a rule); both behave identically.
	t.DeclareTag("a2", 3)

	step := incrementQuery()
	t.AddRule("q", "a", pt.Item("q", "a", step), pt.Item("q2", "a2", step))
	t.AddRule("q2", "a2", pt.Item("q", "a", step), pt.Item("q2", "a2", step))
	return t
}

// incrementQuery is φ1 of the Proposition 1(4) proof: from the register
// relation Reg(k,d,c) (digit k has value d with carry c), compute the
// incremented counter using the adder table and the digit order.
func incrementQuery() *logic.Query {
	k, d, c := logic.Var("k"), logic.Var("d"), logic.Var("c")
	d1, c1 := logic.Var("d1"), logic.Var("c1")
	kp, d2, c2 := logic.Var("kp"), logic.Var("d2"), logic.Var("c2")
	d3, c3 := logic.Var("d3"), logic.Var("c3")
	body := logic.Ex([]logic.Var{d1, c1, kp, d2, c2, d3, c3}, logic.Conj(
		logic.R(pt.RegRel, k, d1, c1),
		logic.R(pt.RegRel, kp, d2, c2),
		logic.R("next", kp, k),
		logic.R("counter", k, d3, c3),
		logic.R("add", d1, c2, c3, d, c),
	))
	return logic.MustQuery(nil, []logic.Var{k, d, c}, body)
}

// ViaSchema is the schema of the Proposition 4(5) witness: a single
// binary edge relation E; the three distinguished vertices are the
// literal domain values "c1", "c2", "c3".
func ViaSchema() *relation.Schema {
	return relation.NewSchema().MustDeclare("E", 2)
}

// ViaTransducer is the Proposition 4(5)-style witness in
// PT(CQ, relation, normal): a relation-register chain whose k-th node
// stores all pairs connected by a walk of length k+1, and which emits
// (c1,c3) on label ao when some register simultaneously holds an equal-
// length walk c1→c2 and c2→c3.
//
// The paper's literal φ2 (Reg(c1,c2) ∧ Reg(c2,c3) over a register
// seeded only with c1-walks) can never fire — a proof-detail erratum
// recorded in EXPERIMENTS.md; this construction is the natural
// correction, seeding the register with all edges so both legs live in
// the same register.
func ViaTransducer() *pt.Transducer {
	y1, y2, yy := logic.Var("y1"), logic.Var("y2"), logic.Var("y")
	t := pt.New("via", ViaSchema(), "q0", "r")
	t.DeclareTag("a", 2)
	t.DeclareTag("ao", 2)

	start := logic.MustQuery(nil, []logic.Var{y1, y2}, logic.R("E", y1, y2))
	t.AddRule("q0", "r", pt.Item("q", "a", start))

	step := logic.MustQuery(nil, []logic.Var{y1, y2},
		logic.Ex([]logic.Var{yy}, logic.Conj(logic.R(pt.RegRel, y1, yy), logic.R("E", yy, y2))))
	t.AddRule("q", "a", pt.Item("q", "a", step), pt.Item("qo", "ao", viaOut()))
	t.AddRule("qo", "ao")
	return t
}

// viaOut is φ2: the register holds equal-length walks c1→c2 and c2→c3.
func viaOut() *logic.Query {
	y1, y2, u := logic.Var("y1"), logic.Var("y2"), logic.Var("u")
	return logic.MustQuery(nil, []logic.Var{y1, y2},
		logic.Ex([]logic.Var{u}, logic.Conj(
			logic.R(pt.RegRel, y1, u),
			logic.EqT(u, logic.Const("c2")),
			logic.R(pt.RegRel, u, y2),
			logic.EqT(y1, logic.Const("c1")),
			logic.EqT(y2, logic.Const("c3")),
		)))
}

// PathCountSchema is the schema of Proposition 5(10–11): a graph R with
// source and target markers S and T.
func PathCountSchema() *relation.Schema {
	s := relation.NewSchema()
	s.MustDeclare("R", 2)
	s.MustDeclare("S", 1)
	s.MustDeclare("T", 1)
	return s
}

// PathCountTransducer is the Proposition 5(10–11) witness in
// PT(CQ, tuple, virtual): it unfolds the graph from the source through
// virtual v-nodes and emits a (normal) a-leaf whenever the target is
// reached, so the output is r(a…a) with one a per walk from s to t
// (bounded by the stop condition). Counting walks is not expressible in
// PT(CQ/FO, relation, normal).
func PathCountTransducer() *pt.Transducer {
	x, y := logic.Var("x"), logic.Var("y")
	t := pt.New("pathcount", PathCountSchema(), "q0", "r")
	t.DeclareTag("v", 1).DeclareTag("a", 1)
	t.MarkVirtual("v")

	start := logic.MustQuery([]logic.Var{x}, nil,
		logic.Ex([]logic.Var{y}, logic.Conj(logic.R("S", y), logic.R("R", y, x))))
	t.AddRule("q0", "r", pt.Item("q", "v", start))

	step := logic.MustQuery([]logic.Var{x}, nil,
		logic.Ex([]logic.Var{y}, logic.Conj(logic.R(pt.RegRel, y), logic.R("R", y, x))))
	hit := logic.MustQuery([]logic.Var{x}, nil,
		logic.Conj(logic.R(pt.RegRel, x), logic.R("T", x)))
	t.AddRule("q", "v", pt.Item("q", "v", step), pt.Item("qa", "a", hit))
	t.AddRule("qa", "a")
	return t
}

// FlagTransducer emits the tree r(a) when the given sentence holds on
// the instance and the bare root otherwise — the τ_q device used by
// Propositions 5(2–5). The sentence's logic determines the class.
func FlagTransducer(schema *relation.Schema, sentence logic.Formula) *pt.Transducer {
	x := logic.Var("x")
	t := pt.New("flag", schema, "q0", "r")
	t.DeclareTag("a", 1)
	q := logic.MustQuery([]logic.Var{x}, nil,
		logic.Conj(sentence, logic.EqT(x, logic.Const("1"))))
	t.AddRule("q0", "r", pt.Item("q", "a", q))
	t.AddRule("q", "a")
	return t
}
