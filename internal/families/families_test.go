package families

import (
	"fmt"

	"math"
	"math/rand"
	"ptx/internal/logic"
	"testing"

	"ptx/internal/pt"
	"ptx/internal/relation"
	"ptx/internal/value"
)

func TestUnfoldExponentialBlowup(t *testing.T) {
	// Proposition 1(3): |τ1(Iₙ)| ≥ 2ⁿ while |Iₙ| = O(n).
	tr := UnfoldTransducer()
	for n := 1; n <= 8; n++ {
		inst := DiamondChain(n)
		if inst.Size() != 4*n {
			t.Fatalf("Iₙ should have 4n edges, got %d", inst.Size())
		}
		out, err := tr.Output(inst, pt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if out.Size() < 1<<n {
			t.Errorf("n=%d: output size %d < 2^%d", n, out.Size(), n)
		}
	}
}

func TestUnfoldOnCycleTerminates(t *testing.T) {
	inst := relation.NewInstance(GraphSchema())
	inst.Add("R", "a", "b")
	inst.Add("R", "b", "a")
	res, err := UnfoldTransducer().Run(inst, pt.Options{MaxNodes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StopsApplied == 0 {
		t.Error("stop condition should fire on the 2-cycle")
	}
}

func TestCounterDoublyExponential(t *testing.T) {
	// Proposition 1(4): |τ2(Jₙ)| ≥ 2^(2ⁿ) while |Jₙ| = O(n).
	tr := CounterTransducer()
	if cl := tr.Classify().String(); cl != "PT(CQ, relation, normal)" {
		t.Fatalf("counter transducer class %s", cl)
	}
	for n := 1; n <= 3; n++ {
		inst := CounterInstance(n)
		out, err := tr.Output(inst, pt.Options{MaxNodes: 5_000_000})
		if err != nil {
			t.Fatal(err)
		}
		want := int(math.Pow(2, math.Pow(2, float64(n))))
		if out.Size() < want {
			t.Errorf("n=%d: output size %d < 2^(2^%d) = %d", n, out.Size(), n, want)
		}
	}
}

func TestCounterDepthTracksIncrements(t *testing.T) {
	// The a-chain increments an n-digit counter once per level, so the
	// depth is 2ⁿ + O(1).
	tr := CounterTransducer()
	for n := 1; n <= 3; n++ {
		res, err := tr.Run(CounterInstance(n), pt.Options{MaxNodes: 5_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.MaxDepth < 1<<n {
			t.Errorf("n=%d: depth %d < 2^%d", n, res.Stats.MaxDepth, n)
		}
	}
}

// referenceVia computes the equal-length two-leg reachability that
// ViaTransducer implements, by direct iteration of pair-set composition
// until a repeat.
func referenceVia(inst *relation.Instance) bool {
	edges := make(map[[2]string]bool)
	inst.Rel("E").Each(func(t value.Tuple) bool {
		edges[[2]string{string(t[0]), string(t[1])}] = true
		return true
	})
	compose := func(cur map[[2]string]bool) map[[2]string]bool {
		next := make(map[[2]string]bool)
		for p := range cur {
			for e := range edges {
				if p[1] == e[0] {
					next[[2]string{p[0], e[1]}] = true
				}
			}
		}
		return next
	}
	key := func(m map[[2]string]bool) string {
		var ks []string
		for p := range m {
			ks = append(ks, p[0]+"→"+p[1])
		}
		// deterministic key
		for i := 1; i < len(ks); i++ {
			for j := i; j > 0 && ks[j] < ks[j-1]; j-- {
				ks[j], ks[j-1] = ks[j-1], ks[j]
			}
		}
		out := ""
		for _, k := range ks {
			out += k + ";"
		}
		return out
	}
	seen := map[string]bool{}
	cur := edges
	for len(cur) > 0 && !seen[key(cur)] {
		seen[key(cur)] = true
		if cur[[2]string{"c1", "c2"}] && cur[[2]string{"c2", "c3"}] {
			return true
		}
		cur = compose(cur)
	}
	return false
}

func TestViaTransducerMatchesReference(t *testing.T) {
	tr := ViaTransducer()
	if cl := tr.Classify().String(); cl != "PT(CQ, relation, normal)" {
		t.Fatalf("via transducer class %s", cl)
	}
	rng := rand.New(rand.NewSource(11))
	verts := []string{"c1", "c2", "c3", "d", "e"}
	hits := 0
	for trial := 0; trial < 30; trial++ {
		inst := relation.NewInstance(ViaSchema())
		for k := 0; k < 5; k++ {
			inst.Add("E", verts[rng.Intn(len(verts))], verts[rng.Intn(len(verts))])
		}
		want := referenceVia(inst)
		rel, err := tr.OutputRelation(inst, "ao", pt.Options{MaxNodes: 200000})
		if err != nil {
			t.Fatal(err)
		}
		got := !rel.Empty()
		if got != want {
			t.Fatalf("trial %d: transducer %v, reference %v on\n%s", trial, got, want, inst)
		}
		if got {
			hits++
			if rel.Len() != 1 || !rel.Contains(value.Tuple{"c1", "c3"}) {
				t.Fatalf("output relation should be {(c1,c3)}, got %s", rel)
			}
		}
	}
	if hits == 0 {
		t.Error("no positive trials; test is vacuous")
	}
}

func TestViaSimpleChain(t *testing.T) {
	inst := relation.NewInstance(ViaSchema())
	// c1→x→c2 and c2→y→c3: both legs length 2.
	inst.Add("E", "c1", "x")
	inst.Add("E", "x", "c2")
	inst.Add("E", "c2", "y")
	inst.Add("E", "y", "c3")
	rel, err := ViaTransducer().OutputRelation(inst, "ao", pt.Options{MaxNodes: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Empty() {
		t.Error("equal-length legs should fire")
	}
}

func TestPathCountCountsWalks(t *testing.T) {
	tr := PathCountTransducer()
	if cl := tr.Classify().String(); cl != "PT(CQ, tuple, virtual)" {
		t.Fatalf("pathcount class %s", cl)
	}
	inst := relation.NewInstance(PathCountSchema())
	// s → {m1, m2} → t: two walks.
	inst.Add("S", "s")
	inst.Add("T", "t")
	inst.Add("R", "s", "m1")
	inst.Add("R", "s", "m2")
	inst.Add("R", "m1", "t")
	inst.Add("R", "m2", "t")
	out, err := tr.Output(inst, pt.Options{MaxNodes: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.CountTag("a"); got != 2 {
		t.Fatalf("expected 2 a-leaves (one per walk), got %d: %s", got, out.Canonical())
	}
	// Virtual nodes never leak.
	if out.CountTag("v") != 0 {
		t.Error("virtual tag leaked")
	}
}

func TestPathCountNoPath(t *testing.T) {
	inst := relation.NewInstance(PathCountSchema())
	inst.Add("S", "s")
	inst.Add("T", "t")
	inst.Add("R", "s", "m")
	out, err := PathCountTransducer().Output(inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.CountTag("a") != 0 {
		t.Error("no walk to t, no a-leaf expected")
	}
}

func TestPathCountDiamondExponential(t *testing.T) {
	// Proposition 5(1): with virtual collection the number of a-leaves is
	// the number of walks, 2ⁿ on the diamond chain.
	tr := PathCountTransducer()
	for n := 1; n <= 6; n++ {
		inst := relation.NewInstance(PathCountSchema())
		DiamondChain(n).Rel("R").Each(func(tp value.Tuple) bool {
			inst.Add("R", string(tp[0]), string(tp[1]))
			return true
		})
		// Seed in front of the first hub so the first unfold step lands
		// on a000; the target is the last hub.
		inst.Add("S", "seed")
		inst.Add("R", "seed", "a000")
		inst.Add("T", fmt.Sprintf("a%03d", n))
		out, err := tr.Output(inst, pt.Options{MaxNodes: 2_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if got := out.CountTag("a"); got != 1<<n {
			t.Fatalf("n=%d: %d walks counted, want %d", n, got, 1<<n)
		}
	}
}

func TestFlagTransducer(t *testing.T) {
	s := relation.NewSchema().MustDeclare("E", 2)
	x, y := logic.Var("x"), logic.Var("y")
	// Sentence: E has a self-loop.
	sentence := logic.Ex([]logic.Var{x, y},
		logic.Conj(logic.R("E", x, y), logic.EqT(x, y)))
	tr := FlagTransducer(s, sentence)
	inst := relation.NewInstance(s)
	inst.Add("E", "a", "b")
	out, err := tr.Output(inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 1 {
		t.Errorf("no self-loop: expected bare root, got %s", out.Canonical())
	}
	inst.Add("E", "c", "c")
	out, err = tr.Output(inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 2 {
		t.Errorf("self-loop: expected r(a), got %s", out.Canonical())
	}
}
