package cq

import (
	"fmt"

	"ptx/internal/eval"
	"ptx/internal/logic"
	"ptx/internal/relation"
	"ptx/internal/value"
)

// MaxPartitionClasses bounds the number of equality classes a query may
// have before containment checking refuses (the number of canonical
// databases is the Bell number of the class count). Analysis queries in
// this repository stay far below the bound.
const MaxPartitionClasses = 12

// Contained decides Q1 ⊆ Q2 for conjunctive queries with ≠, following
// Klug's criterion: Q1 ⊆ Q2 iff for every identification of Q1's
// variables consistent with Q1's constraints, the frozen head of Q1 is
// in Q2 evaluated over the frozen (canonical) database. Identifications
// matter because ≠ in Q2 can distinguish merged and unmerged variables.
func Contained(q1, q2 *NF) (bool, error) {
	if len(q1.Head) != len(q2.Head) {
		return false, fmt.Errorf("cq: containment of different head widths %d vs %d", len(q1.Head), len(q2.Head))
	}
	if !q1.Satisfiable() {
		return true, nil // the empty query is contained in everything
	}
	return forEachCanonicalDB(q1, q2.Consts(), canonicalSchema(q1, q2), func(inst *relation.Instance, head value.Tuple) (bool, error) {
		return headInResult(q2, inst, head)
	})
}

// Equivalent decides Q1 ≡ Q2 (both containments).
func Equivalent(q1, q2 *NF) (bool, error) {
	c1, err := Contained(q1, q2)
	if err != nil || !c1 {
		return false, err
	}
	return Contained(q2, q1)
}

// UCQ is a union of conjunctive queries (all with the same head width).
type UCQ []*NF

// Satisfiable reports whether some disjunct is satisfiable.
func (u UCQ) Satisfiable() bool {
	for _, q := range u {
		if q.Satisfiable() {
			return true
		}
	}
	return false
}

// ContainedUCQ decides Q ⊆ ∪u.
func ContainedUCQ(q *NF, u UCQ) (bool, error) {
	if !q.Satisfiable() {
		return true, nil
	}
	var otherConsts []value.V
	for _, d := range u {
		otherConsts = append(otherConsts, d.Consts()...)
	}
	return forEachCanonicalDB(q, otherConsts, canonicalSchema(append([]*NF{q}, u...)...), func(inst *relation.Instance, head value.Tuple) (bool, error) {
		for _, d := range u {
			ok, err := headInResult(d, inst, head)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	})
}

// EquivalentUCQ decides ∪u1 ≡ ∪u2.
func EquivalentUCQ(u1, u2 UCQ) (bool, error) {
	for _, q := range u1 {
		ok, err := ContainedUCQ(q, u2)
		if err != nil || !ok {
			return false, err
		}
	}
	for _, q := range u2 {
		ok, err := ContainedUCQ(q, u1)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// headInResult evaluates q over inst and checks whether head is among
// the answers.
func headInResult(q *NF, inst *relation.Instance, head value.Tuple) (bool, error) {
	env := eval.NewEnv(inst)
	b, err := eval.Eval(q.Formula(), env)
	if err != nil {
		return false, err
	}
	// Build the expected assignment for q's head variables, honoring
	// constants and repeated variables in the head.
	want := make(map[logic.Var]value.V)
	for i, h := range q.Head {
		if prev, ok := want[h]; ok && prev != head[i] {
			return false, nil // repeated head var must repeat the value
		}
		want[h] = head[i]
	}
	idx := make(map[logic.Var]int, len(b.Vars))
	for i, v := range b.Vars {
		idx[v] = i
	}
	found := false
	b.Rel.Each(func(t value.Tuple) bool {
		for v, val := range want {
			i, ok := idx[v]
			if !ok {
				// Head var unconstrained by the body: any value matches.
				continue
			}
			if t[i] != val {
				return true
			}
		}
		found = true
		return false
	})
	return found, nil
}

// forEachCanonicalDB enumerates the canonical databases of q — one per
// consistent identification (partition) of q's equality classes — and
// calls check with the instance and frozen head. It returns true iff
// check holds for every canonical database. extraConsts are constants of
// the *other* side of the containment: q's variables must be allowed to
// coincide with them, so each becomes a pseudo-class variables may merge
// into.
func forEachCanonicalDB(q *NF, extraConsts []value.V, schema *relation.Schema, check func(*relation.Instance, value.Tuple) (bool, error)) (bool, error) {
	uf := q.buildClasses()
	for _, c := range extraConsts {
		uf.add(logic.Const(c))
	}
	vals, ok := classValues(q, uf)
	if !ok {
		return true, nil // unsatisfiable
	}
	// Collect class roots.
	rootSet := make(map[string]bool)
	var roots []string
	for k := range uf.parent {
		r := uf.find(k)
		if !rootSet[r] {
			rootSet[r] = true
			roots = append(roots, r)
		}
	}
	sortStrings(roots)
	if len(roots) > MaxPartitionClasses {
		return false, fmt.Errorf("cq: query has %d equality classes; containment bound is %d",
			len(roots), MaxPartitionClasses)
	}
	// Explicit ≠ pairs at class level.
	neq := make(map[[2]string]bool)
	for _, c := range q.Constraints {
		if c.Eq {
			continue
		}
		lr, rr := uf.find(termKey(c.L)), uf.find(termKey(c.R))
		neq[[2]string{lr, rr}] = true
		neq[[2]string{rr, lr}] = true
	}

	// Enumerate partitions of roots via restricted-growth strings.
	group := make([]int, len(roots))
	allOK := true
	var rec func(i, maxg int) (bool, error)
	rec = func(i, maxg int) (bool, error) {
		if !allOK {
			return false, nil
		}
		if i == len(roots) {
			okPart, err := tryPartition(q, uf, vals, neq, roots, group, maxg, schema, check)
			if err != nil {
				return false, err
			}
			if !okPart {
				allOK = false
			}
			return allOK, nil
		}
		for g := 0; g <= maxg; g++ {
			group[i] = g
			nm := maxg
			if g == maxg {
				nm = maxg + 1
			}
			if _, err := rec(i+1, nm); err != nil {
				return false, err
			}
			if !allOK {
				return false, nil
			}
		}
		return allOK, nil
	}
	if _, err := rec(0, 0); err != nil {
		return false, err
	}
	return allOK, nil
}

// tryPartition validates one identification and, if consistent, builds
// the canonical database and invokes check. Inconsistent partitions are
// skipped (they don't correspond to a valuation of Q1). It returns true
// if the partition was skipped or check held.
func tryPartition(q *NF, uf *classes, vals map[string]value.V, neq map[[2]string]bool,
	roots []string, group []int, ngroups int,
	schema *relation.Schema, check func(*relation.Instance, value.Tuple) (bool, error)) (bool, error) {

	// Consistency: no ≠ inside a group; at most one constant per group.
	groupVal := make(map[int]value.V)
	for i, r := range roots {
		if v, ok := vals[r]; ok {
			if prev, seen := groupVal[group[i]]; seen && prev != v {
				return true, nil // two constants merged: skip
			}
			groupVal[group[i]] = v
		}
	}
	for i := range roots {
		for j := i + 1; j < len(roots); j++ {
			if group[i] == group[j] && neq[[2]string{roots[i], roots[j]}] {
				return true, nil // ≠ violated: skip
			}
		}
	}
	// Distinct groups must receive distinct values; groups with distinct
	// constants already differ, fresh values are made unique below.
	// A ≠ between two groups holds automatically since values differ.

	// Assign a value to each group: its constant if any, else a fresh
	// value not colliding with any constant.
	groupOf := make(map[string]int, len(roots))
	for i, r := range roots {
		groupOf[r] = group[i]
	}
	taken := make(map[value.V]bool)
	for _, v := range groupVal {
		taken[v] = true
	}
	for _, v := range q.Consts() {
		taken[v] = true
	}
	next := 0
	valueOf := make([]value.V, ngroups)
	for g := 0; g < ngroups; g++ {
		if v, ok := groupVal[g]; ok {
			valueOf[g] = v
			continue
		}
		for {
			cand := value.V(fmt.Sprintf("u%d", next))
			next++
			if !taken[cand] {
				taken[cand] = true
				valueOf[g] = cand
				break
			}
		}
	}
	valOfTerm := func(t logic.Term) value.V {
		return valueOf[groupOf[uf.find(termKey(t))]]
	}

	// Freeze the body into an instance.
	inst := relation.NewInstance(schema)
	for _, a := range q.Atoms {
		tup := make(value.Tuple, len(a.Args))
		for i, t := range a.Args {
			tup[i] = valOfTerm(t)
		}
		inst.Rel(a.Rel).Add(tup)
	}
	head := make(value.Tuple, len(q.Head))
	for i, h := range q.Head {
		head[i] = valOfTerm(h)
	}
	return check(inst, head)
}

// canonicalSchema derives a schema covering every relation mentioned in
// the query.
func canonicalSchema(qs ...*NF) *relation.Schema {
	s := relation.NewSchema()
	for _, q := range qs {
		for _, a := range q.Atoms {
			s.MustDeclare(a.Rel, len(a.Args))
		}
	}
	return s
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// EvalUCQ evaluates a union of conjunctive queries over an instance,
// returning the union of the disjuncts' answer relations (columns in
// head order). All disjuncts must share one head width.
func EvalUCQ(u UCQ, inst *relation.Instance) (*relation.Relation, error) {
	if len(u) == 0 {
		return nil, fmt.Errorf("cq: empty UCQ has no width")
	}
	width := len(u[0].Head)
	out := relation.New(width)
	for _, q := range u {
		if len(q.Head) != width {
			return nil, fmt.Errorf("cq: UCQ disjunct widths differ: %d vs %d", len(q.Head), width)
		}
		env := eval.NewEnv(inst)
		b, err := eval.Eval(q.Formula(), env)
		if err != nil {
			return nil, err
		}
		idx := make(map[logic.Var]int, len(b.Vars))
		for i, v := range b.Vars {
			idx[v] = i
		}
		b.Rel.Each(func(t value.Tuple) bool {
			h := make(value.Tuple, width)
			ok := true
			for i, hv := range q.Head {
				ci, bound := idx[hv]
				if !bound {
					ok = false // head var unconstrained: skip defensively
					break
				}
				h[i] = t[ci]
			}
			if ok {
				out.Add(h)
			}
			return true
		})
	}
	return out, nil
}
