package cq

import (
	"testing"

	"ptx/internal/logic"
)

var (
	x  = logic.Var("x")
	y  = logic.Var("y")
	z  = logic.Var("z")
	w  = logic.Var("w")
	cA = logic.Const("a")
	cB = logic.Const("b")
)

func TestNormalizeFlattens(t *testing.T) {
	f := logic.Ex([]logic.Var{y}, logic.Conj(
		logic.R("E", x, y),
		logic.Ex([]logic.Var{z}, logic.Conj(logic.R("E", y, z), logic.NeqT(x, z))),
	))
	nf, err := Normalize([]logic.Var{x}, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(nf.Atoms) != 2 || len(nf.Constraints) != 1 {
		t.Fatalf("normalize: %s", nf)
	}
}

func TestNormalizeRenamesApart(t *testing.T) {
	// Two scopes binding the same variable name must not collide:
	// ∃y E(x,y) ∧ ∃y F(x,y).
	f := logic.Conj(
		logic.Ex([]logic.Var{y}, logic.R("E", x, y)),
		logic.Ex([]logic.Var{y}, logic.R("F", x, y)),
	)
	nf, err := Normalize([]logic.Var{x}, f)
	if err != nil {
		t.Fatal(err)
	}
	a0 := nf.Atoms[0].Args[1].(logic.Var)
	a1 := nf.Atoms[1].Args[1].(logic.Var)
	if a0 == a1 {
		t.Fatalf("bound variables not renamed apart: %s", nf)
	}
}

func TestNormalizeRejectsFO(t *testing.T) {
	if _, err := Normalize([]logic.Var{x}, &logic.Not{F: logic.R("E", x)}); err == nil {
		t.Fatal("negation should be rejected")
	}
	if _, err := Normalize([]logic.Var{x}, logic.Disj(logic.R("E", x), logic.R("F", x))); err == nil {
		t.Fatal("disjunction should be rejected")
	}
}

func TestSatisfiable(t *testing.T) {
	cases := []struct {
		name string
		nf   *NF
		want bool
	}{
		{"plain atom", MustNormalize([]logic.Var{x}, logic.R("E", x, x)), true},
		{"x=a ∧ x=b", MustNormalize([]logic.Var{x},
			logic.Conj(logic.EqT(x, cA), logic.EqT(x, cB))), false},
		{"x=a ∧ x≠a", MustNormalize([]logic.Var{x},
			logic.Conj(logic.EqT(x, cA), logic.NeqT(x, cA))), false},
		{"x=y ∧ y=z ∧ x≠z", MustNormalize([]logic.Var{x, z},
			logic.Ex([]logic.Var{y}, logic.Conj(logic.EqT(x, y), logic.EqT(y, z), logic.NeqT(x, z)))), false},
		{"x=a ∧ y=b ∧ x≠y", MustNormalize([]logic.Var{x, y},
			logic.Conj(logic.EqT(x, cA), logic.EqT(y, cB), logic.NeqT(x, y))), true},
		{"x=a ∧ y=a ∧ x≠y", MustNormalize([]logic.Var{x, y},
			logic.Conj(logic.EqT(x, cA), logic.EqT(y, cA), logic.NeqT(x, y))), false},
		{"x≠x", MustNormalize([]logic.Var{x}, logic.NeqT(x, x)), false},
		{"false constant", MustNormalize(nil, logic.False), false},
		{"true constant", MustNormalize(nil, logic.True), true},
	}
	for _, c := range cases {
		if got := c.nf.Satisfiable(); got != c.want {
			t.Errorf("%s: Satisfiable = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestCompletionOnHead(t *testing.T) {
	// ∃y (x=y ∧ y=z ∧ y≠'a'): completion must contain x=z and x≠'a', z≠'a'.
	nf := MustNormalize([]logic.Var{x, z},
		logic.Ex([]logic.Var{y}, logic.Conj(logic.EqT(x, y), logic.EqT(y, z), logic.NeqT(y, cA))))
	comp := nf.CompletionOnHead()
	has := func(s string) bool {
		for _, c := range comp {
			if c.String() == s {
				return true
			}
		}
		return false
	}
	if !has("x=z") {
		t.Errorf("completion misses x=z: %v", comp)
	}
	if !has("x!='a'") {
		t.Errorf("completion misses x!='a': %v", comp)
	}
}

func TestCompose(t *testing.T) {
	// inner(u) ≡ ∃v E(u,v) ∧ u≠'a'; outer(x) ≡ ∃y Reg(y) ∧ E(y,x).
	u, v := logic.Var("u"), logic.Var("v")
	inner := MustNormalize([]logic.Var{u},
		logic.Ex([]logic.Var{v}, logic.Conj(logic.R("E", u, v), logic.NeqT(u, cA))))
	outer := MustNormalize([]logic.Var{x},
		logic.Ex([]logic.Var{y}, logic.Conj(logic.R("Reg", y), logic.R("E", y, x))))
	comp, err := Compose(outer, "Reg", inner)
	if err != nil {
		t.Fatal(err)
	}
	// Composition: ∃y,v' E(y,v') ∧ y≠'a' ∧ E(y,x).
	if len(comp.Atoms) != 2 || len(comp.Constraints) != 1 {
		t.Fatalf("composition: %s", comp)
	}
	if comp.UsesRel("Reg") {
		t.Fatalf("Reg should be eliminated: %s", comp)
	}
}

func TestComposeMultipleOccurrences(t *testing.T) {
	u := logic.Var("u")
	inner := MustNormalize([]logic.Var{u},
		logic.Ex([]logic.Var{w}, logic.R("E", u, w)))
	outer := MustNormalize([]logic.Var{x},
		logic.Ex([]logic.Var{y}, logic.Conj(logic.R("Reg", x), logic.R("Reg", y), logic.NeqT(x, y))))
	comp, err := Compose(outer, "Reg", inner)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Atoms) != 2 {
		t.Fatalf("both occurrences should expand: %s", comp)
	}
	// Fresh variables of the two occurrences must differ.
	v1 := comp.Atoms[0].Args[1].(logic.Var)
	v2 := comp.Atoms[1].Args[1].(logic.Var)
	if v1 == v2 {
		t.Fatalf("occurrences share bound variables: %s", comp)
	}
}

func TestContainmentBasic(t *testing.T) {
	// E(x,y)∧E(y,z) head (x,z)  ⊆  ∃y E(x,y) ∧ ∃w E(w,z)? yes.
	q1 := MustNormalize([]logic.Var{x, z},
		logic.Ex([]logic.Var{y}, logic.Conj(logic.R("E", x, y), logic.R("E", y, z))))
	q2 := MustNormalize([]logic.Var{x, z}, logic.Conj(
		logic.Ex([]logic.Var{y}, logic.R("E", x, y)),
		logic.Ex([]logic.Var{w}, logic.R("E", w, z)),
	))
	ok, err := Contained(q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("2-path should be contained in endpoints query")
	}
	// Converse fails.
	ok, err = Contained(q2, q1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("endpoints query should not be contained in 2-path")
	}
}

func TestContainmentWithNeq(t *testing.T) {
	// Q1: E(x,y) ∧ x≠y ⊆ Q2: E(x,y). Converse fails.
	q1 := MustNormalize([]logic.Var{x, y}, logic.Conj(logic.R("E", x, y), logic.NeqT(x, y)))
	q2 := MustNormalize([]logic.Var{x, y}, logic.R("E", x, y))
	if ok, _ := Contained(q1, q2); !ok {
		t.Error("Q1 ⊆ Q2 expected")
	}
	if ok, _ := Contained(q2, q1); ok {
		t.Error("Q2 ⊄ Q1 expected (Q2 admits x=y)")
	}
}

func TestContainmentNeqNeedsIdentifications(t *testing.T) {
	// The classic case where the single canonical database is not
	// enough: Q1(x,y) ≡ E(x,y); Q2(x,y) ≡ E(x,y) ∧ x≠y. Not contained —
	// but also Q3(x,y) ≡ E(x,y)∧(nothing) vs a union-like situation.
	// Here: Q1 ⊆ Q2 fails exactly on the identification x=y.
	q1 := MustNormalize([]logic.Var{x, y}, logic.R("E", x, y))
	q2 := MustNormalize([]logic.Var{x, y}, logic.Conj(logic.R("E", x, y), logic.NeqT(x, y)))
	if ok, _ := Contained(q1, q2); ok {
		t.Error("containment must test the x=y identification")
	}
}

func TestEquivalentRenamedCopies(t *testing.T) {
	q1 := MustNormalize([]logic.Var{x},
		logic.Ex([]logic.Var{y}, logic.Conj(logic.R("E", x, y), logic.NeqT(x, y))))
	u, v := logic.Var("u"), logic.Var("v")
	q2raw := MustNormalize([]logic.Var{u},
		logic.Ex([]logic.Var{v}, logic.Conj(logic.R("E", u, v), logic.NeqT(u, v))))
	// Align head names: containment requires same width, variables are
	// positional through the head.
	ok, err := Equivalent(q1, q2raw)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("α-renamed queries should be equivalent")
	}
}

func TestEquivalentRedundantAtom(t *testing.T) {
	q1 := MustNormalize([]logic.Var{x}, logic.Ex([]logic.Var{y}, logic.R("E", x, y)))
	// Same plus a redundant second copy of the atom.
	q2 := MustNormalize([]logic.Var{x}, logic.Ex([]logic.Var{y, z},
		logic.Conj(logic.R("E", x, y), logic.R("E", x, z))))
	ok, err := Equivalent(q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("redundant atom should not change the query")
	}
}

func TestUCQContainment(t *testing.T) {
	// E(x,'a') ∪ E(x,'b') contains E(x,'a'); and E(x,y) is not contained
	// in the union.
	qa := MustNormalize([]logic.Var{x}, logic.Ex([]logic.Var{y}, logic.Conj(logic.R("E", x, y), logic.EqT(y, cA))))
	qb := MustNormalize([]logic.Var{x}, logic.Ex([]logic.Var{y}, logic.Conj(logic.R("E", x, y), logic.EqT(y, cB))))
	u := UCQ{qa, qb}
	if ok, _ := ContainedUCQ(qa, u); !ok {
		t.Error("disjunct should be contained in union")
	}
	free := MustNormalize([]logic.Var{x}, logic.Ex([]logic.Var{y}, logic.R("E", x, y)))
	if ok, _ := ContainedUCQ(free, u); ok {
		t.Error("unconstrained query should not be contained")
	}
	// A query contained in the union but in neither disjunct alone would
	// need disjunctive reasoning; here test union symmetry instead.
	ok, err := EquivalentUCQ(UCQ{qa, qb}, UCQ{qb, qa})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("unions should be order-insensitive")
	}
}

func TestUCQProperUnionContainment(t *testing.T) {
	// E(x) with x='a' ∨-split: Q ≡ R(x) ∧ x='a' is in {R(x)∧x='a', R(x)∧x='b'};
	// and the union strictly contains each disjunct.
	qa := MustNormalize([]logic.Var{x}, logic.Conj(logic.R("R1", x), logic.EqT(x, cA)))
	qb := MustNormalize([]logic.Var{x}, logic.Conj(logic.R("R1", x), logic.NeqT(x, cA)))
	all := MustNormalize([]logic.Var{x}, logic.R("R1", x))
	// all ⊆ qa ∪ qb: every R1 value is either 'a' or not.
	ok, err := ContainedUCQ(all, UCQ{qa, qb})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("R1(x) ⊆ (x='a' branch) ∪ (x≠'a' branch) — needs identification reasoning")
	}
}

func TestReduce(t *testing.T) {
	// Head (x,y,z) with y='a' and z=x: reduced head is just (x).
	nf := MustNormalize([]logic.Var{x, y, z},
		logic.Conj(logic.R("E", x, z), logic.EqT(y, cA), logic.EqT(z, x)))
	r := nf.Reduce()
	if len(r.Head) != 1 || r.Head[0] != x {
		t.Fatalf("Reduce head = %v, want [x]", r.Head)
	}
}

func TestReduceDropsNonAtomVars(t *testing.T) {
	// Head variable w constrained only by w≠'a' (not in any atom) is a
	// "constant" class per case (ii) and is dropped.
	nf := MustNormalize([]logic.Var{x, w},
		logic.Conj(logic.R("E", x, x), logic.NeqT(w, cA)))
	r := nf.Reduce()
	if len(r.Head) != 1 || r.Head[0] != x {
		t.Fatalf("Reduce head = %v, want [x]", r.Head)
	}
}

func TestCEquivalent(t *testing.T) {
	// Q1(x) ≡ E(x); Q2(x,c) ≡ E(x) ∧ c='k' — same cardinalities.
	q1 := MustNormalize([]logic.Var{x}, logic.R("R1", x))
	c := logic.Var("c")
	q2 := MustNormalize([]logic.Var{x, c}, logic.Conj(logic.R("R1", x), logic.EqT(c, logic.Const("k"))))
	ok, err := CEquivalent(q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("padding with a constant column preserves cardinality")
	}
	// Q3(x,y) ≡ R1(x) ∧ R1(y): genuinely wider.
	q3 := MustNormalize([]logic.Var{x, y}, logic.Conj(logic.R("R1", x), logic.R("R1", y)))
	ok, err = CEquivalent(q1, q3)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("R1×R1 has squared cardinality, not c-equivalent to R1")
	}
}

func TestCEquivalentUnsatisfiable(t *testing.T) {
	dead1 := MustNormalize([]logic.Var{x}, logic.Conj(logic.EqT(x, cA), logic.NeqT(x, cA)))
	dead2 := MustNormalize([]logic.Var{x, y}, logic.Conj(logic.R("E", x, y), logic.EqT(x, cA), logic.EqT(x, cB)))
	ok, err := CEquivalent(dead1, dead2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("two unsatisfiable queries are c-equivalent")
	}
	live := MustNormalize([]logic.Var{x}, logic.R("R1", x))
	if ok, _ := CEquivalent(dead1, live); ok {
		t.Error("dead vs live cannot be c-equivalent")
	}
}

func TestPathSatisfiableMatchesBruteForce(t *testing.T) {
	u := logic.Var("u")
	// Path A: start selects E-pairs with x≠'a'; step walks one E edge
	// from the register — satisfiable.
	start := MustNormalize([]logic.Var{x},
		logic.Ex([]logic.Var{y}, logic.Conj(logic.R("E", x, y), logic.NeqT(x, cA))))
	step := MustNormalize([]logic.Var{u},
		logic.Ex([]logic.Var{v}, logic.Conj(logic.R("Reg", v), logic.R("E", v, u))))
	pathA := []*NF{start, step, step}
	// Path B: start forces x='a', step requires the register ≠ 'a' — dead.
	startA := MustNormalize([]logic.Var{x}, logic.Conj(logic.R("R1", x), logic.EqT(x, cA)))
	stepDead := MustNormalize([]logic.Var{u},
		logic.Ex([]logic.Var{v}, logic.Conj(logic.R("Reg", v), logic.NeqT(v, cA), logic.R("E", v, u))))
	pathB := []*NF{startA, stepDead}

	for i, path := range [][]*NF{pathA, pathB} {
		fast, err := PathSatisfiable(path, "Reg")
		if err != nil {
			t.Fatal(err)
		}
		full, err := ComposeAll(path, "Reg")
		if err != nil {
			t.Fatal(err)
		}
		slow := full.Satisfiable()
		if fast != slow {
			t.Errorf("path %d: PathSatisfiable=%v, brute force=%v (%s)", i, fast, slow, full)
		}
		if i == 0 && !fast {
			t.Error("path A should be satisfiable")
		}
		if i == 1 && fast {
			t.Error("path B should be dead")
		}
	}
}

func TestPathSatisfiablePropagatesConstraints(t *testing.T) {
	// start: head x with x='a'. step1: head u = register value (copies
	// x). step2: requires register ≠ 'a'. The unsatisfiability is only
	// visible through the H̄ propagation across two steps.
	start := MustNormalize([]logic.Var{x}, logic.Conj(logic.R("R1", x), logic.EqT(x, cA)))
	u := logic.Var("u")
	copyStep := MustNormalize([]logic.Var{u}, logic.R("Reg", u))
	deadStep := MustNormalize([]logic.Var{u}, logic.Conj(logic.R("Reg", u), logic.NeqT(u, cA)))
	ok, err := PathSatisfiable([]*NF{start, copyStep, deadStep}, "Reg")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("constraint x='a' must propagate through the copy step")
	}
}

var v = logic.Var("v")
