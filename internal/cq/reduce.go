package cq

import (
	"ptx/internal/logic"
)

// Reduce computes the reduced version Qʳ of the query (Section 5.2,
// discussion before Claim 3): head variables whose equality class is
// "constant" — it carries a constant value, or none of its variables
// occur in a relational atom — are dropped, and of several head
// variables in one equality class only the first survives. Body terms
// are rewritten to class representatives (the constant value if the
// class has one).
//
// Claim 3 then states Q1 ≡c Q2 (equal answer cardinalities on every
// instance) iff Q1ʳ ≡ Q2ʳ.
func (nf *NF) Reduce() *NF {
	uf := nf.buildClasses()
	vals, ok := classValues(nf, uf)
	if !ok {
		// Unsatisfiable: the reduced query is the query itself; callers
		// check satisfiability separately.
		return nf.Clone()
	}
	// Which classes occur in atoms?
	inAtoms := make(map[string]bool)
	for _, a := range nf.Atoms {
		for _, t := range a.Args {
			inAtoms[uf.find(termKey(t))] = true
		}
	}
	// Representative term per class: the constant if it has a value,
	// else the first head variable of the class, else the first variable
	// seen overall.
	rep := make(map[string]logic.Term)
	for root, v := range vals {
		rep[root] = logic.Const(v)
	}
	for _, v := range nf.Vars() {
		root := uf.find(termKey(v))
		if _, ok := rep[root]; !ok {
			rep[root] = v
		}
	}
	repOf := func(t logic.Term) logic.Term {
		if r, ok := rep[uf.find(termKey(t))]; ok {
			return r
		}
		return t
	}

	out := &NF{}
	seenHeadClass := make(map[string]bool)
	for _, h := range nf.Head {
		root := uf.find(termKey(h))
		if _, isConst := vals[root]; isConst {
			continue // case (i): class has a value
		}
		if !inAtoms[root] {
			continue // case (ii): class absent from all atoms
		}
		if seenHeadClass[root] {
			continue // duplicate head variable within a class
		}
		seenHeadClass[root] = true
		// The representative for a head class is the head variable itself
		// (first occurrence) so the head stays a variable list.
		rep[root] = h
		out.Head = append(out.Head, h)
	}
	for _, a := range nf.Atoms {
		args := make([]logic.Term, len(a.Args))
		for i, t := range a.Args {
			args[i] = repOf(t)
		}
		out.Atoms = append(out.Atoms, &logic.Atom{Rel: a.Rel, Args: args})
	}
	for _, c := range nf.Constraints {
		l, r := repOf(c.L), repOf(c.R)
		if c.Eq {
			if termKey(l) == termKey(r) {
				continue // trivial after rewriting
			}
		}
		out.Constraints = append(out.Constraints, Constraint{L: l, R: r, Eq: c.Eq})
	}
	return out
}

// CEquivalent decides the c-equivalence Q1 ≡c Q2 of Claim 3 — whether
// |Q1(I)| = |Q2(I)| for every instance I — by reducing both queries and
// testing ordinary equivalence. Reduced queries of different widths are
// never c-equivalent.
func CEquivalent(q1, q2 *NF) (bool, error) {
	s1, s2 := q1.Satisfiable(), q2.Satisfiable()
	if s1 != s2 {
		return false, nil
	}
	if !s1 {
		return true, nil // both always-empty
	}
	r1, r2 := q1.Reduce(), q2.Reduce()
	if len(r1.Head) != len(r2.Head) {
		return false, nil
	}
	return Equivalent(r1, r2)
}

// CEquivalentUCQ extends c-equivalence to unions of conjunctive queries
// (the form needed by Claim 4): the unions are reduced disjunct-wise and
// compared as UCQs. All disjuncts of a union must reduce to the same
// head width; mixed widths indicate the unions cannot have equal
// cardinalities on all instances.
func CEquivalentUCQ(u1, u2 UCQ) (bool, error) {
	red := func(u UCQ) (UCQ, int, bool) {
		var out UCQ
		width := -1
		for _, q := range u {
			if !q.Satisfiable() {
				continue
			}
			r := q.Reduce()
			if width == -1 {
				width = len(r.Head)
			} else if width != len(r.Head) {
				return nil, -2, false
			}
			out = append(out, r)
		}
		return out, width, true
	}
	r1, w1, ok1 := red(u1)
	r2, w2, ok2 := red(u2)
	if !ok1 || !ok2 {
		return false, nil
	}
	if len(r1) == 0 && len(r2) == 0 {
		return true, nil
	}
	if len(r1) == 0 || len(r2) == 0 || w1 != w2 {
		return false, nil
	}
	return EquivalentUCQ(r1, r2)
}
