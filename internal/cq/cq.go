// Package cq implements the conjunctive-query algorithms behind the
// paper's decidability results:
//
//   - the PTIME satisfiability test of Theorem 1(1) via equality-class
//     completion;
//   - the constraint completion H̄ and polynomial path-composition
//     satisfiability used by the NP emptiness algorithm for
//     PT(CQ, S, virtual);
//   - query composition (substituting a query for a register atom),
//     the building block of every path-based analysis;
//   - containment and equivalence of CQ with ≠ via canonical databases
//     over all consistent identifications of variables (Klug's
//     criterion), and the reduced queries / c-equivalence of Claim 3;
//   - unions of conjunctive queries (UCQ) and their containment, used by
//     Proposition 6(1) and the nonrecursive equivalence checker.
package cq

import (
	"fmt"
	"sort"
	"strings"

	"ptx/internal/logic"
	"ptx/internal/value"
)

// Constraint is an (in)equality between two terms.
type Constraint struct {
	L, R logic.Term
	Eq   bool // true for =, false for ≠
}

func (c Constraint) String() string {
	op := "!="
	if c.Eq {
		op = "="
	}
	return c.L.String() + op + c.R.String()
}

// NF is a conjunctive query in normal form: head variables x̄ and a body
// ∃(vars not in head) ⋀ Atoms ∧ ⋀ Constraints. Every variable not in
// Head is implicitly existentially quantified.
type NF struct {
	Head        []logic.Var
	Atoms       []*logic.Atom
	Constraints []Constraint
}

// Normalize flattens a CQ formula (atoms, =, ≠, ∧, ∃ only) into normal
// form, renaming bound variables apart so that distinct quantifier
// scopes never clash. The given head variables stay fixed.
func Normalize(head []logic.Var, f logic.Formula) (*NF, error) {
	nf := &NF{Head: append([]logic.Var{}, head...)}
	fresh := newFreshener(head, f)
	if err := flatten(f, map[logic.Var]logic.Term{}, fresh, nf); err != nil {
		return nil, err
	}
	return nf, nil
}

// MustNormalize is Normalize that panics on non-CQ input.
func MustNormalize(head []logic.Var, f logic.Formula) *NF {
	nf, err := Normalize(head, f)
	if err != nil {
		panic(err)
	}
	return nf
}

type freshener struct {
	used map[logic.Var]bool
	n    int
}

func newFreshener(head []logic.Var, f logic.Formula) *freshener {
	fr := &freshener{used: map[logic.Var]bool{}}
	for _, v := range head {
		fr.used[v] = true
	}
	for _, v := range logic.FreeVars(f) {
		fr.used[v] = true
	}
	return fr
}

func (fr *freshener) fresh(base logic.Var) logic.Var {
	if !fr.used[base] {
		fr.used[base] = true
		return base
	}
	for {
		fr.n++
		cand := logic.Var(fmt.Sprintf("%s_%d", base, fr.n))
		if !fr.used[cand] {
			fr.used[cand] = true
			return cand
		}
	}
}

func flatten(f logic.Formula, ren map[logic.Var]logic.Term, fr *freshener, nf *NF) error {
	switch g := f.(type) {
	case *logic.Truth:
		if !g.B {
			// ⊥ as an unsatisfiable constraint on a throwaway variable.
			v := fr.fresh("false")
			nf.Constraints = append(nf.Constraints,
				Constraint{L: v, R: logic.Const("0"), Eq: true},
				Constraint{L: v, R: logic.Const("0"), Eq: false})
		}
		return nil
	case *logic.Atom:
		args := make([]logic.Term, len(g.Args))
		for i, t := range g.Args {
			args[i] = renTerm(t, ren)
		}
		nf.Atoms = append(nf.Atoms, &logic.Atom{Rel: g.Rel, Args: args})
		return nil
	case *logic.Eq:
		nf.Constraints = append(nf.Constraints, Constraint{L: renTerm(g.L, ren), R: renTerm(g.R, ren), Eq: true})
		return nil
	case *logic.Neq:
		nf.Constraints = append(nf.Constraints, Constraint{L: renTerm(g.L, ren), R: renTerm(g.R, ren), Eq: false})
		return nil
	case *logic.And:
		if err := flatten(g.L, ren, fr, nf); err != nil {
			return err
		}
		return flatten(g.R, ren, fr, nf)
	case *logic.Exists:
		inner := make(map[logic.Var]logic.Term, len(ren)+len(g.Bound))
		for k, v := range ren {
			inner[k] = v
		}
		for _, v := range g.Bound {
			inner[v] = fr.fresh(v)
		}
		return flatten(g.F, inner, fr, nf)
	default:
		return fmt.Errorf("cq: %T is not a conjunctive-query construct in %s", f, f)
	}
}

func renTerm(t logic.Term, ren map[logic.Var]logic.Term) logic.Term {
	if v, ok := t.(logic.Var); ok {
		if r, ok := ren[v]; ok {
			return r
		}
	}
	return t
}

// Vars returns all variables of the query (head first, then body
// existentials in first-occurrence order).
func (nf *NF) Vars() []logic.Var {
	seen := make(map[logic.Var]bool)
	var out []logic.Var
	add := func(t logic.Term) {
		if v, ok := t.(logic.Var); ok && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, v := range nf.Head {
		add(v)
	}
	for _, a := range nf.Atoms {
		for _, t := range a.Args {
			add(t)
		}
	}
	for _, c := range nf.Constraints {
		add(c.L)
		add(c.R)
	}
	return out
}

// Consts returns all constants of the query, sorted.
func (nf *NF) Consts() []value.V {
	seen := make(map[value.V]bool)
	add := func(t logic.Term) {
		if c, ok := t.(logic.Const); ok {
			seen[value.V(c)] = true
		}
	}
	for _, a := range nf.Atoms {
		for _, t := range a.Args {
			add(t)
		}
	}
	for _, c := range nf.Constraints {
		add(c.L)
		add(c.R)
	}
	out := make([]value.V, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	value.SortValues(out)
	return out
}

// Formula converts the normal form back to a logic.Formula with the
// body existentials quantified explicitly.
func (nf *NF) Formula() logic.Formula {
	var parts []logic.Formula
	for _, a := range nf.Atoms {
		parts = append(parts, a)
	}
	for _, c := range nf.Constraints {
		if c.Eq {
			parts = append(parts, logic.EqT(c.L, c.R))
		} else {
			parts = append(parts, logic.NeqT(c.L, c.R))
		}
	}
	body := logic.Conj(parts...)
	headSet := make(map[logic.Var]bool, len(nf.Head))
	for _, v := range nf.Head {
		headSet[v] = true
	}
	var bound []logic.Var
	for _, v := range nf.Vars() {
		if !headSet[v] {
			bound = append(bound, v)
		}
	}
	return logic.Ex(bound, body)
}

// Clone returns an independent deep copy.
func (nf *NF) Clone() *NF {
	c := &NF{Head: append([]logic.Var{}, nf.Head...)}
	for _, a := range nf.Atoms {
		c.Atoms = append(c.Atoms, &logic.Atom{Rel: a.Rel, Args: append([]logic.Term{}, a.Args...)})
	}
	c.Constraints = append(c.Constraints, nf.Constraints...)
	return c
}

// String renders the query for diagnostics.
func (nf *NF) String() string {
	parts := make([]string, 0, len(nf.Atoms)+len(nf.Constraints))
	for _, a := range nf.Atoms {
		parts = append(parts, a.String())
	}
	for _, c := range nf.Constraints {
		parts = append(parts, c.String())
	}
	heads := make([]string, len(nf.Head))
	for i, h := range nf.Head {
		heads[i] = string(h)
	}
	return fmt.Sprintf("(%s) <- %s", strings.Join(heads, ","), strings.Join(parts, " & "))
}

// --- Satisfiability (Theorem 1(1)) -----------------------------------

// classes is a union-find over terms keyed by a canonical string.
type classes struct {
	parent map[string]string
	term   map[string]logic.Term
}

func termKey(t logic.Term) string {
	switch u := t.(type) {
	case logic.Var:
		return "v:" + string(u)
	case logic.Const:
		return "c:" + string(u)
	}
	panic("cq: unknown term")
}

func newClasses() *classes {
	return &classes{parent: map[string]string{}, term: map[string]logic.Term{}}
}

func (c *classes) add(t logic.Term) string {
	k := termKey(t)
	if _, ok := c.parent[k]; !ok {
		c.parent[k] = k
		c.term[k] = t
	}
	return k
}

func (c *classes) find(k string) string {
	for c.parent[k] != k {
		c.parent[k] = c.parent[c.parent[k]]
		k = c.parent[k]
	}
	return k
}

func (c *classes) union(a, b string) {
	ra, rb := c.find(a), c.find(b)
	if ra != rb {
		c.parent[ra] = rb
	}
}

// buildClasses runs union-find over the equalities of the query and
// registers every term.
func (nf *NF) buildClasses() *classes {
	uf := newClasses()
	for _, v := range nf.Vars() {
		uf.add(v)
	}
	for _, a := range nf.Atoms {
		for _, t := range a.Args {
			uf.add(t)
		}
	}
	for _, c := range nf.Constraints {
		lk, rk := uf.add(c.L), uf.add(c.R)
		if c.Eq {
			uf.union(lk, rk)
		}
	}
	return uf
}

// classValue returns the constant value of the class containing root,
// if any; an error signals two distinct constants in one class.
func classValues(nf *NF, uf *classes) (map[string]value.V, bool) {
	vals := make(map[string]value.V)
	for k, t := range uf.term {
		c, ok := t.(logic.Const)
		if !ok {
			continue
		}
		root := uf.find(k)
		if prev, seen := vals[root]; seen && prev != value.V(c) {
			return nil, false // two distinct constants equated
		}
		vals[root] = value.V(c)
	}
	return vals, true
}

// Satisfiable implements the quadratic satisfiability check of
// Theorem 1(1): compute the equality classes, then reject iff a class
// contains two distinct constants, or an inequality links a class to
// itself, or two classes carrying the same constant are forced apart
// while being the same class — i.e. any ≠ whose two sides fall in one
// class.
func (nf *NF) Satisfiable() bool {
	uf := nf.buildClasses()
	vals, ok := classValues(nf, uf)
	if !ok {
		return false
	}
	for _, c := range nf.Constraints {
		if c.Eq {
			continue
		}
		lr, rr := uf.find(termKey(c.L)), uf.find(termKey(c.R))
		if lr == rr {
			return false
		}
		lv, lok := vals[lr]
		rv, rok := vals[rr]
		if lok && rok && lv == rv {
			return false
		}
	}
	return true
}

// CompletionOnHead computes H̄: every (in)equality among head terms and
// constants entailed by the query's constraints — the completion used by
// the NP path-satisfiability algorithm of Theorem 1(1)'s upper-bound
// proof. The result is expressed over the head variables (and constants).
func (nf *NF) CompletionOnHead() []Constraint {
	uf := nf.buildClasses()
	vals, ok := classValues(nf, uf)
	if !ok {
		return []Constraint{{L: nf.headTerm(0), R: nf.headTerm(0), Eq: false}}
	}
	var out []Constraint
	// Equalities among head variables and with constants.
	for i, hi := range nf.Head {
		ri := uf.find(termKey(hi))
		if v, okv := vals[ri]; okv {
			out = append(out, Constraint{L: hi, R: logic.Const(v), Eq: true})
		}
		for j := i + 1; j < len(nf.Head); j++ {
			hj := nf.Head[j]
			rj := uf.find(termKey(hj))
			if ri == rj {
				out = append(out, Constraint{L: hi, R: hj, Eq: true})
			}
		}
	}
	// Inequalities: explicit ≠ lifted to class level, plus distinct
	// constant values.
	neq := make(map[[2]string]bool)
	for _, c := range nf.Constraints {
		if c.Eq {
			continue
		}
		lr, rr := uf.find(termKey(c.L)), uf.find(termKey(c.R))
		neq[[2]string{lr, rr}] = true
		neq[[2]string{rr, lr}] = true
	}
	for i, hi := range nf.Head {
		ri := uf.find(termKey(hi))
		for j := i + 1; j < len(nf.Head); j++ {
			hj := nf.Head[j]
			rj := uf.find(termKey(hj))
			if ri == rj {
				continue
			}
			vi, iok := vals[ri]
			vj, jok := vals[rj]
			if neq[[2]string{ri, rj}] || (iok && jok && vi != vj) {
				out = append(out, Constraint{L: hi, R: hj, Eq: false})
			}
		}
		// Head ≠ constant facts.
		for root, v := range vals {
			if root == ri {
				continue
			}
			if neq[[2]string{ri, root}] {
				out = append(out, Constraint{L: hi, R: logic.Const(v), Eq: false})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

func (nf *NF) headTerm(i int) logic.Term {
	if i < len(nf.Head) {
		return nf.Head[i]
	}
	return logic.Const("0")
}

// ConstraintsFormula renders a constraint list as a conjunction.
func ConstraintsFormula(cs []Constraint) logic.Formula {
	parts := make([]logic.Formula, len(cs))
	for i, c := range cs {
		if c.Eq {
			parts[i] = logic.EqT(c.L, c.R)
		} else {
			parts[i] = logic.NeqT(c.L, c.R)
		}
	}
	return logic.Conj(parts...)
}

// --- Composition ------------------------------------------------------

// Compose substitutes inner for every atom over regName in outer:
// each occurrence Reg(t̄) becomes inner's body with inner's head
// identified with t̄ (bound variables freshened per occurrence). The
// result is the composed query Q_outer ∘ Q_inner in normal form.
func Compose(outer *NF, regName string, inner *NF) (*NF, error) {
	out := &NF{Head: append([]logic.Var{}, outer.Head...)}
	out.Constraints = append(out.Constraints, outer.Constraints...)
	fr := newComposeFreshener(outer, inner)
	occurrence := 0
	for _, a := range outer.Atoms {
		if a.Rel != regName {
			out.Atoms = append(out.Atoms, a)
			continue
		}
		if len(a.Args) != len(inner.Head) {
			return nil, fmt.Errorf("cq: %s atom has %d args, inner head has %d",
				regName, len(a.Args), len(inner.Head))
		}
		occurrence++
		ren := make(map[logic.Var]logic.Term)
		// Head variables of inner map to the atom's argument terms.
		for i, h := range inner.Head {
			ren[h] = a.Args[i]
		}
		// Remaining inner variables get fresh names per occurrence.
		for _, v := range inner.Vars() {
			if _, ok := ren[v]; !ok {
				ren[v] = fr.fresh(v)
			}
		}
		for _, ia := range inner.Atoms {
			args := make([]logic.Term, len(ia.Args))
			for i, t := range ia.Args {
				args[i] = renTerm(t, ren)
			}
			out.Atoms = append(out.Atoms, &logic.Atom{Rel: ia.Rel, Args: args})
		}
		for _, ic := range inner.Constraints {
			out.Constraints = append(out.Constraints,
				Constraint{L: renTerm(ic.L, ren), R: renTerm(ic.R, ren), Eq: ic.Eq})
		}
	}
	return out, nil
}

func newComposeFreshener(outer, inner *NF) *freshener {
	fr := &freshener{used: map[logic.Var]bool{}}
	for _, v := range outer.Vars() {
		fr.used[v] = true
	}
	for _, v := range inner.Vars() {
		fr.used[v] = true
	}
	return fr
}

// UsesRel reports whether the query has an atom over rel.
func (nf *NF) UsesRel(rel string) bool {
	for _, a := range nf.Atoms {
		if a.Rel == rel {
			return true
		}
	}
	return false
}

// DropRel removes every atom over rel (used when the register of the
// root is empty by definition: a Reg atom at the root can never hold,
// so callers typically check UsesRel first and treat the query as
// unsatisfiable instead).
func (nf *NF) DropRel(rel string) *NF {
	out := nf.Clone()
	kept := out.Atoms[:0]
	for _, a := range out.Atoms {
		if a.Rel != rel {
			kept = append(kept, a)
		}
	}
	out.Atoms = kept
	return out
}

// HeadDeterminedBy reports whether every head variable of the query is
// forced to a single value once the atoms over rel are fixed to one
// tuple: each head variable's equality class contains a constant or a
// term occurring as an argument of a rel atom. With tuple registers
// this bounds the query's result to at most one tuple — the static
// multiplicity analysis used by the typechecker.
func (nf *NF) HeadDeterminedBy(rel string) bool {
	uf := nf.buildClasses()
	determined := map[string]bool{}
	for _, a := range nf.Atoms {
		if a.Rel != rel {
			continue
		}
		for _, t := range a.Args {
			determined[uf.find(termKey(t))] = true
		}
	}
	for k, t := range uf.term {
		if _, ok := t.(logic.Const); ok {
			determined[uf.find(k)] = true
		}
	}
	for _, h := range nf.Head {
		if !determined[uf.find(termKey(h))] {
			return false
		}
	}
	return true
}
