package cq

import (
	"math/rand"
	"testing"

	"ptx/internal/eval"
	"ptx/internal/logic"
	"ptx/internal/relation"
	"ptx/internal/value"
)

// innerPool are candidate inner queries with head (x) over E(2).
func innerPool() []*NF {
	x, y := logic.Var("x"), logic.Var("y")
	return []*NF{
		MustNormalize([]logic.Var{x}, logic.Ex([]logic.Var{y}, logic.R("E", x, y))),
		MustNormalize([]logic.Var{x}, logic.Ex([]logic.Var{y}, logic.R("E", y, x))),
		MustNormalize([]logic.Var{x}, logic.R("E", x, x)),
		MustNormalize([]logic.Var{x}, logic.Ex([]logic.Var{y},
			logic.Conj(logic.R("E", x, y), logic.NeqT(x, y)))),
		MustNormalize([]logic.Var{x}, logic.Ex([]logic.Var{y},
			logic.Conj(logic.R("E", x, y), logic.EqT(y, logic.Const("0"))))),
	}
}

// outerPool are candidate outer queries with head (z) referencing Reg(·).
func outerPool() []*NF {
	z, u, w := logic.Var("z"), logic.Var("u"), logic.Var("w")
	return []*NF{
		MustNormalize([]logic.Var{z}, logic.Ex([]logic.Var{u},
			logic.Conj(logic.R("Reg", u), logic.R("E", u, z)))),
		MustNormalize([]logic.Var{z}, logic.R("Reg", z)),
		MustNormalize([]logic.Var{z}, logic.Conj(logic.R("Reg", z), logic.NeqT(z, logic.Const("0")))),
		// Two Reg occurrences: z reachable from a register value that is
		// also a register value's successor.
		MustNormalize([]logic.Var{z}, logic.Ex([]logic.Var{u, w},
			logic.Conj(logic.R("Reg", u), logic.R("Reg", w), logic.R("E", u, w), logic.R("E", w, z)))),
	}
}

// TestComposeMatchesViewUnfolding is the semantic property behind every
// path analysis: for monotone CQ, substituting the inner query for the
// Reg atoms equals evaluating the outer query with Reg bound to the
// inner query's result relation.
func TestComposeMatchesViewUnfolding(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	schema := relation.NewSchema().MustDeclare("E", 2)
	inners, outers := innerPool(), outerPool()
	trials := 0
	for _, inner := range inners {
		for _, outer := range outers {
			comp, err := Compose(outer, "Reg", inner)
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < 6; k++ {
				inst := relation.NewInstance(schema)
				for e := 0; e < rng.Intn(6); e++ {
					inst.Add("E", string(value.Of(rng.Intn(3))), string(value.Of(rng.Intn(3))))
				}
				trials++
				// Reference: evaluate inner as a view, then outer over it.
				innerRes, err := evalNF(inner, eval.NewEnv(inst))
				if err != nil {
					t.Fatal(err)
				}
				env := eval.NewEnv(inst).WithRelation("Reg", innerRes)
				want, err := evalNF(outer, env)
				if err != nil {
					t.Fatal(err)
				}
				got, err := evalNF(comp, eval.NewEnv(inst))
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("composition mismatch\ninner %s\nouter %s\ncomposed %s\ninstance %s\n got %s want %s",
						inner, outer, comp, inst, got, want)
				}
			}
		}
	}
	if trials == 0 {
		t.Fatal("vacuous")
	}
}

// evalNF evaluates a normal-form query to its answer relation.
func evalNF(nf *NF, env *eval.Env) (*relation.Relation, error) {
	q, err := logic.NewQuery(nf.Head, nil, nf.Formula())
	if err != nil {
		return nil, err
	}
	return eval.EvalQuery(q, env)
}

// TestContainmentSoundOnRandomInstances: whenever Contained(q1,q2)
// reports true, q1's answers are a subset of q2's on every sampled
// instance (soundness spot check).
func TestContainmentSoundOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	schema := relation.NewSchema().MustDeclare("E", 2)
	pool := innerPool()
	for i, q1 := range pool {
		for j, q2 := range pool {
			contained, err := Contained(q1, q2)
			if err != nil {
				t.Fatal(err)
			}
			foundCounter := false
			for k := 0; k < 12; k++ {
				inst := relation.NewInstance(schema)
				for e := 0; e < rng.Intn(7); e++ {
					inst.Add("E", string(value.Of(rng.Intn(3))), string(value.Of(rng.Intn(3))))
				}
				a, err := evalNF(q1, eval.NewEnv(inst))
				if err != nil {
					t.Fatal(err)
				}
				b, err := evalNF(q2, eval.NewEnv(inst))
				if err != nil {
					t.Fatal(err)
				}
				if !a.SubsetOf(b) {
					foundCounter = true
				}
			}
			if contained && foundCounter {
				t.Errorf("pool[%d] ⊆ pool[%d] decided but a counterexample instance exists", i, j)
			}
			if i == j && !contained {
				t.Errorf("pool[%d] not contained in itself", i)
			}
		}
	}
}
