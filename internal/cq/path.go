package cq

import (
	"fmt"

	"ptx/internal/logic"
)

// ComposeAll composes a root-to-leaf sequence of queries: qs[0] is over
// the source schema only; for i > 0, qs[i] may reference regName with
// arity |head(qs[i-1])|. The result is the full composition
// Qn ∘ … ∘ Q1, whose size can be exponential in n (each Reg occurrence
// copies the inner query). It is the brute-force counterpart of
// PathSatisfiable, used for cross-validation and for small paths.
func ComposeAll(qs []*NF, regName string) (*NF, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("cq: empty path")
	}
	cur := qs[0]
	if cur.UsesRel(regName) {
		return nil, fmt.Errorf("cq: first query of a path must not reference %s", regName)
	}
	for i := 1; i < len(qs); i++ {
		next, err := Compose(qs[i], regName, cur)
		if err != nil {
			return nil, fmt.Errorf("cq: composing step %d: %v", i, err)
		}
		cur = next
	}
	return cur, nil
}

// PathSatisfiable implements the polynomial satisfiability test for
// composed query paths from the NP upper-bound proof of Theorem 1(1):
// rather than materializing the exponential composition Qⁿ, it
// maintains the completion H̄ᵢ of entailed head constraints and checks
// each step query Q̄ᵢ — Qᵢ with every Reg(t̄) atom strengthened by
// H̄ᵢ₋₁(t̄) — for satisfiability. The path is satisfiable iff every Q̄ᵢ
// is (Claim 1).
func PathSatisfiable(qs []*NF, regName string) (bool, error) {
	if len(qs) == 0 {
		return false, fmt.Errorf("cq: empty path")
	}
	if qs[0].UsesRel(regName) {
		return false, fmt.Errorf("cq: first query of a path must not reference %s", regName)
	}
	cur := qs[0]
	if !cur.Satisfiable() {
		return false, nil
	}
	hbar := cur.CompletionOnHead()
	for i := 1; i < len(qs); i++ {
		step := strengthenRegAtoms(qs[i], regName, qs[i-1].Head, hbar)
		if !step.Satisfiable() {
			return false, nil
		}
		hbar = step.CompletionOnHead()
		cur = step
	}
	return true, nil
}

// strengthenRegAtoms returns q with, for every atom Reg(t̄), the
// constraints hbar instantiated at t̄ (hbar is over the previous query's
// head variables prevHead).
func strengthenRegAtoms(q *NF, regName string, prevHead []logic.Var, hbar []Constraint) *NF {
	out := q.Clone()
	for _, a := range q.Atoms {
		if a.Rel != regName || len(a.Args) != len(prevHead) {
			continue
		}
		sub := make(map[logic.Var]logic.Term, len(prevHead))
		for i, h := range prevHead {
			sub[h] = a.Args[i]
		}
		for _, c := range hbar {
			out.Constraints = append(out.Constraints, Constraint{
				L:  subConstraintTerm(c.L, sub),
				R:  subConstraintTerm(c.R, sub),
				Eq: c.Eq,
			})
		}
	}
	return out
}

func subConstraintTerm(t logic.Term, sub map[logic.Var]logic.Term) logic.Term {
	if v, ok := t.(logic.Var); ok {
		if r, ok := sub[v]; ok {
			return r
		}
	}
	return t
}
