// Package breaker implements per-peer circuit breakers for the
// cluster's inter-node calls. A breaker watches consecutive transport
// failures against one peer and, once a threshold trips, stops new
// calls from even dialing it: a partitioned or sick peer costs one
// deadline per detection, not one deadline per request.
//
// The state machine is the classic three-state one:
//
//	closed    — calls flow; consecutive failures are counted.
//	open      — calls are refused locally; after a cooldown (with
//	            seeded jitter, doubling per consecutive open up to a
//	            cap) the breaker admits ONE probe.
//	half-open — the probe is in flight; its success closes the
//	            breaker, its failure re-opens with a longer cooldown.
//
// Breakers are grouped in a Set keyed by peer id, which is what the
// coordinator's forward path, its health prober, and the replication
// push path share: any of them can trip the breaker, and all of them
// respect it.
package breaker

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// State is one circuit-breaker state.
type State int

const (
	Closed State = iota
	Open
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Config parameterizes a Set. The zero value of every field selects a
// production-sane default.
type Config struct {
	// Threshold is how many CONSECUTIVE failures open the breaker
	// (default 3). Any success resets the count.
	Threshold int
	// Cooldown is the base open→half-open delay (default 1s).
	Cooldown time.Duration
	// MaxCooldown caps the doubling backoff across consecutive opens
	// (default 8×Cooldown).
	MaxCooldown time.Duration
	// Jitter spreads each cooldown by ±fraction (default 0.2) so a
	// fleet of breakers never probes a recovering peer in phase; Seed
	// makes the schedule reproducible.
	Jitter float64
	Seed   int64
}

func (c Config) withDefaults() Config {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	if c.MaxCooldown <= 0 {
		c.MaxCooldown = 8 * c.Cooldown
	}
	if c.Jitter <= 0 {
		c.Jitter = 0.2
	}
	return c
}

// entry is one peer's breaker.
type entry struct {
	state   State
	fails   int       // consecutive failures while closed
	opens   int       // consecutive opens (drives the cooldown backoff)
	until   time.Time // earliest half-open probe while open
	probing bool      // a half-open probe is in flight
}

// Set is a collection of breakers keyed by peer id. All methods are
// safe for concurrent use; unknown ids behave as closed breakers.
type Set struct {
	mu    sync.Mutex
	cfg   Config
	rng   *rand.Rand
	peers map[string]*entry
	opens int64 // total closed/half-open → open transitions
}

// NewSet builds a breaker set.
func NewSet(cfg Config) *Set {
	cfg = cfg.withDefaults()
	return &Set{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		peers: make(map[string]*entry),
	}
}

func (s *Set) peer(id string) *entry {
	e, ok := s.peers[id]
	if !ok {
		e = &entry{}
		s.peers[id] = e
	}
	return e
}

// Allow reports whether a call to the peer may proceed now. A closed
// breaker always allows. An open breaker refuses until its cooldown
// elapses, then transitions to half-open and admits exactly one probe;
// further calls are refused until that probe resolves via Success or
// Failure.
func (s *Set) Allow(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.peer(id)
	switch e.state {
	case Closed:
		return true
	case Open:
		if time.Now().Before(e.until) {
			return false
		}
		e.state = HalfOpen
		e.probing = true
		return true
	default: // HalfOpen
		if e.probing {
			return false
		}
		e.probing = true
		return true
	}
}

// Success records a successful call: the breaker closes and all
// failure history is forgotten.
func (s *Set) Success(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.peer(id)
	e.state = Closed
	e.fails = 0
	e.opens = 0
	e.probing = false
	e.until = time.Time{}
}

// Failure records a failed call. While closed it counts toward the
// threshold; at the threshold — or on a failed half-open probe — the
// breaker (re-)opens with a jittered, doubling cooldown.
func (s *Set) Failure(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.peer(id)
	if e.state == Closed {
		e.fails++
		if e.fails < s.cfg.Threshold {
			return
		}
	}
	// Open (from threshold or a failed probe): back off and rearm.
	e.state = Open
	e.probing = false
	e.opens++
	s.opens++
	cd := s.cfg.Cooldown
	for i := 1; i < e.opens && cd < s.cfg.MaxCooldown; i++ {
		cd *= 2
	}
	if cd > s.cfg.MaxCooldown {
		cd = s.cfg.MaxCooldown
	}
	cd = time.Duration(float64(cd) * (1 + s.cfg.Jitter*(2*s.rng.Float64()-1)))
	e.until = time.Now().Add(cd)
}

// State peeks at a peer's current state without transitioning it (the
// open→half-open move happens in Allow, never here).
func (s *Set) State(id string) State {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.peers[id]
	if !ok {
		return Closed
	}
	return e.state
}

// ProbeDue reports whether an open breaker's cooldown has elapsed —
// the half-open probe schedule the health prober follows instead of
// its full cadence.
func (s *Set) ProbeDue(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.peers[id]
	if !ok {
		return true
	}
	switch e.state {
	case Closed:
		return true
	case Open:
		return !time.Now().Before(e.until)
	default:
		return !e.probing
	}
}

// NextProbe returns when the peer's next half-open probe is allowed
// (zero for closed breakers).
func (s *Set) NextProbe(id string) time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.peers[id]
	if !ok {
		return time.Time{}
	}
	return e.until
}

// Opens reports the total number of open transitions across all peers
// — the "breakers actually fired" observable.
func (s *Set) Opens() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opens
}

// OpenPeers lists (sorted) the peers whose breaker is currently open
// or half-open.
func (s *Set) OpenPeers() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for id, e := range s.peers {
		if e.state != Closed {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}
