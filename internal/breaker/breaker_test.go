package breaker

import (
	"sync"
	"testing"
	"time"
)

func TestBreakerOpensAtThreshold(t *testing.T) {
	s := NewSet(Config{Threshold: 3, Cooldown: 50 * time.Millisecond, Seed: 1})
	if !s.Allow("a") {
		t.Fatal("fresh breaker must allow")
	}
	s.Failure("a")
	s.Failure("a")
	if st := s.State("a"); st != Closed {
		t.Fatalf("below threshold: want closed, got %v", st)
	}
	if !s.Allow("a") {
		t.Fatal("closed breaker must allow")
	}
	s.Failure("a")
	if st := s.State("a"); st != Open {
		t.Fatalf("at threshold: want open, got %v", st)
	}
	if s.Allow("a") {
		t.Fatal("open breaker must refuse before cooldown")
	}
	if s.Opens() != 1 {
		t.Fatalf("opens: want 1, got %d", s.Opens())
	}
	if got := s.OpenPeers(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("OpenPeers: got %v", got)
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	s := NewSet(Config{Threshold: 2, Cooldown: time.Hour, Seed: 1})
	s.Failure("a")
	s.Success("a")
	s.Failure("a")
	if st := s.State("a"); st != Closed {
		t.Fatalf("success must reset the consecutive-failure count, got %v", st)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	s := NewSet(Config{Threshold: 1, Cooldown: 10 * time.Millisecond, Jitter: 0.01, Seed: 1})
	s.Failure("a")
	if s.Allow("a") {
		t.Fatal("open breaker must refuse immediately after tripping")
	}
	deadline := time.Now().Add(time.Second)
	for !s.ProbeDue("a") {
		if time.Now().After(deadline) {
			t.Fatal("cooldown never elapsed")
		}
		time.Sleep(time.Millisecond)
	}
	if !s.Allow("a") {
		t.Fatal("cooldown elapsed: the probe slot must be granted")
	}
	if st := s.State("a"); st != HalfOpen {
		t.Fatalf("want half-open during probe, got %v", st)
	}
	if s.Allow("a") {
		t.Fatal("half-open admits exactly one probe")
	}
	s.Success("a")
	if st := s.State("a"); st != Closed {
		t.Fatalf("probe success must close, got %v", st)
	}
	if !s.Allow("a") {
		t.Fatal("closed after recovery must allow")
	}
}

func TestBreakerFailedProbeBacksOff(t *testing.T) {
	s := NewSet(Config{Threshold: 1, Cooldown: 10 * time.Millisecond, MaxCooldown: 80 * time.Millisecond, Jitter: 0.01, Seed: 7})
	s.Failure("a")
	first := time.Until(s.NextProbe("a"))
	for !s.ProbeDue("a") {
		time.Sleep(time.Millisecond)
	}
	if !s.Allow("a") {
		t.Fatal("probe slot expected")
	}
	s.Failure("a") // failed probe: re-open with doubled cooldown
	if st := s.State("a"); st != Open {
		t.Fatalf("failed probe must re-open, got %v", st)
	}
	second := time.Until(s.NextProbe("a"))
	if second <= first {
		t.Fatalf("cooldown must back off: first %v, second %v", first, second)
	}
	if s.Opens() != 2 {
		t.Fatalf("opens: want 2, got %d", s.Opens())
	}
}

func TestBreakerConcurrentHalfOpenAdmitsOne(t *testing.T) {
	s := NewSet(Config{Threshold: 1, Cooldown: time.Nanosecond, Jitter: 0.01, Seed: 3})
	s.Failure("a")
	time.Sleep(5 * time.Millisecond) // cooldown elapses
	var admitted int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if s.Allow("a") {
				mu.Lock()
				admitted++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if admitted != 1 {
		t.Fatalf("half-open must admit exactly one concurrent probe, admitted %d", admitted)
	}
}

func TestBreakerIndependentPeers(t *testing.T) {
	s := NewSet(Config{Threshold: 1, Cooldown: time.Hour, Seed: 1})
	s.Failure("a")
	if !s.Allow("b") {
		t.Fatal("peer b's breaker must be independent of a's")
	}
	if st := s.State("b"); st != Closed {
		t.Fatalf("b: want closed, got %v", st)
	}
}
