package wal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ptx/internal/relation"
	"ptx/internal/runctl"
)

func ins(rel string, vals ...string) *relation.Delta {
	return (&relation.Delta{}).Insert(rel, vals...)
}

func appendN(t *testing.T, l *Log, db string, n int, start uint64) {
	t.Helper()
	for i := 0; i < n; i++ {
		seq := start + uint64(i)
		d := (&relation.Delta{}).Insert("R", "v"+strings.Repeat("x", i%3)).Delete("R", "gone")
		if err := l.Append(Record{DB: db, Seq: seq, Epoch: 1, Delta: d}); err != nil {
			t.Fatalf("append %d: %v", seq, err)
		}
	}
}

// TestAppendRecoverRoundtrip: records appended and fsynced come back
// byte-identical from a fresh Open, in order, across databases and
// through percent-escaping-hostile names.
func TestAppendRecoverRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hostile := "sp ace\nnew%line"
	recs := []Record{
		{DB: "alpha", Seq: 1, Epoch: 0, Delta: ins("R", "a", "b")},
		{DB: "beta", Seq: 1, Epoch: 7, Delta: (&relation.Delta{}).Delete("S", hostile, "")},
		{DB: "alpha", Seq: 2, Epoch: 3, Delta: ins(hostile)},
	}
	for _, rec := range recs {
		if err := l.Append(rec); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if m := l.Metrics(); m.Appended != 3 || m.Fsyncs == 0 {
		t.Fatalf("metrics = %+v, want 3 appends and nonzero fsyncs", m)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rep := l2.Report()
	if len(rep.Corruptions) != 0 || rep.Records != 3 {
		t.Fatalf("clean log recovered %+v", rep)
	}
	got := l2.Records()
	if len(got) != len(recs) {
		t.Fatalf("recovered %d records, want %d", len(got), len(recs))
	}
	for i, rec := range recs {
		g := got[i]
		if g.DB != rec.DB || g.Seq != rec.Seq || g.Epoch != rec.Epoch || g.Delta.String() != rec.Delta.String() {
			t.Errorf("record %d: got %v/%d/%d %s, want %v/%d/%d %s",
				i, g.DB, g.Seq, g.Epoch, g.Delta, rec.DB, rec.Seq, rec.Epoch, rec.Delta)
		}
	}
	if m := l2.Metrics(); m.Recovered != 3 {
		t.Fatalf("recovered metric = %d, want 3", m.Recovered)
	}
}

// TestSegmentRotation: appends past SegmentBytes seal the active
// segment and open a new one; recovery replays across the boundary.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, "db", 20, 1)
	l.Close()

	entries, _ := os.ReadDir(dir)
	segs := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "seg-") {
			segs++
		}
	}
	if segs < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %d", segs)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := len(l2.Records()); got != 20 {
		t.Fatalf("recovered %d records across segments, want 20", got)
	}
}

// TestTornTailTruncation: a partial frame at the end of a segment (the
// classic mid-write crash) is truncated with a typed report, the valid
// prefix survives, and appends continue cleanly afterwards.
func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	appendN(t, l, "db", 3, 1)
	l.Close()

	// Tear the tail: append half a frame to the active segment.
	segs := walFiles(t, dir)
	path := filepath.Join(dir, segs[len(segs)-1])
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("rec 999 deadbeef"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	pre, _ := os.Stat(path)

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := l2.Report()
	if len(rep.Corruptions) != 1 {
		t.Fatalf("corruptions = %v, want exactly the torn tail", rep.Corruptions)
	}
	var ce *CorruptError
	if !errors.As(rep.Corruptions[0], &ce) || !strings.Contains(ce.Reason, "header") {
		t.Fatalf("report = %v, want a typed torn-header CorruptError", rep.Corruptions[0])
	}
	if rep.TruncatedBytes == 0 {
		t.Fatal("report claims zero truncated bytes for a torn tail")
	}
	if got := len(l2.Records()); got != 3 {
		t.Fatalf("recovered %d records, want the 3 valid ones", got)
	}
	post, _ := os.Stat(path)
	if post.Size() >= pre.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d bytes", pre.Size(), post.Size())
	}

	// The log must keep accepting appends after the repair.
	if err := l2.Append(Record{DB: "db", Seq: 4, Epoch: 1, Delta: ins("R", "post")}); err != nil {
		t.Fatalf("append after torn-tail repair: %v", err)
	}
	l2.Close()
	l3, _ := Open(dir, Options{})
	defer l3.Close()
	if got := len(l3.Records()); got != 4 {
		t.Fatalf("post-repair append lost: recovered %d, want 4", got)
	}
}

// TestBitFlipDetection: flipping one payload byte fails the checksum;
// recovery truncates to the last valid record before the flip and
// reports the damage with the segment name and offset.
func TestBitFlipDetection(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	appendN(t, l, "db", 5, 1)
	l.Close()

	segs := walFiles(t, dir)
	path := filepath.Join(dir, segs[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the THIRD record's payload: find its frame.
	idx := strings.Index(string(data), "rec ")
	for i := 0; i < 2; i++ {
		next := strings.Index(string(data[idx+4:]), "rec ")
		if next < 0 {
			t.Fatal("test setup: fewer frames than expected")
		}
		idx += 4 + next
	}
	flip := idx + 80 // inside the third frame's payload
	data[flip] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rep := l2.Report()
	if len(rep.Corruptions) == 0 {
		t.Fatal("bit flip went undetected")
	}
	ce := rep.Corruptions[0]
	if ce.File != segs[0] || ce.Offset == 0 {
		t.Fatalf("corruption report %v lacks segment/offset detail", ce)
	}
	if got := len(l2.Records()); got != 2 {
		t.Fatalf("recovered %d records, want the 2 before the flip", got)
	}
}

// TestCorruptionDropsLaterSegments: a corrupted EARLIER segment strands
// every later one — replaying past a hole would reorder history — and
// the report says so per dropped file.
func TestCorruptionDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{SegmentBytes: 200, NoSync: true})
	appendN(t, l, "db", 12, 1)
	l.Close()
	segs := walFiles(t, dir)
	if len(segs) < 3 {
		t.Fatalf("test setup: want >=3 segments, got %d", len(segs))
	}
	// Corrupt the FIRST segment's first record checksum.
	path := filepath.Join(dir, segs[0])
	data, _ := os.ReadFile(path)
	data[len(Magic)+10] ^= 0xff
	os.WriteFile(path, data, 0o644)

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rep := l2.Report()
	if len(rep.Corruptions) != len(segs) {
		t.Fatalf("got %d corruption entries, want one per affected file (%d)", len(rep.Corruptions), len(segs))
	}
	if got := len(l2.Records()); got != 0 {
		t.Fatalf("recovered %d records past a first-segment corruption, want 0", got)
	}
	for _, name := range segs[1:] {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("stranded segment %s not removed", name)
		}
	}
}

// TestCompaction: Compact collapses history to one net record per
// database preserving final membership and the seq/epoch high-water
// marks, deletes the old segments, and recovery replays the base.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{SegmentBytes: 128, NoSync: true})
	// a: inserted then deleted (net absent); b: deleted then inserted
	// (net present); c: inserted once.
	steps := []*relation.Delta{
		ins("R", "a"),
		ins("R", "b"),
		(&relation.Delta{}).Delete("R", "a").Insert("R", "c"),
		(&relation.Delta{}).Delete("R", "b"),
		ins("R", "b"),
	}
	for i, d := range steps {
		if err := l.Append(Record{DB: "db", Seq: uint64(i + 1), Epoch: uint64(i), Delta: d}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if m := l.Metrics(); m.Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", m.Compactions)
	}
	recs := l.Records()
	if len(recs) != 1 {
		t.Fatalf("post-compact records = %d, want 1 net record", len(recs))
	}
	net := recs[0]
	if net.Seq != 5 || net.Epoch != 4 {
		t.Fatalf("net record seq/epoch = %d/%d, want high-water 5/4", net.Seq, net.Epoch)
	}
	if s := net.Delta.String(); s != "-R(a) +R(b) +R(c)" {
		t.Fatalf("net delta = %q, want deterministic last-op-wins %q", s, "-R(a) +R(b) +R(c)")
	}

	// Appends continue after compaction and recovery sees base + tail.
	if err := l.Append(Record{DB: "db", Seq: 6, Epoch: 9, Delta: ins("R", "tail")}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := l2.Records()
	if len(got) != 2 {
		t.Fatalf("recovered %d records, want net + tail", len(got))
	}
	if got[0].Delta.String() != "-R(a) +R(b) +R(c)" || got[1].Delta.String() != "+R(tail)" {
		t.Fatalf("recovered wrong history: %v then %v", got[0].Delta, got[1].Delta)
	}
	baseIdx := -1
	for _, name := range walFiles(t, dir) {
		wf, _ := parseName(name)
		if wf.base && wf.idx > baseIdx {
			baseIdx = wf.idx
		}
	}
	if baseIdx < 0 {
		t.Fatal("no base snapshot on disk after Compact")
	}
	for _, name := range walFiles(t, dir) {
		if wf, _ := parseName(name); wf.idx < baseIdx {
			t.Errorf("pre-compaction file %s survived Compact", name)
		}
	}
}

// TestFsyncPolicy: NoSync issues no fsyncs on the append path; the
// default policy issues at least one per append.
func TestFsyncPolicy(t *testing.T) {
	l1, _ := Open(t.TempDir(), Options{NoSync: true})
	appendN(t, l1, "db", 4, 1)
	if m := l1.Metrics(); m.Fsyncs != 0 {
		t.Fatalf("NoSync issued %d fsyncs", m.Fsyncs)
	}
	l1.Close()

	l2, _ := Open(t.TempDir(), Options{})
	appendN(t, l2, "db", 4, 1)
	if m := l2.Metrics(); m.Fsyncs < 4 {
		t.Fatalf("sync policy issued %d fsyncs for 4 appends", m.Fsyncs)
	}
	l2.Close()
}

// TestCrashPointInjection: both injected crash points surface as typed
// *StorageError AND leave the record atomically absent — the next Open
// sees exactly the durable prefix, never a torn frame.
func TestCrashPointInjection(t *testing.T) {
	for _, tc := range []struct {
		name string
		op   runctl.Op
	}{
		{"pre-write", runctl.OpWALAppend},
		{"post-write-pre-fsync", runctl.OpWALSync},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			boom := errors.New("injected crash")
			l, err := Open(dir, Options{Faults: &runctl.FaultPlan{Op: tc.op, N: 2, Err: boom}})
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Append(Record{DB: "db", Seq: 1, Epoch: 0, Delta: ins("R", "first")}); err != nil {
				t.Fatalf("append 1: %v", err)
			}
			err = l.Append(Record{DB: "db", Seq: 2, Epoch: 0, Delta: ins("R", "crashed")})
			var se *StorageError
			if !errors.As(err, &se) {
				t.Fatalf("injected crash surfaced as %v, want *StorageError", err)
			}
			// Third append succeeds: the log healed in place.
			if err := l.Append(Record{DB: "db", Seq: 2, Epoch: 0, Delta: ins("R", "retry")}); err != nil {
				t.Fatalf("append after crash: %v", err)
			}
			l.Close()

			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			if rep := l2.Report(); len(rep.Corruptions) != 0 {
				t.Fatalf("crash rollback left torn bytes: %v", rep.Corruptions)
			}
			recs := l2.Records()
			if len(recs) != 2 {
				t.Fatalf("recovered %d records, want the 2 durable ones", len(recs))
			}
			for _, rec := range recs {
				if strings.Contains(rec.Delta.String(), "crashed") {
					t.Fatal("the un-acked record survived the crash")
				}
			}
		})
	}
}

// TestReadDirIsReadOnly: the offline replay path reports corruption
// without repairing it — a live server's log must not be mutated by an
// operator peeking at it.
func TestReadDirIsReadOnly(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	appendN(t, l, "db", 2, 1)
	l.Close()
	segs := walFiles(t, dir)
	path := filepath.Join(dir, segs[len(segs)-1])
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString("torn")
	f.Close()
	pre, _ := os.Stat(path)

	recs, rep, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || len(rep.Corruptions) != 1 {
		t.Fatalf("ReadDir = %d records, %d corruptions; want 2 and 1", len(recs), len(rep.Corruptions))
	}
	post, _ := os.Stat(path)
	if post.Size() != pre.Size() {
		t.Fatal("ReadDir repaired the file; it must be read-only")
	}
}

func walFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if _, ok := parseName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	return names
}
