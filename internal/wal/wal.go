// Package wal is the durable, replicated mutation log under the
// serving tier: a checksummed append-only segment store in the
// sealed-file style of supervise's checkpoints. Every accepted delta is
// appended and fsynced BEFORE it is acknowledged, so a process restart
// (or an owner crash, with replication) replays the log and serves
// post-delta bytes — an acknowledged mutation is never lost.
//
// The failure contract is typed end to end: a write-path failure
// (fsync, disk full, injected crash point) is a *StorageError and the
// record it covered is atomically absent — partial writes are rolled
// back before the error returns. Recovery-time damage (torn tails from
// a mid-write crash, bit-flips) is a *CorruptError in the recovery
// report: the log truncates to the last valid record, drops segments
// stranded past the damage, and keeps serving.
//
// Segments rotate at a size threshold and Compact collapses history
// into a base snapshot holding one net record per database (set
// semantics make the last op per tuple authoritative), bounding both
// disk and replay time.
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"ptx/internal/runctl"
)

// Options parameterizes a Log. The zero value selects production-sane
// defaults: fsync on every append, 1 MiB segments, no fault injection.
type Options struct {
	// NoSync skips the per-append fsync. Throughput goes up; the
	// durability guarantee degrades to "survives process death, not
	// power loss". Benchmarks quantify the gap.
	NoSync bool
	// SegmentBytes rotates the active segment beyond this size
	// (default 1 MiB).
	SegmentBytes int64
	// Faults injects crash-point failures (tests only): OpWALAppend
	// fires before any bytes are written, OpWALSync fires between the
	// write and its fsync (the write is rolled back — exactly a crash
	// between write and sync).
	Faults *runctl.FaultPlan
}

// Metrics is a point-in-time snapshot of a Log's counters.
type Metrics struct {
	Appended    int64 `json:"appended"`    // records durably appended
	Fsyncs      int64 `json:"fsyncs"`      // fsyncs issued on the append path
	Recovered   int64 `json:"recovered"`   // records replayed at Open
	Compactions int64 `json:"compactions"` // Compact calls completed
}

// RecoveryReport describes what Open found: how many records and
// segments survived, and every typed corruption encountered (empty for
// a clean log).
type RecoveryReport struct {
	Records        int
	Segments       int
	Corruptions    []*CorruptError
	TruncatedBytes int64
}

// Log is an open write-ahead log rooted at one directory. All methods
// are safe for concurrent use.
type Log struct {
	dir string
	opt Options

	mu      sync.Mutex
	f       *os.File // active segment (nil until the first append)
	size    int64    // bytes in the active segment
	nextIdx int      // file index for the NEXT segment created
	records []Record // full surviving history, file order
	closed  bool

	appended    int64
	fsyncs      int64
	recovered   int64
	compactions int64
	report      RecoveryReport
}

// walFile is one parsed directory entry.
type walFile struct {
	name string
	idx  int
	base bool
}

func segName(idx int) string  { return fmt.Sprintf("seg-%010d.wal", idx) }
func baseName(idx int) string { return fmt.Sprintf("base-%010d.wal", idx) }

func parseName(name string) (walFile, bool) {
	var idx int
	switch {
	case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".wal"):
		if _, err := fmt.Sscanf(name, "seg-%d.wal", &idx); err == nil {
			return walFile{name: name, idx: idx}, true
		}
	case strings.HasPrefix(name, "base-") && strings.HasSuffix(name, ".wal"):
		if _, err := fmt.Sscanf(name, "base-%d.wal", &idx); err == nil {
			return walFile{name: name, idx: idx, base: true}, true
		}
	}
	return walFile{}, false
}

// scanDir lists the replay set in replay order: the newest base
// snapshot (if any) followed by every segment younger than it. maxIdx
// is the highest file index seen, across ALL wal files.
func scanDir(dir string) (files []walFile, maxIdx int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	var all []walFile
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if f, ok := parseName(e.Name()); ok {
			all = append(all, f)
			if f.idx > maxIdx {
				maxIdx = f.idx
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].idx < all[j].idx })
	baseIdx := -1
	for _, f := range all {
		if f.base && f.idx > baseIdx {
			baseIdx = f.idx
		}
	}
	for _, f := range all {
		if f.base && f.idx == baseIdx {
			files = append(files, f)
		} else if !f.base && f.idx > baseIdx {
			files = append(files, f)
		}
	}
	return files, maxIdx, nil
}

// replayDir decodes the replay set. When repair is true the damage is
// healed in place: torn tails are truncated to the last valid record
// and segments stranded past a corruption are deleted (their records
// would leave a hole in the sequence).
func replayDir(dir string, files []walFile, repair bool) ([]Record, RecoveryReport, error) {
	var records []Record
	rep := RecoveryReport{}
	dropRest := false
	for _, f := range files {
		path := filepath.Join(dir, f.name)
		if dropRest {
			data, _ := os.ReadFile(path)
			rep.TruncatedBytes += int64(len(data))
			rep.Corruptions = append(rep.Corruptions, &CorruptError{
				File: f.name, Offset: 0, Reason: "dropped: follows a corrupted segment",
			})
			if repair {
				_ = os.Remove(path)
			}
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, rep, &StorageError{Op: "recover", Err: err}
		}
		recs, valid, cerr := DecodeSegment(f.name, data)
		records = append(records, recs...)
		rep.Segments++
		if cerr != nil {
			rep.Corruptions = append(rep.Corruptions, cerr)
			rep.TruncatedBytes += int64(len(data)) - valid
			if repair {
				if err := os.Truncate(path, valid); err != nil {
					return nil, rep, &StorageError{Op: "recover", Err: err}
				}
			}
			dropRest = true
		}
	}
	rep.Records = len(records)
	return records, rep, nil
}

// Open recovers the log rooted at dir (created if absent) and readies
// it for appends. Corruption never fails Open: the log truncates to the
// last valid record and reports the damage via Report(). The active
// segment is created lazily on the first append, so recovery alone
// writes nothing but the repairs.
func Open(dir string, opt Options) (*Log, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = 1 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, &StorageError{Op: "open", Err: err}
	}
	files, maxIdx, err := scanDir(dir)
	if err != nil {
		return nil, &StorageError{Op: "open", Err: err}
	}
	records, rep, err := replayDir(dir, files, true)
	if err != nil {
		return nil, err
	}
	l := &Log{
		dir:       dir,
		opt:       opt,
		nextIdx:   maxIdx + 1,
		records:   records,
		recovered: int64(len(records)),
		report:    rep,
	}
	return l, nil
}

// ReadDir replays the log rooted at dir WITHOUT repairing or opening it
// for appends — the offline path (ptxml -delta on a live server's log).
// Corruption is reported, never healed.
func ReadDir(dir string) ([]Record, RecoveryReport, error) {
	files, _, err := scanDir(dir)
	if err != nil {
		return nil, RecoveryReport{}, &StorageError{Op: "read", Err: err}
	}
	return replayDir(dir, files, false)
}

// Report returns the recovery report from Open.
func (l *Log) Report() RecoveryReport {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.report
}

// Dir returns the log's root directory.
func (l *Log) Dir() string { return l.dir }

// Metrics snapshots the counters.
func (l *Log) Metrics() Metrics {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Metrics{
		Appended:    l.appended,
		Fsyncs:      l.fsyncs,
		Recovered:   l.recovered,
		Compactions: l.compactions,
	}
}

// Records returns the surviving history in replay order.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Record(nil), l.records...)
}

// syncDir fsyncs a directory so a freshly created file name is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// newSegment creates (and durably names) the next segment file, writes
// its magic line and makes it the active segment. Caller holds l.mu.
func (l *Log) newSegment() error {
	path := filepath.Join(l.dir, segName(l.nextIdx))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(Magic); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if !l.opt.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(path)
			return err
		}
		if err := syncDir(l.dir); err != nil {
			f.Close()
			return err
		}
		l.fsyncs++
	}
	if l.f != nil {
		_ = l.f.Close()
	}
	l.f = f
	l.size = int64(len(Magic))
	l.nextIdx++
	return nil
}

// Append durably appends one record: encode, write, fsync (per the
// fsync policy), THEN return — the caller may acknowledge the delta the
// moment Append returns nil. Any failure on the path (including
// injected crash points) rolls the partial write back and returns a
// *StorageError: the record is atomically absent, never torn.
func (l *Log) Append(rec Record) error {
	if rec.Delta == nil || rec.Delta.Empty() {
		return &StorageError{Op: "append", Err: fmt.Errorf("empty delta for %q", rec.DB)}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return &StorageError{Op: "append", Err: fmt.Errorf("log is closed")}
	}
	// Crash point 1: before any bytes reach the segment. Nothing to
	// roll back — the record simply never existed.
	if err := l.opt.Faults.Check(runctl.OpWALAppend); err != nil {
		return &StorageError{Op: "append", Err: err}
	}
	frame := encodeFrame(rec)
	if l.f == nil || (l.size > int64(len(Magic)) && l.size+int64(len(frame)) > l.opt.SegmentBytes) {
		if err := l.newSegment(); err != nil {
			return &StorageError{Op: "rotate", Err: err}
		}
	}
	pre := l.size
	n, err := l.f.Write(frame)
	if err != nil {
		l.rollback(pre)
		return &StorageError{Op: "append", Err: err}
	}
	l.size += int64(n)
	// Crash point 2: bytes written, fsync never happened. Roll the
	// write back so the in-process state matches what a power loss
	// would leave after recovery truncates the torn tail.
	if err := l.opt.Faults.Check(runctl.OpWALSync); err != nil {
		l.rollback(pre)
		return &StorageError{Op: "fsync", Err: err}
	}
	if !l.opt.NoSync {
		if err := l.f.Sync(); err != nil {
			l.rollback(pre)
			return &StorageError{Op: "fsync", Err: err}
		}
		l.fsyncs++
	}
	l.records = append(l.records, rec)
	l.appended++
	return nil
}

// rollback truncates the active segment to pre, discarding a write
// that failed to become durable. Caller holds l.mu.
func (l *Log) rollback(pre int64) {
	if l.f == nil {
		return
	}
	if err := l.f.Truncate(pre); err == nil {
		if _, err := l.f.Seek(pre, 0); err == nil {
			l.size = pre
		}
	}
}

// Close seals the active segment. Further appends fail with a
// *StorageError.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	var err error
	if !l.opt.NoSync {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	if err != nil {
		return &StorageError{Op: "close", Err: err}
	}
	return nil
}
