package wal

import (
	"fmt"
	"testing"
	"time"

	"ptx/internal/relation"
)

// BenchmarkWALRecovery measures cold-start replay: how long Open takes
// to verify checksums and decode a log of N committed records — the
// restart-to-serving latency a durable node pays. The CI bench-wal job
// pins recovery-ms into BENCH_pr9.json.
func BenchmarkWALRecovery(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("records-%d", n), func(b *testing.B) {
			dir := b.TempDir()
			l, err := Open(dir, Options{NoSync: true})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				d := (&relation.Delta{}).Insert("course", fmt.Sprintf("C%d", i), "Bench", "CS")
				if err := l.Append(Record{DB: "registrar", Seq: uint64(i + 1), Delta: d}); err != nil {
					b.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				b.Fatal(err)
			}

			b.ResetTimer()
			var total time.Duration
			for i := 0; i < b.N; i++ {
				start := time.Now()
				l, err := Open(dir, Options{})
				if err != nil {
					b.Fatal(err)
				}
				total += time.Since(start)
				if got := len(l.Records()); got != n {
					b.Fatalf("recovered %d records, want %d", got, n)
				}
				l.Close()
			}
			b.ReportMetric(float64(total.Microseconds())/1000/float64(b.N), "recovery-ms")
		})
	}
}
