package wal

import (
	"os"
	"path/filepath"
	"sort"

	"ptx/internal/relation"
)

// Compact collapses the log's history into a base snapshot: one net
// record per database whose delta is the last op for every touched
// (relation, tuple) — sound because deltas are set-membership
// assignments, so the final membership of a tuple is its last op,
// independent of the intermediate history. The net record keeps the
// database's sequence and epoch high-water marks, so replication and
// fencing arithmetic survive compaction. Older segments (and any older
// base) are deleted once the new base is durable; a crash mid-compact
// leaves the old files in place and the new base unreferenced or
// newest-wins — either way recovery is consistent.
func (l *Log) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return &StorageError{Op: "compact", Err: os.ErrClosed}
	}

	// Net membership per database, preserving a deterministic op order
	// (sorted by relation, then tuple) so compaction is reproducible.
	type lastOp struct {
		key string // rel \x00 tuple-key, the sort key
		op  relation.DeltaOp
	}
	net := make(map[string]map[string]lastOp) // db → op key → last op
	seq := make(map[string]uint64)
	epoch := make(map[string]uint64)
	var dbs []string
	for _, rec := range l.records {
		m, ok := net[rec.DB]
		if !ok {
			m = make(map[string]lastOp)
			net[rec.DB] = m
			dbs = append(dbs, rec.DB)
		}
		if rec.Seq > seq[rec.DB] {
			seq[rec.DB] = rec.Seq
		}
		if rec.Epoch > epoch[rec.DB] {
			epoch[rec.DB] = rec.Epoch
		}
		if rec.Delta == nil {
			continue
		}
		for _, op := range rec.Delta.Ops {
			k := op.Rel + "\x00" + op.Tuple.Key()
			m[k] = lastOp{key: k, op: op}
		}
	}
	sort.Strings(dbs)

	baseIdx := l.nextIdx
	compacted := make([]Record, 0, len(dbs))
	for _, db := range dbs {
		ops := make([]lastOp, 0, len(net[db]))
		for _, lo := range net[db] {
			ops = append(ops, lo)
		}
		sort.Slice(ops, func(i, j int) bool { return ops[i].key < ops[j].key })
		d := &relation.Delta{Ops: make([]relation.DeltaOp, 0, len(ops))}
		for _, lo := range ops {
			d.Ops = append(d.Ops, lo.op)
		}
		compacted = append(compacted, Record{DB: db, Seq: seq[db], Epoch: epoch[db], Delta: d})
	}

	// Write the base durably before touching the old files.
	path := filepath.Join(l.dir, baseName(baseIdx))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return &StorageError{Op: "compact", Err: err}
	}
	if _, err := f.WriteString(Magic); err != nil {
		f.Close()
		os.Remove(path)
		return &StorageError{Op: "compact", Err: err}
	}
	for _, rec := range compacted {
		if _, err := f.Write(encodeFrame(rec)); err != nil {
			f.Close()
			os.Remove(path)
			return &StorageError{Op: "compact", Err: err}
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return &StorageError{Op: "compact", Err: err}
	}
	if err := f.Close(); err != nil {
		return &StorageError{Op: "compact", Err: err}
	}
	if err := syncDir(l.dir); err != nil {
		return &StorageError{Op: "compact", Err: err}
	}
	l.fsyncs++

	// The base is durable: older files are garbage now. Removal is
	// best-effort — a leftover older file is shadowed by the newer base
	// at the next recovery.
	if l.f != nil {
		_ = l.f.Close()
		l.f = nil
		l.size = 0
	}
	entries, err := os.ReadDir(l.dir)
	if err == nil {
		for _, e := range entries {
			wf, ok := parseName(e.Name())
			if !ok || wf.idx >= baseIdx {
				continue
			}
			_ = os.Remove(filepath.Join(l.dir, e.Name()))
		}
	}
	l.records = compacted
	l.nextIdx = baseIdx + 1
	l.compactions++
	return nil
}
