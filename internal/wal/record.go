package wal

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/url"
	"strconv"
	"strings"

	"ptx/internal/relation"
	"ptx/internal/value"
)

// Magic is the first line of every segment file. ptxml sniffs it to
// tell a WAL segment from a plain delta script.
const Magic = "ptx-wal v1\n"

// Record is one durable log entry: a delta against one database, with
// the per-database sequence number and the ownership epoch the write
// carried. Seq is assigned by the appender (the registry) and is
// 1-based and strictly increasing per database; Epoch is the cluster
// fencing token (0 outside a cluster).
type Record struct {
	DB    string
	Seq   uint64
	Epoch uint64
	Delta *relation.Delta
}

// The segment format is line-oriented in the sealed-file style of
// supervise's snapshots: a magic header line, then zero or more frames
//
//	rec <payloadLen> <sha256hex>\n
//	<payload bytes>\n
//
// where the checksum covers exactly the payload bytes. The payload is
// itself line-oriented with every caller-controlled string
// percent-escaped, so arbitrary bytes (including newlines and spaces)
// round-trip:
//
//	db <esc(db)> <seq> <epoch>
//	+<esc(rel)> <esc(v1)> <esc(v2)> ...
//	-<esc(rel)> ...
//
// A frame is valid iff the header parses, the payload is complete, the
// terminator newline is present and the checksum matches; the first
// invalid frame ends recovery for the file (torn-tail truncation).

func encodePayload(rec Record) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "db %s %d %d", url.QueryEscape(rec.DB), rec.Seq, rec.Epoch)
	if rec.Delta != nil {
		for _, op := range rec.Delta.Ops {
			sign := "-"
			if op.Insert {
				sign = "+"
			}
			b.WriteByte('\n')
			b.WriteString(sign)
			b.WriteString(url.QueryEscape(op.Rel))
			for _, v := range op.Tuple {
				b.WriteByte(' ')
				b.WriteString(url.QueryEscape(string(v)))
			}
		}
	}
	return []byte(b.String())
}

// encodeFrame renders the full frame (header + payload + terminator)
// for one record.
func encodeFrame(rec Record) []byte {
	payload := encodePayload(rec)
	sum := sha256.Sum256(payload)
	var b bytes.Buffer
	fmt.Fprintf(&b, "rec %d %s\n", len(payload), hex.EncodeToString(sum[:]))
	b.Write(payload)
	b.WriteByte('\n')
	return b.Bytes()
}

func decodePayload(payload []byte) (Record, error) {
	lines := strings.Split(string(payload), "\n")
	head := strings.Split(lines[0], " ")
	if len(head) != 4 || head[0] != "db" {
		return Record{}, fmt.Errorf("malformed db line %q", lines[0])
	}
	db, err := url.QueryUnescape(head[1])
	if err != nil {
		return Record{}, fmt.Errorf("bad db name escape: %v", err)
	}
	seq, err := strconv.ParseUint(head[2], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad seq %q", head[2])
	}
	epoch, err := strconv.ParseUint(head[3], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad epoch %q", head[3])
	}
	d := &relation.Delta{}
	for i, ln := range lines[1:] {
		if ln == "" || (ln[0] != '+' && ln[0] != '-') {
			return Record{}, fmt.Errorf("op %d: malformed line %q", i, ln)
		}
		toks := strings.Split(ln[1:], " ")
		rel, err := url.QueryUnescape(toks[0])
		if err != nil || rel == "" {
			return Record{}, fmt.Errorf("op %d: bad relation escape %q", i, toks[0])
		}
		tuple := make(value.Tuple, 0, len(toks)-1)
		for _, tok := range toks[1:] {
			v, err := url.QueryUnescape(tok)
			if err != nil {
				return Record{}, fmt.Errorf("op %d: bad value escape %q", i, tok)
			}
			tuple = append(tuple, value.V(v))
		}
		if ln[0] == '+' {
			d.InsertTuple(rel, tuple)
		} else {
			d.DeleteTuple(rel, tuple)
		}
	}
	return Record{DB: db, Seq: seq, Epoch: epoch, Delta: d}, nil
}

// DecodeSegment parses one segment's bytes, returning every record up
// to the first invalid frame, the number of valid bytes from the start
// (the truncation point recovery uses), and a *CorruptError describing
// the first invalid frame (nil for a clean segment). It never panics on
// arbitrary input — FuzzWALDecode pins that.
func DecodeSegment(name string, data []byte) ([]Record, int64, *CorruptError) {
	if !bytes.HasPrefix(data, []byte(Magic)) {
		return nil, 0, &CorruptError{File: name, Offset: 0, Reason: "missing magic header"}
	}
	off := int64(len(Magic))
	var recs []Record
	for off < int64(len(data)) {
		rest := data[off:]
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			return recs, off, &CorruptError{File: name, Offset: off, Reason: "torn record header"}
		}
		fields := strings.Split(string(rest[:nl]), " ")
		if len(fields) != 3 || fields[0] != "rec" || len(fields[2]) != 2*sha256.Size {
			return recs, off, &CorruptError{File: name, Offset: off, Reason: fmt.Sprintf("malformed record header %q", string(rest[:nl]))}
		}
		plen, err := strconv.Atoi(fields[1])
		if err != nil || plen < 0 {
			return recs, off, &CorruptError{File: name, Offset: off, Reason: fmt.Sprintf("bad payload length %q", fields[1])}
		}
		body := rest[nl+1:]
		if plen >= len(body) { // needs plen payload bytes plus the terminator
			return recs, off, &CorruptError{File: name, Offset: off, Reason: "torn record payload"}
		}
		payload := body[:plen]
		if body[plen] != '\n' {
			return recs, off, &CorruptError{File: name, Offset: off, Reason: "missing record terminator"}
		}
		sum := sha256.Sum256(payload)
		if hex.EncodeToString(sum[:]) != fields[2] {
			return recs, off, &CorruptError{File: name, Offset: off, Reason: "checksum mismatch"}
		}
		rec, derr := decodePayload(payload)
		if derr != nil {
			return recs, off, &CorruptError{File: name, Offset: off, Reason: fmt.Sprintf("bad payload: %v", derr)}
		}
		recs = append(recs, rec)
		off += int64(nl) + 1 + int64(plen) + 1
	}
	return recs, off, nil
}
