package wal

import "fmt"

// CorruptError reports a record that failed integrity checking during
// recovery: a torn tail (the process died mid-write), a bit-flip (the
// checksum disagrees with the payload), or a malformed frame. Recovery
// truncates the log to the last valid record and carries on, so a
// CorruptError is a REPORT, not a refusal — Open still succeeds and the
// typed detail tells the operator exactly what was lost and where.
type CorruptError struct {
	File   string // segment file name
	Offset int64  // byte offset of the first invalid frame
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: %s: corrupt at offset %d: %s", e.File, e.Offset, e.Reason)
}

// StorageError reports a durability failure on the write path: a failed
// append, a failed fsync, a full disk. The record it covers is NOT
// durable — the log rolls the partial write back before returning, so
// an appender that sees a StorageError knows the delta is atomically
// absent and must not acknowledge it. The serve layer maps this to the
// "storage" error kind (HTTP 503).
type StorageError struct {
	Op  string // "append", "fsync", "rotate", "compact"
	Err error
}

func (e *StorageError) Error() string {
	return fmt.Sprintf("wal: %s: %v", e.Op, e.Err)
}

func (e *StorageError) Unwrap() error { return e.Err }
