package wal

import (
	"bytes"
	"testing"

	"ptx/internal/relation"
)

// FuzzWALDecode pins two properties of the segment decoder:
//
//  1. it never panics on arbitrary bytes (recovery reads disks we do
//     not control), and
//  2. decode∘encode is the identity on whatever it accepts: re-encoding
//     the decoded records and decoding again yields the same records —
//     the codec never loses or reorders data it claimed to understand.
func FuzzWALDecode(f *testing.F) {
	// Seed with well-formed logs so the fuzzer starts from the
	// interesting region of the input space.
	seed := func(recs ...Record) []byte {
		var b bytes.Buffer
		b.WriteString(Magic)
		for _, r := range recs {
			b.Write(encodeFrame(r))
		}
		return b.Bytes()
	}
	f.Add(seed())
	f.Add(seed(Record{DB: "db", Seq: 1, Epoch: 0, Delta: (&relation.Delta{}).Insert("R", "a")}))
	f.Add(seed(
		Record{DB: "a b", Seq: 2, Epoch: 9, Delta: (&relation.Delta{}).Insert("R", "x", "").Delete("S", "y\nz")},
		Record{DB: "c", Seq: 3, Epoch: 1, Delta: (&relation.Delta{}).Delete("R")},
	))
	f.Add([]byte(Magic + "rec 5 0000\nhello\n"))
	f.Add([]byte("not a wal"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, cerr := DecodeSegment("fuzz", data)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid offset %d outside [0,%d]", valid, len(data))
		}
		if cerr == nil && valid != int64(len(data)) {
			t.Fatalf("clean decode consumed %d of %d bytes", valid, len(data))
		}
		if len(recs) > 0 && valid == 0 {
			t.Fatal("records decoded from zero valid bytes")
		}
		// Round-trip: re-encode the accepted records, decode again, and
		// the two histories must agree field for field.
		var b bytes.Buffer
		b.WriteString(Magic)
		for _, r := range recs {
			b.Write(encodeFrame(r))
		}
		again, _, cerr2 := DecodeSegment("fuzz2", b.Bytes())
		if cerr2 != nil {
			t.Fatalf("re-encoded log does not decode: %v", cerr2)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(again))
		}
		for i := range recs {
			a, g := recs[i], again[i]
			if a.DB != g.DB || a.Seq != g.Seq || a.Epoch != g.Epoch || a.Delta.String() != g.Delta.String() {
				t.Fatalf("round trip changed record %d: %+v -> %+v", i, a, g)
			}
		}
	})
}
