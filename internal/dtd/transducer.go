package dtd

import (
	"fmt"

	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/relation"
	"ptx/internal/xmltree"
)

// RootID is the reserved identifier of the encoded tree's root node in
// the 4-ary edge relation.
const RootID = "n0"

// EncodingSchema is the relation R(parentID, parentSym, childID,
// childSym) encoding a tree inside a relational instance (the Theorem 5
// input schema).
func EncodingSchema() *relation.Schema {
	return relation.NewSchema().MustDeclare("R", 4)
}

// EncodeTree encodes t into the 4-ary relation, assigning node ids n0,
// n1, … in document order.
func EncodeTree(t *xmltree.Tree) *relation.Instance {
	inst := relation.NewInstance(EncodingSchema())
	counter := 0
	var rec func(n *xmltree.Node, id string)
	rec = func(n *xmltree.Node, id string) {
		for _, c := range n.Children {
			counter++
			cid := fmt.Sprintf("n%06d", counter)
			inst.Add("R", id, n.Tag, cid, c.Tag)
			rec(c, cid)
		}
	}
	rec(t.Root, RootID)
	return inst
}

// Transducer implements Theorem 5: it compiles a normalized DTD into a
// publishing transducer τd in PT(FO, tuple, virtual) over the encoding
// schema such that τd(R) = L(d): on instances that encode a conforming
// tree (checked by an FO well-formedness sentence φd) the transducer
// rebuilds that tree, splicing the normalization's aux symbols; on all
// other instances it emits a fixed minimal tree of L(d).
//
// The DTD's root symbol becomes the transducer's root tag and must not
// occur inside content models (the paper's convention that the root tag
// labels only the root).
func Transducer(n *Normalized) (*pt.Transducer, error) {
	if err := n.CheckNormalForm(); err != nil {
		return nil, err
	}
	d := n.DTD
	for sym, r := range d.Rules {
		for _, s := range Symbols(r) {
			if s == d.Root {
				return nil, fmt.Errorf("dtd: root symbol %s occurs in the content model of %s", d.Root, sym)
			}
		}
	}
	minimal := d.MinimalTree()
	if minimal == nil {
		return nil, fmt.Errorf("dtd: L(d) is empty; no transducer can generate it")
	}

	t := pt.New("dtd-"+d.Root, EncodingSchema(), "q0", d.Root)
	for _, sym := range d.Alphabet() {
		if sym == d.Root {
			continue
		}
		t.DeclareTag(sym, 1)
		if n.Aux[sym] {
			t.MarkVirtual(sym)
		}
	}

	phiD := wellFormed(d)
	x := logic.Var("x")

	// childSymbols lists the child symbols of a normalized rule.
	childSymbols := func(sym string) []string {
		switch g := d.Rule(sym).(type) {
		case *Seq:
			var out []string
			for _, p := range g.Parts {
				out = append(out, p.(*Sym).Name)
			}
			return out
		case *Alt:
			var out []string
			for _, p := range g.Parts {
				out = append(out, p.(*Sym).Name)
			}
			return out
		case *Star:
			return []string{g.Inner.(*Sym).Name}
		}
		return nil
	}

	// Start rule: generation items guarded by φd plus fallback items
	// guarded by ¬φd (building the minimal tree).
	var startItems []pt.RHS
	for _, cs := range childSymbols(d.Root) {
		f := logic.Conj(
			logic.R("R", logic.Const(RootID), logic.Const(d.Root), x, logic.Const(cs)),
			phiD)
		startItems = append(startItems, pt.Item("g", cs, logic.MustQuery([]logic.Var{x}, nil, f)))
	}
	for _, c := range minimal.Root.Children {
		startItems = append(startItems, pt.Item("fb", c.Tag,
			logic.MustQuery([]logic.Var{x}, nil,
				logic.Conj(logic.EqT(x, logic.Const("1")), &logic.Not{F: phiD}))))
	}
	t.AddRule("q0", d.Root, startItems...)

	// Generation rules: the register holds the node's id.
	p := logic.Var("p")
	for _, sym := range d.Alphabet() {
		if sym == d.Root {
			continue
		}
		var items []pt.RHS
		for _, cs := range childSymbols(sym) {
			f := logic.Ex([]logic.Var{p}, logic.Conj(
				logic.R(pt.RegRel, p),
				logic.R("R", p, logic.Const(sym), x, logic.Const(cs)),
			))
			items = append(items, pt.Item("g", cs, logic.MustQuery([]logic.Var{x}, nil, f)))
		}
		t.AddRule("g", sym, items...)
	}

	// Fallback rules: one per symbol, spawning the minimal derivation's
	// children with constant queries.
	fbOne := logic.MustQuery([]logic.Var{x}, nil, logic.EqT(x, logic.Const("1")))
	for _, sym := range d.Alphabet() {
		if sym == d.Root {
			continue
		}
		var items []pt.RHS
		for _, cs := range minimalChildren(d, sym) {
			items = append(items, pt.Item("fb", cs, fbOne))
		}
		t.AddRule("fb", sym, items...)
	}

	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// minimalChildren returns the child-symbol sequence of the minimal
// derivation for sym (the same choice MinimalTree makes).
func minimalChildren(d *DTD, sym string) []string {
	m := d.MinimalTree()
	_ = m
	// Recompute the minimal sequence directly (shared logic with
	// MinimalTree's minSeq via a tiny local fixpoint).
	sub := New(sym, d.Rules)
	t := sub.MinimalTree()
	if t == nil {
		return nil
	}
	out := make([]string, len(t.Root.Children))
	for i, c := range t.Root.Children {
		out[i] = c.Tag
	}
	return out
}

// wellFormed builds the FO sentence φd over the encoding relation:
// symbol assignments are consistent, every node has a unique parent,
// the root has none and carries the root symbol, and each node's
// children satisfy its (normalized) content model.
func wellFormed(d *DTD) logic.Formula {
	v := func(s string) logic.Var { return logic.Var(s) }
	p1, a1, c1, b1 := v("wp1"), v("wa1"), v("wc1"), v("wb1")
	p2, a2, c2, b2 := v("wp2"), v("wa2"), v("wc2"), v("wb2")

	implies := func(l, r logic.Formula) logic.Formula {
		return logic.Disj(&logic.Not{F: l}, r)
	}
	all4x2 := func(body logic.Formula) logic.Formula {
		return logic.All([]logic.Var{p1, a1, c1, b1, p2, a2, c2, b2}, body)
	}
	r1 := logic.R("R", p1, a1, c1, b1)
	r2 := logic.R("R", p2, a2, c2, b2)

	var parts []logic.Formula
	// Parent symbol functional.
	parts = append(parts, all4x2(implies(
		logic.Conj(r1, r2, logic.EqT(p1, p2)), logic.EqT(a1, a2))))
	// Child symbol functional.
	parts = append(parts, all4x2(implies(
		logic.Conj(r1, r2, logic.EqT(c1, c2)), logic.EqT(b1, b2))))
	// A node's symbol as child matches its symbol as parent.
	parts = append(parts, all4x2(implies(
		logic.Conj(r1, r2, logic.EqT(c1, p2)), logic.EqT(b1, a2))))
	// Unique parent.
	parts = append(parts, all4x2(implies(
		logic.Conj(r1, r2, logic.EqT(c1, c2)), logic.EqT(p1, p2))))
	// The root is nobody's child, and its outgoing edges carry the root
	// symbol.
	parts = append(parts, &logic.Not{F: logic.Ex([]logic.Var{p1, a1, b1},
		logic.R("R", p1, a1, logic.Const(RootID), b1))})
	parts = append(parts, logic.All([]logic.Var{a1, c1, b1}, implies(
		logic.R("R", logic.Const(RootID), a1, c1, b1),
		logic.EqT(a1, logic.Const(d.Root)))))

	// Per-symbol local conformance.
	xn := v("wx")
	for _, sym := range d.Alphabet() {
		symC := logic.Const(sym)
		// nodeWithSym(xn): xn occurs as a child with symbol sym, or xn is
		// the root and sym is the root symbol.
		var nodeWith logic.Formula = logic.Ex([]logic.Var{p1, a1},
			logic.R("R", p1, a1, xn, symC))
		if sym == d.Root {
			nodeWith = logic.EqT(xn, logic.Const(RootID))
		}
		conf := conformance(d, sym, xn)
		parts = append(parts, logic.All([]logic.Var{xn}, implies(nodeWith, conf)))
	}
	return logic.Conj(parts...)
}

// conformance builds the per-node content check for a normalized rule.
func conformance(d *DTD, sym string, xn logic.Var) logic.Formula {
	v := func(s string) logic.Var { return logic.Var(s) }
	y, b, y2, b2 := v("wy"), v("wb"), v("wy2"), v("wb2")
	symC := logic.Const(sym)
	child := logic.R("R", xn, symC, y, b)
	child2 := logic.R("R", xn, symC, y2, b2)
	implies := func(l, r logic.Formula) logic.Formula {
		return logic.Disj(&logic.Not{F: l}, r)
	}
	oneOf := func(t logic.Term, syms []string) logic.Formula {
		var opts []logic.Formula
		for _, s := range syms {
			opts = append(opts, logic.EqT(t, logic.Const(s)))
		}
		return logic.Disj(opts...)
	}

	switch g := d.Rule(sym).(type) {
	case *Seq:
		var names []string
		for _, p := range g.Parts {
			names = append(names, p.(*Sym).Name)
		}
		var parts []logic.Formula
		for _, name := range names {
			// Exactly one child with this symbol.
			exact := logic.Ex([]logic.Var{y}, logic.Conj(
				logic.R("R", xn, symC, y, logic.Const(name)),
				logic.All([]logic.Var{y2}, implies(
					logic.R("R", xn, symC, y2, logic.Const(name)),
					logic.EqT(y2, y))),
			))
			parts = append(parts, exact)
		}
		// No children outside the listed symbols.
		if len(names) == 0 {
			parts = append(parts, &logic.Not{F: logic.Ex([]logic.Var{y, b}, child)})
		} else {
			parts = append(parts, logic.All([]logic.Var{y, b},
				implies(child, oneOf(b, names))))
		}
		return logic.Conj(parts...)
	case *Alt:
		var names []string
		for _, p := range g.Parts {
			names = append(names, p.(*Sym).Name)
		}
		return logic.Conj(
			logic.Ex([]logic.Var{y, b}, child),
			logic.All([]logic.Var{y, b, y2, b2}, implies(
				logic.Conj(child, child2),
				logic.Conj(logic.EqT(y, y2), logic.EqT(b, b2)))),
			logic.All([]logic.Var{y, b}, implies(child, oneOf(b, names))),
		)
	case *Star:
		name := g.Inner.(*Sym).Name
		return logic.All([]logic.Var{y, b}, implies(child, logic.EqT(b, logic.Const(name))))
	default:
		// Undeclared symbol: leaf, no children.
		return &logic.Not{F: logic.Ex([]logic.Var{y, b}, child)}
	}
}
