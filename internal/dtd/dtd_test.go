package dtd

import (
	"math/rand"
	"testing"

	"ptx/internal/pt"
	"ptx/internal/relation"
	"ptx/internal/xmltree"
)

func TestRegexMatch(t *testing.T) {
	cases := []struct {
		r    Regex
		seq  []string
		want bool
	}{
		{Cat(S("a"), S("b")), []string{"a", "b"}, true},
		{Cat(S("a"), S("b")), []string{"b", "a"}, false},
		{Cat(), nil, true},
		{Rep(S("a")), nil, true},
		{Rep(S("a")), []string{"a", "a", "a"}, true},
		{Rep(S("a")), []string{"a", "b"}, false},
		{Or(S("a"), S("b")), []string{"b"}, true},
		{Or(S("a"), S("b")), nil, false},
		{Maybe(S("a")), nil, true},
		{Maybe(S("a")), []string{"a"}, true},
		{Maybe(S("a")), []string{"a", "a"}, false},
		{OneOrMore(S("a")), nil, false},
		{OneOrMore(S("a")), []string{"a", "a"}, true},
		{Cat(S("a"), Rep(Or(S("b"), S("c"))), S("a")), []string{"a", "b", "c", "b", "a"}, true},
		{&Empty{}, nil, false},
		{Eps(), nil, true},
		{Eps(), []string{"a"}, false},
	}
	for _, c := range cases {
		if got := Compile(c.r).Match(c.seq); got != c.want {
			t.Errorf("%s on %v = %v, want %v", c.r, c.seq, got, c.want)
		}
	}
}

func TestMatchChoices(t *testing.T) {
	// (a,b): choices [{a,b},{a,b}] has the witness a,b.
	nfa := Compile(Cat(S("a"), S("b")))
	ok, picks := nfa.MatchChoices([][]string{{"a", "b"}, {"a", "b"}})
	if !ok || picks[0] != "a" || picks[1] != "b" {
		t.Fatalf("MatchChoices = %v %v", ok, picks)
	}
	ok, _ = nfa.MatchChoices([][]string{{"b"}, {"a", "b"}})
	if ok {
		t.Fatal("no valid pick should exist")
	}
}

func courseDTD() *DTD {
	return New("db", map[string]Regex{
		"db":     Rep(S("course")),
		"course": Cat(S("cno"), S("title"), Maybe(S("prereq"))),
		"prereq": Rep(S("course")),
	})
}

func TestValidate(t *testing.T) {
	d := courseDTD()
	good := xmltree.MustParse("db(course(cno,title),course(cno,title,prereq(course(cno,title))))")
	if !d.Validate(good) {
		t.Error("conforming tree rejected")
	}
	bad := xmltree.MustParse("db(course(title,cno))")
	if d.Validate(bad) {
		t.Error("wrong child order accepted")
	}
	wrongRoot := xmltree.MustParse("course(cno,title)")
	if d.Validate(wrongRoot) {
		t.Error("wrong root accepted")
	}
}

func TestRandomTreesConform(t *testing.T) {
	d := courseDTD()
	rng := rand.New(rand.NewSource(3))
	found := 0
	for i := 0; i < 50; i++ {
		tr := d.RandomTree(rng, 8, 2)
		if tr == nil {
			continue
		}
		found++
		if !d.Validate(tr) {
			t.Fatalf("sampled tree does not conform: %s", tr.Canonical())
		}
	}
	if found < 10 {
		t.Fatalf("sampler too often hit the depth bound: %d/50", found)
	}
}

func TestMinimalTree(t *testing.T) {
	d := courseDTD()
	m := d.MinimalTree()
	if m == nil {
		t.Fatal("minimal tree exists")
	}
	if !d.Validate(m) {
		t.Fatalf("minimal tree does not conform: %s", m.Canonical())
	}
	if m.Canonical() != "db" {
		t.Fatalf("minimal course tree should be the bare db (star allows zero): %s", m.Canonical())
	}
	// A DTD whose root requires a child.
	d2 := New("r", map[string]Regex{"r": Cat(S("a"), S("b"))})
	m2 := d2.MinimalTree()
	if m2 == nil || m2.Canonical() != "r(a,b)" {
		t.Fatalf("minimal = %v", m2)
	}
	// Unsatisfiable DTD: a requires itself.
	d3 := New("r", map[string]Regex{"r": Cat(S("a")), "a": Cat(S("a"))})
	if d3.MinimalTree() != nil {
		t.Fatal("infinitely recursive DTD has no finite tree")
	}
}

func TestNormalize(t *testing.T) {
	d := courseDTD()
	n, err := Normalize(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.CheckNormalForm(); err != nil {
		t.Fatal(err)
	}
	// Trees over the normalized alphabet, spliced, conform to the
	// original DTD.
	rng := rand.New(rand.NewSource(9))
	checked := 0
	for i := 0; i < 60 && checked < 15; i++ {
		tr := n.DTD.RandomTree(rng, 10, 2)
		if tr == nil {
			continue
		}
		checked++
		spliced := n.SpliceAux(tr.Clone())
		if !d.Validate(spliced) {
			t.Fatalf("normalized tree %s spliced to %s does not conform to original",
				tr.Canonical(), spliced.Canonical())
		}
	}
	if checked == 0 {
		t.Fatal("no normalized samples")
	}
}

func TestNormalizeDuplicateConcat(t *testing.T) {
	// a → (b, b): the second b must become an aux component.
	d := New("r", map[string]Regex{"r": Cat(S("b"), S("b"))})
	n, err := Normalize(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.CheckNormalForm(); err != nil {
		t.Fatal(err)
	}
	tr := n.DTD.RandomTree(rand.New(rand.NewSource(1)), 5, 1)
	if tr == nil {
		t.Fatal("sample failed")
	}
	spliced := n.SpliceAux(tr.Clone())
	if spliced.Canonical() != "r(b,b)" {
		t.Fatalf("spliced = %s", spliced.Canonical())
	}
}

func TestExtendedDTD(t *testing.T) {
	// The classic: root has a list of a's where the LAST a is special.
	// Σ' = {r, a1, a2}, µ(a1)=µ(a2)=a, d: r → a1* a2; a-trees conform iff
	// they end with at least one a.
	e := &Extended{
		DTD: New("r", map[string]Regex{
			"r": Cat(Rep(S("a1")), S("a2")),
		}),
		Mu: map[string]string{"r": "r", "a1": "a", "a2": "a"},
	}
	if !e.Conforms(xmltree.MustParse("r(a)")) {
		t.Error("single a conforms (as a2)")
	}
	if !e.Conforms(xmltree.MustParse("r(a,a,a)")) {
		t.Error("three a's conform")
	}
	if e.Conforms(xmltree.MustParse("r")) {
		t.Error("empty list must not conform (a2 required)")
	}
	if e.Conforms(xmltree.MustParse("r(b)")) {
		t.Error("wrong label must not conform")
	}
}

func TestExtendedDTDDeep(t *testing.T) {
	// Specialization propagates: b-nodes under special a's.
	e := &Extended{
		DTD: New("r", map[string]Regex{
			"r":  Cat(S("a1"), S("a2")),
			"a1": Eps(),
			"a2": Cat(S("b")),
		}),
		Mu: map[string]string{"r": "r", "a1": "a", "a2": "a", "b": "b"},
	}
	if !e.Conforms(xmltree.MustParse("r(a,a(b))")) {
		t.Error("second a with b child conforms")
	}
	if e.Conforms(xmltree.MustParse("r(a(b),a)")) {
		t.Error("b under the first a must not conform")
	}
}

// --- Theorem 5 ----------------------------------------------------------

func theorem5Fixture(t *testing.T, d *DTD) (*Normalized, *pt.Transducer) {
	t.Helper()
	n, err := Normalize(d)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Transducer(n)
	if err != nil {
		t.Fatal(err)
	}
	return n, tr
}

func TestTheorem5RoundTrip(t *testing.T) {
	d := courseDTD()
	n, tr := theorem5Fixture(t, d)
	if cl := tr.Classify(); cl.Store != pt.TupleStore {
		t.Fatalf("Theorem 5 class: %s", cl)
	}
	rng := rand.New(rand.NewSource(17))
	rounds := 0
	for i := 0; i < 120 && rounds < 10; i++ {
		sample := n.DTD.RandomTree(rng, 9, 2)
		if sample == nil || sample.Size() > 45 {
			continue
		}
		rounds++
		inst := EncodeTree(sample)
		out, err := tr.Output(inst, pt.Options{MaxNodes: 100000})
		if err != nil {
			t.Fatal(err)
		}
		want := n.SpliceAux(sample.Clone())
		if !out.Equal(want) {
			t.Fatalf("round %d:\nencoded  %s\nproduced %s\nwant     %s",
				rounds, sample.Canonical(), out.Canonical(), want.Canonical())
		}
		if !d.Validate(out) {
			t.Fatalf("output does not conform to d: %s", out.Canonical())
		}
	}
	if rounds == 0 {
		t.Fatal("no samples")
	}
}

func TestTheorem5FallbackOnJunk(t *testing.T) {
	d := courseDTD()
	_, tr := theorem5Fixture(t, d)
	junk := EncodeTree(xmltree.MustParse("db(course(title,cno))")) // wrong order
	// Wrong order violates the concat conformance (title is an aux
	// position mismatch) — but encode uses original symbols, which are
	// not the normalized alphabet, so φd fails and the fallback fires.
	out, err := tr.Output(junk, pt.Options{MaxNodes: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Validate(out) {
		t.Fatalf("fallback output must conform: %s", out.Canonical())
	}
	// A completely scrambled instance also falls back into L(d).
	scrambled := EncodingSchemaInstance([][4]string{
		{"n0", "db", "z1", "nonsense"},
		{"z1", "weird", "z2", "stuff"},
	})
	out, err = tr.Output(scrambled, pt.Options{MaxNodes: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Validate(out) {
		t.Fatalf("fallback on scrambled input must conform: %s", out.Canonical())
	}
}

func TestTheorem5AlwaysInLanguage(t *testing.T) {
	// The key Theorem 5 invariant: τd(I) ∈ L(d) for arbitrary instances.
	d := New("r", map[string]Regex{
		"r": Or(S("b1"), S("b2")),
	})
	n, tr := theorem5Fixture(t, d)
	_ = n
	rng := rand.New(rand.NewSource(23))
	vals := []string{"n0", "n1", "n2", "r", "b1", "b2", "x"}
	for trial := 0; trial < 40; trial++ {
		var rows [][4]string
		for k := 0; k < rng.Intn(5); k++ {
			rows = append(rows, [4]string{
				vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))],
				vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))]})
		}
		inst := EncodingSchemaInstance(rows)
		out, err := tr.Output(inst, pt.Options{MaxNodes: 100000})
		if err != nil {
			t.Fatal(err)
		}
		if !d.Validate(out) {
			t.Fatalf("trial %d: output %s outside L(d) for instance %s",
				trial, out.Canonical(), inst)
		}
	}
}

func TestTheorem5ChoiceDTDBothTrees(t *testing.T) {
	// The DTD of Theorem 5's second part: r → b1 + b2. The FO transducer
	// produces both trees (from their encodings) — the capability CQ
	// transducers lack by monotonicity.
	d := New("r", map[string]Regex{"r": Or(S("b1"), S("b2"))})
	n, tr := theorem5Fixture(t, d)
	_ = n
	for _, want := range []string{"r(b1)", "r(b2)"} {
		inst := EncodeTree(xmltree.MustParse(want))
		out, err := tr.Output(inst, pt.Options{MaxNodes: 1000})
		if err != nil {
			t.Fatal(err)
		}
		if out.Canonical() != want {
			t.Fatalf("got %s, want %s", out.Canonical(), want)
		}
	}
}

func TestTheorem5RejectsEmptyLanguage(t *testing.T) {
	d := New("r", map[string]Regex{"r": Cat(S("a")), "a": Cat(S("a"))})
	n, err := Normalize(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Transducer(n); err == nil {
		t.Fatal("empty language must be rejected")
	}
}

// EncodingSchemaInstance builds an instance of the encoding schema from
// literal rows (test helper).
func EncodingSchemaInstance(rows [][4]string) *relation.Instance {
	inst := relation.NewInstance(EncodingSchema())
	for _, r := range rows {
		inst.Add("R", r[0], r[1], r[2], r[3])
	}
	return inst
}
