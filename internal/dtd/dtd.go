package dtd

import (
	"fmt"
	"math/rand"
	"sort"

	"ptx/internal/xmltree"
)

// DTD maps element symbols to content models; Root names the root
// element. Symbols without a rule are leaves (empty content).
type DTD struct {
	Root  string
	Rules map[string]Regex
}

// New builds a DTD.
func New(root string, rules map[string]Regex) *DTD {
	if rules == nil {
		rules = map[string]Regex{}
	}
	return &DTD{Root: root, Rules: rules}
}

// Rule returns the content model for a symbol (ε for undeclared leaves).
func (d *DTD) Rule(sym string) Regex {
	if r, ok := d.Rules[sym]; ok {
		return r
	}
	return Eps()
}

// Alphabet returns every symbol mentioned by the DTD, sorted.
func (d *DTD) Alphabet() []string {
	set := map[string]bool{d.Root: true}
	for sym, r := range d.Rules {
		set[sym] = true
		for _, s := range Symbols(r) {
			set[s] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Validate reports whether t conforms to d: the root carries d.Root and
// every node's child-label sequence matches its content model.
func (d *DTD) Validate(t *xmltree.Tree) bool {
	if t.Root.Tag != d.Root {
		return false
	}
	nfas := map[string]*NFA{}
	ok := true
	t.Walk(func(n *xmltree.Node) bool {
		nfa, have := nfas[n.Tag]
		if !have {
			nfa = Compile(d.Rule(n.Tag))
			nfas[n.Tag] = nfa
		}
		seq := make([]string, len(n.Children))
		for i, c := range n.Children {
			seq[i] = c.Tag
		}
		if !nfa.Match(seq) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// RandomTree samples a tree from L(d) by deriving content models with
// bounded repetition; it returns nil when the depth bound is hit
// (recursive DTDs may need several attempts).
func (d *DTD) RandomTree(rng *rand.Rand, maxDepth, maxRep int) *xmltree.Tree {
	var derive func(sym string, depth int) *xmltree.Node
	derive = func(sym string, depth int) *xmltree.Node {
		if depth > maxDepth {
			return nil
		}
		n := &xmltree.Node{Tag: sym}
		seq, ok := sample(d.Rule(sym), rng, maxRep)
		if !ok {
			return nil
		}
		for _, c := range seq {
			cn := derive(c, depth+1)
			if cn == nil {
				return nil
			}
			n.Children = append(n.Children, cn)
		}
		return n
	}
	root := derive(d.Root, 1)
	if root == nil {
		return nil
	}
	return &xmltree.Tree{Root: root}
}

// sample draws a random symbol sequence from a content model.
func sample(r Regex, rng *rand.Rand, maxRep int) ([]string, bool) {
	switch g := r.(type) {
	case *Empty:
		return nil, false
	case *Epsilon:
		return nil, true
	case *Sym:
		return []string{g.Name}, true
	case *Seq:
		var out []string
		for _, p := range g.Parts {
			s, ok := sample(p, rng, maxRep)
			if !ok {
				return nil, false
			}
			out = append(out, s...)
		}
		return out, true
	case *Alt:
		if len(g.Parts) == 0 {
			return nil, false
		}
		return sample(g.Parts[rng.Intn(len(g.Parts))], rng, maxRep)
	case *Star:
		var out []string
		for i := rng.Intn(maxRep + 1); i > 0; i-- {
			s, ok := sample(g.Inner, rng, maxRep)
			if !ok {
				return nil, false
			}
			out = append(out, s...)
		}
		return out, true
	case *Plus:
		var out []string
		for i := 1 + rng.Intn(maxRep); i > 0; i-- {
			s, ok := sample(g.Inner, rng, maxRep)
			if !ok {
				return nil, false
			}
			out = append(out, s...)
		}
		return out, true
	case *Opt:
		if rng.Intn(2) == 0 {
			return nil, true
		}
		return sample(g.Inner, rng, maxRep)
	}
	return nil, false
}

// MinimalTree returns a smallest-height tree in L(d), or nil when the
// language is empty. It is the fallback output of the Theorem 5
// transducer on ill-formed instances.
func (d *DTD) MinimalTree() *xmltree.Tree {
	// Height of the minimal derivation per symbol, computed to fixpoint.
	height := map[string]int{}
	const inf = 1 << 30
	h := func(sym string) int {
		if v, ok := height[sym]; ok {
			return v
		}
		return inf
	}
	// minSeq computes the cheapest symbol sequence for a regex given
	// current heights; cost of a sequence is max of symbol heights
	// (0 for ε).
	var minSeq func(r Regex) ([]string, int)
	minSeq = func(r Regex) ([]string, int) {
		switch g := r.(type) {
		case *Empty:
			return nil, inf
		case *Epsilon:
			return nil, 0
		case *Sym:
			return []string{g.Name}, h(g.Name)
		case *Seq:
			var out []string
			cost := 0
			for _, p := range g.Parts {
				s, c := minSeq(p)
				if c >= inf {
					return nil, inf
				}
				if c > cost {
					cost = c
				}
				out = append(out, s...)
			}
			return out, cost
		case *Alt:
			best, bestCost := []string(nil), inf
			found := false
			for _, p := range g.Parts {
				s, c := minSeq(p)
				if c < bestCost {
					best, bestCost, found = s, c, true
				}
			}
			if !found {
				return nil, inf
			}
			return best, bestCost
		case *Star:
			return nil, 0 // zero repetitions
		case *Plus:
			return minSeq(g.Inner)
		case *Opt:
			return nil, 0
		}
		return nil, inf
	}
	// Fixpoint on heights.
	for changed := true; changed; {
		changed = false
		for _, sym := range d.Alphabet() {
			_, c := minSeq(d.Rule(sym))
			if c < inf && c+1 < h(sym) {
				height[sym] = c + 1
				changed = true
			}
		}
	}
	if h(d.Root) >= inf {
		return nil
	}
	var build func(sym string) *xmltree.Node
	build = func(sym string) *xmltree.Node {
		n := &xmltree.Node{Tag: sym}
		seq, _ := minSeq(d.Rule(sym))
		for _, c := range seq {
			n.Children = append(n.Children, build(c))
		}
		return n
	}
	return &xmltree.Tree{Root: build(d.Root)}
}

// Extended is an extended (specialized) DTD (Σ′, d, µ): a DTD over the
// specialization alphabet Σ′ and a projection µ: Σ′ → Σ. A Σ-tree
// conforms when some Σ′-relabeling of it conforms to the DTD.
type Extended struct {
	DTD *DTD
	Mu  map[string]string
}

// Conforms decides extended-DTD conformance by bottom-up dynamic
// programming over candidate specializations, using the NFA product
// construction for per-node content checks.
func (e *Extended) Conforms(t *xmltree.Tree) bool {
	inv := map[string][]string{}
	for sp, out := range e.Mu {
		inv[out] = append(inv[out], sp)
	}
	for _, v := range inv {
		sort.Strings(v)
	}
	nfas := map[string]*NFA{}
	nfa := func(sym string) *NFA {
		if n, ok := nfas[sym]; ok {
			return n
		}
		n := Compile(e.DTD.Rule(sym))
		nfas[sym] = n
		return n
	}
	var possible func(n *xmltree.Node) []string
	possible = func(n *xmltree.Node) []string {
		choices := make([][]string, len(n.Children))
		for i, c := range n.Children {
			choices[i] = possible(c)
			if len(choices[i]) == 0 {
				return nil
			}
		}
		var out []string
		for _, sp := range inv[n.Tag] {
			if ok, _ := nfa(sp).MatchChoices(choices); ok {
				out = append(out, sp)
			}
		}
		return out
	}
	for _, sp := range possible(t.Root) {
		if e.Mu[sp] == t.Root.Tag && sp == e.DTD.Root {
			return true
		}
	}
	return false
}

// String renders the DTD.
func (d *DTD) String() string {
	var sb []byte
	sb = append(sb, fmt.Sprintf("root %s\n", d.Root)...)
	for _, sym := range d.Alphabet() {
		if r, ok := d.Rules[sym]; ok {
			sb = append(sb, fmt.Sprintf("%s -> %s\n", sym, r)...)
		}
	}
	return string(sb)
}
