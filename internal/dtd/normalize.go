package dtd

import (
	"fmt"

	"ptx/internal/xmltree"
)

// Normalized is a DTD in the normal form of the Theorem 5 proof: every
// rule is a concatenation of pairwise-distinct symbols, a disjunction
// of symbols, or a star of a single symbol. Aux marks the fresh symbols
// introduced by normalization; they become virtual tags in the
// Theorem 5 transducer and are spliced out of generated trees.
type Normalized struct {
	DTD *DTD
	Aux map[string]bool
}

// Normalize rewrites an arbitrary DTD into normal form by introducing
// auxiliary symbols. The empty-language regex ∅ is rejected.
func Normalize(d *DTD) (*Normalized, error) {
	n := &Normalized{
		DTD: New(d.Root, map[string]Regex{}),
		Aux: map[string]bool{},
	}
	counter := 0
	fresh := func() string {
		counter++
		return fmt.Sprintf("_x%d", counter)
	}

	var normRule func(sym string, r Regex) error
	// component returns a symbol standing for part: the part itself when
	// it is a plain symbol (and allowed directly), else a fresh aux
	// symbol with its own normalized rule.
	component := func(part Regex, direct func(string) bool) (string, error) {
		if s, ok := part.(*Sym); ok && direct(s.Name) {
			return s.Name, nil
		}
		aux := fresh()
		n.Aux[aux] = true
		if err := normRule(aux, part); err != nil {
			return "", err
		}
		return aux, nil
	}

	normRule = func(sym string, r Regex) error {
		switch g := r.(type) {
		case *Empty:
			return fmt.Errorf("dtd: cannot normalize the empty-language content model of %s", sym)
		case *Epsilon:
			n.DTD.Rules[sym] = Cat()
			return nil
		case *Sym:
			n.DTD.Rules[sym] = Cat(S(g.Name))
			return nil
		case *Seq:
			seen := map[string]bool{}
			var parts []Regex
			for _, p := range g.Parts {
				c, err := component(p, func(name string) bool { return !seen[name] })
				if err != nil {
					return err
				}
				seen[c] = true
				parts = append(parts, S(c))
			}
			n.DTD.Rules[sym] = Cat(parts...)
			return nil
		case *Alt:
			if len(g.Parts) == 0 {
				return fmt.Errorf("dtd: empty disjunction in content model of %s", sym)
			}
			seen := map[string]bool{}
			var parts []Regex
			for _, p := range g.Parts {
				c, err := component(p, func(string) bool { return true })
				if err != nil {
					return err
				}
				if seen[c] {
					continue
				}
				seen[c] = true
				parts = append(parts, S(c))
			}
			n.DTD.Rules[sym] = Or(parts...)
			return nil
		case *Star:
			c, err := component(g.Inner, func(string) bool { return true })
			if err != nil {
				return err
			}
			n.DTD.Rules[sym] = Rep(S(c))
			return nil
		case *Plus:
			return normRule(sym, Cat(g.Inner, Rep(g.Inner)))
		case *Opt:
			return normRule(sym, Or(g.Inner, Eps()))
		}
		return fmt.Errorf("dtd: unknown regex %T", r)
	}

	for _, sym := range d.Alphabet() {
		if r, ok := d.Rules[sym]; ok {
			if err := normRule(sym, r); err != nil {
				return nil, err
			}
		}
	}
	return n, nil
}

// CheckNormalForm verifies every rule is in normal form and that
// concatenation components are pairwise distinct.
func (n *Normalized) CheckNormalForm() error {
	for sym, r := range n.DTD.Rules {
		switch g := r.(type) {
		case *Seq:
			seen := map[string]bool{}
			for _, p := range g.Parts {
				s, ok := p.(*Sym)
				if !ok {
					return fmt.Errorf("dtd: %s: concatenation of non-symbol %s", sym, p)
				}
				if seen[s.Name] {
					return fmt.Errorf("dtd: %s: duplicate concatenation component %s", sym, s.Name)
				}
				seen[s.Name] = true
			}
		case *Alt:
			for _, p := range g.Parts {
				if _, ok := p.(*Sym); !ok {
					return fmt.Errorf("dtd: %s: disjunction of non-symbol %s", sym, p)
				}
			}
		case *Star:
			if _, ok := g.Inner.(*Sym); !ok {
				return fmt.Errorf("dtd: %s: star of non-symbol %s", sym, g.Inner)
			}
		default:
			return fmt.Errorf("dtd: %s: rule %s is not in normal form", sym, r)
		}
	}
	return nil
}

// SpliceAux removes aux symbols from a tree over the normalized
// alphabet in place, recovering the original-DTD tree.
func (n *Normalized) SpliceAux(t *xmltree.Tree) *xmltree.Tree {
	return t.SpliceVirtual(n.Aux)
}
