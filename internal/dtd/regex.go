// Package dtd implements DTDs with regular-expression content models,
// extended (specialized) DTDs — the abstraction of the regular unranked
// tree languages used in Section 6.3 — tree validation, normalization,
// and the Theorem 5 construction compiling a DTD into a publishing
// transducer in PT(FO, tuple, virtual) whose language is exactly L(d).
package dtd

import (
	"fmt"
	"strings"
)

// Regex is a regular expression over element symbols.
type Regex interface {
	isRegex()
	String() string
}

// Empty matches nothing (∅).
type Empty struct{}

// Epsilon matches the empty sequence.
type Epsilon struct{}

// Sym matches a single element symbol.
type Sym struct{ Name string }

// Seq matches the concatenation of its parts.
type Seq struct{ Parts []Regex }

// Alt matches any one of its parts.
type Alt struct{ Parts []Regex }

// Star matches zero or more repetitions.
type Star struct{ Inner Regex }

// Plus matches one or more repetitions.
type Plus struct{ Inner Regex }

// Opt matches zero or one occurrence.
type Opt struct{ Inner Regex }

func (*Empty) isRegex()   {}
func (*Epsilon) isRegex() {}
func (*Sym) isRegex()     {}
func (*Seq) isRegex()     {}
func (*Alt) isRegex()     {}
func (*Star) isRegex()    {}
func (*Plus) isRegex()    {}
func (*Opt) isRegex()     {}

func (*Empty) String() string   { return "∅" }
func (*Epsilon) String() string { return "ε" }
func (s *Sym) String() string   { return s.Name }

func joinRegex(parts []Regex, sep string) string {
	out := make([]string, len(parts))
	for i, p := range parts {
		out[i] = p.String()
	}
	return strings.Join(out, sep)
}

func (s *Seq) String() string  { return "(" + joinRegex(s.Parts, ",") + ")" }
func (a *Alt) String() string  { return "(" + joinRegex(a.Parts, "+") + ")" }
func (s *Star) String() string { return s.Inner.String() + "*" }
func (p *Plus) String() string { return p.Inner.String() + "+" }
func (o *Opt) String() string  { return o.Inner.String() + "?" }

// Convenience constructors.
func S(name string) *Sym      { return &Sym{Name: name} }
func Cat(parts ...Regex) *Seq { return &Seq{Parts: parts} }
func Or(parts ...Regex) *Alt  { return &Alt{Parts: parts} }
func Rep(inner Regex) *Star   { return &Star{Inner: inner} }
func Eps() *Epsilon           { return &Epsilon{} }
func Maybe(inner Regex) *Opt  { return &Opt{Inner: inner} }
func OneOrMore(r Regex) *Plus { return &Plus{Inner: r} }

// Symbols returns the element symbols occurring in the expression.
func Symbols(r Regex) []string {
	set := map[string]bool{}
	var rec func(Regex)
	rec = func(r Regex) {
		switch g := r.(type) {
		case *Sym:
			set[g.Name] = true
		case *Seq:
			for _, p := range g.Parts {
				rec(p)
			}
		case *Alt:
			for _, p := range g.Parts {
				rec(p)
			}
		case *Star:
			rec(g.Inner)
		case *Plus:
			rec(g.Inner)
		case *Opt:
			rec(g.Inner)
		}
	}
	rec(r)
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sortStrings(out)
	return out
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// NFA is a Thompson construction over element symbols; transitions are
// labeled by symbols, with ε-closure handled during construction.
type NFA struct {
	start  int
	accept int
	// eps[s] lists ε-successors; step[s][sym] lists symbol successors.
	eps  map[int][]int
	step map[int]map[string][]int
	next int
}

func newNFA() *NFA {
	return &NFA{eps: map[int][]int{}, step: map[int]map[string][]int{}}
}

func (n *NFA) state() int {
	s := n.next
	n.next++
	return s
}

func (n *NFA) addEps(from, to int) {
	n.eps[from] = append(n.eps[from], to)
}

func (n *NFA) addStep(from int, sym string, to int) {
	if n.step[from] == nil {
		n.step[from] = map[string][]int{}
	}
	n.step[from][sym] = append(n.step[from][sym], to)
}

// Compile builds the NFA for a regex.
func Compile(r Regex) *NFA {
	n := newNFA()
	n.start, n.accept = n.build(r)
	return n
}

// build returns (start, accept) of the fragment for r.
func (n *NFA) build(r Regex) (int, int) {
	st, ac := n.state(), n.state()
	switch g := r.(type) {
	case *Empty:
		// no transitions: never accepts
	case *Epsilon:
		n.addEps(st, ac)
	case *Sym:
		n.addStep(st, g.Name, ac)
	case *Seq:
		cur := st
		for _, p := range g.Parts {
			ps, pa := n.build(p)
			n.addEps(cur, ps)
			cur = pa
		}
		n.addEps(cur, ac)
	case *Alt:
		if len(g.Parts) == 0 {
			break // empty alternation matches nothing
		}
		for _, p := range g.Parts {
			ps, pa := n.build(p)
			n.addEps(st, ps)
			n.addEps(pa, ac)
		}
	case *Star:
		is, ia := n.build(g.Inner)
		n.addEps(st, ac)
		n.addEps(st, is)
		n.addEps(ia, is)
		n.addEps(ia, ac)
	case *Plus:
		is, ia := n.build(g.Inner)
		n.addEps(st, is)
		n.addEps(ia, is)
		n.addEps(ia, ac)
	case *Opt:
		is, ia := n.build(g.Inner)
		n.addEps(st, ac)
		n.addEps(st, is)
		n.addEps(ia, ac)
	default:
		panic(fmt.Sprintf("dtd: unknown regex %T", r))
	}
	return st, ac
}

func (n *NFA) closure(states map[int]bool) map[int]bool {
	stack := make([]int, 0, len(states))
	for s := range states {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.eps[s] {
			if !states[t] {
				states[t] = true
				stack = append(stack, t)
			}
		}
	}
	return states
}

// Match reports whether the symbol sequence is in the language.
func (n *NFA) Match(seq []string) bool {
	cur := n.closure(map[int]bool{n.start: true})
	for _, sym := range seq {
		next := map[int]bool{}
		for s := range cur {
			for _, t := range n.step[s][sym] {
				next[t] = true
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = n.closure(next)
	}
	return cur[n.accept]
}

// MatchChoices reports whether some sequence obtained by picking one
// symbol from each position's choice set is in the language — the
// product construction used by extended-DTD conformance.
func (n *NFA) MatchChoices(choices [][]string) (bool, []string) {
	cur := n.closure(map[int]bool{n.start: true})
	// Track one witness pick per state set; sets are small.
	type cfg struct {
		states map[int]bool
		picks  []string
	}
	frontier := []cfg{{states: cur}}
	for _, opts := range choices {
		var next []cfg
		seen := map[string]bool{}
		for _, c := range frontier {
			for _, sym := range opts {
				ns := map[int]bool{}
				for s := range c.states {
					for _, t := range n.step[s][sym] {
						ns[t] = true
					}
				}
				if len(ns) == 0 {
					continue
				}
				ns = n.closure(ns)
				key := stateKey(ns) + "|" + sym
				if seen[key] {
					continue
				}
				seen[key] = true
				next = append(next, cfg{states: ns, picks: append(append([]string{}, c.picks...), sym)})
			}
		}
		if len(next) == 0 {
			return false, nil
		}
		frontier = next
	}
	for _, c := range frontier {
		if c.states[n.accept] {
			return true, c.picks
		}
	}
	return false, nil
}

func stateKey(m map[int]bool) string {
	var ids []int
	for s := range m {
		ids = append(ids, s)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	var sb strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&sb, "%d,", id)
	}
	return sb.String()
}

// StartSet returns the ε-closed initial state set (for external
// subset-construction clients such as the typechecker).
func (n *NFA) StartSet() map[int]bool {
	return n.closure(map[int]bool{n.start: true})
}

// StepSet advances a state set on one symbol and ε-closes the result.
func (n *NFA) StepSet(states map[int]bool, sym string) map[int]bool {
	next := map[int]bool{}
	for s := range states {
		for _, t := range n.step[s][sym] {
			next[t] = true
		}
	}
	if len(next) == 0 {
		return next
	}
	return n.closure(next)
}

// Accepting reports whether the state set contains the accept state.
func (n *NFA) Accepting(states map[int]bool) bool { return states[n.accept] }

// StateSetKey renders a state set canonically (for memoization).
func StateSetKey(states map[int]bool) string { return stateKey(states) }
