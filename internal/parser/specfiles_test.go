package parser

import (
	"os"
	"path/filepath"
	"testing"

	"ptx/internal/pt"
	"ptx/internal/registrar"
)

// specDir locates the shipped example specs relative to this package.
func specDir(t *testing.T) string {
	t.Helper()
	dir := filepath.Join("..", "..", "examples", "specs")
	if _, err := os.Stat(dir); err != nil {
		t.Skipf("example specs not found: %v", err)
	}
	return dir
}

func TestShippedSpecsParseAndRun(t *testing.T) {
	dir := specDir(t)
	dataSrc, err := os.ReadFile(filepath.Join(dir, "registrar.db"))
	if err != nil {
		t.Fatal(err)
	}

	specs, err := filepath.Glob(filepath.Join(dir, "*.pt"))
	if err != nil || len(specs) == 0 {
		t.Fatalf("no spec files: %v", err)
	}
	for _, path := range specs {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := ParseTransducer(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		inst, err := ParseInstance(string(dataSrc), tr.Schema)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out, err := tr.Output(inst, pt.Options{MaxNodes: 100000})
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if out.Size() <= 1 {
			t.Errorf("%s: trivial output", path)
		}
	}
}

func TestShippedTau1MatchesAPI(t *testing.T) {
	dir := specDir(t)
	src, err := os.ReadFile(filepath.Join(dir, "tau1.pt"))
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTransducer(string(src))
	if err != nil {
		t.Fatal(err)
	}
	dataSrc, err := os.ReadFile(filepath.Join(dir, "registrar.db"))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := ParseInstance(string(dataSrc), parsed.Schema)
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := parsed.Output(inst, pt.Options{MaxNodes: 100000})
	if err != nil {
		t.Fatal(err)
	}
	fromAPI, err := registrar.Tau1().Output(registrar.SampleInstance(), pt.Options{MaxNodes: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !fromFile.Equal(fromAPI) {
		t.Fatalf("shipped tau1.pt and the API τ1 disagree:\nfile %s\napi  %s",
			fromFile.Canonical(), fromAPI.Canonical())
	}
}
