package parser

import (
	"testing"

	"ptx/internal/dtd"
	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/registrar"
)

func TestParseFormula(t *testing.T) {
	cases := []struct {
		src  string
		want string // logic.Formula String rendering
	}{
		{"course(x, y, z)", "course(x,y,z)"},
		{"x = 'CS'", "x='CS'"},
		{"x != y", "x!=y"},
		{"A(x) & B(y)", "(A(x) & B(y))"},
		{"A(x) | B(y) & C(z)", "(A(x) | (B(y) & C(z)))"},
		{"!A(x)", "!A(x)"},
		{"exists x, y . E(x, y)", "exists x,y. E(x,y)"},
		{"forall z . E(x, z) | x = z", "forall z. (E(x,z) | x=z)"},
		{"(A(x) | B(x)) & C(x)", "((A(x) | B(x)) & C(x))"},
		{"E(x, 5)", "E(x,'5')"},
		{"E(x, '- space -')", "E(x,'- space -')"},
		{"true & false", "(true & false)"},
	}
	for _, c := range cases {
		f, err := ParseFormula(c.src)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if f.String() != c.want {
			t.Errorf("%q parsed to %s, want %s", c.src, f, c.want)
		}
	}
}

func TestParseFormulaIFP(t *testing.T) {
	f, err := ParseFormula("ifp S(u, v) . E(u, v) | exists w . S(u, w) & E(w, v) @ (x, y)")
	if err != nil {
		t.Fatal(err)
	}
	fp, ok := f.(*logic.Fixpoint)
	if !ok {
		t.Fatalf("parsed to %T", f)
	}
	if fp.Rel != "S" || len(fp.Vars) != 2 || len(fp.Args) != 2 {
		t.Fatalf("fixpoint structure: %s", fp)
	}
	if logic.Classify(f) != logic.IFP {
		t.Fatal("should classify as IFP")
	}
}

func TestParseFormulaErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"A(x",
		"x =",
		"exists . E(x)",
		"A(x) &",
		"x ! y",
		"'unterminated",
	} {
		if _, err := ParseFormula(src); err == nil {
			t.Errorf("%q should fail to parse", src)
		}
	}
}

const tau1Spec = `
# τ1 of Example 3.1: the recursive prerequisite hierarchy.
schema course/3, prereq/2
transducer tau1 root db start q0
tag course/2, prereq/1, cno/1, title/1, text/1

rule q0 db -> (q, course, [cno,title;] exists dept . course(cno,title,dept) & dept='CS')
rule q course ->
  (q, cno,    [cno;]   exists title . Reg(cno,title)),
  (q, title,  [title;] exists cno . Reg(cno,title)),
  (q, prereq, [cno;]   exists title . Reg(cno,title))
rule q prereq -> (q, course, [c,t;] exists c2,d . Reg(c2) & prereq(c2,c) & course(c,t,d))
rule q cno -> (q, text, [c;] Reg(c))
rule q title -> (q, text, [c;] Reg(c))
rule q text -> .
`

func TestParseTransducerMatchesHandBuilt(t *testing.T) {
	parsed, err := ParseTransducer(tau1Spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := parsed.Classify().String(); got != "PT(CQ, tuple, normal)" {
		t.Fatalf("class = %s", got)
	}
	// The parsed transducer produces the same trees as the hand-built τ1.
	for n := 1; n <= 4; n++ {
		inst := registrar.ChainInstance(n)
		a, err := parsed.Output(inst, pt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := registrar.Tau1().Output(inst, pt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("chain(%d):\nparsed %s\nbuilt  %s", n, a.Canonical(), b.Canonical())
		}
	}
}

func TestParseTransducerVirtual(t *testing.T) {
	src := `
schema R1/1
transducer v root r start q0
tag v/1, b/1
virtual v
rule q0 r -> (qv, v, [x;] R1(x))
rule qv v -> (qb, b, [x;] Reg(x))
rule qb b -> .
`
	tr, err := ParseTransducer(src)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Virtual["v"] {
		t.Fatal("virtual declaration lost")
	}
	if got := tr.Classify().String(); got != "PTnr(CQ, tuple, virtual)" {
		t.Fatalf("class = %s", got)
	}
}

func TestParseTransducerErrors(t *testing.T) {
	for name, src := range map[string]string{
		"missing header": "schema R1/1\nrule q0 r -> .",
		"bad rule":       "schema R1/1\ntransducer t root r start q0\nrule q0 ->",
		"unknown rel": `
schema R1/1
transducer t root r start q0
tag a/1
rule q0 r -> (q, a, [x;] Nope(x))`,
	} {
		if _, err := ParseTransducer(src); err == nil {
			t.Errorf("%s: should fail", name)
		}
	}
}

func TestParseInstance(t *testing.T) {
	src := `
# registrar facts
course(CS401, Compilers, CS)
course(CS301, 'Algorithms I', CS)
prereq(CS401, CS301)
`
	inst, err := ParseInstance(src, registrar.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if inst.Rel("course").Len() != 2 || inst.Rel("prereq").Len() != 1 {
		t.Fatalf("parsed instance: %s", inst)
	}
}

func TestParseInstanceInfersSchema(t *testing.T) {
	inst, err := ParseInstance("E(a, b)\nE(b, c)\nV(a)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Rel("E").Len() != 2 || inst.Rel("V").Len() != 1 {
		t.Fatalf("inferred instance: %s", inst)
	}
	// Arity clash is an error.
	if _, err := ParseInstance("E(a, b)\nE(a)", nil); err == nil {
		t.Fatal("arity clash should fail")
	}
}

func TestParseInstanceAgainstSpecSchema(t *testing.T) {
	tr, err := ParseTransducer(tau1Spec)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := ParseInstance("course(A1, Logic, CS)\nprereq(A1, A2)\ncourse(A2, Sets, CS)", tr.Schema)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tr.Output(inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.CountTag("course") != 3 { // A1, A2 at top; A2 under A1's prereq
		t.Fatalf("run on parsed instance: %s", out.Canonical())
	}
}

func TestParseDTD(t *testing.T) {
	src := `
# bibliography DTD
dtd root bib
bib -> article*
article -> title, (author+ | editor), year?
title -> empty
`
	d, err := ParseDTD(src)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root != "bib" {
		t.Fatalf("root = %s", d.Root)
	}
	nfa := dtd.Compile(d.Rule("article"))
	cases := []struct {
		seq  []string
		want bool
	}{
		{[]string{"title", "author"}, true},
		{[]string{"title", "author", "author", "year"}, true},
		{[]string{"title", "editor", "year"}, true},
		{[]string{"title"}, false},
		{[]string{"title", "editor", "editor"}, false},
		{[]string{"author", "title"}, false},
	}
	for _, c := range cases {
		if got := nfa.Match(c.seq); got != c.want {
			t.Errorf("article children %v: %v, want %v", c.seq, got, c.want)
		}
	}
}

func TestParseDTDErrors(t *testing.T) {
	for name, src := range map[string]string{
		"no header":  "db -> course*",
		"no root":    "dtd db -> x",
		"bad body":   "dtd root r\nr -> ,",
		"dup rule":   "dtd root r\nr -> a\nr -> b",
		"unbalanced": "dtd root r\nr -> (a",
	} {
		if _, err := ParseDTD(src); err == nil {
			t.Errorf("%s: should fail", name)
		}
	}
}
