package parser

import (
	"fmt"

	"ptx/internal/dtd"
	"ptx/internal/runctl"
)

// ParseDTD parses the small DTD surface syntax used by the CLI:
//
//	dtd root db
//	db -> course*
//	course -> cno, title, prereq?
//	prereq -> course*
//	choice -> a | b
//
// Content models use ',' for concatenation, '|' for disjunction,
// postfix '*', '+', '?', parentheses, and 'empty' for ε.
func ParseDTD(src string) (d *dtd.DTD, err error) {
	defer runctl.Recover(&err, "parser.ParseDTD")
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	if !p.acceptKeyword("dtd") {
		return nil, p.errf("expected 'dtd'")
	}
	if !p.acceptKeyword("root") {
		return nil, p.errf("expected 'root'")
	}
	root, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d = dtd.New(root, map[string]dtd.Regex{})
	for p.cur().kind != tokEOF {
		sym, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("->"); err != nil {
			return nil, err
		}
		r, err := p.parseRegexAlt()
		if err != nil {
			return nil, err
		}
		if _, dup := d.Rules[sym]; dup {
			return nil, fmt.Errorf("parser: duplicate DTD rule for %s", sym)
		}
		d.Rules[sym] = r
	}
	return d, nil
}

// parseRegexAlt: concat { '|' concat }.
func (p *parser) parseRegexAlt() (dtd.Regex, error) {
	first, err := p.parseRegexCat()
	if err != nil {
		return nil, err
	}
	parts := []dtd.Regex{first}
	for p.acceptPunct("|") {
		next, err := p.parseRegexCat()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return dtd.Or(parts...), nil
}

// parseRegexCat: postfix { ',' postfix }.
func (p *parser) parseRegexCat() (dtd.Regex, error) {
	first, err := p.parseRegexPostfix()
	if err != nil {
		return nil, err
	}
	parts := []dtd.Regex{first}
	for p.acceptPunct(",") {
		next, err := p.parseRegexPostfix()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return dtd.Cat(parts...), nil
}

// parseRegexPostfix: primary { '*' | '+' | '?' }.
func (p *parser) parseRegexPostfix() (dtd.Regex, error) {
	r, err := p.parseRegexPrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptPunct("*"):
			r = dtd.Rep(r)
		case p.acceptPunct("+"):
			r = dtd.OneOrMore(r)
		case p.acceptPunct("?"):
			r = dtd.Maybe(r)
		default:
			return r, nil
		}
	}
}

// parseRegexPrimary: 'empty' | symbol | '(' alt ')'.
func (p *parser) parseRegexPrimary() (dtd.Regex, error) {
	if p.acceptPunct("(") {
		r, err := p.parseRegexAlt()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return r, nil
	}
	t := p.cur()
	if t.kind == tokIdent {
		p.pos++
		if t.text == "empty" {
			return dtd.Eps(), nil
		}
		return dtd.S(t.text), nil
	}
	return nil, p.errf("expected a content-model symbol, found %s", t)
}
