// Package parser implements a small text surface syntax for relational
// schemas, database instances, logic formulas and publishing
// transducers, used by the command-line tools and examples.
//
// Transducer specs look like:
//
//	schema course/3, prereq/2
//	transducer tau1 root db start q0
//	tag course/2, prereq/1, cno/1, title/1, text/1
//	virtual l
//	rule q0 db -> (q, course, [cno,title;] exists dept . course(cno,title,dept) & dept='CS')
//	rule q course ->
//	  (q, cno,    [cno;]   exists title . Reg(cno,title)),
//	  (q, title,  [title;] exists cno . Reg(cno,title)),
//	  (q, prereq, [cno;]   exists title . Reg(cno,title))
//	rule q prereq -> (q, course, [c,t;] exists c2,d . Reg(c2) & prereq(c2,c) & course(c,t,d))
//	rule q cno -> (q, text, [c;] Reg(c))
//	rule q title -> (q, text, [c;] Reg(c))
//	rule q text -> .
//
// Data files are one fact per line:
//
//	course(CS401, Compilers, CS)
//	prereq(CS401, CS301)
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString // 'quoted'
	tokNumber
	tokPunct // single punctuation: ( ) , ; / . [ ] & | ! = @
	tokArrow // ->
	tokNeq   // !=
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	src    string
	pos    int
	line   int
	col    int
	tokens []token
}

// lex tokenizes src; # starts a line comment.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance()
			}
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9' || c == '-' && l.peekDigit():
			l.lexNumber()
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '>':
			l.emit(tokArrow, "->")
			l.advance()
			l.advance()
		case c == '!' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '=':
			l.emit(tokNeq, "!=")
			l.advance()
			l.advance()
		case strings.ContainsRune("(),;/.[]&|!=@*+?-", rune(c)):
			l.emit(tokPunct, string(c))
			l.advance()
		default:
			return nil, fmt.Errorf("parser: line %d:%d: unexpected character %q", l.line, l.col, c)
		}
	}
	l.emit(tokEOF, "")
	return l.tokens, nil
}

func (l *lexer) peekDigit() bool {
	return l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9'
}

func (l *lexer) advance() {
	if l.src[l.pos] == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	l.pos++
}

func (l *lexer) emit(kind tokenKind, text string) {
	l.tokens = append(l.tokens, token{kind: kind, text: text, line: l.line, col: l.col})
}

func (l *lexer) lexString() error {
	startLine, startCol := l.line, l.col
	l.advance() // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			l.tokens = append(l.tokens, token{kind: tokString, text: sb.String(), line: startLine, col: startCol})
			l.advance()
			return nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.advance()
			sb.WriteByte(l.src[l.pos])
			l.advance()
			continue
		}
		sb.WriteByte(c)
		l.advance()
	}
	return fmt.Errorf("parser: line %d:%d: unterminated string", startLine, startCol)
}

func (l *lexer) lexIdent() {
	startLine, startCol := l.line, l.col
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.advance()
	}
	l.tokens = append(l.tokens, token{kind: tokIdent, text: l.src[start:l.pos], line: startLine, col: startCol})
}

func (l *lexer) lexNumber() {
	startLine, startCol := l.line, l.col
	start := l.pos
	if l.src[l.pos] == '-' {
		l.advance()
	}
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.advance()
	}
	l.tokens = append(l.tokens, token{kind: tokNumber, text: l.src[start:l.pos], line: startLine, col: startCol})
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
