package parser

import (
	"fmt"
	"strconv"

	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/relation"
	"ptx/internal/runctl"
)

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("parser: line %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	t := p.cur()
	if (t.kind == tokPunct || t.kind == tokArrow || t.kind == tokNeq) && t.text == s {
		p.pos++
		return nil
	}
	return p.errf("expected %q, found %s", s, t)
}

func (p *parser) acceptPunct(s string) bool {
	t := p.cur()
	if (t.kind == tokPunct || t.kind == tokArrow || t.kind == tokNeq) && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, found %s", t)
	}
	p.pos++
	return t.text, nil
}

func (p *parser) acceptKeyword(kw string) bool {
	t := p.cur()
	if t.kind == tokIdent && t.text == kw {
		p.pos++
		return true
	}
	return false
}

// ParseTransducer parses a transducer spec. Malformed input returns an
// error, never a panic: structural mistakes (duplicate tags, duplicate
// rules, a virtual root) are reported as parse errors, and any residual
// panic in the pipeline is contained as a *runctl.ErrInternal.
func ParseTransducer(src string) (t *pt.Transducer, err error) {
	defer runctl.Recover(&err, "parser.ParseTransducer")
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	schema := relation.NewSchema()
	type pendingRule struct {
		state, tag string
		items      []pt.RHS
	}
	var rules []pendingRule
	var virtuals []string
	type tagDecl struct {
		name  string
		arity int
	}
	var tags []tagDecl
	name, rootTag, start := "", "", ""

	for p.cur().kind != tokEOF {
		switch {
		case p.acceptKeyword("schema"):
			for {
				rel, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct("/"); err != nil {
					return nil, err
				}
				ar, err := p.expectArity()
				if err != nil {
					return nil, err
				}
				if err := schema.Declare(rel, ar); err != nil {
					return nil, err
				}
				if !p.acceptPunct(",") {
					break
				}
			}
		case p.acceptKeyword("transducer"):
			if name, err = p.expectIdent(); err != nil {
				return nil, err
			}
			if !p.acceptKeyword("root") {
				return nil, p.errf("expected 'root'")
			}
			if rootTag, err = p.expectIdent(); err != nil {
				return nil, err
			}
			if !p.acceptKeyword("start") {
				return nil, p.errf("expected 'start'")
			}
			if start, err = p.expectIdent(); err != nil {
				return nil, err
			}
		case p.acceptKeyword("tag"):
			for {
				tg, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct("/"); err != nil {
					return nil, err
				}
				ar, err := p.expectArity()
				if err != nil {
					return nil, err
				}
				tags = append(tags, tagDecl{tg, ar})
				if !p.acceptPunct(",") {
					break
				}
			}
		case p.acceptKeyword("virtual"):
			for {
				tg, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				virtuals = append(virtuals, tg)
				if !p.acceptPunct(",") {
					break
				}
			}
		case p.acceptKeyword("rule"):
			state, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			tag, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("->"); err != nil {
				return nil, err
			}
			if p.acceptPunct(".") {
				rules = append(rules, pendingRule{state: state, tag: tag})
				continue
			}
			var items []pt.RHS
			for {
				item, err := p.parseItem()
				if err != nil {
					return nil, err
				}
				items = append(items, item)
				if !p.acceptPunct(",") {
					break
				}
			}
			rules = append(rules, pendingRule{state: state, tag: tag, items: items})
		default:
			return nil, p.errf("expected a declaration keyword, found %s", p.cur())
		}
	}

	if name == "" || rootTag == "" || start == "" {
		return nil, fmt.Errorf("parser: missing 'transducer <name> root <tag> start <state>' declaration")
	}
	// The pt builder methods panic on structural duplicates (they are
	// programmer errors in API use); for file input they are user
	// errors, so check them here and report cleanly.
	arities := map[string]int{rootTag: 0}
	for _, td := range tags {
		if a, ok := arities[td.name]; ok && a != td.arity {
			return nil, fmt.Errorf("parser: tag %q redeclared with arity %d (was %d)", td.name, td.arity, a)
		}
		arities[td.name] = td.arity
	}
	for _, v := range virtuals {
		if v == rootTag {
			return nil, fmt.Errorf("parser: root tag %q cannot be virtual", v)
		}
	}
	seenRules := make(map[[2]string]bool, len(rules))
	for _, r := range rules {
		k := [2]string{r.state, r.tag}
		if seenRules[k] {
			return nil, fmt.Errorf("parser: duplicate rule for (%s,%s)", r.state, r.tag)
		}
		seenRules[k] = true
	}
	t = pt.New(name, schema, start, rootTag)
	for _, td := range tags {
		t.DeclareTag(td.name, td.arity)
	}
	t.MarkVirtual(virtuals...)
	for _, r := range rules {
		t.AddRule(r.state, r.tag, r.items...)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func (p *parser) expectArity() (int, error) {
	t := p.cur()
	if t.kind != tokNumber {
		return 0, p.errf("expected arity number, found %s", t)
	}
	p.pos++
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 0 {
		return 0, p.errf("invalid arity %q", t.text)
	}
	return n, nil
}

// parseItem parses (state, tag, [x̄;ȳ] formula).
func (p *parser) parseItem() (pt.RHS, error) {
	if err := p.expectPunct("("); err != nil {
		return pt.RHS{}, err
	}
	state, err := p.expectIdent()
	if err != nil {
		return pt.RHS{}, err
	}
	if err := p.expectPunct(","); err != nil {
		return pt.RHS{}, err
	}
	tag, err := p.expectIdent()
	if err != nil {
		return pt.RHS{}, err
	}
	if err := p.expectPunct(","); err != nil {
		return pt.RHS{}, err
	}
	if err := p.expectPunct("["); err != nil {
		return pt.RHS{}, err
	}
	group, err := p.parseVarList(";")
	if err != nil {
		return pt.RHS{}, err
	}
	if err := p.expectPunct(";"); err != nil {
		return pt.RHS{}, err
	}
	content, err := p.parseVarList("]")
	if err != nil {
		return pt.RHS{}, err
	}
	if err := p.expectPunct("]"); err != nil {
		return pt.RHS{}, err
	}
	f, err := p.parseFormula()
	if err != nil {
		return pt.RHS{}, err
	}
	if err := p.expectPunct(")"); err != nil {
		return pt.RHS{}, err
	}
	q, err := logic.NewQuery(group, content, f)
	if err != nil {
		return pt.RHS{}, p.errf("%v", err)
	}
	return pt.Item(state, tag, q), nil
}

// parseVarList parses a possibly-empty comma list of variables ended by
// the given punctuation (not consumed).
func (p *parser) parseVarList(end string) ([]logic.Var, error) {
	var out []logic.Var
	if t := p.cur(); t.kind == tokPunct && t.text == end {
		return nil, nil
	}
	for {
		v, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		out = append(out, logic.Var(v))
		if !p.acceptPunct(",") {
			return out, nil
		}
	}
}

// ParseFormula parses a standalone formula.
func ParseFormula(src string) (f logic.Formula, err error) {
	defer runctl.Recover(&err, "parser.ParseFormula")
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f, err = p.parseFormula()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input")
	}
	return f, nil
}

// Formula grammar (lowest to highest precedence):
//
//	or     := and { '|' and }
//	and    := unary { '&' unary }
//	unary  := '!' unary | quant | atom
//	quant  := ('exists'|'forall') vars '.' or
//	       | 'ifp' name '(' vars ')' '.' or '@' '(' terms ')'
//	atom   := 'true' | 'false' | '(' or ')'
//	       | name '(' terms ')' | term ('='|'!=') term
func (p *parser) parseFormula() (logic.Formula, error) {
	return p.parseOr()
}

func (p *parser) parseOr() (logic.Formula, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct("|") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &logic.Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (logic.Formula, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct("&") {
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &logic.And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (logic.Formula, error) {
	if p.acceptPunct("!") {
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &logic.Not{F: f}, nil
	}
	if p.acceptKeyword("exists") {
		return p.parseQuant(true)
	}
	if p.acceptKeyword("forall") {
		return p.parseQuant(false)
	}
	if p.acceptKeyword("ifp") {
		return p.parseIFP()
	}
	return p.parseAtomOrComparison()
}

func (p *parser) parseQuant(exists bool) (logic.Formula, error) {
	vars, err := p.parseVarList(".")
	if err != nil {
		return nil, err
	}
	if len(vars) == 0 {
		return nil, p.errf("quantifier needs at least one variable")
	}
	if err := p.expectPunct("."); err != nil {
		return nil, err
	}
	f, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if exists {
		return logic.Ex(vars, f), nil
	}
	return logic.All(vars, f), nil
}

func (p *parser) parseIFP() (logic.Formula, error) {
	rel, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	vars, err := p.parseVarList(")")
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("."); err != nil {
		return nil, err
	}
	body, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("@"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	args, err := p.parseTermList(")")
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &logic.Fixpoint{Rel: rel, Vars: vars, Body: body, Args: args}, nil
}

func (p *parser) parseTermList(end string) ([]logic.Term, error) {
	var out []logic.Term
	if t := p.cur(); t.kind == tokPunct && t.text == end {
		return nil, nil
	}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if !p.acceptPunct(",") {
			return out, nil
		}
	}
}

func (p *parser) parseTerm() (logic.Term, error) {
	t := p.cur()
	switch t.kind {
	case tokIdent:
		p.pos++
		return logic.Var(t.text), nil
	case tokString:
		p.pos++
		return logic.Const(t.text), nil
	case tokNumber:
		p.pos++
		return logic.Const(t.text), nil
	}
	return nil, p.errf("expected a term, found %s", t)
}

func (p *parser) parseAtomOrComparison() (logic.Formula, error) {
	t := p.cur()
	if t.kind == tokPunct && t.text == "(" {
		p.pos++
		f, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	if t.kind == tokIdent {
		switch t.text {
		case "true":
			p.pos++
			return logic.True, nil
		case "false":
			p.pos++
			return logic.False, nil
		}
		// Relation atom if followed by '('.
		if p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "(" {
			rel := t.text
			p.pos += 2
			args, err := p.parseTermList(")")
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &logic.Atom{Rel: rel, Args: args}, nil
		}
	}
	// Comparison.
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	switch {
	case p.acceptPunct("="):
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		return logic.EqT(l, r), nil
	case p.cur().kind == tokNeq:
		p.pos++
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		return logic.NeqT(l, r), nil
	}
	return nil, p.errf("expected '=' or '!=' after term")
}

// ParseInstance parses a data file of facts rel(v1, v2, …), one per
// line, against a schema (facts over undeclared relations extend it).
func ParseInstance(src string, schema *relation.Schema) (inst *relation.Instance, err error) {
	defer runctl.Recover(&err, "parser.ParseInstance")
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	type fact struct {
		rel  string
		vals []string
	}
	var facts []fact
	for p.cur().kind != tokEOF {
		rel, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var vals []string
		if !p.acceptPunct(")") {
			for {
				t := p.cur()
				switch t.kind {
				case tokIdent, tokNumber, tokString:
					vals = append(vals, t.text)
					p.pos++
				default:
					return nil, p.errf("expected a value, found %s", t)
				}
				if p.acceptPunct(",") {
					continue
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				break
			}
		}
		facts = append(facts, fact{rel, vals})
	}
	if schema == nil {
		schema = relation.NewSchema()
	}
	for _, f := range facts {
		if err := schema.Declare(f.rel, len(f.vals)); err != nil {
			return nil, err
		}
	}
	inst = relation.NewInstance(schema)
	for _, f := range facts {
		inst.Add(f.rel, f.vals...)
	}
	return inst, nil
}

// ParseDeltaScript parses a delta replay script: one signed fact per
// step — `+rel(v, …)` inserts, `-rel(v, …)` deletes — with `commit`
// closing a batch and `#` starting a comment. It returns one Delta per
// batch in script order; a trailing batch without a commit is implied,
// and batches with no operations are dropped. With a non-nil schema
// every batch is validated against it (unknown relation, arity).
func ParseDeltaScript(src string, schema *relation.Schema) (deltas []*relation.Delta, err error) {
	defer runctl.Recover(&err, "parser.ParseDeltaScript")
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	cur := &relation.Delta{}
	flush := func() {
		if !cur.Empty() {
			deltas = append(deltas, cur)
			cur = &relation.Delta{}
		}
	}
	for p.cur().kind != tokEOF {
		if p.acceptKeyword("commit") {
			flush()
			continue
		}
		t := p.cur()
		var insert bool
		switch {
		case t.kind == tokPunct && t.text == "+":
			insert = true
			p.pos++
		case t.kind == tokPunct && t.text == "-":
			p.pos++
		default:
			return nil, p.errf("expected +fact(…), -fact(…) or commit, found %s", t)
		}
		rel, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var vals []string
		if !p.acceptPunct(")") {
			for {
				t := p.cur()
				switch t.kind {
				case tokIdent, tokNumber, tokString:
					vals = append(vals, t.text)
					p.pos++
				default:
					return nil, p.errf("expected a value, found %s", t)
				}
				if p.acceptPunct(",") {
					continue
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				break
			}
		}
		if insert {
			cur.Insert(rel, vals...)
		} else {
			cur.Delete(rel, vals...)
		}
	}
	flush()
	if schema != nil {
		for _, d := range deltas {
			if err := d.Validate(schema); err != nil {
				return nil, err
			}
		}
	}
	return deltas, nil
}
