package parser

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParseTransducer asserts the parser's containment contract:
// malformed .pt specs must come back as errors, never as panics.
// ParseTransducer recovers residual panics into *runctl.ErrInternal, so
// any panic that escapes here is a containment bug.
//
// Seeds are the real spec files under examples/specs plus small inputs
// targeting each declaration keyword.
func FuzzParseTransducer(f *testing.F) {
	specs, _ := filepath.Glob(filepath.Join("..", "..", "examples", "specs", "*.pt"))
	for _, p := range specs {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatalf("reading seed %s: %v", p, err)
		}
		f.Add(string(src))
	}
	if len(specs) == 0 {
		f.Fatal("no seed specs found under examples/specs")
	}
	f.Add("schema R/1\ntransducer t root r start q0\ntag a/1\nrule q0 r -> (q, a, [x;] R(x))")
	f.Add("schema R/1\ntransducer t root r start q0\ntag a/1, a/2")
	f.Add("transducer t root r start q0\nrule q0 r -> .\nrule q0 r -> .")
	f.Add("virtual r\ntransducer t root r start q0")
	f.Add("rule q a -> (q, a, [;x] ifp S(u) . R(u) | S(u) @ (x))")
	f.Add("schema R/1\x00")
	f.Add("'unterminated")

	f.Fuzz(func(t *testing.T, src string) {
		tr, err := ParseTransducer(src)
		if err == nil && tr == nil {
			t.Fatal("nil transducer without error")
		}
	})
}

// FuzzParseInstance does the same for the data-file parser.
func FuzzParseInstance(f *testing.F) {
	f.Add("course(CS401, Compilers, CS)\nprereq(CS401, CS301)")
	f.Add("R()")
	f.Add("R(1,2) R(1)")
	f.Add("R(")
	f.Fuzz(func(t *testing.T, src string) {
		inst, err := ParseInstance(src, nil)
		if err == nil && inst == nil {
			t.Fatal("nil instance without error")
		}
	})
}
