package parser

import (
	"strings"
	"testing"

	"ptx/internal/relation"
)

func deltaSchema(t *testing.T) *relation.Schema {
	t.Helper()
	s := relation.NewSchema()
	if err := s.Declare("course", 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Declare("dept", 1); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseDeltaScript(t *testing.T) {
	src := `
# seed the storm tuple, then take it back out
+course(CS999, StormCourse, CS)
+dept(EE)
commit
-course(CS999, StormCourse, CS)
commit
`
	deltas, err := ParseDeltaScript(src, deltaSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(deltas))
	}
	if got := deltas[0].String(); got != "+course(CS999,StormCourse,CS) +dept(EE)" {
		t.Fatalf("batch 1 = %q", got)
	}
	if got := deltas[1].String(); got != "-course(CS999,StormCourse,CS)" {
		t.Fatalf("batch 2 = %q", got)
	}
}

func TestParseDeltaScriptTrailingBatchAndEmptyCommits(t *testing.T) {
	src := "commit\n+dept(CS)\ncommit\ncommit\n-dept(CS)\n" // no final commit
	deltas, err := ParseDeltaScript(src, deltaSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2 (empty batches dropped, trailing commit implied)", len(deltas))
	}
	if deltas[0].String() != "+dept(CS)" || deltas[1].String() != "-dept(CS)" {
		t.Fatalf("batches = %q, %q", deltas[0], deltas[1])
	}
}

func TestParseDeltaScriptNilSchemaSkipsValidation(t *testing.T) {
	deltas, err := ParseDeltaScript("+anything(x, y)\n", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 || deltas[0].String() != "+anything(x,y)" {
		t.Fatalf("deltas = %v", deltas)
	}
}

func TestParseDeltaScriptErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unsigned fact", "dept(CS)\n", "expected +fact"},
		{"bare sign", "+\n", "expected identifier"},
		{"missing paren", "+dept CS\n", `expected "("`},
		{"unknown relation", "+nosuch(x)\n", "not in schema"},
		{"arity mismatch", "+dept(a, b)\n", "arity"},
		{"unexpected token", "+dept(,)\n", "expected a value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseDeltaScript(tc.src, deltaSchema(t))
			if err == nil {
				t.Fatalf("ParseDeltaScript(%q) succeeded, want error containing %q", tc.src, tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
