// Package lru provides the small string-keyed bounded LRU cache shared
// by the memoization layers: the rule-query memo of internal/eval and
// the subtree cache of internal/pt. Bounding by entry count keeps cache
// memory proportional to the number of distinct configurations a run
// visits, never to the (possibly doubly-exponential) size of the tree
// being generated.
//
// A Cache is NOT safe for concurrent use; callers that share one across
// goroutines wrap it in their own mutex (both memo layers do).
package lru

// Cache is a fixed-capacity map with least-recently-used eviction.
type Cache[V any] struct {
	capacity int
	onEvict  func(key string, v V)
	entries  map[string]*entry[V]
	// Intrusive doubly-linked recency list; head is most recent.
	head, tail *entry[V]
}

type entry[V any] struct {
	key        string
	val        V
	prev, next *entry[V]
}

// New returns a cache holding at most capacity entries; capacity must be
// positive. onEvict, if non-nil, observes each evicted entry (it is not
// called for Put-updates of an existing key).
func New[V any](capacity int, onEvict func(key string, v V)) *Cache[V] {
	if capacity <= 0 {
		panic("lru: capacity must be positive")
	}
	return &Cache[V]{
		capacity: capacity,
		onEvict:  onEvict,
		entries:  make(map[string]*entry[V], capacity),
	}
}

// Len returns the number of entries currently cached.
func (c *Cache[V]) Len() int { return len(c.entries) }

// Get returns the value for key and marks it most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	e, ok := c.entries[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.moveToFront(e)
	return e.val, true
}

// Put inserts or updates key, marking it most recently used, and evicts
// the least recently used entry if the cache is over capacity.
func (c *Cache[V]) Put(key string, v V) {
	if e, ok := c.entries[key]; ok {
		e.val = v
		c.moveToFront(e)
		return
	}
	e := &entry[V]{key: key, val: v}
	c.entries[key] = e
	c.pushFront(e)
	if len(c.entries) > c.capacity {
		lru := c.tail
		c.unlink(lru)
		delete(c.entries, lru.key)
		if c.onEvict != nil {
			c.onEvict(lru.key, lru.val)
		}
	}
}

// RemoveIf removes every entry whose key satisfies pred and returns how
// many were removed. onEvict is NOT called: removal is invalidation by
// the owner, not capacity pressure.
func (c *Cache[V]) RemoveIf(pred func(key string) bool) int {
	n := 0
	for k, e := range c.entries {
		if !pred(k) {
			continue
		}
		c.unlink(e)
		delete(c.entries, k)
		n++
	}
	return n
}

func (c *Cache[V]) pushFront(e *entry[V]) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache[V]) unlink(e *entry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache[V]) moveToFront(e *entry[V]) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
