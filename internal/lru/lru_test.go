package lru

import "testing"

func TestGetPutEvictOrder(t *testing.T) {
	var evicted []string
	c := New[int](3, func(k string, v int) { evicted = append(evicted, k) })
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	// Touch a so b becomes least recently used.
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d,%v", v, ok)
	}
	c.Put("d", 4)
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted = %v, want [b]", evicted)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b should be gone")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should survive", k)
		}
	}
}

func TestPutUpdateDoesNotEvict(t *testing.T) {
	evictions := 0
	c := New[int](2, func(string, int) { evictions++ })
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // update, not insert
	if evictions != 0 {
		t.Fatalf("update evicted %d entries", evictions)
	}
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("a = %d, want 10", v)
	}
	// b is now LRU; one more insert evicts it.
	c.Put("c", 3)
	if evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
}

func TestCapacityOne(t *testing.T) {
	c := New[string](1, nil)
	for i, k := range []string{"x", "y", "z"} {
		c.Put(k, k)
		if c.Len() != 1 {
			t.Fatalf("step %d: len = %d", i, c.Len())
		}
	}
	if _, ok := c.Get("y"); ok {
		t.Error("only the last key should remain")
	}
	if v, ok := c.Get("z"); !ok || v != "z" {
		t.Errorf("Get(z) = %q,%v", v, ok)
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 should panic")
		}
	}()
	New[int](0, nil)
}

func TestRemoveIf(t *testing.T) {
	evicted := 0
	c := New[int](8, func(string, int) { evicted++ })
	for _, k := range []string{"1|a", "1|b", "2|a", "3|c"} {
		c.Put(k, 1)
	}
	if n := c.RemoveIf(func(k string) bool { return k[0] == '1' }); n != 2 {
		t.Fatalf("removed %d, want 2", n)
	}
	if evicted != 0 {
		t.Fatal("RemoveIf must not invoke onEvict")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, ok := c.Get("1|a"); ok {
		t.Fatal("removed key still present")
	}
	// The recency list must stay consistent: fill past capacity and
	// confirm eviction still works from the tail.
	for i := 0; i < 10; i++ {
		c.Put(string(rune('a'+i)), i)
	}
	if c.Len() != 8 {
		t.Fatalf("len = %d, want capacity 8", c.Len())
	}
	if n := c.RemoveIf(func(string) bool { return true }); n != 8 {
		t.Fatalf("drain removed %d, want 8", n)
	}
	if c.Len() != 0 {
		t.Fatal("cache not empty after full RemoveIf")
	}
	c.Put("fresh", 1)
	if v, ok := c.Get("fresh"); !ok || v != 1 {
		t.Fatal("cache unusable after full RemoveIf")
	}
}
