package lru

import "testing"

func TestGetPutEvictOrder(t *testing.T) {
	var evicted []string
	c := New[int](3, func(k string, v int) { evicted = append(evicted, k) })
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	// Touch a so b becomes least recently used.
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d,%v", v, ok)
	}
	c.Put("d", 4)
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted = %v, want [b]", evicted)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b should be gone")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should survive", k)
		}
	}
}

func TestPutUpdateDoesNotEvict(t *testing.T) {
	evictions := 0
	c := New[int](2, func(string, int) { evictions++ })
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // update, not insert
	if evictions != 0 {
		t.Fatalf("update evicted %d entries", evictions)
	}
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("a = %d, want 10", v)
	}
	// b is now LRU; one more insert evicts it.
	c.Put("c", 3)
	if evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
}

func TestCapacityOne(t *testing.T) {
	c := New[string](1, nil)
	for i, k := range []string{"x", "y", "z"} {
		c.Put(k, k)
		if c.Len() != 1 {
			t.Fatalf("step %d: len = %d", i, c.Len())
		}
	}
	if _, ok := c.Get("y"); ok {
		t.Error("only the last key should remain")
	}
	if v, ok := c.Get("z"); !ok || v != "z" {
		t.Errorf("Get(z) = %q,%v", v, ok)
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 should panic")
		}
	}()
	New[int](0, nil)
}
