package typecheck

import (
	"math/rand"
	"testing"

	"ptx/internal/dtd"
	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/registrar"
	"ptx/internal/relation"
	"ptx/internal/xmltree"
)

// courseDTD matches the shape of τ1's output.
func tau1DTD() *dtd.DTD {
	return dtd.New("db", map[string]dtd.Regex{
		"db":     dtd.Rep(dtd.S("course")),
		"course": dtd.Cat(dtd.S("cno"), dtd.S("title"), dtd.S("prereq")),
		"prereq": dtd.Rep(dtd.S("course")),
	})
}

func TestTau1Typechecks(t *testing.T) {
	v, err := Check(registrar.Tau1(), tau1DTD())
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("τ1 should typecheck against its natural DTD: %v", v)
	}
	// Sanity: outputs really conform.
	out, err := registrar.Tau1().Output(registrar.SampleInstance(), pt.Options{MaxNodes: 100000})
	if err != nil {
		t.Fatal(err)
	}
	stripText := out.Clone()
	stripText.Walk(func(n *xmltree.Node) bool {
		var kept []*xmltree.Node
		for _, c := range n.Children {
			if !c.IsText() {
				kept = append(kept, c)
			}
		}
		n.Children = kept
		return true
	})
	if !tau1DTD().Validate(stripText) {
		t.Fatal("τ1 output (sans pcdata) should conform to the DTD")
	}
}

func TestViolationDetected(t *testing.T) {
	// DTD requires exactly one course under db, but τ1 emits one per CS
	// course — a genuine violation (two courses possible).
	d := dtd.New("db", map[string]dtd.Regex{
		"db":     dtd.Cat(dtd.S("course")),
		"course": dtd.Cat(dtd.S("cno"), dtd.S("title"), dtd.S("prereq")),
		"prereq": dtd.Rep(dtd.S("course")),
	})
	v, err := Check(registrar.Tau1(), d)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("star-vs-one mismatch should be flagged")
	}
	if v.Tag != "db" {
		t.Fatalf("violation at %s/%s, want the db rule", v.State, v.Tag)
	}
}

func TestWrongChildOrderFlagged(t *testing.T) {
	// DTD expects title before cno: τ1 emits cno first.
	d := dtd.New("db", map[string]dtd.Regex{
		"db":     dtd.Rep(dtd.S("course")),
		"course": dtd.Cat(dtd.S("title"), dtd.S("cno"), dtd.S("prereq")),
		"prereq": dtd.Rep(dtd.S("course")),
	})
	v, err := Check(registrar.Tau1(), d)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil || v.Tag != "course" {
		t.Fatalf("order mismatch should be flagged at course, got %v", v)
	}
}

func TestDeadItemsIgnored(t *testing.T) {
	// A rule with an unsatisfiable CQ item doesn't pollute the child
	// language.
	s := relation.NewSchema().MustDeclare("R1", 1)
	x := logic.Var("x")
	tr := pt.New("dead", s, "q0", "r")
	tr.DeclareTag("a", 1).DeclareTag("b", 1)
	dead := logic.Conj(logic.EqT(x, logic.Const("0")), logic.NeqT(x, logic.Const("0")))
	tr.AddRule("q0", "r",
		pt.Item("q", "a", logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))),
		pt.Item("q", "b", logic.MustQuery([]logic.Var{x}, nil, dead)))
	tr.AddRule("q", "a")
	tr.AddRule("q", "b")
	d := dtd.New("r", map[string]dtd.Regex{"r": dtd.Rep(dtd.S("a"))}) // no b allowed
	v, err := Check(tr, d)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("dead b-item should be ignored: %v", v)
	}
}

func TestOptionalityRequiresStar(t *testing.T) {
	// A query may return nothing, so d(a) must accept the empty word
	// too; requiring at least one child is flagged.
	s := relation.NewSchema().MustDeclare("R1", 1)
	x := logic.Var("x")
	tr := pt.New("opt", s, "q0", "r")
	tr.DeclareTag("a", 1)
	tr.AddRule("q0", "r", pt.Item("q", "a", logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))))
	tr.AddRule("q", "a")
	d := dtd.New("r", map[string]dtd.Regex{"r": dtd.OneOrMore(dtd.S("a"))})
	v, err := Check(tr, d)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("empty instance gives a bare r, violating a+")
	}
	if len(v.Word) != 0 {
		t.Fatalf("counterexample should be the empty word, got %q", v.Word)
	}
}

func TestVirtualRejected(t *testing.T) {
	if _, err := Check(registrar.Tau2(), tau1DTD()); err == nil {
		t.Fatal("virtual tags must be rejected by the sound checker")
	}
}

// TestSoundnessFuzz: whenever the checker passes a (random view, random
// DTD) pair, every executed output conforms.
func TestSoundnessFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	level1 := func(x, y logic.Var) []logic.Formula {
		return []logic.Formula{
			logic.Ex([]logic.Var{y}, logic.R("E", x, y)),
			logic.R("E", x, x),
			logic.Ex([]logic.Var{y}, logic.Conj(logic.R("E", x, y), logic.NeqT(x, y))),
		}
	}
	dtds := []*dtd.DTD{
		dtd.New("r", map[string]dtd.Regex{"r": dtd.Rep(dtd.S("a"))}),
		dtd.New("r", map[string]dtd.Regex{"r": dtd.Maybe(dtd.S("a"))}),
		dtd.New("r", map[string]dtd.Regex{"r": dtd.OneOrMore(dtd.S("a"))}),
		dtd.New("r", map[string]dtd.Regex{"r": dtd.Cat(dtd.S("a"), dtd.S("a"))}),
	}
	passes, violations := 0, 0
	for trial := 0; trial < 60; trial++ {
		x, y := logic.Var("x"), logic.Var("y")
		s := relation.NewSchema().MustDeclare("E", 2)
		tr := pt.New("fuzz", s, "q0", "r")
		tr.DeclareTag("a", 1)
		pool := level1(x, y)
		tr.AddRule("q0", "r", pt.Item("q", "a",
			logic.MustQuery([]logic.Var{x}, nil, pool[rng.Intn(len(pool))])))
		tr.AddRule("q", "a")
		d := dtds[rng.Intn(len(dtds))]
		v, err := Check(tr, d)
		if err != nil {
			t.Fatal(err)
		}
		if v != nil {
			violations++
			continue
		}
		passes++
		// Soundness: run on random instances and validate.
		for k := 0; k < 8; k++ {
			inst := relation.NewInstance(s)
			for e := 0; e < rng.Intn(5); e++ {
				a, b := rng.Intn(3), rng.Intn(3)
				inst.Add("E", string(rune('p'+a)), string(rune('p'+b)))
			}
			out, err := tr.Output(inst, pt.Options{MaxNodes: 10000})
			if err != nil {
				t.Fatal(err)
			}
			if !d.Validate(out) {
				t.Fatalf("trial %d: checker passed but output %s violates\n%s%s",
					trial, out.Canonical(), d, tr)
			}
		}
	}
	if passes == 0 || violations == 0 {
		t.Fatalf("unbalanced fuzz: %d passes, %d violations", passes, violations)
	}
}
