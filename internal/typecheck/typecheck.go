// Package typecheck implements a sound static typechecker for
// publishing transducers against DTDs — the open problem the paper's
// conclusion singles out ("Another interesting topic is the
// typechecking problem for publishing transducers. Our preliminary
// results show that while this is undecidable in general, there are
// interesting decidable cases.").
//
// The checker is sound but incomplete: Check(τ, d) == nil guarantees
// that τ(I) conforms to d for every instance I; a non-nil result is a
// potential violation (a child word some instance might produce that
// the content model rejects).
//
// The abstraction: a transducer node with rule items (a1,…,ak) always
// emits its children as a word in a1* a2* … ak* (grouped per item, in
// item order), so it suffices that the content model of the parent's
// tag accepts *every* word of that star-concatenation language (items
// with unsatisfiable CQ queries contribute nothing and are dropped when
// that can be established). Language inclusion a1*…ak* ⊆ L(d(tag)) is
// decided exactly by a lazy subset construction over the content
// model's NFA.
package typecheck

import (
	"fmt"
	"sort"
	"strings"

	"ptx/internal/cq"
	"ptx/internal/dtd"
	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/xmltree"
)

// Violation describes a potential type error: a rule whose emitted
// child words are not all accepted by the parent tag's content model.
type Violation struct {
	State string
	Tag   string
	Word  []string // a child word the content model rejects
}

func (v *Violation) Error() string {
	return fmt.Sprintf("typecheck: rule (%s,%s) can emit children %q outside the content model",
		v.State, v.Tag, strings.Join(v.Word, " "))
}

// Check verifies, soundly, that every output tree of the transducer
// conforms to the DTD. Virtual tags are not supported (splicing changes
// the child words); transducers with virtual tags are rejected with an
// error distinct from a violation.
func Check(t *pt.Transducer, d *dtd.DTD) (*Violation, error) {
	if len(t.Virtual) > 0 {
		return nil, fmt.Errorf("typecheck: virtual tags are not supported by the sound checker")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if t.RootTag != d.Root {
		return nil, fmt.Errorf("typecheck: transducer root %q vs DTD root %q", t.RootTag, d.Root)
	}
	g := t.DependencyGraph()
	reach := g.Reachable()
	var nodes []pt.GraphNode
	for n := range reach {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].State != nodes[j].State {
			return nodes[i].State < nodes[j].State
		}
		return nodes[i].Tag < nodes[j].Tag
	})

	for _, n := range nodes {
		if n.Tag == xmltree.TextTag {
			continue
		}
		rule, ok := t.Rule(n.State, n.Tag)
		var stages []stage
		if ok {
			for _, it := range rule.Items {
				if it.Tag == xmltree.TextTag {
					// pcdata: not part of the element content model here.
					continue
				}
				m := multiplicity(it)
				if m == multDead {
					continue
				}
				stages = append(stages, stage{tag: it.Tag, mult: m})
			}
		}
		nfa := dtd.Compile(d.Rule(n.Tag))
		if word, ok := wordsIncluded(stages, nfa); !ok {
			return &Violation{State: n.State, Tag: n.Tag, Word: word}, nil
		}
	}
	return nil, nil
}

// mult abstracts how many children one rule item can emit on a single
// node.
type mult int

const (
	multDead mult = iota // never emits (unsatisfiable CQ)
	multOne              // exactly one (total register projection)
	multOpt              // zero or one (register-determined head)
	multStar             // any number
)

type stage struct {
	tag  string
	mult mult
}

// multiplicity performs the static count analysis on a CQ item over a
// tuple register: a head fully determined by the register (or by
// constants) yields at most one child; if additionally the query has
// only Reg atoms and no constraints it yields exactly one. Everything
// else — and all FO/IFP items — is conservatively unbounded.
func multiplicity(it pt.RHS) mult {
	if it.Query.Logic() != logic.CQ {
		return multStar
	}
	nf, err := cq.Normalize(it.Query.Head(), it.Query.F)
	if err != nil {
		return multStar
	}
	if !nf.Satisfiable() {
		return multDead
	}
	if !nf.HeadDeterminedBy(pt.RegRel) {
		return multStar
	}
	// Exactly one when nothing can fail: only Reg atoms, no constraints.
	onlyReg := true
	for _, a := range nf.Atoms {
		if a.Rel != pt.RegRel {
			onlyReg = false
		}
	}
	if onlyReg && len(nf.Constraints) == 0 {
		return multOne
	}
	return multOpt
}

// wordsIncluded decides whether every word in the stage language
// (w1 w2 … wk with wi ∈ {ε, tag, tag tag, …} per the stage's
// multiplicity) is accepted by the NFA, via a lazy subset construction
// memoized on (stage, consumed-in-stage>0 for exactly-one stages,
// state set). On failure it returns a rejected word.
func wordsIncluded(stages []stage, nfa *dtd.NFA) ([]string, bool) {
	type cfg struct {
		stage int
		key   string
	}
	visited := map[cfg]bool{}
	type item struct {
		stage int
		set   map[int]bool
		word  []string
	}
	queue := []item{{stage: 0, set: nfa.StartSet()}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		key := cfg{cur.stage, dtd.StateSetKey(cur.set)}
		if visited[key] {
			continue
		}
		visited[key] = true

		if cur.stage == len(stages) {
			if !nfa.Accepting(cur.set) {
				return cur.word, false
			}
			continue
		}
		st := stages[cur.stage]
		consume := func() (map[int]bool, []string, bool) {
			next := nfa.StepSet(cur.set, st.tag)
			w := append(append([]string{}, cur.word...), st.tag)
			return next, w, len(next) > 0
		}
		switch st.mult {
		case multOne:
			next, w, ok := consume()
			if !ok {
				return w, false
			}
			queue = append(queue, item{stage: cur.stage + 1, set: next, word: w})
		case multOpt:
			next, w, ok := consume()
			if !ok {
				return w, false
			}
			queue = append(queue, item{stage: cur.stage + 1, set: next, word: w})
			queue = append(queue, item{stage: cur.stage + 1, set: cur.set, word: cur.word})
		default: // multStar
			next, w, ok := consume()
			if !ok {
				return w, false
			}
			queue = append(queue, item{stage: cur.stage, set: next, word: w})
			queue = append(queue, item{stage: cur.stage + 1, set: cur.set, word: cur.word})
		}
	}
	return nil, true
}
