// Package transduction implements logical L-transductions (Section 6.3
// of the paper): mappings from relational structures to trees defined by
// a tuple of formulas (φdom, φroot, φe, φ<, φfc, φns, (φa)a∈Σ) over
// width-k tuples of domain elements, plus the two translations of
// Theorem 4:
//
//   - ToTransducer (Thm 4(1)): every L-transduction is definable in
//     PT(L, tuple, virtual);
//   - FromTransducer (Thm 4(2,4)): every nonrecursive PT(L, tuple, O)
//     transducer is a fixed-depth transduction (over unordered trees).
package transduction

import (
	"fmt"
	"sort"

	"ptx/internal/eval"
	"ptx/internal/logic"
	"ptx/internal/relation"
	"ptx/internal/value"
	"ptx/internal/xmltree"
)

// X, Y and Z name the conventional variable blocks of a transduction of
// width k: φroot and φa are over X(0..k-1); φe, φfc and φns over X;Y;
// φ< over X;Y;Z.
func X(i int) logic.Var { return logic.Var(fmt.Sprintf("tx%d", i)) }
func Y(i int) logic.Var { return logic.Var(fmt.Sprintf("ty%d", i)) }
func Z(i int) logic.Var { return logic.Var(fmt.Sprintf("tz%d", i)) }

func varBlock(f func(int) logic.Var, k int) []logic.Var {
	out := make([]logic.Var, k)
	for i := range out {
		out[i] = f(i)
	}
	return out
}

// Transduction is an L-transduction of width Width. Root and Labels are
// mandatory; ordering uses Less when present and falls back to the
// canonical tuple order (the "unordered" reading of Theorem 4(4)).
// FirstChild/NextSibling are the φfc/φns components required by
// ToTransducer; DeriveNavigation fills them from Edge and Less in FO.
type Transduction struct {
	Width       int
	Root        logic.Formula // φroot over X
	Edge        logic.Formula // φe over X;Y
	Less        logic.Formula // φ< over X;Y;Z (may be nil: tuple order)
	FirstChild  logic.Formula // φfc over X;Y (may be nil until derived)
	NextSibling logic.Formula // φns over X;Y (may be nil until derived)
	Labels      map[string]logic.Formula
	RootTag     string // tag of the synthetic tree root added on top
}

// Validate checks arities of the variable blocks used by each formula.
func (t *Transduction) Validate() error {
	if t.Width <= 0 {
		return fmt.Errorf("transduction: nonpositive width")
	}
	if t.Root == nil || t.Edge == nil || len(t.Labels) == 0 {
		return fmt.Errorf("transduction: Root, Edge and Labels are mandatory")
	}
	allowed := map[logic.Var]bool{}
	for i := 0; i < t.Width; i++ {
		allowed[X(i)] = true
		allowed[Y(i)] = true
		allowed[Z(i)] = true
	}
	check := func(name string, f logic.Formula) error {
		if f == nil {
			return nil
		}
		for _, v := range logic.FreeVars(f) {
			if !allowed[v] {
				return fmt.Errorf("transduction: %s uses unexpected free variable %s", name, v)
			}
		}
		return nil
	}
	for name, f := range map[string]logic.Formula{
		"Root": t.Root, "Edge": t.Edge, "Less": t.Less,
		"FirstChild": t.FirstChild, "NextSibling": t.NextSibling,
	} {
		if err := check(name, f); err != nil {
			return err
		}
	}
	for l, f := range t.Labels {
		if err := check("Label "+l, f); err != nil {
			return err
		}
	}
	return nil
}

// DeriveNavigation fills FirstChild and NextSibling from Edge and Less
// using the FO definitions of the paper:
//
//	φfc(x̄,ȳ) = φe(x̄,ȳ) ∧ ¬∃z̄ (φe(x̄,z̄) ∧ φ<(x̄,z̄,ȳ))
//	φns(ȳ,z̄) = ∃x̄ (φe(x̄,ȳ) ∧ φe(x̄,z̄) ∧ φ<(x̄,ȳ,z̄)
//	            ∧ ¬∃w̄(φe(x̄,w̄) ∧ φ<(x̄,ȳ,w̄) ∧ φ<(x̄,w̄,z̄)))
//
// It requires Less (an explicit sibling order).
func (t *Transduction) DeriveNavigation() error {
	if t.Less == nil {
		return fmt.Errorf("transduction: DeriveNavigation requires Less")
	}
	k := t.Width
	xs, ys, zs := varBlock(X, k), varBlock(Y, k), varBlock(Z, k)

	// φfc over X;Y.
	lessXZtoY := renameBlock(t.Less, k, map[string]func(int) logic.Var{"y": Z, "z": Y})
	t.FirstChild = logic.Conj(
		t.Edge,
		&logic.Not{F: logic.Ex(zs, logic.Conj(
			renameBlock(t.Edge, k, map[string]func(int) logic.Var{"y": Z}),
			lessXZtoY,
		))},
	)

	// φns over X(parent-free form): the paper's φns(ȳ,z̄) has free blocks
	// ȳ,z̄; we expose it over X;Y meaning "Y is the next sibling of X".
	// Build it with X as the elder sibling and Y the next one; the parent
	// block is existentially quantified as Z, and the "nothing between"
	// witness uses a fourth fresh block.
	ws := make([]logic.Var, k)
	for i := range ws {
		ws[i] = logic.Var(fmt.Sprintf("tw%d", i))
	}
	edgePX := renameBlock(t.Edge, k, map[string]func(int) logic.Var{"x": Z, "y": X})
	edgePY := renameBlock(t.Edge, k, map[string]func(int) logic.Var{"x": Z}) // Z;Y
	lessPXY := renameBlock(t.Less, k, map[string]func(int) logic.Var{"x": Z, "y": X, "z": Y})
	edgePW := renameBlock(t.Edge, k, map[string]func(int) logic.Var{"x": Z, "y": wBlock(ws)})
	lessPXW := renameBlock(t.Less, k, map[string]func(int) logic.Var{"x": Z, "y": X, "z": wBlock(ws)})
	lessPWY := renameBlock(t.Less, k, map[string]func(int) logic.Var{"x": Z, "y": wBlock(ws), "z": Y})
	t.NextSibling = logic.Ex(zs, logic.Conj(
		edgePX, edgePY, lessPXY,
		&logic.Not{F: logic.Ex(ws, logic.Conj(edgePW, lessPXW, lessPWY))},
	))
	_ = xs
	_ = ys
	return nil
}

func wBlock(ws []logic.Var) func(int) logic.Var {
	return func(i int) logic.Var { return ws[i] }
}

// renameBlock rewrites the conventional variable blocks (width k) of a
// formula: keys "x", "y", "z" map the X/Y/Z blocks to new block
// generators.
func renameBlock(f logic.Formula, k int, m map[string]func(int) logic.Var) logic.Formula {
	sub := map[logic.Var]logic.Term{}
	for i := 0; i < k; i++ {
		if g, ok := m["x"]; ok {
			sub[X(i)] = g(i)
		}
		if g, ok := m["y"]; ok {
			sub[Y(i)] = g(i)
		}
		if g, ok := m["z"]; ok {
			sub[Z(i)] = g(i)
		}
	}
	return logic.Substitute(f, sub)
}

// Apply evaluates the transduction on inst and unfolds the resulting
// dag into a tree under a synthetic root (tag RootTag, default "r").
// Only nodes reachable from the φroot node are materialized; maxNodes
// guards against runaway unfoldings (0 = 1,000,000).
func (t *Transduction) Apply(inst *relation.Instance, maxNodes int) (*xmltree.Tree, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if maxNodes <= 0 {
		maxNodes = 1_000_000
	}
	env := eval.NewEnv(inst)

	rootTuples, err := evalBlock(t.Root, env, varBlock(X, t.Width))
	if err != nil {
		return nil, err
	}
	if len(rootTuples) != 1 {
		return nil, fmt.Errorf("transduction: φroot defines %d nodes, want exactly 1", len(rootTuples))
	}

	// Edge relation as adjacency over tuple keys.
	edgeBinds, err := eval.Eval(t.Edge, env)
	if err != nil {
		return nil, err
	}
	adj := map[string][]value.Tuple{}
	xIdx, yIdx := blockIndices(edgeBinds.Vars, X, t.Width), blockIndices(edgeBinds.Vars, Y, t.Width)
	edgeBinds.Rel.Each(func(tp value.Tuple) bool {
		from := pick(tp, xIdx)
		to := pick(tp, yIdx)
		adj[from.Key()] = append(adj[from.Key()], to)
		return true
	})

	// Label lookup per node.
	labelOf := func(tp value.Tuple) (string, error) {
		found := ""
		names := make([]string, 0, len(t.Labels))
		for n := range t.Labels {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, name := range names {
			sub := map[logic.Var]logic.Term{}
			for i := 0; i < t.Width; i++ {
				sub[X(i)] = logic.Const(tp[i])
			}
			ok, err := eval.EvalSentence(logic.Substitute(t.Labels[name], sub), env)
			if err != nil {
				return "", err
			}
			if ok {
				if found != "" {
					return "", fmt.Errorf("transduction: node %v has labels %s and %s", tp, found, name)
				}
				found = name
			}
		}
		if found == "" {
			return "", fmt.Errorf("transduction: node %v has no label", tp)
		}
		return found, nil
	}

	// Child ordering: Less when present, else canonical tuple order.
	orderChildren := func(parent value.Tuple, kids []value.Tuple) ([]value.Tuple, error) {
		if t.Less == nil {
			value.SortTuples(kids)
			return kids, nil
		}
		var orderErr error
		less := func(a, b value.Tuple) bool {
			sub := map[logic.Var]logic.Term{}
			for i := 0; i < t.Width; i++ {
				sub[X(i)] = logic.Const(parent[i])
				sub[Y(i)] = logic.Const(a[i])
				sub[Z(i)] = logic.Const(b[i])
			}
			ok, err := eval.EvalSentence(logic.Substitute(t.Less, sub), env)
			if err != nil {
				orderErr = err
			}
			return ok
		}
		sort.SliceStable(kids, func(i, j int) bool { return less(kids[i], kids[j]) })
		return kids, orderErr
	}

	count := 0
	var build func(tp value.Tuple, onPath map[string]bool) (*xmltree.Node, error)
	build = func(tp value.Tuple, onPath map[string]bool) (*xmltree.Node, error) {
		count++
		if count > maxNodes {
			return nil, fmt.Errorf("transduction: unfolding exceeded %d nodes", maxNodes)
		}
		lbl, err := labelOf(tp)
		if err != nil {
			return nil, err
		}
		n := &xmltree.Node{Tag: lbl}
		k := tp.Key()
		if onPath[k] {
			return nil, fmt.Errorf("transduction: φe has a cycle through %v", tp)
		}
		onPath[k] = true
		kids := append([]value.Tuple{}, adj[k]...)
		kids, err = orderChildren(tp, kids)
		if err != nil {
			return nil, err
		}
		for _, c := range kids {
			cn, err := build(c, onPath)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, cn)
		}
		delete(onPath, k)
		return n, nil
	}

	rootTag := t.RootTag
	if rootTag == "" {
		rootTag = "r"
	}
	top := &xmltree.Node{Tag: rootTag}
	child, err := build(rootTuples[0], map[string]bool{})
	if err != nil {
		return nil, err
	}
	top.Children = []*xmltree.Node{child}
	return &xmltree.Tree{Root: top}, nil
}

// evalBlock evaluates a formula over a single variable block and
// returns the satisfying tuples in block order.
func evalBlock(f logic.Formula, env *eval.Env, block []logic.Var) ([]value.Tuple, error) {
	b, err := eval.Eval(f, env)
	if err != nil {
		return nil, err
	}
	idx := blockIndices(b.Vars, func(i int) logic.Var { return block[i] }, len(block))
	var out []value.Tuple
	b.Rel.Each(func(tp value.Tuple) bool {
		out = append(out, pick(tp, idx))
		return true
	})
	value.SortTuples(out)
	return dedupTuples(out), nil
}

func dedupTuples(ts []value.Tuple) []value.Tuple {
	var out []value.Tuple
	seen := map[string]bool{}
	for _, t := range ts {
		if !seen[t.Key()] {
			seen[t.Key()] = true
			out = append(out, t)
		}
	}
	return out
}

// blockIndices maps block positions to columns of a bindings row;
// missing variables panic (a transduction formula must use its blocks).
func blockIndices(vars []logic.Var, block func(int) logic.Var, k int) []int {
	pos := map[logic.Var]int{}
	for i, v := range vars {
		pos[v] = i
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		p, ok := pos[block(i)]
		if !ok {
			out[i] = -1
			continue
		}
		out[i] = p
	}
	return out
}

// pick extracts the block columns; a missing column (unconstrained
// variable) is filled with "0".
func pick(tp value.Tuple, idx []int) value.Tuple {
	out := make(value.Tuple, len(idx))
	for i, p := range idx {
		if p < 0 {
			out[i] = "0"
			continue
		}
		out[i] = tp[p]
	}
	return out
}
