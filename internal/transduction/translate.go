package transduction

import (
	"fmt"
	"sort"

	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/relation"
	"ptx/internal/xmltree"
)

// ToTransducer implements Theorem 4(1): every L-transduction is
// definable in PT(L, tuple, virtual). The construction follows the
// proof: the start rule emits the φroot node with its label; each
// emitted node spawns two virtual v-children holding its first child
// and its second child; a q1-v node emits its register node; a q2-v
// node emits its register node and chases the next sibling.
//
// FirstChild and NextSibling must be present (call DeriveNavigation for
// FO transductions with an explicit Less).
func ToTransducer(t *Transduction, schema *relation.Schema) (*pt.Transducer, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if t.FirstChild == nil || t.NextSibling == nil {
		return nil, fmt.Errorf("transduction: ToTransducer needs FirstChild/NextSibling (DeriveNavigation)")
	}
	k := t.Width
	rootTag := t.RootTag
	if rootTag == "" {
		rootTag = "r"
	}

	tr := pt.New("transduction", schema, "q0", rootTag)
	tr.DeclareTag("v", k)
	tr.MarkVirtual("v")

	labels := make([]string, 0, len(t.Labels))
	for l := range t.Labels {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		tr.DeclareTag(l, k)
	}

	xs := varBlock(X, k)

	// emitItems: one item per label, selecting the register node when it
	// carries that label. guard is conjoined (Reg(x̄) for inner rules,
	// φroot for the start rule).
	emitItems := func(state string, guard logic.Formula) []pt.RHS {
		var items []pt.RHS
		for _, l := range labels {
			items = append(items, pt.Item(state, l,
				logic.MustQuery(xs, nil, logic.Conj(guard, t.Labels[l]))))
		}
		return items
	}

	regAtom := &logic.Atom{Rel: pt.RegRel, Args: logic.TermVars(xs)}

	// Start rule: the root node with its label.
	tr.AddRule("q0", rootTag, emitItems("q", t.Root)...)

	// (q, a): spawn first child and second child as virtual nodes.
	ps := make([]logic.Var, k) // parent block
	ss := make([]logic.Var, k) // intermediate sibling block
	for i := 0; i < k; i++ {
		ps[i] = logic.Var(fmt.Sprintf("tp%d", i))
		ss[i] = logic.Var(fmt.Sprintf("ts%d", i))
	}
	pBlock := func(i int) logic.Var { return ps[i] }
	sBlock := func(i int) logic.Var { return ss[i] }

	// first child of the register node: ∃p̄ Reg(p̄) ∧ φfc(p̄, x̄).
	fcOfReg := logic.Ex(ps, logic.Conj(
		&logic.Atom{Rel: pt.RegRel, Args: logic.TermVars(ps)},
		renameBlock(t.FirstChild, k, map[string]func(int) logic.Var{"x": pBlock, "y": X}),
	))
	// second child: ∃p̄,s̄ Reg(p̄) ∧ φfc(p̄,s̄) ∧ φns(s̄,x̄).
	secondOfReg := logic.Ex(append(append([]logic.Var{}, ps...), ss...), logic.Conj(
		&logic.Atom{Rel: pt.RegRel, Args: logic.TermVars(ps)},
		renameBlock(t.FirstChild, k, map[string]func(int) logic.Var{"x": pBlock, "y": sBlock}),
		renameBlock(t.NextSibling, k, map[string]func(int) logic.Var{"x": sBlock, "y": X}),
	))
	for _, l := range labels {
		tr.AddRule("q", l,
			pt.Item("q1", "v", logic.MustQuery(xs, nil, fcOfReg)),
			pt.Item("q2", "v", logic.MustQuery(xs, nil, secondOfReg)),
		)
	}

	// (q1, v): emit the register node.
	tr.AddRule("q1", "v", emitItems("q", regAtom)...)

	// (q2, v): emit the register node and chase the next sibling.
	nsOfReg := logic.Ex(ss, logic.Conj(
		&logic.Atom{Rel: pt.RegRel, Args: logic.TermVars(ss)},
		renameBlock(t.NextSibling, k, map[string]func(int) logic.Var{"x": sBlock, "y": X}),
	))
	q2Items := emitItems("q", regAtom)
	q2Items = append(q2Items, pt.Item("q2", "v", logic.MustQuery(xs, nil, nsOfReg)))
	tr.AddRule("q2", "v", q2Items...)

	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// FromTransducer implements Theorem 4(2,4): a nonrecursive
// PT(L, tuple, O) transducer becomes a fixed-depth transduction of
// width 2 + maxArity whose node tuples are (state, tag, register…,
// padding). Virtual tags are compressed into the edge relation as the
// union of the composed queries along virtual routes (the proof's φe
// construction). The resulting transduction is unordered (no φ<):
// Theorem 4(4) equates the two formalisms over unordered trees, so
// round trips compare trees via xmltree.SortedCanonical.
func FromTransducer(tr *pt.Transducer) (*Transduction, error) {
	if tr.IsRecursive() {
		return nil, fmt.Errorf("transduction: FromTransducer needs a nonrecursive transducer")
	}
	cl := tr.Classify()
	if cl.Store != pt.TupleStore {
		return nil, fmt.Errorf("transduction: FromTransducer needs tuple stores, got %s", cl)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	for _, tag := range tr.Tags() {
		if tag == xmltree.TextTag {
			return nil, fmt.Errorf("transduction: text payloads are not representable; remove text tags")
		}
	}

	maxAr := 0
	for _, tag := range tr.Tags() {
		if a := tr.Arity(tag); a > maxAr {
			maxAr = a
		}
	}
	k := maxAr + 2
	pad := logic.Const("0")

	// Node encoding: col 0 = state, col 1 = tag, cols 2.. = register
	// padded with "0".
	nodeEq := func(block func(int) logic.Var, state, tag string, regArity int) []logic.Formula {
		out := []logic.Formula{
			logic.EqT(block(0), logic.Const(state)),
			logic.EqT(block(1), logic.Const(tag)),
		}
		for i := 2 + regArity; i < k; i++ {
			out = append(out, logic.EqT(block(i), pad))
		}
		return out
	}

	t := &Transduction{
		Width:   k,
		Labels:  map[string]logic.Formula{},
		RootTag: "synthetic",
	}
	t.Root = logic.Conj(nodeEq(X, tr.Start, tr.RootTag, 0)...)

	// Labels by the tag column. States sharing a tag share the label.
	for _, tag := range tr.Tags() {
		if tr.Virtual[tag] {
			continue
		}
		t.Labels[tag] = logic.EqT(X(1), logic.Const(tag))
	}

	// Edge disjuncts: for every normal rule node and every virtual-
	// compressed route to a normal child.
	var disjuncts []logic.Formula
	var buildErr error
	g := tr.DependencyGraph()
	reach := g.Reachable()
	var nodes []pt.GraphNode
	for n := range reach {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].State != nodes[j].State {
			return nodes[i].State < nodes[j].State
		}
		return nodes[i].Tag < nodes[j].Tag
	})
	for _, n := range nodes {
		if tr.Virtual[n.Tag] {
			continue
		}
		routes := routesFrom(tr, n, nil, &buildErr)
		if buildErr != nil {
			return nil, buildErr
		}
		for _, rt := range routes {
			f := routeFormula(tr, n, rt)
			disjuncts = append(disjuncts, f)
		}
	}
	if len(disjuncts) == 0 {
		// No edges at all: the φe must still be a valid (empty) relation.
		disjuncts = append(disjuncts, logic.False)
	}
	t.Edge = logic.Disj(disjuncts...)
	return t, nil
}

// frRoute is a virtual-compressed step: the item queries traversed
// (first from the normal source, intermediate ones through virtual
// tags) and the normal node reached.
type frRoute struct {
	queries []*logic.Query
	end     pt.GraphNode
}

func routesFrom(tr *pt.Transducer, n pt.GraphNode, prefix []*logic.Query, errOut *error) []frRoute {
	rule, ok := tr.Rule(n.State, n.Tag)
	if !ok {
		return nil
	}
	var out []frRoute
	for _, it := range rule.Items {
		chain := append(append([]*logic.Query{}, prefix...), it.Query)
		child := pt.GraphNode{State: it.State, Tag: it.Tag}
		if tr.Virtual[it.Tag] {
			out = append(out, routesFrom(tr, child, chain, errOut)...)
			continue
		}
		out = append(out, frRoute{queries: chain, end: child})
	}
	return out
}

var composeCounter int

// routeFormula builds one φe disjunct: source node = (n.State, n.Tag,
// X-register), target node = (end.State, end.Tag, composed-query head
// bound to the Y-register columns).
func routeFormula(tr *pt.Transducer, n pt.GraphNode, rt frRoute) logic.Formula {
	// Compose the route queries front to back.
	cur := rt.queries[0].F
	curHead := rt.queries[0].Head()
	for i := 1; i < len(rt.queries); i++ {
		inner := cur
		innerHead := curHead
		cur = logic.ReplaceAtom(rt.queries[i].F, pt.RegRel, func(args []logic.Term) logic.Formula {
			composeCounter++
			suffix := fmt.Sprintf("_c%d", composeCounter)
			fresh := logic.RenameAllVars(inner, suffix)
			freshHead := make([]logic.Var, len(innerHead))
			parts := []logic.Formula{fresh}
			for j, h := range innerHead {
				freshHead[j] = logic.Var(string(h) + suffix)
				parts = append(parts, logic.EqT(freshHead[j], args[j]))
			}
			return logic.Ex(freshHead, logic.Conj(parts...))
		})
		curHead = rt.queries[i].Head()
	}
	// Bind the remaining Reg atoms (the source register) to the X block
	// and the head to the Y block.
	srcArity := tr.Arity(n.Tag)
	cur = logic.ReplaceAtom(cur, pt.RegRel, func(args []logic.Term) logic.Formula {
		parts := make([]logic.Formula, len(args))
		for j, a := range args {
			parts[j] = logic.EqT(a, X(2+j))
		}
		return logic.Conj(parts...)
	})
	sub := map[logic.Var]logic.Term{}
	for j, h := range curHead {
		sub[h] = Y(2 + j)
	}
	cur = logic.Substitute(cur, sub)

	k := len(curHead)
	parts := []logic.Formula{
		logic.EqT(X(0), logic.Const(n.State)),
		logic.EqT(X(1), logic.Const(n.Tag)),
		logic.EqT(Y(0), logic.Const(rt.end.State)),
		logic.EqT(Y(1), logic.Const(rt.end.Tag)),
		cur,
	}
	_ = srcArity
	// Pad the unused register columns of both blocks.
	width := 0
	for _, tag := range tr.Tags() {
		if a := tr.Arity(tag); a > width {
			width = a
		}
	}
	for i := 2 + srcArity; i < width+2; i++ {
		parts = append(parts, logic.EqT(X(i), logic.Const("0")))
	}
	for i := 2 + k; i < width+2; i++ {
		parts = append(parts, logic.EqT(Y(i), logic.Const("0")))
	}
	return logic.Conj(parts...)
}
