package transduction

import (
	"testing"

	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/relation"
	"ptx/internal/xmltree"
)

// treeSchema: a node set with edges, an explicit sibling order, a root
// marker and two label relations.
func treeSchema() *relation.Schema {
	s := relation.NewSchema()
	s.MustDeclare("E", 2)
	s.MustDeclare("Rt", 1)
	s.MustDeclare("Ord", 2)
	s.MustDeclare("LabA", 1)
	s.MustDeclare("LabB", 1)
	return s
}

// sampleTransduction is a width-1 FO-transduction reading a tree out of
// the instance: root from Rt, edges from E, sibling order from Ord,
// labels from LabA/LabB.
func sampleTransduction() *Transduction {
	return &Transduction{
		Width: 1,
		Root:  logic.R("Rt", X(0)),
		Edge:  logic.R("E", X(0), Y(0)),
		Less:  logic.R("Ord", Y(0), Z(0)),
		Labels: map[string]logic.Formula{
			"a": logic.R("LabA", X(0)),
			"b": logic.R("LabB", X(0)),
		},
	}
}

// sampleInstance: 1 → {2,3} (ordered 2 before 3), 2 → 4;
// labels: a = {1,2,4}, b = {3}.
func sampleInstance() *relation.Instance {
	inst := relation.NewInstance(treeSchema())
	inst.Add("Rt", "1")
	inst.Add("E", "1", "2")
	inst.Add("E", "1", "3")
	inst.Add("E", "2", "4")
	for _, p := range [][2]string{{"1", "2"}, {"1", "3"}, {"1", "4"}, {"2", "3"}, {"2", "4"}, {"3", "4"}} {
		inst.Add("Ord", p[0], p[1])
	}
	for _, v := range []string{"1", "2", "4"} {
		inst.Add("LabA", v)
	}
	inst.Add("LabB", "3")
	return inst
}

func TestApply(t *testing.T) {
	tr := sampleTransduction()
	out, err := tr.Apply(sampleInstance(), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := "r(a(a(a),b))"
	if out.Canonical() != want {
		t.Fatalf("Apply = %s, want %s", out.Canonical(), want)
	}
}

func TestApplySiblingOrderFromLess(t *testing.T) {
	// Reverse the order relation: 3 before 2.
	tr := sampleTransduction()
	inst := sampleInstance()
	inst.SetRel("Ord", relation.FromRows(
		[]string{"3", "2"}, []string{"3", "4"}, []string{"4", "2"},
		[]string{"3", "1"}, []string{"4", "1"}, []string{"2", "1"},
	))
	out, err := tr.Apply(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := "r(a(b,a(a)))"
	if out.Canonical() != want {
		t.Fatalf("Apply = %s, want %s", out.Canonical(), want)
	}
}

func TestApplyRejectsAmbiguousLabels(t *testing.T) {
	tr := sampleTransduction()
	inst := sampleInstance()
	inst.Add("LabB", "1") // node 1 now has two labels
	if _, err := tr.Apply(inst, 0); err == nil {
		t.Fatal("ambiguous labels should be rejected")
	}
}

func TestApplyRejectsCycles(t *testing.T) {
	tr := sampleTransduction()
	inst := sampleInstance()
	inst.Add("E", "4", "1")
	if _, err := tr.Apply(inst, 0); err == nil {
		t.Fatal("cyclic φe should be rejected")
	}
}

func TestApplyDagUnfoldsShared(t *testing.T) {
	// A diamond: 1 → 2, 1 → 3, 2 → 4, 3 → 4: node 4 unfolds twice.
	tr := sampleTransduction()
	inst := relation.NewInstance(treeSchema())
	inst.Add("Rt", "1")
	inst.Add("E", "1", "2")
	inst.Add("E", "1", "3")
	inst.Add("E", "2", "4")
	inst.Add("E", "3", "4")
	for _, p := range [][2]string{{"1", "2"}, {"1", "3"}, {"1", "4"}, {"2", "3"}, {"2", "4"}, {"3", "4"}} {
		inst.Add("Ord", p[0], p[1])
	}
	for _, v := range []string{"1", "2", "3", "4"} {
		inst.Add("LabA", v)
	}
	out, err := tr.Apply(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.CountTag("a"); got != 5 { // 1,2,3 + two copies of 4
		t.Fatalf("diamond unfolding has %d a-nodes, want 5: %s", got, out.Canonical())
	}
}

func TestDeriveNavigationAndToTransducer(t *testing.T) {
	// Theorem 4(1): the transduction and its transducer agree exactly
	// (ordering included, via φfc/φns).
	td := sampleTransduction()
	if err := td.DeriveNavigation(); err != nil {
		t.Fatal(err)
	}
	tr, err := ToTransducer(td, treeSchema())
	if err != nil {
		t.Fatal(err)
	}
	cl := tr.Classify()
	if cl.Store != pt.TupleStore || cl.Output != pt.VirtualOutput {
		t.Fatalf("Thm 4(1) class: got %s", cl)
	}
	inst := sampleInstance()
	fromT, err := td.Apply(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	fromTr, err := tr.Output(inst, pt.Options{MaxNodes: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !fromT.Equal(fromTr) {
		t.Fatalf("Thm 4(1) round trip:\ntransduction: %s\ntransducer:   %s",
			fromT.Canonical(), fromTr.Canonical())
	}
}

func TestToTransducerReversedOrder(t *testing.T) {
	td := sampleTransduction()
	if err := td.DeriveNavigation(); err != nil {
		t.Fatal(err)
	}
	tr, err := ToTransducer(td, treeSchema())
	if err != nil {
		t.Fatal(err)
	}
	inst := sampleInstance()
	inst.SetRel("Ord", relation.FromRows(
		[]string{"3", "2"}, []string{"3", "4"}, []string{"4", "2"},
		[]string{"3", "1"}, []string{"4", "1"}, []string{"2", "1"},
	))
	fromT, err := td.Apply(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	fromTr, err := tr.Output(inst, pt.Options{MaxNodes: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !fromT.Equal(fromTr) {
		t.Fatalf("reversed order round trip:\ntransduction: %s\ntransducer:   %s",
			fromT.Canonical(), fromTr.Canonical())
	}
}

// twoLevelTransducer is a nonrecursive PT(CQ, tuple, normal) view over a
// graph (a-children for edges, b-grandchildren for successors).
func twoLevelTransducer() *pt.Transducer {
	s := relation.NewSchema().MustDeclare("G", 2)
	x, y, z := logic.Var("x"), logic.Var("y"), logic.Var("z")
	tr := pt.New("2lvl", s, "q0", "r")
	tr.DeclareTag("a", 2).DeclareTag("b", 1)
	tr.AddRule("q0", "r", pt.Item("q", "a",
		logic.MustQuery([]logic.Var{x, y}, nil, logic.R("G", x, y))))
	step := logic.Ex([]logic.Var{x, y}, logic.Conj(logic.R(pt.RegRel, x, y), logic.R("G", y, z)))
	tr.AddRule("q", "a", pt.Item("qb", "b", logic.MustQuery([]logic.Var{z}, nil, step)))
	tr.AddRule("qb", "b")
	return tr
}

func TestFromTransducerRoundTrip(t *testing.T) {
	tr := twoLevelTransducer()
	td, err := FromTransducer(tr)
	if err != nil {
		t.Fatal(err)
	}
	inst := relation.NewInstance(relation.NewSchema().MustDeclare("G", 2))
	inst.Add("G", "1", "2")
	inst.Add("G", "2", "3")
	inst.Add("G", "2", "4")

	fromTr, err := tr.Output(inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	applied, err := td.Apply(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied.Root.Children) != 1 {
		t.Fatalf("expected one dag root under the synthetic root")
	}
	got := (&xmltree.Tree{Root: applied.Root.Children[0]}).SortedCanonical()
	want := fromTr.SortedCanonical()
	if got != want {
		t.Fatalf("Thm 4(2,4) round trip (unordered):\n got  %s\n want %s", got, want)
	}
}

func TestFromTransducerVirtualCompression(t *testing.T) {
	// A virtual hop between root and b must be compressed into a single
	// φe edge.
	s := relation.NewSchema().MustDeclare("R1", 1)
	x := logic.Var("x")
	tr := pt.New("virt", s, "q0", "r")
	tr.DeclareTag("v", 1).DeclareTag("b", 1)
	tr.MarkVirtual("v")
	tr.AddRule("q0", "r", pt.Item("qv", "v",
		logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))))
	tr.AddRule("qv", "v", pt.Item("qb", "b",
		logic.MustQuery([]logic.Var{x}, nil, logic.R(pt.RegRel, x))))
	tr.AddRule("qb", "b")

	td, err := FromTransducer(tr)
	if err != nil {
		t.Fatal(err)
	}
	inst := relation.NewInstance(s)
	inst.Add("R1", "a")
	inst.Add("R1", "k")
	fromTr, err := tr.Output(inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	applied, err := td.Apply(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := (&xmltree.Tree{Root: applied.Root.Children[0]}).SortedCanonical()
	if got != fromTr.SortedCanonical() {
		t.Fatalf("virtual compression round trip:\n got  %s\n want %s", got, fromTr.SortedCanonical())
	}
}

func TestFromTransducerRejects(t *testing.T) {
	// Recursive transducers are rejected.
	s := relation.NewSchema().MustDeclare("R1", 1)
	x := logic.Var("x")
	rec := pt.New("rec", s, "q0", "r")
	rec.DeclareTag("a", 1)
	rec.AddRule("q0", "r", pt.Item("q", "a", logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))))
	rec.AddRule("q", "a", pt.Item("q", "a", logic.MustQuery([]logic.Var{x}, nil, logic.R(pt.RegRel, x))))
	if _, err := FromTransducer(rec); err == nil {
		t.Error("recursive transducer must be rejected")
	}
}
