// Durability tests for the serve tier: with a WAL attached, an
// acknowledged mutation survives a restart (replay serves post-delta
// bytes), a crash before the fsync leaves the delta atomically absent,
// a crash after the fsync but before the ack keeps it (at-least-once),
// zombie epochs are fenced, and /replicate + /sync implement the
// dup-skip / gap-answer protocol.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"ptx/internal/runctl"
	"ptx/internal/wal"
)

// tinyMutate is the /mutate body toggling R(d) on tiny/tinydb.
func tinyMutate(op, val string) string {
	return fmt.Sprintf(`{"spec":"tiny","db":"tinydb","ops":[{"op":%q,"rel":"R","tuple":[%q]}]}`, op, val)
}

// newWALServer builds a tiny/tinydb server over a WAL rooted at dir.
func newWALServer(t *testing.T, dir string, opt wal.Options, cfg Config) (*Server, *httptest.Server, *wal.Log) {
	t.Helper()
	l, err := wal.Open(dir, opt)
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	reg := NewRegistry()
	if err := reg.RegisterSpec("tiny", tinySpec); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterDB("tinydb", tinyDB); err != nil {
		t.Fatal(err)
	}
	reg.AttachWAL(l)
	cfg.Registry = reg
	s, ts := newTestServer(t, cfg)
	t.Cleanup(func() { l.Close() })
	return s, ts, l
}

// TestMutateRestartServesPostDelta is the tentpole contract end to end:
// an acknowledged delta is on disk before the 200, so a server built
// from scratch over the same WAL directory serves post-delta bytes.
func TestMutateRestartServesPostDelta(t *testing.T) {
	dir := t.TempDir()
	_, ts, l := newWALServer(t, dir, wal.Options{}, Config{})
	resp, body := postJSON(t, http.DefaultClient, ts.URL+"/mutate", tinyMutate("insert", "d"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: status %d: %s", resp.StatusCode, body)
	}
	var mr mutateResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Seq != 1 {
		t.Fatalf("first delta committed at seq %d, want 1", mr.Seq)
	}
	want := goldenXML(t, tinySpec, tinyDB+"R(d)\n", false)
	status, _, got := post(t, ts, `{"spec":"tiny","db":"tinydb"}`)
	if status != http.StatusOK || string(got) != string(want) {
		t.Fatalf("pre-restart publish: status %d\n got %q\nwant %q", status, got, want)
	}
	// /healthz carries the durability counters.
	var hz struct {
		Metrics Metrics `json:"metrics"`
	}
	if code := getJSON(t, http.DefaultClient, ts.URL+"/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if hz.Metrics.Appended != 1 || hz.Metrics.Fsyncs < 1 {
		t.Fatalf("healthz durability counters = %+v, want appended=1, fsyncs>=1", hz.Metrics)
	}
	ts.Close()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a brand-new registry over the same directory.
	_, ts2, _ := newWALServer(t, dir, wal.Options{}, Config{})
	status, _, got = post(t, ts2, `{"spec":"tiny","db":"tinydb"}`)
	if status != http.StatusOK {
		t.Fatalf("post-restart publish: status %d: %s", status, got)
	}
	if string(got) != string(want) {
		t.Fatalf("restart lost the acknowledged delta:\n got %q\nwant %q", got, want)
	}
	var hz2 struct {
		Metrics Metrics `json:"metrics"`
	}
	if code := getJSON(t, http.DefaultClient, ts2.URL+"/healthz", &hz2); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if hz2.Metrics.Recovered != 1 {
		t.Fatalf("post-restart recovered = %d, want 1", hz2.Metrics.Recovered)
	}
}

// TestMutateCrashBeforeDurable covers the two pre-durability crash
// points: the client hears a typed 503 "storage", the delta is
// atomically absent both live and after a restart, and a retry
// succeeds once the fault clears.
func TestMutateCrashBeforeDurable(t *testing.T) {
	for _, op := range []runctl.Op{runctl.OpWALAppend, runctl.OpWALSync} {
		t.Run(string(op), func(t *testing.T) {
			dir := t.TempDir()
			plan := &runctl.FaultPlan{Op: op, N: 1, Err: fmt.Errorf("injected crash at %s", op)}
			_, ts, l := newWALServer(t, dir, wal.Options{Faults: plan}, Config{})
			resp, body := postJSON(t, http.DefaultClient, ts.URL+"/mutate", tinyMutate("insert", "d"))
			info := decodeError(t, resp.StatusCode, body)
			if resp.StatusCode != http.StatusServiceUnavailable || info.Kind != KindStorage {
				t.Fatalf("crashed mutate = (%d, %q), want (503, storage)", resp.StatusCode, info.Kind)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("storage rejection must advertise Retry-After")
			}
			// Atomically absent: live publish serves pre-delta bytes...
			want := goldenXML(t, tinySpec, tinyDB, false)
			status, _, got := post(t, ts, `{"spec":"tiny","db":"tinydb"}`)
			if status != http.StatusOK || string(got) != string(want) {
				t.Fatalf("publish after failed mutate: status %d\n got %q\nwant %q", status, got, want)
			}
			// ...and the retry commits at seq 1: nothing of the failed
			// attempt reached the log.
			resp, body = postJSON(t, http.DefaultClient, ts.URL+"/mutate", tinyMutate("insert", "d"))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("retry: status %d: %s", resp.StatusCode, body)
			}
			var mr mutateResponse
			if err := json.Unmarshal(body, &mr); err != nil {
				t.Fatal(err)
			}
			if mr.Seq != 1 {
				t.Fatalf("retry committed at seq %d, want 1 (failed attempt must not burn a seq)", mr.Seq)
			}
			ts.Close()
			l.Close()
			recs, _, err := wal.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 1 {
				t.Fatalf("WAL holds %d records, want exactly the retried one", len(recs))
			}
		})
	}
}

// TestMutateCrashAfterDurable is the at-least-once window: the ack is
// lost but the delta is durable and applied — the client's retry is a
// harmless duplicate under set semantics.
func TestMutateCrashAfterDurable(t *testing.T) {
	dir := t.TempDir()
	plan := &runctl.FaultPlan{Op: runctl.OpMutateAck, N: 1, Err: runctl.Transient(fmt.Errorf("injected crash before ack"))}
	_, ts, _ := newWALServer(t, dir, wal.Options{}, Config{MutateFaults: plan})
	resp, body := postJSON(t, http.DefaultClient, ts.URL+"/mutate", tinyMutate("insert", "d"))
	info := decodeError(t, resp.StatusCode, body)
	if resp.StatusCode != http.StatusServiceUnavailable || info.Kind != KindTransient {
		t.Fatalf("lost ack = (%d, %q), want (503, transient)", resp.StatusCode, info.Kind)
	}
	// The delta is live despite the lost ack.
	want := goldenXML(t, tinySpec, tinyDB+"R(d)\n", false)
	status, _, got := post(t, ts, `{"spec":"tiny","db":"tinydb"}`)
	if status != http.StatusOK || string(got) != string(want) {
		t.Fatalf("publish after lost ack: status %d\n got %q\nwant %q", status, got, want)
	}
	// The client's retry re-commits the same membership at seq 2.
	resp, body = postJSON(t, http.DefaultClient, ts.URL+"/mutate", tinyMutate("insert", "d"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry: status %d: %s", resp.StatusCode, body)
	}
	status, _, got = post(t, ts, `{"spec":"tiny","db":"tinydb"}`)
	if status != http.StatusOK || string(got) != string(want) {
		t.Fatalf("publish after retry: status %d\n got %q\nwant %q", status, got, want)
	}
}

// TestMutateZombieEpochFenced: a write carrying an epoch below the
// database's high-water mark is a dead owner's and bounces off with a
// typed 409 before any state changes.
func TestMutateZombieEpochFenced(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mutateAt := func(epoch uint64, val string) (*http.Response, []byte) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/mutate", strings.NewReader(tinyMutate("insert", val)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(HeaderEpoch, strconv.FormatUint(epoch, 10))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf strings.Builder
		dec := json.NewDecoder(resp.Body)
		var raw json.RawMessage
		_ = dec.Decode(&raw)
		buf.Write(raw)
		return resp, []byte(buf.String())
	}
	if resp, body := mutateAt(5, "d"); resp.StatusCode != http.StatusOK {
		t.Fatalf("epoch-5 mutate: status %d: %s", resp.StatusCode, body)
	}
	resp, body := mutateAt(3, "e")
	info := decodeError(t, resp.StatusCode, body)
	if resp.StatusCode != http.StatusConflict || info.Kind != KindConflict {
		t.Fatalf("zombie epoch = (%d, %q), want (409, conflict)", resp.StatusCode, info.Kind)
	}
	// The fenced write left no trace.
	want := goldenXML(t, tinySpec, tinyDB+"R(d)\n", false)
	status, _, got := post(t, ts, `{"spec":"tiny","db":"tinydb"}`)
	if status != http.StatusOK || string(got) != string(want) {
		t.Fatalf("publish after fenced write: status %d\n got %q\nwant %q", status, got, want)
	}
	// The same epoch keeps working — fencing is strictly-below.
	if resp, body := mutateAt(5, "f"); resp.StatusCode != http.StatusOK {
		t.Fatalf("same-epoch mutate: status %d: %s", resp.StatusCode, body)
	}
}

// TestReplicateProtocol pins the receiver's three answers: a fresh
// record applies, a duplicate is skipped without error, and a record
// past the high-water mark is a gap answered with the mark (HTTP 200 —
// the gap is the protocol working, not a failure).
func TestReplicateProtocol(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sendRec := func(seq uint64, val string) replicateResponse {
		t.Helper()
		body := fmt.Sprintf(`{"db":"tinydb","records":[{"seq":%d,"epoch":1,"ops":[{"op":"insert","rel":"R","tuple":[%q]}]}]}`, seq, val)
		resp, raw := postJSON(t, http.DefaultClient, ts.URL+"/replicate", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replicate seq %d: status %d: %s", seq, resp.StatusCode, raw)
		}
		var rr replicateResponse
		if err := json.Unmarshal(raw, &rr); err != nil {
			t.Fatal(err)
		}
		return rr
	}
	if rr := sendRec(1, "d"); rr.Applied != 1 || rr.Have != 1 || rr.Gap {
		t.Fatalf("fresh record: %+v, want applied=1 have=1", rr)
	}
	if rr := sendRec(1, "d"); rr.Applied != 0 || rr.Have != 1 || rr.Gap {
		t.Fatalf("duplicate record: %+v, want applied=0 have=1", rr)
	}
	if rr := sendRec(5, "z"); rr.Applied != 0 || rr.Have != 1 || !rr.Gap {
		t.Fatalf("gapped record: %+v, want gap=true have=1", rr)
	}
	// The replicated (not gapped) delta is serving.
	want := goldenXML(t, tinySpec, tinyDB+"R(d)\n", false)
	status, _, got := post(t, ts, `{"spec":"tiny","db":"tinydb"}`)
	if status != http.StatusOK || string(got) != string(want) {
		t.Fatalf("publish after replicate: status %d\n got %q\nwant %q", status, got, want)
	}
}

// TestSyncBidirectional: two servers diverge (each holds deltas the
// other lacks... except replication seq means divergence is a strict
// prefix relation — the behind node pulls the tail, then pushes back
// anything it alone holds). After /sync both serve identical bytes.
func TestSyncBidirectional(t *testing.T) {
	_, tsA := newTestServer(t, Config{})
	_, tsB := newTestServer(t, Config{})
	// A takes two mutations; B is empty.
	for _, val := range []string{"d", "e"} {
		resp, body := postJSON(t, http.DefaultClient, tsA.URL+"/mutate", tinyMutate("insert", val))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mutate A: status %d: %s", resp.StatusCode, body)
		}
	}
	// B syncs against A: pulls 2, pushes 0.
	resp, raw := postJSON(t, http.DefaultClient, tsB.URL+"/sync", fmt.Sprintf(`{"db":"tinydb","peer":%q}`, tsA.URL))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync: status %d: %s", resp.StatusCode, raw)
	}
	var sr syncResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Pulled != 2 || sr.Pushed != 0 || sr.Seq != 2 {
		t.Fatalf("sync = %+v, want pulled=2 pushed=0 seq=2", sr)
	}
	want := goldenXML(t, tinySpec, tinyDB+"R(d)\nR(e)\n", false)
	for name, ts := range map[string]*httptest.Server{"A": tsA, "B": tsB} {
		status, _, got := post(t, ts, `{"spec":"tiny","db":"tinydb"}`)
		if status != http.StatusOK || string(got) != string(want) {
			t.Fatalf("node %s diverged after sync: status %d\n got %q\nwant %q", name, status, got, want)
		}
	}
	// Now B takes a delta and A syncs: the push arm covers A.
	if resp, body := postJSON(t, http.DefaultClient, tsB.URL+"/mutate", tinyMutate("insert", "f")); resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate B: status %d: %s", resp.StatusCode, body)
	}
	resp, raw = postJSON(t, http.DefaultClient, tsB.URL+"/sync", fmt.Sprintf(`{"db":"tinydb","peer":%q}`, tsA.URL))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync 2: status %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Pulled != 0 || sr.Pushed != 1 {
		t.Fatalf("sync 2 = %+v, want pulled=0 pushed=1", sr)
	}
	want = goldenXML(t, tinySpec, tinyDB+"R(d)\nR(e)\nR(f)\n", false)
	for name, ts := range map[string]*httptest.Server{"A": tsA, "B": tsB} {
		status, _, got := post(t, ts, `{"spec":"tiny","db":"tinydb"}`)
		if status != http.StatusOK || string(got) != string(want) {
			t.Fatalf("node %s diverged after push sync: status %d\n got %q\nwant %q", name, status, got, want)
		}
	}
}

// TestMutateReplicasHeader: a mutation naming replicas is confirmed on
// every reachable one before the ack; an unreachable replica is
// reported in X-Ptserve-Replica-Failed, never silently dropped.
func TestMutateReplicasHeader(t *testing.T) {
	_, tsA := newTestServer(t, Config{})
	_, tsB := newTestServer(t, Config{})
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer dead.Close()

	// First attempt names a dead replica: the commit lands locally and
	// on the live replica, but the ack is WITHHELD — a 200 would let
	// this node die as the only holder of an "acknowledged" record.
	req, err := http.NewRequest(http.MethodPost, tsA.URL+"/mutate", strings.NewReader(tinyMutate("insert", "d")))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderReplicas, fmt.Sprintf("b=%s,x=%s", tsB.URL, dead.URL))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mutate with a dead replica: status %d, want 503: %s", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("untyped error body: %s", body)
	}
	if eb.Error.Kind != KindTransient {
		t.Fatalf("kind %q, want transient (retryable — the commit stands)", eb.Error.Kind)
	}
	if got := resp.Header.Get(HeaderReplicaFailed); got != "x" {
		t.Fatalf("%s = %q, want \"x\"", HeaderReplicaFailed, got)
	}
	// The live replica heard the delta even though the client heard no
	// ack — at-least-once, never at-most-once.
	want := goldenXML(t, tinySpec, tinyDB+"R(d)\n", false)
	status, _, got := post(t, tsB, `{"spec":"tiny","db":"tinydb"}`)
	if status != http.StatusOK || string(got) != string(want) {
		t.Fatalf("replica publish: status %d\n got %q\nwant %q", status, got, want)
	}

	// The retry drops the dead replica (the coordinator marked it down)
	// and is acked: the duplicate insert burns a fresh seq but changes
	// nothing, and every named replica confirms.
	req, err = http.NewRequest(http.MethodPost, tsA.URL+"/mutate", strings.NewReader(tinyMutate("insert", "d")))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderReplicas, "b="+tsB.URL)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mr mutateResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry mutate: status %d", resp.StatusCode)
	}
	if mr.Replicated != 1 {
		t.Fatalf("retry replicated = %d, want 1", mr.Replicated)
	}
	if got := resp.Header.Get(HeaderReplicaFailed); got != "" {
		t.Fatalf("retry %s = %q, want empty", HeaderReplicaFailed, got)
	}
	status, _, got = post(t, tsB, `{"spec":"tiny","db":"tinydb"}`)
	if status != http.StatusOK || string(got) != string(want) {
		t.Fatalf("post-retry replica publish: status %d\n got %q\nwant %q", status, got, want)
	}
}
