package serve

import (
	"context"
	"sync"

	"ptx/internal/pt"
	"ptx/internal/runctl"
)

// flightGroup deduplicates identical in-flight publish runs: while a
// (spec, db, options) run is executing, later arrivals for the same key
// wait for its result instead of repeating the work, so a thundering
// herd on one view costs one transformation. The shared value is the
// raw *pt.Result — serialization stays per-request (writers are
// read-only over the tree, and canonical-vs-XML rendering may differ
// between duplicates of one run).
//
// The leader executes under the SERVER's lifecycle context, not its own
// request's, so one impatient client disconnecting cannot poison the
// result for the followers; each waiter still honors its own deadline
// while waiting.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

type flight struct {
	done     chan struct{} // closed when the leader finishes
	res      *pt.Result
	attempts int
	resumed  bool
	err      error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// do runs fn for key, or waits for the in-flight execution of the same
// key. shared reports whether this caller was a follower. A follower
// whose ctx expires stops waiting with a typed *runctl.ErrCanceled; the
// leader's run is unaffected.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*pt.Result, int, bool, error)) (res *pt.Result, attempts int, resumed, shared bool, err error) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.res, f.attempts, f.resumed, true, f.err
		case <-ctx.Done():
			return nil, 0, false, true, &runctl.ErrCanceled{Cause: ctx.Err()}
		}
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.res, f.attempts, f.resumed, f.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.res, f.attempts, f.resumed, false, f.err
}
