package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"ptx/internal/wal"
)

// BenchmarkMutateDurability prices the durability guarantee on the full
// HTTP mutate path: fsync-per-append (the production contract), NoSync
// (survives process death, not power loss), and no WAL at all (the
// pre-durability baseline). The CI bench-wal job pins mut/s and p99-ms
// for each mode into BENCH_pr9.json — the fsync column is the cost of
// "no acknowledged delta is ever lost".
func BenchmarkMutateDurability(b *testing.B) {
	for _, mode := range []string{"fsync", "nosync", "nowal"} {
		b.Run(mode, func(b *testing.B) {
			reg := NewRegistry()
			if err := reg.LoadDir("../../examples/specs"); err != nil {
				b.Fatalf("loading example specs: %v", err)
			}
			if mode != "nowal" {
				l, err := wal.Open(b.TempDir(), wal.Options{NoSync: mode == "nosync"})
				if err != nil {
					b.Fatal(err)
				}
				defer l.Close()
				reg.AttachWAL(l)
			}
			s, err := New(Config{Registry: reg, Workers: 4, Queue: 16})
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			defer s.Close()
			client := ts.Client()

			latencies := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			wall := time.Now()
			for i := 0; i < b.N; i++ {
				body := fmt.Sprintf(
					`{"spec":"tau1","db":"registrar","ops":[{"op":"insert","rel":"course","tuple":["B%d","Bench","CS"]}]}`, i)
				start := time.Now()
				resp, err := client.Post(ts.URL+"/mutate", "application/json", bytes.NewReader([]byte(body)))
				if err != nil {
					b.Fatal(err)
				}
				var sink bytes.Buffer
				_, _ = sink.ReadFrom(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("mutate status %d: %s", resp.StatusCode, sink.Bytes())
				}
				latencies = append(latencies, time.Since(start))
			}
			elapsed := time.Since(wall)
			b.StopTimer()

			sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
			p99 := latencies[len(latencies)*99/100]
			b.ReportMetric(float64(len(latencies))/elapsed.Seconds(), "mut/s")
			b.ReportMetric(float64(p99.Microseconds())/1000, "p99-ms")
		})
	}
}
