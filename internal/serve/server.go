// Package serve is the long-lived publishing server over the
// transducer runner: it loads a registry of compiled specs and database
// sources and serves publish requests as streamed XML, with the
// robustness machinery of the runctl/supervise layers as its
// foundation rather than an afterthought.
//
// The request path is hardened end to end:
//
//   - untrusted input — request bodies are size-capped, JSON is parsed
//     strictly, spec/db sources go through the parser behind panic
//     containment, and every option is validated BEFORE any evaluation
//     work is admitted;
//   - admission control — a bounded worker pool with a capped wait
//     queue; when the queue is full the request is shed immediately
//     (HTTP 429), and a request whose deadline expires while waiting
//     leaves with HTTP 408: nothing is ever queued to death;
//   - typed failures — the runctl error taxonomy maps onto a stable
//     JSON error schema and HTTP status codes (see errors.go), so a
//     client can always distinguish "your spec is broken" from "the
//     server is busy" from "your document hit its budget";
//   - deduplication — identical in-flight (spec, db, options) requests
//     share one transducer run and its caches (singleflight.go), and
//     repeated runs of one (spec, db) pair share a query memo through
//     the registry;
//   - graceful drain — Drain stops admissions, lets in-flight runs
//     finish within a deadline, then cancels the stragglers so they
//     terminate with typed errors; /healthz and /readyz expose the
//     lifecycle to orchestrators.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ptx/internal/breaker"
	"ptx/internal/pt"
	"ptx/internal/relation"
	"ptx/internal/runctl"
	"ptx/internal/supervise"
)

// Config parameterizes a Server. The zero value of every field selects
// a production-sane default.
type Config struct {
	// Registry supplies specs and databases; required.
	Registry *Registry

	// Workers bounds concurrently executing publish runs (default 4).
	Workers int
	// Queue bounds requests waiting for a worker; beyond it requests
	// are shed immediately (default 16; 0 is a valid "never wait").
	Queue int

	// MaxBodyBytes caps the request body (default 1 MiB).
	MaxBodyBytes int64
	// DefaultTimeout applies when a request sets no timeout (default
	// 10s); MaxTimeout clamps what a request may ask for (default 60s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// DefaultMaxNodes is the node budget when a request sets none
	// (default 1e6). A request passes max_nodes: -1 for unlimited.
	DefaultMaxNodes int
	// MaxRetries clamps per-request supervised retries (default 5).
	MaxRetries int
	// MaxRunWorkers clamps per-request parallel expansion workers
	// (default 4).
	MaxRunWorkers int

	// DrainGrace is how long Drain waits for canceled stragglers after
	// the drain deadline has expired (default 2s).
	DrainGrace time.Duration

	// CheckpointDir, when set, makes failed supervised runs persist
	// their last checkpoint there (the drain protocol's "finish or
	// checkpoint": a run canceled by shutdown leaves a resumable
	// snapshot). Empty disables.
	CheckpointDir string

	// NodeID names this node in a cluster; it is echoed on every
	// response as X-Ptserve-Node so a coordinator's failover decisions
	// are observable end to end. Empty outside a cluster.
	NodeID string

	// Store, when set, enables cross-node checkpoint handoff: requests
	// carrying an X-Ptx-Run-Key header run supervised with periodic
	// fenced checkpoints into the store, resume from a predecessor's
	// snapshot when one exists, and leave their own snapshot behind on
	// failure so the NEXT owner can pick the run up. Nil disables.
	Store supervise.CheckpointStore

	// CheckpointEvery is the step interval between periodic store
	// checkpoints for handoff-eligible runs (default 64). Smaller means
	// less lost work on a hard kill, at more snapshot cost.
	CheckpointEvery int64

	// AllowInject enables the "inject" request field — seeded fault
	// injection for chaos tests. Never enable in production.
	AllowInject bool

	// MutateFaults injects crash points on the mutation path (tests
	// only): runctl.OpMutateAck fires after the delta is durable and
	// applied but before the 200 reaches the client — the post-fsync,
	// pre-ack crash. The WAL's own Options.Faults covers the pre-fsync
	// points. Never set in production.
	MutateFaults *runctl.FaultPlan

	// ReplicateClient issues synchronous replication and sync requests
	// to ring successors (default: a dedicated client with a 5s
	// timeout — a dead successor must delay an ack, not hang it).
	ReplicateClient *http.Client

	// ReplicaBreaker parameterizes the per-replica circuit breakers on
	// the replication push path: a replica that keeps failing is
	// fail-fasted (still withholding the ack) instead of charging every
	// mutation a full replication timeout. Zero value = defaults.
	ReplicaBreaker breaker.Config
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Queue < 0 {
		c.Queue = 0
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.DefaultMaxNodes == 0 {
		c.DefaultMaxNodes = 1_000_000
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 5
	}
	if c.MaxRunWorkers <= 0 {
		c.MaxRunWorkers = 4
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 2 * time.Second
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 64
	}
	if c.ReplicateClient == nil {
		c.ReplicateClient = &http.Client{Timeout: 5 * time.Second}
	}
	return c
}

// Metrics is a point-in-time snapshot of the server's counters.
type Metrics struct {
	Admitted  int64 `json:"admitted"`
	Shed      int64 `json:"shed"`
	Rejected  int64 `json:"rejected"` // validation and draining rejections
	Succeeded int64 `json:"succeeded"`
	Failed    int64 `json:"failed"` // admitted runs that ended in a typed error
	Deduped   int64 `json:"deduped"`
	Resumed   int64 `json:"resumed"`  // handoff runs resumed from a store checkpoint
	Fenced    int64 `json:"fenced"`   // checkpoint writes rejected by the ownership fence
	Warmed    int64 `json:"warmed"`   // (spec, db) pairs primed via /warm
	Mutated   int64 `json:"mutated"`  // deltas accepted by /mutate
	Repaired  int64 `json:"repaired"` // successful live-view repairs
	Watched   int64 `json:"watched"`  // /watch requests served (poll + SSE)

	// Durability counters (zero without an attached WAL): Appended and
	// Fsyncs come from the write-ahead log, Recovered is how many
	// records startup replay restored, Replicated counts records this
	// node accepted from peers over /replicate or pushed during /sync.
	Appended   int64 `json:"appended"`
	Fsyncs     int64 `json:"fsyncs"`
	Recovered  int64 `json:"recovered"`
	Replicated int64 `json:"replicated"`

	// Replica circuit-breaker observables: total open transitions and
	// the replicas currently open or half-open.
	BreakerOpens int64    `json:"breaker_opens"`
	BreakerOpen  []string `json:"breaker_open,omitempty"`

	InFlight int `json:"in_flight"`
	Queued   int `json:"queued"`
}

// Server is the hardened concurrent publishing service. Create with
// New, mount Handler on an http.Server, and call Drain on shutdown.
type Server struct {
	cfg     Config
	reg     *Registry
	adm     *Admission
	flights *flightGroup

	// baseCtx is the lifecycle context publish runs execute under —
	// detached from any single request, canceled to abort stragglers
	// at the end of a drain.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// repBreakers holds one circuit breaker per replica id; the
	// replication push path (replicateOut) feeds and respects them.
	repBreakers *breaker.Set

	// liveMu serializes mutations and live-view creation; views maps
	// spec\x00db to the live view serving its change feed (mutate.go).
	liveMu sync.Mutex
	views  map[string]*liveView

	admitted   atomic.Int64
	shed       atomic.Int64
	rejected   atomic.Int64
	succeeded  atomic.Int64
	failed     atomic.Int64
	deduped    atomic.Int64
	resumed    atomic.Int64
	fenced     atomic.Int64
	warmed     atomic.Int64
	mutated    atomic.Int64
	repaired   atomic.Int64
	watched    atomic.Int64
	replicated atomic.Int64
}

// New builds a server from cfg (cfg.Registry is required).
func New(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, Validationf("config", "nil registry")
	}
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:         cfg,
		reg:         cfg.Registry,
		adm:         NewAdmission(cfg.Workers, cfg.Queue),
		flights:     newFlightGroup(),
		views:       make(map[string]*liveView),
		baseCtx:     ctx,
		baseCancel:  cancel,
		repBreakers: breaker.NewSet(cfg.ReplicaBreaker),
	}, nil
}

// Handler returns the server's routes: POST /publish, POST /mutate,
// POST /warm, GET /watch, GET /healthz, GET /readyz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/publish", s.handlePublish)
	mux.HandleFunc("/mutate", s.handleMutate)
	mux.HandleFunc("/replicate", s.handleReplicate)
	mux.HandleFunc("/deltalog", s.handleDeltaLog)
	mux.HandleFunc("/sync", s.handleSync)
	mux.HandleFunc("/watch", s.handleWatch)
	mux.HandleFunc("/warm", s.handleWarm)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	// Callers that buffer responses (the coordinator) ask for the
	// body-integrity trailer via HeaderWantSum; everyone else pays
	// nothing.
	return sumResponses(mux)
}

// Metrics snapshots the counters.
func (s *Server) Metrics() Metrics {
	wm := s.reg.WALMetrics()
	return Metrics{
		Admitted:  s.admitted.Load(),
		Shed:      s.shed.Load(),
		Rejected:  s.rejected.Load(),
		Succeeded: s.succeeded.Load(),
		Failed:    s.failed.Load(),
		Deduped:   s.deduped.Load(),
		Resumed:   s.resumed.Load(),
		Fenced:    s.fenced.Load(),
		Warmed:    s.warmed.Load(),
		Mutated:   s.mutated.Load(),
		Repaired:  s.repaired.Load(),
		Watched:   s.watched.Load(),
		Appended:  wm.Appended,
		Fsyncs:    wm.Fsyncs,
		Recovered: wm.Recovered,

		Replicated:   s.replicated.Load(),
		BreakerOpens: s.repBreakers.Opens(),
		BreakerOpen:  s.repBreakers.OpenPeers(),
		InFlight:     s.adm.Active(),
		Queued:       s.adm.Waiting(),
	}
}

// Drain gracefully shuts the server down: admissions stop (queued
// waiters leave with ErrDraining, /readyz flips to 503), in-flight runs
// get until ctx's deadline to finish, and any stragglers are then
// canceled — they terminate with typed errors (and, with CheckpointDir
// set and supervision on, a resumable checkpoint) within DrainGrace.
// Drain returns nil for a clean shutdown, including the forced-cancel
// path; it errors only if work survived cancellation.
func (s *Server) Drain(ctx context.Context) error {
	if err := s.adm.Drain(ctx); err == nil {
		s.baseCancel()
		return nil
	}
	// Deadline expired with runs still in flight: cancel them and give
	// the typed-error unwind a bounded grace period.
	s.baseCancel()
	grace, cancel := context.WithTimeout(context.Background(), s.cfg.DrainGrace)
	defer cancel()
	if err := s.adm.Drain(grace); err != nil {
		return fmt.Errorf("serve: drain: %d runs survived cancellation: %w", s.adm.Active(), err)
	}
	return nil
}

// Close releases the server's lifecycle resources without draining
// (tests; production should Drain).
func (s *Server) Close() { s.baseCancel() }

// publishRequest is the wire schema of POST /publish. Unknown fields
// are rejected — silently ignoring a misspelled option would admit
// work the client did not mean to pay for.
type publishRequest struct {
	Spec      string         `json:"spec"`
	DB        string         `json:"db"`
	Canonical bool           `json:"canonical,omitempty"`
	Cache     string         `json:"cache,omitempty"`
	Workers   int            `json:"workers,omitempty"`
	Retries   int            `json:"retries,omitempty"`
	Limits    limitsRequest  `json:"limits,omitempty"`
	Inject    *injectRequest `json:"inject,omitempty"`
}

type limitsRequest struct {
	TimeoutMS  int64 `json:"timeout_ms,omitempty"`
	MaxNodes   int   `json:"max_nodes,omitempty"`
	MaxDepth   int   `json:"max_depth,omitempty"`
	MaxQueries int   `json:"max_queries,omitempty"`
}

// injectRequest is the chaos-test fault schedule: each listed op fails
// with its probability, drawn from a PRNG seeded with Seed, injecting a
// transient error (see runctl.SeededPlan). Only honored when
// Config.AllowInject is set.
type injectRequest struct {
	Seed  int64              `json:"seed"`
	Probs map[string]float64 `json:"probs"`
}

// admitted bundles everything validation produced for one request.
type admitted struct {
	req     publishRequest
	opts    pt.Options
	limits  runctl.Limits
	retries int
	key     string

	// runKey/epoch are the cluster handoff coordinates (the
	// X-Ptx-Run-Key and X-Ptx-Epoch headers): the shared-store key this
	// run checkpoints under and the ownership epoch its writes carry.
	// Zero values outside a cluster.
	runKey string
	epoch  uint64
}

// Handoff protocol headers. The coordinator stamps both on every
// routed request; a server with a Store honors them, anyone else
// ignores them.
const (
	HeaderRunKey = "X-Ptx-Run-Key"
	HeaderEpoch  = "X-Ptx-Epoch"
)

// validate turns the wire request into run options, or a typed
// *ValidationError. No evaluation work happens here.
func (s *Server) validate(req publishRequest) (*admitted, error) {
	if req.Spec == "" {
		return nil, Validationf("spec", "missing")
	}
	if req.DB == "" {
		return nil, Validationf("db", "missing")
	}
	cacheMode := pt.CacheQueries // server default: share warm results
	if req.Cache != "" {
		m, err := pt.ParseCacheMode(req.Cache)
		if err != nil {
			return nil, Validationf("cache", "%v", err)
		}
		cacheMode = m
	}
	if req.Workers < 0 {
		return nil, Validationf("workers", "negative")
	}
	workers := min(req.Workers, s.cfg.MaxRunWorkers)
	if req.Retries < 0 {
		return nil, Validationf("retries", "negative")
	}
	retries := min(req.Retries, s.cfg.MaxRetries)

	l := req.Limits
	if l.TimeoutMS < 0 || l.MaxDepth < 0 || l.MaxQueries < 0 || l.MaxNodes < -1 {
		return nil, Validationf("limits", "negative budget")
	}
	timeout := s.cfg.DefaultTimeout
	if l.TimeoutMS > 0 {
		timeout = min(time.Duration(l.TimeoutMS)*time.Millisecond, s.cfg.MaxTimeout)
	}
	maxNodes := l.MaxNodes
	switch {
	case maxNodes == 0:
		maxNodes = s.cfg.DefaultMaxNodes
	case maxNodes == -1:
		maxNodes = 0 // explicit "unlimited"
	}
	limits := runctl.Limits{
		Timeout:    timeout,
		MaxNodes:   maxNodes,
		MaxDepth:   l.MaxDepth,
		MaxQueries: l.MaxQueries,
	}

	var faults *runctl.FaultPlan
	injectKey := ""
	if req.Inject != nil {
		if !s.cfg.AllowInject {
			return nil, Validationf("inject", "fault injection is disabled on this server")
		}
		probs := make(map[runctl.Op]float64, len(req.Inject.Probs))
		names := make([]string, 0, len(req.Inject.Probs))
		for name, p := range req.Inject.Probs {
			op := runctl.Op(name)
			known := false
			for _, k := range runctl.Ops() {
				if op == k {
					known = true
				}
			}
			if !known {
				return nil, Validationf("inject", "unknown op %q", name)
			}
			if p < 0 || p > 1 {
				return nil, Validationf("inject", "probability for %q outside [0,1]", name)
			}
			probs[op] = p
			names = append(names, name)
		}
		sort.Strings(names)
		for _, n := range names {
			injectKey += fmt.Sprintf("%s=%g;", n, probs[runctl.Op(n)])
		}
		injectKey = fmt.Sprintf("seed=%d;%s", req.Inject.Seed, injectKey)
		faults = runctl.SeededPlan(req.Inject.Seed,
			runctl.Transient(fmt.Errorf("injected fault (seed %d)", req.Inject.Seed)), probs)
	}

	opts := pt.Options{
		Workers: workers,
		Limits:  &limits,
		Cache:   cacheMode,
		Faults:  faults,
	}
	// The dedup key covers every run-relevant option — canonical-vs-XML
	// rendering is per-request and deliberately excluded.
	key := fmt.Sprintf("%s\x00%s\x00c=%d;w=%d;r=%d;t=%d;n=%d;d=%d;q=%d;i=%s",
		req.Spec, req.DB, cacheMode, workers, retries,
		limits.Timeout, limits.MaxNodes, limits.MaxDepth, limits.MaxQueries, injectKey)
	return &admitted{req: req, opts: opts, limits: limits, retries: retries, key: key}, nil
}

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	if s.cfg.NodeID != "" {
		w.Header().Set("X-Ptserve-Node", s.cfg.NodeID)
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.adm.Draining() {
		s.rejected.Add(1)
		WriteError(w, ErrDraining)
		return
	}

	// Untrusted input path: size cap, strict JSON, full validation —
	// all before any admission or evaluation work.
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req publishRequest
	if err := dec.Decode(&req); err != nil {
		s.rejected.Add(1)
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			WriteError(w, mbe)
			return
		}
		WriteError(w, Validationf("body", "%v", err))
		return
	}
	// Deadline propagation: an upstream hop's remaining budget clamps
	// this run's wall clock DOWN (never up), and it must land before
	// validate — the dedup key bakes in the effective timeout, so two
	// requests with different budgets are different flights.
	if budget, ok, derr := ParseDeadline(r.Header); derr != nil {
		s.rejected.Add(1)
		WriteError(w, derr)
		return
	} else if ok {
		ms := int64(budget / time.Millisecond)
		if ms < 1 {
			ms = 1
		}
		cur := req.Limits.TimeoutMS
		if cur == 0 {
			cur = int64(s.cfg.DefaultTimeout / time.Millisecond)
		}
		if ms < cur {
			req.Limits.TimeoutMS = ms
		}
	}
	adm, err := s.validate(req)
	if err != nil {
		s.rejected.Add(1)
		WriteError(w, err)
		return
	}
	// Handoff coordinates: honored only when this node has a store; a
	// standalone server ignores them rather than promising checkpoint
	// durability it cannot deliver.
	if s.cfg.Store != nil {
		adm.runKey = r.Header.Get(HeaderRunKey)
		if e := r.Header.Get(HeaderEpoch); adm.runKey != "" && e != "" {
			epoch, perr := strconv.ParseUint(e, 10, 64)
			if perr != nil {
				s.rejected.Add(1)
				WriteError(w, Validationf("epoch", "malformed %s header %q", HeaderEpoch, e))
				return
			}
			adm.epoch = epoch
		}
		if adm.runKey != "" {
			// Epoch-scoped dedup: a flight fenced under an old epoch must
			// not hand its failure to a request routed under a newer one.
			adm.key += fmt.Sprintf("\x00rk=%s;ep=%d", adm.runKey, adm.epoch)
		}
	}
	tr, inst, memo, err := s.reg.Pair(req.Spec, req.DB)
	if err != nil {
		s.rejected.Add(1)
		WriteError(w, err)
		return
	}
	if adm.opts.Cache >= pt.CacheQueries && adm.opts.Faults == nil && adm.retries == 0 && adm.runKey == "" {
		// Warm-path sharing: the registry's per-(spec,db) memo. Faulted,
		// supervised and handoff runs keep private memos — supervision's
		// degradation ladder assumes it owns its caches.
		adm.opts.Memo = memo
	}

	// The request's wall clock starts now and covers queue time: a
	// request that would begin evaluation after its deadline is
	// rejected while waiting, never run.
	reqCtx, cancelReq := context.WithTimeout(r.Context(), adm.limits.Timeout)
	defer cancelReq()

	release, err := s.adm.Acquire(reqCtx)
	if err != nil {
		var oe *ErrOverloaded
		switch {
		case errors.As(err, &oe):
			s.shed.Add(1)
		case errors.Is(err, ErrDraining):
			s.rejected.Add(1)
		default:
			s.rejected.Add(1)
		}
		WriteError(w, err)
		return
	}
	defer release()
	s.admitted.Add(1)

	res, attempts, resumed, shared, err := s.flights.do(reqCtx, adm.key, func() (*pt.Result, int, bool, error) {
		return s.execute(tr, inst, adm)
	})
	if shared {
		s.deduped.Add(1)
	}
	if err != nil {
		s.failed.Add(1)
		WriteError(w, err)
		return
	}
	s.succeeded.Add(1)

	h := w.Header()
	h.Set("Content-Type", "application/xml; charset=utf-8")
	h.Set("X-Ptserve-Attempts", strconv.Itoa(attempts))
	h.Set("X-Ptserve-Shared", strconv.FormatBool(shared))
	if adm.runKey != "" {
		h.Set("X-Ptserve-Resumed", strconv.FormatBool(resumed))
	}
	h.Set("X-Ptserve-Nodes", strconv.Itoa(res.Stats.Nodes))
	h.Set("X-Ptserve-Queries", strconv.Itoa(res.Stats.QueriesRun))
	h.Set("X-Ptserve-Cache", res.Stats.CacheMode.String())
	// Stream straight from ξ (possibly a shared DAG): the writers
	// splice virtual tags at emission and never materialize the
	// unfolding. A write failure here means the client went away; the
	// status line is already committed, so just stop.
	if adm.req.Canonical {
		if werr := res.Xi.WriteCanonicalVirtual(w, tr.Virtual); werr == nil {
			_, _ = io.WriteString(w, "\n")
		}
	} else {
		_ = res.Xi.WriteXMLVirtual(w, tr.Virtual)
	}
}

// execute runs one admitted publish under the server's lifecycle
// context — detached from the leader's own request so a client
// disconnect cannot poison the shared result. Supervised runs (retries
// requested) classify transient failures, retry with fresh budgets, and
// leave a checkpoint file when CheckpointDir is set. Handoff runs
// (runKey set, Store configured) take the clustered path instead.
func (s *Server) execute(tr *pt.Transducer, inst *relation.Instance, adm *admitted) (*pt.Result, int, bool, error) {
	if adm.runKey != "" && s.cfg.Store != nil {
		return s.executeHandoff(tr, inst, adm)
	}
	if adm.retries == 0 {
		res, err := tr.RunContext(s.baseCtx, inst, adm.opts)
		return res, 1, false, err
	}
	sopts := supervise.Options{
		Run:        adm.opts,
		Retries:    adm.retries,
		Backoff:    supervise.Backoff{Base: 2 * time.Millisecond, Max: 250 * time.Millisecond},
		Checkpoint: s.cfg.CheckpointDir != "",
	}
	res, rep, err := supervise.Run(s.baseCtx, tr, inst, sopts)
	attempts := 1
	if rep != nil {
		attempts = rep.Attempts
	}
	if err != nil && s.cfg.CheckpointDir != "" && rep != nil && rep.Snapshot != nil {
		s.saveCheckpoint(rep.Snapshot)
	}
	return res, attempts, false, err
}

// executeHandoff is the clustered publish path: the run checkpoints
// into the shared store under adm.runKey with every write fenced by
// adm.epoch, resumes a predecessor's snapshot when one exists, deletes
// the entry on success, and leaves its own last checkpoint behind on
// failure so the run's NEXT owner picks up where this one stopped.
func (s *Server) executeHandoff(tr *pt.Transducer, inst *relation.Instance, adm *admitted) (*pt.Result, int, bool, error) {
	// A predecessor stored at a HIGHER epoch means this request was
	// routed with stale ownership — a successor is already past us.
	// Refuse before doing any work; the coordinator re-routes.
	snap, storedEpoch, err := s.cfg.Store.Load(adm.runKey)
	switch {
	case err != nil:
		// A corrupt entry is never resumed from — and never trusted
		// again. Start fresh; our first fenced Save overwrites it.
		snap = nil
	case snap != nil && storedEpoch > adm.epoch:
		s.fenced.Add(1)
		return nil, 0, false, &supervise.ErrFenced{Key: adm.runKey, Epoch: adm.epoch, Stored: storedEpoch}
	case snap != nil:
		if snap.Verify(tr, inst) != nil {
			// Snapshot from a different (spec, db) under a colliding key:
			// resuming it would splice someone else's tree into ours.
			snap = nil
		}
	}

	sopts := supervise.Options{
		Run:             adm.opts,
		Retries:         adm.retries,
		Backoff:         supervise.Backoff{Base: 2 * time.Millisecond, Max: 250 * time.Millisecond},
		Checkpoint:      true,
		CheckpointEvery: s.cfg.CheckpointEvery,
		OnCheckpoint: func(ck *supervise.Snapshot) error {
			err := s.cfg.Store.Save(adm.runKey, adm.epoch, ck)
			var fe *supervise.ErrFenced
			if errors.As(err, &fe) {
				// Ownership moved while we ran: abort — a successor is
				// already making progress and our result is unwanted.
				s.fenced.Add(1)
				return fe
			}
			// Other store failures (disk pressure, transient I/O) are
			// best-effort: the run keeps going, durability degrades.
			return nil
		},
	}

	var res *pt.Result
	var rep *supervise.Report
	if snap != nil {
		res, rep, err = supervise.Resume(s.baseCtx, tr, inst, snap, sopts)
	} else {
		res, rep, err = supervise.Run(s.baseCtx, tr, inst, sopts)
	}
	resumed := snap != nil
	if resumed {
		s.resumed.Add(1)
	}
	attempts := 1
	if rep != nil {
		attempts = rep.Attempts
	}
	if err == nil {
		_ = s.cfg.Store.Delete(adm.runKey)
		return res, attempts, resumed, nil
	}
	if rep != nil && rep.Snapshot != nil {
		// The failure-time frontier is exactly the remaining work; leave
		// it for the next owner (fenced — a successor may already have
		// written past us, in which case theirs wins).
		_ = s.cfg.Store.Save(adm.runKey, adm.epoch, rep.Snapshot)
	}
	return nil, attempts, resumed, err
}

// warmRequest is the wire schema of POST /warm: the coordinator's
// rebalance hint listing (spec, db) pairs the receiving node is about
// to own, so their compiled specs and databases are resident before the
// first routed request lands.
type warmRequest struct {
	Pairs [][2]string `json:"pairs"`
}

// handleWarm primes the registry's per-(spec,db) state. Unknown pairs
// are skipped, not errors: a hint can outlive a registry change, and a
// stale hint must never fail a rebalance.
func (s *Server) handleWarm(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req warmRequest
	if err := dec.Decode(&req); err != nil {
		WriteError(w, Validationf("body", "%v", err))
		return
	}
	n := 0
	for _, p := range req.Pairs {
		if _, _, _, err := s.reg.Pair(p[0], p[1]); err == nil {
			n++
		}
	}
	s.warmed.Add(int64(n))
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Warmed int `json:"warmed"`
	}{n})
}

// saveCheckpoint persists a failed supervised run's snapshot; errors
// are swallowed (checkpointing is best-effort salvage, never a reason
// to turn a typed run error into an I/O error).
func (s *Server) saveCheckpoint(snap *supervise.Snapshot) {
	f, err := os.CreateTemp(s.cfg.CheckpointDir, "ptserve-*.checkpoint")
	if err != nil {
		return
	}
	if err := snap.Encode(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return
	}
	_ = f.Close()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Status   string  `json:"status"`
		Draining bool    `json:"draining"`
		Metrics  Metrics `json:"metrics"`
	}{"ok", s.adm.Draining(), s.Metrics()})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.adm.Draining() {
		WriteError(w, ErrDraining)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = io.WriteString(w, `{"status":"ready"}`+"\n")
}
