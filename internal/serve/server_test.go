package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ptx/internal/pt"
	"ptx/internal/runctl"
	"ptx/internal/supervise"
	"ptx/internal/testutil"
	"ptx/internal/wal"
)

func TestPublishGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, canonical := range []bool{false, true} {
		want := goldenXML(t, tinySpec, tinyDB, canonical)
		status, hdr, body := post(t, ts, fmt.Sprintf(`{"spec":"tiny","db":"tinydb","canonical":%v}`, canonical))
		if status != http.StatusOK {
			t.Fatalf("canonical=%v: status %d: %s", canonical, status, body)
		}
		if !bytes.Equal(body, want) {
			t.Fatalf("canonical=%v: served bytes differ from direct run:\n got %q\nwant %q", canonical, body, want)
		}
		if hdr.Get("X-Ptserve-Nodes") == "" || hdr.Get("X-Ptserve-Attempts") != "1" {
			t.Fatalf("canonical=%v: missing stats headers: %v", canonical, hdr)
		}
	}
}

// TestPublishSharedMemo: the second identical request must answer from
// the pair's shared memo — zero fresh query evaluations.
func TestPublishSharedMemo(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"spec":"tiny","db":"tinydb"}`
	status, _, body := post(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("warmup: %d %s", status, body)
	}
	status, hdr, body := post(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("second run: %d %s", status, body)
	}
	if got := hdr.Get("X-Ptserve-Queries"); got != "0" {
		t.Fatalf("second identical publish ran %s queries, want 0 (shared memo)", got)
	}
}

func TestPublishValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{AllowInject: false})
	cases := []struct {
		name, body, wantKind, wantMsg string
	}{
		{"not json", `{`, KindValidation, "body"},
		{"unknown field", `{"spec":"tiny","db":"tinydb","bogus":1}`, KindValidation, "bogus"},
		{"missing spec", `{"db":"tinydb"}`, KindValidation, "spec"},
		{"missing db", `{"spec":"tiny"}`, KindValidation, "db"},
		{"unknown spec", `{"spec":"nope","db":"tinydb"}`, KindValidation, `unknown spec "nope"`},
		{"unknown db", `{"spec":"tiny","db":"nope"}`, KindValidation, `unknown database "nope"`},
		{"bad cache mode", `{"spec":"tiny","db":"tinydb","cache":"warp"}`, KindValidation, "cache"},
		{"negative workers", `{"spec":"tiny","db":"tinydb","workers":-1}`, KindValidation, "workers"},
		{"negative retries", `{"spec":"tiny","db":"tinydb","retries":-2}`, KindValidation, "retries"},
		{"negative budget", `{"spec":"tiny","db":"tinydb","limits":{"max_depth":-1}}`, KindValidation, "budget"},
		{"inject disabled", `{"spec":"tiny","db":"tinydb","inject":{"seed":1,"probs":{"query":1}}}`, KindValidation, "inject"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, body := post(t, ts, tc.body)
			info := decodeError(t, status, body)
			if info.Kind != tc.wantKind {
				t.Fatalf("kind %q, want %q (%s)", info.Kind, tc.wantKind, body)
			}
			if !strings.Contains(info.Message, tc.wantMsg) {
				t.Fatalf("message %q does not mention %q", info.Message, tc.wantMsg)
			}
		})
	}

	t.Run("inject bad op", func(t *testing.T) {
		_, ts := newTestServer(t, Config{AllowInject: true})
		status, _, body := post(t, ts, `{"spec":"tiny","db":"tinydb","inject":{"seed":1,"probs":{"warp":1}}}`)
		info := decodeError(t, status, body)
		if info.Kind != KindValidation || !strings.Contains(info.Message, "warp") {
			t.Fatalf("bad inject op: %s", body)
		}
	})
	t.Run("method not allowed", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/publish")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /publish = %d", resp.StatusCode)
		}
	})
}

func TestPublishBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 64})
	status, _, body := post(t, ts, `{"spec":"tiny","db":"tinydb","cache":"`+strings.Repeat("x", 200)+`"}`)
	info := decodeError(t, status, body)
	if info.Kind != KindTooLarge {
		t.Fatalf("kind %q, want %q", info.Kind, KindTooLarge)
	}
}

func TestPublishBudget(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, _, body := post(t, ts, `{"spec":"tiny","db":"tinydb","limits":{"max_nodes":2}}`)
	info := decodeError(t, status, body)
	if info.Kind != KindBudget {
		t.Fatalf("kind %q, want %q (%s)", info.Kind, KindBudget, body)
	}
	if info.Budget == nil || info.Budget.Resource != "nodes" || info.Budget.Limit != 2 {
		t.Fatalf("budget detail missing or wrong: %s", body)
	}
}

func TestPublishInjectedTransient(t *testing.T) {
	_, ts := newTestServer(t, Config{AllowInject: true})
	// p=1 on queries: every attempt fails with a transient fault.
	status, _, body := post(t, ts, `{"spec":"tiny","db":"tinydb","inject":{"seed":7,"probs":{"query":1}}}`)
	info := decodeError(t, status, body)
	if info.Kind != KindTransient {
		t.Fatalf("kind %q, want %q (%s)", info.Kind, KindTransient, body)
	}

	// With retries the same fault plan still fires every attempt (the
	// supervised path replays the plan), so the typed error must
	// survive the retry ladder rather than degrade to internal.
	status, _, body = post(t, ts, `{"spec":"tiny","db":"tinydb","retries":2,"inject":{"seed":7,"probs":{"query":1}}}`)
	info = decodeError(t, status, body)
	if info.Kind != KindTransient {
		t.Fatalf("supervised kind %q, want %q (%s)", info.Kind, KindTransient, body)
	}
}

// TestPublishRetrySucceeds: an Nth-op fault consumed on the first
// attempt succeeds on retry with byte-identical output.
func TestPublishRetrySucceeds(t *testing.T) {
	// SeededPlan with a mid probability either fires or not per (seed,
	// op-count) — scan a few seeds for one that fails attempt 1 but has
	// a low enough rate that a retry can pass. Deterministic given the
	// seed, so once found the test is stable; assert the two-sided
	// contract instead of a fixed seed's fate.
	_, ts := newTestServer(t, Config{AllowInject: true})
	want := goldenXML(t, tinySpec, tinyDB, false)
	sawRetrySuccess := false
	for seed := int64(0); seed < 30 && !sawRetrySuccess; seed++ {
		req := fmt.Sprintf(`{"spec":"tiny","db":"tinydb","retries":4,"inject":{"seed":%d,"probs":{"query":0.3}}}`, seed)
		status, hdr, body := post(t, ts, req)
		switch status {
		case http.StatusOK:
			if !bytes.Equal(body, want) {
				t.Fatalf("seed %d: retried output differs from golden", seed)
			}
			if hdr.Get("X-Ptserve-Attempts") > "1" {
				sawRetrySuccess = true
			}
		default:
			info := decodeError(t, status, body)
			if info.Kind != KindTransient {
				t.Fatalf("seed %d: kind %q, want transient", seed, info.Kind)
			}
		}
	}
	if !sawRetrySuccess {
		t.Fatal("no seed in [0,30) recovered via retry; distribution looks wrong")
	}
}

func TestPublishOverloadAndQueueDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Queue: 1})

	// Occupy the only worker directly so the HTTP path is deterministic.
	release, err := s.adm.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// First extra request waits in the queue until its (tiny) deadline
	// expires → 408 canceled, never run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		status, _, body := post(t, ts, `{"spec":"tiny","db":"tinydb","limits":{"timeout_ms":30}}`)
		info := decodeError(t, status, body)
		if info.Kind != KindCanceled {
			t.Errorf("queued-past-deadline kind %q, want %q (%s)", info.Kind, KindCanceled, body)
		}
	}()
	for s.adm.Waiting() == 0 {
		runtime.Gosched()
	}

	// Queue now full: the next request is shed immediately with 429.
	start := time.Now()
	status, hdr, body := post(t, ts, `{"spec":"tiny","db":"tinydb"}`)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("shedding took %v; must be immediate", elapsed)
	}
	info := decodeError(t, status, body)
	if info.Kind != KindOverloaded {
		t.Fatalf("kind %q, want %q (%s)", info.Kind, KindOverloaded, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	<-done
	release()
}

func TestDrainProtocol(t *testing.T) {
	base := runtime.NumGoroutine()
	s, ts := newTestServer(t, Config{Workers: 2, Queue: 2, DrainGrace: time.Second})

	// Before drain: ready.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain = %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("idle drain: %v", err)
	}

	// After drain: not ready, publishes refused with the draining kind,
	// healthz still answers (orchestrators need it to watch the drain).
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain = %d", resp.StatusCode)
	}
	status, _, body := post(t, ts, `{"spec":"tiny","db":"tinydb"}`)
	info := decodeError(t, status, body)
	if info.Kind != KindDraining {
		t.Fatalf("publish after drain: kind %q, want %q", info.Kind, KindDraining)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string  `json:"status"`
		Draining bool    `json:"draining"`
		Metrics  Metrics `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	resp.Body.Close()
	if !health.Draining || health.Metrics.Rejected == 0 {
		t.Fatalf("healthz after drain: %+v", health)
	}
	settle(t, ts, base)
}

// settle tears down the HTTP plumbing (keep-alive connections, the
// test listener) so SettledGoroutines measures only the server's own
// goroutines.
func settle(t *testing.T, ts *httptest.Server, base int) {
	t.Helper()
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	ts.Close()
	testutil.SettledGoroutines(t, base)
}

// TestDrainCancelsStragglers: drain with a hung in-flight run cancels
// it via the lifecycle context and still comes back clean.
func TestDrainCancelsStragglers(t *testing.T) {
	base := runtime.NumGoroutine()
	s, ts := newTestServer(t, Config{Workers: 1, Queue: 0, DrainGrace: 2 * time.Second})

	// Park a fake in-flight request: hold the worker slot and a flight
	// whose fn blocks until the server lifecycle context dies — the
	// same shape as a run stuck mid-query.
	release, err := s.adm.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	flightDone := make(chan error, 1)
	go func() {
		_, _, _, _, err := s.flights.do(context.Background(), "stuck", func() (*pt.Result, int, bool, error) {
			<-s.baseCtx.Done()
			return nil, 1, false, &runctl.ErrCanceled{Cause: s.baseCtx.Err()}
		})
		release()
		flightDone <- err
	}()

	// Drain with a deadline far shorter than the hang: the first Wait
	// times out, the lifecycle cancel fires, the straggler unwinds with
	// a typed error inside the grace window.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain with hung run: %v", err)
	}
	var ce *runctl.ErrCanceled
	if err := <-flightDone; !errors.As(err, &ce) {
		t.Fatalf("straggler error: want *runctl.ErrCanceled, got %v", err)
	}
	settle(t, ts, base)
}

// TestPublishDedup: concurrent identical requests share one run. The
// leader is blocked via an injected flight so followers provably pile
// up, then all must see identical bytes with the shared marker set on
// the followers.
func TestPublishDedup(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 8, Queue: 8})
	want := goldenXML(t, tinySpec, tinyDB, false)

	const n = 6
	var wg sync.WaitGroup
	sharedCount := 0
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, hdr, body := post(t, ts, `{"spec":"tiny","db":"tinydb"}`)
			if status != http.StatusOK {
				t.Errorf("status %d: %s", status, body)
				return
			}
			if !bytes.Equal(body, want) {
				t.Error("deduped response bytes differ from golden")
			}
			if hdr.Get("X-Ptserve-Shared") == "true" {
				mu.Lock()
				sharedCount++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	// Sharing is opportunistic (depends on overlap); the metric and the
	// header must agree either way.
	m := s.Metrics()
	if int(m.Deduped) != sharedCount {
		t.Fatalf("Deduped metric %d != shared headers %d", m.Deduped, sharedCount)
	}
	if m.Succeeded != n {
		t.Fatalf("Succeeded = %d, want %d", m.Succeeded, n)
	}
}

// TestErrorCodeTable pins the full kind↔status mapping — DESIGN.md §9's
// table is this test — and the Retry-After derivation: -1 means the
// header must be absent, anything else pins the advertised seconds.
func TestErrorCodeTable(t *testing.T) {
	cases := []struct {
		err        error
		kind       string
		code       int
		retryAfter int
	}{
		{Validationf("spec", "x"), KindValidation, 400, -1},
		{&http.MaxBytesError{Limit: 1}, KindTooLarge, 413, -1},
		{&runctl.ErrBudget{Kind: runctl.BudgetNodes, Limit: 1, Observed: 2}, KindBudget, 413, -1},
		{&runctl.ErrCanceled{Cause: context.DeadlineExceeded}, KindCanceled, 408, -1},
		{&supervise.ErrFenced{Key: "run", Epoch: 1, Stored: 2}, KindConflict, 409, -1},
		{&ErrOverloaded{Queued: 3}, KindOverloaded, 429, 1},
		{&ErrOverloaded{Queued: 16}, KindOverloaded, 429, 5},
		{&ErrOverloaded{Queued: 1000}, KindOverloaded, 429, 30},
		{ErrDraining, KindDraining, 503, 5},
		{&wal.StorageError{Op: "fsync", Err: fmt.Errorf("disk full")}, KindStorage, 503, 5},
		{runctl.Transient(fmt.Errorf("flaky disk")), KindTransient, 503, 1},
		{&runctl.ErrInternal{Op: "x", Panic: "boom"}, KindInternal, 500, -1},
		{fmt.Errorf("untyped"), KindInternal, 500, -1},
	}
	for _, tc := range cases {
		code, info := Classify(tc.err)
		if info.Kind != tc.kind || code != tc.code {
			t.Errorf("Classify(%v) = (%d, %q), want (%d, %q)", tc.err, code, info.Kind, tc.code, tc.kind)
		}
		pinned, ok := StatusForKind(info.Kind)
		if !ok || pinned != code {
			t.Errorf("StatusForKind(%q) = %d disagrees with Classify's %d", info.Kind, pinned, code)
		}
		secs, ok := RetryAfter(tc.err)
		switch {
		case tc.retryAfter == -1 && ok:
			t.Errorf("RetryAfter(%v) = %d; %q responses must not advertise a retry", tc.err, secs, info.Kind)
		case tc.retryAfter >= 0 && (!ok || secs != tc.retryAfter):
			t.Errorf("RetryAfter(%v) = (%d, %v), want (%d, true)", tc.err, secs, ok, tc.retryAfter)
		}
		// The header on the wire matches the derivation.
		rec := httptest.NewRecorder()
		WriteError(rec, tc.err)
		got := rec.Header().Get("Retry-After")
		want := ""
		if tc.retryAfter >= 0 {
			want = strconv.Itoa(tc.retryAfter)
		}
		if got != want {
			t.Errorf("WriteError(%v) Retry-After = %q, want %q", tc.err, got, want)
		}
	}
	// A transient-wrapped budget error reports as budget (most specific
	// type wins over the marker).
	code, info := Classify(runctl.Transient(&runctl.ErrBudget{Kind: runctl.BudgetQueries, Limit: 1, Observed: 2}))
	if info.Kind != KindBudget || code != 413 {
		t.Errorf("transient-wrapped budget = (%d, %q), want (413, budget)", code, info.Kind)
	}
	// A storage error wrapping a transient cause reports as storage —
	// the client's contract is "not durable, not applied", regardless of
	// what tripped the write path.
	code, info = Classify(&wal.StorageError{Op: "append", Err: runctl.Transient(fmt.Errorf("injected"))})
	if info.Kind != KindStorage || code != 503 {
		t.Errorf("transient-wrapped storage = (%d, %q), want (503, storage)", code, info.Kind)
	}
}
