package serve

import (
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ptx/internal/runctl"
)

// TestRegistryErrorPaths table-drives every registration and lookup
// failure: each must surface as a *ValidationError (the client's
// mistake, HTTP 400) and never as *runctl.ErrInternal — a typo in a
// request is not a server fault.
func TestRegistryErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		run  func(r *Registry) error
		want string // substring of the error message
	}{
		{"empty spec name", func(r *Registry) error {
			return r.RegisterSpec("", tinySpec)
		}, "empty name"},
		{"empty db name", func(r *Registry) error {
			return r.RegisterDB("", tinyDB)
		}, "empty name"},
		{"duplicate spec", func(r *Registry) error {
			return r.RegisterSpec("tiny", tinySpec)
		}, "duplicate registration"},
		{"duplicate db", func(r *Registry) error {
			return r.RegisterDB("tinydb", tinyDB)
		}, "duplicate registration"},
		{"unparsable spec", func(r *Registry) error {
			return r.RegisterSpec("broken", badSpec)
		}, "does not parse"},
		{"invalid spec", func(r *Registry) error {
			// Parses but fails Validate: rule for an undeclared tag.
			return r.RegisterSpec("undeclared", `
schema R/1
transducer bad root db start q0
tag item/1
rule q0 db -> (q1, ghost, [x;] R(x))
`)
		}, "does not"},
		{"unknown spec lookup", func(r *Registry) error {
			_, err := r.Spec("nope")
			return err
		}, `unknown spec "nope"`},
		{"unknown spec pair", func(r *Registry) error {
			_, _, _, err := r.Pair("nope", "tinydb")
			return err
		}, `unknown spec "nope"`},
		{"unknown db pair", func(r *Registry) error {
			_, _, _, err := r.Pair("tiny", "nope")
			return err
		}, `unknown database "nope"`},
		{"db does not parse against schema", func(r *Registry) error {
			_, _, _, err := r.Pair("tiny", "badrows")
			return err
		}, "does not parse against spec"},
	}
	reg := NewRegistry()
	if err := reg.RegisterSpec("tiny", tinySpec); err != nil {
		t.Fatalf("seed spec: %v", err)
	}
	if err := reg.RegisterDB("tinydb", tinyDB); err != nil {
		t.Fatalf("seed db: %v", err)
	}
	// badrows has the wrong arity for R, so it parses as text but fails
	// against tiny's schema.
	if err := reg.RegisterDB("badrows", "R(a, b, c)\n"); err != nil {
		t.Fatalf("seed badrows: %v", err)
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run(reg)
			if err == nil {
				t.Fatal("expected an error")
			}
			var ve *ValidationError
			if !errors.As(err, &ve) {
				t.Fatalf("want *ValidationError, got %T: %v", err, err)
			}
			var ie *runctl.ErrInternal
			if errors.As(err, &ie) {
				t.Fatalf("registry error leaked as internal: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if status, _ := Classify(err); status != http.StatusBadRequest {
				t.Fatalf("registry error classified as %d, want 400", status)
			}
		})
	}
}

// TestRegistryUnknownListsAvailable: the unknown-name error names what
// IS registered, so a curl user can self-correct.
func TestRegistryUnknownListsAvailable(t *testing.T) {
	reg := NewRegistry()
	if err := reg.RegisterSpec("alpha", tinySpec); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterSpec("beta", tinySpec); err != nil {
		t.Fatal(err)
	}
	_, err := reg.Spec("gamma")
	if err == nil || !strings.Contains(err.Error(), "alpha, beta") {
		t.Fatalf("unknown-spec error should list available specs, got: %v", err)
	}
}

// TestRegistryPairCachesFailure: a hopeless (spec, db) pair fails fast
// forever with the SAME typed error, and a good pair returns the same
// instance and memo on every call (that identity is what makes memo
// sharing sound).
func TestRegistryPairCaching(t *testing.T) {
	reg := NewRegistry()
	if err := reg.RegisterSpec("tiny", tinySpec); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterDB("good", tinyDB); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterDB("bad", "R(a,b)\n"); err != nil {
		t.Fatal(err)
	}

	_, _, _, err1 := reg.Pair("tiny", "bad")
	_, _, _, err2 := reg.Pair("tiny", "bad")
	if err1 == nil || err2 == nil {
		t.Fatal("bad pair must error")
	}
	if err1 != err2 {
		t.Fatalf("pair failure not cached: %v vs %v", err1, err2)
	}

	_, inst1, memo1, err := reg.Pair("tiny", "good")
	if err != nil {
		t.Fatalf("good pair: %v", err)
	}
	_, inst2, memo2, err := reg.Pair("tiny", "good")
	if err != nil {
		t.Fatalf("good pair again: %v", err)
	}
	if inst1 != inst2 || memo1 != memo2 {
		t.Fatal("pair instance/memo must be cached, got fresh values")
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("tiny.pt", tinySpec)
	write("tinydb.db", tinyDB)
	write("notes.txt", "ignored")

	reg := NewRegistry()
	if err := reg.LoadDir(dir); err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if got := reg.SpecNames(); len(got) != 1 || got[0] != "tiny" {
		t.Fatalf("SpecNames = %v", got)
	}
	if got := reg.DBNames(); len(got) != 1 || got[0] != "tinydb" {
		t.Fatalf("DBNames = %v", got)
	}

	empty := t.TempDir()
	if err := NewRegistry().LoadDir(empty); err == nil {
		t.Fatal("LoadDir on a spec-less dir must fail loudly")
	}

	// The repo's real example specs must all load — the README curl
	// walkthrough depends on it.
	exReg := NewRegistry()
	if err := exReg.LoadDir("../../examples/specs"); err != nil {
		t.Fatalf("examples/specs does not load: %v", err)
	}
	for _, want := range []string{"tau1", "tau2v", "tau3"} {
		if _, err := exReg.Spec(want); err != nil {
			t.Fatalf("example spec %s missing: %v", want, err)
		}
	}
}
