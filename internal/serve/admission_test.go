package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"ptx/internal/runctl"
	"ptx/internal/testutil"
)

func TestAdmissionFastPathAndShed(t *testing.T) {
	a := NewAdmission(2, 1)

	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	r2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if got := a.Active(); got != 2 {
		t.Fatalf("Active = %d, want 2", got)
	}

	// Workers full: one waiter fits the queue, the next is shed NOW.
	waiterErr := make(chan error, 1)
	go func() {
		r, err := a.Acquire(context.Background())
		if err == nil {
			defer r()
		}
		waiterErr <- err
	}()
	for a.Waiting() == 0 {
		runtime.Gosched()
	}
	_, err = a.Acquire(context.Background())
	var oe *ErrOverloaded
	if !errors.As(err, &oe) {
		t.Fatalf("queue-full acquire: want *ErrOverloaded, got %v", err)
	}
	if oe.Queued != 1 {
		t.Fatalf("ErrOverloaded.Queued = %d, want 1", oe.Queued)
	}

	// Releasing a worker lets the queued waiter in.
	r1()
	r1() // idempotent: a double release must not free a second slot
	if err := <-waiterErr; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	r2()
}

func TestAdmissionDeadlineWhileQueued(t *testing.T) {
	a := NewAdmission(1, 4)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = a.Acquire(ctx)
	var ce *runctl.ErrCanceled
	if !errors.As(err, &ce) {
		t.Fatalf("expired waiter: want *runctl.ErrCanceled, got %v", err)
	}
	if a.Waiting() != 0 {
		t.Fatalf("Waiting = %d after deadline, want 0", a.Waiting())
	}
}

func TestAdmissionDrain(t *testing.T) {
	base := runtime.NumGoroutine()
	a := NewAdmission(1, 4)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// A queued waiter must be kicked out the moment draining starts.
	waiterErr := make(chan error, 1)
	go func() {
		_, err := a.Acquire(context.Background())
		waiterErr <- err
	}()
	for a.Waiting() == 0 {
		runtime.Gosched()
	}

	// Drain with work in flight: deadline expires, typed ctx error.
	short, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := a.Drain(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain with inflight: want DeadlineExceeded, got %v", err)
	}
	if err := <-waiterErr; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued waiter during drain: want ErrDraining, got %v", err)
	}

	// New admissions are refused outright.
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("acquire while draining: want ErrDraining, got %v", err)
	}

	// Once the in-flight request finishes, a second Drain is clean.
	release()
	if err := a.Drain(context.Background()); err != nil {
		t.Fatalf("drain after release: %v", err)
	}
	testutil.SettledGoroutines(t, base)
}

// TestAdmissionConcurrent hammers the controller from many goroutines:
// every outcome must be a success or a typed rejection, releases must
// balance, and a final drain must come back clean.
func TestAdmissionConcurrent(t *testing.T) {
	base := runtime.NumGoroutine()
	a := NewAdmission(3, 2)
	var wg sync.WaitGroup
	var admitted, shed, canceled int
	var mu sync.Mutex
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+i%7)*time.Millisecond)
			defer cancel()
			release, err := a.Acquire(ctx)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				time.Sleep(time.Duration(i%3) * time.Millisecond)
				release()
				admitted++
			case errors.As(err, new(*ErrOverloaded)):
				shed++
			case errors.As(err, new(*runctl.ErrCanceled)):
				canceled++
			default:
				t.Errorf("untyped admission outcome: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if admitted == 0 {
		t.Fatal("no request was admitted")
	}
	if admitted+shed+canceled != 64 {
		t.Fatalf("outcomes %d+%d+%d != 64", admitted, shed, canceled)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := a.Drain(ctx); err != nil {
		t.Fatalf("final drain: %v", err)
	}
	testutil.SettledGoroutines(t, base)
}
