package serve

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestParseFormatDeadline(t *testing.T) {
	h := http.Header{}
	if _, ok, err := ParseDeadline(h); ok || err != nil {
		t.Fatalf("absent header: ok=%v err=%v, want absent and nil", ok, err)
	}
	h.Set(HeaderDeadline, FormatDeadline(1500*time.Millisecond))
	if d, ok, err := ParseDeadline(h); !ok || err != nil || d != 1500*time.Millisecond {
		t.Fatalf("roundtrip: d=%v ok=%v err=%v", d, ok, err)
	}
	// An exhausted budget still propagates as the 1ms floor — it must
	// fail typed at the receiver, not vanish from the wire.
	if got := FormatDeadline(-5 * time.Second); got != "1" {
		t.Fatalf("FormatDeadline(-5s) = %q, want floor \"1\"", got)
	}
	for _, bad := range []string{"0", "-3", "soon", "1.5"} {
		h.Set(HeaderDeadline, bad)
		if _, _, err := ParseDeadline(h); err == nil {
			t.Errorf("ParseDeadline(%q) accepted a malformed budget", bad)
		}
	}
}

// TestSumTrailerRoundTrip: a caller that asks for the integrity sum
// gets the body's SHA-256 as a trailer; a caller that does not ask
// pays nothing and VerifySum stays lenient.
func TestSumTrailerRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/publish",
		strings.NewReader(`{"spec":"tiny","db":"tinydb"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderWantSum, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	got := resp.Trailer.Get(HeaderBodySum)
	if got == "" {
		t.Fatalf("no %s trailer on a want-sum response (trailers %v)", HeaderBodySum, resp.Trailer)
	}
	if want := BodySum(body); got != want {
		t.Fatalf("trailer sum %s != body sum %s", got, want)
	}
	if err := VerifySum(resp, body); err != nil {
		t.Fatalf("VerifySum on an intact response: %v", err)
	}

	// Without the ask: no trailer, and VerifySum does not bind.
	status, _, _ := post(t, ts, `{"spec":"tiny","db":"tinydb"}`)
	if status != http.StatusOK {
		t.Fatalf("plain publish status %d", status)
	}
}

// TestVerifySumDetectsTamper: a declared-but-wrong sum is corruption, a
// declared-but-missing sum is truncation; both must fail so the caller
// treats them as transport errors and fails over.
func TestVerifySumDetectsTamper(t *testing.T) {
	body := []byte("<db>intact</db>")
	mk := func() *http.Response {
		return &http.Response{Header: http.Header{}, Trailer: http.Header{}}
	}

	resp := mk()
	resp.Trailer.Set(HeaderBodySum, BodySum(body))
	corrupted := append([]byte(nil), body...)
	corrupted[3] ^= 0xFF
	if err := VerifySum(resp, corrupted); err == nil {
		t.Error("corrupted body passed its integrity sum")
	}

	// The sender promised a trailer (Trailer header names it) but the
	// stream ended before it arrived — truncation.
	resp = mk()
	resp.Header.Set("Trailer", HeaderBodySum)
	if err := VerifySum(resp, body[:4]); err == nil {
		t.Error("truncated stream with a promised sum passed verification")
	}

	// No declaration anywhere: a pre-protocol peer; lenient.
	if err := VerifySum(mk(), body); err != nil {
		t.Errorf("undeclared sum must be lenient, got %v", err)
	}
}

// TestPublishDeadlineHeader: the propagated deadline clamps the run's
// timeout budget — a 1ms budget on a non-trivial database ends typed,
// and a malformed header is a validation error, not a silent default.
func TestPublishDeadlineHeader(t *testing.T) {
	reg := NewRegistry()
	if err := reg.RegisterSpec("tiny", tinySpec); err != nil {
		t.Fatal(err)
	}
	var big strings.Builder
	for i := 0; i < 8000; i++ {
		fmt.Fprintf(&big, "R(r%04d)\n", i)
	}
	if err := reg.RegisterDB("bigdb", big.String()); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Registry: reg})

	do := func(deadline string) (int, []byte) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/publish",
			strings.NewReader(`{"spec":"tiny","db":"bigdb","limits":{"timeout_ms":60000}}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(HeaderDeadline, deadline)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	status, body := do("1")
	if status == http.StatusOK {
		t.Fatalf("1ms propagated budget finished an 8000-row publish: %d bytes", len(body))
	}
	info := decodeError(t, status, body)
	if info.Kind != KindBudget && info.Kind != KindCanceled {
		t.Fatalf("clamped run ended with kind %q, want budget or canceled", info.Kind)
	}

	status, body = do("not-a-number")
	if status != http.StatusBadRequest {
		t.Fatalf("malformed deadline header: status %d: %s", status, body)
	}
	if info := decodeError(t, status, body); info.Kind != KindValidation {
		t.Fatalf("malformed deadline kind %q, want validation", info.Kind)
	}
}
