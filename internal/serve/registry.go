package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"ptx/internal/eval"
	"ptx/internal/parser"
	"ptx/internal/pt"
	"ptx/internal/relation"
	"ptx/internal/runctl"
	"ptx/internal/supervise"
	"ptx/internal/wal"
)

// Registry holds the compiled transducer specs and database sources a
// server publishes from. Specs are parsed and validated at registration
// time (behind panic containment — the parser sees untrusted text), so
// a request can never be the first thing to discover a bad spec.
// Database sources are stored as text and parsed lazily per (spec, db)
// pair, because an instance is only meaningful against a concrete
// spec's schema; parsed instances and their query memos are cached so
// repeated publishes of the same pair share warm state.
//
// All methods are safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	specs map[string]*pt.Transducer
	dbs   map[string]string // name → source text

	pairs map[string]*pairEntry // spec\x00db → parsed instance + shared memo

	// logs is the per-database mutation log: every delta accepted by
	// MutateDB (or replicated in via ApplyAt), in sequence order. A pair
	// parsed AFTER mutations replays the log so all pairs over one
	// database agree on its current contents. Each log carries the
	// database's sequence counter and its epoch high-water mark — the
	// fencing state that rejects a zombie owner's stale writes.
	log  *wal.Log
	logs map[string]*dbLog
}

// dbLog is one database's sequenced mutation history.
type dbLog struct {
	seq   uint64 // last assigned sequence number (0 = pristine)
	epoch uint64 // highest epoch observed on an accepted write
	recs  []DeltaRecord
}

// indexOf locates the in-memory record holding seq (records are
// contiguous, so the offset from the first record's seq is the index).
func (lg *dbLog) indexOf(seq uint64) (int, bool) {
	if len(lg.recs) == 0 || seq < lg.recs[0].Seq {
		return 0, false
	}
	idx := int(seq - lg.recs[0].Seq)
	if idx >= len(lg.recs) {
		return 0, false
	}
	return idx, true
}

// absorb folds one replayed record into the log: appends fresh records,
// skips duplicates, and reconciles a same-seq record from a NEWER epoch
// by truncating the superseded suffix — the shape a WAL takes when an
// owner adopted a successor's regime after divergence. Returns whether
// the record changed the log.
func (lg *dbLog) absorb(rec DeltaRecord) bool {
	if idx, ok := lg.indexOf(rec.Seq); ok {
		if rec.Epoch <= lg.recs[idx].Epoch {
			return false // duplicate of the same (or a newer) regime
		}
		lg.recs = append([]DeltaRecord(nil), lg.recs[:idx]...)
		lg.seq = rec.Seq - 1
	} else if rec.Seq <= lg.seq {
		return false // before the log's first record: already folded
	}
	lg.recs = append(lg.recs, rec)
	if rec.Seq > lg.seq {
		lg.seq = rec.Seq
	}
	if rec.Epoch > lg.epoch {
		lg.epoch = rec.Epoch
	}
	return true
}

// DeltaRecord is one committed mutation: its per-database sequence
// number, the ownership epoch the write carried, and the delta itself.
type DeltaRecord struct {
	Seq   uint64
	Epoch uint64
	Delta *relation.Delta
}

// GapError reports a replicated record that arrived out of order: the
// receiver holds Have, the record claims Got > Have+1. The sender
// repairs by re-sending from Have+1 (deltas are idempotent, so overlap
// is harmless).
type GapError struct {
	DB        string
	Have, Got uint64
}

func (e *GapError) Error() string {
	return fmt.Sprintf("serve: replication gap on %q: have seq %d, got %d", e.DB, e.Have, e.Got)
}

// pairEntry caches what one (spec, db) pair shares across requests: the
// parsed instance (immutable once served) and the query memo
// (concurrency-safe; sound because it is scoped to exactly this pair).
type pairEntry struct {
	once sync.Once
	inst *relation.Instance
	memo *eval.Memo
	err  error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		specs: make(map[string]*pt.Transducer),
		dbs:   make(map[string]string),
		pairs: make(map[string]*pairEntry),
		logs:  make(map[string]*dbLog),
	}
}

// AttachWAL binds a durable log to the registry and replays its
// recovered records into the in-memory mutation logs, so every pair
// resolved afterwards serves post-delta bytes. From here on MutateDB
// appends (and fsyncs) to the log BEFORE committing in memory — the
// ack-after-durable contract. Returns the number of records replayed.
func (r *Registry) AttachWAL(l *wal.Log) int {
	recs := l.Records()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.log = l
	n := 0
	for _, rec := range recs {
		if r.logsLocked(rec.DB).absorb(DeltaRecord{Seq: rec.Seq, Epoch: rec.Epoch, Delta: rec.Delta}) {
			n++
		}
	}
	// Replayed history invalidates anything parsed pre-attach.
	for key := range r.pairs {
		delete(r.pairs, key)
	}
	return n
}

// WALMetrics snapshots the attached log's counters (zero without one).
func (r *Registry) WALMetrics() wal.Metrics {
	r.mu.RLock()
	l := r.log
	r.mu.RUnlock()
	if l == nil {
		return wal.Metrics{}
	}
	return l.Metrics()
}

func (r *Registry) logsLocked(db string) *dbLog {
	lg, ok := r.logs[db]
	if !ok {
		lg = &dbLog{}
		r.logs[db] = lg
	}
	return lg
}

// RegisterSpec parses, validates and installs a transducer spec under
// name. Duplicate names and unparsable or invalid specs return a
// *ValidationError — registration failures are caller mistakes, not
// server faults.
func (r *Registry) RegisterSpec(name, src string) error {
	if name == "" {
		return Validationf("spec", "empty name")
	}
	tr, err := parseSpec(name, src)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.specs[name]; dup {
		return Validationf("spec", "duplicate registration of %q", name)
	}
	r.specs[name] = tr
	return nil
}

// parseSpec contains the untrusted-input parsing: parser panics are
// converted by the parser's own recover into errors, and any residual
// panic in validation is contained here rather than killing the server.
func parseSpec(name, src string) (tr *pt.Transducer, err error) {
	defer runctl.Recover(&err, "serve.parseSpec")
	tr, perr := parser.ParseTransducer(src)
	if perr != nil {
		return nil, Validationf("spec", "%q does not parse: %v", name, perr)
	}
	if verr := tr.Validate(); verr != nil {
		return nil, Validationf("spec", "%q does not validate: %v", name, verr)
	}
	return tr, nil
}

// RegisterDB installs a database source under name. The text is parsed
// lazily against each spec's schema at publish time; registration only
// rejects duplicates and empty names so one database can serve any
// spec whose schema accepts it.
func (r *Registry) RegisterDB(name, src string) error {
	if name == "" {
		return Validationf("db", "empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.dbs[name]; dup {
		return Validationf("db", "duplicate registration of %q", name)
	}
	r.dbs[name] = src
	return nil
}

// Spec returns the registered transducer, or a typed *ValidationError
// naming the unknown spec and the available ones.
func (r *Registry) Spec(name string) (*pt.Transducer, error) {
	r.mu.RLock()
	tr, ok := r.specs[name]
	r.mu.RUnlock()
	if !ok {
		return nil, Validationf("spec", "unknown spec %q (have: %s)", name, strings.Join(r.SpecNames(), ", "))
	}
	return tr, nil
}

// Pair resolves a (spec, db) pair to the transducer, the parsed
// instance and the pair's shared query memo. Unknown names are typed
// validation errors; a database that does not parse against the spec's
// schema likewise (cached, so a hopeless pair fails fast forever).
func (r *Registry) Pair(spec, db string) (*pt.Transducer, *relation.Instance, *eval.Memo, error) {
	tr, err := r.Spec(spec)
	if err != nil {
		return nil, nil, nil, err
	}
	r.mu.RLock()
	src, ok := r.dbs[db]
	r.mu.RUnlock()
	if !ok {
		return nil, nil, nil, Validationf("db", "unknown database %q (have: %s)", db, strings.Join(r.DBNames(), ", "))
	}

	key := spec + "\x00" + db
	r.mu.Lock()
	e, ok := r.pairs[key]
	if !ok {
		e = &pairEntry{}
		r.pairs[key] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		e.inst, e.err = parseInstance(spec, db, src, tr)
		if e.err == nil {
			// Replay the database's mutation log so a pair parsed after
			// mutations agrees with pairs that lived through them. Deltas
			// another spec's vocabulary rejects are skipped: they concern
			// relations this schema does not publish.
			for _, rec := range r.DeltaRecords(db) {
				if rec.Delta.Validate(e.inst.Schema()) == nil {
					_, _ = e.inst.Apply(rec.Delta)
				}
			}
			e.memo = eval.NewMemo(0)
		}
	})
	if e.err != nil {
		return nil, nil, nil, e.err
	}
	return tr, e.inst, e.memo, nil
}

// parseInstance parses a database source against a spec's schema with
// panic containment, typing parse failures as validation errors.
func parseInstance(spec, db, src string, tr *pt.Transducer) (inst *relation.Instance, err error) {
	defer runctl.Recover(&err, "serve.parseInstance")
	inst, perr := parser.ParseInstance(src, tr.Schema)
	if perr != nil {
		return nil, Validationf("db", "%q does not parse against spec %q: %v", db, spec, perr)
	}
	return inst, nil
}

// MutateDB applies a delta to a registered database: the delta is
// appended (durably first, when a WAL is attached — the record is
// fsynced BEFORE anything in memory changes, so an acknowledged delta
// survives a crash) to the database's mutation log and every cached
// (spec, db) pair over it is dropped, so the next Pair call re-parses
// the source and replays the full log into a fresh instance with a
// fresh memo.
//
// Dropping instead of mutating in place is the concurrency contract:
// a publish in flight keeps the (instance, memo) pair it resolved —
// internally consistent, pre-delta — while every later resolution sees
// post-delta state. Readers observe before-or-after, never torn.
//
// epoch is the cluster ownership epoch the write carries (0 outside a
// cluster, which bypasses fencing): a write whose epoch is BELOW the
// database's high-water mark is a zombie owner's and is refused with a
// typed *supervise.ErrFenced (HTTP 409) before any state is touched.
//
// It returns the number of cached pairs refreshed and the sequence
// number assigned to the delta. Unknown databases are typed validation
// errors; a WAL append failure is a typed *wal.StorageError and the
// delta is atomically absent. Per-schema validation happens at replay
// (and, for the caller's schema, before calling — see Server.mutate).
func (r *Registry) MutateDB(db string, d *relation.Delta, epoch uint64) (int, uint64, error) {
	if d == nil || d.Empty() {
		return 0, 0, Validationf("delta", "empty delta")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.dbs[db]; !ok {
		return 0, 0, Validationf("db", "unknown database %q (have: %s)", db, strings.Join(r.dbNamesLocked(), ", "))
	}
	lg := r.logsLocked(db)
	if epoch > 0 && epoch < lg.epoch {
		return 0, 0, &supervise.ErrFenced{Key: "mutate\x00" + db, Epoch: epoch, Stored: lg.epoch}
	}
	seq := lg.seq + 1
	dropped, err := r.commitLocked(db, lg, DeltaRecord{Seq: seq, Epoch: epoch, Delta: d})
	if err != nil {
		return 0, 0, err
	}
	return dropped, seq, nil
}

// ApplyAt installs a REPLICATED record at its original sequence number.
// The acceptance rule is what makes duplicate and out-of-order delivery
// safe: a record at or below the current sequence is a duplicate and is
// skipped (applied=false, nil error — deltas are idempotent, so the
// state already reflects it); the successor record commits exactly like
// MutateDB; anything further ahead is a *GapError telling the sender
// where to resume. Epoch fencing applies before any of it.
//
// One exception to the duplicate rule: a same-seq record carrying a
// NEWER epoch supersedes the local suffix from that sequence on. Those
// local records were written by a deposed owner and were never
// acknowledged (an acknowledged record reaches every up member before
// its ack, so its sequence number is never reassigned) — the new
// regime's history wins, the stale suffix is truncated, and superseded
// reports true so the caller can resynchronize live views against the
// reconciled log.
func (r *Registry) ApplyAt(db string, rec DeltaRecord) (dropped int, applied, superseded bool, err error) {
	if rec.Delta == nil || rec.Delta.Empty() {
		return 0, false, false, Validationf("delta", "empty delta")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.dbs[db]; !ok {
		return 0, false, false, Validationf("db", "unknown database %q (have: %s)", db, strings.Join(r.dbNamesLocked(), ", "))
	}
	lg := r.logsLocked(db)
	if rec.Epoch > 0 && rec.Epoch < lg.epoch {
		return 0, false, false, &supervise.ErrFenced{Key: "mutate\x00" + db, Epoch: rec.Epoch, Stored: lg.epoch}
	}
	switch {
	case rec.Seq <= lg.seq:
		idx, ok := lg.indexOf(rec.Seq)
		if !ok || rec.Epoch <= lg.recs[idx].Epoch {
			return 0, false, false, nil
		}
		lg.recs = append([]DeltaRecord(nil), lg.recs[:idx]...)
		lg.seq = rec.Seq - 1
		dropped, err = r.commitLocked(db, lg, rec)
		if err != nil {
			return 0, false, false, err
		}
		return dropped, true, true, nil
	case rec.Seq > lg.seq+1:
		return 0, false, false, &GapError{DB: db, Have: lg.seq, Got: rec.Seq}
	}
	dropped, err = r.commitLocked(db, lg, rec)
	if err != nil {
		return 0, false, false, err
	}
	return dropped, true, false, nil
}

// replayInstance parses db's base source against spec's schema and
// replays recs into it (schema-rejected deltas skipped) — the same view
// of history Pair serves, computed fresh and uncached. Used to rebuild
// live-view state after a supersede rewrote the log's tail.
func (r *Registry) replayInstance(spec, db string, recs []DeltaRecord) (*relation.Instance, error) {
	tr, err := r.Spec(spec)
	if err != nil {
		return nil, err
	}
	r.mu.RLock()
	src, ok := r.dbs[db]
	r.mu.RUnlock()
	if !ok {
		return nil, Validationf("db", "unknown database %q", db)
	}
	inst, err := parseInstance(spec, db, src, tr)
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		if rec.Delta.Validate(inst.Schema()) == nil {
			_, _ = inst.Apply(rec.Delta)
		}
	}
	return inst, nil
}

// commitLocked makes one record durable (WAL append + fsync first),
// then commits it in memory and invalidates cached pairs. Caller holds
// r.mu and has already fenced and sequenced the record.
func (r *Registry) commitLocked(db string, lg *dbLog, rec DeltaRecord) (int, error) {
	if r.log != nil {
		if err := r.log.Append(wal.Record{DB: db, Seq: rec.Seq, Epoch: rec.Epoch, Delta: rec.Delta}); err != nil {
			return 0, err
		}
	}
	lg.recs = append(lg.recs, rec)
	lg.seq = rec.Seq
	if rec.Epoch > lg.epoch {
		lg.epoch = rec.Epoch
	}
	dropped := 0
	suffix := "\x00" + db
	for key := range r.pairs {
		if strings.HasSuffix(key, suffix) {
			delete(r.pairs, key)
			dropped++
		}
	}
	return dropped, nil
}

// Seq returns the database's last committed sequence number.
func (r *Registry) Seq(db string) uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if lg, ok := r.logs[db]; ok {
		return lg.seq
	}
	return 0
}

// EpochHighWater returns the highest epoch observed on an accepted
// write to the database.
func (r *Registry) EpochHighWater(db string) uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if lg, ok := r.logs[db]; ok {
		return lg.epoch
	}
	return 0
}

// DeltaRecords returns the database's full mutation history in
// sequence order.
func (r *Registry) DeltaRecords(db string) []DeltaRecord {
	return r.RecordsSince(db, 0)
}

// RecordsSince returns the records with sequence numbers strictly
// after `after` — the resend tail for replication gap repair.
func (r *Registry) RecordsSince(db string, after uint64) []DeltaRecord {
	r.mu.RLock()
	defer r.mu.RUnlock()
	lg, ok := r.logs[db]
	if !ok {
		return nil
	}
	out := make([]DeltaRecord, 0, len(lg.recs))
	for _, rec := range lg.recs {
		if rec.Seq > after {
			out = append(out, rec)
		}
	}
	return out
}

// DeltaLog returns the database's mutation log (most recent last).
func (r *Registry) DeltaLog(db string) []*relation.Delta {
	recs := r.DeltaRecords(db)
	out := make([]*relation.Delta, len(recs))
	for i, rec := range recs {
		out[i] = rec.Delta
	}
	return out
}

// SpecNames lists the registered specs, sorted.
func (r *Registry) SpecNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.specs))
	for n := range r.specs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DBNames lists the registered databases, sorted.
func (r *Registry) DBNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.dbNamesLocked()
}

func (r *Registry) dbNamesLocked() []string {
	names := make([]string, 0, len(r.dbs))
	for n := range r.dbs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LoadDir registers every *.pt file as a spec and every *.db file as a
// database, named by basename without extension. A directory with no
// loadable spec is a validation error — a server with nothing to
// publish is a deployment mistake worth failing loudly on.
func (r *Registry) LoadDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("serve: reading spec dir: %w", err)
	}
	loaded := 0
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		ext := filepath.Ext(e.Name())
		if ext != ".pt" && ext != ".db" {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return fmt.Errorf("serve: reading %s: %w", e.Name(), err)
		}
		name := strings.TrimSuffix(e.Name(), ext)
		if ext == ".pt" {
			if err := r.RegisterSpec(name, string(src)); err != nil {
				return fmt.Errorf("serve: loading %s: %w", e.Name(), err)
			}
			loaded++
		} else {
			if err := r.RegisterDB(name, string(src)); err != nil {
				return fmt.Errorf("serve: loading %s: %w", e.Name(), err)
			}
		}
	}
	if loaded == 0 {
		return Validationf("spec", "no .pt specs in %s", dir)
	}
	return nil
}
