package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"ptx/internal/eval"
	"ptx/internal/parser"
	"ptx/internal/pt"
	"ptx/internal/relation"
	"ptx/internal/runctl"
)

// Registry holds the compiled transducer specs and database sources a
// server publishes from. Specs are parsed and validated at registration
// time (behind panic containment — the parser sees untrusted text), so
// a request can never be the first thing to discover a bad spec.
// Database sources are stored as text and parsed lazily per (spec, db)
// pair, because an instance is only meaningful against a concrete
// spec's schema; parsed instances and their query memos are cached so
// repeated publishes of the same pair share warm state.
//
// All methods are safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	specs map[string]*pt.Transducer
	dbs   map[string]string // name → source text

	pairs map[string]*pairEntry // spec\x00db → parsed instance + shared memo

	// deltas is the per-database mutation log: every delta accepted by
	// MutateDB, in order. A pair parsed AFTER mutations replays the log
	// so all pairs over one database agree on its current contents.
	deltas map[string][]*relation.Delta
}

// pairEntry caches what one (spec, db) pair shares across requests: the
// parsed instance (immutable once served) and the query memo
// (concurrency-safe; sound because it is scoped to exactly this pair).
type pairEntry struct {
	once sync.Once
	inst *relation.Instance
	memo *eval.Memo
	err  error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		specs:  make(map[string]*pt.Transducer),
		dbs:    make(map[string]string),
		pairs:  make(map[string]*pairEntry),
		deltas: make(map[string][]*relation.Delta),
	}
}

// RegisterSpec parses, validates and installs a transducer spec under
// name. Duplicate names and unparsable or invalid specs return a
// *ValidationError — registration failures are caller mistakes, not
// server faults.
func (r *Registry) RegisterSpec(name, src string) error {
	if name == "" {
		return Validationf("spec", "empty name")
	}
	tr, err := parseSpec(name, src)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.specs[name]; dup {
		return Validationf("spec", "duplicate registration of %q", name)
	}
	r.specs[name] = tr
	return nil
}

// parseSpec contains the untrusted-input parsing: parser panics are
// converted by the parser's own recover into errors, and any residual
// panic in validation is contained here rather than killing the server.
func parseSpec(name, src string) (tr *pt.Transducer, err error) {
	defer runctl.Recover(&err, "serve.parseSpec")
	tr, perr := parser.ParseTransducer(src)
	if perr != nil {
		return nil, Validationf("spec", "%q does not parse: %v", name, perr)
	}
	if verr := tr.Validate(); verr != nil {
		return nil, Validationf("spec", "%q does not validate: %v", name, verr)
	}
	return tr, nil
}

// RegisterDB installs a database source under name. The text is parsed
// lazily against each spec's schema at publish time; registration only
// rejects duplicates and empty names so one database can serve any
// spec whose schema accepts it.
func (r *Registry) RegisterDB(name, src string) error {
	if name == "" {
		return Validationf("db", "empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.dbs[name]; dup {
		return Validationf("db", "duplicate registration of %q", name)
	}
	r.dbs[name] = src
	return nil
}

// Spec returns the registered transducer, or a typed *ValidationError
// naming the unknown spec and the available ones.
func (r *Registry) Spec(name string) (*pt.Transducer, error) {
	r.mu.RLock()
	tr, ok := r.specs[name]
	r.mu.RUnlock()
	if !ok {
		return nil, Validationf("spec", "unknown spec %q (have: %s)", name, strings.Join(r.SpecNames(), ", "))
	}
	return tr, nil
}

// Pair resolves a (spec, db) pair to the transducer, the parsed
// instance and the pair's shared query memo. Unknown names are typed
// validation errors; a database that does not parse against the spec's
// schema likewise (cached, so a hopeless pair fails fast forever).
func (r *Registry) Pair(spec, db string) (*pt.Transducer, *relation.Instance, *eval.Memo, error) {
	tr, err := r.Spec(spec)
	if err != nil {
		return nil, nil, nil, err
	}
	r.mu.RLock()
	src, ok := r.dbs[db]
	r.mu.RUnlock()
	if !ok {
		return nil, nil, nil, Validationf("db", "unknown database %q (have: %s)", db, strings.Join(r.DBNames(), ", "))
	}

	key := spec + "\x00" + db
	r.mu.Lock()
	e, ok := r.pairs[key]
	if !ok {
		e = &pairEntry{}
		r.pairs[key] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		e.inst, e.err = parseInstance(spec, db, src, tr)
		if e.err == nil {
			// Replay the database's mutation log so a pair parsed after
			// mutations agrees with pairs that lived through them. Deltas
			// another spec's vocabulary rejects are skipped: they concern
			// relations this schema does not publish.
			r.mu.RLock()
			log := append([]*relation.Delta(nil), r.deltas[db]...)
			r.mu.RUnlock()
			for _, d := range log {
				if d.Validate(e.inst.Schema()) == nil {
					_, _ = e.inst.Apply(d)
				}
			}
			e.memo = eval.NewMemo(0)
		}
	})
	if e.err != nil {
		return nil, nil, nil, e.err
	}
	return tr, e.inst, e.memo, nil
}

// parseInstance parses a database source against a spec's schema with
// panic containment, typing parse failures as validation errors.
func parseInstance(spec, db, src string, tr *pt.Transducer) (inst *relation.Instance, err error) {
	defer runctl.Recover(&err, "serve.parseInstance")
	inst, perr := parser.ParseInstance(src, tr.Schema)
	if perr != nil {
		return nil, Validationf("db", "%q does not parse against spec %q: %v", db, spec, perr)
	}
	return inst, nil
}

// MutateDB applies a delta to a registered database: the delta is
// appended to the database's mutation log and every cached (spec, db)
// pair over it is dropped, so the next Pair call re-parses the source
// and replays the full log into a fresh instance with a fresh memo.
//
// Dropping instead of mutating in place is the concurrency contract:
// a publish in flight keeps the (instance, memo) pair it resolved —
// internally consistent, pre-delta — while every later resolution sees
// post-delta state. Readers observe before-or-after, never torn.
//
// It returns the number of cached pairs refreshed. Unknown databases
// are typed validation errors; per-schema validation happens at replay
// (and, for the caller's schema, before calling — see Server.mutate).
func (r *Registry) MutateDB(db string, d *relation.Delta) (int, error) {
	if d == nil || d.Empty() {
		return 0, Validationf("delta", "empty delta")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.dbs[db]; !ok {
		return 0, Validationf("db", "unknown database %q (have: %s)", db, strings.Join(r.dbNamesLocked(), ", "))
	}
	r.deltas[db] = append(r.deltas[db], d)
	dropped := 0
	suffix := "\x00" + db
	for key := range r.pairs {
		if strings.HasSuffix(key, suffix) {
			delete(r.pairs, key)
			dropped++
		}
	}
	return dropped, nil
}

// DeltaLog returns the database's mutation log (most recent last).
func (r *Registry) DeltaLog(db string) []*relation.Delta {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*relation.Delta(nil), r.deltas[db]...)
}

// SpecNames lists the registered specs, sorted.
func (r *Registry) SpecNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.specs))
	for n := range r.specs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DBNames lists the registered databases, sorted.
func (r *Registry) DBNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.dbNamesLocked()
}

func (r *Registry) dbNamesLocked() []string {
	names := make([]string, 0, len(r.dbs))
	for n := range r.dbs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LoadDir registers every *.pt file as a spec and every *.db file as a
// database, named by basename without extension. A directory with no
// loadable spec is a validation error — a server with nothing to
// publish is a deployment mistake worth failing loudly on.
func (r *Registry) LoadDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("serve: reading spec dir: %w", err)
	}
	loaded := 0
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		ext := filepath.Ext(e.Name())
		if ext != ".pt" && ext != ".db" {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return fmt.Errorf("serve: reading %s: %w", e.Name(), err)
		}
		name := strings.TrimSuffix(e.Name(), ext)
		if ext == ".pt" {
			if err := r.RegisterSpec(name, string(src)); err != nil {
				return fmt.Errorf("serve: loading %s: %w", e.Name(), err)
			}
			loaded++
		} else {
			if err := r.RegisterDB(name, string(src)); err != nil {
				return fmt.Errorf("serve: loading %s: %w", e.Name(), err)
			}
		}
	}
	if loaded == 0 {
		return Validationf("spec", "no .pt specs in %s", dir)
	}
	return nil
}
