// Synchronous delta replication between nodes: POST /replicate accepts
// sequenced records from a database's owner, GET /deltalog exposes the
// local mutation log for catch-up, and POST /sync runs a bidirectional
// catch-up against a peer (pull its tail, push ours). The protocol is
// built on two properties that make retries boring: records carry their
// per-database sequence numbers, so a receiver can tell duplicates
// (skip) from gaps (answer with its high-water mark and let the sender
// resend the tail); and deltas are set-membership assignments, so
// re-applying an overlap is a no-op.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"ptx/internal/relation"
)

const (
	// HeaderReplicas names the successor set a mutation must reach
	// before its ack: "id=url,id2=url2". The coordinator stamps it when
	// forwarding /mutate to a database's owner.
	HeaderReplicas = "X-Ptx-Replicas"
	// HeaderReplicaFailed lists (comma-joined) the replica ids that did
	// NOT confirm the delta before the ack. The coordinator reads it to
	// mark suspect members down.
	HeaderReplicaFailed = "X-Ptserve-Replica-Failed"
)

// replica is one parsed HeaderReplicas entry.
type replica struct {
	id  string
	url string
}

// parseReplicas decodes "id=url,id2=url2" (empty → none).
func parseReplicas(h string) ([]replica, error) {
	if h == "" {
		return nil, nil
	}
	parts := strings.Split(h, ",")
	out := make([]replica, 0, len(parts))
	for _, p := range parts {
		id, url, ok := strings.Cut(strings.TrimSpace(p), "=")
		if !ok || id == "" || url == "" {
			return nil, Validationf("replicas", "malformed %s entry %q (want id=url)", HeaderReplicas, p)
		}
		out = append(out, replica{id: id, url: url})
	}
	return out, nil
}

// wireRecord is one sequenced delta on the wire, reusing the /mutate op
// schema for the payload.
type wireRecord struct {
	Seq   uint64     `json:"seq"`
	Epoch uint64     `json:"epoch"`
	Ops   []mutateOp `json:"ops"`
}

type replicateRequest struct {
	DB      string       `json:"db"`
	Records []wireRecord `json:"records"`
}

// replicateResponse reports the receiver's state after the batch. Gap
// means the batch started past the receiver's high-water mark Have and
// nothing past the gap was applied — the sender must resend from
// Have+1. A gap is a 200, not an error: it is the protocol working.
type replicateResponse struct {
	DB      string `json:"db"`
	Applied int    `json:"applied"`
	Have    uint64 `json:"have"`
	Gap     bool   `json:"gap,omitempty"`
}

// deltaLogResponse is the GET /deltalog reply: the database's current
// sequence and epoch high-water marks plus the records after `from`.
type deltaLogResponse struct {
	DB      string       `json:"db"`
	Seq     uint64       `json:"seq"`
	Epoch   uint64       `json:"epoch"`
	Records []wireRecord `json:"records"`
}

// syncRequest asks this node to catch up bidirectionally with a peer's
// copy of db: pull the peer's tail, then push back anything the peer
// lacks.
type syncRequest struct {
	DB   string `json:"db"`
	Peer string `json:"peer"` // base URL
}

type syncResponse struct {
	DB     string `json:"db"`
	Pulled int    `json:"pulled"`
	Pushed int    `json:"pushed"`
	Seq    uint64 `json:"seq"`
}

// encodeOps renders a delta in the /mutate wire op schema.
func encodeOps(d *relation.Delta) []mutateOp {
	ops := make([]mutateOp, len(d.Ops))
	for i, op := range d.Ops {
		kind := "delete"
		if op.Insert {
			kind = "insert"
		}
		tuple := make([]string, len(op.Tuple))
		for j, v := range op.Tuple {
			tuple[j] = string(v)
		}
		ops[i] = mutateOp{Op: kind, Rel: op.Rel, Tuple: tuple}
	}
	return ops
}

func encodeRecords(recs []DeltaRecord) []wireRecord {
	out := make([]wireRecord, len(recs))
	for i, rec := range recs {
		out[i] = wireRecord{Seq: rec.Seq, Epoch: rec.Epoch, Ops: encodeOps(rec.Delta)}
	}
	return out
}

func (s *Server) hasDB(db string) bool {
	for _, n := range s.reg.DBNames() {
		if n == db {
			return true
		}
	}
	return false
}

// applyRecords commits a batch of replicated records under liveMu:
// duplicates are skipped, the contiguous tail is committed (durably
// first when a WAL is attached) with live views repaired per record,
// and a gap stops the batch with the current high-water mark for the
// sender to resume from. A record that SUPERSEDES local history (same
// seq, newer epoch — see Registry.ApplyAt) invalidates the per-delta
// repair stream, so views are resynchronized against the reconciled
// log once the batch settles, whatever exit path it takes.
func (s *Server) applyRecords(db string, recs []wireRecord) (applied int, have uint64, gap bool, err error) {
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	resync := false
	defer func() {
		if resync {
			s.resyncViews(db)
		}
	}()
	for _, wr := range recs {
		d, derr := decodeDelta(wr.Ops)
		if derr != nil {
			return applied, s.reg.Seq(db), false, derr
		}
		_, ok, superseded, aerr := s.reg.ApplyAt(db, DeltaRecord{Seq: wr.Seq, Epoch: wr.Epoch, Delta: d})
		if aerr != nil {
			var ge *GapError
			if errors.As(aerr, &ge) {
				return applied, ge.Have, true, nil
			}
			return applied, s.reg.Seq(db), false, aerr
		}
		if ok {
			if superseded {
				resync = true
			} else if !resync {
				s.repairViews(db, d)
			}
			s.replicated.Add(1)
			applied++
		}
	}
	return applied, s.reg.Seq(db), false, nil
}

// handleReplicate is the receiver side of synchronous replication.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if s.cfg.NodeID != "" {
		w.Header().Set("X-Ptserve-Node", s.cfg.NodeID)
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.adm.Draining() {
		s.rejected.Add(1)
		WriteError(w, ErrDraining)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req replicateRequest
	if err := dec.Decode(&req); err != nil {
		s.rejected.Add(1)
		WriteError(w, Validationf("body", "%v", err))
		return
	}
	if req.DB == "" {
		s.rejected.Add(1)
		WriteError(w, Validationf("db", "missing"))
		return
	}
	if !s.hasDB(req.DB) {
		s.rejected.Add(1)
		WriteError(w, Validationf("db", "unknown database %q", req.DB))
		return
	}
	applied, have, gap, err := s.applyRecords(req.DB, req.Records)
	if err != nil {
		s.rejected.Add(1)
		WriteError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(replicateResponse{DB: req.DB, Applied: applied, Have: have, Gap: gap})
}

// handleDeltaLog serves the local mutation log for catch-up:
// GET /deltalog?db=D&from=N returns the records with seq > N.
func (s *Server) handleDeltaLog(w http.ResponseWriter, r *http.Request) {
	if s.cfg.NodeID != "" {
		w.Header().Set("X-Ptserve-Node", s.cfg.NodeID)
	}
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	db := q.Get("db")
	if db == "" {
		s.rejected.Add(1)
		WriteError(w, Validationf("db", "missing"))
		return
	}
	if !s.hasDB(db) {
		s.rejected.Add(1)
		WriteError(w, Validationf("db", "unknown database %q", db))
		return
	}
	from := uint64(0)
	if f := q.Get("from"); f != "" {
		n, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			s.rejected.Add(1)
			WriteError(w, Validationf("from", "malformed cursor %q", f))
			return
		}
		from = n
	}
	resp := deltaLogResponse{
		DB:      db,
		Seq:     s.reg.Seq(db),
		Epoch:   s.reg.EpochHighWater(db),
		Records: encodeRecords(s.reg.RecordsSince(db, from)),
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// handleSync catches this node up with a peer bidirectionally: pull the
// peer's records past our high-water mark and commit them locally, then
// push back our tail past the peer's mark. After a successful sync both
// copies hold the same contiguous record prefix — the invariant the
// coordinator needs before routing mutations at a rejoined node.
func (s *Server) handleSync(w http.ResponseWriter, r *http.Request) {
	if s.cfg.NodeID != "" {
		w.Header().Set("X-Ptserve-Node", s.cfg.NodeID)
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.adm.Draining() {
		s.rejected.Add(1)
		WriteError(w, ErrDraining)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req syncRequest
	if err := dec.Decode(&req); err != nil {
		s.rejected.Add(1)
		WriteError(w, Validationf("body", "%v", err))
		return
	}
	if req.DB == "" || req.Peer == "" {
		s.rejected.Add(1)
		WriteError(w, Validationf("sync", "db and peer are required"))
		return
	}
	if !s.hasDB(req.DB) {
		s.rejected.Add(1)
		WriteError(w, Validationf("db", "unknown database %q", req.DB))
		return
	}
	pulled, pushed, err := s.syncWith(r.Context(), req.DB, req.Peer)
	if err != nil {
		s.rejected.Add(1)
		WriteError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(syncResponse{
		DB: req.DB, Pulled: pulled, Pushed: pushed, Seq: s.reg.Seq(req.DB),
	})
}

// syncWith runs one pull+push round against peer. HTTP happens OUTSIDE
// liveMu (applyRecords takes it per batch) — same lock discipline as
// replicateOut.
func (s *Server) syncWith(ctx context.Context, db, peer string) (pulled, pushed int, err error) {
	have := s.reg.Seq(db)
	u := fmt.Sprintf("%s/deltalog?db=%s&from=%d", strings.TrimSuffix(peer, "/"), db, have)
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, 0, Validationf("peer", "%v", err)
	}
	hresp, err := s.cfg.ReplicateClient.Do(hreq)
	if err != nil {
		return 0, 0, fmt.Errorf("serve: sync pull from %s: %w", peer, err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("serve: sync pull from %s: status %d", peer, hresp.StatusCode)
	}
	var tail deltaLogResponse
	if err := json.NewDecoder(hresp.Body).Decode(&tail); err != nil {
		return 0, 0, fmt.Errorf("serve: sync pull from %s: %w", peer, err)
	}
	pulled, _, _, err = s.applyRecords(db, tail.Records)
	if err != nil {
		return pulled, 0, err
	}
	// Push back anything the peer lacks (it answered with its seq mark).
	ours := s.reg.RecordsSince(db, tail.Seq)
	if len(ours) == 0 {
		return pulled, 0, nil
	}
	resp, err := s.pushRecords(ctx, peer, db, ours)
	if err != nil {
		return pulled, 0, err
	}
	if resp.Gap {
		resp, err = s.pushRecords(ctx, peer, db, s.reg.RecordsSince(db, resp.Have))
		if err != nil {
			return pulled, 0, err
		}
	}
	return pulled, resp.Applied, nil
}

// pushRecords POSTs a record batch to peer's /replicate and decodes the
// receiver's state.
func (s *Server) pushRecords(ctx context.Context, peer, db string, recs []DeltaRecord) (*replicateResponse, error) {
	payload, err := json.Marshal(replicateRequest{DB: db, Records: encodeRecords(recs)})
	if err != nil {
		return nil, err
	}
	u := strings.TrimSuffix(peer, "/") + "/replicate"
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := s.cfg.ReplicateClient.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("serve: replicate to %s: %w", peer, err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: replicate to %s: status %d", peer, hresp.StatusCode)
	}
	var resp replicateResponse
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("serve: replicate to %s: %w", peer, err)
	}
	return &resp, nil
}

// replicateOut pushes a freshly committed record (seq) to every named
// replica synchronously, repairing holes via the gap protocol: a
// receiver that is behind answers with its high-water mark and the
// sender resends the tail from there. A replica counts as confirmed
// only when its mark reaches seq. Runs AFTER liveMu is released —
// never hold a local lock across a peer round-trip.
//
// Each replica sits behind a circuit breaker: once a replica fails
// Threshold consecutive pushes (a partition, not just a crash), new
// mutations fail it FAST instead of each paying the replication
// timeout — the ack is still withheld, so safety is untouched; only
// the latency of learning "this replica is gone" changes. The breaker
// re-admits the replica through its half-open probe schedule.
func (s *Server) replicateOut(ctx context.Context, db string, seq uint64, replicas []replica) (ok int, failed []string) {
	for _, rep := range replicas {
		if !s.repBreakers.Allow(rep.id) {
			failed = append(failed, rep.id)
			continue
		}
		resp, err := s.pushRecords(ctx, rep.url, db, s.reg.RecordsSince(db, seq-1))
		if err == nil && resp.Gap {
			resp, err = s.pushRecords(ctx, rep.url, db, s.reg.RecordsSince(db, resp.Have))
		}
		if err != nil || resp.Have < seq {
			s.repBreakers.Failure(rep.id)
			failed = append(failed, rep.id)
			continue
		}
		s.repBreakers.Success(rep.id)
		ok++
	}
	return ok, failed
}
