package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"
)

// stormSeeds is the acceptance-criterion batch: 100+ seeded requests
// against the real example specs, every one ending in golden bytes or a
// typed error, followed by a clean drain with zero goroutine leaks.
// Under the race detector the batch shrinks (coverage is per-shape, not
// per-seed; the CI serve-smoke job runs exactly this reduced batch).
func stormSeeds() int {
	if raceEnabled {
		return 48
	}
	return 120
}

// stormCase is one seeded request, derived from its seed alone so a CI
// failure replays locally with the same number.
type stormCase struct {
	Seed      int64   `json:"seed"`
	Spec      string  `json:"spec"`
	Canonical bool    `json:"canonical"`
	Retries   int     `json:"retries"`
	MaxNodes  int     `json:"max_nodes,omitempty"` // 0 = server default
	QueryP    float64 `json:"query_p"`             // injected query fault rate
	TimeoutMS int64   `json:"timeout_ms"`
}

func newStormCase(seed int64) stormCase {
	rng := rand.New(rand.NewSource(seed))
	c := stormCase{
		Seed:      seed,
		Spec:      []string{"tau1", "tau2v"}[rng.Intn(2)],
		Canonical: rng.Intn(2) == 0,
		Retries:   rng.Intn(3),
		TimeoutMS: 2000,
	}
	// A third of the cases inject query faults (sometimes hot enough to
	// exhaust the retries), a sixth carry a starvation node budget.
	switch rng.Intn(6) {
	case 0, 1:
		c.QueryP = []float64{0.1, 0.3, 0.9}[rng.Intn(3)]
	case 2:
		c.MaxNodes = 1 + rng.Intn(3)
	}
	return c
}

func (c stormCase) body() string {
	req := map[string]any{
		"spec":      c.Spec,
		"db":        "registrar",
		"canonical": c.Canonical,
		"retries":   c.Retries,
		"limits":    map[string]any{"timeout_ms": c.TimeoutMS, "max_nodes": c.MaxNodes},
	}
	if c.QueryP > 0 {
		req["inject"] = map[string]any{"seed": c.Seed, "probs": map[string]float64{"query": c.QueryP}}
	}
	b, _ := json.Marshal(req)
	return string(b)
}

// dumpStormArtifact ships a violating case to CHAOS_ARTIFACT_DIR so the
// CI failure report carries the replayable scenario.
func dumpStormArtifact(t *testing.T, c stormCase, violation string) {
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifact dir: %v", err)
		return
	}
	desc := fmt.Sprintf("case=%+v\nrequest=%s\nviolation=%s\n", c, c.body(), violation)
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("storm-%d.txt", c.Seed)), []byte(desc), 0o644); err != nil {
		t.Logf("artifact write: %v", err)
	}
}

// TestServeStorm is the server-level chaos harness: a seeded request
// storm (mixed specs, renderings, budgets, fault rates, supervised
// retries) against an in-process server, asserting for every request
// golden-bytes-or-typed-error and, at the end, a clean drain within its
// deadline and no leaked goroutines.
func TestServeStorm(t *testing.T) {
	base := runtime.NumGoroutine()
	reg := NewRegistry()
	if err := reg.LoadDir("../../examples/specs"); err != nil {
		t.Fatalf("loading example specs: %v", err)
	}
	s, err := New(Config{
		Registry:    reg,
		Workers:     4,
		Queue:       8,
		AllowInject: true,
		DrainGrace:  2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	// Goldens straight from the engine, once per (spec, rendering).
	golden := map[string][]byte{}
	for _, spec := range []string{"tau1", "tau2v"} {
		src, err := os.ReadFile(filepath.Join("../../examples/specs", spec+".pt"))
		if err != nil {
			t.Fatal(err)
		}
		db, err := os.ReadFile("../../examples/specs/registrar.db")
		if err != nil {
			t.Fatal(err)
		}
		golden[spec+"/xml"] = goldenXML(t, string(src), string(db), false)
		golden[spec+"/canonical"] = goldenXML(t, string(src), string(db), true)
	}

	type tally struct {
		ok, budget, transient, canceled, overloaded int
	}
	var mu sync.Mutex
	var tl tally
	var wg sync.WaitGroup
	client := ts.Client()
	sem := make(chan struct{}, 12) // storm width: keeps the queue busy
	for seed := int64(1); seed <= int64(stormSeeds()); seed++ {
		c := newStormCase(seed)
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			resp, err := client.Post(ts.URL+"/publish", "application/json", bytes.NewReader([]byte(c.body())))
			if err != nil {
				dumpStormArtifact(t, c, err.Error())
				t.Errorf("seed %d: transport error: %v", c.Seed, err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				t.Errorf("seed %d: reading body: %v", c.Seed, err)
				return
			}
			body := buf.Bytes()
			mu.Lock()
			defer mu.Unlock()
			if resp.StatusCode == http.StatusOK {
				key := c.Spec + "/xml"
				if c.Canonical {
					key = c.Spec + "/canonical"
				}
				if !bytes.Equal(body, golden[key]) {
					dumpStormArtifact(t, c, "200 body differs from golden")
					t.Errorf("seed %d: served bytes differ from golden %s", c.Seed, key)
				}
				tl.ok++
				return
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil {
				dumpStormArtifact(t, c, "untyped error body")
				t.Errorf("seed %d: non-JSON error body (status %d): %s", c.Seed, resp.StatusCode, body)
				return
			}
			want, known := StatusForKind(eb.Error.Kind)
			if !known || want != resp.StatusCode {
				dumpStormArtifact(t, c, "kind/status mismatch")
				t.Errorf("seed %d: kind %q with status %d (pinned %d)", c.Seed, eb.Error.Kind, resp.StatusCode, want)
				return
			}
			switch eb.Error.Kind {
			case KindBudget:
				tl.budget++
			case KindTransient:
				tl.transient++
			case KindCanceled:
				tl.canceled++
			case KindOverloaded:
				tl.overloaded++
			default:
				dumpStormArtifact(t, c, "unexpected error kind")
				t.Errorf("seed %d: unexpected kind %q: %s", c.Seed, eb.Error.Kind, body)
			}
		}()
	}
	wg.Wait()

	// Clean drain within its deadline, then nothing left running.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("post-storm drain: %v", err)
	}
	settle(t, ts, base)

	t.Logf("storm: %d ok, %d budget, %d transient, %d canceled, %d overloaded",
		tl.ok, tl.budget, tl.transient, tl.canceled, tl.overloaded)
	// The case distribution is tuned so success, budget exhaustion and
	// injected-fault failure all occur — a storm that never reaches one
	// of those states has lost its coverage.
	if tl.ok == 0 {
		t.Error("no storm request succeeded; fault rates too hot")
	}
	if tl.budget == 0 {
		t.Error("no storm request tripped a budget; starvation cases missing")
	}
	if tl.transient == 0 {
		t.Error("no storm request failed transiently; injection not reaching the run")
	}
}

// TestStormDrainUnderLoad fires a storm and drains MID-flight: every
// response must still be golden bytes or a typed error (draining and
// canceled now included), and the drain must finish inside deadline +
// grace even though requests are being actively refused.
func TestStormDrainUnderLoad(t *testing.T) {
	base := runtime.NumGoroutine()
	reg := NewRegistry()
	if err := reg.LoadDir("../../examples/specs"); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Registry: reg, Workers: 2, Queue: 4, AllowInject: true, DrainGrace: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	client := ts.Client()

	var wg sync.WaitGroup
	var mu sync.Mutex
	kinds := map[string]int{}
	n := 24
	if raceEnabled {
		n = 12
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := `{"spec":"tau1","db":"registrar"}`
			resp, err := client.Post(ts.URL+"/publish", "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				t.Errorf("req %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			_, _ = buf.ReadFrom(resp.Body)
			mu.Lock()
			defer mu.Unlock()
			if resp.StatusCode == http.StatusOK {
				kinds["ok"]++
				return
			}
			var eb errorBody
			if err := json.Unmarshal(buf.Bytes(), &eb); err != nil {
				t.Errorf("req %d: untyped error (status %d): %s", i, resp.StatusCode, buf.Bytes())
				return
			}
			if want, known := StatusForKind(eb.Error.Kind); !known || want != resp.StatusCode {
				t.Errorf("req %d: kind %q with status %d", i, eb.Error.Kind, resp.StatusCode)
				return
			}
			kinds[eb.Error.Kind]++
		}(i)
	}
	// Let some requests in, then pull the plug while others are queued.
	time.Sleep(5 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("mid-storm drain: %v", err)
	}
	if d := time.Since(start); d > 7*time.Second {
		t.Fatalf("drain took %v, beyond deadline+grace", d)
	}
	wg.Wait()
	settle(t, ts, base)
	t.Logf("mid-drain storm outcomes: %v", kinds)
}
