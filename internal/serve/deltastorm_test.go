// The delta storm: concurrent /publish, /mutate and /watch traffic
// toggling a single course tuple. The coherence invariant is binary —
// with exactly one tuple ever mutated, every successful publish must be
// byte-identical to the pre-delta OR the post-delta golden, never a
// torn in-between — and the server must drain cleanly mid-mutation with
// zero leaked goroutines.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"
)

// deltaStormCase is one seeded actor: a publisher, a mutator, or a
// watcher, derived from the seed alone.
type deltaStormCase struct {
	Seed      int64  `json:"seed"`
	Role      string `json:"role"` // publish | mutate | watch
	Canonical bool   `json:"canonical"`
	WaitMS    int64  `json:"wait_ms"`
}

func newDeltaStormCase(seed int64) deltaStormCase {
	rng := rand.New(rand.NewSource(seed))
	c := deltaStormCase{
		Seed:      seed,
		Role:      []string{"publish", "publish", "mutate", "watch"}[rng.Intn(4)],
		Canonical: rng.Intn(2) == 0,
		WaitMS:    int64(rng.Intn(40)),
	}
	return c
}

func dumpDeltaStormArtifact(t *testing.T, c deltaStormCase, violation string) {
	t.Helper()
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifact dir: %v", err)
		return
	}
	desc := fmt.Sprintf("case=%+v\nviolation=%s\n", c, violation)
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("deltastorm-%d.txt", c.Seed)), []byte(desc), 0o644); err != nil {
		t.Logf("artifact write: %v", err)
	}
}

// TestDeltaStorm is the live-view chaos harness: seeded concurrent
// publishers, mutators and watchers over one toggled tuple, every
// publish response golden-pre or golden-post, every watch response
// well-formed with monotone versions, then a clean drain and settled
// goroutines.
func TestDeltaStorm(t *testing.T) {
	base := runtime.NumGoroutine()
	s, ts := newMutateServer(t)
	client := ts.Client()
	spec, db := exampleSources(t)
	goldens := map[string][][]byte{
		"canonical": {goldenXML(t, spec, db, true), goldenXML(t, spec, withStormTuple(db), true)},
		"xml":       {goldenXML(t, spec, db, false), goldenXML(t, spec, withStormTuple(db), false)},
	}

	// Prime the live view so watchers and mutators race over a shared
	// tree from the first seed on.
	var prime watchResponse
	if code := getJSON(t, client, ts.URL+"/watch?spec=tau1&db=registrar", &prime); code != http.StatusOK {
		t.Fatalf("prime watch: %d", code)
	}

	type tally struct {
		published, preGolden, postGolden, mutated, effective, watched, shed int
	}
	var mu sync.Mutex
	var tl tally
	var wg sync.WaitGroup
	sem := make(chan struct{}, 12)
	// The mutator's toggle direction alternates globally so the tuple
	// flips state throughout the storm rather than saturating.
	var toggle sync.Mutex
	present := false

	for seed := int64(1); seed <= int64(stormSeeds()); seed++ {
		c := newDeltaStormCase(seed)
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			switch c.Role {
			case "publish":
				body := fmt.Sprintf(`{"spec":"tau1","db":"registrar","canonical":%v}`, c.Canonical)
				resp, got := postJSON(t, client, ts.URL+"/publish", body)
				mu.Lock()
				defer mu.Unlock()
				if resp.StatusCode != http.StatusOK {
					var eb errorBody
					if err := json.Unmarshal(got, &eb); err != nil {
						dumpDeltaStormArtifact(t, c, "untyped publish error")
						t.Errorf("seed %d: untyped error (status %d): %s", c.Seed, resp.StatusCode, got)
						return
					}
					if eb.Error.Kind == KindOverloaded {
						tl.shed++
					}
					return
				}
				tl.published++
				key := "xml"
				if c.Canonical {
					key = "canonical"
				}
				switch {
				case bytes.Equal(got, goldens[key][0]):
					tl.preGolden++
				case bytes.Equal(got, goldens[key][1]):
					tl.postGolden++
				default:
					dumpDeltaStormArtifact(t, c, "publish bytes are neither pre- nor post-delta golden")
					t.Errorf("seed %d: torn publish: %d bytes match neither golden", c.Seed, len(got))
				}
			case "mutate":
				toggle.Lock()
				op := "insert"
				if present {
					op = "delete"
				}
				present = !present
				toggle.Unlock()
				resp, got := postJSON(t, client, ts.URL+"/mutate", mutateBody(op))
				mu.Lock()
				defer mu.Unlock()
				if resp.StatusCode != http.StatusOK {
					dumpDeltaStormArtifact(t, c, "mutate failed")
					t.Errorf("seed %d: mutate %s: status %d: %s", c.Seed, op, resp.StatusCode, got)
					return
				}
				var mr mutateResponse
				if err := json.Unmarshal(got, &mr); err != nil {
					t.Errorf("seed %d: mutate response: %v", c.Seed, err)
					return
				}
				tl.mutated++
				for _, v := range mr.Views {
					if v.Error != "" {
						dumpDeltaStormArtifact(t, c, "view repair failed: "+v.Error)
						t.Errorf("seed %d: view %s repair failed: %s", c.Seed, v.Spec, v.Error)
					}
					if v.Report != nil && v.Report.Effective > 0 {
						tl.effective++
					}
				}
			case "watch":
				url := fmt.Sprintf("%s/watch?spec=tau1&db=registrar&after=1&wait_ms=%d", ts.URL, c.WaitMS)
				var wr watchResponse
				code := getJSON(t, client, url, &wr)
				mu.Lock()
				defer mu.Unlock()
				if code != http.StatusOK {
					dumpDeltaStormArtifact(t, c, fmt.Sprintf("watch status %d", code))
					t.Errorf("seed %d: watch status %d", c.Seed, code)
					return
				}
				tl.watched++
				last := uint64(1)
				for _, rep := range wr.Changes {
					if rep.Version <= last {
						dumpDeltaStormArtifact(t, c, "non-monotone change versions")
						t.Errorf("seed %d: change versions not strictly increasing", c.Seed)
						return
					}
					last = rep.Version
				}
				if last > wr.Version {
					t.Errorf("seed %d: change version %d beyond view version %d", c.Seed, last, wr.Version)
				}
			}
		}()
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("post-storm drain: %v", err)
	}
	settle(t, ts, base)

	t.Logf("delta storm: %d published (%d pre, %d post), %d mutated (%d effective), %d watched, %d shed",
		tl.published, tl.preGolden, tl.postGolden, tl.mutated, tl.effective, tl.watched, tl.shed)
	if tl.published == 0 || tl.mutated == 0 || tl.watched == 0 {
		t.Error("storm lost coverage: a role never ran")
	}
	if tl.effective == 0 {
		t.Error("no mutation was effective; the toggle never moved")
	}
	if tl.preGolden == 0 && tl.postGolden == 0 {
		t.Error("no publish landed on either golden")
	}
}

// TestDeltaStormDrainMidMutation pulls the plug while mutations and
// long-poll watchers are in flight: every response is still golden
// bytes, a well-formed watch reply, or a typed error; parked watchers
// are released by the drain; and nothing leaks.
func TestDeltaStormDrainMidMutation(t *testing.T) {
	base := runtime.NumGoroutine()
	s, ts := newMutateServer(t)
	client := ts.Client()
	spec, db := exampleSources(t)
	goldens := [][]byte{goldenXML(t, spec, db, true), goldenXML(t, spec, withStormTuple(db), true)}

	var prime watchResponse
	if code := getJSON(t, client, ts.URL+"/watch?spec=tau1&db=registrar", &prime); code != http.StatusOK {
		t.Fatalf("prime watch: %d", code)
	}

	n := 24
	if raceEnabled {
		n = 12
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	outcomes := map[string]int{}
	record := func(k string) {
		mu.Lock()
		outcomes[k]++
		mu.Unlock()
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 3 {
			case 0:
				resp, got := postJSON(t, client, ts.URL+"/publish", `{"spec":"tau1","db":"registrar","canonical":true}`)
				if resp.StatusCode != http.StatusOK {
					var eb errorBody
					if err := json.Unmarshal(got, &eb); err != nil {
						t.Errorf("req %d: untyped publish error: %s", i, got)
						return
					}
					record("publish:" + eb.Error.Kind)
					return
				}
				if !bytes.Equal(got, goldens[0]) && !bytes.Equal(got, goldens[1]) {
					t.Errorf("req %d: torn publish during drain", i)
					return
				}
				record("publish:ok")
			case 1:
				op := "insert"
				if i%2 == 0 {
					op = "delete"
				}
				resp, got := postJSON(t, client, ts.URL+"/mutate", mutateBody(op))
				if resp.StatusCode != http.StatusOK {
					var eb errorBody
					if err := json.Unmarshal(got, &eb); err != nil {
						t.Errorf("req %d: untyped mutate error: %s", i, got)
						return
					}
					record("mutate:" + eb.Error.Kind)
					return
				}
				record("mutate:ok")
			case 2:
				// Long waits: these watchers are parked when the drain
				// lands and must be released by it, not leak past it.
				var wr watchResponse
				code := getJSON(t, client, ts.URL+"/watch?spec=tau1&db=registrar&after=99999&wait_ms=30000", &wr)
				record(fmt.Sprintf("watch:%d", code))
			}
		}(i)
	}

	time.Sleep(5 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("mid-mutation drain: %v", err)
	}
	if d := time.Since(start); d > 7*time.Second {
		t.Fatalf("drain took %v, beyond deadline+grace", d)
	}
	wg.Wait()
	settle(t, ts, base)
	t.Logf("mid-mutation drain outcomes: %v", outcomes)
}
