//go:build !race

package serve

// raceEnabled mirrors the -race build tag so the request storm can
// scale its seed count down: the detector multiplies the runtime
// roughly tenfold without adding coverage beyond what a smaller batch
// already exercises.
const raceEnabled = false
