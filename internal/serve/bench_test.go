package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"
)

// BenchmarkServeThroughput drives the full HTTP publish path (decode,
// validate, admit, dedup, run, stream) at a fixed client concurrency
// against the example specs, reporting requests/second and p99 latency.
// The CI bench-serve job pins these numbers into BENCH_pr5.json.
func BenchmarkServeThroughput(b *testing.B) {
	const concurrency = 8
	for _, spec := range []string{"tau1", "tau2v"} {
		b.Run(spec, func(b *testing.B) {
			reg := NewRegistry()
			if err := reg.LoadDir("../../examples/specs"); err != nil {
				b.Fatalf("loading example specs: %v", err)
			}
			s, err := New(Config{Registry: reg, Workers: concurrency, Queue: 4 * concurrency})
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			defer s.Close()
			client := ts.Client()
			client.Transport.(*http.Transport).MaxIdleConnsPerHost = concurrency
			body := []byte(fmt.Sprintf(`{"spec":%q,"db":"registrar"}`, spec))

			// Warm the pair cache and the memo so the benchmark measures
			// the steady-state serving path, not the first parse.
			resp, err := client.Post(ts.URL+"/publish", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("warmup status %d", resp.StatusCode)
			}

			var mu sync.Mutex
			latencies := make([]time.Duration, 0, b.N)
			work := make(chan struct{})
			var wg sync.WaitGroup
			for i := 0; i < concurrency; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for range work {
						start := time.Now()
						resp, err := client.Post(ts.URL+"/publish", "application/json", bytes.NewReader(body))
						if err != nil {
							b.Errorf("post: %v", err)
							continue
						}
						var sink bytes.Buffer
						_, _ = sink.ReadFrom(resp.Body)
						resp.Body.Close()
						d := time.Since(start)
						if resp.StatusCode != http.StatusOK {
							b.Errorf("status %d: %s", resp.StatusCode, sink.Bytes())
							continue
						}
						mu.Lock()
						latencies = append(latencies, d)
						mu.Unlock()
					}
				}()
			}

			b.ResetTimer()
			wall := time.Now()
			for i := 0; i < b.N; i++ {
				work <- struct{}{}
			}
			close(work)
			wg.Wait()
			elapsed := time.Since(wall)
			b.StopTimer()

			if len(latencies) > 0 {
				sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
				p99 := latencies[len(latencies)*99/100]
				b.ReportMetric(float64(len(latencies))/elapsed.Seconds(), "req/s")
				b.ReportMetric(float64(p99.Microseconds())/1000, "p99-ms")
			}
		})
	}
}
