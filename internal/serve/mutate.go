// Live views under mutation: POST /mutate applies a delta to a
// registered database and incrementally repairs every live view over
// it; GET /watch exposes the resulting change feed as a long-poll or an
// SSE stream. The coherence contract is before-or-after, never torn:
// publishes resolve an immutable (instance, memo) pair (swapped whole
// by Registry.MutateDB), views repair under their own write lock, and
// watchers only ever see committed repair reports.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ptx/internal/incr"
	"ptx/internal/pt"
	"ptx/internal/relation"
	"ptx/internal/runctl"
)

// liveView pairs a spec name with the incr.View maintaining its tree.
// The view owns a cloned instance; repairs are serialized by the
// server's liveMu, so mutation order IS the version order watchers see.
// inst shadows the view's relational state so a log supersede (see
// Registry.ApplyAt) can diff it against the reconciled history and
// repair the view with one compensating delta.
type liveView struct {
	spec string
	db   string
	view *incr.View
	inst *relation.Instance
}

// mutateRequest is the wire schema of POST /mutate. Unknown fields are
// rejected, like /publish.
type mutateRequest struct {
	Spec string     `json:"spec"`
	DB   string     `json:"db"`
	Ops  []mutateOp `json:"ops"`
}

type mutateOp struct {
	Op    string   `json:"op"` // "insert" or "delete"
	Rel   string   `json:"rel"`
	Tuple []string `json:"tuple"`
}

// mutateResponse reports what one mutation did: the sequence number the
// delta committed at, the registry refresh, one repair report per live
// view over the database, and (when the request named replicas) how
// many of them confirmed the delta before the ack.
type mutateResponse struct {
	DB           string       `json:"db"`
	Seq          uint64       `json:"seq"`
	Delta        string       `json:"delta"`
	PairsDropped int          `json:"pairs_dropped"`
	Replicated   int          `json:"replicated,omitempty"`
	Views        []viewRepair `json:"views"`
}

type viewRepair struct {
	Spec   string       `json:"spec"`
	Report *incr.Report `json:"report,omitempty"`
	Error  string       `json:"error,omitempty"` // repair failed; the view self-heals on the next apply
}

// decodeDelta validates the wire ops into a relation.Delta (schema
// validation happens against the caller's spec in handleMutate).
func decodeDelta(ops []mutateOp) (*relation.Delta, error) {
	if len(ops) == 0 {
		return nil, Validationf("ops", "empty delta")
	}
	d := &relation.Delta{}
	for i, op := range ops {
		if op.Rel == "" {
			return nil, Validationf("ops", "op %d: empty relation name", i)
		}
		switch op.Op {
		case "insert":
			d.Insert(op.Rel, op.Tuple...)
		case "delete":
			d.Delete(op.Rel, op.Tuple...)
		default:
			return nil, Validationf("ops", "op %d: unknown op %q (want insert or delete)", i, op.Op)
		}
	}
	return d, nil
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if s.cfg.NodeID != "" {
		w.Header().Set("X-Ptserve-Node", s.cfg.NodeID)
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.adm.Draining() {
		s.rejected.Add(1)
		WriteError(w, ErrDraining)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req mutateRequest
	if err := dec.Decode(&req); err != nil {
		s.rejected.Add(1)
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			WriteError(w, mbe)
			return
		}
		WriteError(w, Validationf("body", "%v", err))
		return
	}
	if req.Spec == "" {
		s.rejected.Add(1)
		WriteError(w, Validationf("spec", "missing"))
		return
	}
	if req.DB == "" {
		s.rejected.Add(1)
		WriteError(w, Validationf("db", "missing"))
		return
	}
	d, err := decodeDelta(req.Ops)
	if err != nil {
		s.rejected.Add(1)
		WriteError(w, err)
		return
	}
	// The caller's spec anchors schema validation, so a bad delta is a
	// typed 400 naming the violation before anything is touched.
	tr, err := s.reg.Spec(req.Spec)
	if err != nil {
		s.rejected.Add(1)
		WriteError(w, err)
		return
	}
	if verr := d.Validate(tr.Schema); verr != nil {
		s.rejected.Add(1)
		WriteError(w, Validationf("ops", "%v", verr))
		return
	}
	// Cluster headers: the ownership epoch fencing this write (0 when
	// absent — standalone servers bypass fencing) and the successor set
	// the delta must reach before the ack.
	epoch := uint64(0)
	if e := r.Header.Get(HeaderEpoch); e != "" {
		n, perr := strconv.ParseUint(e, 10, 64)
		if perr != nil {
			s.rejected.Add(1)
			WriteError(w, Validationf("epoch", "malformed %s header %q", HeaderEpoch, e))
			return
		}
		epoch = n
	}
	replicas, err := parseReplicas(r.Header.Get(HeaderReplicas))
	if err != nil {
		s.rejected.Add(1)
		WriteError(w, err)
		return
	}
	// Deadline propagation: the replication fan-out below must finish
	// inside the budget the coordinator forwarded, not inside the
	// replication client's own flat timeout.
	repCtx := r.Context()
	if budget, ok, derr := ParseDeadline(r.Header); derr != nil {
		s.rejected.Add(1)
		WriteError(w, derr)
		return
	} else if ok {
		var cancel context.CancelFunc
		repCtx, cancel = context.WithTimeout(repCtx, budget)
		defer cancel()
	}

	resp, err := s.mutate(req.DB, d, epoch)
	if err != nil {
		s.rejected.Add(1)
		WriteError(w, err)
		return
	}
	// Synchronous replication happens AFTER the local commit released
	// liveMu (holding a lock across peer HTTP would let two owners
	// deadlock each other) and BEFORE the ack: when the client hears 200
	// the delta is durable here and on EVERY named successor. A replica
	// that fails to confirm withholds the ack entirely — acknowledging a
	// solo commit would let this node die as the record's only holder
	// while a successor reuses its sequence number, which is exactly the
	// silent loss the protocol exists to prevent. The commit itself
	// stands (at-least-once); the client's retry re-replicates it.
	var failed []string
	if len(replicas) > 0 {
		resp.Replicated, failed = s.replicateOut(repCtx, req.DB, resp.Seq, replicas)
		if len(failed) > 0 {
			w.Header().Set(HeaderReplicaFailed, strings.Join(failed, ","))
			s.rejected.Add(1)
			WriteError(w, runctl.Transient(fmt.Errorf(
				"serve: delta %s/%d is durable locally but unconfirmed on %d of %d replicas; retry to re-replicate",
				req.DB, resp.Seq, len(failed), len(replicas))))
			return
		}
	}
	// Crash point 3: the delta is durable and applied, the client has
	// not heard yet. A crash here is the at-least-once window — the
	// client retries, the set-semantics delta makes the retry a no-op.
	if err := s.cfg.MutateFaults.Check(runctl.OpMutateAck); err != nil {
		s.rejected.Add(1)
		WriteError(w, err)
		return
	}
	s.mutated.Add(1)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// mutate is the serialized mutation path: liveMu makes (registry swap,
// view repairs) atomic with respect to view creation, so a view can
// never be born pre-delta yet miss the repair pass. The registry commit
// inside is durable-first — when MutateDB returns nil the delta is
// already fsynced to the WAL (if one is attached).
func (s *Server) mutate(db string, d *relation.Delta, epoch uint64) (*mutateResponse, error) {
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	dropped, seq, err := s.reg.MutateDB(db, d, epoch)
	if err != nil {
		return nil, err
	}
	resp := &mutateResponse{DB: db, Seq: seq, Delta: d.String(), PairsDropped: dropped, Views: []viewRepair{}}
	resp.Views = s.repairViews(db, d)
	return resp, nil
}

// repairViews applies d to every live view over db and returns the
// per-view reports. Caller holds liveMu.
func (s *Server) repairViews(db string, d *relation.Delta) []viewRepair {
	views := []viewRepair{}
	for _, lv := range s.views {
		if lv.db != db {
			continue
		}
		vr := viewRepair{Spec: lv.spec}
		// A spec whose vocabulary rejects the delta is untouched by it
		// (the registry replay skips it for the same reason).
		if lv.view != nil {
			if verr := d.Validate(s.viewSchema(lv)); verr != nil {
				views = append(views, vr)
				continue
			}
			rep, aerr := lv.view.Apply(s.baseCtx, d)
			if aerr != nil {
				s.failed.Add(1)
				vr.Error = aerr.Error()
			} else {
				s.repaired.Add(1)
				vr.Report = rep
			}
			if lv.inst != nil {
				_, _ = lv.inst.Apply(d)
			}
		}
		views = append(views, vr)
	}
	return views
}

func (s *Server) viewSchema(lv *liveView) *relation.Schema {
	tr, err := s.reg.Spec(lv.spec)
	if err != nil {
		return relation.NewSchema() // spec vanished: validate against nothing
	}
	return tr.Schema
}

// liveViewFor returns the live view for (spec, db), creating it on
// first use from the registry's CURRENT pair state. Creation runs under
// liveMu: a concurrent mutation either precedes it (the pair replay
// already carries the delta) or follows it (the repair pass covers this
// view) — no window where a fresh view silently misses a delta.
func (s *Server) liveViewFor(spec, db string) (*liveView, error) {
	key := spec + "\x00" + db
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	if lv, ok := s.views[key]; ok {
		return lv, nil
	}
	tr, inst, _, err := s.reg.Pair(spec, db)
	if err != nil {
		return nil, err
	}
	maxNodes := s.cfg.DefaultMaxNodes
	if maxNodes < 0 {
		maxNodes = 0
	}
	v, err := incr.NewView(s.baseCtx, tr, inst.Clone(), incr.Options{
		Run: pt.Options{MaxNodes: maxNodes},
	})
	if err != nil {
		return nil, err
	}
	lv := &liveView{spec: spec, db: db, view: v, inst: inst.Clone()}
	s.views[key] = lv
	return lv, nil
}

// resyncViews reconciles every live view over db with the registry's
// delta log after a supersede rewrote its tail: the view applied deltas
// that are no longer history, so the per-delta repair stream can't get
// it there. Each view's shadow instance is diffed against a fresh
// replay of the reconciled log and the difference is applied as ONE
// compensating delta — watchers see a single coherent repair, never a
// torn intermediate. Caller holds liveMu.
func (s *Server) resyncViews(db string) {
	for _, lv := range s.views {
		if lv.db != db || lv.view == nil || lv.inst == nil {
			continue
		}
		target, err := s.reg.replayInstance(lv.spec, db, s.reg.DeltaRecords(db))
		if err != nil {
			s.failed.Add(1)
			continue
		}
		comp := diffDelta(lv.inst, target)
		if comp.Empty() {
			continue
		}
		if _, aerr := lv.view.Apply(s.baseCtx, comp); aerr != nil {
			s.failed.Add(1)
			continue
		}
		_, _ = lv.inst.Apply(comp)
		s.repaired.Add(1)
	}
}

// diffDelta returns the delta transforming instance old into target:
// deletes for tuples old holds that target lacks, inserts for the
// reverse. Relations are compared across both schemas' vocabularies
// (a name absent from one side reads as empty).
func diffDelta(old, target *relation.Instance) *relation.Delta {
	d := &relation.Delta{}
	names := map[string]bool{}
	for _, n := range old.Schema().Names() {
		names[n] = true
	}
	for _, n := range target.Schema().Names() {
		names[n] = true
	}
	for n := range names {
		var or, tr *relation.Relation
		if old.Has(n) {
			or = old.Rel(n)
		}
		if target.Has(n) {
			tr = target.Rel(n)
		}
		if or != nil {
			for _, t := range or.Sorted() {
				if tr == nil || !tr.Contains(t) {
					d.Ops = append(d.Ops, relation.DeltaOp{Rel: n, Tuple: t})
				}
			}
		}
		if tr != nil {
			for _, t := range tr.Sorted() {
				if or == nil || !or.Contains(t) {
					d.Ops = append(d.Ops, relation.DeltaOp{Insert: true, Rel: n, Tuple: t})
				}
			}
		}
	}
	return d
}

// watchResponse is the long-poll reply: the view's current version, the
// missed-history flag (resync with a fresh /publish when true), and the
// change reports after the client's cursor.
type watchResponse struct {
	Spec    string         `json:"spec"`
	DB      string         `json:"db"`
	Version uint64         `json:"version"`
	Resync  bool           `json:"resync,omitempty"`
	Changes []*incr.Report `json:"changes"`
}

// handleWatch serves the change feed for one (spec, db) live view.
//
//	GET /watch?spec=S&db=D&after=N&wait_ms=M      → long-poll JSON
//	GET /watch?spec=S&db=D&after=N  (Accept: text/event-stream) → SSE
//
// after is the client's version cursor (0 = everything buffered);
// wait_ms long-polls until a change lands past the cursor, the wait
// clamp expires, or the server drains. The SSE stream emits one
// `change` event per repair report (data: the report JSON) and a
// `resync` event when the client's cursor fell off the history ring.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	if s.cfg.NodeID != "" {
		w.Header().Set("X-Ptserve-Node", s.cfg.NodeID)
	}
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if s.adm.Draining() {
		s.rejected.Add(1)
		WriteError(w, ErrDraining)
		return
	}
	q := r.URL.Query()
	spec, db := q.Get("spec"), q.Get("db")
	if spec == "" || db == "" {
		s.rejected.Add(1)
		WriteError(w, Validationf("watch", "spec and db query parameters are required"))
		return
	}
	after := uint64(0)
	if a := q.Get("after"); a != "" {
		n, err := strconv.ParseUint(a, 10, 64)
		if err != nil {
			s.rejected.Add(1)
			WriteError(w, Validationf("after", "malformed cursor %q", a))
			return
		}
		after = n
	}
	var wait time.Duration
	if ms := q.Get("wait_ms"); ms != "" {
		n, err := strconv.ParseInt(ms, 10, 64)
		if err != nil || n < 0 {
			s.rejected.Add(1)
			WriteError(w, Validationf("wait_ms", "malformed wait %q", ms))
			return
		}
		wait = min(time.Duration(n)*time.Millisecond, s.cfg.MaxTimeout)
	}
	lv, err := s.liveViewFor(spec, db)
	if err != nil {
		s.rejected.Add(1)
		WriteError(w, err)
		return
	}
	s.watched.Add(1)
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.watchSSE(w, r, lv, after)
		return
	}
	s.watchPoll(w, r, lv, after, wait)
}

// watchPoll is the long-poll arm: answer immediately when the cursor is
// behind, otherwise park on the view's notify channel until a change,
// the wait clamp, client disconnect, or server drain.
func (s *Server) watchPoll(w http.ResponseWriter, r *http.Request, lv *liveView, after uint64, wait time.Duration) {
	reports, notify, complete := lv.view.Changes(after)
	if len(reports) == 0 && complete && wait > 0 {
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case <-notify:
			reports, _, complete = lv.view.Changes(after)
		case <-timer.C:
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			// Drain: answer with what we have so the poller regroups.
		}
	}
	if reports == nil {
		reports = []*incr.Report{}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(watchResponse{
		Spec: lv.spec, DB: lv.db,
		Version: lv.view.Version(),
		Resync:  !complete,
		Changes: reports,
	})
}

// watchSSE is the streaming arm: one `change` event per repair report,
// `resync` when the cursor fell off the ring, until the client goes
// away or the server drains.
func (s *Server) watchSSE(w http.ResponseWriter, r *http.Request, lv *liveView, after uint64) {
	fl, ok := w.(http.Flusher)
	if !ok {
		WriteError(w, Validationf("watch", "streaming unsupported by this connection"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		reports, notify, complete := lv.view.Changes(after)
		if !complete {
			fmt.Fprintf(w, "event: resync\ndata: {\"version\":%d}\n\n", lv.view.Version())
			after = lv.view.Version()
			fl.Flush()
			continue
		}
		for _, rep := range reports {
			data, err := json.Marshal(rep)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: change\ndata: %s\n\n", data)
			after = rep.Version
		}
		if len(reports) > 0 {
			fl.Flush()
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			return
		}
	}
}
