// Live views under mutation: POST /mutate applies a delta to a
// registered database and incrementally repairs every live view over
// it; GET /watch exposes the resulting change feed as a long-poll or an
// SSE stream. The coherence contract is before-or-after, never torn:
// publishes resolve an immutable (instance, memo) pair (swapped whole
// by Registry.MutateDB), views repair under their own write lock, and
// watchers only ever see committed repair reports.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ptx/internal/incr"
	"ptx/internal/pt"
	"ptx/internal/relation"
)

// liveView pairs a spec name with the incr.View maintaining its tree.
// The view owns a cloned instance; repairs are serialized by the
// server's liveMu, so mutation order IS the version order watchers see.
type liveView struct {
	spec string
	db   string
	view *incr.View
}

// mutateRequest is the wire schema of POST /mutate. Unknown fields are
// rejected, like /publish.
type mutateRequest struct {
	Spec string     `json:"spec"`
	DB   string     `json:"db"`
	Ops  []mutateOp `json:"ops"`
}

type mutateOp struct {
	Op    string   `json:"op"` // "insert" or "delete"
	Rel   string   `json:"rel"`
	Tuple []string `json:"tuple"`
}

// mutateResponse reports what one mutation did: the registry refresh
// plus one repair report per live view over the database.
type mutateResponse struct {
	DB           string       `json:"db"`
	Delta        string       `json:"delta"`
	PairsDropped int          `json:"pairs_dropped"`
	Views        []viewRepair `json:"views"`
}

type viewRepair struct {
	Spec   string       `json:"spec"`
	Report *incr.Report `json:"report,omitempty"`
	Error  string       `json:"error,omitempty"` // repair failed; the view self-heals on the next apply
}

// decodeDelta validates the wire ops into a relation.Delta (schema
// validation happens against the caller's spec in handleMutate).
func decodeDelta(ops []mutateOp) (*relation.Delta, error) {
	if len(ops) == 0 {
		return nil, Validationf("ops", "empty delta")
	}
	d := &relation.Delta{}
	for i, op := range ops {
		if op.Rel == "" {
			return nil, Validationf("ops", "op %d: empty relation name", i)
		}
		switch op.Op {
		case "insert":
			d.Insert(op.Rel, op.Tuple...)
		case "delete":
			d.Delete(op.Rel, op.Tuple...)
		default:
			return nil, Validationf("ops", "op %d: unknown op %q (want insert or delete)", i, op.Op)
		}
	}
	return d, nil
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if s.cfg.NodeID != "" {
		w.Header().Set("X-Ptserve-Node", s.cfg.NodeID)
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.adm.Draining() {
		s.rejected.Add(1)
		WriteError(w, ErrDraining)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req mutateRequest
	if err := dec.Decode(&req); err != nil {
		s.rejected.Add(1)
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			WriteError(w, mbe)
			return
		}
		WriteError(w, Validationf("body", "%v", err))
		return
	}
	if req.Spec == "" {
		s.rejected.Add(1)
		WriteError(w, Validationf("spec", "missing"))
		return
	}
	if req.DB == "" {
		s.rejected.Add(1)
		WriteError(w, Validationf("db", "missing"))
		return
	}
	d, err := decodeDelta(req.Ops)
	if err != nil {
		s.rejected.Add(1)
		WriteError(w, err)
		return
	}
	// The caller's spec anchors schema validation, so a bad delta is a
	// typed 400 naming the violation before anything is touched.
	tr, err := s.reg.Spec(req.Spec)
	if err != nil {
		s.rejected.Add(1)
		WriteError(w, err)
		return
	}
	if verr := d.Validate(tr.Schema); verr != nil {
		s.rejected.Add(1)
		WriteError(w, Validationf("ops", "%v", verr))
		return
	}

	resp, err := s.mutate(req.DB, d)
	if err != nil {
		s.rejected.Add(1)
		WriteError(w, err)
		return
	}
	s.mutated.Add(1)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// mutate is the serialized mutation path: liveMu makes (registry swap,
// view repairs) atomic with respect to view creation, so a view can
// never be born pre-delta yet miss the repair pass.
func (s *Server) mutate(db string, d *relation.Delta) (*mutateResponse, error) {
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	dropped, err := s.reg.MutateDB(db, d)
	if err != nil {
		return nil, err
	}
	resp := &mutateResponse{DB: db, Delta: d.String(), PairsDropped: dropped, Views: []viewRepair{}}
	for _, lv := range s.views {
		if lv.db != db {
			continue
		}
		vr := viewRepair{Spec: lv.spec}
		// A spec whose vocabulary rejects the delta is untouched by it
		// (the registry replay skips it for the same reason).
		if lv.view != nil {
			if verr := d.Validate(s.viewSchema(lv)); verr != nil {
				resp.Views = append(resp.Views, vr)
				continue
			}
			rep, aerr := lv.view.Apply(s.baseCtx, d)
			if aerr != nil {
				s.failed.Add(1)
				vr.Error = aerr.Error()
			} else {
				s.repaired.Add(1)
				vr.Report = rep
			}
		}
		resp.Views = append(resp.Views, vr)
	}
	return resp, nil
}

func (s *Server) viewSchema(lv *liveView) *relation.Schema {
	tr, err := s.reg.Spec(lv.spec)
	if err != nil {
		return relation.NewSchema() // spec vanished: validate against nothing
	}
	return tr.Schema
}

// liveViewFor returns the live view for (spec, db), creating it on
// first use from the registry's CURRENT pair state. Creation runs under
// liveMu: a concurrent mutation either precedes it (the pair replay
// already carries the delta) or follows it (the repair pass covers this
// view) — no window where a fresh view silently misses a delta.
func (s *Server) liveViewFor(spec, db string) (*liveView, error) {
	key := spec + "\x00" + db
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	if lv, ok := s.views[key]; ok {
		return lv, nil
	}
	tr, inst, _, err := s.reg.Pair(spec, db)
	if err != nil {
		return nil, err
	}
	maxNodes := s.cfg.DefaultMaxNodes
	if maxNodes < 0 {
		maxNodes = 0
	}
	v, err := incr.NewView(s.baseCtx, tr, inst.Clone(), incr.Options{
		Run: pt.Options{MaxNodes: maxNodes},
	})
	if err != nil {
		return nil, err
	}
	lv := &liveView{spec: spec, db: db, view: v}
	s.views[key] = lv
	return lv, nil
}

// watchResponse is the long-poll reply: the view's current version, the
// missed-history flag (resync with a fresh /publish when true), and the
// change reports after the client's cursor.
type watchResponse struct {
	Spec    string         `json:"spec"`
	DB      string         `json:"db"`
	Version uint64         `json:"version"`
	Resync  bool           `json:"resync,omitempty"`
	Changes []*incr.Report `json:"changes"`
}

// handleWatch serves the change feed for one (spec, db) live view.
//
//	GET /watch?spec=S&db=D&after=N&wait_ms=M      → long-poll JSON
//	GET /watch?spec=S&db=D&after=N  (Accept: text/event-stream) → SSE
//
// after is the client's version cursor (0 = everything buffered);
// wait_ms long-polls until a change lands past the cursor, the wait
// clamp expires, or the server drains. The SSE stream emits one
// `change` event per repair report (data: the report JSON) and a
// `resync` event when the client's cursor fell off the history ring.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	if s.cfg.NodeID != "" {
		w.Header().Set("X-Ptserve-Node", s.cfg.NodeID)
	}
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if s.adm.Draining() {
		s.rejected.Add(1)
		WriteError(w, ErrDraining)
		return
	}
	q := r.URL.Query()
	spec, db := q.Get("spec"), q.Get("db")
	if spec == "" || db == "" {
		s.rejected.Add(1)
		WriteError(w, Validationf("watch", "spec and db query parameters are required"))
		return
	}
	after := uint64(0)
	if a := q.Get("after"); a != "" {
		n, err := strconv.ParseUint(a, 10, 64)
		if err != nil {
			s.rejected.Add(1)
			WriteError(w, Validationf("after", "malformed cursor %q", a))
			return
		}
		after = n
	}
	var wait time.Duration
	if ms := q.Get("wait_ms"); ms != "" {
		n, err := strconv.ParseInt(ms, 10, 64)
		if err != nil || n < 0 {
			s.rejected.Add(1)
			WriteError(w, Validationf("wait_ms", "malformed wait %q", ms))
			return
		}
		wait = min(time.Duration(n)*time.Millisecond, s.cfg.MaxTimeout)
	}
	lv, err := s.liveViewFor(spec, db)
	if err != nil {
		s.rejected.Add(1)
		WriteError(w, err)
		return
	}
	s.watched.Add(1)
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.watchSSE(w, r, lv, after)
		return
	}
	s.watchPoll(w, r, lv, after, wait)
}

// watchPoll is the long-poll arm: answer immediately when the cursor is
// behind, otherwise park on the view's notify channel until a change,
// the wait clamp, client disconnect, or server drain.
func (s *Server) watchPoll(w http.ResponseWriter, r *http.Request, lv *liveView, after uint64, wait time.Duration) {
	reports, notify, complete := lv.view.Changes(after)
	if len(reports) == 0 && complete && wait > 0 {
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case <-notify:
			reports, _, complete = lv.view.Changes(after)
		case <-timer.C:
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			// Drain: answer with what we have so the poller regroups.
		}
	}
	if reports == nil {
		reports = []*incr.Report{}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(watchResponse{
		Spec: lv.spec, DB: lv.db,
		Version: lv.view.Version(),
		Resync:  !complete,
		Changes: reports,
	})
}

// watchSSE is the streaming arm: one `change` event per repair report,
// `resync` when the cursor fell off the ring, until the client goes
// away or the server drains.
func (s *Server) watchSSE(w http.ResponseWriter, r *http.Request, lv *liveView, after uint64) {
	fl, ok := w.(http.Flusher)
	if !ok {
		WriteError(w, Validationf("watch", "streaming unsupported by this connection"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		reports, notify, complete := lv.view.Changes(after)
		if !complete {
			fmt.Fprintf(w, "event: resync\ndata: {\"version\":%d}\n\n", lv.view.Version())
			after = lv.view.Version()
			fl.Flush()
			continue
		}
		for _, rep := range reports {
			data, err := json.Marshal(rep)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: change\ndata: %s\n\n", data)
			after = rep.Version
		}
		if len(reports) > 0 {
			fl.Flush()
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			return
		}
	}
}
