// Network hardening for inter-node hops: the deadline-propagation
// header that replaces flat client timeouts, and the response-integrity
// trailer that turns silent corruption or truncation into typed
// transport failures a caller can fail over on.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

const (
	// HeaderDeadline carries the sender's REMAINING time budget for the
	// request, in milliseconds. A budget, not an absolute timestamp:
	// peers' clocks need not agree for each hop to subtract its own
	// elapsed time. Every receiver clamps its local work to the budget,
	// so no request outlives the deadline its origin set, no matter how
	// many hops it crosses.
	HeaderDeadline = "X-Ptx-Deadline"

	// HeaderWantSum, set by a caller that buffers the whole response,
	// asks the server to append HeaderBodySum — the hex SHA-256 of the
	// response body — as an HTTP trailer. The trailer rides AFTER the
	// body, so a truncated stream is missing it and a corrupted one
	// mismatches it: both become transport errors instead of silently
	// wrong bytes.
	HeaderWantSum = "X-Ptx-Want-Sum"
	HeaderBodySum = "X-Ptx-Body-Sum"
)

// ParseDeadline extracts the remaining budget from h. ok reports
// whether the header was present; a malformed or non-positive value is
// a validation error (a peer that sends the header and gets it wrong
// is misrouting, not just unconfigured).
func ParseDeadline(h http.Header) (budget time.Duration, ok bool, err error) {
	v := h.Get(HeaderDeadline)
	if v == "" {
		return 0, false, nil
	}
	ms, perr := strconv.ParseInt(v, 10, 64)
	if perr != nil || ms < 1 {
		return 0, false, Validationf("deadline", "malformed %s header %q (want remaining ms >= 1)", HeaderDeadline, v)
	}
	return time.Duration(ms) * time.Millisecond, true, nil
}

// FormatDeadline renders a remaining budget for HeaderDeadline,
// flooring at 1ms so an exhausted budget still propagates (and fails
// typed at the receiver) rather than vanishing.
func FormatDeadline(remaining time.Duration) string {
	ms := int64(remaining / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	return strconv.FormatInt(ms, 10)
}

// BodySum is the integrity checksum of a response body: hex SHA-256.
func BodySum(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// VerifySum checks a fully buffered response body against the
// integrity sum its sender declared. Peers that never declared one
// (pre-protocol nodes, plain origin servers) pass — the check only
// binds once the response PROMISED a sum, at which point a missing
// trailer means truncation and a mismatch means corruption.
func VerifySum(resp *http.Response, body []byte) error {
	sum := resp.Trailer.Get(HeaderBodySum)
	if sum == "" {
		sum = resp.Header.Get(HeaderBodySum)
	}
	declared := sum != ""
	if !declared {
		if _, ok := resp.Trailer[HeaderBodySum]; ok {
			declared = true
		}
		for _, t := range resp.Header.Values("Trailer") {
			if strings.EqualFold(strings.TrimSpace(t), HeaderBodySum) {
				declared = true
			}
		}
	}
	if !declared {
		return nil
	}
	if sum == "" {
		return fmt.Errorf("serve: response body integrity sum declared but missing (truncated stream?)")
	}
	if got := BodySum(body); got != sum {
		return fmt.Errorf("serve: response body integrity mismatch: got %.12s…, want %.12s…", got, sum)
	}
	return nil
}

// sumResponses wraps a handler so requests carrying HeaderWantSum get
// the SHA-256 of their response body as the HeaderBodySum trailer.
// Declaring the trailer up front forces chunked encoding, which is
// what lets the sum ride after the last body byte.
func sumResponses(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(HeaderWantSum) == "" {
			next.ServeHTTP(w, r)
			return
		}
		w.Header().Set("Trailer", HeaderBodySum)
		sw := &sumWriter{ResponseWriter: w, sum: sha256.New()}
		next.ServeHTTP(sw, r)
		w.Header().Set(HeaderBodySum, hex.EncodeToString(sw.sum.Sum(nil)))
	})
}

// sumWriter tees every body write through the running checksum.
type sumWriter struct {
	http.ResponseWriter
	sum interface {
		Write(p []byte) (int, error)
		Sum(b []byte) []byte
	}
}

func (sw *sumWriter) Write(p []byte) (int, error) {
	_, _ = sw.sum.Write(p)
	return sw.ResponseWriter.Write(p)
}

func (sw *sumWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
