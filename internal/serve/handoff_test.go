package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"ptx/internal/supervise"
)

// postAs sends a /publish request stamped with the cluster handoff
// headers, the way a coordinator routes work to a node.
func postAs(t *testing.T, ts *httptest.Server, body, runKey string, epoch uint64) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/publish", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderRunKey, runKey)
	req.Header.Set(HeaderEpoch, strconv.FormatUint(epoch, 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, buf.Bytes()
}

// TestHandoffAcrossNodes is the core cluster contract, run without any
// timing dependence: a node-budgeted request fails on node A leaving a
// fenced checkpoint in the shared store; re-routing it (at a bumped
// epoch, as the coordinator does after a failover) to node B resumes
// from that snapshot instead of restarting. A sequence of bounded
// attempts bouncing between the nodes completes work no single budget
// allows — and the combined output is byte-identical to an
// uninterrupted run's.
func TestHandoffAcrossNodes(t *testing.T) {
	store, err := supervise.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, tsA := newTestServer(t, Config{NodeID: "a", Store: store, CheckpointEvery: 1})
	_, tsB := newTestServer(t, Config{NodeID: "b", Store: store, CheckpointEvery: 1})
	nodes := []*httptest.Server{tsA, tsB}
	names := []string{"a", "b"}
	want := goldenXML(t, tinySpec, tinyDB, false)

	// max_nodes 3 is the smallest budget that can make progress (the
	// root expansion creates three items in one atomic step) while still
	// guaranteeing at least two failures before the tree completes.
	const body = `{"spec":"tiny","db":"tinydb","limits":{"max_nodes":3}}`
	const runKey = "handoff-run"
	resumedOnSuccess := false
	completed := false
	for round := 0; round < 50 && !completed; round++ {
		ts := nodes[round%2]
		status, hdr, respBody := postAs(t, ts, body, runKey, uint64(round+1))
		if got := hdr.Get("X-Ptserve-Node"); got != names[round%2] {
			t.Fatalf("round %d: X-Ptserve-Node = %q, want %q", round, got, names[round%2])
		}
		switch status {
		case http.StatusOK:
			if !bytes.Equal(respBody, want) {
				t.Fatalf("round %d: resumed output differs from golden:\n got %q\nwant %q", round, respBody, want)
			}
			resumedOnSuccess = hdr.Get("X-Ptserve-Resumed") == "true"
			if round == 0 {
				t.Fatal("budgeted run completed in one round; budget too loose to exercise handoff")
			}
			completed = true
		default:
			info := decodeError(t, status, respBody)
			if info.Kind != KindBudget {
				t.Fatalf("round %d: kind %q, want %q (%s)", round, info.Kind, KindBudget, respBody)
			}
			// The failure left a resumable snapshot for the next owner.
			if snap, _, err := store.Load(runKey); err != nil || snap == nil {
				t.Fatalf("round %d: no checkpoint after budget failure (snap=%v err=%v)", round, snap, err)
			}
		}
	}
	if !completed {
		t.Fatal("run never completed across 50 bounded handoffs")
	}
	if !resumedOnSuccess {
		t.Fatal("final round did not report X-Ptserve-Resumed: true")
	}
	// Success retires the run: the store entry is gone.
	if snap, _, err := store.Load(runKey); err != nil || snap != nil {
		t.Fatalf("checkpoint survived successful completion (snap=%v err=%v)", snap, err)
	}
}

// TestHandoffStaleEpochRefused: a request routed with an epoch OLDER
// than the stored checkpoint's is a zombie — a successor already owns
// the run — and must be refused up front with the conflict kind, doing
// no evaluation work.
func TestHandoffStaleEpochRefused(t *testing.T) {
	store, err := supervise.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{NodeID: "a", Store: store, CheckpointEvery: 1})

	// Establish a checkpoint at epoch 5 via a budget failure.
	const body = `{"spec":"tiny","db":"tinydb","limits":{"max_nodes":2}}`
	status, _, respBody := postAs(t, ts, body, "stale-run", 5)
	if info := decodeError(t, status, respBody); info.Kind != KindBudget {
		t.Fatalf("setup run: kind %q, want budget", info.Kind)
	}

	status, _, respBody = postAs(t, ts, body, "stale-run", 3)
	info := decodeError(t, status, respBody)
	if info.Kind != KindConflict {
		t.Fatalf("stale epoch: kind %q, want %q (%s)", info.Kind, KindConflict, respBody)
	}
	if s.Metrics().Fenced == 0 {
		t.Fatal("fence refusal not counted in Metrics.Fenced")
	}
	// The stored entry still belongs to the epoch-5 owner.
	if _, epoch, err := store.Load("stale-run"); err != nil || epoch != 5 {
		t.Fatalf("after refusal: stored epoch %d err %v, want 5 nil", epoch, err)
	}
}

// usurpingStore simulates a successor racing the current owner: the
// first Save under the victim key is preceded by a higher-epoch write,
// so the delegated Save returns *ErrFenced exactly as if another node
// had taken the run over mid-flight.
type usurpingStore struct {
	supervise.CheckpointStore
	key     string
	usurped bool
}

func (u *usurpingStore) Save(key string, epoch uint64, snap *supervise.Snapshot) error {
	if key == u.key && !u.usurped {
		u.usurped = true
		if err := u.CheckpointStore.Save(key, epoch+1, snap); err != nil {
			return err
		}
	}
	return u.CheckpointStore.Save(key, epoch, snap)
}

// TestHandoffFencedMidRun: losing ownership DURING a run (the first
// periodic checkpoint write is fenced) aborts the attempt with the
// conflict kind instead of burning cycles on a result nobody will
// accept — and the successor's higher-epoch snapshot survives.
func TestHandoffFencedMidRun(t *testing.T) {
	dir, err := supervise.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store := &usurpingStore{CheckpointStore: dir, key: "contested-run"}
	s, ts := newTestServer(t, Config{NodeID: "a", Store: store, CheckpointEvery: 1})

	status, _, respBody := postAs(t, ts, `{"spec":"tiny","db":"tinydb"}`, "contested-run", 7)
	info := decodeError(t, status, respBody)
	if info.Kind != KindConflict {
		t.Fatalf("fenced mid-run: kind %q, want %q (%s)", info.Kind, KindConflict, respBody)
	}
	if s.Metrics().Fenced == 0 {
		t.Fatal("mid-run fence not counted in Metrics.Fenced")
	}
	if _, epoch, err := dir.Load("contested-run"); err != nil || epoch != 8 {
		t.Fatalf("successor snapshot clobbered: epoch %d err %v, want 8 nil", epoch, err)
	}
}

// TestHandoffHeadersIgnoredWithoutStore: a standalone server must not
// honor handoff coordinates it cannot back with durable checkpoints.
func TestHandoffHeadersIgnoredWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, hdr, body := postAs(t, ts, `{"spec":"tiny","db":"tinydb"}`, "ignored-run", 3)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if got := hdr.Get("X-Ptserve-Resumed"); got != "" {
		t.Fatalf("storeless server reported X-Ptserve-Resumed=%q; headers must be ignored", got)
	}
	if !bytes.Equal(body, goldenXML(t, tinySpec, tinyDB, false)) {
		t.Fatal("storeless output differs from golden")
	}
}

// TestHandoffMalformedEpoch: a garbage X-Ptx-Epoch header is the
// client's (coordinator's) bug and maps to the validation kind.
func TestHandoffMalformedEpoch(t *testing.T) {
	store, err := supervise.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Store: store})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/publish", strings.NewReader(`{"spec":"tiny","db":"tinydb"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(HeaderRunKey, "run")
	req.Header.Set(HeaderEpoch, "not-a-number")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	info := decodeError(t, resp.StatusCode, buf.Bytes())
	if info.Kind != KindValidation || !strings.Contains(info.Message, HeaderEpoch) {
		t.Fatalf("malformed epoch: %s", buf.Bytes())
	}
}

// TestWarm: the rebalance hint primes known pairs, skips unknown ones,
// and rejects malformed bodies with the validation kind.
func TestWarm(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/warm", "application/json",
		strings.NewReader(`{"pairs":[["tiny","tinydb"],["ghost","tinydb"]]}`))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Warmed int `json:"warmed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out.Warmed != 1 {
		t.Fatalf("warmed %d pairs, want 1 (unknown pair skipped)", out.Warmed)
	}
	if s.Metrics().Warmed != 1 {
		t.Fatalf("Metrics.Warmed = %d, want 1", s.Metrics().Warmed)
	}
	// A warmed pair answers its first publish from the shared memo.
	status, hdr, body := post(t, ts, `{"spec":"tiny","db":"tinydb"}`)
	if status != http.StatusOK {
		t.Fatalf("publish after warm: %d %s", status, body)
	}
	_ = hdr

	resp, err = http.Post(ts.URL+"/warm", "application/json", strings.NewReader(`{"bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if info := decodeError(t, resp.StatusCode, buf.Bytes()); info.Kind != KindValidation {
		t.Fatalf("malformed warm body: kind %q, want validation", info.Kind)
	}

	resp, err = http.Get(ts.URL + "/warm")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /warm = %d", resp.StatusCode)
	}
}
