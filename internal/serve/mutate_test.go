// Mutation endpoint tests: /mutate must swap registry pairs, repair
// live views, and wake watchers; /watch must long-poll and stream; and
// a pair parsed AFTER mutations must replay the delta log.
package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"ptx/internal/incr"
)

// stormTuple is the single course toggled by these tests: inserting it
// adds one top-level course to every registrar publication.
var stormTuple = []string{"CS999", "StormCourse", "CS"}

func mutateBody(op string) string {
	b, _ := json.Marshal(map[string]any{
		"spec": "tau1",
		"db":   "registrar",
		"ops": []map[string]any{
			{"op": op, "rel": "course", "tuple": stormTuple},
		},
	})
	return string(b)
}

// exampleSources loads the example spec/db texts the goldens derive
// from.
func exampleSources(t *testing.T) (spec, db string) {
	t.Helper()
	sb, err := os.ReadFile("../../examples/specs/tau1.pt")
	if err != nil {
		t.Fatal(err)
	}
	dbb, err := os.ReadFile("../../examples/specs/registrar.db")
	if err != nil {
		t.Fatal(err)
	}
	return string(sb), string(dbb)
}

// withStormTuple appends the toggled course to the db source, giving
// the post-insert golden.
func withStormTuple(db string) string {
	return db + fmt.Sprintf("\ncourse(%s, %s, %s)\n", stormTuple[0], stormTuple[1], stormTuple[2])
}

func postJSON(t *testing.T, client *http.Client, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading %s response: %v", url, err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, client *http.Client, url string, out any) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decoding %s: %v\nbody: %s", url, err, buf.Bytes())
		}
	}
	return resp.StatusCode
}

func newMutateServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	reg := NewRegistry()
	if err := reg.LoadDir("../../examples/specs"); err != nil {
		t.Fatalf("loading example specs: %v", err)
	}
	s, err := New(Config{Registry: reg, Workers: 4, Queue: 8, DrainGrace: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return s, httptest.NewServer(s.Handler())
}

func TestMutateRepairsLiveViewAndPublish(t *testing.T) {
	base := runtime.NumGoroutine()
	s, ts := newMutateServer(t)
	client := ts.Client()
	spec, db := exampleSources(t)
	goldenBase := goldenXML(t, spec, db, true)
	goldenAlt := goldenXML(t, spec, withStormTuple(db), true)

	// First /watch creates the live view at version 1 with no history.
	var wr watchResponse
	if code := getJSON(t, client, ts.URL+"/watch?spec=tau1&db=registrar", &wr); code != http.StatusOK {
		t.Fatalf("watch: status %d", code)
	}
	if wr.Version != 1 || len(wr.Changes) != 0 || wr.Resync {
		t.Fatalf("fresh watch = %+v, want version 1, no changes", wr)
	}

	// Publish serves the pre-delta bytes.
	resp, body := postJSON(t, client, ts.URL+"/publish", `{"spec":"tau1","db":"registrar","canonical":true}`)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, goldenBase) {
		t.Fatalf("pre-delta publish: status %d, golden match %v", resp.StatusCode, bytes.Equal(body, goldenBase))
	}

	// Mutate: the view repairs incrementally and reports it.
	resp, body = postJSON(t, client, ts.URL+"/mutate", mutateBody("insert"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: status %d: %s", resp.StatusCode, body)
	}
	var mr mutateResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatalf("mutate response: %v", err)
	}
	if len(mr.Views) != 1 || mr.Views[0].Spec != "tau1" || mr.Views[0].Error != "" {
		t.Fatalf("mutate views = %+v", mr.Views)
	}
	rep := mr.Views[0].Report
	if rep == nil || rep.Version != 2 || rep.Effective != 1 {
		t.Fatalf("repair report = %+v, want version 2 with 1 effective op", rep)
	}
	if rep.FullRebuild {
		t.Fatal("a 1-tuple course insert must repair surgically, not rebuild")
	}

	// The repaired view and a fresh publish agree on the post-delta bytes.
	if code := getJSON(t, client, ts.URL+"/watch?spec=tau1&db=registrar&after=1", &wr); code != http.StatusOK {
		t.Fatalf("watch after mutate: %d", code)
	}
	if wr.Version != 2 || len(wr.Changes) != 1 || wr.Changes[0].Version != 2 {
		t.Fatalf("watch after=1 = %+v, want exactly the version-2 change", wr)
	}
	resp, body = postJSON(t, client, ts.URL+"/publish", `{"spec":"tau1","db":"registrar","canonical":true}`)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, goldenAlt) {
		t.Fatalf("post-delta publish: status %d, alt-golden match %v", resp.StatusCode, bytes.Equal(body, goldenAlt))
	}
	viewBytes, ver, err := s.views["tau1\x00registrar"].view.Snapshot(true)
	if err != nil || ver != 2 {
		t.Fatalf("view snapshot: version %d, err %v", ver, err)
	}
	if string(viewBytes)+"\n" != string(goldenAlt) {
		t.Fatal("repaired view bytes differ from the post-delta golden")
	}

	// Deleting the tuple again returns everything to the base golden.
	resp, body = postJSON(t, client, ts.URL+"/mutate", mutateBody("delete"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete mutate: %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, client, ts.URL+"/publish", `{"spec":"tau1","db":"registrar","canonical":true}`)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, goldenBase) {
		t.Fatal("post-delete publish differs from the base golden")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	settle(t, ts, base)
}

// TestMutateValidation: unknown names, malformed ops and arity
// violations are typed 400s and touch nothing.
func TestMutateValidation(t *testing.T) {
	s, ts := newMutateServer(t)
	defer ts.Close()
	defer s.Close()
	client := ts.Client()
	cases := []struct {
		name, body string
	}{
		{"unknown spec", `{"spec":"nope","db":"registrar","ops":[{"op":"insert","rel":"course","tuple":["a","b","c"]}]}`},
		{"unknown db", `{"spec":"tau1","db":"nope","ops":[{"op":"insert","rel":"course","tuple":["a","b","c"]}]}`},
		{"empty ops", `{"spec":"tau1","db":"registrar","ops":[]}`},
		{"bad op", `{"spec":"tau1","db":"registrar","ops":[{"op":"upsert","rel":"course","tuple":["a","b","c"]}]}`},
		{"unknown rel", `{"spec":"tau1","db":"registrar","ops":[{"op":"insert","rel":"enrolled","tuple":["a"]}]}`},
		{"wrong arity", `{"spec":"tau1","db":"registrar","ops":[{"op":"insert","rel":"course","tuple":["a"]}]}`},
		{"unknown field", `{"spec":"tau1","db":"registrar","ops":[],"extra":1}`},
	}
	for _, c := range cases {
		resp, body := postJSON(t, client, ts.URL+"/mutate", c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", c.name, resp.StatusCode, body)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error.Kind != KindValidation {
			t.Errorf("%s: untyped or wrong-kind error: %s", c.name, body)
		}
	}
	if got := s.Metrics().Mutated; got != 0 {
		t.Fatalf("rejected mutations counted as accepted: %d", got)
	}
}

// TestDeltaLogReplayForLatePair: a (spec, db) pair parsed AFTER
// mutations must see them — the registry replays the database's delta
// log into the freshly parsed instance.
func TestDeltaLogReplayForLatePair(t *testing.T) {
	s, ts := newMutateServer(t)
	defer ts.Close()
	defer s.Close()
	client := ts.Client()

	resp, body := postJSON(t, client, ts.URL+"/mutate", mutateBody("insert"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: %d: %s", resp.StatusCode, body)
	}
	// tau3 shares the registrar schema and has never been published:
	// its first parse happens now, after the mutation.
	specSrc, err := os.ReadFile("../../examples/specs/tau3.pt")
	if err != nil {
		t.Fatal(err)
	}
	_, db := exampleSources(t)
	want := goldenXML(t, string(specSrc), withStormTuple(db), true)
	resp, body = postJSON(t, client, ts.URL+"/publish", `{"spec":"tau3","db":"registrar","canonical":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("late publish: %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("late-parsed pair did not replay the delta log")
	}
}

// TestWatchLongPollWakesOnMutate: a parked long-poll returns as soon as
// a mutation commits, carrying the new report.
func TestWatchLongPollWakesOnMutate(t *testing.T) {
	s, ts := newMutateServer(t)
	defer ts.Close()
	defer s.Close()
	client := ts.Client()

	// Prime the view, then park a watcher past its version.
	var wr watchResponse
	if code := getJSON(t, client, ts.URL+"/watch?spec=tau1&db=registrar", &wr); code != http.StatusOK {
		t.Fatalf("prime watch: %d", code)
	}
	done := make(chan watchResponse, 1)
	go func() {
		var got watchResponse
		getJSON(t, client, ts.URL+"/watch?spec=tau1&db=registrar&after=1&wait_ms=5000", &got)
		done <- got
	}()
	time.Sleep(20 * time.Millisecond) // let the poller park
	if resp, body := postJSON(t, client, ts.URL+"/mutate", mutateBody("insert")); resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: %d: %s", resp.StatusCode, body)
	}
	select {
	case got := <-done:
		if got.Version != 2 || len(got.Changes) != 1 {
			t.Fatalf("woken poll = %+v, want the version-2 change", got)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("long-poll did not wake on mutation")
	}
}

// TestWatchSSEStreamsChanges: the SSE arm delivers one change event per
// mutation and terminates cleanly on client disconnect.
func TestWatchSSEStreamsChanges(t *testing.T) {
	s, ts := newMutateServer(t)
	defer ts.Close()
	defer s.Close()
	client := ts.Client()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		ts.URL+"/watch?spec=tau1&db=registrar&after=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type = %q", ct)
	}

	events := make(chan incr.Report, 4)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		inChange := false
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "event: change":
				inChange = true
			case inChange && strings.HasPrefix(line, "data: "):
				var rep incr.Report
				if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &rep) == nil {
					events <- rep
				}
				inChange = false
			}
		}
	}()

	for i, op := range []string{"insert", "delete"} {
		if resp, body := postJSON(t, client, ts.URL+"/mutate", mutateBody(op)); resp.StatusCode != http.StatusOK {
			t.Fatalf("mutate %d: %d: %s", i, resp.StatusCode, body)
		}
		select {
		case rep, ok := <-events:
			if !ok {
				t.Fatal("SSE stream closed early")
			}
			if rep.Version != uint64(i+2) {
				t.Fatalf("event %d has version %d, want %d", i, rep.Version, i+2)
			}
		case <-time.After(3 * time.Second):
			t.Fatalf("no SSE event after mutation %d", i)
		}
	}
	cancel() // client walks away; the handler must unwind
	for range events {
	}
}

// TestMutateWhileDraining: a draining server refuses mutations with the
// typed 503 every other endpoint uses.
func TestMutateWhileDraining(t *testing.T) {
	s, ts := newMutateServer(t)
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/mutate", mutateBody("insert"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mutate while draining: %d: %s", resp.StatusCode, body)
	}
}
