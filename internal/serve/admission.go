package serve

import (
	"context"
	"sync"

	"ptx/internal/runctl"
)

// Admission is the bounded worker-pool admission controller: at most
// `workers` requests run concurrently, at most `queue` more wait, and
// everything beyond that is shed IMMEDIATELY with *ErrOverloaded — a
// request is never queued to death. Waiting requests also leave on
// their own deadline (typed *runctl.ErrCanceled) or when the server
// starts draining (ErrDraining), so the queue can only shrink under
// overload or shutdown.
//
// Drain coordination is exact, not best-effort: admitted work registers
// in a WaitGroup under the same mutex that guards the draining flag, so
// once Drain has set the flag, no request can slip past the Wait.
type Admission struct {
	sem     chan struct{} // worker slots
	drainCh chan struct{} // closed when draining starts

	mu       sync.Mutex
	draining bool
	waiting  int
	maxQueue int
	inflight sync.WaitGroup
}

// NewAdmission builds a controller with the given worker and wait-queue
// capacities (minimum 1 worker; a queue of 0 disables waiting entirely,
// turning every burst beyond the workers into an immediate shed).
func NewAdmission(workers, queue int) *Admission {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Admission{
		sem:      make(chan struct{}, workers),
		drainCh:  make(chan struct{}),
		maxQueue: queue,
	}
}

// Acquire admits one request, blocking in the wait queue if all workers
// are busy. On success it returns a release func the caller MUST call
// exactly once when the request finishes. Typed failures: ErrDraining
// once draining has begun, *ErrOverloaded when the wait queue is full,
// *runctl.ErrCanceled when ctx expires while waiting.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return nil, ErrDraining
	}
	// Fast path: a worker slot is free right now.
	select {
	case a.sem <- struct{}{}:
		a.inflight.Add(1)
		a.mu.Unlock()
		return a.releaseFunc(), nil
	default:
	}
	if a.waiting >= a.maxQueue {
		n := a.waiting
		a.mu.Unlock()
		return nil, &ErrOverloaded{Queued: n}
	}
	a.waiting++
	a.mu.Unlock()

	defer func() {
		a.mu.Lock()
		a.waiting--
		a.mu.Unlock()
	}()
	select {
	case a.sem <- struct{}{}:
		a.mu.Lock()
		if a.draining {
			a.mu.Unlock()
			<-a.sem
			return nil, ErrDraining
		}
		a.inflight.Add(1)
		a.mu.Unlock()
		return a.releaseFunc(), nil
	case <-ctx.Done():
		return nil, &runctl.ErrCanceled{Cause: ctx.Err()}
	case <-a.drainCh:
		return nil, ErrDraining
	}
}

// releaseFunc returns the idempotent slot release for one admission.
func (a *Admission) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			<-a.sem
			a.inflight.Done()
		})
	}
}

// Waiting reports the current wait-queue occupancy.
func (a *Admission) Waiting() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waiting
}

// Active reports how many worker slots are currently held.
func (a *Admission) Active() int { return len(a.sem) }

// Draining reports whether Drain has begun.
func (a *Admission) Draining() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.draining
}

// Drain stops admissions — queued waiters are released with ErrDraining
// immediately — and waits for every admitted request to finish, up to
// ctx's deadline. It returns nil on a clean drain and ctx.Err() when
// in-flight work outlived the deadline (callers then cancel the runs
// and may Drain again to collect the stragglers). Safe to call more
// than once.
func (a *Admission) Drain(ctx context.Context) error {
	a.mu.Lock()
	if !a.draining {
		a.draining = true
		close(a.drainCh)
	}
	a.mu.Unlock()

	done := make(chan struct{})
	go func() {
		a.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
