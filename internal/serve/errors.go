package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"ptx/internal/runctl"
	"ptx/internal/supervise"
	"ptx/internal/wal"
)

// ValidationError reports a request or registry problem the CLIENT can
// fix: an unknown spec or database name, a duplicate registration, a
// malformed request body, an out-of-range option. It is deliberately
// distinct from *runctl.ErrInternal — validation failures are the
// expected fate of untrusted input, not server bugs — and maps to
// HTTP 400.
type ValidationError struct {
	Field string // which part of the request or registration is wrong
	Msg   string
}

func (e *ValidationError) Error() string {
	if e.Field == "" {
		return "serve: invalid request: " + e.Msg
	}
	return fmt.Sprintf("serve: invalid %s: %s", e.Field, e.Msg)
}

// Validationf builds a *ValidationError for field.
func Validationf(field, format string, args ...any) *ValidationError {
	return &ValidationError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// ErrOverloaded reports that the admission queue was full and the
// request was shed immediately instead of queued to death. Maps to
// HTTP 429.
type ErrOverloaded struct {
	Queued int // wait-queue occupancy observed at rejection
}

func (e *ErrOverloaded) Error() string {
	return fmt.Sprintf("serve: overloaded: admission queue full (%d waiting)", e.Queued)
}

// ErrDraining reports that the server is shutting down and no longer
// admits work. Maps to HTTP 503.
var ErrDraining = errors.New("serve: draining: server is shutting down")

// Error kinds of the stable JSON error schema. Clients dispatch on Kind
// (the HTTP status is derived from it and the pair never disagrees —
// TestErrorCodeTable pins the mapping).
const (
	KindValidation = "validation" // 400: bad request or unknown spec/db
	KindTooLarge   = "too-large"  // 413: request body exceeds the cap
	KindBudget     = "budget"     // 413: a resource budget tripped mid-run
	KindCanceled   = "canceled"   // 408: deadline expired or client gone
	KindConflict   = "conflict"   // 409: ownership fence — another node owns this run
	KindOverloaded = "overloaded" // 429: shed at admission, retry later
	KindDraining   = "draining"   // 503: shutting down
	KindTransient  = "transient"  // 503: transient fault survived retries
	KindStorage    = "storage"    // 503: durable append failed — the delta was NOT applied
	KindInternal   = "internal"   // 500: contained panic or unclassified
)

// ErrorInfo is the body of every non-200 response, stable across
// releases: {"error":{"kind":…,"message":…,…}}.
type ErrorInfo struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
	// Budget carries the typed budget report when Kind == "budget".
	Budget *BudgetInfo `json:"budget,omitempty"`
	// Queued carries the queue occupancy when Kind == "overloaded".
	Queued int `json:"queued,omitempty"`
}

// BudgetInfo mirrors runctl.ErrBudget in the wire schema.
type BudgetInfo struct {
	Resource string `json:"resource"`
	Limit    int    `json:"limit"`
	Observed int    `json:"observed"`
}

type errorBody struct {
	Error ErrorInfo `json:"error"`
}

// Classify maps any error surfaced by the publish path to its HTTP
// status and wire-schema ErrorInfo. The order is deliberate:
// admission and validation classes first (they are this package's own
// types), then the runctl taxonomy from most to least specific, with
// the transient marker checked after the concrete types so a
// transient-wrapped budget still reports as a budget.
func Classify(err error) (int, ErrorInfo) {
	var ve *ValidationError
	var oe *ErrOverloaded
	var mbe *http.MaxBytesError
	var fe *supervise.ErrFenced
	var se *wal.StorageError
	var be *runctl.ErrBudget
	var ce *runctl.ErrCanceled
	var ie *runctl.ErrInternal
	switch {
	case errors.As(err, &ve):
		return http.StatusBadRequest, ErrorInfo{Kind: KindValidation, Message: ve.Error()}
	case errors.As(err, &mbe):
		return http.StatusRequestEntityTooLarge, ErrorInfo{Kind: KindTooLarge, Message: err.Error()}
	case errors.As(err, &oe):
		return http.StatusTooManyRequests, ErrorInfo{Kind: KindOverloaded, Message: oe.Error(), Queued: oe.Queued}
	case errors.As(err, &fe):
		return http.StatusConflict, ErrorInfo{Kind: KindConflict, Message: fe.Error()}
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, ErrorInfo{Kind: KindDraining, Message: ErrDraining.Error()}
	case errors.As(err, &se):
		// Before the transient check: a storage failure may WRAP an
		// injected transient cause, but the contract the client needs is
		// the storage one — the delta was not made durable, not applied,
		// and a retry may succeed once the disk recovers.
		return http.StatusServiceUnavailable, ErrorInfo{Kind: KindStorage, Message: se.Error()}
	case errors.As(err, &be):
		return http.StatusRequestEntityTooLarge, ErrorInfo{
			Kind:    KindBudget,
			Message: be.Error(),
			Budget:  &BudgetInfo{Resource: string(be.Kind), Limit: be.Limit, Observed: be.Observed},
		}
	case errors.As(err, &ce):
		return http.StatusRequestTimeout, ErrorInfo{Kind: KindCanceled, Message: ce.Error()}
	case runctl.IsTransient(err):
		return http.StatusServiceUnavailable, ErrorInfo{Kind: KindTransient, Message: err.Error()}
	case errors.As(err, &ie):
		return http.StatusInternalServerError, ErrorInfo{Kind: KindInternal, Message: ie.Error()}
	default:
		return http.StatusInternalServerError, ErrorInfo{Kind: KindInternal, Message: err.Error()}
	}
}

// StatusForKind returns the HTTP status every error of the given wire
// kind carries. Tests use it to assert the body and the status line can
// never disagree.
func StatusForKind(kind string) (int, bool) {
	switch kind {
	case KindValidation:
		return http.StatusBadRequest, true
	case KindTooLarge, KindBudget:
		return http.StatusRequestEntityTooLarge, true
	case KindCanceled:
		return http.StatusRequestTimeout, true
	case KindConflict:
		return http.StatusConflict, true
	case KindOverloaded:
		return http.StatusTooManyRequests, true
	case KindDraining, KindTransient, KindStorage:
		return http.StatusServiceUnavailable, true
	case KindInternal:
		return http.StatusInternalServerError, true
	}
	return 0, false
}

// RetryAfter returns the Retry-After hint in seconds for retryable
// rejections, derived from the pressure the request actually observed:
// a shed request backs off in proportion to the queue depth at
// rejection (one second per four waiters, capped — deeper queue means
// a longer useful wait), draining tells clients to sit out a restart,
// and a transient fault merits a quick retry. ok is false for kinds
// where retrying the same request cannot help (validation, budget,
// conflict, internal); those responses carry no Retry-After at all.
// TestErrorCodeTable pins the derivation.
func RetryAfter(err error) (seconds int, ok bool) {
	_, info := Classify(err)
	switch info.Kind {
	case KindOverloaded:
		return min(1+info.Queued/4, 30), true
	case KindDraining:
		return 5, true
	case KindTransient:
		return 1, true
	case KindStorage:
		// Disk pressure does not clear in a second; hint a real pause.
		return 5, true
	}
	return 0, false
}

// WriteError serializes the stable JSON error schema. Retryable
// rejections (shedding, draining, transient) advertise Retry-After so
// well-behaved clients back off instead of hammering a hot server —
// the value scales with observed queue depth (RetryAfter).
func WriteError(w http.ResponseWriter, err error) {
	status, info := Classify(err)
	w.Header().Set("Content-Type", "application/json")
	if secs, ok := RetryAfter(err); ok {
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(errorBody{Error: info}) // best effort: the client may be gone
}
