package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ptx/internal/parser"
	"ptx/internal/pt"
)

// tinySpec/tinyDB: a two-level publish small enough that goldens are
// obvious but real enough to exercise registers and text rendering.
const tinySpec = `
schema R/1
transducer tiny root db start q0
tag item/1, text/1
rule q0 db -> (q1, item, [x;] R(x))
rule q1 item -> (q2, text, [x;] Reg(x))
rule q2 text -> .
`

const tinyDB = `
R(a)
R(b)
R(c)
`

const badSpec = `transducer broken root`

// newTestServer builds a server over a registry holding tiny/tinydb
// plus any extra (name, source) pairs, wrapped in an httptest server.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Registry == nil {
		reg := NewRegistry()
		if err := reg.RegisterSpec("tiny", tinySpec); err != nil {
			t.Fatalf("RegisterSpec: %v", err)
		}
		if err := reg.RegisterDB("tinydb", tinyDB); err != nil {
			t.Fatalf("RegisterDB: %v", err)
		}
		cfg.Registry = reg
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// post sends a /publish request and returns status, headers and body.
func post(t *testing.T, ts *httptest.Server, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/publish", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /publish: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp.StatusCode, resp.Header, b
}

// decodeError parses the stable JSON error schema and cross-checks the
// status line against the kind's pinned status — the pair must never
// disagree, whatever path produced the error.
func decodeError(t *testing.T, status int, body []byte) ErrorInfo {
	t.Helper()
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("error body is not the JSON schema: %v\n%s", err, body)
	}
	if eb.Error.Kind == "" {
		t.Fatalf("error body has empty kind: %s", body)
	}
	want, ok := StatusForKind(eb.Error.Kind)
	if !ok {
		t.Fatalf("unknown error kind %q", eb.Error.Kind)
	}
	if status != want {
		t.Fatalf("kind %q arrived with status %d, pinned mapping says %d", eb.Error.Kind, status, want)
	}
	return eb.Error
}

// goldenXML runs the spec directly (no server) and renders the XML the
// HTTP path must reproduce byte for byte.
func goldenXML(t *testing.T, spec, db string, canonical bool) []byte {
	t.Helper()
	tr, err := parser.ParseTransducer(spec)
	if err != nil {
		t.Fatalf("parsing golden spec: %v", err)
	}
	inst, err := parser.ParseInstance(db, tr.Schema)
	if err != nil {
		t.Fatalf("parsing golden db: %v", err)
	}
	res, err := tr.Run(inst, pt.Options{})
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	var buf bytes.Buffer
	if canonical {
		if err := res.Xi.WriteCanonicalVirtual(&buf, tr.Virtual); err != nil {
			t.Fatalf("golden canonical: %v", err)
		}
		buf.WriteByte('\n')
	} else {
		if err := res.Xi.WriteXMLVirtual(&buf, tr.Virtual); err != nil {
			t.Fatalf("golden xml: %v", err)
		}
	}
	return buf.Bytes()
}
