package datalog

import (
	"fmt"

	"ptx/internal/logic"
	"ptx/internal/pt"
)

// Guards extend rules to LinDatalog(FO) (Grädel's fragment, which
// Theorem 3(3) shows PT(FO, tuple, O) captures): a guard is an
// arbitrary FO formula over the EDB predicates whose free variables
// join the rule body like atom variables.
//
// A Rule with Guards participates in evaluation exactly like its atoms;
// Validate treats guard free variables as bound.

// HasGuards reports whether any rule carries an FO guard.
func (p *Program) HasGuards() bool {
	for _, r := range p.Rules {
		if len(r.Guards) > 0 {
			return true
		}
	}
	return false
}

// validateGuards checks that guards only reference EDB predicates
// (LinDatalog(FO) allows FO over the EDBs, not over IDBs).
func (p *Program) validateGuards() error {
	for _, r := range p.Rules {
		for _, g := range r.Guards {
			for _, rel := range logic.Relations(g) {
				if p.isIDB(rel) {
					return fmt.Errorf("datalog: guard of %s references IDB predicate %s", r, rel)
				}
				if _, ok := p.EDB.Arity(rel); !ok {
					return fmt.Errorf("datalog: guard of %s references unknown relation %s", r, rel)
				}
			}
		}
	}
	return nil
}

// FromTransducerFO translates a PT(FO, tuple, O) transducer viewed as a
// relational query into an equivalent LinDatalog(FO) program — the
// constructive half of Theorem 3(3). The structure mirrors
// FromTransducer; because tuple registers hold exactly one tuple, every
// Reg(t̄) atom (even under negation or quantifiers) is equivalent to
// t̄ = z̄ for the parent predicate's variables z̄, so FO item queries
// become FO guards over the EDBs.
func FromTransducerFO(t *pt.Transducer, outLabel string) (*Program, error) {
	cl := t.Classify()
	if cl.Logic > logic.FO {
		return nil, fmt.Errorf("datalog: transducer %s uses %s, need at most FO", t.Name, cl.Logic)
	}
	if cl.Store != pt.TupleStore {
		return nil, fmt.Errorf("datalog: transducer %s has relation stores", t.Name)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if _, ok := t.Arities[outLabel]; !ok {
		return nil, fmt.Errorf("datalog: unknown output label %q", outLabel)
	}

	prog := &Program{EDB: t.Schema, Output: "ans"}
	pred := func(state, tag string) string { return "P_" + state + "_" + tag }
	prog.Rules = append(prog.Rules, &Rule{Head: &logic.Atom{Rel: pred(t.Start, t.RootTag)}})

	outArity := t.Arities[outLabel]
	ansAdded := map[string]bool{}
	addAns := func(state string) {
		key := pred(state, outLabel)
		if ansAdded[key] {
			return
		}
		ansAdded[key] = true
		args := make([]logic.Term, outArity)
		vars := make([]logic.Term, outArity)
		for i := 0; i < outArity; i++ {
			v := logic.Var(fmt.Sprintf("o%d", i))
			args[i], vars[i] = v, v
		}
		prog.Rules = append(prog.Rules, &Rule{
			Head: &logic.Atom{Rel: "ans", Args: args},
			Body: []*logic.Atom{{Rel: key, Args: vars}},
		})
	}

	for _, r := range t.Rules() {
		parentArity := t.Arities[r.Tag]
		zs := make([]logic.Term, parentArity)
		for i := range zs {
			zs[i] = logic.Var(fmt.Sprintf("z_reg%d", i))
		}
		for _, it := range r.Items {
			// Replace every Reg(t̄) by ⋀ t̄_j = z_j (sound in any context:
			// the register is the single tuple z̄).
			guard := logic.ReplaceAtom(it.Query.F, pt.RegRel, func(args []logic.Term) logic.Formula {
				parts := make([]logic.Formula, len(args))
				for j, a := range args {
					parts[j] = logic.EqT(a, zs[j])
				}
				return logic.Conj(parts...)
			})
			rule := &Rule{
				Head:   &logic.Atom{Rel: pred(it.State, it.Tag), Args: logicTerms(it.Query.Head())},
				Body:   []*logic.Atom{{Rel: pred(r.State, r.Tag), Args: zs}},
				Guards: []logic.Formula{guard},
			}
			prog.Rules = append(prog.Rules, rule)
			if it.Tag == outLabel {
				addAns(it.State)
			}
		}
	}
	if len(ansAdded) == 0 {
		args := make([]logic.Term, outArity)
		var guards []logic.Formula
		for i := 0; i < outArity; i++ {
			v := logic.Var(fmt.Sprintf("o%d", i))
			args[i] = v
			guards = append(guards, logic.EqT(v, logic.Const("0")))
		}
		guards = append(guards, logic.False)
		prog.Rules = append(prog.Rules, &Rule{
			Head:   &logic.Atom{Rel: "ans", Args: args},
			Body:   []*logic.Atom{{Rel: pred(t.Start, t.RootTag)}},
			Guards: guards,
		})
	}
	return prog, nil
}
