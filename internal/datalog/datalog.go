// Package datalog implements linear datalog (LinDatalog) with '≠' — the
// relational query language that PT(CQ, tuple, normal) captures
// (Theorem 3(2)) — together with semi-naive evaluation, structural
// analysis (linearity, recursion, determinism), and the two-way
// translation with publishing transducers from the proof of
// Theorem 3(2).
//
// A program is a set of rules
//
//	p(x̄) ← p1(x̄1), …, pn(x̄n), constraints
//
// where each pi is an EDB or IDB predicate and constraints are = / ≠
// between variables and constants. The program is linear when every
// rule body holds at most one IDB atom.
package datalog

import (
	"fmt"
	"sort"
	"strings"

	"ptx/internal/cq"
	"ptx/internal/eval"
	"ptx/internal/logic"
	"ptx/internal/relation"
	"ptx/internal/value"
)

// Rule is a single datalog rule. Head arguments may be variables or
// constants; body atoms range over EDB and IDB predicates. Guards are
// arbitrary FO formulas over the EDB predicates (LinDatalog(FO),
// see fo.go); plain LinDatalog rules have none.
type Rule struct {
	Head        *logic.Atom
	Body        []*logic.Atom
	Constraints []cq.Constraint
	Guards      []logic.Formula
}

// String renders the rule in the usual head ← body notation.
func (r *Rule) String() string {
	parts := make([]string, 0, len(r.Body)+len(r.Constraints)+len(r.Guards))
	for _, a := range r.Body {
		parts = append(parts, a.String())
	}
	for _, c := range r.Constraints {
		parts = append(parts, c.String())
	}
	for _, g := range r.Guards {
		parts = append(parts, g.String())
	}
	return r.Head.String() + " <- " + strings.Join(parts, ", ")
}

// Program is a datalog program over an EDB schema with a designated
// output (answer) predicate.
type Program struct {
	EDB    *relation.Schema
	Output string
	Rules  []*Rule
}

// IDB returns the set of intensional predicates (those appearing in
// rule heads), sorted.
func (p *Program) IDB() []string {
	set := make(map[string]bool)
	for _, r := range p.Rules {
		set[r.Head.Rel] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (p *Program) isIDB(name string) bool {
	for _, r := range p.Rules {
		if r.Head.Rel == name {
			return true
		}
	}
	return false
}

// Validate checks arities are consistent, body predicates are EDB or
// IDB, and the output predicate has at least one rule.
func (p *Program) Validate() error {
	arity := make(map[string]int)
	for _, n := range p.EDB.Names() {
		a, _ := p.EDB.Arity(n)
		arity[n] = a
	}
	record := func(a *logic.Atom) error {
		if prev, ok := arity[a.Rel]; ok {
			if prev != len(a.Args) {
				return fmt.Errorf("datalog: %s used with arities %d and %d", a.Rel, prev, len(a.Args))
			}
			return nil
		}
		arity[a.Rel] = len(a.Args)
		return nil
	}
	for _, r := range p.Rules {
		if err := record(r.Head); err != nil {
			return err
		}
		if _, isEDB := p.EDB.Arity(r.Head.Rel); isEDB {
			return fmt.Errorf("datalog: rule head %s is an EDB predicate", r.Head.Rel)
		}
		for _, a := range r.Body {
			if err := record(a); err != nil {
				return err
			}
			if !p.isIDB(a.Rel) {
				if _, ok := p.EDB.Arity(a.Rel); !ok {
					return fmt.Errorf("datalog: body predicate %s is neither EDB nor IDB in %s", a.Rel, r)
				}
			}
		}
		// Head variables must be bound by the body (range restriction);
		// constants are always fine. Guard free variables bind under the
		// active-domain semantics.
		bound := make(map[logic.Var]bool)
		for _, a := range r.Body {
			for _, t := range a.Args {
				if v, ok := t.(logic.Var); ok {
					bound[v] = true
				}
			}
		}
		for _, g := range r.Guards {
			for _, v := range logic.FreeVars(g) {
				bound[v] = true
			}
		}
		// Equality with a constant or bound variable also binds.
		changed := true
		for changed {
			changed = false
			for _, c := range r.Constraints {
				if !c.Eq {
					continue
				}
				lv, lok := c.L.(logic.Var)
				rv, rok := c.R.(logic.Var)
				switch {
				case lok && !bound[lv] && (!rok || bound[rv]):
					bound[lv] = true
					changed = true
				case rok && !bound[rv] && (!lok || bound[lv]):
					bound[rv] = true
					changed = true
				}
			}
		}
		for _, t := range r.Head.Args {
			if v, ok := t.(logic.Var); ok && !bound[v] {
				return fmt.Errorf("datalog: head variable %s unbound in %s", v, r)
			}
		}
	}
	if !p.isIDB(p.Output) {
		return fmt.Errorf("datalog: output predicate %s has no rules", p.Output)
	}
	return p.validateGuards()
}

// IsLinear reports whether every rule body holds at most one IDB atom.
func (p *Program) IsLinear() bool {
	for _, r := range p.Rules {
		n := 0
		for _, a := range r.Body {
			if p.isIDB(a.Rel) {
				n++
			}
		}
		if n > 1 {
			return false
		}
	}
	return true
}

// IsNonrecursive reports whether the IDB dependency graph is acyclic.
func (p *Program) IsNonrecursive() bool {
	succ := make(map[string][]string)
	for _, r := range p.Rules {
		for _, a := range r.Body {
			if p.isIDB(a.Rel) {
				succ[r.Head.Rel] = append(succ[r.Head.Rel], a.Rel)
			}
		}
	}
	const (
		white = iota
		gray
		black
	)
	color := make(map[string]int)
	var visit func(n string) bool
	visit = func(n string) bool {
		color[n] = gray
		for _, m := range succ[n] {
			switch color[m] {
			case gray:
				return true
			case white:
				if visit(m) {
					return true
				}
			}
		}
		color[n] = black
		return false
	}
	for _, n := range p.IDB() {
		if color[n] == white && visit(n) {
			return false
		}
	}
	return true
}

// IsDeterministic reports whether every IDB predicate has exactly one
// rule (the deterministic LinDatalog of Claim 5).
func (p *Program) IsDeterministic() bool {
	count := make(map[string]int)
	for _, r := range p.Rules {
		count[r.Head.Rel]++
	}
	for _, n := range count {
		if n != 1 {
			return false
		}
	}
	return true
}

// Eval computes the program's fixpoint on inst by semi-naive iteration
// and returns the output relation. SetNaive in Options switches to naive
// evaluation (used by the ablation benchmark).
func (p *Program) Eval(inst *relation.Instance) (*relation.Relation, error) {
	return p.eval(inst, false)
}

// EvalNaive recomputes every rule from the full IDB each round; it is
// the ablation baseline for the semi-naive evaluator.
func (p *Program) EvalNaive(inst *relation.Instance) (*relation.Relation, error) {
	return p.eval(inst, true)
}

func (p *Program) eval(inst *relation.Instance, naive bool) (*relation.Relation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	arities := make(map[string]int)
	for _, r := range p.Rules {
		arities[r.Head.Rel] = len(r.Head.Args)
	}
	total := make(map[string]*relation.Relation)
	delta := make(map[string]*relation.Relation)
	for n, a := range arities {
		total[n] = relation.New(a)
		delta[n] = relation.New(a)
	}

	// fire evaluates one rule; when deltaOcc >= 0 that body-atom
	// occurrence is restricted to its delta relation (semi-naive).
	fire := func(r *Rule, deltaOcc int) (*relation.Relation, error) {
		env := eval.NewEnv(inst)
		for n, rel := range total {
			env = env.WithRelation(n, rel)
		}
		var parts []logic.Formula
		for i, a := range r.Body {
			rel := a.Rel
			if i == deltaOcc {
				rel = "Δ" + a.Rel
				env = env.WithRelation(rel, delta[a.Rel])
			}
			parts = append(parts, &logic.Atom{Rel: rel, Args: a.Args})
		}
		parts = append(parts, cq.ConstraintsFormula(r.Constraints))
		parts = append(parts, r.Guards...)
		body := logic.Conj(parts...)

		b, err := eval.Eval(body, env)
		if err != nil {
			return nil, fmt.Errorf("datalog: rule %s: %v", r, err)
		}
		idx := make(map[logic.Var]int, len(b.Vars))
		for i, v := range b.Vars {
			idx[v] = i
		}
		out := relation.New(len(r.Head.Args))
		b.Rel.Each(func(t value.Tuple) bool {
			h := make(value.Tuple, len(r.Head.Args))
			for i, arg := range r.Head.Args {
				switch u := arg.(type) {
				case logic.Const:
					h[i] = value.V(u)
				case logic.Var:
					h[i] = t[idx[u]]
				}
			}
			out.Add(h)
			return true
		})
		return out, nil
	}

	// Initial round: rules fired with empty IDB (only EDB-only rules can
	// produce tuples, but firing everything is simpler and correct).
	for _, r := range p.Rules {
		res, err := fire(r, -1)
		if err != nil {
			return nil, err
		}
		for _, t := range res.Tuples() {
			if !total[r.Head.Rel].Contains(t) {
				total[r.Head.Rel].Add(t)
				delta[r.Head.Rel].Add(t)
			}
		}
	}

	for {
		next := make(map[string]*relation.Relation)
		for n, a := range arities {
			next[n] = relation.New(a)
		}
		grew := false
		for _, r := range p.Rules {
			var results []*relation.Relation
			if naive {
				res, err := fire(r, -1)
				if err != nil {
					return nil, err
				}
				results = append(results, res)
			} else {
				// Semi-naive: fire once per IDB body occurrence with a
				// nonempty delta (other occurrences see the full total).
				for i, a := range r.Body {
					if p.isIDB(a.Rel) && !delta[a.Rel].Empty() {
						res, err := fire(r, i)
						if err != nil {
							return nil, err
						}
						results = append(results, res)
					}
				}
			}
			for _, res := range results {
				for _, t := range res.Tuples() {
					if !total[r.Head.Rel].Contains(t) && !next[r.Head.Rel].Contains(t) {
						next[r.Head.Rel].Add(t)
						grew = true
					}
				}
			}
		}
		for n, rel := range next {
			for _, t := range rel.Tuples() {
				total[n].Add(t)
			}
			delta[n] = rel
		}
		if !grew {
			break
		}
	}
	return total[p.Output], nil
}
