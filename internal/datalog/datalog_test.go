package datalog

import (
	"fmt"
	"math/rand"
	"testing"

	"ptx/internal/cq"
	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/registrar"
	"ptx/internal/relation"
	"ptx/internal/value"
)

var (
	x = logic.Var("x")
	y = logic.Var("y")
	z = logic.Var("z")
)

// tcProgram is the canonical linear program: transitive closure of E.
func tcProgram() *Program {
	schema := relation.NewSchema().MustDeclare("E", 2)
	return &Program{
		EDB:    schema,
		Output: "tc",
		Rules: []*Rule{
			{Head: logic.R("tc", x, y), Body: []*logic.Atom{logic.R("E", x, y)}},
			{Head: logic.R("tc", x, z), Body: []*logic.Atom{logic.R("tc", x, y), logic.R("E", y, z)}},
		},
	}
}

func graph(edges ...[2]string) *relation.Instance {
	i := relation.NewInstance(relation.NewSchema().MustDeclare("E", 2))
	for _, e := range edges {
		i.Add("E", e[0], e[1])
	}
	return i
}

func randomGraph(seed int64, n, m int) *relation.Instance {
	rng := rand.New(rand.NewSource(seed))
	i := relation.NewInstance(relation.NewSchema().MustDeclare("E", 2))
	for k := 0; k < m; k++ {
		i.Add("E", string(value.Of(rng.Intn(n))), string(value.Of(rng.Intn(n))))
	}
	return i
}

func TestTCEval(t *testing.T) {
	p := tcProgram()
	inst := graph([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "d"})
	out, err := p.Eval(inst)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 6 {
		t.Fatalf("TC = %s", out)
	}
	if !out.Contains(value.Tuple{"a", "d"}) {
		t.Fatalf("TC missing (a,d)")
	}
}

func TestTCOnCycle(t *testing.T) {
	p := tcProgram()
	inst := graph([2]string{"a", "b"}, [2]string{"b", "a"})
	out, err := p.Eval(inst)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 { // (a,b),(b,a),(a,a),(b,b)
		t.Fatalf("TC on 2-cycle = %s", out)
	}
}

func TestSemiNaiveMatchesNaive(t *testing.T) {
	p := tcProgram()
	for seed := int64(0); seed < 20; seed++ {
		inst := randomGraph(seed, 6, 10)
		fast, err := p.Eval(inst)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := p.EvalNaive(inst)
		if err != nil {
			t.Fatal(err)
		}
		if !fast.Equal(slow) {
			t.Fatalf("seed %d: semi-naive %s vs naive %s", seed, fast, slow)
		}
	}
}

func TestStructuralAnalysis(t *testing.T) {
	p := tcProgram()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.IsLinear() {
		t.Error("TC is linear")
	}
	if p.IsNonrecursive() {
		t.Error("TC is recursive")
	}
	if p.IsDeterministic() {
		t.Error("TC has two rules for tc")
	}
	// Nonlinear variant: tc(x,z) ← tc(x,y), tc(y,z).
	nl := &Program{
		EDB:    p.EDB,
		Output: "tc",
		Rules: []*Rule{
			{Head: logic.R("tc", x, y), Body: []*logic.Atom{logic.R("E", x, y)}},
			{Head: logic.R("tc", x, z), Body: []*logic.Atom{logic.R("tc", x, y), logic.R("tc", y, z)}},
		},
	}
	if nl.IsLinear() {
		t.Error("doubled TC is not linear")
	}
	// Nonlinear evaluation still works and agrees with linear TC.
	inst := randomGraph(3, 5, 8)
	a, err := p.Eval(inst)
	if err != nil {
		t.Fatal(err)
	}
	b, err := nl.Eval(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("linear and nonlinear TC disagree: %s vs %s", a, b)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	schema := relation.NewSchema().MustDeclare("E", 2)
	// Unbound head variable.
	bad := &Program{EDB: schema, Output: "p", Rules: []*Rule{
		{Head: logic.R("p", x, y), Body: []*logic.Atom{logic.R("E", x, x)}},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("unbound head variable should fail validation")
	}
	// EDB head.
	bad2 := &Program{EDB: schema, Output: "E", Rules: []*Rule{
		{Head: logic.R("E", x, y), Body: []*logic.Atom{logic.R("E", y, x)}},
	}}
	if err := bad2.Validate(); err == nil {
		t.Error("EDB head should fail validation")
	}
	// Arity clash.
	bad3 := &Program{EDB: schema, Output: "p", Rules: []*Rule{
		{Head: logic.R("p", x), Body: []*logic.Atom{logic.R("E", x, x)}},
		{Head: logic.R("p", x, y), Body: []*logic.Atom{logic.R("E", x, y)}},
	}}
	if err := bad3.Validate(); err == nil {
		t.Error("arity clash should fail validation")
	}
}

func TestConstraintsInRules(t *testing.T) {
	schema := relation.NewSchema().MustDeclare("E", 2)
	// Proper paths only: p(x,y) ← E(x,y), x≠y.
	p := &Program{EDB: schema, Output: "p", Rules: []*Rule{
		{Head: logic.R("p", x, y), Body: []*logic.Atom{logic.R("E", x, y)},
			Constraints: []cq.Constraint{{L: x, R: y, Eq: false}}},
	}}
	inst := graph([2]string{"a", "a"}, [2]string{"a", "b"})
	out, err := p.Eval(inst)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || !out.Contains(value.Tuple{"a", "b"}) {
		t.Fatalf("constrained rule = %s", out)
	}
}

func TestConstantHeads(t *testing.T) {
	schema := relation.NewSchema().MustDeclare("E", 2)
	p := &Program{EDB: schema, Output: "flag", Rules: []*Rule{
		{Head: &logic.Atom{Rel: "flag", Args: []logic.Term{logic.Const("yes")}},
			Body: []*logic.Atom{logic.R("E", x, y)}},
	}}
	inst := graph([2]string{"a", "b"})
	out, err := p.Eval(inst)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || !out.Contains(value.Tuple{"yes"}) {
		t.Fatalf("constant head = %s", out)
	}
}

// --- Theorem 3(2): PT(CQ, tuple, normal) = LinDatalog -----------------

func TestFromTransducerTau1(t *testing.T) {
	tr := registrar.Tau1()
	prog, err := FromTransducer(tr, "course")
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	if !prog.IsLinear() {
		t.Error("translation must be linear")
	}
	for n := 1; n <= 5; n++ {
		inst := registrar.ChainInstance(n)
		fromTr, err := tr.OutputRelation(inst, "course", pt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		fromDl, err := prog.Eval(inst)
		if err != nil {
			t.Fatal(err)
		}
		if !fromTr.Equal(fromDl) {
			t.Fatalf("chain(%d): transducer %s vs datalog %s", n, fromTr, fromDl)
		}
	}
}

func TestFromTransducerTau1Cycle(t *testing.T) {
	tr := registrar.Tau1()
	prog, err := FromTransducer(tr, "course")
	if err != nil {
		t.Fatal(err)
	}
	for n := 2; n <= 4; n++ {
		inst := registrar.CycleInstance(n)
		fromTr, err := tr.OutputRelation(inst, "course", pt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		fromDl, err := prog.Eval(inst)
		if err != nil {
			t.Fatal(err)
		}
		if !fromTr.Equal(fromDl) {
			t.Fatalf("cycle(%d): transducer %s vs datalog %s", n, fromTr, fromDl)
		}
	}
}

func TestFromTransducerRejectsFO(t *testing.T) {
	if _, err := FromTransducer(registrar.Tau2(), "course"); err == nil {
		t.Error("τ2 is FO/relation; translation must refuse")
	}
}

func TestToTransducerTC(t *testing.T) {
	p := tcProgram()
	tr, err := ToTransducer(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	cl := tr.Classify()
	if cl.Logic != logic.CQ || cl.Store != pt.TupleStore || cl.Output != pt.NormalOutput {
		t.Fatalf("translated transducer class %s, want PT(CQ, tuple, normal)", cl)
	}
	for seed := int64(0); seed < 12; seed++ {
		inst := randomGraph(seed, 5, 7)
		fromDl, err := p.Eval(inst)
		if err != nil {
			t.Fatal(err)
		}
		fromTr, err := tr.OutputRelation(inst, "ans", pt.Options{MaxNodes: 500000})
		if err != nil {
			t.Fatal(err)
		}
		if !fromDl.Equal(fromTr) {
			t.Fatalf("seed %d: datalog %s vs transducer %s", seed, fromDl, fromTr)
		}
	}
}

func TestRoundTripTransducerDatalogTransducer(t *testing.T) {
	// τ1 → LinDatalog → transducer: all three agree on the output
	// relation.
	tr := registrar.Tau1()
	prog, err := FromTransducer(tr, "course")
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := ToTransducer(prog)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 4; n++ {
		inst := registrar.ChainInstance(n)
		a, err := tr.OutputRelation(inst, "course", pt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := tr2.OutputRelation(inst, "ans", pt.Options{MaxNodes: 500000})
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("chain(%d): %s vs %s", n, a, b)
		}
	}
}

func TestToTransducerRejectsNonlinear(t *testing.T) {
	nl := &Program{
		EDB:    relation.NewSchema().MustDeclare("E", 2),
		Output: "tc",
		Rules: []*Rule{
			{Head: logic.R("tc", x, y), Body: []*logic.Atom{logic.R("E", x, y)}},
			{Head: logic.R("tc", x, z), Body: []*logic.Atom{logic.R("tc", x, y), logic.R("tc", y, z)}},
		},
	}
	if _, err := ToTransducer(nl); err == nil {
		t.Error("nonlinear program must be rejected")
	}
}

func TestRuleString(t *testing.T) {
	r := &Rule{Head: logic.R("p", x), Body: []*logic.Atom{logic.R("E", x, y)},
		Constraints: []cq.Constraint{{L: x, R: y, Eq: false}}}
	want := "p(x) <- E(x,y), x!=y"
	if r.String() != want {
		t.Fatalf("String = %s", r)
	}
}

func TestLargerChainAgreement(t *testing.T) {
	// Longer chains exercise multi-round semi-naive evaluation.
	p := tcProgram()
	edges := make([][2]string, 0, 12)
	for i := 0; i < 12; i++ {
		edges = append(edges, [2]string{fmt.Sprintf("n%02d", i), fmt.Sprintf("n%02d", i+1)})
	}
	inst := graph(edges...)
	out, err := p.Eval(inst)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 13*12/2 {
		t.Fatalf("TC of 12-chain has %d pairs, want %d", out.Len(), 13*12/2)
	}
}
