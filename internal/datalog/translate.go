package datalog

import (
	"fmt"

	"ptx/internal/cq"
	"ptx/internal/logic"
	"ptx/internal/pt"
)

// FromTransducer translates a PT(CQ, tuple, O) transducer viewed as a
// relational query with output label outLabel into an equivalent
// LinDatalog program (the first half of Theorem 3(2)).
//
// One IDB predicate P_q_a of arity Θ(a) is created per dependency-graph
// node; a transducer rule item (q,a) → (q',a',φ) becomes the linear rule
//
//	P_q'_a'(x̄φ) ← P_q_a(z̄), body(φ)[Reg(t̄) ↦ t̄ = z̄], constraints(φ)
//
// which is sound and complete for the output relation Rτ because with
// tuple stores every register is a single tuple and the stop condition
// only prunes subtrees whose registers are already present.
func FromTransducer(t *pt.Transducer, outLabel string) (*Program, error) {
	cl := t.Classify()
	if cl.Logic != logic.CQ {
		return nil, fmt.Errorf("datalog: transducer %s uses %s, need CQ", t.Name, cl.Logic)
	}
	if cl.Store != pt.TupleStore {
		return nil, fmt.Errorf("datalog: transducer %s has relation stores", t.Name)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if _, ok := t.Arities[outLabel]; !ok {
		return nil, fmt.Errorf("datalog: unknown output label %q", outLabel)
	}

	prog := &Program{EDB: t.Schema, Output: "ans"}
	pred := func(state, tag string) string { return "P_" + state + "_" + tag }

	// Base fact for the root configuration.
	prog.Rules = append(prog.Rules, &Rule{
		Head: &logic.Atom{Rel: pred(t.Start, t.RootTag)},
	})

	outArity := t.Arities[outLabel]
	ansAdded := make(map[string]bool)
	addAnsRule := func(state string) {
		key := pred(state, outLabel)
		if ansAdded[key] {
			return
		}
		ansAdded[key] = true
		args := make([]logic.Term, outArity)
		vars := make([]logic.Term, outArity)
		for i := 0; i < outArity; i++ {
			v := logic.Var(fmt.Sprintf("o%d", i))
			args[i] = v
			vars[i] = v
		}
		prog.Rules = append(prog.Rules, &Rule{
			Head: &logic.Atom{Rel: "ans", Args: args},
			Body: []*logic.Atom{{Rel: key, Args: vars}},
		})
	}

	for _, r := range t.Rules() {
		parentPred := pred(r.State, r.Tag)
		parentArity := t.Arities[r.Tag]
		for _, it := range r.Items {
			nf, err := cq.Normalize(it.Query.Head(), it.Query.F)
			if err != nil {
				return nil, fmt.Errorf("datalog: rule (%s,%s) item %s: %v", r.State, r.Tag, it.Tag, err)
			}
			rule, err := itemToRule(nf, parentPred, parentArity, pred(it.State, it.Tag))
			if err != nil {
				return nil, err
			}
			prog.Rules = append(prog.Rules, rule)
			if it.Tag == outLabel {
				addAnsRule(it.State)
			}
		}
	}
	if len(ansAdded) == 0 {
		// outLabel is never produced: give ans a single unsatisfiable
		// rule so the program stays valid and always answers empty.
		args := make([]logic.Term, outArity)
		var cons []cq.Constraint
		for i := 0; i < outArity; i++ {
			v := logic.Var(fmt.Sprintf("o%d", i))
			args[i] = v
			cons = append(cons, cq.Constraint{L: v, R: logic.Const("0"), Eq: true})
		}
		dead := logic.Var("never")
		cons = append(cons,
			cq.Constraint{L: dead, R: logic.Const("0"), Eq: true},
			cq.Constraint{L: dead, R: logic.Const("0"), Eq: false})
		prog.Rules = append(prog.Rules, &Rule{
			Head:        &logic.Atom{Rel: "ans", Args: args},
			Body:        []*logic.Atom{{Rel: pred(t.Start, t.RootTag)}},
			Constraints: cons,
		})
	}
	return prog, nil
}

// itemToRule converts one normalized item query into a linear rule:
// the parent predicate binds fresh register variables z̄ and every
// Reg(t̄) atom becomes component equalities t̄ = z̄.
func itemToRule(nf *cq.NF, parentPred string, parentArity int, childPred string) (*Rule, error) {
	zs := make([]logic.Term, parentArity)
	for i := range zs {
		zs[i] = logic.Var(fmt.Sprintf("z_reg%d", i))
	}
	rule := &Rule{Head: &logic.Atom{Rel: childPred, Args: logicTerms(nf.Head)}}
	rule.Body = append(rule.Body, &logic.Atom{Rel: parentPred, Args: zs})
	for _, a := range nf.Atoms {
		if a.Rel == pt.RegRel {
			if len(a.Args) != parentArity {
				return nil, fmt.Errorf("datalog: Reg atom arity %d vs parent %d", len(a.Args), parentArity)
			}
			for i, t := range a.Args {
				rule.Constraints = append(rule.Constraints, cq.Constraint{L: t, R: zs[i], Eq: true})
			}
			continue
		}
		rule.Body = append(rule.Body, a)
	}
	rule.Constraints = append(rule.Constraints, nf.Constraints...)
	return rule, nil
}

func logicTerms(vs []logic.Var) []logic.Term {
	out := make([]logic.Term, len(vs))
	for i, v := range vs {
		out[i] = v
	}
	return out
}

// ToTransducer translates a LinDatalog program into a publishing
// transducer in PT(CQ, tuple, normal) whose output relation on label
// "ans" equals the program's answer on every instance (the second half
// of Theorem 3(2)).
//
// Each program rule k gets a tag t<k> carrying the derived head tuple;
// a node tagged t<k> (head predicate P) spawns, for every rule m whose
// IDB body atom is over P, a t<m> child whose query replaces that atom
// by Reg; rules deriving the output predicate additionally copy their
// register to an "ans" child.
func ToTransducer(p *Program) (*pt.Transducer, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.IsLinear() {
		return nil, fmt.Errorf("datalog: program is not linear")
	}
	outArity := -1
	for _, r := range p.Rules {
		if r.Head.Rel == p.Output {
			outArity = len(r.Head.Args)
		}
	}
	if outArity < 0 {
		return nil, fmt.Errorf("datalog: no rule for output %s", p.Output)
	}

	t := pt.New("lin2pt", p.EDB, "q0", "r")
	t.DeclareTag("ans", outArity)

	ruleTag := func(k int) string { return fmt.Sprintf("t%d", k) }
	for k, r := range p.Rules {
		t.DeclareTag(ruleTag(k), len(r.Head.Args))
	}

	// idbOcc returns the (unique) IDB body atom of rule r, if any.
	idbOcc := func(r *Rule) *logic.Atom {
		for _, a := range r.Body {
			if p.isIDB(a.Rel) {
				return a
			}
		}
		return nil
	}

	// ruleQuery builds the item query for firing rule m when the parent
	// register holds a tuple of m's IDB body predicate (parent == nil for
	// EDB-only rules fired from the root).
	ruleQuery := func(m int) (*logic.Query, error) {
		r := p.Rules[m]
		// Head variables h0..h(n-1) with equalities to the head terms.
		headVars := make([]logic.Var, len(r.Head.Args))
		var parts []logic.Formula
		for i, arg := range r.Head.Args {
			headVars[i] = logic.Var(fmt.Sprintf("h%d", i))
			parts = append(parts, logic.EqT(headVars[i], arg))
		}
		for _, a := range r.Body {
			if p.isIDB(a.Rel) {
				parts = append(parts, &logic.Atom{Rel: pt.RegRel, Args: a.Args})
				continue
			}
			parts = append(parts, a)
		}
		parts = append(parts, cq.ConstraintsFormula(r.Constraints))
		body := logic.Conj(parts...)
		// Existentially close everything except the head variables.
		headSet := make(map[logic.Var]bool, len(headVars))
		for _, v := range headVars {
			headSet[v] = true
		}
		var bound []logic.Var
		for _, v := range logic.FreeVars(body) {
			if !headSet[v] {
				bound = append(bound, v)
			}
		}
		return logic.NewQuery(headVars, nil, logic.Ex(bound, body))
	}

	// Successor items for a node whose register holds a tuple of pred.
	succItems := func(pred string) ([]pt.RHS, error) {
		var items []pt.RHS
		for m, r := range p.Rules {
			occ := idbOcc(r)
			if occ == nil || occ.Rel != pred {
				continue
			}
			q, err := ruleQuery(m)
			if err != nil {
				return nil, err
			}
			items = append(items, pt.Item("q1", ruleTag(m), q))
		}
		return items, nil
	}

	// Root: fire every EDB-only rule.
	var rootItems []pt.RHS
	for m, r := range p.Rules {
		if idbOcc(r) != nil {
			continue
		}
		q, err := ruleQuery(m)
		if err != nil {
			return nil, err
		}
		rootItems = append(rootItems, pt.Item("q1", ruleTag(m), q))
	}
	t.AddRule("q0", "r", rootItems...)

	// Per-rule-tag transitions.
	for k, r := range p.Rules {
		items, err := succItems(r.Head.Rel)
		if err != nil {
			return nil, err
		}
		if r.Head.Rel == p.Output {
			copyVars := make([]logic.Var, len(r.Head.Args))
			copyTerms := make([]logic.Term, len(r.Head.Args))
			for i := range copyVars {
				copyVars[i] = logic.Var(fmt.Sprintf("a%d", i))
				copyTerms[i] = copyVars[i]
			}
			copyQ := logic.MustQuery(copyVars, nil, &logic.Atom{Rel: pt.RegRel, Args: copyTerms})
			items = append(items, pt.Item("q2", "ans", copyQ))
		}
		t.AddRule("q1", ruleTag(k), items...)
	}
	t.AddRule("q2", "ans")
	return t, nil
}
