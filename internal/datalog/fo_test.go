package datalog

import (
	"math/rand"
	"testing"

	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/relation"
	"ptx/internal/value"
)

// unreachableTransducer unfolds a graph from marked sources, filtering
// steps through an FO guard (no edge back to a marked source).
func foUnfoldTransducer() *pt.Transducer {
	s := relation.NewSchema().MustDeclare("E", 2).MustDeclare("Src", 1)
	x, y := logic.Var("x"), logic.Var("y")
	t := pt.New("fo-unfold", s, "q0", "r")
	t.DeclareTag("a", 1)
	t.AddRule("q0", "r", pt.Item("q", "a",
		logic.MustQuery([]logic.Var{x}, nil, logic.R("Src", x))))
	// Step: successors of the register vertex that are NOT sources.
	step := logic.Ex([]logic.Var{y}, logic.Conj(
		logic.R(pt.RegRel, y),
		logic.R("E", y, x),
	))
	notSrc := &logic.Not{F: logic.R("Src", x)}
	t.AddRule("q", "a", pt.Item("q", "a",
		logic.MustQuery([]logic.Var{x}, nil, logic.Conj(step, notSrc))))
	return t
}

func TestFromTransducerFORecursive(t *testing.T) {
	tr := foUnfoldTransducer()
	prog, err := FromTransducerFO(tr, "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	if !prog.HasGuards() {
		t.Error("FO translation should carry guards")
	}
	if !prog.IsLinear() {
		t.Error("translation must be linear (LinDatalog(FO))")
	}
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 12; trial++ {
		inst := relation.NewInstance(tr.Schema)
		for k := 0; k < 7; k++ {
			inst.Add("E", string(value.Of(rng.Intn(5))), string(value.Of(rng.Intn(5))))
		}
		inst.Add("Src", string(value.Of(rng.Intn(5))))
		fromTr, err := tr.OutputRelation(inst, "a", pt.Options{MaxNodes: 100000})
		if err != nil {
			t.Fatal(err)
		}
		fromDl, err := prog.Eval(inst)
		if err != nil {
			t.Fatal(err)
		}
		if !fromTr.Equal(fromDl) {
			t.Fatalf("trial %d: transducer %s vs LinDatalog(FO) %s\n%s",
				trial, fromTr, fromDl, inst)
		}
	}
}

func TestFromTransducerFORejectsIFP(t *testing.T) {
	s := relation.NewSchema().MustDeclare("E", 2)
	x, u := logic.Var("x"), logic.Var("u")
	tr := pt.New("ifp", s, "q0", "r")
	tr.DeclareTag("a", 1)
	fp := &logic.Fixpoint{Rel: "S", Vars: []logic.Var{u},
		Body: logic.Ex([]logic.Var{logic.Var("w")}, logic.R("E", u, logic.Var("w"))),
		Args: []logic.Term{x}}
	tr.AddRule("q0", "r", pt.Item("q", "a", logic.MustQuery([]logic.Var{x}, nil, fp)))
	tr.AddRule("q", "a")
	if _, err := FromTransducerFO(tr, "a"); err == nil {
		t.Error("IFP transducer must be rejected")
	}
}

func TestGuardValidation(t *testing.T) {
	s := relation.NewSchema().MustDeclare("E", 2)
	x, y := logic.Var("x"), logic.Var("y")
	// Guard referencing an IDB predicate is rejected.
	bad := &Program{EDB: s, Output: "p", Rules: []*Rule{
		{Head: logic.R("p", x), Body: []*logic.Atom{logic.R("E", x, y)},
			Guards: []logic.Formula{&logic.Not{F: logic.R("p", x)}}},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("guard over an IDB predicate should fail validation")
	}
	// A guard can bind head variables on its own.
	ok := &Program{EDB: s, Output: "p", Rules: []*Rule{
		{Head: logic.R("p", x), Guards: []logic.Formula{
			logic.Ex([]logic.Var{y}, logic.Conj(logic.R("E", x, y), &logic.Not{F: logic.R("E", y, x)})),
		}},
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("guard-bound head variable should validate: %v", err)
	}
	inst := relation.NewInstance(s)
	inst.Add("E", "a", "b")
	inst.Add("E", "b", "a")
	inst.Add("E", "a", "c")
	out, err := ok.Eval(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Only the edge a→c lacks a back edge.
	if out.Len() != 1 || !out.Contains(value.Tuple{"a"}) {
		t.Fatalf("guarded rule = %s", out)
	}
}
