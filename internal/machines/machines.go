// Package machines implements the two computational models the paper
// reduces from in its undecidability proofs: two-register machines
// (2RM, Theorem 1(3)) and deterministic finite 2-head automata
// (Theorem 1(2)). Both come with bounded simulators so the reductions
// can be validated on concrete inputs.
package machines

import (
	"fmt"
)

// Register names a 2RM register.
type Register int

// The two registers of a 2RM.
const (
	R1 Register = 1
	R2 Register = 2
)

// Instr is a 2RM instruction: either an addition (i, rg, j) —
// increment rg, go to state j — or a subtraction (i, rg, j, k) — if rg
// is zero go to j, else decrement and go to k.
type Instr struct {
	Add  bool
	Reg  Register
	Zero int // addition: the target state; subtraction: target when zero
	Next int // subtraction: target after decrement (unused for addition)
}

// AddInstr builds an addition instruction.
func AddInstr(reg Register, next int) Instr { return Instr{Add: true, Reg: reg, Zero: next} }

// SubInstr builds a subtraction instruction.
func SubInstr(reg Register, whenZero, next int) Instr {
	return Instr{Add: false, Reg: reg, Zero: whenZero, Next: next}
}

// TwoRegisterMachine is a numbered instruction sequence with a halting
// state. The initial ID is (0,0,0) and the machine halts when it
// reaches (Halt, 0, 0).
type TwoRegisterMachine struct {
	Instrs []Instr
	Halt   int
}

// ID is an instantaneous description (state, register1, register2).
type ID struct {
	State int
	Reg1  int
	Reg2  int
}

// Step computes the successor ID; ok is false when the state has no
// instruction (a stuck machine).
func (m *TwoRegisterMachine) Step(id ID) (ID, bool) {
	if id.State < 0 || id.State >= len(m.Instrs) {
		return id, false
	}
	in := m.Instrs[id.State]
	get := func() int {
		if in.Reg == R1 {
			return id.Reg1
		}
		return id.Reg2
	}
	set := func(v int) ID {
		if in.Reg == R1 {
			return ID{State: id.State, Reg1: v, Reg2: id.Reg2}
		}
		return ID{State: id.State, Reg1: id.Reg1, Reg2: v}
	}
	if in.Add {
		next := set(get() + 1)
		next.State = in.Zero
		return next, true
	}
	if get() == 0 {
		return ID{State: in.Zero, Reg1: id.Reg1, Reg2: id.Reg2}, true
	}
	next := set(get() - 1)
	next.State = in.Next
	return next, true
}

// Run executes from (0,0,0) for at most maxSteps steps and returns the
// visited IDs (including the initial one). halted reports whether the
// final ID is the halting ID (Halt, 0, 0).
func (m *TwoRegisterMachine) Run(maxSteps int) (trace []ID, halted bool) {
	id := ID{}
	trace = append(trace, id)
	for step := 0; step < maxSteps; step++ {
		if id.State == m.Halt && id.Reg1 == 0 && id.Reg2 == 0 {
			return trace, true
		}
		next, ok := m.Step(id)
		if !ok {
			return trace, false
		}
		id = next
		trace = append(trace, id)
	}
	return trace, id.State == m.Halt && id.Reg1 == 0 && id.Reg2 == 0
}

// HaltsWithin reports whether the machine halts in at most maxSteps.
func (m *TwoRegisterMachine) HaltsWithin(maxSteps int) bool {
	_, halted := m.Run(maxSteps)
	return halted
}

// String lists the program.
func (m *TwoRegisterMachine) String() string {
	s := ""
	for i, in := range m.Instrs {
		if in.Add {
			s += fmt.Sprintf("I%d: add r%d goto %d\n", i, in.Reg, in.Zero)
		} else {
			s += fmt.Sprintf("I%d: if r%d=0 goto %d else dec goto %d\n", i, in.Reg, in.Zero, in.Next)
		}
	}
	s += fmt.Sprintf("halt: %d\n", m.Halt)
	return s
}

// --- 2-head DFA ---------------------------------------------------------

// Head movement for a 2-head DFA transition.
const (
	Stay  = 0
	Right = +1
)

// HeadInput is what a head reads: '0', '1', or 'e' for ε (head past the
// end of the input).
type HeadInput byte

// DFAKey indexes the transition function by (state, in1, in2).
type DFAKey struct {
	State    int
	In1, In2 HeadInput
}

// DFAMove is the right-hand side of a transition.
type DFAMove struct {
	State        int
	Move1, Move2 int
}

// TwoHeadDFA is a deterministic finite 2-head automaton over {0,1}.
type TwoHeadDFA struct {
	States int
	Start  int
	Accept int
	Delta  map[DFAKey]DFAMove
}

// Config is a 2-head DFA configuration: the state and the two head
// positions into the input word.
type Config struct {
	State      int
	Pos1, Pos2 int
}

func headInput(w string, pos int) HeadInput {
	if pos >= len(w) {
		return 'e'
	}
	return HeadInput(w[pos])
}

// Accepts runs the automaton on w with a step bound (a deterministic
// machine that repeats a configuration loops forever; repeats are
// detected and rejected).
func (a *TwoHeadDFA) Accepts(w string) bool {
	cfg := Config{State: a.Start}
	seen := map[Config]bool{}
	for !seen[cfg] {
		seen[cfg] = true
		if cfg.State == a.Accept {
			return true
		}
		mv, ok := a.Delta[DFAKey{State: cfg.State, In1: headInput(w, cfg.Pos1), In2: headInput(w, cfg.Pos2)}]
		if !ok {
			return false
		}
		cfg = Config{State: mv.State, Pos1: cfg.Pos1 + mv.Move1, Pos2: cfg.Pos2 + mv.Move2}
	}
	return false
}

// EmptyUpTo reports whether L(A) contains no word of length ≤ maxLen
// (a bounded stand-in for the undecidable emptiness problem).
func (a *TwoHeadDFA) EmptyUpTo(maxLen int) bool {
	var words func(prefix string, n int) bool
	words = func(prefix string, n int) bool {
		if a.Accepts(prefix) {
			return false
		}
		if n == 0 {
			return true
		}
		return words(prefix+"0", n-1) && words(prefix+"1", n-1)
	}
	return words("", maxLen)
}
