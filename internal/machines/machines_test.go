package machines

import "testing"

// countdown: load r1 with n via n add-instructions, then subtract to
// zero and halt.
func countdown(n int) *TwoRegisterMachine {
	m := &TwoRegisterMachine{}
	for i := 0; i < n; i++ {
		m.Instrs = append(m.Instrs, AddInstr(R1, i+1))
	}
	sub := len(m.Instrs)
	m.Instrs = append(m.Instrs, SubInstr(R1, sub+1, sub))
	m.Halt = sub + 1
	return m
}

func Test2RMCountdownHalts(t *testing.T) {
	for n := 1; n <= 5; n++ {
		m := countdown(n)
		trace, halted := m.Run(100)
		if !halted {
			t.Fatalf("countdown(%d) should halt", n)
		}
		// n additions + n decrements + 1 zero test + final state.
		if len(trace) != 2*n+2 {
			t.Errorf("countdown(%d) trace length %d, want %d", n, len(trace), 2*n+2)
		}
		// Registers really go up and come back down.
		max := 0
		for _, id := range trace {
			if id.Reg1 > max {
				max = id.Reg1
			}
		}
		if max != n {
			t.Errorf("countdown(%d) peaked at %d", n, max)
		}
	}
}

func Test2RMBothRegisters(t *testing.T) {
	// Move 2 from r1 to r2, then drain r2.
	m := &TwoRegisterMachine{
		Instrs: []Instr{
			AddInstr(R1, 1),
			AddInstr(R1, 2),
			SubInstr(R1, 4, 3), // r1=0 → 4 else dec → 3
			AddInstr(R2, 2),
			SubInstr(R2, 6, 5), // wait: states 4..5
		},
		Halt: 6,
	}
	// Fix instruction 4/5 indices: state 4 is SubInstr above? Keep the
	// simple semantic assertion instead: the machine halts with both
	// registers empty.
	m.Instrs[4] = SubInstr(R2, 6, 4)
	if !m.HaltsWithin(100) {
		t.Fatal("transfer machine should halt")
	}
	trace, _ := m.Run(100)
	final := trace[len(trace)-1]
	if final.Reg1 != 0 || final.Reg2 != 0 {
		t.Fatalf("final registers: %+v", final)
	}
}

func Test2RMStuckState(t *testing.T) {
	// Jump to a state with no instruction that is not the halt state.
	m := &TwoRegisterMachine{
		Instrs: []Instr{AddInstr(R1, 7)},
		Halt:   9,
	}
	trace, halted := m.Run(50)
	if halted {
		t.Fatal("stuck machine did not halt")
	}
	if len(trace) != 2 {
		t.Fatalf("trace = %d entries", len(trace))
	}
}

func Test2RMString(t *testing.T) {
	m := countdown(1)
	s := m.String()
	if s == "" {
		t.Fatal("String should render the program")
	}
}

func TestDFATwoHeadsDisagree(t *testing.T) {
	// Accept words whose first and second symbols are 1 and 0: head 1
	// reads position 0, head 2 advances first.
	a := &TwoHeadDFA{
		States: 3, Start: 0, Accept: 2,
		Delta: map[DFAKey]DFAMove{
			// Step 1: advance head 2 past position 0 (both read w[0]).
			{State: 0, In1: '0', In2: '0'}: {State: 1, Move2: Right},
			{State: 0, In1: '1', In2: '1'}: {State: 1, Move2: Right},
			// Step 2: head 1 at w[0] = 1, head 2 at w[1] = 0.
			{State: 1, In1: '1', In2: '0'}: {State: 2, Move1: Right, Move2: Right},
		},
	}
	if !a.Accepts("10") || !a.Accepts("101") {
		t.Error("words starting 10 should be accepted")
	}
	for _, w := range []string{"", "0", "1", "01", "11", "00"} {
		if a.Accepts(w) {
			t.Errorf("%q should be rejected", w)
		}
	}
	if a.EmptyUpTo(2) {
		t.Error("language is nonempty up to length 2")
	}
}

func TestDFALoopDetection(t *testing.T) {
	// A self-loop that never reaches the accept state must terminate via
	// configuration-repeat detection.
	a := &TwoHeadDFA{
		States: 1, Start: 0, Accept: 5,
		Delta: map[DFAKey]DFAMove{
			{State: 0, In1: 'e', In2: 'e'}: {State: 0}, // stay forever
		},
	}
	if a.Accepts("") {
		t.Fatal("looping automaton should reject")
	}
}
