// Package netchaos is a deterministic, seed-driven network fault
// injector for the cluster's inter-node HTTP traffic. It wraps an
// http.RoundTripper (outbound) or a net.Listener (inbound) and makes
// links between named peers misbehave in the ways real networks do:
//
//	latency    — per-link delay with jitter before the request is sent
//	drop       — black hole: the request never arrives, the caller
//	             blocks until its OWN deadline fires (the defining
//	             partition experience; side effects never happen)
//	refuse     — immediate connection error (fast-fail partition)
//	replydrop  — the request IS delivered and the peer's side effects
//	             happen, but the response vanishes: the asymmetric
//	             partition that turns "did my write land?" into a
//	             genuinely unknowable question
//	reset      — the response body is severed mid-read
//	corrupt    — response bytes are flipped in flight
//	truncate   — the response body ends early with a CLEAN EOF (the
//	             nastiest one: without an integrity check it looks
//	             like a complete response)
//	slowloris  — the response body trickles out a byte at a time
//
// Links are DIRECTIONAL — (from, to) — so one-way and asymmetric
// partitions are first-class: Partition("a", "b") black-holes a→b
// while b→a still flows. "*" wildcards either side.
//
// Every probabilistic draw comes from one seeded PRNG, so a fault
// schedule is reproducible from a single integer (concurrent requests
// may interleave draws, the same caveat runctl.SeededPlan documents).
// A *runctl.FaultPlan can be attached and is consulted as
// runctl.OpNetRequest before each request, composing the cluster's
// existing Nth-op fault schedules with the mesh's link faults.
package netchaos

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"ptx/internal/runctl"
)

// Faults describes what one directional link does to traffic. The zero
// value is a perfect link.
type Faults struct {
	// Latency delays each request by Latency ± Jitter (uniform) before
	// it is sent.
	Latency time.Duration
	Jitter  time.Duration

	// Probabilities in [0,1], drawn per request (Drop, Refuse,
	// ReplyDrop — mutually exclusive, checked in that order) or per
	// response body (Reset, Corrupt, Truncate, SlowLoris — first match
	// wins).
	Drop      float64
	Refuse    float64
	ReplyDrop float64
	Reset     float64
	Corrupt   float64
	Truncate  float64
	SlowLoris float64

	// SlowPace is the per-byte delay of a slow-loris body (default
	// 100ms — small bodies still outlive any sane request deadline).
	SlowPace time.Duration
}

func (f Faults) active() bool {
	return f.Latency > 0 || f.Drop > 0 || f.Refuse > 0 || f.ReplyDrop > 0 ||
		f.Reset > 0 || f.Corrupt > 0 || f.Truncate > 0 || f.SlowLoris > 0
}

// link keys are (from, to) peer names; "*" matches anything.
type linkKey struct{ from, to string }

// Mesh is the shared fault authority a set of Transports and Listeners
// consult. Safe for concurrent use; faults and partitions can be
// changed while traffic is in flight (that is the point).
type Mesh struct {
	mu          sync.Mutex
	rng         *rand.Rand
	links       map[linkKey]Faults
	partitioned map[linkKey]bool
	plan        *runctl.FaultPlan
	injected    map[string]int64
}

// NewMesh builds a mesh whose probabilistic draws are driven by seed.
func NewMesh(seed int64) *Mesh {
	return &Mesh{
		rng:         rand.New(rand.NewSource(seed)),
		links:       make(map[linkKey]Faults),
		partitioned: make(map[linkKey]bool),
		injected:    make(map[string]int64),
	}
}

// SetPlan attaches a runctl fault plan, consulted as OpNetRequest
// before every outbound request; an injected error becomes an
// immediate connection refusal.
func (m *Mesh) SetPlan(p *runctl.FaultPlan) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.plan = p
}

// SetLink configures the fault profile of the directional link
// from → to. Either side may be "*".
func (m *Mesh) SetLink(from, to string, f Faults) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.links[linkKey{from, to}] = f
}

// Partition hard-blocks the directional link from → to: requests
// black-hole until the caller's deadline. One-way by design; call
// PartitionBoth for a symmetric cut.
func (m *Mesh) Partition(from, to string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.partitioned[linkKey{from, to}] = true
}

// PartitionBoth cuts both directions between a and b.
func (m *Mesh) PartitionBoth(a, b string) {
	m.Partition(a, b)
	m.Partition(b, a)
}

// ClearLink deletes the fault profile of from → to entirely. Distinct
// from SetLink(from, to, Faults{}): a zero-value entry still EXISTS and
// shadows any wildcard profile during resolution; ClearLink restores
// the wildcard fallback.
func (m *Mesh) ClearLink(from, to string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.links, linkKey{from, to})
}

// Heal removes the hard partition on from → to (configured link faults
// are untouched).
func (m *Mesh) Heal(from, to string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.partitioned, linkKey{from, to})
}

// HealAll removes every hard partition.
func (m *Mesh) HealAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.partitioned = make(map[linkKey]bool)
}

// Partitioned reports whether from → to is currently hard-blocked.
func (m *Mesh) Partitioned(from, to string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.partitioned[linkKey{from, to}] || m.partitioned[linkKey{from, "*"}] ||
		m.partitioned[linkKey{"*", to}] || m.partitioned[linkKey{"*", "*"}]
}

// Injected returns a snapshot of how many faults of each kind the mesh
// has injected — the storm tests' "chaos actually happened" check.
func (m *Mesh) Injected() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.injected))
	for k, v := range m.injected {
		out[k] = v
	}
	return out
}

func (m *Mesh) count(kind string) {
	m.injected[kind]++
}

// faultsFor resolves the directional link profile with wildcard
// fallback: exact, then (from,*), (*,to), (*,*).
func (m *Mesh) faultsFor(from, to string) Faults {
	if f, ok := m.links[linkKey{from, to}]; ok {
		return f
	}
	if f, ok := m.links[linkKey{from, "*"}]; ok {
		return f
	}
	if f, ok := m.links[linkKey{"*", to}]; ok {
		return f
	}
	return m.links[linkKey{"*", "*"}]
}

// decision is one request's drawn fate.
type decision struct {
	latency   time.Duration
	drop      bool
	refuse    bool
	replyDrop bool
	bodyFault string // "", "reset", "corrupt", "truncate", "slowloris"
	bodyArg   int    // drawn offset/length parameter for the body fault
	pace      time.Duration
	planErr   error
}

// decide draws one request's fate under the mesh lock so the seeded
// schedule is well-defined.
func (m *Mesh) decide(from, to string) decision {
	m.mu.Lock()
	defer m.mu.Unlock()
	var d decision
	if m.plan != nil {
		if err := m.plan.Check(runctl.OpNetRequest); err != nil {
			d.planErr = err
			m.count("plan")
			return d
		}
	}
	if m.partitioned[linkKey{from, to}] || m.partitioned[linkKey{from, "*"}] ||
		m.partitioned[linkKey{"*", to}] || m.partitioned[linkKey{"*", "*"}] {
		d.drop = true
		m.count("partition")
		return d
	}
	f := m.faultsFor(from, to)
	if !f.active() {
		return d
	}
	if f.Latency > 0 {
		d.latency = f.Latency
		if f.Jitter > 0 {
			d.latency += time.Duration(m.rng.Int63n(int64(2*f.Jitter))) - f.Jitter
			if d.latency < 0 {
				d.latency = 0
			}
		}
		m.count("latency")
	}
	switch {
	case f.Drop > 0 && m.rng.Float64() < f.Drop:
		d.drop = true
		m.count("drop")
		return d
	case f.Refuse > 0 && m.rng.Float64() < f.Refuse:
		d.refuse = true
		m.count("refuse")
		return d
	case f.ReplyDrop > 0 && m.rng.Float64() < f.ReplyDrop:
		d.replyDrop = true
		m.count("replydrop")
		return d
	}
	switch {
	case f.Reset > 0 && m.rng.Float64() < f.Reset:
		d.bodyFault, d.bodyArg = "reset", 1+m.rng.Intn(64)
		m.count("reset")
	case f.Corrupt > 0 && m.rng.Float64() < f.Corrupt:
		d.bodyFault, d.bodyArg = "corrupt", m.rng.Intn(64)
		m.count("corrupt")
	case f.Truncate > 0 && m.rng.Float64() < f.Truncate:
		d.bodyFault, d.bodyArg = "truncate", 1+m.rng.Intn(64)
		m.count("truncate")
	case f.SlowLoris > 0 && m.rng.Float64() < f.SlowLoris:
		d.bodyFault = "slowloris"
		d.pace = f.SlowPace
		if d.pace <= 0 {
			d.pace = 100 * time.Millisecond
		}
		m.count("slowloris")
	}
	return d
}

// Transport wraps base so every request from the named peer crosses
// the mesh. The destination peer name is the request URL's host, which
// is how httptest-backed clusters (distinct ports) and named links
// both work: either register links by host:port, or use "*" wildcards
// and hard Partition calls keyed the same way the Transport was built.
func (m *Mesh) Transport(from string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{mesh: m, from: from, base: base}
}

type transport struct {
	mesh *Mesh
	from string
	base http.RoundTripper
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	ctx := req.Context()
	d := t.mesh.decide(t.from, req.URL.Host)
	if d.planErr != nil {
		return nil, fmt.Errorf("netchaos: %s -> %s: %w", t.from, req.URL.Host, d.planErr)
	}
	if d.latency > 0 {
		select {
		case <-time.After(d.latency):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if d.drop {
		// Black hole: the bytes never arrive anywhere. The caller's own
		// deadline is the only way out — exactly what a partition feels
		// like from inside.
		<-ctx.Done()
		return nil, fmt.Errorf("netchaos: partition %s -> %s: %w", t.from, req.URL.Host, ctx.Err())
	}
	if d.refuse {
		return nil, fmt.Errorf("netchaos: connection refused %s -> %s", t.from, req.URL.Host)
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if d.replyDrop {
		// The peer processed the request (side effects and all); only
		// the response is lost. Drain it so the peer observes a
		// completed exchange, then strand the caller until deadline.
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		<-ctx.Done()
		return nil, fmt.Errorf("netchaos: reply dropped %s -> %s: %w", t.from, req.URL.Host, ctx.Err())
	}
	switch d.bodyFault {
	case "reset":
		resp.Body = &resetBody{rc: resp.Body, after: d.bodyArg}
	case "corrupt":
		resp.Body = &corruptBody{rc: resp.Body, offset: d.bodyArg}
	case "truncate":
		resp.Body = &truncateBody{rc: resp.Body, after: d.bodyArg}
	case "slowloris":
		resp.Body = &slowBody{rc: resp.Body, pace: d.pace, ctx: ctx}
	}
	return resp, nil
}

// resetBody severs the stream with an error after `after` bytes — a
// connection reset mid-body.
type resetBody struct {
	rc    io.ReadCloser
	after int
	read  int
}

func (b *resetBody) Read(p []byte) (int, error) {
	if b.read >= b.after {
		return 0, fmt.Errorf("netchaos: connection reset mid-body after %d bytes", b.read)
	}
	if rem := b.after - b.read; len(p) > rem {
		p = p[:rem]
	}
	n, err := b.rc.Read(p)
	b.read += n
	return n, err
}

func (b *resetBody) Close() error { return b.rc.Close() }

// corruptBody flips one byte out of every 64 starting at a drawn
// offset. The peer's trailer checksum (computed over the ORIGINAL
// bytes) no longer matches what the caller read.
type corruptBody struct {
	rc     io.ReadCloser
	offset int
	pos    int
}

func (b *corruptBody) Read(p []byte) (int, error) {
	n, err := b.rc.Read(p)
	for i := 0; i < n; i++ {
		if (b.pos+i)%64 == b.offset%64 {
			p[i] ^= 0xFF
		}
	}
	b.pos += n
	return n, err
}

func (b *corruptBody) Close() error { return b.rc.Close() }

// truncateBody ends the stream with a CLEAN io.EOF after `after`
// bytes. On a chunked response this also swallows the trailers, which
// is what the integrity check catches.
type truncateBody struct {
	rc    io.ReadCloser
	after int
	read  int
}

func (b *truncateBody) Read(p []byte) (int, error) {
	if b.read >= b.after {
		return 0, io.EOF
	}
	if rem := b.after - b.read; len(p) > rem {
		p = p[:rem]
	}
	n, err := b.rc.Read(p)
	b.read += n
	return n, err
}

func (b *truncateBody) Close() error { return b.rc.Close() }

// slowBody trickles the stream one byte per pace tick; the caller's
// context is the only escape.
type slowBody struct {
	rc   io.ReadCloser
	pace time.Duration
	ctx  context.Context
}

func (b *slowBody) Read(p []byte) (int, error) {
	select {
	case <-time.After(b.pace):
	case <-b.ctx.Done():
		return 0, b.ctx.Err()
	}
	if len(p) > 1 {
		p = p[:1]
	}
	return b.rc.Read(p)
}

func (b *slowBody) Close() error { return b.rc.Close() }

// Listener wraps ln so INBOUND connections to the named peer suffer
// the mesh's (*, name) link faults: accept latency, reset after N
// bytes, and slow-loris read pacing. It is deliberately a smaller
// surface than Transport — inbound chaos at the byte level; the rich
// per-request faults live client-side where requests are visible.
func (m *Mesh) Listener(name string, ln net.Listener) net.Listener {
	return &chaosListener{mesh: m, name: name, Listener: ln}
}

type chaosListener struct {
	net.Listener
	mesh *Mesh
	name string
}

func (l *chaosListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	d := l.mesh.decide("*", l.name)
	if d.drop || d.refuse || d.planErr != nil {
		// Inbound partition: the TCP handshake succeeded at the kernel,
		// but the application never hears from this connection.
		conn.Close()
		return l.Accept()
	}
	if d.latency > 0 || d.bodyFault == "reset" || d.bodyFault == "slowloris" {
		return &chaosConn{Conn: conn, d: d}, nil
	}
	return conn, nil
}

// chaosConn applies the drawn faults to one accepted connection's read
// side (what the server sees of the client).
type chaosConn struct {
	net.Conn
	d      decision
	read   int
	waited bool
}

func (c *chaosConn) Read(p []byte) (int, error) {
	if !c.waited && c.d.latency > 0 {
		c.waited = true
		time.Sleep(c.d.latency)
	}
	switch c.d.bodyFault {
	case "reset":
		if c.read >= c.d.bodyArg {
			c.Conn.Close()
			return 0, fmt.Errorf("netchaos: inbound reset after %d bytes", c.read)
		}
		if rem := c.d.bodyArg - c.read; len(p) > rem {
			p = p[:rem]
		}
	case "slowloris":
		time.Sleep(c.d.pace)
		if len(p) > 1 {
			p = p[:1]
		}
	}
	n, err := c.Conn.Read(p)
	c.read += n
	return n, err
}
