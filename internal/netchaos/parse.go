package netchaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse builds a mesh from the CLI spelling used by the daemons'
// -chaos flag: a comma-separated list of key=value pairs.
//
//	seed=N           PRNG seed (default 1)
//	latency=D        per-request delay (Go duration)
//	jitter=D         ± jitter on latency
//	drop=P           black-hole probability in [0,1]
//	refuse=P         immediate-refusal probability
//	replydrop=P      deliver-request-drop-response probability
//	reset=P          mid-body connection-reset probability
//	corrupt=P        byte-corruption probability
//	truncate=P       clean-early-EOF probability
//	slowloris=P      trickled-response probability
//	pace=D           slow-loris per-byte delay (default 100ms)
//	partition=a->b   hard one-way partition (repeatable); a<->b cuts
//	                 both directions; either side may be "*"
//
// The probabilistic faults apply to the wildcard link (*, *) — every
// peer pair — which is the useful default for a single-process daemon
// wrapping one client. Partitions compose on top.
func Parse(spec string) (*Mesh, error) {
	seed := int64(1)
	var f Faults
	type cut struct {
		from, to string
		both     bool
	}
	var cuts []cut
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("netchaos: bad -chaos entry %q: want key=value", part)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("netchaos: bad seed %q", v)
			}
			seed = n
		case "latency", "jitter", "pace":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("netchaos: bad %s %q: want a Go duration", k, v)
			}
			switch k {
			case "latency":
				f.Latency = d
			case "jitter":
				f.Jitter = d
			case "pace":
				f.SlowPace = d
			}
		case "drop", "refuse", "replydrop", "reset", "corrupt", "truncate", "slowloris":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("netchaos: bad %s %q: want a probability in [0,1]", k, v)
			}
			switch k {
			case "drop":
				f.Drop = p
			case "refuse":
				f.Refuse = p
			case "replydrop":
				f.ReplyDrop = p
			case "reset":
				f.Reset = p
			case "corrupt":
				f.Corrupt = p
			case "truncate":
				f.Truncate = p
			case "slowloris":
				f.SlowLoris = p
			}
		case "partition":
			if from, to, ok := strings.Cut(v, "<->"); ok {
				cuts = append(cuts, cut{strings.TrimSpace(from), strings.TrimSpace(to), true})
			} else if from, to, ok := strings.Cut(v, "->"); ok {
				cuts = append(cuts, cut{strings.TrimSpace(from), strings.TrimSpace(to), false})
			} else {
				return nil, fmt.Errorf("netchaos: bad partition %q: want a->b or a<->b", v)
			}
		default:
			return nil, fmt.Errorf("netchaos: unknown -chaos key %q", k)
		}
	}
	m := NewMesh(seed)
	if f.active() {
		m.SetLink("*", "*", f)
	}
	for _, c := range cuts {
		if c.from == "" || c.to == "" {
			return nil, fmt.Errorf("netchaos: bad partition: empty peer name")
		}
		if c.both {
			m.PartitionBoth(c.from, c.to)
		} else {
			m.Partition(c.from, c.to)
		}
	}
	return m, nil
}
