package netchaos

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ptx/internal/runctl"
)

func chaosClient(m *Mesh, from string) *http.Client {
	return &http.Client{Transport: m.Transport(from, http.DefaultTransport)}
}

func get(t *testing.T, c *http.Client, url string, timeout time.Duration) (string, error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func TestMeshCleanLinkPassesThrough(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "hello world")
	}))
	defer ts.Close()
	m := NewMesh(1)
	body, err := get(t, chaosClient(m, "a"), ts.URL, time.Second)
	if err != nil || body != "hello world" {
		t.Fatalf("clean link: got (%q, %v)", body, err)
	}
}

func TestMeshPartitionBlocksUntilDeadline(t *testing.T) {
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
	}))
	defer ts.Close()
	m := NewMesh(1)
	m.Partition("a", "*")
	start := time.Now()
	_, err := get(t, chaosClient(m, "a"), ts.URL, 100*time.Millisecond)
	if err == nil {
		t.Fatal("partitioned request must fail")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("partition should strand the caller until ITS deadline, got %v", err)
	}
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		t.Fatalf("black hole returned too early: %v", elapsed)
	}
	if hits != 0 {
		t.Fatal("a dropped request must never reach the server")
	}
	if !m.Partitioned("a", "x") {
		t.Fatal("Partitioned(a, *) must report true")
	}
	// The partition is one-way: traffic from another peer still flows.
	if _, err := get(t, chaosClient(m, "b"), ts.URL, time.Second); err != nil {
		t.Fatalf("asymmetric partition leaked to b: %v", err)
	}
	m.HealAll()
	if _, err := get(t, chaosClient(m, "a"), ts.URL, time.Second); err != nil {
		t.Fatalf("healed link must flow: %v", err)
	}
}

func TestMeshReplyDropDeliversSideEffects(t *testing.T) {
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		io.WriteString(w, "ok")
	}))
	defer ts.Close()
	m := NewMesh(1)
	m.SetLink("a", "*", Faults{ReplyDrop: 1})
	_, err := get(t, chaosClient(m, "a"), ts.URL, 100*time.Millisecond)
	if err == nil {
		t.Fatal("reply-dropped request must fail at the caller")
	}
	if hits != 1 {
		t.Fatalf("reply-drop must DELIVER the request (hits=%d): that asymmetry is the whole point", hits)
	}
}

func TestMeshRefuseIsImmediate(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	m := NewMesh(1)
	m.SetLink("*", "*", Faults{Refuse: 1})
	start := time.Now()
	_, err := get(t, chaosClient(m, "a"), ts.URL, 5*time.Second)
	if err == nil || !strings.Contains(err.Error(), "refused") {
		t.Fatalf("want refusal, got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("refusal must be immediate, not deadline-bound")
	}
}

func TestMeshBodyFaults(t *testing.T) {
	const payload = "the quick brown fox jumps over the lazy dog, repeatedly and at length, until the body is long enough to fault"
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer ts.Close()

	t.Run("reset", func(t *testing.T) {
		m := NewMesh(3)
		m.SetLink("*", "*", Faults{Reset: 1})
		body, err := get(t, chaosClient(m, "a"), ts.URL, time.Second)
		if err == nil || !strings.Contains(err.Error(), "reset") {
			t.Fatalf("want mid-body reset, got (%q, %v)", body, err)
		}
		if m.Injected()["reset"] == 0 {
			t.Fatal("reset not counted")
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		m := NewMesh(3)
		m.SetLink("*", "*", Faults{Corrupt: 1})
		body, err := get(t, chaosClient(m, "a"), ts.URL, time.Second)
		if err != nil {
			t.Fatalf("corruption is silent at transport level: %v", err)
		}
		if body == payload {
			t.Fatal("body survived a corrupting link unchanged")
		}
		if len(body) != len(payload) {
			t.Fatalf("corruption must not change length: %d vs %d", len(body), len(payload))
		}
	})
	t.Run("truncate", func(t *testing.T) {
		m := NewMesh(3)
		m.SetLink("*", "*", Faults{Truncate: 1})
		body, err := get(t, chaosClient(m, "a"), ts.URL, time.Second)
		if err != nil {
			t.Fatalf("truncation must look like a CLEAN eof: %v", err)
		}
		if len(body) >= len(payload) {
			t.Fatal("truncated body not shorter than the original")
		}
	})
	t.Run("slowloris", func(t *testing.T) {
		m := NewMesh(3)
		m.SetLink("*", "*", Faults{SlowLoris: 1, SlowPace: 50 * time.Millisecond})
		_, err := get(t, chaosClient(m, "a"), ts.URL, 200*time.Millisecond)
		if err == nil {
			t.Fatal("slow-loris body must outlive a short deadline")
		}
	})
}

func TestMeshLatencyDelays(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	m := NewMesh(9)
	m.SetLink("a", "*", Faults{Latency: 60 * time.Millisecond, Jitter: 10 * time.Millisecond})
	start := time.Now()
	if _, err := get(t, chaosClient(m, "a"), ts.URL, time.Second); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Fatalf("latency not applied: %v", elapsed)
	}
}

func TestMeshDeterministicSchedule(t *testing.T) {
	draw := func(seed int64) []string {
		m := NewMesh(seed)
		m.SetLink("*", "*", Faults{Drop: 0.3, Refuse: 0.3, Corrupt: 0.3})
		var kinds []string
		for i := 0; i < 64; i++ {
			d := m.decide("a", "b")
			switch {
			case d.drop:
				kinds = append(kinds, "drop")
			case d.refuse:
				kinds = append(kinds, "refuse")
			default:
				kinds = append(kinds, d.bodyFault)
			}
		}
		return kinds
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed must give the same schedule; diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
	c := draw(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical 64-draw schedules")
	}
}

func TestMeshComposesFaultPlan(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	m := NewMesh(1)
	m.SetPlan(&runctl.FaultPlan{Op: runctl.OpNetRequest, N: 2, Err: runctl.Transient(errors.New("injected"))})
	c := chaosClient(m, "a")
	if _, err := get(t, c, ts.URL, time.Second); err != nil {
		t.Fatalf("1st request should pass: %v", err)
	}
	if _, err := get(t, c, ts.URL, time.Second); err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("2nd request should hit the plan, got %v", err)
	}
	if _, err := get(t, c, ts.URL, time.Second); err != nil {
		t.Fatalf("3rd request should pass: %v", err)
	}
}

func TestMeshListenerInboundFaults(t *testing.T) {
	m := NewMesh(5)
	m.SetLink("*", "srv", Faults{Latency: 40 * time.Millisecond})
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	ts.Listener = m.Listener("srv", ts.Listener)
	ts.Start()
	defer ts.Close()
	start := time.Now()
	body, err := get(t, &http.Client{}, ts.URL, time.Second)
	if err != nil || body != "ok" {
		t.Fatalf("latency-only inbound link must still answer: (%q, %v)", body, err)
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("inbound latency not applied")
	}
}

func TestParse(t *testing.T) {
	m, err := Parse("seed=7,latency=20ms,jitter=5ms,drop=0.25,partition=a->b,partition=c<->d")
	if err != nil {
		t.Fatal(err)
	}
	if !m.Partitioned("a", "b") || m.Partitioned("b", "a") {
		t.Fatal("a->b must be one-way")
	}
	if !m.Partitioned("c", "d") || !m.Partitioned("d", "c") {
		t.Fatal("c<->d must cut both ways")
	}
	f := m.faultsFor("x", "y")
	if f.Latency != 20*time.Millisecond || f.Drop != 0.25 {
		t.Fatalf("wildcard faults not installed: %+v", f)
	}

	for _, bad := range []string{
		"nope",
		"seed=x",
		"drop=1.5",
		"latency=fast",
		"partition=a",
		"partition=->b",
		"wat=1",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): want error", bad)
		}
	}
	if _, err := Parse(""); err != nil {
		t.Fatalf("empty spec is a valid no-op mesh: %v", err)
	}
}
