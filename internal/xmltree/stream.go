package xmltree

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// This file is the streaming serialization layer. The writers walk the
// tree with an explicit stack and emit bytes as they go: no recursion
// (depth-10^6 chains are fine) and no whole-document buffer (memory is
// O(tree depth), not O(document size)). The *Virtual variants splice
// virtual-tag nodes at emission time — a virtual node contributes its
// children in its place — so callers can serialize a transducer's raw
// ξ tree directly, without first mutating or copying it. Registers and
// states are simply not emitted, so stripping is not required either.
//
// On a subtree-shared DAG the writers emit the full unfolding (that is
// the document the DAG denotes) while holding only the emission stack
// in memory: serializing a diamond-n DAG needs O(n) live memory even
// though the document has 2^n leaves.

// xmlEscaper escapes text payloads for XML. Beyond the four classic
// metacharacters it escapes the apostrophe and the control characters
// that XML parsers would otherwise normalize away (\t, \n, \r as
// numeric character references), so text nodes round-trip exactly.
var xmlEscaper = strings.NewReplacer(
	"&", "&amp;",
	"<", "&lt;",
	">", "&gt;",
	`"`, "&quot;",
	"'", "&#39;",
	"\t", "&#x9;",
	"\n", "&#xA;",
	"\r", "&#xD;",
)

// streamItem is one entry of the emission stack: a node still to be
// visited, or (close=true) the pending end-event of an element whose
// subtree has been emitted.
type streamItem struct {
	n     *Node
	depth int
	close bool
}

// emitter drives a pre-order traversal producing open/text/close
// events, splicing nodes whose tag is in virtual.
type emitter struct {
	stack   []streamItem
	virtual map[string]bool
}

func newEmitter(root *Node, virtual map[string]bool) *emitter {
	return &emitter{stack: []streamItem{{n: root}}, virtual: virtual}
}

// next returns the next event; kind is 'o' (open element), 't' (text
// leaf), 'c' (close element), or 0 when the traversal is done.
func (e *emitter) next() (kind byte, n *Node, depth int) {
	for len(e.stack) > 0 {
		it := e.stack[len(e.stack)-1]
		e.stack = e.stack[:len(e.stack)-1]
		switch {
		case it.close:
			return 'c', it.n, it.depth
		case e.virtual[it.n.Tag]:
			// Splice: the node vanishes and its children take its
			// place, at its depth. Nested virtual children are spliced
			// in turn when popped.
			for i := len(it.n.Children) - 1; i >= 0; i-- {
				e.stack = append(e.stack, streamItem{n: it.n.Children[i], depth: it.depth})
			}
		case it.n.IsText():
			return 't', it.n, it.depth
		default:
			e.stack = append(e.stack, streamItem{n: it.n, depth: it.depth, close: true})
			for i := len(it.n.Children) - 1; i >= 0; i-- {
				e.stack = append(e.stack, streamItem{n: it.n.Children[i], depth: it.depth + 1})
			}
			return 'o', it.n, it.depth
		}
	}
	return 0, nil, 0
}

// indenter hands out "  "-per-level indentation without re-allocating
// per node (a depth-d chain would otherwise pay O(d²) in Repeat calls).
type indenter []byte

func (ind *indenter) bytes(depth int) []byte {
	for len(*ind) < 2*depth {
		*ind = append(*ind, "                                "...)
	}
	return (*ind)[:2*depth]
}

// WriteXML streams the tree to w as an indented XML document,
// byte-identical to XML(). Memory use is proportional to the tree's
// depth, and shared (DAG) subtrees are emitted without being unfolded
// in memory.
func (t *Tree) WriteXML(w io.Writer) error {
	return t.WriteXMLVirtual(w, nil)
}

// WriteXMLVirtual is WriteXML with virtual-tag splicing at emission:
// nodes whose tag is in virtual are not emitted, their children appear
// in their place. The tree is not modified. The root's tag must not be
// virtual (guaranteed for transducer output trees).
func (t *Tree) WriteXMLVirtual(w io.Writer, virtual map[string]bool) error {
	bw := bufio.NewWriter(w)
	em := newEmitter(t.Root, virtual)
	var ind indenter
	// One-event lookahead: an element's start tag is held back until we
	// know whether anything is emitted inside it, deciding <a/> vs
	// <a>…</a>. At any close event the pending open, if still unflushed,
	// is necessarily the matching one.
	var pending *Node
	var pendingDepth int
	flush := func() {
		if pending == nil {
			return
		}
		bw.Write(ind.bytes(pendingDepth))
		bw.WriteByte('<')
		bw.WriteString(pending.Tag)
		bw.WriteString(">\n")
		pending = nil
	}
	for {
		kind, n, depth := em.next()
		if kind == 0 {
			break
		}
		switch kind {
		case 'o':
			flush()
			pending, pendingDepth = n, depth
		case 't':
			flush()
			bw.Write(ind.bytes(depth))
			bw.WriteString(xmlEscaper.Replace(n.Text))
			bw.WriteByte('\n')
		case 'c':
			if pending != nil {
				bw.Write(ind.bytes(depth))
				bw.WriteByte('<')
				bw.WriteString(n.Tag)
				bw.WriteString("/>\n")
				pending = nil
			} else {
				bw.Write(ind.bytes(depth))
				bw.WriteString("</")
				bw.WriteString(n.Tag)
				bw.WriteString(">\n")
			}
		}
	}
	return bw.Flush()
}

// WriteCanonical streams the canonical single-line rendering to w,
// byte-identical to Canonical(). Memory use is proportional to the
// tree's depth.
func (t *Tree) WriteCanonical(w io.Writer) error {
	return t.WriteCanonicalVirtual(w, nil)
}

// WriteCanonicalVirtual is WriteCanonical with virtual-tag splicing at
// emission (see WriteXMLVirtual).
func (t *Tree) WriteCanonicalVirtual(w io.Writer, virtual map[string]bool) error {
	bw := bufio.NewWriter(w)
	em := newEmitter(t.Root, virtual)
	// counts[i] = children emitted so far inside the i-th open paren.
	var counts []int
	var pending *Node // element whose tag/paren is not yet written
	sep := func() {
		if len(counts) > 0 {
			if counts[len(counts)-1] > 0 {
				bw.WriteByte(',')
			}
			counts[len(counts)-1]++
		}
	}
	flush := func() {
		if pending == nil {
			return
		}
		sep()
		bw.WriteString(pending.Tag)
		bw.WriteByte('(')
		counts = append(counts, 0)
		pending = nil
	}
	for {
		kind, n, _ := em.next()
		if kind == 0 {
			break
		}
		switch kind {
		case 'o':
			flush()
			pending = n
		case 't':
			flush()
			sep()
			bw.WriteString(n.Tag)
			bw.WriteByte('=')
			bw.WriteString(strconv.Quote(n.Text))
		case 'c':
			if pending != nil {
				sep()
				bw.WriteString(n.Tag)
				pending = nil
			} else {
				bw.WriteByte(')')
				counts = counts[:len(counts)-1]
			}
		}
	}
	return bw.Flush()
}
