package xmltree

import (
	"strings"
	"testing"

	"ptx/internal/relation"
)

func TestParseCanonicalRoundTrip(t *testing.T) {
	cases := []string{
		"r",
		"r(a)",
		"r(a,b,c)",
		"r(a(b(c)),d)",
		`r(text="hello")`,
		`r(a(text="x y"),b)`,
	}
	for _, c := range cases {
		tr, err := Parse(c)
		if err != nil {
			t.Errorf("%q: %v", c, err)
			continue
		}
		if tr.Canonical() != c {
			t.Errorf("round trip %q → %q", c, tr.Canonical())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, c := range []string{"", "(", "r(", "r(a", "r(a,)", "r)x", `r(text=`, `r(text="unterminated`} {
		if _, err := Parse(c); err == nil {
			t.Errorf("%q should fail to parse", c)
		}
	}
}

func TestSizeDepthCount(t *testing.T) {
	tr := MustParse("r(a(b,b),a)")
	if tr.Size() != 5 {
		t.Errorf("Size = %d", tr.Size())
	}
	if tr.Depth() != 3 {
		t.Errorf("Depth = %d", tr.Depth())
	}
	if tr.CountTag("a") != 2 || tr.CountTag("b") != 2 || tr.CountTag("zz") != 0 {
		t.Error("CountTag wrong")
	}
	labels := tr.Labels()
	if len(labels) != 3 || labels[0] != "a" || labels[2] != "r" {
		t.Errorf("Labels = %v", labels)
	}
}

func TestEqualOrderSensitive(t *testing.T) {
	a := MustParse("r(a,b)")
	b := MustParse("r(b,a)")
	if a.Equal(b) {
		t.Error("sibling order matters for Equal")
	}
	if a.SortedCanonical() != b.SortedCanonical() {
		t.Error("SortedCanonical should ignore sibling order")
	}
	if !a.Equal(MustParse("r(a,b)")) {
		t.Error("identical trees should be Equal")
	}
}

func TestEqualTextSensitive(t *testing.T) {
	a := MustParse(`r(text="x")`)
	b := MustParse(`r(text="y")`)
	if a.Equal(b) {
		t.Error("text payload matters")
	}
}

func TestSpliceVirtual(t *testing.T) {
	tr := MustParse("r(v(a,v(b)),c)")
	tr.SpliceVirtual(map[string]bool{"v": true})
	if tr.Canonical() != "r(a,b,c)" {
		t.Fatalf("spliced = %s", tr.Canonical())
	}
	// Nested virtual chains vanish entirely.
	tr2 := MustParse("r(v(v(v)))")
	tr2.SpliceVirtual(map[string]bool{"v": true})
	if tr2.Canonical() != "r" {
		t.Fatalf("spliced = %s", tr2.Canonical())
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := MustParse("r(a)")
	cp := tr.Clone()
	cp.Root.Children[0].Tag = "b"
	if tr.Root.Children[0].Tag != "a" {
		t.Error("clone shares nodes")
	}
}

func TestXMLEscaping(t *testing.T) {
	tr := New("r")
	c := tr.Root.AddChild(TextTag)
	c.Text = `<&>"`
	x := tr.XML()
	if !strings.Contains(x, "&lt;&amp;&gt;&quot;") {
		t.Fatalf("XML = %s", x)
	}
}

func TestXMLShape(t *testing.T) {
	tr := MustParse("r(a,b)")
	want := "<r>\n  <a/>\n  <b/>\n</r>\n"
	if tr.XML() != want {
		t.Fatalf("XML = %q", tr.XML())
	}
}

func TestTextOfRegister(t *testing.T) {
	if got := TextOfRegister(nil); got != "" {
		t.Errorf("nil register: %q", got)
	}
	single := relation.FromRows([]string{"v"})
	if got := TextOfRegister(single); got != "v" {
		t.Errorf("singleton unary: %q", got)
	}
	multi := relation.FromRows([]string{"b", "2"}, []string{"a", "1"})
	if got := TextOfRegister(multi); got != "(a,1) (b,2)" {
		t.Errorf("multi: %q", got)
	}
}

func TestWalkEarlyStop(t *testing.T) {
	tr := MustParse("r(a(b),c)")
	visited := 0
	tr.Walk(func(n *Node) bool {
		visited++
		return n.Tag != "a"
	})
	if visited != 2 { // r, a — stop before b and c
		t.Errorf("visited = %d", visited)
	}
}

// TestCloneSharedPreservesDAG: CloneShared must keep the sharing
// structure (one physical copy per shared node) while Clone unfolds it
// — checkpoint Capture depends on the former to stay small and to keep
// resumed frontiers pointing into one copy of each subtree.
func TestCloneSharedPreservesDAG(t *testing.T) {
	tr := New("r")
	shared := &Node{Tag: "s"}
	shared.AddChild("leaf")
	tr.Root.Children = []*Node{shared, shared, shared}

	if got := tr.Size(); got != 7 {
		t.Fatalf("logical Size = %d, want 7", got)
	}
	if got := tr.SharedSize(); got != 3 {
		t.Fatalf("SharedSize = %d, want 3 physical nodes", got)
	}

	cp, remap := tr.CloneShared()
	if cp.SharedSize() != 3 || cp.Size() != 7 {
		t.Fatalf("clone sizes: shared=%d logical=%d, want 3/7", cp.SharedSize(), cp.Size())
	}
	if cp.Root.Children[0] != cp.Root.Children[1] || cp.Root.Children[1] != cp.Root.Children[2] {
		t.Fatal("clone lost the sharing: occurrences no longer alias one node")
	}
	if remap[shared] != cp.Root.Children[0] {
		t.Fatal("remap does not point the old shared node at its single copy")
	}
	// Mutating the clone must not reach the original.
	cp.Root.Children[0].Tag = "mutated"
	if shared.Tag != "s" {
		t.Fatal("CloneShared aliases original nodes")
	}
	// A plain Clone of the same DAG unfolds: no aliasing between
	// occurrences.
	un := tr.Clone()
	if un.Root.Children[0] == un.Root.Children[1] {
		t.Fatal("Clone kept physical sharing; it must unfold")
	}
}
