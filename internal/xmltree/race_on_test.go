//go:build race

package xmltree

// See race_off_test.go.
const raceEnabled = true
