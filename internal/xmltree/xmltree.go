// Package xmltree implements Σ-trees with local storage (Section 2 of
// the paper): unranked, node-labeled ordered trees whose nodes carry a
// register relation over the data domain. Trees are built by publishing
// transducers and then stripped of registers/states for output;
// virtual-tag nodes are spliced out by replacing them with their
// children.
package xmltree

import (
	"fmt"
	"strings"

	"ptx/internal/relation"
	"ptx/internal/value"
)

// TextTag is the reserved tag for text leaves; a text node carries the
// string representation of its register and has no children.
const TextTag = "text"

// Node is a tree node. While a transducer is running, a node may carry
// a State (the (q,a) labeling of the paper); finalized nodes have an
// empty State. Reg is the node's local register (nil once stripped).
type Node struct {
	Tag      string
	State    string
	Reg      *relation.Relation
	Text     string
	Children []*Node
}

// Tree is a rooted Σ-tree.
type Tree struct {
	Root *Node
}

// New returns a tree with a single root node labeled tag.
func New(tag string) *Tree {
	return &Tree{Root: &Node{Tag: tag}}
}

// AddChild appends a child labeled tag and returns it.
func (n *Node) AddChild(tag string) *Node {
	c := &Node{Tag: tag}
	n.Children = append(n.Children, c)
	return c
}

// IsText reports whether the node is a text leaf.
func (n *Node) IsText() bool { return n.Tag == TextTag }

// Size returns the number of nodes in the subtree rooted at n.
func (n *Node) Size() int {
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// Depth returns the height of the subtree rooted at n (a leaf has
// depth 1).
func (n *Node) Depth() int {
	d := 0
	for _, c := range n.Children {
		if cd := c.Depth(); cd > d {
			d = cd
		}
	}
	return d + 1
}

// Size returns the number of nodes in the tree.
func (t *Tree) Size() int { return t.Root.Size() }

// Depth returns the height of the tree.
func (t *Tree) Depth() int { return t.Root.Depth() }

// Walk visits every node in document order (pre-order); it stops early
// if f returns false.
func (t *Tree) Walk(f func(*Node) bool) {
	var rec func(n *Node) bool
	rec = func(n *Node) bool {
		if !f(n) {
			return false
		}
		for _, c := range n.Children {
			if !rec(c) {
				return false
			}
		}
		return true
	}
	rec(t.Root)
}

// CountTag returns the number of nodes labeled tag.
func (t *Tree) CountTag(tag string) int {
	n := 0
	t.Walk(func(nd *Node) bool {
		if nd.Tag == tag {
			n++
		}
		return true
	})
	return n
}

// Labels returns the set of tags used in the tree, sorted.
func (t *Tree) Labels() []string {
	set := make(map[string]bool)
	t.Walk(func(nd *Node) bool {
		set[nd.Tag] = true
		return true
	})
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sortStrings(out)
	return out
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// Clone returns a deep copy of the tree (registers are cloned too).
func (t *Tree) Clone() *Tree {
	return &Tree{Root: cloneNode(t.Root)}
}

func cloneNode(n *Node) *Node {
	c := &Node{Tag: n.Tag, State: n.State, Text: n.Text}
	if n.Reg != nil {
		c.Reg = n.Reg.Clone()
	}
	c.Children = make([]*Node, len(n.Children))
	for i, ch := range n.Children {
		c.Children[i] = cloneNode(ch)
	}
	return c
}

// Strip removes registers and states in place, producing the plain
// Σ-tree output of a transformation.
func (t *Tree) Strip() *Tree {
	t.Walk(func(n *Node) bool {
		n.Reg = nil
		n.State = ""
		return true
	})
	return t
}

// SpliceVirtual removes every node whose tag is in virtual, replacing
// it by its children, repeatedly until no virtual tags remain. The root
// is never virtual (enforced by the transducer definition).
func (t *Tree) SpliceVirtual(virtual map[string]bool) *Tree {
	if len(virtual) == 0 {
		return t
	}
	var splice func(n *Node)
	splice = func(n *Node) {
		out := make([]*Node, 0, len(n.Children))
		for _, c := range n.Children {
			splice(c)
			if virtual[c.Tag] {
				out = append(out, c.Children...)
			} else {
				out = append(out, c)
			}
		}
		n.Children = out
	}
	splice(t.Root)
	return t
}

// Equal reports structural equality of two trees: same tags, same text,
// same child sequences. Registers and states are ignored (they are not
// part of the output Σ-tree).
func (t *Tree) Equal(o *Tree) bool { return nodeEqual(t.Root, o.Root) }

func nodeEqual(a, b *Node) bool {
	if a.Tag != b.Tag || a.Text != b.Text || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !nodeEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// Canonical returns a canonical single-line rendering of the output
// tree: tag(child,child,…) with text leaves as tag="…". Two trees are
// Equal iff their Canonical strings agree, so it doubles as a hash key.
func (t *Tree) Canonical() string {
	var sb strings.Builder
	writeCanonical(&sb, t.Root)
	return sb.String()
}

func writeCanonical(sb *strings.Builder, n *Node) {
	sb.WriteString(n.Tag)
	if n.IsText() {
		fmt.Fprintf(sb, "=%q", n.Text)
		return
	}
	if len(n.Children) == 0 {
		return
	}
	sb.WriteByte('(')
	for i, c := range n.Children {
		if i > 0 {
			sb.WriteByte(',')
		}
		writeCanonical(sb, c)
	}
	sb.WriteByte(')')
}

var xmlEscaper = strings.NewReplacer(
	"&", "&amp;",
	"<", "&lt;",
	">", "&gt;",
	`"`, "&quot;",
)

// XML serializes the tree as an indented XML document.
func (t *Tree) XML() string {
	var sb strings.Builder
	writeXML(&sb, t.Root, 0)
	return sb.String()
}

func writeXML(sb *strings.Builder, n *Node, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.IsText() {
		sb.WriteString(indent)
		sb.WriteString(xmlEscaper.Replace(n.Text))
		sb.WriteByte('\n')
		return
	}
	if len(n.Children) == 0 {
		fmt.Fprintf(sb, "%s<%s/>\n", indent, n.Tag)
		return
	}
	fmt.Fprintf(sb, "%s<%s>\n", indent, n.Tag)
	for _, c := range n.Children {
		writeXML(sb, c, depth+1)
	}
	fmt.Fprintf(sb, "%s</%s>\n", indent, n.Tag)
}

// TextOfRegister renders a register relation as the pcdata payload of a
// text node, using the canonical tuple order. A singleton unary register
// renders as its bare value, matching the examples in the paper.
func TextOfRegister(r *relation.Relation) string {
	if r == nil {
		return ""
	}
	ts := r.Tuples()
	if len(ts) == 1 && len(ts[0]) == 1 {
		return string(ts[0][0])
	}
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, " ")
}

// Parse parses the Canonical rendering back into a tree; it accepts
// exactly the grammar produced by Canonical and is used to state
// expected trees compactly in tests and in membership inputs.
//
//	tree  := node
//	node  := tag | tag '(' node (',' node)* ')' | tag '=' quoted
func Parse(s string) (*Tree, error) {
	p := &parser{src: s}
	n, err := p.node()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("xmltree: trailing input at %d in %q", p.pos, s)
	}
	return &Tree{Root: n}, nil
}

// MustParse is Parse that panics on error; for test literals.
func MustParse(s string) *Tree {
	t, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return t
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *parser) node() (*Node, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isTagByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("xmltree: expected tag at %d in %q", p.pos, p.src)
	}
	n := &Node{Tag: p.src[start:p.pos]}
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '=' {
		p.pos++
		txt, err := p.quoted()
		if err != nil {
			return nil, err
		}
		n.Text = txt
		return n, nil
	}
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		p.pos++
		for {
			c, err := p.node()
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, c)
			p.skipSpace()
			if p.pos >= len(p.src) {
				return nil, fmt.Errorf("xmltree: unterminated '(' in %q", p.src)
			}
			if p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			if p.src[p.pos] == ')' {
				p.pos++
				break
			}
			return nil, fmt.Errorf("xmltree: expected ',' or ')' at %d in %q", p.pos, p.src)
		}
	}
	return n, nil
}

func (p *parser) quoted() (string, error) {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '"' {
		return "", fmt.Errorf("xmltree: expected '\"' at %d in %q", p.pos, p.src)
	}
	p.pos++
	var sb strings.Builder
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '\\':
			if p.pos+1 < len(p.src) {
				sb.WriteByte(p.src[p.pos+1])
				p.pos += 2
				continue
			}
			return "", fmt.Errorf("xmltree: dangling escape in %q", p.src)
		case '"':
			p.pos++
			return sb.String(), nil
		default:
			sb.WriteByte(p.src[p.pos])
			p.pos++
		}
	}
	return "", fmt.Errorf("xmltree: unterminated string in %q", p.src)
}

func isTagByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '_' || b == '-' || b == '.'
}

// RegisterOfSingle builds a register holding a single tuple of the given
// string values; a convenience for tests.
func RegisterOfSingle(vals ...string) *relation.Relation {
	t := make(value.Tuple, len(vals))
	for i, s := range vals {
		t[i] = value.V(s)
	}
	return relation.FromTuples(len(vals), t)
}

// SortedCanonical returns the canonical rendering after recursively
// sorting siblings, i.e. a representation of the tree as an *unordered*
// tree. Theorem 4(4) of the paper relates transducers and fixed-depth
// transductions over unordered trees; round-trip tests compare with
// this form.
func (t *Tree) SortedCanonical() string {
	var render func(n *Node) string
	render = func(n *Node) string {
		if n.IsText() {
			return n.Tag + "=" + fmt.Sprintf("%q", n.Text)
		}
		if len(n.Children) == 0 {
			return n.Tag
		}
		parts := make([]string, len(n.Children))
		for i, c := range n.Children {
			parts[i] = render(c)
		}
		sortStrings(parts)
		return n.Tag + "(" + strings.Join(parts, ",") + ")"
	}
	return render(t.Root)
}
