// Package xmltree implements Σ-trees with local storage (Section 2 of
// the paper): unranked, node-labeled ordered trees whose nodes carry a
// register relation over the data domain. Trees are built by publishing
// transducers and then stripped of registers/states for output;
// virtual-tag nodes are spliced out by replacing them with their
// children.
//
// Proposition 1(4) of the paper allows legitimately exponentially deep
// and doubly-exponentially large outputs, and pt's subtree sharing
// represents such outputs as DAGs whose unfolding is the logical tree.
// Every traversal in this package is therefore ITERATIVE (explicit
// stacks, no recursion), and the serializers stream to an io.Writer
// instead of materializing whole documents; see stream.go. Walk, Size,
// Depth, Equal and Clone keep their logical-tree semantics (a shared
// node is visited once per occurrence); WalkShared visits each physical
// node exactly once and is the right traversal for DAGs.
package xmltree

import (
	"fmt"
	"sort"
	"strings"

	"ptx/internal/relation"
	"ptx/internal/value"
)

// TextTag is the reserved tag for text leaves; a text node carries the
// string representation of its register and has no children.
const TextTag = "text"

// Node is a tree node. While a transducer is running, a node may carry
// a State (the (q,a) labeling of the paper); finalized nodes have an
// empty State. Reg is the node's local register (nil once stripped).
type Node struct {
	Tag      string
	State    string
	Reg      *relation.Relation
	Text     string
	Children []*Node
}

// Tree is a rooted Σ-tree. Under pt's subtree sharing the structure may
// be a DAG: several parents can reference one physical *Node, and the
// tree it denotes is the unfolding.
type Tree struct {
	Root *Node
}

// New returns a tree with a single root node labeled tag.
func New(tag string) *Tree {
	return &Tree{Root: &Node{Tag: tag}}
}

// AddChild appends a child labeled tag and returns it.
func (n *Node) AddChild(tag string) *Node {
	c := &Node{Tag: tag}
	n.Children = append(n.Children, c)
	return c
}

// IsText reports whether the node is a text leaf.
func (n *Node) IsText() bool { return n.Tag == TextTag }

// Size returns the number of nodes in the subtree rooted at n (logical
// count: shared nodes are counted once per occurrence).
func (n *Node) Size() int {
	s := 0
	stack := []*Node{n}
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		s++
		stack = append(stack, nd.Children...)
	}
	return s
}

// Depth returns the height of the subtree rooted at n (a leaf has
// depth 1).
func (n *Node) Depth() int {
	type item struct {
		n *Node
		d int
	}
	max := 0
	stack := []item{{n, 1}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if it.d > max {
			max = it.d
		}
		for _, c := range it.n.Children {
			stack = append(stack, item{c, it.d + 1})
		}
	}
	return max
}

// Size returns the number of nodes in the tree.
func (t *Tree) Size() int { return t.Root.Size() }

// Depth returns the height of the tree.
func (t *Tree) Depth() int { return t.Root.Depth() }

// Walk visits every node in document order (pre-order); it stops the
// entire walk as soon as f returns false. On a DAG a shared node is
// visited once per logical occurrence; use WalkShared to visit each
// physical node once.
func (t *Tree) Walk(f func(*Node) bool) {
	stack := []*Node{t.Root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !f(n) {
			return
		}
		for i := len(n.Children) - 1; i >= 0; i-- {
			stack = append(stack, n.Children[i])
		}
	}
}

// WalkShared visits each physically distinct node exactly once, in
// document order of first occurrence; it stops the entire walk as soon
// as f returns false. On a plain tree it is identical to Walk; on a
// subtree-shared DAG it does work proportional to the DAG's physical
// size rather than its (possibly exponential) unfolding.
func (t *Tree) WalkShared(f func(*Node) bool) {
	seen := make(map[*Node]bool)
	stack := []*Node{t.Root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		if !f(n) {
			return
		}
		for i := len(n.Children) - 1; i >= 0; i-- {
			if !seen[n.Children[i]] {
				stack = append(stack, n.Children[i])
			}
		}
	}
}

// CountTag returns the number of nodes labeled tag.
func (t *Tree) CountTag(tag string) int {
	n := 0
	t.Walk(func(nd *Node) bool {
		if nd.Tag == tag {
			n++
		}
		return true
	})
	return n
}

// Labels returns the set of tags used in the tree, sorted.
func (t *Tree) Labels() []string {
	set := make(map[string]bool)
	t.WalkShared(func(nd *Node) bool {
		set[nd.Tag] = true
		return true
	})
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the tree (registers are cloned too).
// Sharing is NOT preserved: cloning a DAG materializes its unfolding,
// which can be exponentially larger than the DAG. Prefer Publish or the
// streaming writers on shared trees.
func (t *Tree) Clone() *Tree {
	return &Tree{Root: cloneNode(t.Root)}
}

func cloneNode(n *Node) *Node {
	type pair struct{ src, dst *Node }
	root := copyShallow(n)
	stack := []pair{{n, root}}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if len(p.src.Children) == 0 {
			continue
		}
		p.dst.Children = make([]*Node, len(p.src.Children))
		for i, c := range p.src.Children {
			cc := copyShallow(c)
			p.dst.Children[i] = cc
			stack = append(stack, pair{c, cc})
		}
	}
	return root
}

func copyShallow(n *Node) *Node {
	c := &Node{Tag: n.Tag, State: n.State, Text: n.Text}
	if n.Reg != nil {
		c.Reg = n.Reg.Clone()
	}
	return c
}

// SharedSize returns the number of physically distinct nodes reachable
// from the root — the DAG's size, as opposed to Size, which counts the
// (possibly exponential) unfolding. On a plain tree the two agree.
func (t *Tree) SharedSize() int {
	n := 0
	t.WalkShared(func(*Node) bool {
		n++
		return true
	})
	return n
}

// CloneShared returns a deep copy of the tree that PRESERVES physical
// sharing — a node referenced by k parents is copied once and referenced
// by the k copied parents — along with the old→new node mapping, so
// callers holding references into t (e.g. a checkpoint frontier) can
// translate them into the copy. States, texts and registers are copied;
// register relations are cloned. Cost is proportional to the physical
// (DAG) size.
func (t *Tree) CloneShared() (*Tree, map[*Node]*Node) {
	memo := make(map[*Node]*Node)
	mk := func(n *Node) *Node {
		c := copyShallow(n)
		memo[n] = c
		return c
	}
	root := mk(t.Root)
	stack := []*Node{t.Root}
	for len(stack) > 0 {
		src := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		dst := memo[src]
		if len(src.Children) == 0 || dst.Children != nil {
			continue
		}
		dst.Children = make([]*Node, len(src.Children))
		for i, c := range src.Children {
			cc, ok := memo[c]
			if !ok {
				cc = mk(c)
				stack = append(stack, c)
			}
			dst.Children[i] = cc
		}
	}
	return &Tree{Root: root}, memo
}

// Strip removes registers and states in place, producing the plain
// Σ-tree output of a transformation. Each physical node is stripped
// once, so stripping a shared DAG costs its physical size.
func (t *Tree) Strip() *Tree {
	t.WalkShared(func(n *Node) bool {
		n.Reg = nil
		n.State = ""
		return true
	})
	return t
}

// SpliceVirtual removes every node whose tag is in virtual, replacing
// it by its children, repeatedly until no virtual tags remain. The root
// is never virtual (enforced by the transducer definition). The splice
// is in place and processes each physical node once; note that on a
// shared DAG the splice mutates shared children lists for all parents
// at once (which is the correct logical result, since every occurrence
// of a shared node has the same subtree). Publish performs the same
// splice on a copy, preserving the original.
func (t *Tree) SpliceVirtual(virtual map[string]bool) *Tree {
	if len(virtual) == 0 {
		return t
	}
	type frame struct {
		n *Node
		i int
	}
	seen := map[*Node]bool{t.Root: true}
	stack := []frame{{t.Root, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(f.n.Children) {
			c := f.n.Children[f.i]
			f.i++
			if !seen[c] {
				seen[c] = true
				stack = append(stack, frame{c, 0})
			}
			continue
		}
		// All descendants are spliced; rebuild this node's child list.
		n := f.n
		stack = stack[:len(stack)-1]
		splice := false
		for _, c := range n.Children {
			if virtual[c.Tag] {
				splice = true
				break
			}
		}
		if !splice {
			continue
		}
		out := make([]*Node, 0, len(n.Children))
		for _, c := range n.Children {
			if virtual[c.Tag] {
				out = append(out, c.Children...)
			} else {
				out = append(out, c)
			}
		}
		n.Children = out
	}
	return t
}

// Publish returns the output Σ-tree of a transformation: a copy of t
// with registers and states stripped and virtual tags spliced out
// (splice-at-copy, the original is untouched). Physical sharing is
// preserved — a node shared by k parents in t is represented by one
// shared node in the result — so publishing a subtree-shared DAG costs
// its physical size, not its unfolding.
func (t *Tree) Publish(virtual map[string]bool) *Tree {
	type frame struct {
		src *Node
		dst *Node
		i   int
	}
	memo := make(map[*Node]*Node)
	mk := func(n *Node) *Node {
		d := &Node{Tag: n.Tag, Text: n.Text}
		memo[n] = d
		return d
	}
	root := mk(t.Root)
	stack := []frame{{t.Root, root, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i >= len(f.src.Children) {
			stack = stack[:len(stack)-1]
			continue
		}
		c := f.src.Children[f.i]
		dst, done := memo[c]
		if !done {
			dst = mk(c)
			// First occurrence: build c's copy. The pushed frame
			// completes (fills dst.Children) before any second
			// reference to c is reached — the structure is acyclic, so
			// c cannot occur inside its own subtree, and DFS finishes a
			// subtree before moving right. A virtual child is spliced
			// (its finished children copied in place of itself), so its
			// slot is revisited after the frame completes: leave f.i
			// unchanged and the memo hit below does the splice.
			if !virtual[c.Tag] {
				f.dst.Children = append(f.dst.Children, dst)
				f.i++
			}
			stack = append(stack, frame{c, dst, 0})
			continue
		}
		f.i++
		if virtual[c.Tag] {
			f.dst.Children = append(f.dst.Children, dst.Children...)
		} else {
			f.dst.Children = append(f.dst.Children, dst)
		}
	}
	return &Tree{Root: root}
}

// Equal reports structural equality of two trees: same tags, same text,
// same child sequences. Registers and states are ignored (they are not
// part of the output Σ-tree).
func (t *Tree) Equal(o *Tree) bool {
	type pair struct{ a, b *Node }
	stack := []pair{{t.Root, o.Root}}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if p.a == p.b {
			continue // physically shared: trivially equal
		}
		if p.a.Tag != p.b.Tag || p.a.Text != p.b.Text || len(p.a.Children) != len(p.b.Children) {
			return false
		}
		for i := range p.a.Children {
			stack = append(stack, pair{p.a.Children[i], p.b.Children[i]})
		}
	}
	return true
}

// Canonical returns a canonical single-line rendering of the output
// tree: tag(child,child,…) with text leaves as tag="…". Two trees are
// Equal iff their Canonical strings agree, so it doubles as a hash key.
// Prefer WriteCanonical on large trees: this variant materializes the
// whole document (and hence the full unfolding of a DAG) in memory.
func (t *Tree) Canonical() string {
	var sb strings.Builder
	if err := t.WriteCanonical(&sb); err != nil {
		panic(err) // strings.Builder never errors
	}
	return sb.String()
}

// XML serializes the tree as an indented XML document. Prefer WriteXML
// on large trees: this variant materializes the whole document in
// memory.
func (t *Tree) XML() string {
	var sb strings.Builder
	if err := t.WriteXML(&sb); err != nil {
		panic(err) // strings.Builder never errors
	}
	return sb.String()
}

// TextOfRegister renders a register relation as the pcdata payload of a
// text node, using the canonical tuple order. A singleton unary register
// renders as its bare value, matching the examples in the paper.
func TextOfRegister(r *relation.Relation) string {
	if r == nil {
		return ""
	}
	ts := r.Tuples()
	if len(ts) == 1 && len(ts[0]) == 1 {
		return string(ts[0][0])
	}
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, " ")
}

// Parse parses the Canonical rendering back into a tree; it accepts
// exactly the grammar produced by Canonical and is used to state
// expected trees compactly in tests and in membership inputs.
//
//	tree  := node
//	node  := tag | tag '(' node (',' node)* ')' | tag '=' quoted
func Parse(s string) (*Tree, error) {
	p := &parser{src: s}
	n, err := p.node()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("xmltree: trailing input at %d in %q", p.pos, s)
	}
	return &Tree{Root: n}, nil
}

// MustParse is Parse that panics on error; for test literals.
func MustParse(s string) *Tree {
	t, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return t
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

// node parses one node iteratively: open stands in for the recursion
// stack so that deeply nested canonical inputs cannot overflow it.
func (p *parser) node() (*Node, error) {
	var open []*Node // ancestors with an unclosed '('
	for {
		n, isText, err := p.leaf()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == '(' && !isText {
			p.pos++
			open = append(open, n)
			continue
		}
		// n is complete; attach and close as many parents as possible.
		for {
			if len(open) == 0 {
				return n, nil
			}
			parent := open[len(open)-1]
			parent.Children = append(parent.Children, n)
			p.skipSpace()
			if p.pos >= len(p.src) {
				return nil, fmt.Errorf("xmltree: unterminated '(' in %q", p.src)
			}
			switch p.src[p.pos] {
			case ',':
				p.pos++
			case ')':
				p.pos++
				open = open[:len(open)-1]
				n = parent
				continue
			default:
				return nil, fmt.Errorf("xmltree: expected ',' or ')' at %d in %q", p.pos, p.src)
			}
			break
		}
	}
}

// leaf parses tag or tag="…" (without children); isText reports the
// latter form, which cannot be followed by a child list.
func (p *parser) leaf() (n *Node, isText bool, err error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isTagByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return nil, false, fmt.Errorf("xmltree: expected tag at %d in %q", p.pos, p.src)
	}
	n = &Node{Tag: p.src[start:p.pos]}
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '=' {
		p.pos++
		txt, err := p.quoted()
		if err != nil {
			return nil, false, err
		}
		n.Text = txt
		isText = true
	}
	return n, isText, nil
}

func (p *parser) quoted() (string, error) {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '"' {
		return "", fmt.Errorf("xmltree: expected '\"' at %d in %q", p.pos, p.src)
	}
	p.pos++
	var sb strings.Builder
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '\\':
			if p.pos+1 < len(p.src) {
				sb.WriteByte(p.src[p.pos+1])
				p.pos += 2
				continue
			}
			return "", fmt.Errorf("xmltree: dangling escape in %q", p.src)
		case '"':
			p.pos++
			return sb.String(), nil
		default:
			sb.WriteByte(p.src[p.pos])
			p.pos++
		}
	}
	return "", fmt.Errorf("xmltree: unterminated string in %q", p.src)
}

func isTagByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '_' || b == '-' || b == '.'
}

// RegisterOfSingle builds a register holding a single tuple of the given
// string values; a convenience for tests.
func RegisterOfSingle(vals ...string) *relation.Relation {
	t := make(value.Tuple, len(vals))
	for i, s := range vals {
		t[i] = value.V(s)
	}
	return relation.FromTuples(len(vals), t)
}

// SortedCanonical returns the canonical rendering after recursively
// sorting siblings, i.e. a representation of the tree as an *unordered*
// tree. Theorem 4(4) of the paper relates transducers and fixed-depth
// transductions over unordered trees; round-trip tests compare with
// this form.
func (t *Tree) SortedCanonical() string {
	type frame struct {
		n     *Node
		i     int
		parts []string
	}
	render := func(n *Node) (string, bool) {
		if n.IsText() {
			return n.Tag + "=" + fmt.Sprintf("%q", n.Text), true
		}
		if len(n.Children) == 0 {
			return n.Tag, true
		}
		return "", false
	}
	if s, ok := render(t.Root); ok {
		return s
	}
	stack := []frame{{n: t.Root, parts: make([]string, 0, len(t.Root.Children))}}
	for {
		f := &stack[len(stack)-1]
		if f.i < len(f.n.Children) {
			c := f.n.Children[f.i]
			f.i++
			if s, ok := render(c); ok {
				f.parts = append(f.parts, s)
				continue
			}
			stack = append(stack, frame{n: c, parts: make([]string, 0, len(c.Children))})
			continue
		}
		sort.Strings(f.parts)
		s := f.n.Tag + "(" + strings.Join(f.parts, ",") + ")"
		stack = stack[:len(stack)-1]
		if len(stack) == 0 {
			return s
		}
		p := &stack[len(stack)-1]
		p.parts = append(p.parts, s)
	}
}
