package xmltree

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// ---------------------------------------------------------------------
// Recursive oracles: verbatim copies of the pre-streaming writers (and
// helpers), kept here so every streaming/iterative code path can be
// checked byte-for-byte against the original recursive semantics. They
// intentionally share xmlEscaper with the production code — the
// escaping fix is pinned separately in TestEscaperCoversQuotesAndControls.
// ---------------------------------------------------------------------

func oracleCanonical(t *Tree) string {
	var sb strings.Builder
	oracleWriteCanonical(&sb, t.Root)
	return sb.String()
}

func oracleWriteCanonical(sb *strings.Builder, n *Node) {
	sb.WriteString(n.Tag)
	if n.IsText() {
		fmt.Fprintf(sb, "=%q", n.Text)
		return
	}
	if len(n.Children) == 0 {
		return
	}
	sb.WriteByte('(')
	for i, c := range n.Children {
		if i > 0 {
			sb.WriteByte(',')
		}
		oracleWriteCanonical(sb, c)
	}
	sb.WriteByte(')')
}

func oracleXML(t *Tree) string {
	var sb strings.Builder
	oracleWriteXML(&sb, t.Root, 0)
	return sb.String()
}

func oracleWriteXML(sb *strings.Builder, n *Node, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.IsText() {
		sb.WriteString(indent)
		sb.WriteString(xmlEscaper.Replace(n.Text))
		sb.WriteByte('\n')
		return
	}
	if len(n.Children) == 0 {
		fmt.Fprintf(sb, "%s<%s/>\n", indent, n.Tag)
		return
	}
	fmt.Fprintf(sb, "%s<%s>\n", indent, n.Tag)
	for _, c := range n.Children {
		oracleWriteXML(sb, c, depth+1)
	}
	fmt.Fprintf(sb, "%s</%s>\n", indent, n.Tag)
}

func oracleSortedCanonical(t *Tree) string {
	var render func(n *Node) string
	render = func(n *Node) string {
		if n.IsText() {
			return n.Tag + "=" + fmt.Sprintf("%q", n.Text)
		}
		if len(n.Children) == 0 {
			return n.Tag
		}
		parts := make([]string, len(n.Children))
		for i, c := range n.Children {
			parts[i] = render(c)
		}
		oracleSortStrings(parts)
		return n.Tag + "(" + strings.Join(parts, ",") + ")"
	}
	return render(t.Root)
}

// oracleSortStrings is the O(n²) insertion sort that Labels and
// SortedCanonical used before switching to sort.Strings.
func oracleSortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// randomTree builds a deterministic pseudo-random tree with occasional
// text leaves (whose payloads include XML metacharacters) and tags
// drawn from tags.
func randomTree(r *rand.Rand, depth, maxKids int, tags []string) *Node {
	n := &Node{Tag: tags[r.Intn(len(tags))]}
	if depth == 0 || r.Intn(4) == 0 {
		if r.Intn(3) == 0 {
			n.Tag = TextTag
			n.Text = []string{"plain", `<&>"'`, "tab\there", "nl\nthere", "cr\rthere", ""}[r.Intn(6)]
		}
		return n
	}
	for i := 0; i < r.Intn(maxKids+1); i++ {
		n.Children = append(n.Children, randomTree(r, depth-1, maxKids, tags))
	}
	return n
}

func TestStreamWritersMatchRecursiveOracle(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	tags := []string{"a", "b", "c", "d"}
	for i := 0; i < 200; i++ {
		tr := &Tree{Root: randomTree(r, 5, 4, tags)}
		tr.Root.Tag = "root" // never a text leaf at the root
		tr.Root.Text = ""
		if got, want := tr.Canonical(), oracleCanonical(tr); got != want {
			t.Fatalf("tree %d: Canonical\n got %q\nwant %q", i, got, want)
		}
		if got, want := tr.XML(), oracleXML(tr); got != want {
			t.Fatalf("tree %d: XML\n got %q\nwant %q", i, got, want)
		}
		if got, want := tr.SortedCanonical(), oracleSortedCanonical(tr); got != want {
			t.Fatalf("tree %d: SortedCanonical\n got %q\nwant %q", i, got, want)
		}
	}
}

func TestVirtualWritersMatchSpliceOracle(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	tags := []string{"a", "b", "v", "w"}
	virtual := map[string]bool{"v": true, "w": true}
	for i := 0; i < 200; i++ {
		tr := &Tree{Root: randomTree(r, 5, 4, tags)}
		tr.Root.Tag = "root"
		tr.Root.Text = ""
		spliced := tr.Clone().SpliceVirtual(virtual)
		var sb strings.Builder
		if err := tr.WriteCanonicalVirtual(&sb, virtual); err != nil {
			t.Fatal(err)
		}
		if got, want := sb.String(), oracleCanonical(spliced); got != want {
			t.Fatalf("tree %d: canonical splice\n got %q\nwant %q", i, got, want)
		}
		sb.Reset()
		if err := tr.WriteXMLVirtual(&sb, virtual); err != nil {
			t.Fatal(err)
		}
		if got, want := sb.String(), oracleXML(spliced); got != want {
			t.Fatalf("tree %d: XML splice\n got %q\nwant %q", i, got, want)
		}
		// Publish must agree with clone+strip+splice on the unfolding.
		if got, want := tr.Publish(virtual).Canonical(), oracleCanonical(spliced); got != want {
			t.Fatalf("tree %d: Publish\n got %q\nwant %q", i, got, want)
		}
	}
}

func TestEscaperCoversQuotesAndControls(t *testing.T) {
	tr := New("r")
	c := tr.Root.AddChild(TextTag)
	c.Text = "<&>\"'\t\n\r"
	want := "<r>\n  &lt;&amp;&gt;&quot;&#39;&#x9;&#xA;&#xD;\n</r>\n"
	if got := tr.XML(); got != want {
		t.Fatalf("XML = %q, want %q", got, want)
	}
}

// chainTree builds a root-to-leaf chain of n element nodes labeled "a".
func chainTree(n int) *Tree {
	tr := New("a")
	cur := tr.Root
	for i := 1; i < n; i++ {
		cur = cur.AddChild("a")
	}
	return tr
}

func TestDeepChainMillion(t *testing.T) {
	n := 1_000_000
	if raceEnabled {
		n = 100_000 // the detector is ~10× slower; full depth adds nothing here
	}
	tr := chainTree(n)
	if got := tr.Size(); got != n {
		t.Fatalf("Size = %d", got)
	}
	if got := tr.Depth(); got != n {
		t.Fatalf("Depth = %d", got)
	}
	visited := 0
	tr.Walk(func(*Node) bool { visited++; return true })
	if visited != n {
		t.Fatalf("Walk visited %d", visited)
	}
	cp := tr.Clone()
	if !tr.Equal(cp) {
		t.Fatal("clone not Equal")
	}
	cp.Strip()
	cp.SpliceVirtual(map[string]bool{"zz": true})
	// Canonical of the chain is n tags + (n-1) paren pairs; stream it
	// and parse it back (the parser is iterative too).
	canon := tr.Canonical()
	if len(canon) != n+2*(n-1) {
		t.Fatalf("canonical length %d", len(canon))
	}
	back, err := Parse(canon)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(tr) {
		t.Fatal("canonical round-trip broke the chain")
	}
	// Indented XML of a depth-n chain is Θ(n²) bytes, so only stream it
	// to a sink: the point is that no recursion or per-node Repeat blows
	// up, not the output itself.
	if err := tr.WriteXML(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestDeepChainStreamsMatchOracle(t *testing.T) {
	// Deep enough to prove the iterative walkers, shallow enough that
	// the recursive oracle still fits on a grown goroutine stack. The
	// XML comparison uses a smaller depth because indented XML of a
	// depth-n chain is Θ(n²) bytes.
	tr := chainTree(20_000)
	if got, want := tr.Canonical(), oracleCanonical(tr); got != want {
		t.Fatal("deep chain canonical differs from oracle")
	}
	xtr := chainTree(4_000)
	if got, want := xtr.XML(), oracleXML(xtr); got != want {
		t.Fatal("deep chain XML differs from oracle")
	}
}

// diamondDAG builds the 2-node-per-level DAG whose unfolding is the
// diamond family: each level's node is shared by both references of the
// level above, so the DAG has 2n+1 physical nodes but a 2^n-leaf
// unfolding.
func diamondDAG(n int) *Tree {
	leaf := &Node{Tag: "leaf"}
	cur := leaf
	for i := 0; i < n; i++ {
		cur = &Node{Tag: "pair", Children: []*Node{cur, cur}}
	}
	return &Tree{Root: cur}
}

func physicalSize(t *Tree) int {
	n := 0
	t.WalkShared(func(*Node) bool { n++; return true })
	return n
}

func TestDiamondDAGStreaming(t *testing.T) {
	// Small instance: byte-identical to the oracle on the unfolding.
	small := diamondDAG(6)
	if got, want := small.Canonical(), oracleCanonical(small.Clone()); got != want {
		t.Fatalf("diamond-6 canonical\n got %q\nwant %q", got, want)
	}
	if got, want := small.XML(), oracleXML(small.Clone()); got != want {
		t.Fatal("diamond-6 XML differs from oracle")
	}

	// Large instance: the unfolding has 2^22 leaves; streaming it may
	// only hold the emission stack. Count the bytes instead of buffering.
	levels := 22
	if raceEnabled {
		levels = 18
	}
	big := diamondDAG(levels)
	if got := physicalSize(big); got != levels+1 {
		t.Fatalf("physical size = %d, want %d", got, levels+1)
	}
	cw := &countWriter{}
	if err := big.WriteCanonical(cw); err != nil {
		t.Fatal(err)
	}
	// leaves: 2^levels × "leaf"; pairs: one "pair()" and one comma per
	// interior node of the unfolding.
	leaves := 1 << levels
	want := leaves*4 + (leaves-1)*6 + (leaves - 1)
	if cw.n != want {
		t.Fatalf("streamed %d bytes, want %d", cw.n, want)
	}
}

type countWriter struct{ n int }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	return len(p), nil
}

func TestWalkSharedVisitsPhysicalNodesOnce(t *testing.T) {
	d := diamondDAG(30)
	if got := physicalSize(d); got != 31 {
		t.Fatalf("WalkShared visited %d nodes, want 31", got)
	}
	// Early stop aborts the whole walk, mirroring Walk's contract.
	visited := 0
	d.WalkShared(func(n *Node) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Fatalf("early stop visited %d", visited)
	}
	// On a plain tree WalkShared is plain document order.
	tr := MustParse("r(a(b),c)")
	var order []string
	tr.WalkShared(func(n *Node) bool {
		order = append(order, n.Tag)
		return true
	})
	if strings.Join(order, "") != "rabc" {
		t.Fatalf("order = %v", order)
	}
}

func TestPublishPreservesSharing(t *testing.T) {
	d := diamondDAG(30)
	d.Root.State = "q"
	out := d.Publish(nil)
	if got := physicalSize(out); got != 31 {
		t.Fatalf("Publish unfolded the DAG: physical size %d", got)
	}
	if out.Root.State != "" {
		t.Fatal("Publish kept the state")
	}
	if d.Root.State != "q" {
		t.Fatal("Publish mutated the source")
	}
}

func TestPublishSplicesSharedVirtual(t *testing.T) {
	// A shared virtual node: v is referenced twice; its children must be
	// spliced into both parents, still sharing the grandchildren.
	g := &Node{Tag: "g"}
	v := &Node{Tag: "v", Children: []*Node{g, g}}
	root := &Node{Tag: "r", Children: []*Node{v, v, {Tag: "x"}}}
	tr := &Tree{Root: root}
	out := tr.Publish(map[string]bool{"v": true})
	if got, want := out.Canonical(), "r(g,g,g,g,x)"; got != want {
		t.Fatalf("Canonical = %q, want %q", got, want)
	}
	if got := physicalSize(out); got != 3 { // r, shared g, x
		t.Fatalf("physical size %d, want 3", got)
	}
	// Deeply nested virtual chains splice iteratively.
	deep := New("r")
	cur := deep.Root
	for i := 0; i < 50_000; i++ {
		cur = cur.AddChild("v")
	}
	cur.AddChild("leaf")
	if got := deep.Publish(map[string]bool{"v": true}).Canonical(); got != "r(leaf)" {
		t.Fatalf("deep virtual chain = %q", got)
	}
}

func TestParseDeepNesting(t *testing.T) {
	n := 1_000_000
	if raceEnabled {
		n = 100_000
	}
	src := strings.Repeat("a(", n) + "a" + strings.Repeat(")", n)
	tr, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Depth(); got != n+1 {
		t.Fatalf("Depth = %d", got)
	}
}
