package xmltree

import (
	"fmt"
	"io"
	"sort"
	"testing"
)

// wideTree returns a root with n leaf children carrying distinct tags in
// reverse order, the worst case for the old insertion sort used by
// SortedCanonical and Labels.
func wideTree(n int) *Tree {
	tr := New("r")
	for i := n - 1; i >= 0; i-- {
		tr.Root.AddChild(fmt.Sprintf("t%06d", i))
	}
	return tr
}

// BenchmarkSortWide contrasts sort.Strings (now used by Labels and
// SortedCanonical) with the O(n²) insertion sort it replaced, on the
// reverse-sorted sibling lists a wide tree produces.
func BenchmarkSortWide(b *testing.B) {
	base := make([]string, 4096)
	for i := range base {
		base[i] = fmt.Sprintf("t%06d", len(base)-i)
	}
	scratch := make([]string, len(base))
	b.Run("sort.Strings", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(scratch, base)
			sort.Strings(scratch)
		}
	})
	b.Run("insertion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(scratch, base)
			oracleSortStrings(scratch)
		}
	})
}

func BenchmarkSortedCanonicalWide(b *testing.B) {
	tr := wideTree(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tr.SortedCanonical()
	}
}

// BenchmarkSerializeDiamond measures serializing the diamond-family DAG
// (2^n-leaf unfolding, O(n) physical nodes). "stream" writes the
// unfolding through WriteCanonical without materializing anything;
// "materialize" is the old path: Clone (which unfolds the DAG), then
// Canonical into one string. Allocated bytes per op is the headline
// number: the streamed DAG stays proportional to the DAG.
func BenchmarkSerializeDiamond(b *testing.B) {
	const n = 10
	b.Run("stream", func(b *testing.B) {
		d := diamondDAG(n)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := d.WriteCanonical(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("materialize", func(b *testing.B) {
		d := diamondDAG(n)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = d.Clone().Canonical()
		}
	})
}
