// Package value defines the data domain D of the publishing-transducer
// model: an infinite, totally ordered set of data values shared by the
// relational source and the node registers of generated trees.
//
// The paper assumes an implicit order ≤ on D that is used only to order
// siblings in the output tree (it is not visible to the query logic).
// This package instantiates that order concretely: values that parse as
// integers compare numerically and precede all non-numeric values, which
// compare lexicographically. The order is total and deterministic, so a
// transducer run always produces the same tree.
package value

import (
	"sort"
	"strconv"
	"strings"
)

// V is a single data value from the domain D.
type V string

// Int returns the numeric interpretation of v and whether v is an integer.
func (v V) Int() (int64, bool) {
	n, err := strconv.ParseInt(string(v), 10, 64)
	return n, err == nil
}

// Of converts any integer to a value.
func Of(n int) V { return V(strconv.Itoa(n)) }

// Compare orders two values: integers numerically first, then strings
// lexicographically. It returns -1, 0 or +1. Numeric comparison is done
// on the digit strings directly (arbitrary precision), avoiding integer
// parsing in this extremely hot path.
func Compare(a, b V) int {
	aneg, adig, aok := numParts(string(a))
	bneg, bdig, bok := numParts(string(b))
	switch {
	case aok && bok:
		if aneg != bneg {
			if aneg {
				return -1
			}
			return +1
		}
		c := compareDigits(adig, bdig)
		if aneg {
			return -c
		}
		return c
	case aok:
		return -1
	case bok:
		return +1
	}
	return strings.Compare(string(a), string(b))
}

// numParts splits s into sign and digits when s is a decimal integer
// (optional leading '-', at least one digit, digits only).
func numParts(s string) (neg bool, digits string, ok bool) {
	if len(s) == 0 {
		return false, "", false
	}
	if s[0] == '-' {
		neg = true
		s = s[1:]
		if len(s) == 0 {
			return false, "", false
		}
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false, "", false
		}
	}
	// Strip leading zeros for magnitude comparison; "0"/"-0" compare
	// equal to "0".
	i := 0
	for i < len(s)-1 && s[i] == '0' {
		i++
	}
	digits = s[i:]
	if digits == "0" {
		neg = false
	}
	return neg, digits, true
}

// compareDigits compares two nonempty digit strings without leading
// zeros by magnitude.
func compareDigits(a, b string) int {
	if len(a) != len(b) {
		if len(a) < len(b) {
			return -1
		}
		return +1
	}
	return strings.Compare(a, b)
}

// Less reports whether a precedes b in the domain order.
func Less(a, b V) bool { return Compare(a, b) < 0 }

// Tuple is a fixed-arity sequence of values.
type Tuple []V

// CompareTuples extends the domain order to tuples lexicographically
// (the "canonical way" of the paper). Shorter tuples precede longer ones
// that share a prefix.
func CompareTuples(a, b Tuple) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return +1
	}
	return 0
}

// Equal reports component-wise equality of two tuples.
func Equal(a, b Tuple) bool { return CompareTuples(a, b) == 0 }

// Clone returns an independent copy of t.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Concat returns the concatenation a·b as a fresh tuple.
func Concat(a, b Tuple) Tuple {
	c := make(Tuple, 0, len(a)+len(b))
	c = append(c, a...)
	c = append(c, b...)
	return c
}

// Key encodes t as a string usable as a map key. The encoding is
// injective: each component is length-prefixed, so no two distinct
// tuples of any arities share a key (the empty tuple encodes as "").
func (t Tuple) Key() string {
	return string(t.AppendKey(nil))
}

// AppendKey appends the Key encoding of t to dst and returns the
// extended slice; it is the allocation-free form used by the register
// fingerprinting hot path (relation.Key, the transducer stop condition
// and the memoization caches).
func (t Tuple) AppendKey(dst []byte) []byte {
	for _, v := range t {
		dst = strconv.AppendInt(dst, int64(len(v)), 10)
		dst = append(dst, ':')
		dst = append(dst, v...)
	}
	return dst
}

// String renders t as (v1,v2,…) for diagnostics.
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = string(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// SortTuples sorts ts in place in the canonical tuple order.
func SortTuples(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool { return CompareTuples(ts[i], ts[j]) < 0 })
}

// SortValues sorts vs in place in the domain order.
func SortValues(vs []V) {
	sort.Slice(vs, func(i, j int) bool { return Less(vs[i], vs[j]) })
}
