package value

// Interner maps values to dense uint32 ids for one evaluation's
// lifetime. The compiled-plan executor keys its hash joins and
// deduplication sets on packed id tuples instead of length-prefixed
// string renderings: a k-column join key becomes 4k fixed bytes built
// with no per-value length formatting, and repeated values (the common
// case — join attributes draw from small domains) hash the same 4
// bytes every time.
//
// An Interner is single-goroutine by design: plan executions each own
// one, so there is no lock and no cross-request contention or
// unbounded global growth. The zero value is not ready; use
// NewInterner.
type Interner struct {
	ids  map[V]uint32
	vals []V
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[V]uint32, 64)}
}

// ID returns the dense id of v, assigning the next free id on first
// sight. Ids are assigned in first-encounter order and are NOT
// canonical across interners — they are valid only for keys that never
// leave this interner's lifetime.
func (in *Interner) ID(v V) uint32 {
	if id, ok := in.ids[v]; ok {
		return id
	}
	id := uint32(len(in.vals))
	in.ids[v] = id
	in.vals = append(in.vals, v)
	return id
}

// Val returns the value with the given id; it panics on ids the
// interner never issued.
func (in *Interner) Val(id uint32) V { return in.vals[id] }

// Len returns the number of distinct values interned so far.
func (in *Interner) Len() int { return len(in.vals) }

// AppendID appends the 4-byte big-endian encoding of v's id to dst.
func (in *Interner) AppendID(dst []byte, v V) []byte {
	id := in.ID(v)
	return append(dst, byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
}

// AppendTupleID appends the packed id encoding of t to dst. Within one
// interner the encoding is injective for a fixed arity: equal tuples
// produce equal bytes and distinct tuples distinct bytes.
func (in *Interner) AppendTupleID(dst []byte, t Tuple) []byte {
	for _, v := range t {
		dst = in.AppendID(dst, v)
	}
	return dst
}
