package value

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCompareNumericBeforeString(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"1", "2", -1},
		{"2", "10", -1}, // numeric, not lexicographic
		{"10", "10", 0},
		{"-3", "2", -1},
		{"5", "abc", -1}, // numbers precede strings
		{"abc", "5", +1},
		{"abc", "abd", -1},
		{"", "a", -1},
		{"a", "a", 0},
	}
	for _, c := range cases {
		if got := Compare(V(c.a), V(c.b)); got != c.want {
			t.Errorf("Compare(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareIsTotalOrder(t *testing.T) {
	// Property: antisymmetry and transitivity on random values.
	vals := []V{"0", "1", "-5", "10", "2", "x", "abc", "", "zz", "007"}
	for _, a := range vals {
		for _, b := range vals {
			if Compare(a, b) != -Compare(b, a) {
				t.Errorf("antisymmetry fails for %q,%q", a, b)
			}
			for _, c := range vals {
				if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
					t.Errorf("transitivity fails for %q ≤ %q ≤ %q", a, b, c)
				}
			}
		}
	}
}

func TestCompareReflexiveProperty(t *testing.T) {
	f := func(s string) bool { return Compare(V(s), V(s)) == 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareAntisymmetricProperty(t *testing.T) {
	f := func(a, b string) bool { return Compare(V(a), V(b)) == -Compare(V(b), V(a)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleKeyInjective(t *testing.T) {
	// The classic collision risk: ("a","bc") vs ("ab","c").
	a := Tuple{"a", "bc"}
	b := Tuple{"ab", "c"}
	if a.Key() == b.Key() {
		t.Fatalf("Key collision: %q", a.Key())
	}
	c := Tuple{"1:", "x"}
	d := Tuple{"1", ":x"}
	if c.Key() == d.Key() {
		t.Fatalf("Key collision: %q", c.Key())
	}
}

func TestTupleKeyInjectiveProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 string) bool {
		a := Tuple{V(a1), V(a2)}
		b := Tuple{V(b1), V(b2)}
		if a1 == b1 && a2 == b2 {
			return a.Key() == b.Key()
		}
		return a.Key() != b.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareTuples(t *testing.T) {
	cases := []struct {
		a, b Tuple
		want int
	}{
		{Tuple{"1"}, Tuple{"2"}, -1},
		{Tuple{"1", "9"}, Tuple{"1", "10"}, -1},
		{Tuple{"1"}, Tuple{"1", "0"}, -1}, // prefix precedes extension
		{Tuple{}, Tuple{}, 0},
		{Tuple{"a", "b"}, Tuple{"a", "b"}, 0},
	}
	for _, c := range cases {
		if got := CompareTuples(c.a, c.b); got != c.want {
			t.Errorf("CompareTuples(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSortTuplesSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ts := make([]Tuple, 50)
	for i := range ts {
		ts[i] = Tuple{Of(rng.Intn(20)), Of(rng.Intn(20))}
	}
	SortTuples(ts)
	if !sort.SliceIsSorted(ts, func(i, j int) bool { return CompareTuples(ts[i], ts[j]) < 0 }) {
		t.Fatal("SortTuples did not sort")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Tuple{"x", "y"}
	b := a.Clone()
	b[0] = "z"
	if a[0] != "x" {
		t.Fatal("Clone shares storage")
	}
}

func TestConcat(t *testing.T) {
	a := Tuple{"1"}
	b := Tuple{"2", "3"}
	c := Concat(a, b)
	if len(c) != 3 || c[0] != "1" || c[2] != "3" {
		t.Fatalf("Concat = %v", c)
	}
	c[0] = "9"
	if a[0] != "1" {
		t.Fatal("Concat shares storage with input")
	}
}

func TestOf(t *testing.T) {
	if Of(42) != "42" {
		t.Fatalf("Of(42) = %q", Of(42))
	}
	if n, ok := Of(-7).Int(); !ok || n != -7 {
		t.Fatalf("roundtrip failed: %v %v", n, ok)
	}
}

func TestIntRejectsNonNumbers(t *testing.T) {
	for _, s := range []string{"", "a", "1.5", "1e3", "0x10"} {
		if _, ok := V(s).Int(); ok {
			t.Errorf("%q parsed as int", s)
		}
	}
}
