package value

import "testing"

// TestAppendKeyMatchesKey: AppendKey is the allocation-free form of Key
// used by relation fingerprinting; both must produce the same encoding,
// and appending to a nonempty prefix must not disturb it.
func TestAppendKeyMatchesKey(t *testing.T) {
	tuples := []Tuple{
		{},
		{"a"},
		{"a", "b"},
		{"ab"},
		{":", ";"},
		{"", ""},
	}
	for _, tp := range tuples {
		if got := string(tp.AppendKey(nil)); got != tp.Key() {
			t.Errorf("AppendKey(%v) = %q, Key = %q", tp, got, tp.Key())
		}
		prefixed := tp.AppendKey([]byte("prefix|"))
		if string(prefixed) != "prefix|"+tp.Key() {
			t.Errorf("AppendKey with prefix broke the encoding: %q", prefixed)
		}
	}
}
