package relation

import (
	"strings"
	"testing"

	"ptx/internal/value"
)

func deltaSchema() *Schema {
	return NewSchema().MustDeclare("e", 2).MustDeclare("a", 1)
}

func TestDeltaBuildersAndString(t *testing.T) {
	d := (&Delta{}).Insert("e", "1", "2").Delete("a", "x")
	if d.Len() != 2 || d.Empty() {
		t.Fatalf("Len=%d Empty=%v, want 2/false", d.Len(), d.Empty())
	}
	if got := d.String(); got != "+e(1,2) -a(x)" {
		t.Fatalf("String() = %q", got)
	}
	if got := d.Rels(); len(got) != 2 || got[0] != "a" || got[1] != "e" {
		t.Fatalf("Rels() = %v", got)
	}
	var empty *Delta
	if !empty.Empty() || empty.Len() != 0 || empty.Rels() != nil {
		t.Fatalf("nil delta should be empty")
	}
}

func TestDeltaValidate(t *testing.T) {
	s := deltaSchema()
	if err := (&Delta{}).Insert("e", "1", "2").Validate(s); err != nil {
		t.Fatalf("valid delta rejected: %v", err)
	}
	if err := (&Delta{}).Insert("nope", "1").Validate(s); err == nil || !strings.Contains(err.Error(), "not in schema") {
		t.Fatalf("unknown relation not rejected: %v", err)
	}
	if err := (&Delta{}).Insert("e", "1").Validate(s); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("arity mismatch not rejected: %v", err)
	}
}

func TestInstanceApplyEffectiveDelta(t *testing.T) {
	inst := NewInstance(deltaSchema())
	inst.Add("e", "1", "2")
	v0 := inst.Version()

	// Insert a present tuple + delete an absent one: fully ineffective.
	eff, err := inst.Apply((&Delta{}).Insert("e", "1", "2").Delete("a", "x"))
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !eff.Empty() {
		t.Fatalf("effective delta = %v, want empty", eff)
	}
	if inst.Version() != v0 {
		t.Fatalf("ineffective delta bumped version %d -> %d", v0, inst.Version())
	}

	// Mixed: one effective insert, one ineffective, one effective delete.
	eff, err = inst.Apply((&Delta{}).Insert("a", "x").Insert("e", "1", "2").Delete("e", "1", "2"))
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if eff.Len() != 2 || eff.String() != "+a(x) -e(1,2)" {
		t.Fatalf("effective delta = %v", eff)
	}
	if inst.Version() != v0+1 {
		t.Fatalf("version = %d, want %d", inst.Version(), v0+1)
	}
	if inst.Rel("e").Len() != 0 || inst.Rel("a").Len() != 1 {
		t.Fatalf("post state wrong: %s", inst)
	}

	// Validation failure applies nothing.
	before := inst.String()
	if _, err := inst.Apply((&Delta{}).Insert("a", "y").Insert("zzz", "1")); err == nil {
		t.Fatal("invalid delta accepted")
	}
	if inst.String() != before || inst.Version() != v0+1 {
		t.Fatal("failed Apply mutated the instance")
	}
}

// The fingerprint cache must be dropped by the new mutators: a Key()
// computed before an Insert/Delete must not be served afterwards.
func TestMutatorsInvalidateFingerprint(t *testing.T) {
	r := New(2)
	r.Add(value.Tuple{"1", "2"})
	k1 := r.Key()
	if !r.Insert(value.Tuple{"3", "4"}) {
		t.Fatal("Insert of fresh tuple reported no change")
	}
	k2 := r.Key()
	if k1 == k2 {
		t.Fatal("Key unchanged after Insert: stale fingerprint served")
	}
	if r.Insert(value.Tuple{"3", "4"}) {
		t.Fatal("Insert of present tuple reported a change")
	}
	if r.Key() != k2 {
		t.Fatal("no-op Insert changed Key")
	}
	if !r.Delete(value.Tuple{"3", "4"}) {
		t.Fatal("Delete of present tuple reported no change")
	}
	if r.Key() != k1 {
		t.Fatal("Key after Delete should match the pre-Insert fingerprint")
	}
	if r.Delete(value.Tuple{"3", "4"}) {
		t.Fatal("Delete of absent tuple reported a change")
	}
}

func TestCloneCarriesVersion(t *testing.T) {
	inst := NewInstance(deltaSchema())
	inst.Add("a", "x")
	c := inst.Clone()
	if c.Version() != inst.Version() {
		t.Fatalf("clone version %d != %d", c.Version(), inst.Version())
	}
	// Mutating the clone must not affect the original.
	if _, err := c.Apply((&Delta{}).Insert("a", "y")); err != nil {
		t.Fatal(err)
	}
	if inst.Rel("a").Len() != 1 || c.Rel("a").Len() != 2 {
		t.Fatal("clone shares storage with original")
	}
	if c.Version() == inst.Version() {
		t.Fatal("clone mutation bumped (or failed to bump past) original version")
	}
}
