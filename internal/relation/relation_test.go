package relation

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ptx/internal/value"
)

func rel(rows ...[]string) *Relation { return FromRows(rows...) }

func TestAddDeduplicates(t *testing.T) {
	r := New(2)
	r.Add(value.Tuple{"a", "b"})
	r.Add(value.Tuple{"a", "b"})
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
}

func TestArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).Add(value.Tuple{"a"})
}

func TestTuplesSortedDeterministic(t *testing.T) {
	r := New(1)
	for _, v := range []string{"10", "2", "1", "x", "a"} {
		r.Add(value.Tuple{value.V(v)})
	}
	ts := r.Tuples()
	want := []string{"1", "2", "10", "a", "x"}
	for i, w := range want {
		if string(ts[i][0]) != w {
			t.Fatalf("position %d = %s, want %s", i, ts[i][0], w)
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := rel([]string{"1"}, []string{"2"})
	b := rel([]string{"2"}, []string{"3"})
	if u := Union(a, b); u.Len() != 3 {
		t.Errorf("union: %s", u)
	}
	if i := Intersect(a, b); i.Len() != 1 || !i.Contains(value.Tuple{"2"}) {
		t.Errorf("intersect: %s", i)
	}
	if d := Difference(a, b); d.Len() != 1 || !d.Contains(value.Tuple{"1"}) {
		t.Errorf("difference: %s", d)
	}
	if p := Product(a, b); p.Len() != 4 || p.Arity() != 2 {
		t.Errorf("product: %s", p)
	}
}

func TestProjectSelect(t *testing.T) {
	r := rel([]string{"1", "a"}, []string{"2", "a"}, []string{"2", "b"})
	if p := r.Project(1); p.Len() != 2 {
		t.Errorf("project dedup: %s", p)
	}
	if p := r.Project(1, 0); !p.Contains(value.Tuple{"a", "1"}) {
		t.Errorf("project reorder: %s", p)
	}
	if s := r.SelectEqConst(0, "2"); s.Len() != 2 {
		t.Errorf("select const: %s", s)
	}
	rr := rel([]string{"1", "1"}, []string{"1", "2"})
	if s := rr.SelectEqCols(0, 1); s.Len() != 1 {
		t.Errorf("select eq cols: %s", s)
	}
}

func TestUnionWithReportsGrowth(t *testing.T) {
	a := rel([]string{"1"})
	b := rel([]string{"1"})
	if a.UnionWith(b) {
		t.Error("no growth expected")
	}
	c := rel([]string{"2"})
	if !a.UnionWith(c) {
		t.Error("growth expected")
	}
}

func TestSubsetEqual(t *testing.T) {
	a := rel([]string{"1"}, []string{"2"})
	b := rel([]string{"1"}, []string{"2"}, []string{"3"})
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Error("SubsetOf wrong")
	}
	if a.Equal(b) {
		t.Error("Equal wrong")
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone not equal")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := rel([]string{"1"})
	b := a.Clone()
	b.Add(value.Tuple{"2"})
	if a.Len() != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestActiveDomainSorted(t *testing.T) {
	r := rel([]string{"10", "b"}, []string{"2", "a"})
	ad := r.ActiveDomain()
	want := []value.V{"2", "10", "a", "b"}
	if len(ad) != len(want) {
		t.Fatalf("adom = %v", ad)
	}
	for i := range want {
		if ad[i] != want[i] {
			t.Fatalf("adom = %v, want %v", ad, want)
		}
	}
}

func TestSchemaRedeclare(t *testing.T) {
	s := NewSchema()
	if err := s.Declare("R", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Declare("R", 2); err != nil {
		t.Fatal("same-arity redeclare should be fine:", err)
	}
	if err := s.Declare("R", 3); err == nil {
		t.Fatal("conflicting redeclare should error")
	}
}

func TestInstanceBasics(t *testing.T) {
	s := NewSchema().MustDeclare("E", 2)
	i := NewInstance(s)
	i.Add("E", "a", "b")
	i.Add("E", "b", "c")
	if i.Size() != 2 {
		t.Fatalf("Size = %d", i.Size())
	}
	j := i.Clone()
	j.Add("E", "c", "d")
	if i.Size() != 2 {
		t.Fatal("clone shares storage")
	}
	if !i.SubsetOf(j) || j.SubsetOf(i) {
		t.Fatal("SubsetOf wrong")
	}
	if i.Equal(j) || !i.Equal(i.Clone()) {
		t.Fatal("Equal wrong")
	}
}

func TestInstanceUnknownRelationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewInstance(NewSchema()).Rel("missing")
}

// Property: union is commutative, associative and idempotent on random
// relations.
func TestUnionPropertiesQuick(t *testing.T) {
	gen := func(seed int64) *Relation {
		rng := rand.New(rand.NewSource(seed))
		r := New(2)
		for k := 0; k < rng.Intn(10); k++ {
			r.Add(value.Tuple{value.Of(rng.Intn(5)), value.Of(rng.Intn(5))})
		}
		return r
	}
	f := func(s1, s2, s3 int64) bool {
		a, b, c := gen(s1), gen(s2), gen(s3)
		if !Union(a, b).Equal(Union(b, a)) {
			return false
		}
		if !Union(Union(a, b), c).Equal(Union(a, Union(b, c))) {
			return false
		}
		return Union(a, a).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: difference and intersection relate as A\(A\B) = A∩B.
func TestDiffIntersectProperty(t *testing.T) {
	gen := func(seed int64) *Relation {
		rng := rand.New(rand.NewSource(seed))
		r := New(1)
		for k := 0; k < rng.Intn(12); k++ {
			r.Add(value.Tuple{value.Of(rng.Intn(6))})
		}
		return r
	}
	f := func(s1, s2 int64) bool {
		a, b := gen(s1), gen(s2)
		return Difference(a, Difference(a, b)).Equal(Intersect(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStringDeterministic(t *testing.T) {
	r := rel([]string{"2"}, []string{"1"})
	if r.String() != "{(1),(2)}" {
		t.Fatalf("String = %s", r.String())
	}
}
