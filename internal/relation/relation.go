// Package relation implements finite relations over the data domain,
// relational schemas, and database instances — the source side of a
// publishing transducer and the register contents of generated trees.
//
// Relations are sets (no duplicates) of fixed-arity tuples with
// deterministic sorted iteration, which underpins the unique-output
// guarantee of Proposition 1(1).
package relation

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"ptx/internal/value"
)

// Relation is a finite set of tuples of a fixed arity.
//
// Alongside the tuple store the relation maintains four lazily built,
// mutation-invalidated acceleration structures: the canonical
// fingerprint (Key), the canonical sorted order (Sorted/Tuples/Each),
// the active domain (ActiveDomain) and a columnar copy of the sorted
// order (Columns). They are atomic so that concurrent READERS (e.g.
// parallel transducer workers evaluating over a shared register) are
// race-free; mutation is not concurrency-safe, as for the rest of the
// type. Secondary column→tuples indexes (Lookup) follow the same
// contract and are maintained incrementally by every mutator,
// including deltas applied through Instance.Apply.
type Relation struct {
	arity  int
	tuples map[string]value.Tuple
	// fp caches the canonical fingerprint of Key; nil means "not
	// computed". Mutators clear it.
	fp atomic.Pointer[string]
	// sorted caches the canonical iteration order so Tuples/Each stop
	// re-sorting per call; the cached slice is shared and never mutated
	// after publication.
	sorted atomic.Pointer[[]value.Tuple]
	// adom caches ActiveDomain.
	adom atomic.Pointer[[]value.V]
	// cols caches the columnar layout of the sorted order.
	cols atomic.Pointer[[][]value.V]
	// idx holds the per-column secondary indexes that have been built
	// (nil slots = column not indexed yet). Readers build missing
	// columns copy-on-write and publish with CompareAndSwap; mutators
	// update built columns in place (mutation excludes readers).
	idx atomic.Pointer[colIndex]
}

// colIndex is the secondary-index set: one value→tuples map per
// indexed column.
type colIndex struct {
	cols []map[value.V][]value.Tuple
}

// touch invalidates every derived structure after a mutation except
// the secondary indexes, which mutators maintain incrementally.
func (r *Relation) touch() {
	r.fp.Store(nil)
	r.sorted.Store(nil)
	r.adom.Store(nil)
	r.cols.Store(nil)
}

// New returns an empty relation of the given arity.
func New(arity int) *Relation {
	if arity < 0 {
		panic("relation: negative arity")
	}
	return &Relation{arity: arity, tuples: make(map[string]value.Tuple)}
}

// FromTuples builds a relation of the given arity containing ts.
func FromTuples(arity int, ts ...value.Tuple) *Relation {
	r := New(arity)
	for _, t := range ts {
		r.Add(t)
	}
	return r
}

// FromRows builds a relation from rows of strings; all rows must share
// one arity, which becomes the relation's arity. FromRows panics on
// ragged input (it is intended for literals in tests and examples).
func FromRows(rows ...[]string) *Relation {
	if len(rows) == 0 {
		panic("relation: FromRows needs at least one row; use New for empty relations")
	}
	r := New(len(rows[0]))
	for _, row := range rows {
		t := make(value.Tuple, len(row))
		for i, s := range row {
			t[i] = value.V(s)
		}
		r.Add(t)
	}
	return r
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Empty reports whether the relation has no tuples.
func (r *Relation) Empty() bool { return len(r.tuples) == 0 }

// Add inserts t, which must match the relation's arity. Adding a tuple
// that is already present is a no-op and keeps every cached structure
// valid.
func (r *Relation) Add(t value.Tuple) {
	r.Insert(t)
}

// indexInsert appends t to every built column index.
func (r *Relation) indexInsert(t value.Tuple) {
	ix := r.idx.Load()
	if ix == nil {
		return
	}
	for c, m := range ix.cols {
		if m != nil {
			m[t[c]] = append(m[t[c]], t)
		}
	}
}

// indexDelete removes t from every built column index.
func (r *Relation) indexDelete(t value.Tuple) {
	ix := r.idx.Load()
	if ix == nil {
		return
	}
	for c, m := range ix.cols {
		if m == nil {
			continue
		}
		bucket := m[t[c]]
		for i, bt := range bucket {
			if value.Equal(bt, t) {
				bucket[i] = bucket[len(bucket)-1]
				bucket = bucket[:len(bucket)-1]
				break
			}
		}
		if len(bucket) == 0 {
			delete(m, t[c])
		} else {
			m[t[c]] = bucket
		}
	}
}

// Key returns a canonical fingerprint of the relation: an injective
// encoding of (arity, tuple set) that is identical for equal relations
// regardless of insertion order. Two relations r, o of any arities
// satisfy r.Key() == o.Key() iff r.Equal(o).
//
// This is the register fingerprint used by the transducer run loop for
// the ancestor stop condition and the memoization caches: it deliberately
// forgets insertion order (registers are SETS — Section 2 of the paper),
// while sibling order in the output tree is fixed separately by the
// domain order ≤ on tuples at grouping time (see pt.groupByPrefix).
// The fingerprint is cached until the next mutation; computing it is
// O(n log n) in the number of tuples.
func (r *Relation) Key() string {
	if p := r.fp.Load(); p != nil {
		return *p
	}
	keys := make([]string, 0, len(r.tuples))
	n := 0
	for k := range r.tuples {
		keys = append(keys, k)
		n += len(k) + 1
	}
	sort.Strings(keys)
	b := make([]byte, 0, n+8)
	b = strconv.AppendInt(b, int64(r.arity), 10)
	b = append(b, '|')
	for _, k := range keys {
		b = append(b, k...)
		b = append(b, ';')
	}
	s := string(b)
	r.fp.Store(&s)
	return s
}

// Contains reports whether t is in the relation.
func (r *Relation) Contains(t value.Tuple) bool {
	_, ok := r.tuples[t.Key()]
	return ok
}

// Remove deletes t if present.
func (r *Relation) Remove(t value.Tuple) {
	r.Delete(t)
}

// Sorted returns the tuples in the canonical sorted order. The slice
// is cached until the next mutation and shared between callers: it
// must be treated as immutable. Use Tuples for a private copy.
func (r *Relation) Sorted() []value.Tuple {
	if p := r.sorted.Load(); p != nil {
		return *p
	}
	out := make([]value.Tuple, 0, len(r.tuples))
	for _, t := range r.tuples {
		out = append(out, t)
	}
	value.SortTuples(out)
	r.sorted.Store(&out)
	return out
}

// Tuples returns a fresh slice of all tuples in the canonical sorted
// order. The sort itself is cached (see Sorted); only the slice header
// array is copied, so callers may append or reorder freely.
func (r *Relation) Tuples() []value.Tuple {
	s := r.Sorted()
	out := make([]value.Tuple, len(s))
	copy(out, s)
	return out
}

// Each calls f for every tuple in sorted order; it stops early if f
// returns false.
func (r *Relation) Each(f func(value.Tuple) bool) {
	for _, t := range r.Sorted() {
		if !f(t) {
			return
		}
	}
}

// Columns returns the relation's tuples in columnar layout: one slice
// per column, rows aligned with Sorted. The layout is cached until the
// next mutation and shared between callers; it must be treated as
// immutable. Column-major scans touch only the bytes a predicate
// needs, which is what the compiled-plan executor's constant filters
// iterate.
func (r *Relation) Columns() [][]value.V {
	if p := r.cols.Load(); p != nil {
		return *p
	}
	s := r.Sorted()
	out := make([][]value.V, r.arity)
	for c := range out {
		col := make([]value.V, len(s))
		for i, t := range s {
			col[i] = t[c]
		}
		out[c] = col
	}
	r.cols.Store(&out)
	return out
}

// Lookup returns the tuples whose column col equals v, backed by a
// secondary column→tuples index. The index for col is built on first
// use and maintained incrementally by every mutator (Add, Remove,
// Insert, Delete, UnionWith — and therefore by deltas applied through
// Instance.Apply), so repeated lookups after small deltas never
// re-scan the relation. The returned slice is shared with the index
// and must not be modified; its order is unspecified.
func (r *Relation) Lookup(col int, v value.V) []value.Tuple {
	if col < 0 || col >= r.arity {
		panic(fmt.Sprintf("relation: lookup column %d out of range for arity %d", col, r.arity))
	}
	for {
		ix := r.idx.Load()
		if ix != nil && ix.cols[col] != nil {
			return ix.cols[col][v]
		}
		// Build the missing column copy-on-write and publish; a racing
		// reader building the same column loses the CAS and retries
		// (the published index is immutable from a reader's view).
		ni := &colIndex{cols: make([]map[value.V][]value.Tuple, r.arity)}
		if ix != nil {
			copy(ni.cols, ix.cols)
		}
		m := make(map[value.V][]value.Tuple, len(r.tuples))
		for _, t := range r.tuples {
			m[t[col]] = append(m[t[col]], t)
		}
		ni.cols[col] = m
		if r.idx.CompareAndSwap(ix, ni) {
			return m[v]
		}
	}
}

// EachUnordered calls f for every tuple in arbitrary (map) order; use it
// in order-insensitive hot paths such as joins and grouping.
func (r *Relation) EachUnordered(f func(value.Tuple) bool) {
	for _, t := range r.tuples {
		if !f(t) {
			return
		}
	}
}

// Clone returns an independent deep copy.
func (r *Relation) Clone() *Relation {
	c := New(r.arity)
	for k, t := range r.tuples {
		c.tuples[k] = t.Clone()
	}
	return c
}

// Equal reports set equality of two relations of the same arity.
func (r *Relation) Equal(o *Relation) bool {
	if r.arity != o.arity || len(r.tuples) != len(o.tuples) {
		return false
	}
	for k := range r.tuples {
		if _, ok := o.tuples[k]; !ok {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every tuple of r is in o.
func (r *Relation) SubsetOf(o *Relation) bool {
	if r.arity != o.arity {
		return false
	}
	for k := range r.tuples {
		if _, ok := o.tuples[k]; !ok {
			return false
		}
	}
	return true
}

// UnionWith adds every tuple of o into r and reports whether r grew.
func (r *Relation) UnionWith(o *Relation) bool {
	if r.arity != o.arity {
		panic("relation: union of different arities")
	}
	grew := false
	for k, t := range o.tuples {
		if _, ok := r.tuples[k]; !ok {
			c := t.Clone()
			r.tuples[k] = c
			r.indexInsert(c)
			grew = true
		}
	}
	if grew {
		r.touch()
	}
	return grew
}

// Union returns a fresh relation r ∪ o.
func Union(r, o *Relation) *Relation {
	u := r.Clone()
	u.UnionWith(o)
	return u
}

// Intersect returns a fresh relation r ∩ o.
func Intersect(r, o *Relation) *Relation {
	if r.arity != o.arity {
		panic("relation: intersection of different arities")
	}
	out := New(r.arity)
	for k, t := range r.tuples {
		if _, ok := o.tuples[k]; ok {
			out.tuples[k] = t.Clone()
		}
	}
	return out
}

// Difference returns a fresh relation r \ o.
func Difference(r, o *Relation) *Relation {
	if r.arity != o.arity {
		panic("relation: difference of different arities")
	}
	out := New(r.arity)
	for k, t := range r.tuples {
		if _, ok := o.tuples[k]; !ok {
			out.tuples[k] = t.Clone()
		}
	}
	return out
}

// Product returns the Cartesian product r × o.
func Product(r, o *Relation) *Relation {
	out := New(r.arity + o.arity)
	for _, a := range r.tuples {
		for _, b := range o.tuples {
			out.Add(value.Concat(a, b))
		}
	}
	return out
}

// Project returns π_cols(r), keeping the listed column indices in order.
func (r *Relation) Project(cols ...int) *Relation {
	out := New(len(cols))
	for _, t := range r.tuples {
		p := make(value.Tuple, len(cols))
		for i, c := range cols {
			if c < 0 || c >= r.arity {
				panic(fmt.Sprintf("relation: projection column %d out of range for arity %d", c, r.arity))
			}
			p[i] = t[c]
		}
		out.Add(p)
	}
	return out
}

// Select returns σ_pred(r) for an arbitrary tuple predicate.
func (r *Relation) Select(pred func(value.Tuple) bool) *Relation {
	out := New(r.arity)
	for _, t := range r.tuples {
		if pred(t) {
			out.Add(t)
		}
	}
	return out
}

// SelectEqCols returns the tuples whose columns i and j agree.
func (r *Relation) SelectEqCols(i, j int) *Relation {
	return r.Select(func(t value.Tuple) bool { return t[i] == t[j] })
}

// SelectEqConst returns the tuples whose column i equals v.
func (r *Relation) SelectEqConst(i int, v value.V) *Relation {
	return r.Select(func(t value.Tuple) bool { return t[i] == v })
}

// ActiveDomain returns the sorted set of values occurring in r. The
// result is cached until the next mutation and shared between callers;
// it must be treated as immutable.
func (r *Relation) ActiveDomain() []value.V {
	if p := r.adom.Load(); p != nil {
		return *p
	}
	seen := make(map[value.V]bool)
	for _, t := range r.tuples {
		for _, v := range t {
			seen[v] = true
		}
	}
	out := make([]value.V, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	value.SortValues(out)
	r.adom.Store(&out)
	return out
}

// String renders the relation as {(..),(..)} in sorted order.
func (r *Relation) String() string {
	ts := r.Tuples()
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Schema maps relation names to arities.
type Schema struct {
	arities map[string]int
	names   []string
}

// NewSchema builds a schema from name→arity pairs.
func NewSchema() *Schema {
	return &Schema{arities: make(map[string]int)}
}

// Declare records a relation name with its arity; redeclaring with a
// different arity is an error.
func (s *Schema) Declare(name string, arity int) error {
	if a, ok := s.arities[name]; ok {
		if a != arity {
			return fmt.Errorf("schema: %s redeclared with arity %d (was %d)", name, arity, a)
		}
		return nil
	}
	s.arities[name] = arity
	s.names = append(s.names, name)
	sort.Strings(s.names)
	return nil
}

// MustDeclare is Declare that panics on conflict; for literals.
func (s *Schema) MustDeclare(name string, arity int) *Schema {
	if err := s.Declare(name, arity); err != nil {
		panic(err)
	}
	return s
}

// Arity returns the declared arity of name.
func (s *Schema) Arity(name string) (int, bool) {
	a, ok := s.arities[name]
	return a, ok
}

// Names returns the declared relation names in sorted order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// Instance is a database instance: one relation per schema name.
type Instance struct {
	schema *Schema
	rels   map[string]*Relation
	// version counts effective mutations (Add, SetRel, Apply). It is
	// atomic so concurrent READERS (eval.Memo's staleness guard) are
	// race-free; mutation itself is not concurrency-safe, as for the
	// rest of the type.
	version atomic.Uint64
}

// NewInstance returns an empty instance of schema s (every relation
// empty at its declared arity).
func NewInstance(s *Schema) *Instance {
	inst := &Instance{schema: s, rels: make(map[string]*Relation)}
	for _, n := range s.Names() {
		a, _ := s.Arity(n)
		inst.rels[n] = New(a)
	}
	return inst
}

// Schema returns the instance's schema.
func (i *Instance) Schema() *Schema { return i.schema }

// Rel returns the relation for name; it panics on undeclared names so
// that typos surface immediately.
func (i *Instance) Rel(name string) *Relation {
	r, ok := i.rels[name]
	if !ok {
		panic(fmt.Sprintf("instance: relation %q not in schema", name))
	}
	return r
}

// Has reports whether name is a relation of this instance.
func (i *Instance) Has(name string) bool {
	_, ok := i.rels[name]
	return ok
}

// SetRel replaces the relation stored under name; the arity must match
// the schema.
func (i *Instance) SetRel(name string, r *Relation) {
	a, ok := i.schema.Arity(name)
	if !ok {
		panic(fmt.Sprintf("instance: relation %q not in schema", name))
	}
	if r.Arity() != a {
		panic(fmt.Sprintf("instance: relation %q has arity %d, schema says %d", name, r.Arity(), a))
	}
	i.rels[name] = r
	i.version.Add(1)
}

// Add inserts a tuple given as strings into the named relation.
func (i *Instance) Add(name string, vals ...string) {
	t := make(value.Tuple, len(vals))
	for k, s := range vals {
		t[k] = value.V(s)
	}
	i.Rel(name).Add(t)
	i.version.Add(1)
}

// Clone returns a deep copy sharing the schema.
func (i *Instance) Clone() *Instance {
	c := &Instance{schema: i.schema, rels: make(map[string]*Relation, len(i.rels))}
	for n, r := range i.rels {
		c.rels[n] = r.Clone()
	}
	c.version.Store(i.version.Load())
	return c
}

// Size returns the total number of tuples across all relations.
func (i *Instance) Size() int {
	n := 0
	for _, r := range i.rels {
		n += r.Len()
	}
	return n
}

// ActiveDomain returns the sorted set of values occurring anywhere in
// the instance.
func (i *Instance) ActiveDomain() []value.V {
	seen := make(map[value.V]bool)
	for _, r := range i.rels {
		for _, v := range r.ActiveDomain() {
			seen[v] = true
		}
	}
	out := make([]value.V, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	value.SortValues(out)
	return out
}

// Equal reports whether two instances of the same schema hold the same
// relations.
func (i *Instance) Equal(o *Instance) bool {
	if len(i.rels) != len(o.rels) {
		return false
	}
	for n, r := range i.rels {
		or, ok := o.rels[n]
		if !ok || !r.Equal(or) {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every relation of i is contained in the
// corresponding relation of o (the ⊆ used by monotonicity arguments).
func (i *Instance) SubsetOf(o *Instance) bool {
	for n, r := range i.rels {
		or, ok := o.rels[n]
		if !ok || !r.SubsetOf(or) {
			return false
		}
	}
	return true
}

// String renders the instance deterministically for diagnostics.
func (i *Instance) String() string {
	names := make([]string, 0, len(i.rels))
	for n := range i.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		fmt.Fprintf(&sb, "%s%s\n", n, i.rels[n])
	}
	return sb.String()
}
