package relation

import (
	"fmt"
	"sort"
	"strings"

	"ptx/internal/value"
)

// DeltaOp is one tuple-level mutation against a named relation.
type DeltaOp struct {
	Insert bool // true = insert the tuple, false = delete it
	Rel    string
	Tuple  value.Tuple
}

// String renders the op as +rel(a,b) or -rel(a,b).
func (op DeltaOp) String() string {
	sign := "-"
	if op.Insert {
		sign = "+"
	}
	parts := make([]string, len(op.Tuple))
	for i, v := range op.Tuple {
		parts[i] = string(v)
	}
	return sign + op.Rel + "(" + strings.Join(parts, ",") + ")"
}

// Delta is an ordered batch of tuple mutations applied atomically to an
// Instance. Ops apply in sequence, so a delta may insert and then delete
// the same tuple; the effective delta returned by Instance.Apply records
// which ops actually changed the store.
type Delta struct {
	Ops []DeltaOp
}

func tupleOf(vals []string) value.Tuple {
	t := make(value.Tuple, len(vals))
	for i, s := range vals {
		t[i] = value.V(s)
	}
	return t
}

// Insert appends an insertion of rel(vals...).
func (d *Delta) Insert(rel string, vals ...string) *Delta {
	d.Ops = append(d.Ops, DeltaOp{Insert: true, Rel: rel, Tuple: tupleOf(vals)})
	return d
}

// Delete appends a deletion of rel(vals...).
func (d *Delta) Delete(rel string, vals ...string) *Delta {
	d.Ops = append(d.Ops, DeltaOp{Insert: false, Rel: rel, Tuple: tupleOf(vals)})
	return d
}

// InsertTuple appends an insertion of t into rel.
func (d *Delta) InsertTuple(rel string, t value.Tuple) *Delta {
	d.Ops = append(d.Ops, DeltaOp{Insert: true, Rel: rel, Tuple: t.Clone()})
	return d
}

// DeleteTuple appends a deletion of t from rel.
func (d *Delta) DeleteTuple(rel string, t value.Tuple) *Delta {
	d.Ops = append(d.Ops, DeltaOp{Insert: false, Rel: rel, Tuple: t.Clone()})
	return d
}

// Len returns the number of ops.
func (d *Delta) Len() int {
	if d == nil {
		return 0
	}
	return len(d.Ops)
}

// Empty reports whether the delta carries no ops.
func (d *Delta) Empty() bool { return d.Len() == 0 }

// Rels returns the sorted distinct relation names the delta touches.
func (d *Delta) Rels() []string {
	if d == nil {
		return nil
	}
	seen := make(map[string]bool, len(d.Ops))
	for _, op := range d.Ops {
		seen[op.Rel] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Validate checks every op against the schema: the relation must be
// declared and the tuple must match its arity. It reports the first
// violation so mutations fail before any op is applied.
func (d *Delta) Validate(s *Schema) error {
	if d == nil {
		return nil
	}
	for i, op := range d.Ops {
		a, ok := s.Arity(op.Rel)
		if !ok {
			return fmt.Errorf("delta: op %d: relation %q not in schema", i, op.Rel)
		}
		if len(op.Tuple) != a {
			return fmt.Errorf("delta: op %d: %s has arity %d, schema says %d for %q",
				i, op, len(op.Tuple), a, op.Rel)
		}
	}
	return nil
}

// String renders the delta as a space-joined op list.
func (d *Delta) String() string {
	if d.Empty() {
		return "(empty delta)"
	}
	parts := make([]string, len(d.Ops))
	for i, op := range d.Ops {
		parts[i] = op.String()
	}
	return strings.Join(parts, " ")
}

// Insert adds t to the relation and reports whether the relation changed
// (false when the tuple was already present). A change invalidates the
// cached fingerprint, sorted order, active domain and columnar layout —
// so a post-mutation Key() or Sorted() never reuses a stale rendering —
// and incrementally maintains every built secondary index.
func (r *Relation) Insert(t value.Tuple) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("relation: arity mismatch: tuple %v into arity-%d relation", t, r.arity))
	}
	k := t.Key()
	if _, ok := r.tuples[k]; ok {
		return false
	}
	c := t.Clone()
	r.tuples[k] = c
	r.indexInsert(c)
	r.touch()
	return true
}

// Delete removes t from the relation and reports whether it was present.
func (r *Relation) Delete(t value.Tuple) bool {
	k := t.Key()
	old, ok := r.tuples[k]
	if !ok {
		return false
	}
	delete(r.tuples, k)
	r.indexDelete(old)
	r.touch()
	return true
}

// Version returns the instance's mutation counter. Every effective
// mutation (Apply with at least one effective op, Add, SetRel) bumps it;
// caches keyed by database contents (eval.Memo via BindInstance) compare
// versions to make stale hits after a mutation impossible.
func (i *Instance) Version() uint64 { return i.version.Load() }

// Apply validates d against the schema and applies its ops in order,
// returning the EFFECTIVE delta: the subsequence of ops that actually
// changed the store (inserting a present tuple or deleting an absent one
// is a no-op). The version is bumped once iff the effective delta is
// non-empty. On a validation error nothing is applied.
func (i *Instance) Apply(d *Delta) (*Delta, error) {
	if err := d.Validate(i.schema); err != nil {
		return nil, err
	}
	eff := &Delta{}
	if d == nil {
		return eff, nil
	}
	for _, op := range d.Ops {
		r := i.Rel(op.Rel)
		var changed bool
		if op.Insert {
			changed = r.Insert(op.Tuple)
		} else {
			changed = r.Delete(op.Tuple)
		}
		if changed {
			eff.Ops = append(eff.Ops, op)
		}
	}
	if !eff.Empty() {
		i.version.Add(1)
	}
	return eff, nil
}
