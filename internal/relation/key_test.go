package relation

import (
	"math/rand"
	"sync"
	"testing"

	"ptx/internal/value"
)

// TestKeyOrderInsensitive: Key is a canonical fingerprint of the SET of
// tuples — insertion order must never show through. (Sibling order in
// the transducer is a separate mechanism: it is fixed by the domain
// order on group prefixes when children are created, before register
// fingerprints are ever compared; see pt.ancKey.)
func TestKeyOrderInsensitive(t *testing.T) {
	rows := [][]string{{"b", "2"}, {"a", "1"}, {"c", "3"}, {"a", "2"}}
	rng := rand.New(rand.NewSource(7))
	want := FromRows(rows...).Key()
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(len(rows))
		r := New(2)
		for _, i := range perm {
			r.Add(value.Tuple{value.V(rows[i][0]), value.V(rows[i][1])})
		}
		if got := r.Key(); got != want {
			t.Fatalf("insertion order %v changed the key:\n got  %q\n want %q", perm, got, want)
		}
	}
}

// TestKeyAgreesWithEqual: Key(r) == Key(o) iff r.Equal(o), across
// arities, including the empty-relation corner (arity is part of the
// key, so empty relations of different arities stay distinct).
func TestKeyAgreesWithEqual(t *testing.T) {
	rels := []*Relation{
		New(0),
		New(1),
		New(2),
		FromRows([]string{"a"}),
		FromRows([]string{"a"}, []string{"b"}),
		FromRows([]string{"a", "b"}),
		FromRows([]string{"ab"}),       // vs {"a","b"}: arity tells them apart
		FromRows([]string{"a;b"}),      // separator chars in values
		FromRows([]string{"a:", "1b"}), // boundary-shifting pair 1
		FromRows([]string{"a", ":1b"}), // boundary-shifting pair 2
		FromTuples(0, value.Tuple{}),   // the nonempty arity-0 relation {()}
	}
	for i, r := range rels {
		for j, o := range rels {
			eq := r.Arity() == o.Arity() && r.Equal(o)
			if (r.Key() == o.Key()) != eq {
				t.Errorf("rels[%d] vs rels[%d]: Key collision/mismatch (equal=%v)\n %q\n %q",
					i, j, eq, r.Key(), o.Key())
			}
		}
	}
}

// TestKeyInvalidatedByMutation: every mutating method must drop the
// cached fingerprint.
func TestKeyInvalidatedByMutation(t *testing.T) {
	r := FromRows([]string{"a"})
	k0 := r.Key()

	r.Add(value.Tuple{"b"})
	k1 := r.Key()
	if k1 == k0 {
		t.Fatal("Add did not invalidate the fingerprint")
	}
	r.Remove(value.Tuple{"b"})
	if r.Key() != k0 {
		t.Fatal("Remove did not restore the original fingerprint")
	}
	grew := r.UnionWith(FromRows([]string{"c"}))
	if !grew || r.Key() == k0 {
		t.Fatal("UnionWith did not invalidate the fingerprint")
	}
	// A no-op union keeps the cached key valid.
	before := r.Key()
	if r.UnionWith(FromRows([]string{"c"})) {
		t.Fatal("union with a subset should not grow")
	}
	if r.Key() != before {
		t.Fatal("no-op UnionWith changed the fingerprint")
	}
	if r.Clone().Key() != r.Key() {
		t.Fatal("clone must fingerprint identically")
	}
}

// TestKeyConcurrentReaders: parallel transducer workers fingerprint
// shared register relations concurrently; Key must be race-free for
// concurrent readers (run under -race in CI).
func TestKeyConcurrentReaders(t *testing.T) {
	r := FromRows([]string{"a", "1"}, []string{"b", "2"}, []string{"c", "3"})
	want := r.Key()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if r.Key() != want {
					panic("fingerprint changed under concurrent reads")
				}
			}
		}()
	}
	wg.Wait()
}
