package relation

import (
	"testing"

	"ptx/internal/value"
)

// TestSortedCacheInvalidation: Sorted/Tuples/Each reuse one cached
// order until a mutation, and every mutator drops it.
func TestSortedCacheInvalidation(t *testing.T) {
	r := FromRows([]string{"b"}, []string{"a"})
	s1 := r.Sorted()
	if len(s1) != 2 || s1[0][0] != "a" || s1[1][0] != "b" {
		t.Fatalf("sorted order wrong: %v", s1)
	}
	s2 := r.Sorted()
	if &s1[0] != &s2[0] {
		t.Fatal("second Sorted call did not reuse the cache")
	}
	// A duplicate Add is a set-level no-op and must keep the cache.
	r.Add(value.Tuple{"a"})
	if s3 := r.Sorted(); &s1[0] != &s3[0] {
		t.Fatal("no-op Add dropped the sorted cache")
	}
	r.Add(value.Tuple{"0"})
	s4 := r.Sorted()
	if len(s4) != 3 || s4[0][0] != "0" {
		t.Fatalf("post-Add order wrong: %v", s4)
	}
	r.Remove(value.Tuple{"0"})
	if got := r.Sorted(); len(got) != 2 || got[0][0] != "a" {
		t.Fatalf("post-Remove order wrong: %v", got)
	}
	if grew := r.UnionWith(FromRows([]string{"c"})); !grew {
		t.Fatal("union should grow")
	}
	if got := r.Sorted(); len(got) != 3 || got[2][0] != "c" {
		t.Fatalf("post-Union order wrong: %v", got)
	}
	// Tuples returns a private copy: mutating it must not corrupt the
	// shared cache.
	ts := r.Tuples()
	ts[0], ts[2] = ts[2], ts[0]
	if got := r.Sorted(); got[0][0] != "a" {
		t.Fatalf("Tuples copy leaked into the cache: %v", got)
	}
}

// TestActiveDomainCache: the cached adom is reused and invalidated by
// mutation.
func TestActiveDomainCache(t *testing.T) {
	r := FromRows([]string{"b", "a"})
	d1 := r.ActiveDomain()
	d2 := r.ActiveDomain()
	if len(d1) != 2 || &d1[0] != &d2[0] {
		t.Fatalf("adom not cached: %v vs %v", d1, d2)
	}
	r.Insert(value.Tuple{"c", "a"})
	if d := r.ActiveDomain(); len(d) != 3 {
		t.Fatalf("adom stale after Insert: %v", d)
	}
	r.Delete(value.Tuple{"c", "a"})
	if d := r.ActiveDomain(); len(d) != 2 {
		t.Fatalf("adom stale after Delete: %v", d)
	}
}

// TestColumnsLayout: the columnar cache matches the sorted row order
// and is invalidated by mutation.
func TestColumnsLayout(t *testing.T) {
	r := FromRows([]string{"b", "2"}, []string{"a", "1"})
	cols := r.Columns()
	if len(cols) != 2 || len(cols[0]) != 2 {
		t.Fatalf("columns shape wrong: %v", cols)
	}
	// Canonical row order is ("a","1") then ("b","2"), so column 0 is
	// [a b] and column 1 is [1 2].
	if cols[0][0] != "a" || cols[0][1] != "b" || cols[1][0] != "1" || cols[1][1] != "2" {
		t.Fatalf("columns content wrong: %v (sorted %v)", cols, r.Sorted())
	}
	r.Insert(value.Tuple{"0", "9"})
	cols = r.Columns()
	if len(cols[0]) != 3 || cols[0][0] != "0" {
		t.Fatalf("columns stale after Insert: %v", cols)
	}
}

// TestLookupIndexMaintenance: the column index is built lazily and
// maintained through tuple-level mutation, including Instance.Apply.
func TestLookupIndexMaintenance(t *testing.T) {
	s := NewSchema().MustDeclare("E", 2)
	inst := NewInstance(s)
	inst.Add("E", "a", "b")
	inst.Add("E", "a", "c")
	inst.Add("E", "b", "c")
	e := inst.Rel("E")

	if got := e.Lookup(0, "a"); len(got) != 2 {
		t.Fatalf("Lookup(0,a) = %v", got)
	}
	if got := e.Lookup(1, "c"); len(got) != 2 {
		t.Fatalf("Lookup(1,c) = %v", got)
	}

	d := (&Delta{}).Insert("E", "a", "z").Delete("E", "a", "b")
	if _, err := inst.Apply(d); err != nil {
		t.Fatal(err)
	}
	if got := e.Lookup(0, "a"); len(got) != 2 {
		t.Fatalf("Lookup(0,a) after delta = %v", got)
	}
	found := false
	for _, tu := range e.Lookup(0, "a") {
		if tu[1] == "z" {
			found = true
		}
		if tu[1] == "b" {
			t.Fatalf("deleted tuple still indexed: %v", tu)
		}
	}
	if !found {
		t.Fatal("inserted tuple missing from index")
	}
	if got := e.Lookup(1, "z"); len(got) != 1 {
		t.Fatalf("Lookup(1,z) = %v (index for col 1 not maintained)", got)
	}
	if got := e.Lookup(0, "nope"); len(got) != 0 {
		t.Fatalf("Lookup(0,nope) = %v", got)
	}
}

// TestInterner: dense ids are stable per value and packed tuple keys
// are injective for a fixed arity.
func TestInterner(t *testing.T) {
	in := value.NewInterner()
	a := in.ID("a")
	if in.ID("a") != a {
		t.Fatal("re-interning changed the id")
	}
	b := in.ID("b")
	if a == b {
		t.Fatal("distinct values share an id")
	}
	if in.Val(a) != "a" || in.Val(b) != "b" || in.Len() != 2 {
		t.Fatalf("round-trip broken: %v %v len=%d", in.Val(a), in.Val(b), in.Len())
	}
	k1 := string(in.AppendTupleID(nil, value.Tuple{"a", "b"}))
	k2 := string(in.AppendTupleID(nil, value.Tuple{"b", "a"}))
	k3 := string(in.AppendTupleID(nil, value.Tuple{"a", "b"}))
	if k1 == k2 || k1 != k3 {
		t.Fatalf("packed keys not injective/stable: %q %q %q", k1, k2, k3)
	}
}
