//go:build race

package incr_test

// See race_off_test.go.
const raceEnabled = true
